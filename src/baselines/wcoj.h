#ifndef BENU_BASELINES_WCOJ_H_
#define BENU_BASELINES_WCOJ_H_

#include <cstddef>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "graph/graph.h"
#include "plan/instruction.h"

namespace benu {

/// Configuration of the BiGJoin-like baseline (Ammar et al. [13]): a
/// worst-case-optimal join that extends prefix tuples one pattern vertex
/// at a time, processing the level-0 tuples in batches (BiGJoin's batching
/// parameter; 100000 in the paper's Exp-6).
struct WcojConfig {
  /// Level-0 vertices processed per batch.
  size_t batch_size = 100000;
  /// Maximum resident prefix tuples at any instant. Exceeding it returns
  /// ResourceExhausted, modelling the OOM failures of BiGJoin(S) in
  /// Table VI. SIZE_MAX disables the check.
  size_t max_resident_tuples = static_cast<size_t>(-1);
  /// When true, accounts every level's extension output as shuffled
  /// tuples (the distributed dataflow exchanges them between workers).
  bool distributed = false;
};

/// Outcome of a WCOJ run.
struct WcojResult {
  Count matches = 0;
  Count shuffled_tuples = 0;
  Count shuffled_bytes = 0;
  /// Peak number of resident prefix tuples (memory proxy).
  Count peak_resident_tuples = 0;
  double seconds = 0;
};

/// Runs the worst-case-optimal join. `constraints` is the symmetry-
/// breaking partial order (empty to count raw matches).
StatusOr<WcojResult> RunWcoj(const Graph& data_graph, const Graph& pattern,
                             const std::vector<OrderConstraint>& constraints,
                             const WcojConfig& config);

}  // namespace benu

#endif  // BENU_BASELINES_WCOJ_H_
