#include "baselines/join_based.h"

#include <algorithm>
#include <memory>
#include <unordered_map>

#include "common/stopwatch.h"
#include "graph/vertex_set.h"

namespace benu {
namespace {

uint64_t EdgeKey(VertexId u, VertexId v) {
  if (u > v) std::swap(u, v);
  return (static_cast<uint64_t>(u) << 32) | v;
}

// Per-edge triangle index: EdgeKey(u,v) -> sorted vertices w adjacent to
// both. Stand-in for CBF's clique index.
class TriangleIndex {
 public:
  explicit TriangleIndex(const Graph& g) {
    VertexSet common;
    for (const auto& [u, v] : g.Edges()) {
      Intersect(g.Adjacency(u), g.Adjacency(v), &common);
      if (!common.empty()) {
        entries_ += common.size();
        index_.emplace(EdgeKey(u, v), common);
      }
    }
  }

  const VertexSet* Lookup(VertexId u, VertexId v) const {
    auto it = index_.find(EdgeKey(u, v));
    return it == index_.end() ? nullptr : &it->second;
  }

  Count SizeBytes() const {
    return entries_ * sizeof(VertexId) + index_.size() * 24;
  }

 private:
  std::unordered_map<uint64_t, VertexSet> index_;
  Count entries_ = 0;
};

struct JoinState {
  const Graph* data;
  const Graph* pattern;
  const std::vector<OrderConstraint>* constraints;
  const TriangleIndex* index;  // null when triangle units are disabled

  // Mapping from pattern vertex to its slot in the bound tuple, or -1.
  std::vector<int> slot_of;
  std::vector<VertexId> bound_order;  // pattern vertices, slot order
};

// Checks injectivity of `v` against the currently fixed values and the
// partial-order constraints of pattern vertex `u` against fixed vertices.
bool Admissible(const JoinState& st, const std::vector<VertexId>& fixed_f,
                VertexId u, VertexId v) {
  for (VertexId w = 0; w < st.pattern->NumVertices(); ++w) {
    if (fixed_f[w] == v) return false;
  }
  for (const OrderConstraint& c : *st.constraints) {
    if (c.first == u && fixed_f[c.second] != kInvalidVertex &&
        !(v < fixed_f[c.second])) {
      return false;
    }
    if (c.second == u && fixed_f[c.first] != kInvalidVertex &&
        !(fixed_f[c.first] < v)) {
      return false;
    }
  }
  return true;
}

// Extends `fixed_f` over the unit's unbound vertices, invoking `emit` for
// every consistent assignment. Uses the triangle index for the
// two-bound-vertices triangle case; adjacency intersections otherwise.
template <typename Emit>
void MatchUnit(const JoinState& st, std::vector<VertexId>& fixed_f,
               const std::vector<VertexId>& unit, size_t next, Emit&& emit) {
  // Verify unit edges among already-fixed unit vertices once all are set.
  if (next == unit.size()) {
    for (size_t i = 0; i < unit.size(); ++i) {
      for (size_t j = i + 1; j < unit.size(); ++j) {
        // Units are cliques (edges or triangles), so every pair is an
        // edge constraint.
        if (!st.data->HasEdge(fixed_f[unit[i]], fixed_f[unit[j]])) return;
      }
    }
    emit();
    return;
  }
  const VertexId u = unit[next];
  if (fixed_f[u] != kInvalidVertex) {
    MatchUnit(st, fixed_f, unit, next + 1, emit);
    return;
  }
  // Candidates: prefer the triangle index when exactly the two other unit
  // vertices are fixed and form an edge (the CBF fast path).
  const VertexSet* indexed = nullptr;
  if (st.index != nullptr && unit.size() == 3) {
    VertexId a = kInvalidVertex;
    VertexId b = kInvalidVertex;
    for (VertexId w : unit) {
      if (w == u) continue;
      if (a == kInvalidVertex) {
        a = w;
      } else {
        b = w;
      }
    }
    if (fixed_f[a] != kInvalidVertex && fixed_f[b] != kInvalidVertex) {
      indexed = st.index->Lookup(fixed_f[a], fixed_f[b]);
      if (indexed == nullptr) return;
    }
  }
  VertexSet fallback;
  const VertexSet* candidates = indexed;
  if (candidates == nullptr) {
    bool have = false;
    VertexSet scratch;
    for (VertexId w : unit) {
      if (w == u || fixed_f[w] == kInvalidVertex) continue;
      VertexSetView adj = st.data->Adjacency(fixed_f[w]);
      if (!have) {
        fallback.assign(adj.begin(), adj.end());
        have = true;
      } else {
        Intersect(VertexSetView(fallback), adj, &scratch);
        fallback.swap(scratch);
      }
    }
    if (!have) {
      // First vertex of the first unit: every data vertex.
      fallback.resize(st.data->NumVertices());
      for (VertexId v = 0; v < st.data->NumVertices(); ++v) fallback[v] = v;
    }
    candidates = &fallback;
  }
  for (VertexId v : *candidates) {
    if (!Admissible(st, fixed_f, u, v)) continue;
    fixed_f[u] = v;
    MatchUnit(st, fixed_f, unit, next + 1, emit);
    fixed_f[u] = kInvalidVertex;
  }
}

}  // namespace

std::vector<std::vector<VertexId>> DecomposeIntoJoinUnits(
    const Graph& pattern, bool use_triangle_units) {
  std::vector<std::vector<VertexId>> units;
  std::vector<std::pair<VertexId, VertexId>> remaining = pattern.Edges();
  std::vector<char> covered(pattern.NumVertices(), 0);
  auto erase_edge = [&remaining](VertexId a, VertexId b) {
    remaining.erase(std::remove_if(remaining.begin(), remaining.end(),
                                   [a, b](const auto& e) {
                                     return EdgeKey(e.first, e.second) ==
                                            EdgeKey(a, b);
                                   }),
                    remaining.end());
  };
  bool first = true;
  while (!remaining.empty()) {
    std::vector<VertexId> unit;
    if (use_triangle_units) {
      // Best triangle: connected to covered vertices (unless first) and
      // covering the most remaining edges.
      size_t best_gain = 0;
      std::vector<VertexId> best;
      for (const auto& [a, b] : remaining) {
        VertexSet common;
        Intersect(pattern.Adjacency(a), pattern.Adjacency(b), &common);
        for (VertexId c : common) {
          if (!first && !covered[a] && !covered[b] && !covered[c]) continue;
          size_t gain = 0;
          for (const auto& e : remaining) {
            uint64_t k = EdgeKey(e.first, e.second);
            if (k == EdgeKey(a, b) || k == EdgeKey(a, c) ||
                k == EdgeKey(b, c)) {
              ++gain;
            }
          }
          if (gain > best_gain) {
            best_gain = gain;
            best = {a, b, c};
          }
        }
      }
      if (best_gain >= 2) unit = best;  // a triangle unit must pay off
    }
    if (unit.empty()) {
      // Edge unit: prefer one touching the covered set.
      const std::pair<VertexId, VertexId>* chosen = nullptr;
      for (const auto& e : remaining) {
        if (first || covered[e.first] || covered[e.second]) {
          chosen = &e;
          break;
        }
      }
      if (chosen == nullptr) chosen = &remaining.front();
      unit = {chosen->first, chosen->second};
    }
    for (size_t i = 0; i < unit.size(); ++i) {
      covered[unit[i]] = 1;
      for (size_t j = i + 1; j < unit.size(); ++j) {
        erase_edge(unit[i], unit[j]);
      }
    }
    units.push_back(std::move(unit));
    first = false;
  }
  return units;
}

StatusOr<JoinBasedResult> RunJoinBased(
    const Graph& data_graph, const Graph& pattern,
    const std::vector<OrderConstraint>& constraints,
    const JoinBasedConfig& config) {
  const size_t n = pattern.NumVertices();
  if (n == 0) return Status::InvalidArgument("empty pattern");
  if (!pattern.IsConnected()) {
    return Status::InvalidArgument("pattern must be connected");
  }
  JoinBasedResult result;

  std::vector<std::vector<VertexId>> units =
      DecomposeIntoJoinUnits(pattern, config.use_triangle_units);
  const bool need_index =
      config.use_triangle_units &&
      std::any_of(units.begin(), units.end(),
                  [](const auto& u) { return u.size() == 3; });

  std::unique_ptr<TriangleIndex> index;
  if (need_index) {
    Stopwatch watch;
    index = std::make_unique<TriangleIndex>(data_graph);
    result.index_seconds = watch.ElapsedSeconds();
    result.index_bytes = index->SizeBytes();
  }

  Stopwatch join_watch;
  JoinState st;
  st.data = &data_graph;
  st.pattern = &pattern;
  st.constraints = &constraints;
  st.index = index.get();
  st.slot_of.assign(n, -1);

  // Partial results: flattened tuples over st.bound_order.
  std::vector<VertexId> current = {};  // one empty tuple
  size_t num_tuples = 1;
  std::vector<VertexId> fixed_f(n, kInvalidVertex);

  for (size_t r = 0; r < units.size(); ++r) {
    const std::vector<VertexId>& unit = units[r];
    const size_t width = st.bound_order.size();
    const bool last = (r + 1 == units.size());

    // New pattern vertices bound by this unit.
    std::vector<VertexId> new_vertices;
    for (VertexId u : unit) {
      if (st.slot_of[u] < 0) new_vertices.push_back(u);
    }

    // Shuffle accounting: every join round repartitions the current
    // partial results across the cluster.
    if (r > 0) {
      result.shuffled_tuples += num_tuples;
      result.shuffled_bytes += num_tuples * width * sizeof(VertexId);
    }

    std::vector<VertexId> next;
    Count out_tuples = 0;
    for (size_t t = 0; t < num_tuples; ++t) {
      const VertexId* tuple = current.data() + t * width;
      std::fill(fixed_f.begin(), fixed_f.end(), kInvalidVertex);
      for (size_t j = 0; j < width; ++j) fixed_f[st.bound_order[j]] = tuple[j];
      MatchUnit(st, fixed_f, unit, 0, [&] {
        ++out_tuples;
        if (!last) {
          for (size_t j = 0; j < width; ++j) {
            next.push_back(fixed_f[st.bound_order[j]]);
          }
          for (VertexId u : new_vertices) next.push_back(fixed_f[u]);
        }
      });
      if (!last && out_tuples > config.max_intermediate_tuples) {
        return Status::ResourceExhausted(
            "join-based baseline exceeded intermediate-result budget "
            "(simulated CRASH)");
      }
    }
    result.peak_tuples = std::max<Count>(result.peak_tuples, out_tuples);
    if (last) {
      result.matches = out_tuples;
      break;
    }
    for (VertexId u : new_vertices) {
      st.slot_of[u] = static_cast<int>(st.bound_order.size());
      st.bound_order.push_back(u);
    }
    current.swap(next);
    num_tuples = out_tuples;
  }
  result.join_seconds = join_watch.ElapsedSeconds();
  return result;
}

}  // namespace benu
