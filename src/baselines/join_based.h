#ifndef BENU_BASELINES_JOIN_BASED_H_
#define BENU_BASELINES_JOIN_BASED_H_

#include <cstddef>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "graph/graph.h"
#include "plan/instruction.h"

namespace benu {

/// Configuration of the CBF-like BFS-style baseline: the pattern is
/// decomposed into join units (triangles and edges), unit matches are
/// assembled by a left-deep join, and every round shuffles the partial
/// matching results — the communication behaviour the paper argues
/// against. Triangle units are answered from a precomputed per-edge
/// triangle index, mirroring CBF's clique index (built per data graph,
/// with real construction cost and storage).
struct JoinBasedConfig {
  /// Use triangle join units backed by the triangle index (CBF-style);
  /// false degrades to an edge-only decomposition (TwinTwig/Edge-style).
  bool use_triangle_units = true;
  /// Maximum materialized partial-result tuples; exceeding it returns
  /// ResourceExhausted, modelling the CRASH entries of Table V.
  size_t max_intermediate_tuples = 100u << 20;
};

/// Outcome of a join-based run.
struct JoinBasedResult {
  Count matches = 0;
  /// Partial-result tuples shuffled across join rounds.
  Count shuffled_tuples = 0;
  Count shuffled_bytes = 0;
  /// Peak materialized tuples (memory proxy).
  Count peak_tuples = 0;
  /// Triangle ("clique") index: construction time and size.
  double index_seconds = 0;
  Count index_bytes = 0;
  /// Join execution time (excluding index construction).
  double join_seconds = 0;
};

/// Runs the join-based enumeration. `constraints` is the symmetry-breaking
/// partial order (empty to count raw matches).
StatusOr<JoinBasedResult> RunJoinBased(
    const Graph& data_graph, const Graph& pattern,
    const std::vector<OrderConstraint>& constraints,
    const JoinBasedConfig& config);

/// The decomposition used by RunJoinBased, exposed for tests: a list of
/// units, each a list of pattern vertices (3 = triangle unit, 2 = edge
/// unit), ordered so each unit after the first shares at least one vertex
/// with the union of its predecessors, jointly covering E(P).
std::vector<std::vector<VertexId>> DecomposeIntoJoinUnits(
    const Graph& pattern, bool use_triangle_units);

}  // namespace benu

#endif  // BENU_BASELINES_JOIN_BASED_H_
