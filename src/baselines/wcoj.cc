#include "baselines/wcoj.h"

#include <algorithm>

#include "common/stopwatch.h"
#include "graph/vertex_set.h"

namespace benu {
namespace {

// Connectivity-first order (same heuristic as the brute-force oracle).
std::vector<VertexId> ChooseOrder(const Graph& pattern) {
  const size_t n = pattern.NumVertices();
  std::vector<VertexId> order;
  std::vector<char> used(n, 0);
  for (size_t step = 0; step < n; ++step) {
    VertexId best = kInvalidVertex;
    size_t best_connected = 0;
    for (VertexId u = 0; u < n; ++u) {
      if (used[u]) continue;
      size_t connected = 0;
      for (VertexId w : pattern.Adjacency(u)) {
        if (used[w]) ++connected;
      }
      if (best == kInvalidVertex || connected > best_connected ||
          (connected == best_connected &&
           pattern.Degree(u) > pattern.Degree(best))) {
        best = u;
        best_connected = connected;
      }
    }
    used[best] = 1;
    order.push_back(best);
  }
  return order;
}

}  // namespace

StatusOr<WcojResult> RunWcoj(const Graph& data_graph, const Graph& pattern,
                             const std::vector<OrderConstraint>& constraints,
                             const WcojConfig& config) {
  const size_t n = pattern.NumVertices();
  if (n == 0) return Status::InvalidArgument("empty pattern");
  if (!pattern.IsConnected()) {
    return Status::InvalidArgument("pattern must be connected");
  }
  const std::vector<VertexId> order = ChooseOrder(pattern);
  Stopwatch watch;
  WcojResult result;

  // Flattened tuple storage: level-i prefixes have width i+1, laid out
  // contiguously (tuple t occupies [t*(i+1), (t+1)*(i+1))).
  std::vector<VertexId> current;
  std::vector<VertexId> next;
  VertexSet candidates;
  VertexSet scratch;

  const size_t num_v = data_graph.NumVertices();
  for (size_t batch_start = 0; batch_start < num_v;
       batch_start += config.batch_size) {
    const size_t batch_end =
        std::min(num_v, batch_start + config.batch_size);
    // Seed level 0 with the batch's data vertices.
    current.clear();
    for (size_t v = batch_start; v < batch_end; ++v) {
      current.push_back(static_cast<VertexId>(v));
    }

    for (size_t level = 1; level < n; ++level) {
      const VertexId u = order[level];
      const size_t width = level;  // tuples carry order[0..level)
      next.clear();
      const size_t num_tuples = current.size() / width;
      for (size_t t = 0; t < num_tuples; ++t) {
        const VertexId* tuple = current.data() + t * width;
        // Candidate extensions: intersect adjacency of mapped neighbors
        // (smallest first would be WCO; with CSR views the fold below is
        // already proportional to the smallest set).
        candidates.clear();
        bool have = false;
        for (size_t j = 0; j < level; ++j) {
          if (!pattern.HasEdge(order[j], u)) continue;
          VertexSetView adj = data_graph.Adjacency(tuple[j]);
          if (!have) {
            candidates.assign(adj.begin(), adj.end());
            have = true;
          } else {
            Intersect(VertexSetView(candidates), adj, &scratch);
            candidates.swap(scratch);
          }
          if (candidates.empty()) break;
        }
        if (!have) {
          candidates.resize(num_v);
          for (VertexId v = 0; v < num_v; ++v) candidates[v] = v;
        }
        for (VertexId v : candidates) {
          bool ok = true;
          for (size_t j = 0; j < level && ok; ++j) {
            if (tuple[j] == v) ok = false;
          }
          for (const OrderConstraint& c : constraints) {
            if (!ok) break;
            // Constraint applies when both endpoints are mapped at this
            // level; u is order[level], earlier ones are order[0..level).
            VertexId other = kInvalidVertex;
            bool v_is_smaller = false;
            if (c.first == u) {
              other = c.second;
              v_is_smaller = true;
            } else if (c.second == u) {
              other = c.first;
              v_is_smaller = false;
            } else {
              continue;
            }
            for (size_t j = 0; j < level; ++j) {
              if (order[j] == other) {
                ok = v_is_smaller ? (v < tuple[j]) : (tuple[j] < v);
                break;
              }
            }
          }
          if (!ok) continue;
          if (level + 1 == n) {
            ++result.matches;
          } else {
            next.insert(next.end(), tuple, tuple + width);
            next.push_back(v);
          }
        }
      }
      if (level + 1 == n) break;
      current.swap(next);
      const size_t new_width = level + 1;
      const size_t resident_tuples = current.size() / new_width;
      result.peak_resident_tuples =
          std::max<Count>(result.peak_resident_tuples, resident_tuples);
      if (resident_tuples > config.max_resident_tuples) {
        return Status::ResourceExhausted(
            "WCOJ exceeded resident tuple budget (simulated OOM)");
      }
      if (config.distributed) {
        // The dataflow exchanges every extended prefix between workers.
        result.shuffled_tuples += resident_tuples;
        result.shuffled_bytes += current.size() * sizeof(VertexId);
      }
    }
  }
  result.seconds = watch.ElapsedSeconds();
  return result;
}

}  // namespace benu
