#include "baselines/bruteforce.h"

#include <algorithm>

#include "plan/symmetry_breaking.h"

namespace benu {
namespace {

// Connectivity-first matching order: start at a maximum-degree vertex,
// then repeatedly take the unmatched vertex with the most matched
// neighbors (ties by degree, then id).
std::vector<VertexId> DefaultOrder(const Graph& pattern) {
  const size_t n = pattern.NumVertices();
  std::vector<VertexId> order;
  std::vector<char> used(n, 0);
  for (size_t step = 0; step < n; ++step) {
    VertexId best = kInvalidVertex;
    size_t best_connected = 0;
    for (VertexId u = 0; u < n; ++u) {
      if (used[u]) continue;
      size_t connected = 0;
      for (VertexId w : pattern.Adjacency(u)) {
        if (used[w]) ++connected;
      }
      if (best == kInvalidVertex || connected > best_connected ||
          (connected == best_connected &&
           pattern.Degree(u) > pattern.Degree(best))) {
        best = u;
        best_connected = connected;
      }
    }
    used[best] = 1;
    order.push_back(best);
  }
  return order;
}

class Search {
 public:
  Search(const Graph& data, const Graph& pattern,
         const std::vector<OrderConstraint>& constraints,
         std::vector<std::vector<VertexId>>* collect)
      : data_(data),
        pattern_(pattern),
        constraints_(constraints),
        collect_(collect),
        order_(DefaultOrder(pattern)) {
    f_.assign(pattern.NumVertices(), kInvalidVertex);
  }

  /// Restricts matches to label-preserving ones. Pointers must outlive
  /// the search.
  void SetLabels(const std::vector<int>* data_labels,
                 const std::vector<int>* pattern_labels) {
    data_labels_ = data_labels;
    pattern_labels_ = pattern_labels;
  }

  Count Run() {
    Extend(0);
    return count_;
  }

 private:
  void Extend(size_t depth) {
    if (depth == order_.size()) {
      ++count_;
      if (collect_ != nullptr) collect_->push_back(f_);
      return;
    }
    const VertexId u = order_[depth];
    // RefineCandidates: intersect adjacency sets of mapped neighbors.
    VertexSet candidates;
    bool have = false;
    for (VertexId w : pattern_.Adjacency(u)) {
      if (f_[w] == kInvalidVertex) continue;
      VertexSetView adj = data_.Adjacency(f_[w]);
      if (!have) {
        candidates.assign(adj.begin(), adj.end());
        have = true;
      } else {
        VertexSet next;
        Intersect(VertexSetView(candidates), adj, &next);
        candidates.swap(next);
      }
      if (candidates.empty()) return;
    }
    if (!have) {
      candidates.resize(data_.NumVertices());
      for (VertexId v = 0; v < data_.NumVertices(); ++v) candidates[v] = v;
    }
    for (VertexId v : candidates) {
      if (!Admissible(u, v)) continue;
      f_[u] = v;
      Extend(depth + 1);
      f_[u] = kInvalidVertex;
    }
  }

  bool Admissible(VertexId u, VertexId v) const {
    // Label preservation (property-graph extension).
    if (data_labels_ != nullptr &&
        (*data_labels_)[v] != (*pattern_labels_)[u]) {
      return false;
    }
    // Injectivity.
    for (VertexId w = 0; w < pattern_.NumVertices(); ++w) {
      if (f_[w] == v) return false;
    }
    // Partial-order constraints against already-mapped vertices.
    for (const OrderConstraint& c : constraints_) {
      if (c.first == u && f_[c.second] != kInvalidVertex &&
          !(v < f_[c.second])) {
        return false;
      }
      if (c.second == u && f_[c.first] != kInvalidVertex &&
          !(f_[c.first] < v)) {
        return false;
      }
    }
    return true;
  }

  const Graph& data_;
  const Graph& pattern_;
  const std::vector<OrderConstraint>& constraints_;
  std::vector<std::vector<VertexId>>* collect_;
  const std::vector<int>* data_labels_ = nullptr;
  const std::vector<int>* pattern_labels_ = nullptr;
  std::vector<VertexId> order_;
  std::vector<VertexId> f_;
  Count count_ = 0;
};

}  // namespace

StatusOr<Count> BruteForceCount(
    const Graph& data_graph, const Graph& pattern,
    const std::vector<OrderConstraint>& constraints) {
  if (pattern.NumVertices() == 0) {
    return Status::InvalidArgument("empty pattern");
  }
  Search search(data_graph, pattern, constraints, nullptr);
  return search.Run();
}

StatusOr<std::vector<std::vector<VertexId>>> BruteForceEnumerate(
    const Graph& data_graph, const Graph& pattern,
    const std::vector<OrderConstraint>& constraints) {
  if (pattern.NumVertices() == 0) {
    return Status::InvalidArgument("empty pattern");
  }
  std::vector<std::vector<VertexId>> matches;
  Search search(data_graph, pattern, constraints, &matches);
  search.Run();
  std::sort(matches.begin(), matches.end());
  return matches;
}

StatusOr<Count> BruteForceCountSubgraphs(const Graph& data_graph,
                                         const Graph& pattern) {
  return BruteForceCount(data_graph, pattern,
                         ComputeSymmetryBreakingConstraints(pattern));
}

StatusOr<Count> BruteForceCountLabeledSubgraphs(
    const Graph& data_graph, const std::vector<int>& data_labels,
    const Graph& pattern, const std::vector<int>& pattern_labels) {
  if (pattern.NumVertices() == 0) {
    return Status::InvalidArgument("empty pattern");
  }
  if (data_labels.size() != data_graph.NumVertices() ||
      pattern_labels.size() != pattern.NumVertices()) {
    return Status::InvalidArgument("label vector size mismatch");
  }
  const auto constraints =
      ComputeLabeledSymmetryBreakingConstraints(pattern, pattern_labels);
  Search search(data_graph, pattern, constraints, nullptr);
  search.SetLabels(&data_labels, &pattern_labels);
  return search.Run();
}

}  // namespace benu
