#ifndef BENU_BASELINES_BRUTEFORCE_H_
#define BENU_BASELINES_BRUTEFORCE_H_

#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "graph/graph.h"
#include "plan/instruction.h"

namespace benu {

/// Reference single-machine implementation of the generic backtracking
/// framework (Algorithm 1). Candidate sets are recomputed directly from
/// the in-memory data graph on every step — no execution plans, caches or
/// instruction machinery — which makes it an independent correctness
/// oracle for the BENU executor.
///
/// With `constraints` from ComputeSymmetryBreakingConstraints the result
/// is the number of subgraphs isomorphic to the pattern (duplicate-free);
/// with empty constraints it is the number of matches (injective
/// edge-preserving mappings).
StatusOr<Count> BruteForceCount(const Graph& data_graph, const Graph& pattern,
                                const std::vector<OrderConstraint>& constraints);

/// Same search, materializing every match (indexed by pattern vertex).
StatusOr<std::vector<std::vector<VertexId>>> BruteForceEnumerate(
    const Graph& data_graph, const Graph& pattern,
    const std::vector<OrderConstraint>& constraints);

/// Counts subgraphs isomorphic to `pattern` (computes the symmetry-
/// breaking constraints internally).
StatusOr<Count> BruteForceCountSubgraphs(const Graph& data_graph,
                                         const Graph& pattern);

/// Labeled oracle for the property-graph extension: counts duplicate-free
/// label-preserving subgraph matches (labels[f(u)] == pattern_labels[u]).
/// Computes the label-aware symmetry-breaking constraints internally.
StatusOr<Count> BruteForceCountLabeledSubgraphs(
    const Graph& data_graph, const std::vector<int>& data_labels,
    const Graph& pattern, const std::vector<int>& pattern_labels);

}  // namespace benu

#endif  // BENU_BASELINES_BRUTEFORCE_H_
