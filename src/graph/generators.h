#ifndef BENU_GRAPH_GENERATORS_H_
#define BENU_GRAPH_GENERATORS_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include "common/status.h"
#include "graph/graph.h"

namespace benu {

/// Synthetic data-graph generators. The paper evaluates on SNAP/LAW graphs
/// (as-Skitter, LiveJournal, Orkut, uk-2002, FriendSter); those datasets
/// are not available offline, so benchmarks use scaled-down synthetic
/// stand-ins with matched density and a power-law degree distribution (see
/// DESIGN.md §2). All generators are deterministic given `seed`.

/// Erdős–Rényi G(n, m): exactly `num_edges` distinct uniform random edges.
/// Used as a locality-free control workload.
StatusOr<Graph> GenerateErdosRenyi(size_t num_vertices, size_t num_edges,
                                   uint64_t seed);

/// Barabási–Albert preferential attachment: starts from a small clique and
/// attaches each new vertex to `edges_per_vertex` existing vertices chosen
/// proportionally to degree. Produces the power-law degree skew that drives
/// the paper's task-splitting experiment (Exp-4).
StatusOr<Graph> GenerateBarabasiAlbert(size_t num_vertices,
                                       size_t edges_per_vertex, uint64_t seed);

/// Holme–Kim power-law graph with tunable clustering: like Barabási–
/// Albert, but after each preferential attachment step a triad-formation
/// step follows with probability `triangle_prob` (the new vertex links to
/// a random neighbor of the vertex it just attached to, closing a
/// triangle). Real social/web graphs are both heavy-tailed *and*
/// triangle-rich; plain BA lacks the clustering that drives the paper's
/// Table I counts, so the stand-in datasets use this generator.
StatusOr<Graph> GeneratePowerLawCluster(size_t num_vertices,
                                        size_t edges_per_vertex,
                                        double triangle_prob, uint64_t seed);

/// Uniform random connected pattern graph with `num_vertices` vertices:
/// a random spanning tree plus each remaining pair independently with
/// probability `extra_edge_prob`. Used by Exp-1's "random graphs" column.
StatusOr<Graph> GenerateRandomConnected(size_t num_vertices,
                                        double extra_edge_prob, uint64_t seed);

/// Named stand-in data graphs for the paper's five datasets, scaled to run
/// on one machine: "as-sim", "lj-sim", "ok-sim", "uk-sim", "fs-sim".
/// Each is a Barabási–Albert graph whose vertex count and average degree
/// mirror the ratios of Table I at roughly 1/300 scale.
StatusOr<Graph> GenerateStandInDataset(const std::string& name);

/// Builds a graph from a compact command-line spec, used by the
/// benu_driver / benu_kv_server binaries (both sides of a multi-process
/// run must construct the identical graph from the same spec):
///   "er:n,m,seed"     Erdős–Rényi G(n, m)
///   "ba:n,k,seed"     Barabási–Albert, k edges per vertex
///   "plc:n,k,p,seed"  Holme–Kim power-law cluster, p = triangle prob in %
///   anything else     a stand-in dataset name ("as-sim", "lj-sim", ...)
StatusOr<Graph> GenerateFromSpec(const std::string& spec);

}  // namespace benu

#endif  // BENU_GRAPH_GENERATORS_H_
