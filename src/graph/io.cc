#include "graph/io.h"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <unordered_map>
#include <utility>
#include <vector>

namespace benu {
namespace {

StatusOr<Graph> ParseEdgeListStream(std::istream& in) {
  std::unordered_map<uint64_t, VertexId> id_map;
  std::vector<std::pair<VertexId, VertexId>> edges;
  auto intern = [&id_map](uint64_t raw) {
    auto [it, inserted] =
        id_map.emplace(raw, static_cast<VertexId>(id_map.size()));
    (void)inserted;
    return it->second;
  };
  std::string line;
  size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#' || line[0] == '%') continue;
    std::istringstream fields(line);
    uint64_t raw_u = 0;
    uint64_t raw_v = 0;
    if (!(fields >> raw_u >> raw_v)) {
      return Status::IoError("malformed edge at line " +
                             std::to_string(line_no));
    }
    if (raw_u == raw_v) continue;  // drop self loops like SNAP loaders do
    edges.emplace_back(intern(raw_u), intern(raw_v));
  }
  return Graph::FromEdges(id_map.size(), edges);
}

}  // namespace

StatusOr<Graph> LoadEdgeListFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open " + path);
  return ParseEdgeListStream(in);
}

StatusOr<Graph> ParseEdgeList(const std::string& text) {
  std::istringstream in(text);
  return ParseEdgeListStream(in);
}

Status SaveEdgeListFile(const Graph& graph, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open " + path + " for writing");
  for (const auto& [u, v] : graph.Edges()) {
    out << u << ' ' << v << '\n';
  }
  if (!out) return Status::IoError("write failure on " + path);
  return Status::OK();
}

}  // namespace benu
