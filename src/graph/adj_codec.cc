#include "graph/adj_codec.h"

#include <algorithm>
#include <cstdlib>

#include "common/metrics.h"
#include "graph/simd_intersect.h"

namespace benu::codec {
namespace {

// Varints are LEB128: 7 value bits per byte, high bit = continuation.
// The largest stored value is 2^32 (the shifted first entry 0xFFFFFFFF+1),
// which needs 5 bytes; anything longer is malformed.
constexpr int kMaxVarintBytes = 5;
constexpr uint64_t kMaxDelta = uint64_t{1} << 32;

void AppendVarint(uint64_t v, std::vector<uint8_t>* out) {
  while (v >= 0x80) {
    out->push_back(static_cast<uint8_t>(v) | 0x80);
    v >>= 7;
  }
  out->push_back(static_cast<uint8_t>(v));
}

struct CodecCounters {
  metrics::Counter* encode_sets;
  metrics::Counter* encode_bytes_raw;
  metrics::Counter* encode_bytes_encoded;
  metrics::Counter* decode_sets;
  metrics::Counter* decode_values;
  metrics::Counter* intersect_fused;
  metrics::Counter* intersect_fallback;
};

CodecCounters& Counters() {
  static CodecCounters c = [] {
    auto& reg = metrics::MetricsRegistry::Global();
    CodecCounters n;
    n.encode_sets = reg.GetCounter(
        "codec.encode.sets", "1", "adjacency sets delta+varint encoded");
    n.encode_bytes_raw = reg.GetCounter(
        "codec.encode.bytes_raw", "By",
        "raw u32 payload bytes before encoding");
    n.encode_bytes_encoded = reg.GetCounter(
        "codec.encode.bytes_encoded", "By",
        "payload bytes after delta+varint encoding");
    n.decode_sets = reg.GetCounter(
        "codec.decode.sets", "1", "encoded sets fully materialized");
    n.decode_values = reg.GetCounter(
        "codec.decode.values", "1",
        "values decoded by full materializations");
    n.intersect_fused = reg.GetCounter(
        "codec.intersect.fused", "1",
        "intersections served by the fused encoded kernels");
    n.intersect_fallback = reg.GetCounter(
        "codec.intersect.fallback_decodes", "1",
        "operand materializations the fused kernels could not avoid");
    return n;
  }();
  return c;
}

// Decode block driven through the cursor by the fused kernels: big
// enough to amortize the cursor dispatch, small enough to stay in L1.
constexpr size_t kFusedBlock = 256;

bool Excluded(VertexId v, const VertexId* excludes, size_t n) {
  for (size_t k = 0; k < n; ++k) {
    if (excludes[k] == v) return true;
  }
  return false;
}

}  // namespace

bool CompressionEnabled(bool requested) {
  static const bool env_disabled = [] {
    const char* env = std::getenv("BENU_DISABLE_COMPRESSION");
    return env != nullptr && env[0] == '1';
  }();
  return requested && !env_disabled;
}

void Encode(VertexSetView set, EncodedSet* out) {
  out->count = static_cast<uint32_t>(set.size);
  out->bytes.clear();
  if (set.size == 0) return;
  out->bytes.reserve(set.size + 4);  // common case: ~1 byte per delta
  // prev starts at -1 (mod 2^32), so the first "delta" is v[0] + 1 and
  // every stored varint obeys the same d >= 1 rule.
  uint32_t prev = 0xFFFFFFFFu;
  for (size_t i = 0; i < set.size; ++i) {
    const uint64_t delta =
        static_cast<uint64_t>(set.data[i]) - prev;  // mod 2^64 is exact
    AppendVarint(i == 0 ? static_cast<uint64_t>(set.data[0]) + 1 : delta,
                 &out->bytes);
    prev = set.data[i];
  }
}

namespace {

// Shared scan for Validate/DecodeValidated: checks structure and either
// discards or emits the decoded values.
Status ValidateImpl(const uint8_t* data, size_t size, uint32_t count,
                    VertexSet* out) {
  const uint8_t* p = data;
  const uint8_t* end = data + size;
  uint32_t prev = 0xFFFFFFFFu;
  for (uint32_t i = 0; i < count; ++i) {
    uint64_t delta = 0;
    int shift = 0;
    int nbytes = 0;
    uint8_t byte = 0;
    while (true) {
      if (p == end) {
        return Status::InvalidArgument(
            "encoded adjacency: varint truncated mid-value");
      }
      if (++nbytes > kMaxVarintBytes) {
        return Status::InvalidArgument(
            "encoded adjacency: varint longer than 5 bytes");
      }
      byte = *p++;
      delta |= static_cast<uint64_t>(byte & 0x7F) << shift;
      shift += 7;
      if ((byte & 0x80) == 0) break;
    }
    if (nbytes > 1 && byte == 0) {
      // Minimal-length varints only: keeps the encoding canonical, so a
      // valid stream always round-trips byte-exactly through Encode.
      return Status::InvalidArgument(
          "encoded adjacency: non-minimal varint");
    }
    if (delta == 0 || delta > kMaxDelta) {
      return Status::InvalidArgument(
          "encoded adjacency: delta out of range (must be in [1, 2^32])");
    }
    const uint64_t value = static_cast<uint64_t>(prev) + delta;
    // value is the decoded entry + 2^32 when prev wraps; normalize mod
    // 2^32 and check it stays strictly ascending in 32 bits.
    const uint32_t v = static_cast<uint32_t>(value);
    if (i > 0 && v <= prev) {
      return Status::InvalidArgument(
          "encoded adjacency: decoded sequence overflows 32 bits");
    }
    prev = v;
    if (out != nullptr) out->push_back(v);
  }
  if (p != end) {
    return Status::InvalidArgument(
        "encoded adjacency: trailing bytes after last value");
  }
  return Status::OK();
}

}  // namespace

Status Validate(const uint8_t* data, size_t size, uint32_t count) {
  return ValidateImpl(data, size, count, nullptr);
}

Status DecodeValidated(const uint8_t* data, size_t size, uint32_t count,
                       VertexSet* out) {
  out->clear();
  out->reserve(count);
  Status st = ValidateImpl(data, size, count, out);
  if (!st.ok()) out->clear();
  return st;
}

DecodeCursor::DecodeCursor(const uint8_t* data, size_t size, uint32_t count)
    : p_(data), end_(data + size), remaining_(count) {}

size_t DecodeCursor::Next(VertexId* out, size_t max) {
  size_t n = 0;
  if (max > remaining_) max = remaining_;
  // The vector decoder needs a couple of 8-value runs to pay for its
  // setup; short sets (the common case in graph sweeps) stay scalar.
  const bool use_simd = simd::SimdEnabled() && max >= 16;
  while (n < max) {
    if (use_simd) {
      n += simd::DecodeDeltaBlocksAvx2(&p_, end_, &prev_, out + n, max - n);
      if (n >= max) break;
    }
    // Scalar decode of one varint; re-probes the vector path afterwards
    // so a lone multi-byte delta does not demote the whole stream.
    uint32_t delta = 0;
    int shift = 0;
    uint8_t byte;
    do {
      byte = *p_++;
      delta |= static_cast<uint32_t>(byte & 0x7F) << shift;
      shift += 7;
    } while ((byte & 0x80) != 0);
    prev_ += delta;  // wraps correctly for the shifted first entry
    out[n++] = prev_;
  }
  remaining_ -= static_cast<uint32_t>(n);
  return n;
}

void DecodeAll(const EncodedSet& set, VertexSet* out) {
  out->resize(set.count);
  DecodeCursor cursor(set);
  cursor.Next(out->data(), set.count);
}

void DecodeClamped(const EncodedSet& set, VertexId lo, VertexId hi,
                   const VertexId* excludes, size_t n_excludes,
                   VertexSet* out) {
  out->clear();
  if (lo >= hi || set.count == 0) return;
  DecodeCursor cursor(set);
  VertexId buf[kFusedBlock];
  size_t n;
  while ((n = cursor.Next(buf, kFusedBlock)) != 0) {
    if (buf[n - 1] < lo) continue;  // whole block below the window
    for (size_t i = 0; i < n; ++i) {
      const VertexId v = buf[i];
      if (v < lo) continue;
      if (v >= hi) return;  // ascending: nothing further qualifies
      if (!Excluded(v, excludes, n_excludes)) out->push_back(v);
    }
  }
}

namespace {

// Intersects a decoded block [ap, ap+na) with the matching slice of b,
// appending survivors (minus excludes) to out. b values <= the block's
// last element are consumed either way — later blocks are strictly
// larger — so the caller advances its b cursor to the returned pointer.
const VertexId* IntersectBlock(const VertexId* ap, size_t na,
                               const VertexId* bp, const VertexId* be,
                               const VertexId* excludes, size_t n_excludes,
                               VertexSet* out) {
  const VertexId* b_hi = std::upper_bound(bp, be, ap[na - 1]);
  const size_t nb = static_cast<size_t>(b_hi - bp);
  if (nb == 0) return b_hi;
  if (nb * 8 < na) {
    // Skewed slice: binary-search each b value inside the block instead
    // of streaming the whole block (mirrors Intersect's gallop path).
    const VertexId* ae = ap + na;
    for (; bp != b_hi; ++bp) {
      ap = std::lower_bound(ap, ae, *bp);
      if (ap == ae) break;
      if (*ap == *bp && !Excluded(*bp, excludes, n_excludes)) {
        out->push_back(*bp);
      }
    }
    return b_hi;
  }
  if (simd::SimdEnabled()) {
    // +8 slack: the AVX2 epilogue stores a full lane block.
    VertexId tmp[kFusedBlock + 8];
    const size_t m = simd::IntersectAvx2(ap, na, bp, nb, tmp);
    if (n_excludes == 0) {
      out->insert(out->end(), tmp, tmp + m);
    } else {
      for (size_t i = 0; i < m; ++i) {
        if (!Excluded(tmp[i], excludes, n_excludes)) out->push_back(tmp[i]);
      }
    }
    return b_hi;
  }
  const VertexId* ae = ap + na;
  while (ap != ae && bp != b_hi) {
    if (*ap < *bp) {
      ++ap;
    } else if (*bp < *ap) {
      ++bp;
    } else {
      if (!Excluded(*ap, excludes, n_excludes)) out->push_back(*ap);
      ++ap;
      ++bp;
    }
  }
  return b_hi;
}

}  // namespace

void IntersectEncoded(const EncodedSet& set, VertexSetView b, VertexId lo,
                      VertexId hi, const VertexId* excludes,
                      size_t n_excludes, VertexSet* out) {
  out->clear();
  if (lo >= hi || set.count == 0) return;
  // Clamping b clamps the intersection, and lets decoding stop as soon
  // as the clamped b is exhausted.
  b = ClampView(b, lo, hi);
  if (b.empty()) return;
  const VertexId* bp = b.begin();
  const VertexId* be = b.end();
  DecodeCursor cursor(set);
  VertexId buf[kFusedBlock];
  size_t n;
  while (bp != be && (n = cursor.Next(buf, kFusedBlock)) != 0) {
    if (buf[n - 1] < *bp) continue;  // whole block below b's cursor
    bp = IntersectBlock(buf, n, bp, be, excludes, n_excludes, out);
  }
}

size_t IntersectSizeEncoded(const EncodedSet& set, VertexSetView b,
                            size_t limit) {
  if (set.count == 0 || b.empty() || limit == 0) return 0;
  const VertexId* bp = b.begin();
  const VertexId* be = b.end();
  DecodeCursor cursor(set);
  VertexId buf[kFusedBlock];
  size_t count = 0;
  size_t n;
  const bool use_simd = simd::SimdEnabled();
  while (bp != be && (n = cursor.Next(buf, kFusedBlock)) != 0) {
    if (buf[n - 1] < *bp) continue;
    const VertexId* b_hi = std::upper_bound(bp, be, buf[n - 1]);
    const size_t nb = static_cast<size_t>(b_hi - bp);
    if (nb * 8 < n) {
      const VertexId* ap = buf;
      const VertexId* ae = buf + n;
      for (; bp != b_hi; ++bp) {
        ap = std::lower_bound(ap, ae, *bp);
        if (ap == ae) break;
        if (*ap == *bp && ++count >= limit) return count;
      }
      bp = b_hi;
      continue;
    }
    if (use_simd) {
      count += simd::IntersectSizeAvx2(buf, n, bp, nb, limit - count);
      bp = b_hi;
      if (count >= limit) return count;
      continue;
    }
    const VertexId* ap = buf;
    const VertexId* ae = buf + n;
    while (ap != ae && bp != be) {
      if (*ap < *bp) {
        ++ap;
      } else if (*bp < *ap) {
        ++bp;
      } else {
        if (++count >= limit) return count;
        ++ap;
        ++bp;
      }
    }
  }
  return count;
}

void NoteEncoded(size_t sets, size_t raw_bytes, size_t encoded_bytes) {
  CodecCounters& c = Counters();
  c.encode_sets->Add(sets);
  c.encode_bytes_raw->Add(raw_bytes);
  c.encode_bytes_encoded->Add(encoded_bytes);
}

void NoteDecoded(size_t values) {
  CodecCounters& c = Counters();
  c.decode_sets->Add(1);
  c.decode_values->Add(values);
}

void NoteFusedIntersects(size_t n) {
  if (n != 0) Counters().intersect_fused->Add(n);
}

void NoteFallbackDecodes(size_t n) {
  if (n != 0) Counters().intersect_fallback->Add(n);
}

}  // namespace benu::codec
