#include "graph/vertex_set.h"

#include <algorithm>

namespace benu {
namespace {

// When |larger| / |smaller| exceeds this ratio, galloping search beats the
// linear merge.
constexpr size_t kGallopRatio = 32;

void IntersectMerge(VertexSetView a, VertexSetView b, VertexSet* out) {
  const VertexId* pa = a.begin();
  const VertexId* pb = b.begin();
  const VertexId* ea = a.end();
  const VertexId* eb = b.end();
  while (pa != ea && pb != eb) {
    if (*pa < *pb) {
      ++pa;
    } else if (*pb < *pa) {
      ++pb;
    } else {
      out->push_back(*pa);
      ++pa;
      ++pb;
    }
  }
}

void IntersectGallop(VertexSetView small, VertexSetView large,
                     VertexSet* out) {
  const VertexId* lo = large.begin();
  const VertexId* end = large.end();
  for (VertexId v : small) {
    lo = std::lower_bound(lo, end, v);
    if (lo == end) return;
    if (*lo == v) {
      out->push_back(v);
      ++lo;
    }
  }
}

}  // namespace

void Intersect(VertexSetView a, VertexSetView b, VertexSet* out) {
  out->clear();
  if (a.empty() || b.empty()) return;
  if (a.size > b.size) std::swap(a, b);
  if (b.size / a.size >= kGallopRatio) {
    IntersectGallop(a, b, out);
  } else {
    IntersectMerge(a, b, out);
  }
}

size_t IntersectSize(VertexSetView a, VertexSetView b) {
  if (a.empty() || b.empty()) return 0;
  if (a.size > b.size) std::swap(a, b);
  size_t count = 0;
  if (b.size / a.size >= kGallopRatio) {
    const VertexId* lo = b.begin();
    const VertexId* end = b.end();
    for (VertexId v : a) {
      lo = std::lower_bound(lo, end, v);
      if (lo == end) break;
      if (*lo == v) {
        ++count;
        ++lo;
      }
    }
  } else {
    const VertexId* pa = a.begin();
    const VertexId* pb = b.begin();
    while (pa != a.end() && pb != b.end()) {
      if (*pa < *pb) {
        ++pa;
      } else if (*pb < *pa) {
        ++pb;
      } else {
        ++count;
        ++pa;
        ++pb;
      }
    }
  }
  return count;
}

bool Contains(VertexSetView s, VertexId v) {
  return std::binary_search(s.begin(), s.end(), v);
}

void FilterGreater(VertexSetView in, VertexId bound, VertexSet* out) {
  out->clear();
  const VertexId* first =
      std::upper_bound(in.begin(), in.end(), bound);
  out->assign(first, in.end());
}

void FilterLess(VertexSetView in, VertexId bound, VertexSet* out) {
  out->clear();
  const VertexId* last = std::lower_bound(in.begin(), in.end(), bound);
  out->assign(in.begin(), last);
}

void EraseValue(VertexSet* out, VertexId v) {
  auto it = std::lower_bound(out->begin(), out->end(), v);
  if (it != out->end() && *it == v) out->erase(it);
}

}  // namespace benu
