#include "graph/vertex_set.h"

#include <algorithm>

#include "graph/simd_intersect.h"

namespace benu {
namespace {

// When |larger| / |smaller| exceeds this ratio, galloping search beats the
// linear merge and the block kernels.
constexpr size_t kGallopRatio = 32;

// Below this size the AVX2 block kernel's setup cost beats its win; a
// block kernel needs at least one full 8-lane block per side anyway.
constexpr size_t kSimdMinSize = 16;

// Slack the AVX2 kernel needs in the output buffer: the compress-store
// epilogue writes a full 8-lane block of which only the leading lanes are
// valid (see simd_intersect.h).
constexpr size_t kSimdPad = 8;

inline bool IsExcluded(VertexId v, const VertexId* excludes,
                       size_t n_excludes) {
  for (size_t i = 0; i < n_excludes; ++i) {
    if (excludes[i] == v) return true;
  }
  return false;
}

void IntersectMerge(VertexSetView a, VertexSetView b, VertexSet* out) {
  const VertexId* pa = a.begin();
  const VertexId* pb = b.begin();
  const VertexId* ea = a.end();
  const VertexId* eb = b.end();
  while (pa != ea && pb != eb) {
    if (*pa < *pb) {
      ++pa;
    } else if (*pb < *pa) {
      ++pb;
    } else {
      out->push_back(*pa);
      ++pa;
      ++pb;
    }
  }
}

void IntersectGallop(VertexSetView small, VertexSetView large,
                     VertexSet* out) {
  const VertexId* lo = large.begin();
  const VertexId* end = large.end();
  for (VertexId v : small) {
    lo = std::lower_bound(lo, end, v);
    if (lo == end) return;
    if (*lo == v) {
      out->push_back(v);
      ++lo;
    }
  }
}

// `a` is the smaller side. True when the adaptive dispatcher should take
// the AVX2 block kernel rather than the scalar merge.
inline bool UseSimd(VertexSetView a) {
  return a.size >= kSimdMinSize && simd::SimdEnabled();
}

// Runs the AVX2 kernel. The kernel needs kSimdPad slack past the result,
// and std::vector would value-initialize that slack on every shrinking/
// regrowing resize of `out`; staging into a grow-only thread-local buffer
// pays the initialization once per thread and copies only the actual
// result out.
void IntersectSimd(VertexSetView a, VertexSetView b, VertexSet* out) {
  static thread_local VertexSet stage;
  if (stage.size() < a.size + kSimdPad) stage.resize(a.size + kSimdPad);
  const size_t n = simd::IntersectAvx2(a.data, a.size, b.data, b.size,
                                       stage.data());
  out->assign(stage.begin(), stage.begin() + static_cast<ptrdiff_t>(n));
}

}  // namespace

void Intersect(VertexSetView a, VertexSetView b, VertexSet* out) {
  out->clear();
  if (a.empty() || b.empty()) return;
  if (a.size > b.size) std::swap(a, b);
  if (b.size / a.size >= kGallopRatio) {
    IntersectGallop(a, b, out);
  } else if (UseSimd(a)) {
    IntersectSimd(a, b, out);
  } else {
    IntersectMerge(a, b, out);
  }
}

size_t IntersectSize(VertexSetView a, VertexSetView b, size_t limit) {
  if (a.empty() || b.empty() || limit == 0) return 0;
  if (a.size > b.size) std::swap(a, b);
  size_t count = 0;
  if (b.size / a.size >= kGallopRatio) {
    const VertexId* lo = b.begin();
    const VertexId* end = b.end();
    for (VertexId v : a) {
      lo = std::lower_bound(lo, end, v);
      if (lo == end) break;
      if (*lo == v) {
        ++count;
        if (count >= limit) return limit;
        ++lo;
      }
    }
  } else if (UseSimd(a)) {
    return simd::IntersectSizeAvx2(a.data, a.size, b.data, b.size, limit);
  } else {
    const VertexId* pa = a.begin();
    const VertexId* pb = b.begin();
    const VertexId* ea = a.end();
    const VertexId* eb = b.end();
    while (pa != ea && pb != eb) {
      if (*pa < *pb) {
        ++pa;
      } else if (*pb < *pa) {
        ++pb;
      } else {
        ++count;
        if (count >= limit) return limit;
        ++pa;
        ++pb;
      }
    }
  }
  return count;
}

bool Contains(VertexSetView s, VertexId v) {
  return std::binary_search(s.begin(), s.end(), v);
}

VertexSetView ClampView(VertexSetView v, VertexId lo, VertexId hi) {
  if (lo >= hi) return VertexSetView();
  const VertexId* first = v.begin();
  const VertexId* last = v.end();
  if (lo > 0) first = std::lower_bound(first, last, lo);
  if (hi != kInvalidVertex) last = std::lower_bound(first, last, hi);
  return VertexSetView(first, static_cast<size_t>(last - first));
}

void CopyExcluding(VertexSetView in, const VertexId* excludes,
                   size_t n_excludes, VertexSet* out) {
  if (n_excludes == 0) {
    out->assign(in.begin(), in.end());
    return;
  }
  out->clear();
  out->reserve(in.size);
  for (VertexId v : in) {
    if (!IsExcluded(v, excludes, n_excludes)) out->push_back(v);
  }
}

void IntersectExcluding(VertexSetView a, VertexSetView b,
                        const VertexId* excludes, size_t n_excludes,
                        VertexSet* out) {
  if (n_excludes == 0) {
    Intersect(a, b, out);
    return;
  }
  out->clear();
  if (a.empty() || b.empty()) return;
  if (a.size > b.size) std::swap(a, b);
  if (b.size / a.size >= kGallopRatio) {
    const VertexId* lo = b.begin();
    const VertexId* end = b.end();
    for (VertexId v : a) {
      lo = std::lower_bound(lo, end, v);
      if (lo == end) return;
      if (*lo == v) {
        if (!IsExcluded(v, excludes, n_excludes)) out->push_back(v);
        ++lo;
      }
    }
  } else if (UseSimd(a)) {
    // The vector kernel has no exclusion lanes; sweep the few excluded
    // values afterwards. Bit-identical to the fused scalar emission.
    IntersectSimd(a, b, out);
    for (size_t i = 0; i < n_excludes; ++i) EraseValue(out, excludes[i]);
  } else {
    const VertexId* pa = a.begin();
    const VertexId* pb = b.begin();
    const VertexId* ea = a.end();
    const VertexId* eb = b.end();
    while (pa != ea && pb != eb) {
      if (*pa < *pb) {
        ++pa;
      } else if (*pb < *pa) {
        ++pb;
      } else {
        if (!IsExcluded(*pa, excludes, n_excludes)) out->push_back(*pa);
        ++pa;
        ++pb;
      }
    }
  }
}

void FilterGreater(VertexSetView in, VertexId bound, VertexSet* out) {
  out->clear();
  const VertexId* first =
      std::upper_bound(in.begin(), in.end(), bound);
  out->assign(first, in.end());
}

void FilterLess(VertexSetView in, VertexId bound, VertexSet* out) {
  out->clear();
  const VertexId* last = std::lower_bound(in.begin(), in.end(), bound);
  out->assign(in.begin(), last);
}

void EraseValue(VertexSet* out, VertexId v) {
  auto it = std::lower_bound(out->begin(), out->end(), v);
  if (it != out->end() && *it == v) out->erase(it);
}

}  // namespace benu
