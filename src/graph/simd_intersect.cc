#include "graph/simd_intersect.h"

#include <atomic>
#include <cstdlib>

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define BENU_HAVE_AVX2_KERNELS 1
#include <immintrin.h>
#else
#define BENU_HAVE_AVX2_KERNELS 0
#endif

namespace benu {
namespace simd {
namespace {

// Portable reference used as the tail loop of the vector kernels and as
// the whole kernel when AVX2 is unavailable. Mirrors IntersectMerge in
// vertex_set.cc so every path emits identical output.
size_t ScalarTail(const uint32_t* a, const uint32_t* ea, const uint32_t* b,
                  const uint32_t* eb, uint32_t* out) {
  size_t count = 0;
  while (a != ea && b != eb) {
    if (*a < *b) {
      ++a;
    } else if (*b < *a) {
      ++b;
    } else {
      out[count++] = *a;
      ++a;
      ++b;
    }
  }
  return count;
}

size_t ScalarTailSize(const uint32_t* a, const uint32_t* ea, const uint32_t* b,
                      const uint32_t* eb, size_t count, size_t limit) {
  while (a != ea && b != eb && count < limit) {
    if (*a < *b) {
      ++a;
    } else if (*b < *a) {
      ++b;
    } else {
      ++count;
      ++a;
      ++b;
    }
  }
  return count;
}

#if BENU_HAVE_AVX2_KERNELS

// kCompress[m] permutes the lanes selected by bitmask m to the front, the
// compress-store idiom for AVX2 (which lacks AVX-512's vpcompressd).
struct CompressTable {
  alignas(32) uint32_t idx[256][8];
};

constexpr CompressTable MakeCompressTable() {
  CompressTable t{};
  for (int m = 0; m < 256; ++m) {
    int k = 0;
    for (int lane = 0; lane < 8; ++lane) {
      if (m & (1 << lane)) t.idx[m][k++] = static_cast<uint32_t>(lane);
    }
    for (; k < 8; ++k) t.idx[m][k] = 0;
  }
  return t;
}

constexpr CompressTable kCompress = MakeCompressTable();

// Bitmask of lanes of va that equal ANY lane of vb. Because both blocks
// come from strictly ascending sequences, each va lane matches at most
// one vb lane, so the OR over the 8 cyclic rotations is exact.
__attribute__((target("avx2"))) inline int BlockMatchMask(__m256i va,
                                                          __m256i vb) {
  const __m256i rotate = _mm256_setr_epi32(1, 2, 3, 4, 5, 6, 7, 0);
  __m256i cmp = _mm256_cmpeq_epi32(va, vb);
  for (int r = 1; r < 8; ++r) {
    vb = _mm256_permutevar8x32_epi32(vb, rotate);
    cmp = _mm256_or_si256(cmp, _mm256_cmpeq_epi32(va, vb));
  }
  return _mm256_movemask_ps(_mm256_castsi256_ps(cmp));
}

#endif  // BENU_HAVE_AVX2_KERNELS

bool CpuHasAvx2() {
#if BENU_HAVE_AVX2_KERNELS
  return __builtin_cpu_supports("avx2") != 0;
#else
  return false;
#endif
}

std::atomic<bool>& EnabledFlag() {
  static std::atomic<bool> enabled = [] {
    const char* env = std::getenv("BENU_DISABLE_SIMD");
    const bool disabled = env != nullptr && env[0] == '1';
    return CpuHasAvx2() && !disabled;
  }();
  return enabled;
}

}  // namespace

bool SimdEnabled() { return EnabledFlag().load(std::memory_order_relaxed); }

bool SetSimdEnabled(bool enabled) {
  const bool effective = enabled && CpuHasAvx2();
  EnabledFlag().store(effective, std::memory_order_relaxed);
  return effective;
}

const char* ActiveKernelName() { return SimdEnabled() ? "avx2" : "scalar"; }

#if BENU_HAVE_AVX2_KERNELS

__attribute__((target("avx2"))) size_t IntersectAvx2(const uint32_t* a,
                                                     size_t na,
                                                     const uint32_t* b,
                                                     size_t nb, uint32_t* out) {
  size_t i = 0;
  size_t j = 0;
  size_t count = 0;
  // Block-wise all-pairs comparison: advance the block whose max is
  // smaller (both when equal). Any common value ≤ min(a_max, b_max) lies
  // in the current block pair, so nothing is skipped; emitting from va
  // lanes only means nothing is double-counted.
  while (i + 8 <= na && j + 8 <= nb) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + j));
    const uint32_t a_max = a[i + 7];
    const uint32_t b_max = b[j + 7];
    const int mask = BlockMatchMask(va, vb);
    const __m256i idx = _mm256_load_si256(
        reinterpret_cast<const __m256i*>(kCompress.idx[mask]));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + count),
                        _mm256_permutevar8x32_epi32(va, idx));
    count += static_cast<size_t>(__builtin_popcount(
        static_cast<unsigned>(mask)));
    if (a_max <= b_max) i += 8;
    if (b_max <= a_max) j += 8;
  }
  return count + ScalarTail(a + i, a + na, b + j, b + nb, out + count);
}

__attribute__((target("avx2"))) size_t IntersectSizeAvx2(const uint32_t* a,
                                                         size_t na,
                                                         const uint32_t* b,
                                                         size_t nb,
                                                         size_t limit) {
  size_t i = 0;
  size_t j = 0;
  size_t count = 0;
  while (i + 8 <= na && j + 8 <= nb && count < limit) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + j));
    const uint32_t a_max = a[i + 7];
    const uint32_t b_max = b[j + 7];
    count += static_cast<size_t>(__builtin_popcount(
        static_cast<unsigned>(BlockMatchMask(va, vb))));
    if (a_max <= b_max) i += 8;
    if (b_max <= a_max) j += 8;
  }
  if (count >= limit) return limit;
  return ScalarTailSize(a + i, a + na, b + j, b + nb, count, limit);
}

__attribute__((target("avx2"))) size_t DecodeDeltaBlocksAvx2(
    const uint8_t** p, const uint8_t* end, uint32_t* prev, uint32_t* out,
    size_t max) {
  const uint8_t* in = *p;
  uint32_t base = *prev;
  size_t n = 0;
  while (n + 8 <= max && end - in >= 8) {
    uint64_t chunk;
    __builtin_memcpy(&chunk, in, sizeof(chunk));
    // A set high bit anywhere means one of the next 8 varints spans
    // multiple bytes; hand the chunk back to the scalar loop.
    if ((chunk & 0x8080808080808080ull) != 0) break;
    const __m256i deltas =
        _mm256_cvtepu8_epi32(_mm_loadl_epi64(
            reinterpret_cast<const __m128i*>(in)));
    // In-register inclusive prefix sum: two shifted adds within each
    // 128-bit lane, then carry the low lane's total into the high lane.
    __m256i sum =
        _mm256_add_epi32(deltas, _mm256_slli_si256(deltas, 4));
    sum = _mm256_add_epi32(sum, _mm256_slli_si256(sum, 8));
    const __m256i carry = _mm256_blend_epi32(
        _mm256_setzero_si256(),
        _mm256_permutevar8x32_epi32(sum, _mm256_set1_epi32(3)), 0xF0);
    sum = _mm256_add_epi32(sum, carry);
    const __m256i values = _mm256_add_epi32(sum, _mm256_set1_epi32(
        static_cast<int>(base)));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + n), values);
    n += 8;
    base = out[n - 1];
    in += 8;
  }
  *p = in;
  *prev = base;
  return n;
}

#else  // !BENU_HAVE_AVX2_KERNELS

// Safe stand-ins so misdirected calls still compute the right answer on
// platforms without the vector kernels (SimdEnabled() is always false
// there, so the dispatcher never takes this path).
size_t IntersectAvx2(const uint32_t* a, size_t na, const uint32_t* b,
                     size_t nb, uint32_t* out) {
  return ScalarTail(a, a + na, b, b + nb, out);
}

size_t IntersectSizeAvx2(const uint32_t* a, size_t na, const uint32_t* b,
                         size_t nb, size_t limit) {
  return ScalarTailSize(a, a + na, b, b + nb, 0, limit);
}

size_t DecodeDeltaBlocksAvx2(const uint8_t** p, const uint8_t* end,
                             uint32_t* prev, uint32_t* out, size_t max) {
  (void)p;
  (void)end;
  (void)prev;
  (void)out;
  (void)max;
  return 0;  // no vector path: the caller's scalar loop decodes it all
}

#endif  // BENU_HAVE_AVX2_KERNELS

}  // namespace simd
}  // namespace benu
