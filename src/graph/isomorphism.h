#ifndef BENU_GRAPH_ISOMORPHISM_H_
#define BENU_GRAPH_ISOMORPHISM_H_

#include <vector>

#include "common/types.h"
#include "graph/graph.h"

namespace benu {

/// A permutation of V(P): perm[i] is the image of vertex i.
using Permutation = std::vector<VertexId>;

/// Enumerates all automorphisms of `pattern` by backtracking. Pattern
/// graphs are small (n ≤ ~10), so the exponential worst case is irrelevant
/// in practice; the 10-clique (10! = 3.6M automorphisms) is the heaviest
/// case in the paper's Exp-1 and finishes in seconds.
std::vector<Permutation> Automorphisms(const Graph& pattern);

/// True iff `a` and `b` are isomorphic. Intended for small graphs (tests,
/// plan verification); does degree-sequence pre-filtering then backtracking.
bool AreIsomorphic(const Graph& a, const Graph& b);

/// True iff u and v are syntactically equivalent in `pattern` (§IV-D):
/// Γ(u) − {v} == Γ(v) − {u}. SE vertices are interchangeable in matching
/// orders, which drives the dual-pruning rule of Algorithm 3.
bool SyntacticallyEquivalent(const Graph& pattern, VertexId u, VertexId v);

/// Returns some minimum vertex cover of `pattern` (exact search; patterns
/// are small). Used by the VCBC compression support to find the smallest
/// prefix of a matching order that covers every edge.
std::vector<VertexId> MinimumVertexCover(const Graph& pattern);

/// True iff `vertices` covers every edge of `pattern`.
bool IsVertexCover(const Graph& pattern, const std::vector<VertexId>& vertices);

}  // namespace benu

#endif  // BENU_GRAPH_ISOMORPHISM_H_
