#include "graph/graph.h"

#include <algorithm>
#include <numeric>

namespace benu {

StatusOr<Graph> Graph::FromEdges(
    size_t num_vertices,
    const std::vector<std::pair<VertexId, VertexId>>& edges) {
  std::vector<std::vector<VertexId>> adj(num_vertices);
  for (const auto& [u, v] : edges) {
    if (u >= num_vertices || v >= num_vertices) {
      return Status::InvalidArgument("edge endpoint out of range");
    }
    if (u == v) {
      return Status::InvalidArgument("self loop not allowed in simple graph");
    }
    adj[u].push_back(v);
    adj[v].push_back(u);
  }
  Graph g;
  g.offsets_.assign(1, 0);
  g.offsets_.reserve(num_vertices + 1);
  for (size_t v = 0; v < num_vertices; ++v) {
    auto& nbrs = adj[v];
    std::sort(nbrs.begin(), nbrs.end());
    nbrs.erase(std::unique(nbrs.begin(), nbrs.end()), nbrs.end());
    g.neighbors_.insert(g.neighbors_.end(), nbrs.begin(), nbrs.end());
    g.offsets_.push_back(g.neighbors_.size());
  }
  return g;
}

bool Graph::HasEdge(VertexId u, VertexId v) const {
  // Probe the smaller adjacency set.
  if (Degree(u) > Degree(v)) std::swap(u, v);
  return Contains(Adjacency(u), v);
}

std::vector<std::pair<VertexId, VertexId>> Graph::Edges() const {
  std::vector<std::pair<VertexId, VertexId>> edges;
  edges.reserve(NumEdges());
  for (VertexId u = 0; u < NumVertices(); ++u) {
    for (VertexId v : Adjacency(u)) {
      if (u < v) edges.emplace_back(u, v);
    }
  }
  return edges;
}

size_t Graph::MaxDegree() const {
  size_t best = 0;
  for (VertexId v = 0; v < NumVertices(); ++v) best = std::max(best, Degree(v));
  return best;
}

uint64_t Graph::ContentHash() const {
  uint64_t h = 0xcbf29ce484222325ull;  // FNV-1a 64
  const auto mix = [&h](uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xFF;
      h *= 0x100000001b3ull;
    }
  };
  mix(NumVertices());
  for (uint64_t off : offsets_) mix(off);
  for (VertexId v : neighbors_) mix(v);
  return h;
}

Graph Graph::RelabelByDegree(std::vector<VertexId>* old_to_new) const {
  const size_t n = NumVertices();
  std::vector<VertexId> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [this](VertexId a, VertexId b) {
    if (Degree(a) != Degree(b)) return Degree(a) < Degree(b);
    return a < b;
  });
  std::vector<VertexId> mapping(n);
  for (size_t rank = 0; rank < n; ++rank) {
    mapping[order[rank]] = static_cast<VertexId>(rank);
  }
  std::vector<std::pair<VertexId, VertexId>> edges;
  edges.reserve(NumEdges());
  for (const auto& [u, v] : Edges()) edges.emplace_back(mapping[u], mapping[v]);
  auto relabeled = FromEdges(n, edges);
  if (old_to_new != nullptr) *old_to_new = std::move(mapping);
  return std::move(relabeled).value();
}

StatusOr<Graph> Graph::InducedSubgraph(
    const std::vector<VertexId>& vertices) const {
  std::vector<VertexId> local(NumVertices(), kInvalidVertex);
  for (size_t i = 0; i < vertices.size(); ++i) {
    VertexId v = vertices[i];
    if (v >= NumVertices()) {
      return Status::InvalidArgument("induced vertex out of range");
    }
    if (local[v] != kInvalidVertex) {
      return Status::InvalidArgument("duplicate vertex in induced set");
    }
    local[v] = static_cast<VertexId>(i);
  }
  std::vector<std::pair<VertexId, VertexId>> edges;
  for (size_t i = 0; i < vertices.size(); ++i) {
    for (VertexId w : Adjacency(vertices[i])) {
      if (local[w] != kInvalidVertex && vertices[i] < w) {
        edges.emplace_back(static_cast<VertexId>(i), local[w]);
      }
    }
  }
  return FromEdges(vertices.size(), edges);
}

bool Graph::IsConnected() const {
  const size_t n = NumVertices();
  if (n <= 1) return true;
  std::vector<char> seen(n, 0);
  std::vector<VertexId> stack = {0};
  seen[0] = 1;
  size_t visited = 1;
  while (!stack.empty()) {
    VertexId v = stack.back();
    stack.pop_back();
    for (VertexId w : Adjacency(v)) {
      if (!seen[w]) {
        seen[w] = 1;
        ++visited;
        stack.push_back(w);
      }
    }
  }
  return visited == n;
}

std::vector<std::vector<VertexId>> Graph::ConnectedComponents() const {
  const size_t n = NumVertices();
  std::vector<char> seen(n, 0);
  std::vector<std::vector<VertexId>> components;
  for (VertexId start = 0; start < n; ++start) {
    if (seen[start]) continue;
    std::vector<VertexId> component;
    std::vector<VertexId> stack = {start};
    seen[start] = 1;
    while (!stack.empty()) {
      VertexId v = stack.back();
      stack.pop_back();
      component.push_back(v);
      for (VertexId w : Adjacency(v)) {
        if (!seen[w]) {
          seen[w] = 1;
          stack.push_back(w);
        }
      }
    }
    std::sort(component.begin(), component.end());
    components.push_back(std::move(component));
  }
  return components;
}

}  // namespace benu
