#include "graph/patterns.h"

#include <cstdlib>
#include <utility>

#include "common/logging.h"

namespace benu {
namespace {

using EdgeList = std::vector<std::pair<VertexId, VertexId>>;

Graph BuildOrDie(size_t n, const EdgeList& edges) {
  auto result = Graph::FromEdges(n, edges);
  BENU_CHECK(result.ok()) << result.status().ToString();
  return std::move(result).value();
}

// Diamond (chordal square): C4 on 0-1-2-3 plus the chord (0,2). This is
// the shared core of q7–q9 ("the chordal square, shown with bold edges in
// Fig. 6").
Graph MakeDiamond() {
  return BuildOrDie(4, {{0, 1}, {1, 2}, {2, 3}, {3, 0}, {0, 2}});
}

}  // namespace

Graph MakeClique(size_t n) {
  EdgeList edges;
  for (VertexId u = 0; u < n; ++u) {
    for (VertexId v = u + 1; v < n; ++v) edges.emplace_back(u, v);
  }
  return BuildOrDie(n, edges);
}

Graph MakeCycle(size_t n) {
  BENU_CHECK(n >= 3) << "cycle needs at least 3 vertices";
  EdgeList edges;
  for (VertexId v = 0; v < n; ++v) {
    edges.emplace_back(v, static_cast<VertexId>((v + 1) % n));
  }
  return BuildOrDie(n, edges);
}

Graph MakePath(size_t n) {
  EdgeList edges;
  for (VertexId v = 0; v + 1 < n; ++v) {
    edges.emplace_back(v, static_cast<VertexId>(v + 1));
  }
  return BuildOrDie(n, edges);
}

Graph MakeStar(size_t leaves) {
  EdgeList edges;
  for (VertexId v = 1; v <= leaves; ++v) edges.emplace_back(0, v);
  return BuildOrDie(leaves + 1, edges);
}

StatusOr<Graph> GetPattern(const std::string& name) {
  if (name == "triangle") return MakeClique(3);
  if (name == "square") return MakeCycle(4);
  if (name == "diamond" || name == "chordal-square") return MakeDiamond();
  if (name.rfind("clique", 0) == 0) {
    char* end = nullptr;
    long k = std::strtol(name.c_str() + 6, &end, 10);
    if (end == nullptr || *end != '\0' || k < 2) {
      return Status::InvalidArgument("bad clique size in " + name);
    }
    return MakeClique(static_cast<size_t>(k));
  }
  // Fig. 6 reconstruction (DESIGN.md §3).
  if (name == "q1") {
    // House: square 0-1-2-3 with apex 4 on edge (0,1).
    return BuildOrDie(5, {{0, 1}, {1, 2}, {2, 3}, {3, 0}, {4, 0}, {4, 1}});
  }
  if (name == "q2") {
    // K4 with a tail.
    return BuildOrDie(5,
                      {{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}, {3, 4}});
  }
  if (name == "q3") {
    // Bowtie: two triangles sharing vertex 2.
    return BuildOrDie(5, {{0, 1}, {0, 2}, {1, 2}, {2, 3}, {2, 4}, {3, 4}});
  }
  if (name == "q4") {
    // K4 with an ear: K4 on 0..3 plus vertex 4 adjacent to 0 and 1.
    return BuildOrDie(
        5, {{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}, {4, 0}, {4, 1}});
  }
  if (name == "q5") {
    // 5-cycle: the hardest 5-vertex query of the evaluation.
    return MakeCycle(5);
  }
  if (name == "q6") {
    // Dumbbell: triangles 0-1-2 and 3-4-5 bridged by (2,3).
    return BuildOrDie(6, {{0, 1}, {0, 2}, {1, 2}, {3, 4}, {3, 5}, {4, 5}, {2, 3}});
  }
  if (name == "q7") {
    // Diamond core (0,1,2,3; chord 0-2) + 4 adj {0,1} + 5 adj {2,3}.
    return BuildOrDie(6, {{0, 1}, {1, 2}, {2, 3}, {3, 0}, {0, 2},
                          {4, 0}, {4, 1}, {5, 2}, {5, 3}});
  }
  if (name == "q8") {
    // Diamond core + two extra vertices both adjacent to the chord {0,2}.
    return BuildOrDie(6, {{0, 1}, {1, 2}, {2, 3}, {3, 0}, {0, 2},
                          {4, 0}, {4, 2}, {5, 0}, {5, 2}});
  }
  if (name == "q9") {
    // Diamond core + 4 adj {0,1} + 5 adj {0,3}.
    return BuildOrDie(6, {{0, 1}, {1, 2}, {2, 3}, {3, 0}, {0, 2},
                          {4, 0}, {4, 1}, {5, 0}, {5, 3}});
  }
  return Status::NotFound("unknown pattern: " + name);
}

std::vector<std::string> Fig6QueryNames() {
  return {"q1", "q2", "q3", "q4", "q5", "q6", "q7", "q8", "q9"};
}

std::vector<std::string> AllPatternNames() {
  std::vector<std::string> names = {"triangle", "square", "diamond",
                                    "clique4", "clique5"};
  for (const std::string& q : Fig6QueryNames()) names.push_back(q);
  return names;
}

}  // namespace benu
