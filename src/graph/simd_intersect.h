#ifndef BENU_GRAPH_SIMD_INTERSECT_H_
#define BENU_GRAPH_SIMD_INTERSECT_H_

#include <cstddef>
#include <cstdint>

namespace benu {
namespace simd {

/// Vectorized sorted-set intersection kernels for the executor hot loop.
///
/// The AVX2 kernels are compiled with per-function target attributes, so
/// the library builds on any x86-64 (or non-x86) toolchain without global
/// -mavx2; the choice between the vector and scalar paths is made once at
/// startup from CPUID and can be overridden:
///   - environment: BENU_DISABLE_SIMD=1 forces the portable scalar path;
///   - programmatically: SetSimdEnabled(false/true), used by the
///     differential tests to run both paths inside one binary.
///
/// All kernels operate on strictly ascending uint32 sequences (the
/// VertexSet invariant) and produce exactly the same output, in the same
/// order, as the scalar merge: callers may mix paths freely without
/// changing results.

/// True iff the AVX2 kernels are compiled in and the running CPU supports
/// them and they have not been disabled.
bool SimdEnabled();

/// Overrides kernel selection at runtime (tests / benchmarks). Enabling
/// has no effect when the CPU lacks AVX2 or the kernels were not compiled
/// in; returns the resulting effective state.
bool SetSimdEnabled(bool enabled);

/// Name of the active intersection kernel family: "avx2" or "scalar".
const char* ActiveKernelName();

/// Intersects a[0..na) with b[0..nb) into out, returning the number of
/// elements written. `out` must have room for min(na, nb) + 8 elements:
/// the vector epilogue stores a full 8-lane block of which only the
/// leading lanes are valid. Requires AVX2 (call only when SimdEnabled()).
size_t IntersectAvx2(const uint32_t* a, size_t na, const uint32_t* b,
                     size_t nb, uint32_t* out);

/// Returns |a ∩ b| without materializing it, stopping early once the
/// count reaches `limit`. Requires AVX2 (call only when SimdEnabled()).
size_t IntersectSizeAvx2(const uint32_t* a, size_t na, const uint32_t* b,
                         size_t nb, size_t limit);

/// Block decoder for the delta+varint adjacency codec (adj_codec.h):
/// consumes runs of 8 single-byte varints (one 8-byte load + a high-bit
/// test), widens them to 8 uint32 deltas, prefix-sums them in-register
/// and adds the running value *prev. Decodes at most `max` values
/// (rounded down to a multiple of 8), stopping at the first 8-byte
/// chunk containing a multi-byte varint; the caller's scalar loop picks
/// up from the updated *p / *prev. Returns the number of values
/// written. Requires AVX2 (call only when SimdEnabled()).
size_t DecodeDeltaBlocksAvx2(const uint8_t** p, const uint8_t* end,
                             uint32_t* prev, uint32_t* out, size_t max);

}  // namespace simd
}  // namespace benu

#endif  // BENU_GRAPH_SIMD_INTERSECT_H_
