#ifndef BENU_GRAPH_IO_H_
#define BENU_GRAPH_IO_H_

#include <string>

#include "common/status.h"
#include "graph/graph.h"

namespace benu {

/// Parses an undirected edge list: one `u v` pair per line, whitespace
/// separated; lines starting with '#' or '%' are comments. Vertex ids are
/// compacted to 0..N-1 in order of first appearance, matching the SNAP
/// dataset convention where ids are sparse.
StatusOr<Graph> LoadEdgeListFile(const std::string& path);

/// Parses the same format from an in-memory string (used by tests).
StatusOr<Graph> ParseEdgeList(const std::string& text);

/// Writes `graph` as an edge list ("u v" per line, u < v) to `path`.
Status SaveEdgeListFile(const Graph& graph, const std::string& path);

}  // namespace benu

#endif  // BENU_GRAPH_IO_H_
