#ifndef BENU_GRAPH_VERTEX_SET_H_
#define BENU_GRAPH_VERTEX_SET_H_

#include <cstddef>
#include <vector>

#include "common/types.h"

namespace benu {

/// A set of vertex ids kept in strictly ascending order. Adjacency sets,
/// temporary sets (T_i) and candidate sets (C_i) in execution plans are all
/// VertexSets; the INT instruction is a sorted-set intersection.
using VertexSet = std::vector<VertexId>;

/// Span-like non-owning view over a sorted vertex sequence, so intersection
/// kernels accept both owned sets and CSR adjacency slices without copying.
struct VertexSetView {
  const VertexId* data = nullptr;
  size_t size = 0;

  VertexSetView() = default;
  VertexSetView(const VertexId* d, size_t n) : data(d), size(n) {}
  /// Implicit view of an owned set, mirroring std::span's converting ctor.
  VertexSetView(const VertexSet& s) : data(s.data()), size(s.size()) {}

  const VertexId* begin() const { return data; }
  const VertexId* end() const { return data + size; }
  bool empty() const { return size == 0; }
  VertexId operator[](size_t i) const { return data[i]; }
};

/// Intersects two sorted sets into `out` (cleared first). Uses a linear
/// merge when the sizes are comparable and galloping (binary probing of the
/// larger set) when one side is much smaller, the standard kernel for
/// worst-case-optimal joins and backtracking matchers.
void Intersect(VertexSetView a, VertexSetView b, VertexSet* out);

/// Returns |a ∩ b| without materializing the intersection.
size_t IntersectSize(VertexSetView a, VertexSetView b);

/// True iff sorted set `s` contains `v` (binary search).
bool Contains(VertexSetView s, VertexId v);

/// Copies `in` to `out` keeping only elements strictly greater than
/// `bound`. Implements the symmetry-breaking filter `> f_i`.
void FilterGreater(VertexSetView in, VertexId bound, VertexSet* out);

/// Copies `in` to `out` keeping only elements strictly smaller than
/// `bound`. Implements the symmetry-breaking filter `< f_i`.
void FilterLess(VertexSetView in, VertexId bound, VertexSet* out);

/// Removes `v` from `out` in place if present (injective filter `≠ f_i`).
void EraseValue(VertexSet* out, VertexId v);

}  // namespace benu

#endif  // BENU_GRAPH_VERTEX_SET_H_
