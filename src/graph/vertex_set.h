#ifndef BENU_GRAPH_VERTEX_SET_H_
#define BENU_GRAPH_VERTEX_SET_H_

#include <cstddef>
#include <limits>
#include <vector>

#include "common/types.h"

namespace benu {

/// A set of vertex ids kept in strictly ascending order. Adjacency sets,
/// temporary sets (T_i) and candidate sets (C_i) in execution plans are all
/// VertexSets; the INT instruction is a sorted-set intersection.
using VertexSet = std::vector<VertexId>;

/// Span-like non-owning view over a sorted vertex sequence, so intersection
/// kernels accept both owned sets and CSR adjacency slices without copying.
struct VertexSetView {
  const VertexId* data = nullptr;
  size_t size = 0;

  VertexSetView() = default;
  VertexSetView(const VertexId* d, size_t n) : data(d), size(n) {}
  /// Implicit view of an owned set, mirroring std::span's converting ctor.
  VertexSetView(const VertexSet& s) : data(s.data()), size(s.size()) {}

  const VertexId* begin() const { return data; }
  const VertexId* end() const { return data + size; }
  bool empty() const { return size == 0; }
  VertexId operator[](size_t i) const { return data[i]; }
};

/// Intersects two sorted sets into `out` (cleared first). Dispatches
/// adaptively on the size ratio: galloping (binary probing of the larger
/// set) when one side is much smaller, otherwise an AVX2 block kernel when
/// the CPU supports it (see graph/simd_intersect.h) with the linear merge
/// as the portable fallback. All paths emit identical output.
void Intersect(VertexSetView a, VertexSetView b, VertexSet* out);

/// Returns min(|a ∩ b|, limit) without materializing the intersection,
/// stopping as soon as `limit` common elements have been seen — callers
/// that only need "at least k?" (e.g. cost estimation) pass k and skip the
/// rest of the scan. The default limit never triggers.
size_t IntersectSize(VertexSetView a, VertexSetView b,
                     size_t limit = std::numeric_limits<size_t>::max());

/// True iff sorted set `s` contains `v` (binary search).
bool Contains(VertexSetView s, VertexId v);

/// Narrows `v` to its subrange with values in [lo, hi) via two binary
/// searches. The compiled form of the symmetry-breaking order filters
/// `> f` (lo = f+1) and `< f` (hi = f): clamping an intersection operand
/// replaces the intersect-then-erase post-pass. Returns an empty view when
/// lo >= hi.
VertexSetView ClampView(VertexSetView v, VertexId lo, VertexId hi);

/// Copies `in` to `out` (cleared first) dropping the values in
/// excludes[0..n_excludes). The injective filter `≠ f` fused into the copy
/// loop; excludes need not be sorted but must be few (linear check).
void CopyExcluding(VertexSetView in, const VertexId* excludes,
                   size_t n_excludes, VertexSet* out);

/// Intersect with the `≠ f` filters folded in: out = (a ∩ b) minus
/// excludes[0..n_excludes). Identical to Intersect followed by removal,
/// without the extra pass on the scalar paths.
void IntersectExcluding(VertexSetView a, VertexSetView b,
                        const VertexId* excludes, size_t n_excludes,
                        VertexSet* out);

/// Copies `in` to `out` keeping only elements strictly greater than
/// `bound`. Implements the symmetry-breaking filter `> f_i`.
void FilterGreater(VertexSetView in, VertexId bound, VertexSet* out);

/// Copies `in` to `out` keeping only elements strictly smaller than
/// `bound`. Implements the symmetry-breaking filter `< f_i`.
void FilterLess(VertexSetView in, VertexId bound, VertexSet* out);

/// Removes `v` from `out` in place if present (injective filter `≠ f_i`).
void EraseValue(VertexSet* out, VertexId v);

}  // namespace benu

#endif  // BENU_GRAPH_VERTEX_SET_H_
