#ifndef BENU_GRAPH_PATTERNS_H_
#define BENU_GRAPH_PATTERNS_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "graph/graph.h"

namespace benu {

/// Catalog of the pattern graphs used throughout the paper's evaluation:
/// the basic motifs of Table I (triangle, 4-clique, chordal square), the
/// extra Exp-6 patterns (square, clique5) and the nine queries q1–q9 of
/// Fig. 6. The exact drawings of Fig. 6 are not part of the provided paper
/// text; DESIGN.md §3 documents the reconstruction and the textual
/// constraints it satisfies.

/// Returns the named pattern. Known names: "triangle", "square",
/// "diamond" (alias "chordal-square"), "clique4", "clique5", and
/// "q1".."q9". Cliques of any size are available as "cliqueK" (K ≥ 2).
StatusOr<Graph> GetPattern(const std::string& name);

/// Names of the Fig. 6 queries in order: {"q1", ..., "q9"}.
std::vector<std::string> Fig6QueryNames();

/// Names of every catalog pattern (Fig. 6 queries plus basic motifs).
std::vector<std::string> AllPatternNames();

/// Builds the complete graph K_n.
Graph MakeClique(size_t n);

/// Builds the cycle C_n (n ≥ 3).
Graph MakeCycle(size_t n);

/// Builds the path P_n with n vertices (n-1 edges).
Graph MakePath(size_t n);

/// Builds the star with `leaves` leaves (center is vertex 0).
Graph MakeStar(size_t leaves);

}  // namespace benu

#endif  // BENU_GRAPH_PATTERNS_H_
