#ifndef BENU_GRAPH_ADJ_CODEC_H_
#define BENU_GRAPH_ADJ_CODEC_H_

#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "graph/vertex_set.h"

namespace benu::codec {

// ---------------------------------------------------------------------
// Delta+varint codec for sorted adjacency sets (DESIGN.md §2f).
//
// A VertexSet is strictly ascending, so consecutive differences are
// small positive integers on relabeled graphs — RelabelByDegree clusters
// ids by degree, which keeps neighborhoods dense in id space. The codec
// stores the sequence as LEB128 varints of the differences of the
// shifted sequence v[i] + 1:
//
//   d[0] = v[0] + 1,   d[i] = v[i] - v[i-1]   (every d >= 1)
//
// Decoding is one uniform recurrence, prev += d, with prev initialized
// to 0xFFFFFFFF (= -1 mod 2^32): no special case for the first value,
// which is what lets the SIMD decoder run the same prefix-sum kernel on
// every 8-delta block. Typical adjacency sets encode in 1-2 bytes per
// entry versus 4 raw, which is where the >= 2x wire/cache reduction of
// the compressed path comes from.
//
// Two decoding tiers:
//   - Validate()/DecodeValidated(): a full structural check (varint
//     termination, d >= 1, 32-bit range, exact byte/count consumption)
//     for bytes that arrived over the wire — a malformed stream is a
//     Status error, never UB or a crash.
//   - DecodeCursor: a trusting streaming decoder for bytes that were
//     validated at ingress (or produced in-process). The hot intersect
//     kernels drive it block by block so an intersection never
//     materializes the full decoded set.
//
// The SIMD fast path decodes 8 single-byte deltas at a time (one 8-byte
// load, a high-bit test, widening + prefix sum in AVX2) and is selected
// by the same runtime dispatch as the intersect kernels: CPUID at
// startup, BENU_DISABLE_SIMD=1 / simd::SetSimdEnabled to force the
// portable scalar path. Both paths emit identical values.

/// One delta+varint encoded sorted set. `count` is the number of decoded
/// entries; `bytes` the varint stream.
struct EncodedSet {
  uint32_t count = 0;
  std::vector<uint8_t> bytes;

  /// Raw payload this stream replaces (count entries of 4 bytes each).
  size_t raw_bytes() const { return count * sizeof(VertexId); }
};

/// Upper bound on the encoded size of a set with `count` entries (every
/// varint at its 5-byte maximum).
constexpr size_t MaxEncodedBytes(size_t count) { return count * 5; }

/// True iff the compressed adjacency path should be used: `requested`
/// and not globally killed by BENU_DISABLE_COMPRESSION=1 (read once).
bool CompressionEnabled(bool requested);

/// Encodes a strictly ascending set. `out` is overwritten.
void Encode(VertexSetView set, EncodedSet* out);

/// Structural validation of an untrusted stream: every varint must
/// terminate within `size` bytes, every delta must be >= 1 and within
/// 32-bit range, exactly `count` varints must consume exactly `size`
/// bytes, and the decoded sequence must stay within 32 bits. O(size),
/// no allocation.
Status Validate(const uint8_t* data, size_t size, uint32_t count);

/// Validate() + full decode into `out` (cleared first).
Status DecodeValidated(const uint8_t* data, size_t size, uint32_t count,
                       VertexSet* out);

/// Streaming decoder over a *trusted* (in-process or ingress-validated)
/// stream. Not thread-safe; cheap to construct per use.
class DecodeCursor {
 public:
  explicit DecodeCursor(const EncodedSet& set)
      : DecodeCursor(set.bytes.data(), set.bytes.size(), set.count) {}
  DecodeCursor(const uint8_t* data, size_t size, uint32_t count);

  /// Values not yet decoded.
  uint32_t remaining() const { return remaining_; }

  /// Decodes up to `max` values into out[0..), returning how many were
  /// written (0 iff the stream is exhausted). Runs the AVX2 block
  /// decoder on runs of single-byte deltas when simd::SimdEnabled().
  size_t Next(VertexId* out, size_t max);

 private:
  const uint8_t* p_;
  const uint8_t* end_;
  uint32_t remaining_;
  uint32_t prev_ = 0xFFFFFFFFu;  // implicit value before the first entry
};

/// Fully decodes a trusted stream into `out` (resized to set.count).
void DecodeAll(const EncodedSet& set, VertexSet* out);

// --- fused kernels (never materialize the full decoded set) -----------

/// out = {v in set : lo <= v < hi, v not in excludes[0..n_excludes)}.
/// The compiled form of a single-operand candidate instruction over an
/// encoded DBQ result: decode stops at the first value >= hi.
void DecodeClamped(const EncodedSet& set, VertexId lo, VertexId hi,
                   const VertexId* excludes, size_t n_excludes,
                   VertexSet* out);

/// out = (set ∩ b) restricted to [lo, hi) minus excludes. Decodes block
/// by block through a DecodeCursor and merges each block against the
/// (clamped) view, so only the prefix of the stream overlapping b is
/// ever decoded. Identical output to DecodeAll + IntersectExcluding on
/// the clamped inputs.
void IntersectEncoded(const EncodedSet& set, VertexSetView b, VertexId lo,
                      VertexId hi, const VertexId* excludes,
                      size_t n_excludes, VertexSet* out);

/// min(|set ∩ b|, limit) without materializing anything.
size_t IntersectSizeEncoded(
    const EncodedSet& set, VertexSetView b,
    size_t limit = std::numeric_limits<size_t>::max());

// --- codec metrics (docs/metrics.md, codec.*) -------------------------

/// Accounts `sets` encoded sets totalling `raw_bytes` before and
/// `encoded_bytes` after encoding (codec.encode.*). Called by the
/// pre-encoding stores (simulated transport, KvPartitionServer).
void NoteEncoded(size_t sets, size_t raw_bytes, size_t encoded_bytes);

/// Accounts one full materialization of `values` entries from an
/// encoded stream (codec.decode.*): the fallback the fused kernels
/// exist to avoid.
void NoteDecoded(size_t values);

/// Accounts intersections served by the fused encoded kernels vs. ones
/// that had to fully decode an operand first (codec.intersect.*).
/// Callers batch-accumulate and flush, so `n` may be > 1.
void NoteFusedIntersects(size_t n);
void NoteFallbackDecodes(size_t n);

}  // namespace benu::codec

#endif  // BENU_GRAPH_ADJ_CODEC_H_
