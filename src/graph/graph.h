#ifndef BENU_GRAPH_GRAPH_H_
#define BENU_GRAPH_GRAPH_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "graph/vertex_set.h"

namespace benu {

/// An undirected, unlabeled simple graph in CSR (compressed sparse row)
/// form. Used for both the data graph G and the pattern graph P.
///
/// Adjacency sets are sorted ascending, which makes `Adjacency(v)` directly
/// usable as an operand of the INT instruction.
///
/// Symmetry breaking requires a total order ≺ on V(G). Following the
/// convention of SEED [5], we make the vertex *ids themselves* realize the
/// total order: `RelabelByDegree()` returns an isomorphic copy whose ids
/// are assigned in (degree, original id) order, after which `id(u) < id(v)`
/// iff `u ≺ v`. All symmetry-breaking filters then reduce to integer
/// comparisons.
class Graph {
 public:
  /// Constructs the empty graph.
  Graph() = default;

  /// Builds a graph with `num_vertices` vertices from an undirected edge
  /// list. Self loops are rejected; duplicate edges (in either direction)
  /// are collapsed. Endpoints must be < num_vertices.
  static StatusOr<Graph> FromEdges(
      size_t num_vertices, const std::vector<std::pair<VertexId, VertexId>>& edges);

  /// Number of vertices N.
  size_t NumVertices() const { return offsets_.empty() ? 0 : offsets_.size() - 1; }

  /// Number of undirected edges M.
  size_t NumEdges() const { return neighbors_.size() / 2; }

  /// Sorted adjacency set Γ(v) as a non-owning view into the CSR arrays.
  VertexSetView Adjacency(VertexId v) const {
    return VertexSetView(neighbors_.data() + offsets_[v],
                         offsets_[v + 1] - offsets_[v]);
  }

  /// Degree d(v).
  size_t Degree(VertexId v) const { return offsets_[v + 1] - offsets_[v]; }

  /// True iff (u, v) is an edge. O(log d(u)).
  bool HasEdge(VertexId u, VertexId v) const;

  /// All undirected edges, each reported once with first < second.
  std::vector<std::pair<VertexId, VertexId>> Edges() const;

  /// Maximum degree over all vertices (0 for the empty graph).
  size_t MaxDegree() const;

  /// Total bytes of adjacency-set payload (used to size DB caches relative
  /// to the data graph, as in Exp-3): 2·M entries of sizeof(VertexId).
  size_t AdjacencyBytes() const { return neighbors_.size() * sizeof(VertexId); }

  /// Returns an isomorphic copy whose vertex ids realize the total order
  /// ≺ of [5]: ascending (degree, original id). `old_to_new`, if non-null,
  /// receives the permutation.
  Graph RelabelByDegree(std::vector<VertexId>* old_to_new = nullptr) const;

  /// Induced subgraph on `vertices` (need not be sorted; duplicates are an
  /// error). Vertex i of the result corresponds to vertices[i], so callers
  /// keep control of the local numbering — required when inducing partial
  /// pattern graphs P_i in matching-order prefixes.
  StatusOr<Graph> InducedSubgraph(const std::vector<VertexId>& vertices) const;

  /// True iff the graph is connected (the empty graph counts as connected).
  bool IsConnected() const;

  /// Connected components; each component lists its vertices ascending.
  std::vector<std::vector<VertexId>> ConnectedComponents() const;

  bool operator==(const Graph& other) const {
    return offsets_ == other.offsets_ && neighbors_ == other.neighbors_;
  }

  /// FNV-1a 64-bit hash of the CSR arrays: equal graphs (same ids, same
  /// edges) hash equal, and any relabeling changes it with overwhelming
  /// probability. The driver handshake folds this to 32 bits so a client
  /// that relabels locally can verify the servers serve the same labeling
  /// (wire::HelloInfo::graph_hash).
  uint64_t ContentHash() const;

  /// XOR-fold of ContentHash() to the 32 bits the hello payload carries.
  uint32_t FoldedContentHash() const {
    const uint64_t h = ContentHash();
    return static_cast<uint32_t>(h ^ (h >> 32));
  }

 private:
  // offsets_ has NumVertices()+1 entries; neighbors_ holds each undirected
  // edge twice.
  std::vector<uint64_t> offsets_{0};
  std::vector<VertexId> neighbors_;
};

}  // namespace benu

#endif  // BENU_GRAPH_GRAPH_H_
