#include "graph/isomorphism.h"

#include <algorithm>
#include <cstddef>

namespace benu {
namespace {

// Backtracking search for bijections a -> b preserving edges both ways.
// Emits every mapping when collect_all, otherwise stops at the first.
class IsoSearch {
 public:
  IsoSearch(const Graph& a, const Graph& b, bool collect_all)
      : a_(a), b_(b), collect_all_(collect_all) {
    mapping_.assign(a_.NumVertices(), kInvalidVertex);
    used_.assign(b_.NumVertices(), false);
  }

  bool Run() {
    Extend(0);
    return found_any_;
  }

  std::vector<Permutation> TakeResults() { return std::move(results_); }

 private:
  void Extend(VertexId u) {
    if (!collect_all_ && found_any_) return;
    if (u == a_.NumVertices()) {
      found_any_ = true;
      if (collect_all_) results_.push_back(mapping_);
      return;
    }
    for (VertexId v = 0; v < b_.NumVertices(); ++v) {
      if (used_[v]) continue;
      if (a_.Degree(u) != b_.Degree(v)) continue;
      if (!Compatible(u, v)) continue;
      mapping_[u] = v;
      used_[v] = true;
      Extend(u + 1);
      used_[v] = false;
      mapping_[u] = kInvalidVertex;
      if (!collect_all_ && found_any_) return;
    }
  }

  // Mapping u -> v must preserve adjacency and non-adjacency against every
  // already-mapped vertex (induced check, valid because the final mapping
  // is a bijection between whole vertex sets).
  bool Compatible(VertexId u, VertexId v) const {
    for (VertexId w = 0; w < u; ++w) {
      bool edge_a = a_.HasEdge(u, w);
      bool edge_b = b_.HasEdge(v, mapping_[w]);
      if (edge_a != edge_b) return false;
    }
    return true;
  }

  const Graph& a_;
  const Graph& b_;
  bool collect_all_;
  Permutation mapping_;
  std::vector<char> used_;
  std::vector<Permutation> results_;
  bool found_any_ = false;
};

}  // namespace

std::vector<Permutation> Automorphisms(const Graph& pattern) {
  IsoSearch search(pattern, pattern, /*collect_all=*/true);
  search.Run();
  return search.TakeResults();
}

bool AreIsomorphic(const Graph& a, const Graph& b) {
  if (a.NumVertices() != b.NumVertices() || a.NumEdges() != b.NumEdges()) {
    return false;
  }
  auto degree_sequence = [](const Graph& g) {
    std::vector<size_t> degrees;
    degrees.reserve(g.NumVertices());
    for (VertexId v = 0; v < g.NumVertices(); ++v) {
      degrees.push_back(g.Degree(v));
    }
    std::sort(degrees.begin(), degrees.end());
    return degrees;
  };
  if (degree_sequence(a) != degree_sequence(b)) return false;
  IsoSearch search(a, b, /*collect_all=*/false);
  return search.Run();
}

bool SyntacticallyEquivalent(const Graph& pattern, VertexId u, VertexId v) {
  if (u == v) return true;
  VertexSet gu(pattern.Adjacency(u).begin(), pattern.Adjacency(u).end());
  VertexSet gv(pattern.Adjacency(v).begin(), pattern.Adjacency(v).end());
  EraseValue(&gu, v);
  EraseValue(&gv, u);
  return gu == gv;
}

bool IsVertexCover(const Graph& pattern,
                   const std::vector<VertexId>& vertices) {
  std::vector<char> in_cover(pattern.NumVertices(), 0);
  for (VertexId v : vertices) {
    if (v >= pattern.NumVertices()) return false;
    in_cover[v] = 1;
  }
  for (const auto& [u, v] : pattern.Edges()) {
    if (!in_cover[u] && !in_cover[v]) return false;
  }
  return true;
}

std::vector<VertexId> MinimumVertexCover(const Graph& pattern) {
  const size_t n = pattern.NumVertices();
  // Exhaustive subset search by increasing size; n ≤ ~10 for patterns.
  for (size_t k = 0; k <= n; ++k) {
    std::vector<VertexId> subset(k);
    // Enumerate k-subsets with the classic odometer.
    std::vector<size_t> idx(k);
    for (size_t i = 0; i < k; ++i) idx[i] = i;
    for (;;) {
      for (size_t i = 0; i < k; ++i) {
        subset[i] = static_cast<VertexId>(idx[i]);
      }
      if (IsVertexCover(pattern, subset)) return subset;
      // Advance odometer.
      size_t pos = k;
      while (pos > 0) {
        --pos;
        if (idx[pos] != pos + n - k) break;
      }
      if (k == 0 || idx[pos] == pos + n - k) break;
      ++idx[pos];
      for (size_t i = pos + 1; i < k; ++i) idx[i] = idx[i - 1] + 1;
    }
    if (k == 0 && pattern.NumEdges() == 0) return {};
  }
  // Full vertex set always covers.
  std::vector<VertexId> all(n);
  for (size_t i = 0; i < n; ++i) all[i] = static_cast<VertexId>(i);
  return all;
}

}  // namespace benu
