#include "graph/generators.h"

#include <algorithm>
#include <cstdlib>
#include <unordered_set>
#include <utility>
#include <vector>

#include "common/rng.h"

namespace benu {
namespace {

// Packs an undirected edge into one 64-bit key for dedup.
uint64_t EdgeKey(VertexId u, VertexId v) {
  if (u > v) std::swap(u, v);
  return (static_cast<uint64_t>(u) << 32) | v;
}

}  // namespace

StatusOr<Graph> GenerateErdosRenyi(size_t num_vertices, size_t num_edges,
                                   uint64_t seed) {
  if (num_vertices < 2) {
    return Status::InvalidArgument("ER graph needs at least 2 vertices");
  }
  const uint64_t max_edges =
      static_cast<uint64_t>(num_vertices) * (num_vertices - 1) / 2;
  if (num_edges > max_edges) {
    return Status::InvalidArgument("too many edges for simple graph");
  }
  Rng rng(seed);
  std::unordered_set<uint64_t> seen;
  seen.reserve(num_edges * 2);
  std::vector<std::pair<VertexId, VertexId>> edges;
  edges.reserve(num_edges);
  while (edges.size() < num_edges) {
    auto u = static_cast<VertexId>(rng.NextBounded(num_vertices));
    auto v = static_cast<VertexId>(rng.NextBounded(num_vertices));
    if (u == v) continue;
    if (seen.insert(EdgeKey(u, v)).second) edges.emplace_back(u, v);
  }
  return Graph::FromEdges(num_vertices, edges);
}

StatusOr<Graph> GenerateBarabasiAlbert(size_t num_vertices,
                                       size_t edges_per_vertex,
                                       uint64_t seed) {
  if (edges_per_vertex == 0) {
    return Status::InvalidArgument("edges_per_vertex must be positive");
  }
  const size_t seed_size = edges_per_vertex + 1;
  if (num_vertices < seed_size) {
    return Status::InvalidArgument("graph smaller than the seed clique");
  }
  Rng rng(seed);
  std::vector<std::pair<VertexId, VertexId>> edges;
  // endpoint_pool holds every edge endpoint once, so sampling uniformly
  // from it samples vertices proportionally to degree.
  std::vector<VertexId> endpoint_pool;
  for (VertexId u = 0; u < seed_size; ++u) {
    for (VertexId v = u + 1; v < seed_size; ++v) {
      edges.emplace_back(u, v);
      endpoint_pool.push_back(u);
      endpoint_pool.push_back(v);
    }
  }
  std::unordered_set<VertexId> targets;
  for (VertexId v = static_cast<VertexId>(seed_size); v < num_vertices; ++v) {
    targets.clear();
    while (targets.size() < edges_per_vertex) {
      VertexId t = endpoint_pool[rng.NextBounded(endpoint_pool.size())];
      targets.insert(t);
    }
    for (VertexId t : targets) {
      edges.emplace_back(v, t);
      endpoint_pool.push_back(v);
      endpoint_pool.push_back(t);
    }
  }
  return Graph::FromEdges(num_vertices, edges);
}

StatusOr<Graph> GeneratePowerLawCluster(size_t num_vertices,
                                        size_t edges_per_vertex,
                                        double triangle_prob, uint64_t seed) {
  if (edges_per_vertex == 0) {
    return Status::InvalidArgument("edges_per_vertex must be positive");
  }
  const size_t seed_size = edges_per_vertex + 1;
  if (num_vertices < seed_size) {
    return Status::InvalidArgument("graph smaller than the seed clique");
  }
  Rng rng(seed);
  std::vector<std::vector<VertexId>> adj(num_vertices);
  std::vector<VertexId> endpoint_pool;
  auto add_edge = [&](VertexId u, VertexId v) {
    adj[u].push_back(v);
    adj[v].push_back(u);
    endpoint_pool.push_back(u);
    endpoint_pool.push_back(v);
  };
  auto connected = [&](VertexId u, VertexId v) {
    const auto& shorter = adj[u].size() < adj[v].size() ? adj[u] : adj[v];
    VertexId other = adj[u].size() < adj[v].size() ? v : u;
    for (VertexId w : shorter) {
      if (w == other) return true;
    }
    return false;
  };
  for (VertexId u = 0; u < seed_size; ++u) {
    for (VertexId v = u + 1; v < seed_size; ++v) add_edge(u, v);
  }
  for (VertexId v = static_cast<VertexId>(seed_size); v < num_vertices; ++v) {
    VertexId last_target = kInvalidVertex;
    size_t added = 0;
    size_t attempts = 0;
    while (added < edges_per_vertex && attempts < 64 * edges_per_vertex) {
      ++attempts;
      VertexId target = kInvalidVertex;
      if (last_target != kInvalidVertex && rng.NextBernoulli(triangle_prob)) {
        // Triad formation: link to a random neighbor of the last target.
        const auto& candidates = adj[last_target];
        target = candidates[rng.NextBounded(candidates.size())];
      } else {
        // Preferential attachment.
        target = endpoint_pool[rng.NextBounded(endpoint_pool.size())];
      }
      if (target == v || connected(v, target)) continue;
      add_edge(v, target);
      last_target = target;
      ++added;
    }
  }
  std::vector<std::pair<VertexId, VertexId>> edges;
  for (VertexId u = 0; u < num_vertices; ++u) {
    for (VertexId w : adj[u]) {
      if (u < w) edges.emplace_back(u, w);
    }
  }
  return Graph::FromEdges(num_vertices, edges);
}

StatusOr<Graph> GenerateRandomConnected(size_t num_vertices,
                                        double extra_edge_prob,
                                        uint64_t seed) {
  if (num_vertices == 0) {
    return Status::InvalidArgument("pattern needs at least 1 vertex");
  }
  Rng rng(seed);
  std::vector<std::pair<VertexId, VertexId>> edges;
  std::unordered_set<uint64_t> seen;
  // Random spanning tree: attach each vertex to a uniformly random earlier
  // vertex (a random recursive tree) so the result is connected.
  for (VertexId v = 1; v < num_vertices; ++v) {
    auto parent = static_cast<VertexId>(rng.NextBounded(v));
    edges.emplace_back(parent, v);
    seen.insert(EdgeKey(parent, v));
  }
  for (VertexId u = 0; u < num_vertices; ++u) {
    for (VertexId v = u + 1; v < num_vertices; ++v) {
      if (seen.count(EdgeKey(u, v))) continue;
      if (rng.NextBernoulli(extra_edge_prob)) {
        edges.emplace_back(u, v);
        seen.insert(EdgeKey(u, v));
      }
    }
  }
  return Graph::FromEdges(num_vertices, edges);
}

StatusOr<Graph> GenerateStandInDataset(const std::string& name) {
  // (vertices, edges-per-vertex, triangle prob, seed). Average degrees
  // follow the ratios of Table I (as ≈ 13, lj ≈ 18, ok ≈ 76, uk ≈ 29,
  // fs ≈ 55) scaled so each graph is enumerable on a single machine; the
  // Holme–Kim triad-formation probability supplies the clustering that
  // makes the Table I motif counts dwarf |E|, as in the real datasets.
  struct Spec {
    const char* name;
    size_t vertices;
    size_t m;
    double p;
    uint64_t seed;
  };
  static constexpr Spec kSpecs[] = {
      {"as-sim", 6000, 6, 0.9, 0xA5001},
      {"lj-sim", 16000, 9, 0.9, 0xA5002},
      {"ok-sim", 10000, 38, 0.5, 0xA5003},
      {"uk-sim", 60000, 14, 0.9, 0xA5004},
      {"fs-sim", 200000, 27, 0.5, 0xA5005},
  };
  for (const Spec& spec : kSpecs) {
    if (name == spec.name) {
      return GeneratePowerLawCluster(spec.vertices, spec.m, spec.p,
                                     spec.seed);
    }
  }
  return Status::NotFound("unknown stand-in dataset: " + name);
}

StatusOr<Graph> GenerateFromSpec(const std::string& spec) {
  const size_t colon = spec.find(':');
  if (colon == std::string::npos) return GenerateStandInDataset(spec);
  const std::string kind = spec.substr(0, colon);
  // Numeric parameters after the colon, comma-separated.
  std::vector<uint64_t> params;
  size_t start = colon + 1;
  while (start <= spec.size()) {
    size_t comma = spec.find(',', start);
    if (comma == std::string::npos) comma = spec.size();
    const std::string item = spec.substr(start, comma - start);
    char* end = nullptr;
    const unsigned long long value = std::strtoull(item.c_str(), &end, 10);
    if (item.empty() || *end != '\0') {
      return Status::InvalidArgument("bad parameter '" + item +
                                     "' in graph spec '" + spec + "'");
    }
    params.push_back(value);
    start = comma + 1;
  }
  if (kind == "er" && params.size() == 3) {
    return GenerateErdosRenyi(params[0], params[1], params[2]);
  }
  if (kind == "ba" && params.size() == 3) {
    return GenerateBarabasiAlbert(params[0], params[1], params[2]);
  }
  if (kind == "plc" && params.size() == 4) {
    // Triangle probability in percent, to keep the spec integer-only.
    return GeneratePowerLawCluster(params[0], params[1],
                                   static_cast<double>(params[2]) / 100.0,
                                   params[3]);
  }
  return Status::InvalidArgument(
      "bad graph spec '" + spec +
      "' (expected er:n,m,seed | ba:n,k,seed | plc:n,k,p%,seed | a "
      "stand-in dataset name)");
}

}  // namespace benu
