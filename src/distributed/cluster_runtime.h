#ifndef BENU_DISTRIBUTED_CLUSTER_RUNTIME_H_
#define BENU_DISTRIBUTED_CLUSTER_RUNTIME_H_

#include <atomic>
#include <memory>
#include <vector>

#include "common/status.h"
#include "common/stopwatch.h"
#include "common/thread_pool.h"
#include "core/executor.h"
#include "core/memory_governor.h"
#include "core/match_consumer.h"
#include "distributed/cluster.h"
#include "distributed/task.h"
#include "storage/db_cache.h"
#include "storage/triangle_cache.h"

namespace benu {

/// Execution engine of the cluster (one of the three TUs cluster.cc
/// decomposes into, next to cluster_accounting): owns the per-worker
/// runtime state and runs every worker's execution threads on the shared
/// pool. The driver in cluster.cc orchestrates; the accounting layer
/// turns the finished state into summaries and virtual times.

/// One execution context per OS thread of a worker; the worker's DB
/// cache is the shared structure (as in Fig. 2), everything else is
/// thread-private.
struct WorkerThreadContext {
  std::unique_ptr<TriangleCache> tcache;
  std::unique_ptr<PlanExecutor> executor;
  std::unique_ptr<CountingConsumer> consumer;
  Count steals = 0;
};

/// Runtime state of one virtual worker, alive for the duration of a run.
struct WorkerExecution {
  const std::vector<SearchTask>* tasks = nullptr;
  std::unique_ptr<DbCache> cache;
  std::unique_ptr<CachedAdjacencyProvider> provider;
  std::vector<WorkerThreadContext> contexts;
  std::unique_ptr<WorkStealingScheduler> scheduler;
  std::vector<TaskStats> per_task;
  std::atomic<int> remaining{0};
  /// Wall time from run start until this worker's last execution thread
  /// finished, seconds.
  double real_seconds = 0;
};

/// Per-worker execution threads after the oversubscription clamp: unless
/// `allow_oversubscription`, the request is clamped to the hardware
/// concurrency (with a warning) so oversubscribed wall times do not
/// pollute the virtual-time model.
int ClampExecutionThreads(int requested, bool allow_oversubscription);

/// Builds the runtime state of every worker — DB cache, adjacency
/// provider, per-thread executors/consumers/triangle caches, scheduler —
/// before any of them runs, so executor-compile errors surface before a
/// single task executes. `fetch_pool` may be null (no async prefetch).
/// `governor` (may be null: ungoverned plain-DFS run) is shared by every
/// worker's cache, provider and executors — one memory budget covers the
/// whole run.
StatusOr<std::vector<std::unique_ptr<WorkerExecution>>> SetUpWorkers(
    const std::vector<std::vector<SearchTask>>& per_worker,
    const ExecutionPlan& plan, const ClusterConfig& config,
    const DistributedKvStore* store, size_t num_vertices, int exec_threads,
    const std::vector<VertexId>* degree_floors,
    const std::vector<int>* data_labels, ThreadPool* fetch_pool,
    MemoryGovernor* governor = nullptr);

/// Runs every worker's execution threads to completion on one shared
/// pool sized by `config.max_runtime_threads` (0: hardware concurrency;
/// 1 reproduces the sequential seed runtime and runs inline), then — when
/// prefetching is on — quiesces every worker's prefetch pipeline so all
/// cache stats are settled. Returns the pool size used.
size_t ExecuteWorkers(std::vector<std::unique_ptr<WorkerExecution>>& workers,
                      const ClusterConfig& config, int exec_threads,
                      bool prefetch_enabled, const Stopwatch& total_watch);

}  // namespace benu

#endif  // BENU_DISTRIBUTED_CLUSTER_RUNTIME_H_
