#include "distributed/cluster_runtime.h"

#include <algorithm>
#include <chrono>
#include <thread>
#include <utility>

#include "common/logging.h"
#include "common/metrics.h"
#include "plan/filters.h"

namespace benu {

int ClampExecutionThreads(int requested, bool allow_oversubscription) {
  const unsigned hw = std::thread::hardware_concurrency();
  int exec_threads = std::max(1, requested);
  if (!allow_oversubscription && hw > 0 &&
      exec_threads > static_cast<int>(hw)) {
    BENU_LOG(Warning)
        << "execution_threads=" << exec_threads
        << " exceeds hardware concurrency (" << hw
        << "); clamping so oversubscribed wall times do not pollute the "
           "virtual-time model (set allow_thread_oversubscription to "
           "override)";
    exec_threads = static_cast<int>(hw);
  }
  return exec_threads;
}

StatusOr<std::vector<std::unique_ptr<WorkerExecution>>> SetUpWorkers(
    const std::vector<std::vector<SearchTask>>& per_worker,
    const ExecutionPlan& plan, const ClusterConfig& config,
    const DistributedKvStore* store, size_t num_vertices, int exec_threads,
    const std::vector<VertexId>* degree_floors,
    const std::vector<int>* data_labels, ThreadPool* fetch_pool,
    MemoryGovernor* governor) {
  std::vector<std::unique_ptr<WorkerExecution>> workers;
  workers.reserve(per_worker.size());
  for (const std::vector<SearchTask>& tasks : per_worker) {
    auto ws = std::make_unique<WorkerExecution>();
    ws->tasks = &tasks;
    ws->cache = std::make_unique<DbCache>(
        store, config.db_cache_bytes, /*num_shards=*/8, fetch_pool,
        config.prefetch_batch_size, governor);
    ws->provider = std::make_unique<CachedAdjacencyProvider>(
        ws->cache.get(), num_vertices, config.prefetch_budget, governor);
    ws->contexts.resize(static_cast<size_t>(exec_threads));
    for (WorkerThreadContext& ctx : ws->contexts) {
      ctx.tcache = std::make_unique<TriangleCache>();
      auto executor = PlanExecutor::Create(
          &plan, ws->provider.get(), ctx.tcache.get(),
          (degree_floors == nullptr || degree_floors->empty())
              ? nullptr
              : degree_floors,
          data_labels);
      BENU_RETURN_IF_ERROR(executor.status());
      ctx.executor = std::move(executor).value();
      ctx.executor->ConfigureExpansion(config.expansion, governor);
      ctx.consumer = std::make_unique<CountingConsumer>(plan);
    }
    ws->scheduler = std::make_unique<WorkStealingScheduler>(
        ws->tasks->size(), static_cast<size_t>(exec_threads));
    ws->per_task.resize(ws->tasks->size());
    ws->remaining.store(exec_threads, std::memory_order_relaxed);
    workers.push_back(std::move(ws));
  }
  return workers;
}

size_t ExecuteWorkers(std::vector<std::unique_ptr<WorkerExecution>>& workers,
                      const ClusterConfig& config, int exec_threads,
                      bool prefetch_enabled, const Stopwatch& total_watch) {
  // Per-worker runtime phase totals (§2e): time spent claiming/stealing
  // tasks vs executing them, accumulated thread-locally and flushed once
  // per thread. Only measured under tracing — two clock reads per task
  // are not free on micro-task workloads.
  auto& registry = metrics::MetricsRegistry::Global();
  metrics::Counter* claim_ns_metric = registry.GetCounter(
      "cluster.phase.claim_ns", "ns",
      "execution-thread time spent claiming/stealing tasks (traced)");
  metrics::Counter* compute_ns_metric = registry.GetCounter(
      "cluster.phase.compute_ns", "ns",
      "execution-thread time spent inside RunTask (traced)");

  // One execution thread of one worker: claim tasks (stealing from
  // sibling threads when the own deque runs dry) until the worker's task
  // list is exhausted.
  auto run_thread = [&total_watch, claim_ns_metric, compute_ns_metric](
                        WorkerExecution* ws, size_t t) {
    WorkerThreadContext& ctx = ws->contexts[t];
    const bool traced = metrics::TracingEnabled();
    uint64_t claim_ns = 0;
    uint64_t compute_ns = 0;
    size_t index = 0;
    bool stolen = false;
    for (;;) {
      bool claimed;
      if (traced) {
        const auto t0 = std::chrono::steady_clock::now();
        claimed = ws->scheduler->Claim(t, &index, &stolen);
        claim_ns += static_cast<uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now() - t0)
                .count());
      } else {
        claimed = ws->scheduler->Claim(t, &index, &stolen);
      }
      if (!claimed) break;
      if (stolen) ++ctx.steals;
      if (traced) {
        const auto t0 = std::chrono::steady_clock::now();
        ws->per_task[index] =
            ctx.executor->RunTask((*ws->tasks)[index], ctx.consumer.get());
        compute_ns += static_cast<uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now() - t0)
                .count());
      } else {
        ws->per_task[index] =
            ctx.executor->RunTask((*ws->tasks)[index], ctx.consumer.get());
      }
    }
    if (traced) {
      claim_ns_metric->Add(claim_ns);
      compute_ns_metric->Add(compute_ns);
    }
    if (ws->remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      ws->real_seconds = total_watch.ElapsedSeconds();
    }
  };

  // All p workers run concurrently on one shared pool sized by the
  // hardware (Fig. 2's p workers × w threads, collapsed onto one
  // machine). max_runtime_threads = 1 reproduces the sequential seed.
  const unsigned hw = std::thread::hardware_concurrency();
  const size_t total_contexts =
      workers.size() * static_cast<size_t>(exec_threads);
  size_t pool_threads;
  if (config.max_runtime_threads > 0) {
    pool_threads = static_cast<size_t>(config.max_runtime_threads);
  } else if (config.allow_thread_oversubscription) {
    pool_threads = total_contexts;
  } else {
    pool_threads = hw > 0 ? static_cast<size_t>(hw) : 1;
  }
  pool_threads = std::max<size_t>(1, std::min(pool_threads, total_contexts));

  if (pool_threads == 1) {
    // Degenerate pool: run inline and spare the thread churn (this is
    // the sequential seed's execution order).
    for (auto& ws : workers) {
      for (size_t t = 0; t < ws->contexts.size(); ++t) {
        run_thread(ws.get(), t);
      }
    }
  } else {
    ThreadPool pool(pool_threads);
    for (auto& ws : workers) {
      for (size_t t = 0; t < ws->contexts.size(); ++t) {
        WorkerExecution* state = ws.get();
        pool.Submit([&run_thread, state, t] { run_thread(state, t); });
      }
    }
    pool.Wait();
  }

  // Quiesce the prefetch pipeline before anyone reads cache stats:
  // in-flight fetcher jobs still mutate prefetch counters after the
  // execution threads have finished.
  if (prefetch_enabled) {
    for (auto& ws : workers) ws->cache->WaitForPrefetches();
  }
  return pool_threads;
}

}  // namespace benu
