#include "distributed/benu_driver.h"

namespace benu {

StatusOr<BenuResult> RunBenu(const Graph& data_graph, const Graph& pattern,
                             const BenuOptions& options) {
  const bool labeled = !options.plan.pattern_labels.empty();
  if (labeled && options.data_labels.size() != data_graph.NumVertices()) {
    return Status::InvalidArgument(
        "labeled pattern requires one label per data vertex");
  }
  if (options.cluster.transport != nullptr &&
      options.cluster.transport->num_vertices() !=
          data_graph.NumVertices()) {
    return Status::InvalidArgument(
        "transport stores " +
        std::to_string(options.cluster.transport->num_vertices()) +
        " vertices but the data graph has " +
        std::to_string(data_graph.NumVertices()));
  }

  // Preprocessing independent of P (Algorithm 2 line 1): realize the total
  // order ≺ in the vertex ids, then store adjacency sets in the DB.
  std::vector<VertexId> old_to_new;
  const Graph relabeled = options.relabel_by_degree
                              ? data_graph.RelabelByDegree(&old_to_new)
                              : data_graph;

  if (options.cluster.transport != nullptr) {
    // An external transport serves the data graph under fixed vertex
    // ids; if the enumeration side uses a different labeling (e.g. the
    // caller relabeled only one side) every fetch would silently return
    // the wrong adjacency set. The transport's hello handshake carries a
    // folded content hash of the graph it stores — validate the labeling
    // the enumeration actually uses (post-relabel) against it. A hash of
    // 0 means the transport cannot attest its labeling (legacy server);
    // relabeling is then refused rather than trusted blindly.
    const uint32_t remote_hash = options.cluster.transport->graph_hash();
    const uint32_t local_hash = relabeled.FoldedContentHash();
    if (remote_hash == 0) {
      if (options.relabel_by_degree) {
        return Status::InvalidArgument(
            "relabel_by_degree needs a transport that attests its graph "
            "labeling (hello graph hash), but this one reports none: "
            "relabel the graph first, build the transport from the "
            "relabeled graph, and set relabel_by_degree = false");
      }
    } else if (remote_hash != local_hash) {
      return Status::InvalidArgument(
          options.relabel_by_degree
              ? "relabel_by_degree produced a labeling the transport does "
                "not store (graph hash mismatch): build the transport "
                "from the degree-relabeled graph"
              : "transport stores a differently-labeled graph (graph "
                "hash mismatch): both sides must hold the same labeling");
    }
  }
  std::vector<int> data_labels = options.data_labels;
  if (labeled && options.relabel_by_degree) {
    for (VertexId v = 0; v < data_graph.NumVertices(); ++v) {
      data_labels[old_to_new[v]] = options.data_labels[v];
    }
  }

  // Plan generation on the master node (line 2).
  auto plan = GenerateBestPlan(pattern,
                               DataGraphStats::FromGraph(relabeled),
                               options.plan);
  BENU_RETURN_IF_ERROR(plan.status());

  // Parallel local search tasks on the cluster (lines 4-8).
  ClusterSimulator cluster(relabeled, options.cluster);
  auto run = cluster.Run(plan->plan, labeled ? &data_labels : nullptr);
  BENU_RETURN_IF_ERROR(run.status());

  BenuResult result;
  result.plan = std::move(plan).value();
  result.run = std::move(run).value();
  return result;
}

StatusOr<Count> CountSubgraphs(const Graph& data_graph,
                               const Graph& pattern) {
  BenuOptions options;
  options.cluster.num_workers = 1;
  options.cluster.threads_per_worker = 1;
  options.cluster.db_cache_bytes = 1u << 30;
  auto result = RunBenu(data_graph, pattern, options);
  BENU_RETURN_IF_ERROR(result.status());
  return result->run.total_matches;
}

}  // namespace benu
