#include "distributed/cluster_accounting.h"

#include <algorithm>
#include <functional>
#include <queue>

#include "common/metrics.h"

namespace benu {

double ListScheduleMakespan(const std::vector<double>& task_times,
                            int threads) {
  if (threads <= 1) {
    double total = 0;
    for (double t : task_times) total += t;
    return total;
  }
  std::priority_queue<double, std::vector<double>, std::greater<>> loads;
  for (int i = 0; i < threads; ++i) loads.push(0.0);
  double makespan = 0;
  for (double t : task_times) {
    double load = loads.top();
    loads.pop();
    load += t;
    makespan = std::max(makespan, load);
    loads.push(load);
  }
  return makespan;
}

void AccumulateWorker(const WorkerExecution& worker,
                      const ClusterConfig& config, bool async_prefetch,
                      ClusterRunResult* result) {
  result->workers.emplace_back();
  WorkerSummary& summary = result->workers.back();

  std::vector<double> virtual_times;
  virtual_times.reserve(worker.per_task.size());
  for (const TaskStats& stats : worker.per_task) {
    summary.totals.Accumulate(stats);
    // Coalesced fetches issue no query of their own but do wait out
    // the primary's round trip, so they are charged the latency (not
    // the bytes) in the task's virtual time.
    const double network_us =
        static_cast<double>(stats.db_queries + stats.coalesced_fetches) *
            config.db_query_latency_us +
        static_cast<double>(stats.bytes_fetched) /
            std::max(1e-9, config.network_bytes_per_us);
    const double compute_us =
        (stats.cpu_seconds >= 0 ? stats.cpu_seconds : stats.wall_seconds) *
        1e6;
    const double virtual_us = compute_us + network_us;
    virtual_times.push_back(virtual_us);
    summary.busy_virtual_us += virtual_us;
    result->task_virtual_us.push_back(virtual_us);
  }
  Count worker_matches = 0;
  for (const WorkerThreadContext& ctx : worker.contexts) {
    worker_matches += ctx.consumer->matches();
    result->total_matches += ctx.consumer->matches();
    result->total_codes += ctx.consumer->codes();
    result->code_units += ctx.consumer->code_units();
    summary.steals += ctx.steals;
  }
  summary.tasks = worker.tasks->size();
  summary.totals.matches = worker_matches;
  summary.cache = worker.cache->stats();
  summary.real_seconds = worker.real_seconds;
  const double compute_makespan_us =
      ListScheduleMakespan(virtual_times, config.threads_per_worker);
  // Overlap accounting (§2d): the worker's prefetch pipeline costs one
  // round-trip latency per partition per batch plus the prefetched
  // bytes over the bandwidth. Running asynchronously, it overlaps the
  // compute makespan — the hidden portion never reaches the critical
  // path; only the residual (a comm-bound worker) extends it. The
  // forced-sync mode drains the queue on the enumerating threads, so
  // nothing is hidden and the full pipeline cost is serialized.
  const double prefetch_comm_us =
      static_cast<double>(summary.cache.prefetch_round_trips) *
          config.db_query_latency_us +
      static_cast<double>(summary.cache.prefetch_bytes) /
          std::max(1e-9, config.network_bytes_per_us);
  const double hidden_us =
      async_prefetch ? std::min(prefetch_comm_us, compute_makespan_us) : 0.0;
  summary.hidden_comm_us = hidden_us;
  // hidden/prefetch_comm is the overlap fraction the hybrid mode
  // optimizes: how much of the pipeline's traffic compute covered.
  summary.prefetch_comm_us = prefetch_comm_us;
  summary.makespan_virtual_us =
      compute_makespan_us + (prefetch_comm_us - hidden_us);
  result->hidden_comm_seconds += hidden_us * 1e-6;
  result->prefetch_comm_seconds += prefetch_comm_us * 1e-6;
  result->prefetches_issued += summary.cache.prefetches_issued;
  result->prefetch_hits += summary.cache.prefetch_hits;
  result->prefetch_wasted += summary.cache.prefetch_wasted;
  result->prefetch_round_trips += summary.cache.prefetch_round_trips;
  result->prefetch_bytes += summary.cache.prefetch_bytes;
  result->steals += summary.steals;
  result->db_queries += summary.totals.db_queries;
  result->coalesced_fetches += summary.totals.coalesced_fetches;
  result->bytes_fetched += summary.totals.bytes_fetched;
  result->adjacency_requests += summary.totals.adjacency_requests;
  result->cache_hits += summary.totals.cache_hits;
  result->virtual_seconds =
      std::max(result->virtual_seconds, summary.makespan_virtual_us * 1e-6);
}

void PublishRunMetrics(const ClusterRunResult& result) {
  auto& registry = metrics::MetricsRegistry::Global();
  const auto counter = [&registry](const char* name, const char* unit,
                                   const char* help, Count value) {
    registry.GetCounter(name, unit, help)->Add(value);
  };
  counter("cluster.runs", "1", "completed ClusterSimulator::Run calls", 1);
  counter("cluster.tasks", "1", "local search tasks executed",
          result.num_tasks);
  counter("cluster.matches", "1", "expanded matches", result.total_matches);
  counter("cluster.codes", "1", "RES executions (helves under VCBC)",
          result.total_codes);
  counter("cluster.code_units", "1",
          "compressed-code payload units (vertex-id entries)",
          result.code_units);
  counter("cluster.db_queries", "1", "synchronous store queries by tasks",
          result.db_queries);
  counter("cluster.bytes_fetched", "bytes",
          "payload bytes of synchronous task fetches", result.bytes_fetched);
  counter("cluster.adjacency_requests", "1",
          "DBQ executions (hits + misses + coalesced)",
          result.adjacency_requests);
  counter("cluster.cache_hits", "1", "DBQ lookups served from a DB cache",
          result.cache_hits);
  counter("cluster.coalesced_fetches", "1",
          "DBQ lookups that piggybacked on a sibling's in-flight query",
          result.coalesced_fetches);
  counter("cluster.steals", "1", "work-stealing claims across all workers",
          result.steals);
  counter("cluster.prefetches_issued", "1",
          "keys handed to the async adjacency pipeline",
          result.prefetches_issued);
  counter("cluster.prefetch_hits", "1",
          "prefetched entries that converted a would-be miss into a hit",
          result.prefetch_hits);
  counter("cluster.prefetch_wasted", "1",
          "prefetched entries evicted or dropped without a hit",
          result.prefetch_wasted);
  counter("cluster.prefetch_round_trips", "1",
          "round trips of batched background fetches",
          result.prefetch_round_trips);
  counter("cluster.prefetch_bytes", "bytes",
          "payload bytes fetched by the prefetch pipeline",
          result.prefetch_bytes);
  if (!metrics::TracingEnabled()) return;
  registry
      .GetGauge("cluster.virtual_seconds", "s",
                "virtual makespan of the last run (traced)")
      ->Set(result.virtual_seconds);
  registry
      .GetGauge("cluster.hidden_comm_seconds", "s",
                "prefetch communication hidden behind compute, last run "
                "(traced)")
      ->Set(result.hidden_comm_seconds);
  registry
      .GetGauge("cluster.prefetch_comm_seconds", "s",
                "total virtual communication of the prefetch pipeline "
                "(hidden or not), last run (traced)")
      ->Set(result.prefetch_comm_seconds);
  registry
      .GetGauge("cluster.overlap_fraction", "1",
                "hidden_comm_seconds / prefetch_comm_seconds, last run "
                "(traced)")
      ->Set(result.OverlapFraction());
  registry
      .GetGauge("cluster.real_seconds", "s",
                "wall time of the last run (traced)")
      ->Set(result.real_seconds);
  registry
      .GetGauge("cluster.runtime_threads", "1",
                "OS threads in the shared runtime pool, last run (traced)")
      ->Set(result.runtime_threads);
  registry
      .GetGauge("cluster.execution_threads", "1",
                "per-worker execution threads after clamping, last run "
                "(traced)")
      ->Set(result.execution_threads);
  metrics::Histogram* worker_makespan = registry.GetHistogram(
      "cluster.worker.makespan.us", "us",
      "per-worker virtual makespans incl. unhidden prefetch residual "
      "(traced)");
  metrics::Histogram* worker_hidden = registry.GetHistogram(
      "cluster.worker.hidden_comm.us", "us",
      "per-worker prefetch communication hidden behind compute (traced)");
  for (const WorkerSummary& summary : result.workers) {
    worker_makespan->Record(
        static_cast<uint64_t>(summary.makespan_virtual_us));
    worker_hidden->Record(static_cast<uint64_t>(summary.hidden_comm_us));
  }
  metrics::Histogram* task_virtual = registry.GetHistogram(
      "cluster.task.virtual.us", "us",
      "virtual time (compute + simulated network) per task (traced)");
  for (double us : result.task_virtual_us) {
    task_virtual->Record(static_cast<uint64_t>(us));
  }
}

}  // namespace benu
