#include "distributed/cluster.h"

#include <algorithm>
#include <atomic>
#include <memory>
#include <queue>

#include "common/stopwatch.h"
#include "common/thread_pool.h"
#include "distributed/task.h"
#include "plan/filters.h"
#include "storage/triangle_cache.h"

namespace benu {
namespace {

// List-schedules task times (in submission order) onto `threads` identical
// virtual threads; returns the makespan. Reproduces the straggler
// behaviour of Fig. 9: one huge task bounds the makespan from below no
// matter how many threads exist.
double ListScheduleMakespan(const std::vector<double>& task_times,
                            int threads) {
  if (threads <= 1) {
    double total = 0;
    for (double t : task_times) total += t;
    return total;
  }
  std::priority_queue<double, std::vector<double>, std::greater<>> loads;
  for (int i = 0; i < threads; ++i) loads.push(0.0);
  double makespan = 0;
  for (double t : task_times) {
    double load = loads.top();
    loads.pop();
    load += t;
    makespan = std::max(makespan, load);
    loads.push(load);
  }
  return makespan;
}

}  // namespace

ClusterSimulator::ClusterSimulator(const Graph& data_graph,
                                   const ClusterConfig& config)
    : data_graph_(data_graph),
      config_(config),
      store_(data_graph_, config.db_partitions) {}

StatusOr<ClusterRunResult> ClusterSimulator::Run(
    const ExecutionPlan& plan, const std::vector<int>* data_labels) {
  Stopwatch total_watch;
  ClusterRunResult result;

  // Degree filters compile against the data graph's degree floors; this
  // is pattern-independent preprocessing shared by all workers.
  std::vector<VertexId> degree_floors;
  if (plan.UsesDegreeFilters()) {
    degree_floors =
        ComputeDegreeFloors(data_graph_, plan.pattern.MaxDegree());
  }

  std::vector<SearchTask> tasks =
      GenerateSearchTasks(data_graph_, plan, config_.task_split_threshold);
  result.num_tasks = tasks.size();

  const int p = std::max(1, config_.num_workers);
  // "The local search tasks ... shuffled evenly to the reducers":
  // round-robin over workers in task order.
  std::vector<std::vector<SearchTask>> per_worker(p);
  for (size_t i = 0; i < tasks.size(); ++i) {
    per_worker[i % static_cast<size_t>(p)].push_back(tasks[i]);
  }

  const int exec_threads = std::max(1, config_.execution_threads);
  result.workers.resize(static_cast<size_t>(p));
  for (int w = 0; w < p; ++w) {
    WorkerSummary& summary = result.workers[static_cast<size_t>(w)];
    const std::vector<SearchTask>& tasks =
        per_worker[static_cast<size_t>(w)];
    DbCache cache(&store_, config_.db_cache_bytes);
    CachedAdjacencyProvider provider(&cache, data_graph_.NumVertices());

    // One execution context per OS thread; the DB cache is the shared
    // structure (as in Fig. 2), everything else is thread-private.
    struct ThreadContext {
      std::unique_ptr<TriangleCache> tcache;
      std::unique_ptr<PlanExecutor> executor;
      std::unique_ptr<CountingConsumer> consumer;
      TaskStats totals;
    };
    std::vector<ThreadContext> contexts(static_cast<size_t>(exec_threads));
    for (ThreadContext& ctx : contexts) {
      ctx.tcache = std::make_unique<TriangleCache>();
      auto executor = PlanExecutor::Create(
          &plan, &provider, ctx.tcache.get(),
          degree_floors.empty() ? nullptr : &degree_floors, data_labels);
      BENU_RETURN_IF_ERROR(executor.status());
      ctx.executor = std::move(executor).value();
      ctx.consumer = std::make_unique<CountingConsumer>(plan);
    }

    std::vector<TaskStats> per_task(tasks.size());
    auto run_range = [&](ThreadContext* ctx, std::atomic<size_t>* next) {
      for (size_t i = next->fetch_add(1); i < tasks.size();
           i = next->fetch_add(1)) {
        per_task[i] = ctx->executor->RunTask(tasks[i], ctx->consumer.get());
        ctx->totals.Accumulate(per_task[i]);
      }
    };
    std::atomic<size_t> next_task{0};
    if (exec_threads == 1) {
      run_range(&contexts[0], &next_task);
    } else {
      ThreadPool pool(static_cast<size_t>(exec_threads));
      for (ThreadContext& ctx : contexts) {
        pool.Submit([&run_range, &ctx, &next_task] {
          run_range(&ctx, &next_task);
        });
      }
      pool.Wait();
    }

    std::vector<double> virtual_times;
    virtual_times.reserve(tasks.size());
    for (const TaskStats& stats : per_task) {
      const double network_us =
          static_cast<double>(stats.db_queries) * config_.db_query_latency_us +
          static_cast<double>(stats.bytes_fetched) /
              std::max(1e-9, config_.network_bytes_per_us);
      const double virtual_us = stats.wall_seconds * 1e6 + network_us;
      virtual_times.push_back(virtual_us);
      summary.busy_virtual_us += virtual_us;
      result.task_virtual_us.push_back(virtual_us);
    }
    Count worker_matches = 0;
    for (ThreadContext& ctx : contexts) {
      summary.totals.Accumulate(ctx.totals);
      worker_matches += ctx.consumer->matches();
      result.total_matches += ctx.consumer->matches();
      result.total_codes += ctx.consumer->codes();
      result.code_units += ctx.consumer->code_units();
    }
    summary.tasks = tasks.size();
    summary.totals.matches = worker_matches;
    summary.cache = cache.stats();
    summary.makespan_virtual_us =
        ListScheduleMakespan(virtual_times, config_.threads_per_worker);
    result.db_queries += summary.totals.db_queries;
    result.bytes_fetched += summary.totals.bytes_fetched;
    result.adjacency_requests += summary.totals.adjacency_requests;
    result.cache_hits += summary.totals.cache_hits;
    result.virtual_seconds =
        std::max(result.virtual_seconds, summary.makespan_virtual_us * 1e-6);
  }
  result.real_seconds = total_watch.ElapsedSeconds();
  return result;
}

}  // namespace benu
