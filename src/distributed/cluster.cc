#include "distributed/cluster.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <memory>
#include <queue>
#include <thread>

#include "common/logging.h"
#include "common/metrics.h"
#include "common/stopwatch.h"
#include "common/thread_pool.h"
#include "distributed/task.h"
#include "plan/filters.h"
#include "storage/triangle_cache.h"

namespace benu {
namespace {

// List-schedules task times (in submission order) onto `threads` identical
// virtual threads; returns the makespan. Reproduces the straggler
// behaviour of Fig. 9: one huge task bounds the makespan from below no
// matter how many threads exist.
double ListScheduleMakespan(const std::vector<double>& task_times,
                            int threads) {
  if (threads <= 1) {
    double total = 0;
    for (double t : task_times) total += t;
    return total;
  }
  std::priority_queue<double, std::vector<double>, std::greater<>> loads;
  for (int i = 0; i < threads; ++i) loads.push(0.0);
  double makespan = 0;
  for (double t : task_times) {
    double load = loads.top();
    loads.pop();
    load += t;
    makespan = std::max(makespan, load);
    loads.push(load);
  }
  return makespan;
}

}  // namespace

ClusterSimulator::ClusterSimulator(const Graph& data_graph,
                                   const ClusterConfig& config)
    : data_graph_(data_graph),
      config_(config),
      store_(data_graph_, config.db_partitions) {}

StatusOr<ClusterRunResult> ClusterSimulator::Run(
    const ExecutionPlan& plan, const std::vector<int>* data_labels) {
  Stopwatch total_watch;
  ClusterRunResult result;

  // Degree filters compile against the data graph's degree floors; this
  // is pattern-independent preprocessing shared by all workers.
  std::vector<VertexId> degree_floors;
  if (plan.UsesDegreeFilters()) {
    degree_floors =
        ComputeDegreeFloors(data_graph_, plan.pattern.MaxDegree());
  }

  std::vector<SearchTask> tasks =
      GenerateSearchTasks(data_graph_, plan, config_.task_split_threshold);
  result.num_tasks = tasks.size();

  const int p = std::max(1, config_.num_workers);
  // "The local search tasks ... shuffled evenly to the reducers":
  // round-robin over workers in task order.
  std::vector<std::vector<SearchTask>> per_worker(p);
  for (size_t i = 0; i < tasks.size(); ++i) {
    per_worker[i % static_cast<size_t>(p)].push_back(tasks[i]);
  }

  const unsigned hw = std::thread::hardware_concurrency();
  int exec_threads = std::max(1, config_.execution_threads);
  if (!config_.allow_thread_oversubscription && hw > 0 &&
      exec_threads > static_cast<int>(hw)) {
    BENU_LOG(Warning)
        << "execution_threads=" << exec_threads
        << " exceeds hardware concurrency (" << hw
        << "); clamping so oversubscribed wall times do not pollute the "
           "virtual-time model (set allow_thread_oversubscription to "
           "override)";
    exec_threads = static_cast<int>(hw);
  }
  result.execution_threads = exec_threads;

  // Background fetchers for the asynchronous adjacency pipeline live on
  // their own pool: drain jobs must not queue behind the execution
  // threads that block waiting for the very flights those jobs publish.
  // Declared before the workers so it outlives (and can still run the
  // jobs of) every cache during teardown.
  const bool prefetch_enabled = config_.prefetch_budget > 0;
  const bool async_prefetch =
      prefetch_enabled && !config_.force_sync_prefetch;
  std::unique_ptr<ThreadPool> fetch_pool;
  if (async_prefetch) {
    const size_t fetch_threads = std::max<size_t>(
        1, std::min<size_t>(static_cast<size_t>(p),
                            hw > 0 ? static_cast<size_t>(hw) : 1));
    fetch_pool = std::make_unique<ThreadPool>(fetch_threads);
  }

  // One execution context per OS thread of a worker; the worker's DB
  // cache is the shared structure (as in Fig. 2), everything else is
  // thread-private.
  struct ThreadContext {
    std::unique_ptr<TriangleCache> tcache;
    std::unique_ptr<PlanExecutor> executor;
    std::unique_ptr<CountingConsumer> consumer;
    Count steals = 0;
  };
  struct WorkerState {
    const std::vector<SearchTask>* tasks = nullptr;
    std::unique_ptr<DbCache> cache;
    std::unique_ptr<CachedAdjacencyProvider> provider;
    std::vector<ThreadContext> contexts;
    std::unique_ptr<WorkStealingScheduler> scheduler;
    std::vector<TaskStats> per_task;
    std::atomic<int> remaining{0};
    double real_seconds = 0;
  };

  // Set up every worker before any of them runs, so executor-compile
  // errors surface before a single task executes.
  std::vector<std::unique_ptr<WorkerState>> workers;
  workers.reserve(static_cast<size_t>(p));
  for (int w = 0; w < p; ++w) {
    auto ws = std::make_unique<WorkerState>();
    ws->tasks = &per_worker[static_cast<size_t>(w)];
    ws->cache = std::make_unique<DbCache>(
        &store_, config_.db_cache_bytes, /*num_shards=*/8, fetch_pool.get(),
        config_.prefetch_batch_size);
    ws->provider = std::make_unique<CachedAdjacencyProvider>(
        ws->cache.get(), data_graph_.NumVertices(), config_.prefetch_budget);
    ws->contexts.resize(static_cast<size_t>(exec_threads));
    for (ThreadContext& ctx : ws->contexts) {
      ctx.tcache = std::make_unique<TriangleCache>();
      auto executor = PlanExecutor::Create(
          &plan, ws->provider.get(), ctx.tcache.get(),
          degree_floors.empty() ? nullptr : &degree_floors, data_labels);
      BENU_RETURN_IF_ERROR(executor.status());
      ctx.executor = std::move(executor).value();
      ctx.consumer = std::make_unique<CountingConsumer>(plan);
    }
    ws->scheduler = std::make_unique<WorkStealingScheduler>(
        ws->tasks->size(), static_cast<size_t>(exec_threads));
    ws->per_task.resize(ws->tasks->size());
    ws->remaining.store(exec_threads, std::memory_order_relaxed);
    workers.push_back(std::move(ws));
  }

  // Per-worker runtime phase totals (§2e): time spent claiming/stealing
  // tasks vs executing them, accumulated thread-locally and flushed once
  // per thread. Only measured under tracing — two clock reads per task
  // are not free on micro-task workloads.
  auto& registry = metrics::MetricsRegistry::Global();
  metrics::Counter* claim_ns_metric = registry.GetCounter(
      "cluster.phase.claim_ns", "ns",
      "execution-thread time spent claiming/stealing tasks (traced)");
  metrics::Counter* compute_ns_metric = registry.GetCounter(
      "cluster.phase.compute_ns", "ns",
      "execution-thread time spent inside RunTask (traced)");

  // One execution thread of one worker: claim tasks (stealing from
  // sibling threads when the own deque runs dry) until the worker's task
  // list is exhausted.
  auto run_thread = [&total_watch, claim_ns_metric, compute_ns_metric](
                        WorkerState* ws, size_t t) {
    ThreadContext& ctx = ws->contexts[t];
    const bool traced = metrics::TracingEnabled();
    uint64_t claim_ns = 0;
    uint64_t compute_ns = 0;
    size_t index = 0;
    bool stolen = false;
    for (;;) {
      bool claimed;
      if (traced) {
        const auto t0 = std::chrono::steady_clock::now();
        claimed = ws->scheduler->Claim(t, &index, &stolen);
        claim_ns += static_cast<uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now() - t0)
                .count());
      } else {
        claimed = ws->scheduler->Claim(t, &index, &stolen);
      }
      if (!claimed) break;
      if (stolen) ++ctx.steals;
      if (traced) {
        const auto t0 = std::chrono::steady_clock::now();
        ws->per_task[index] =
            ctx.executor->RunTask((*ws->tasks)[index], ctx.consumer.get());
        compute_ns += static_cast<uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now() - t0)
                .count());
      } else {
        ws->per_task[index] =
            ctx.executor->RunTask((*ws->tasks)[index], ctx.consumer.get());
      }
    }
    if (traced) {
      claim_ns_metric->Add(claim_ns);
      compute_ns_metric->Add(compute_ns);
    }
    if (ws->remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      ws->real_seconds = total_watch.ElapsedSeconds();
    }
  };

  // All p workers run concurrently on one shared pool sized by the
  // hardware (Fig. 2's p workers × w threads, collapsed onto one
  // machine). max_runtime_threads = 1 reproduces the sequential seed.
  const size_t total_contexts =
      static_cast<size_t>(p) * static_cast<size_t>(exec_threads);
  size_t pool_threads;
  if (config_.max_runtime_threads > 0) {
    pool_threads = static_cast<size_t>(config_.max_runtime_threads);
  } else if (config_.allow_thread_oversubscription) {
    pool_threads = total_contexts;
  } else {
    pool_threads = hw > 0 ? static_cast<size_t>(hw) : 1;
  }
  pool_threads = std::max<size_t>(1, std::min(pool_threads, total_contexts));
  result.runtime_threads = static_cast<int>(pool_threads);

  if (pool_threads == 1) {
    // Degenerate pool: run inline and spare the thread churn (this is
    // the sequential seed's execution order).
    for (auto& ws : workers) {
      for (size_t t = 0; t < ws->contexts.size(); ++t) {
        run_thread(ws.get(), t);
      }
    }
  } else {
    ThreadPool pool(pool_threads);
    for (auto& ws : workers) {
      for (size_t t = 0; t < ws->contexts.size(); ++t) {
        WorkerState* state = ws.get();
        pool.Submit([&run_thread, state, t] { run_thread(state, t); });
      }
    }
    pool.Wait();
  }

  // Quiesce the prefetch pipeline before reading cache stats: in-flight
  // fetcher jobs still mutate prefetch counters after the execution
  // threads have finished.
  if (prefetch_enabled) {
    for (auto& ws : workers) ws->cache->WaitForPrefetches();
  }

  // Aggregate in worker order so totals are independent of the actual
  // thread interleaving (integer totals per task are interleaving-
  // invariant; summation order here is fixed).
  for (int w = 0; w < p; ++w) {
    WorkerState& ws = *workers[static_cast<size_t>(w)];
    result.workers.emplace_back();
    WorkerSummary& summary = result.workers.back();

    std::vector<double> virtual_times;
    virtual_times.reserve(ws.per_task.size());
    for (const TaskStats& stats : ws.per_task) {
      summary.totals.Accumulate(stats);
      // Coalesced fetches issue no query of their own but do wait out
      // the primary's round trip, so they are charged the latency (not
      // the bytes) in the task's virtual time.
      const double network_us =
          static_cast<double>(stats.db_queries + stats.coalesced_fetches) *
              config_.db_query_latency_us +
          static_cast<double>(stats.bytes_fetched) /
              std::max(1e-9, config_.network_bytes_per_us);
      const double compute_us =
          (stats.cpu_seconds >= 0 ? stats.cpu_seconds : stats.wall_seconds) *
          1e6;
      const double virtual_us = compute_us + network_us;
      virtual_times.push_back(virtual_us);
      summary.busy_virtual_us += virtual_us;
      result.task_virtual_us.push_back(virtual_us);
    }
    Count worker_matches = 0;
    for (ThreadContext& ctx : ws.contexts) {
      worker_matches += ctx.consumer->matches();
      result.total_matches += ctx.consumer->matches();
      result.total_codes += ctx.consumer->codes();
      result.code_units += ctx.consumer->code_units();
      summary.steals += ctx.steals;
    }
    summary.tasks = ws.tasks->size();
    summary.totals.matches = worker_matches;
    summary.cache = ws.cache->stats();
    summary.real_seconds = ws.real_seconds;
    const double compute_makespan_us =
        ListScheduleMakespan(virtual_times, config_.threads_per_worker);
    // Overlap accounting (§2d): the worker's prefetch pipeline costs one
    // round-trip latency per partition per batch plus the prefetched
    // bytes over the bandwidth. Running asynchronously, it overlaps the
    // compute makespan — the hidden portion never reaches the critical
    // path; only the residual (a comm-bound worker) extends it. The
    // forced-sync mode drains the queue on the enumerating threads, so
    // nothing is hidden and the full pipeline cost is serialized.
    const double prefetch_comm_us =
        static_cast<double>(summary.cache.prefetch_round_trips) *
            config_.db_query_latency_us +
        static_cast<double>(summary.cache.prefetch_bytes) /
            std::max(1e-9, config_.network_bytes_per_us);
    const double hidden_us =
        async_prefetch ? std::min(prefetch_comm_us, compute_makespan_us)
                       : 0.0;
    summary.hidden_comm_us = hidden_us;
    summary.makespan_virtual_us =
        compute_makespan_us + (prefetch_comm_us - hidden_us);
    result.hidden_comm_seconds += hidden_us * 1e-6;
    result.prefetches_issued += summary.cache.prefetches_issued;
    result.prefetch_hits += summary.cache.prefetch_hits;
    result.prefetch_wasted += summary.cache.prefetch_wasted;
    result.prefetch_round_trips += summary.cache.prefetch_round_trips;
    result.prefetch_bytes += summary.cache.prefetch_bytes;
    result.steals += summary.steals;
    result.db_queries += summary.totals.db_queries;
    result.coalesced_fetches += summary.totals.coalesced_fetches;
    result.bytes_fetched += summary.totals.bytes_fetched;
    result.adjacency_requests += summary.totals.adjacency_requests;
    result.cache_hits += summary.totals.cache_hits;
    result.virtual_seconds =
        std::max(result.virtual_seconds, summary.makespan_virtual_us * 1e-6);
  }
  result.real_seconds = total_watch.ElapsedSeconds();
  PublishRunMetrics(result);
  return result;
}

// Publishes the aggregated run outcome into the process-wide registry
// (`cluster.*`, docs/metrics.md). The legacy ClusterRunResult stays the
// per-run view; the registry accumulates across runs, and
// metrics_test.cc checks the two agree after a single run. Timing-derived
// instruments (virtual/real seconds, per-worker distributions) are only
// exported under tracing so that untraced snapshots are a pure function
// of the work performed — the property the snapshot-determinism test
// relies on.
void ClusterSimulator::PublishRunMetrics(const ClusterRunResult& result) {
  auto& registry = metrics::MetricsRegistry::Global();
  const auto counter = [&registry](const char* name, const char* unit,
                                   const char* help, Count value) {
    registry.GetCounter(name, unit, help)->Add(value);
  };
  counter("cluster.runs", "1", "completed ClusterSimulator::Run calls", 1);
  counter("cluster.tasks", "1", "local search tasks executed",
          result.num_tasks);
  counter("cluster.matches", "1", "expanded matches", result.total_matches);
  counter("cluster.codes", "1", "RES executions (helves under VCBC)",
          result.total_codes);
  counter("cluster.code_units", "1",
          "compressed-code payload units (vertex-id entries)",
          result.code_units);
  counter("cluster.db_queries", "1", "synchronous store queries by tasks",
          result.db_queries);
  counter("cluster.bytes_fetched", "bytes",
          "payload bytes of synchronous task fetches", result.bytes_fetched);
  counter("cluster.adjacency_requests", "1",
          "DBQ executions (hits + misses + coalesced)",
          result.adjacency_requests);
  counter("cluster.cache_hits", "1", "DBQ lookups served from a DB cache",
          result.cache_hits);
  counter("cluster.coalesced_fetches", "1",
          "DBQ lookups that piggybacked on a sibling's in-flight query",
          result.coalesced_fetches);
  counter("cluster.steals", "1", "work-stealing claims across all workers",
          result.steals);
  counter("cluster.prefetches_issued", "1",
          "keys handed to the async adjacency pipeline",
          result.prefetches_issued);
  counter("cluster.prefetch_hits", "1",
          "prefetched entries that converted a would-be miss into a hit",
          result.prefetch_hits);
  counter("cluster.prefetch_wasted", "1",
          "prefetched entries evicted or dropped without a hit",
          result.prefetch_wasted);
  counter("cluster.prefetch_round_trips", "1",
          "round trips of batched background fetches",
          result.prefetch_round_trips);
  counter("cluster.prefetch_bytes", "bytes",
          "payload bytes fetched by the prefetch pipeline",
          result.prefetch_bytes);
  if (!metrics::TracingEnabled()) return;
  registry
      .GetGauge("cluster.virtual_seconds", "s",
                "virtual makespan of the last run (traced)")
      ->Set(result.virtual_seconds);
  registry
      .GetGauge("cluster.hidden_comm_seconds", "s",
                "prefetch communication hidden behind compute, last run "
                "(traced)")
      ->Set(result.hidden_comm_seconds);
  registry
      .GetGauge("cluster.real_seconds", "s",
                "wall time of the last run (traced)")
      ->Set(result.real_seconds);
  registry
      .GetGauge("cluster.runtime_threads", "1",
                "OS threads in the shared runtime pool, last run (traced)")
      ->Set(result.runtime_threads);
  registry
      .GetGauge("cluster.execution_threads", "1",
                "per-worker execution threads after clamping, last run "
                "(traced)")
      ->Set(result.execution_threads);
  metrics::Histogram* worker_makespan = registry.GetHistogram(
      "cluster.worker.makespan.us", "us",
      "per-worker virtual makespans incl. unhidden prefetch residual "
      "(traced)");
  metrics::Histogram* worker_hidden = registry.GetHistogram(
      "cluster.worker.hidden_comm.us", "us",
      "per-worker prefetch communication hidden behind compute (traced)");
  for (const WorkerSummary& summary : result.workers) {
    worker_makespan->Record(
        static_cast<uint64_t>(summary.makespan_virtual_us));
    worker_hidden->Record(static_cast<uint64_t>(summary.hidden_comm_us));
  }
  metrics::Histogram* task_virtual = registry.GetHistogram(
      "cluster.task.virtual.us", "us",
      "virtual time (compute + simulated network) per task (traced)");
  for (double us : result.task_virtual_us) {
    task_virtual->Record(static_cast<uint64_t>(us));
  }
}

}  // namespace benu
