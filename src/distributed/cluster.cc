#include "distributed/cluster.h"

#include <algorithm>
#include <memory>
#include <thread>
#include <vector>

#include "common/logging.h"
#include "common/stopwatch.h"
#include "common/thread_pool.h"
#include "core/memory_governor.h"
#include "distributed/cluster_accounting.h"
#include "distributed/cluster_runtime.h"
#include "distributed/task.h"
#include "plan/filters.h"

namespace benu {

ClusterSimulator::ClusterSimulator(const Graph& data_graph,
                                   const ClusterConfig& config)
    : data_graph_(data_graph), config_(config) {
  if (config_.transport != nullptr) {
    BENU_CHECK(config_.transport->num_vertices() ==
               data_graph_.NumVertices())
        << "transport stores " << config_.transport->num_vertices()
        << " vertices but the data graph has " << data_graph_.NumVertices()
        << " — both sides must hold the same (identically labeled) graph";
    config_.db_partitions = config_.transport->num_partitions();
    store_ = std::make_unique<DistributedKvStore>(config_.transport);
  } else {
    store_ = std::make_unique<DistributedKvStore>(MakeSimulatedTransport(
        data_graph_, config_.db_partitions, config_.compress_adjacency));
  }
}

StatusOr<ClusterRunResult> ClusterSimulator::Run(
    const ExecutionPlan& plan, const std::vector<int>* data_labels) {
  Stopwatch total_watch;
  ClusterRunResult result;

  // Degree filters compile against the data graph's degree floors; this
  // is pattern-independent preprocessing shared by all workers.
  std::vector<VertexId> degree_floors;
  if (plan.UsesDegreeFilters()) {
    degree_floors =
        ComputeDegreeFloors(data_graph_, plan.pattern.MaxDegree());
  }

  std::vector<SearchTask> tasks =
      GenerateSearchTasks(data_graph_, plan, config_.task_split_threshold);
  result.num_tasks = tasks.size();

  const int p = std::max(1, config_.num_workers);
  // "The local search tasks ... shuffled evenly to the reducers":
  // round-robin over workers in task order.
  std::vector<std::vector<SearchTask>> per_worker(p);
  for (size_t i = 0; i < tasks.size(); ++i) {
    per_worker[i % static_cast<size_t>(p)].push_back(tasks[i]);
  }

  const int exec_threads = ClampExecutionThreads(
      config_.execution_threads, config_.allow_thread_oversubscription);
  result.execution_threads = exec_threads;

  // Memory governor of the hybrid execution mode: one per run, shared by
  // every worker's cache, provider and executors so one budget covers
  // frontier regions and cache residency across the whole cluster. Only
  // instantiated when governed execution is requested — plain-DFS runs
  // (the default, incl. the byte-deterministic metrics workloads) touch
  // no governor state and emit no memory.governor.* instruments.
  // Declared before the fetch pool and the workers: cache teardown (and
  // late fetcher jobs) still report resident deltas to it.
  std::unique_ptr<MemoryGovernor> governor;
  if (config_.memory_budget_bytes > 0 ||
      config_.expansion != ExpansionMode::kDfs) {
    governor = std::make_unique<MemoryGovernor>(config_.memory_budget_bytes,
                                                config_.prefetch_budget,
                                                config_.prefetch_batch_size);
  }

  // Background fetchers for the asynchronous adjacency pipeline live on
  // their own pool: drain jobs must not queue behind the execution
  // threads that block waiting for the very flights those jobs publish.
  // Declared before the workers so it outlives (and can still run the
  // jobs of) every cache during teardown.
  const bool prefetch_enabled = config_.prefetch_budget > 0;
  const bool async_prefetch =
      prefetch_enabled && !config_.force_sync_prefetch;
  std::unique_ptr<ThreadPool> fetch_pool;
  if (async_prefetch) {
    const unsigned hw = std::thread::hardware_concurrency();
    const size_t fetch_threads = std::max<size_t>(
        1, std::min<size_t>(static_cast<size_t>(p),
                            hw > 0 ? static_cast<size_t>(hw) : 1));
    fetch_pool = std::make_unique<ThreadPool>(fetch_threads);
  }

  auto workers = SetUpWorkers(per_worker, plan, config_, store_.get(),
                              data_graph_.NumVertices(), exec_threads,
                              &degree_floors, data_labels, fetch_pool.get(),
                              governor.get());
  BENU_RETURN_IF_ERROR(workers.status());

  result.runtime_threads = static_cast<int>(ExecuteWorkers(
      *workers, config_, exec_threads, prefetch_enabled, total_watch));

  // Aggregate in worker order so totals are independent of the actual
  // thread interleaving (integer totals per task are interleaving-
  // invariant; summation order here is fixed).
  for (const auto& worker : *workers) {
    AccumulateWorker(*worker, config_, async_prefetch, &result);
  }
  result.real_seconds = total_watch.ElapsedSeconds();
  PublishRunMetrics(result);
  return result;
}

}  // namespace benu
