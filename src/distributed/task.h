#ifndef BENU_DISTRIBUTED_TASK_H_
#define BENU_DISTRIBUTED_TASK_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <vector>

#include "core/executor.h"
#include "graph/graph.h"
#include "plan/instruction.h"

namespace benu {

namespace metrics {
class Counter;
}  // namespace metrics

/// Generates the local search tasks of Algorithm 2 (one per data vertex),
/// applying the task splitting technique of §V-B with degree threshold
/// `tau` (0 disables splitting):
///   - a vertex v with d(v) ≥ tau is split into ⌈d(v)/τ⌉ subtasks when the
///     first two matching-order vertices are adjacent in P (the candidate
///     set of the second vertex derives from A of the first);
///   - ⌈|V(G)|/τ⌉ subtasks otherwise (candidate set derives from V(G)).
/// Each subtask enumerates a distinct equal-sized slice of the second
/// vertex's candidate set.
std::vector<SearchTask> GenerateSearchTasks(const Graph& data_graph,
                                            const ExecutionPlan& plan,
                                            uint32_t tau);

/// Work-stealing claim over one worker's task list (§V: w threads per
/// worker execute the worker's local search tasks). Task indices
/// [0, num_tasks) are dealt round-robin into one deque per thread — the
/// same even spread the shuffle gives workers. An owner claims from the
/// front of its own deque; a thread whose deque runs dry steals from the
/// back of the most loaded sibling, so a straggler task (§V-B, Fig. 9)
/// pins one thread while the rest of the worker's tasks drain on its
/// siblings instead of idling behind a shared cursor position.
///
/// Thread-safe; Claim may be called concurrently from any thread as long
/// as each caller passes a distinct `thread` id (owners must be unique,
/// stealing is unrestricted).
class WorkStealingScheduler {
 public:
  WorkStealingScheduler(size_t num_tasks, size_t num_threads);

  WorkStealingScheduler(const WorkStealingScheduler&) = delete;
  WorkStealingScheduler& operator=(const WorkStealingScheduler&) = delete;

  /// Claims the next task for `thread`. Returns false when no tasks are
  /// left anywhere (the worker is done). `*stolen`, if non-null, reports
  /// whether the claim came from a sibling's deque.
  bool Claim(size_t thread, size_t* task_index, bool* stolen = nullptr);

  size_t num_threads() const { return queues_.size(); }

 private:
  struct Queue {
    std::mutex mu;
    std::deque<size_t> tasks;
  };

  std::vector<std::unique_ptr<Queue>> queues_;
  // Registry mirrors (`scheduler.claims` / `scheduler.steals`), resolved
  // once at construction; bumped per successful claim.
  metrics::Counter* claims_metric_ = nullptr;
  metrics::Counter* steals_metric_ = nullptr;
};

}  // namespace benu

#endif  // BENU_DISTRIBUTED_TASK_H_
