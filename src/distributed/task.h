#ifndef BENU_DISTRIBUTED_TASK_H_
#define BENU_DISTRIBUTED_TASK_H_

#include <cstdint>
#include <vector>

#include "core/executor.h"
#include "graph/graph.h"
#include "plan/instruction.h"

namespace benu {

/// Generates the local search tasks of Algorithm 2 (one per data vertex),
/// applying the task splitting technique of §V-B with degree threshold
/// `tau` (0 disables splitting):
///   - a vertex v with d(v) ≥ tau is split into ⌈d(v)/τ⌉ subtasks when the
///     first two matching-order vertices are adjacent in P (the candidate
///     set of the second vertex derives from A of the first);
///   - ⌈|V(G)|/τ⌉ subtasks otherwise (candidate set derives from V(G)).
/// Each subtask enumerates a distinct equal-sized slice of the second
/// vertex's candidate set.
std::vector<SearchTask> GenerateSearchTasks(const Graph& data_graph,
                                            const ExecutionPlan& plan,
                                            uint32_t tau);

}  // namespace benu

#endif  // BENU_DISTRIBUTED_TASK_H_
