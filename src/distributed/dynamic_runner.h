#ifndef BENU_DISTRIBUTED_DYNAMIC_RUNNER_H_
#define BENU_DISTRIBUTED_DYNAMIC_RUNNER_H_

#include <cstdint>
#include <map>
#include <memory>
#include <span>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "core/executor.h"
#include "graph/graph.h"
#include "plan/incremental.h"
#include "storage/db_cache.h"
#include "storage/transport.h"
#include "storage/versioned_store.h"

namespace benu {

namespace metrics {
class Counter;
class Gauge;
}  // namespace metrics

/// Knobs of the dynamic maintenance loop.
struct DynamicRunnerOptions {
  /// DB cache capacity, bytes (0 disables caching benefits but the cache
  /// layer still coalesces and epoch-invalidates).
  size_t cache_bytes = 64u << 20;
  size_t cache_shards = 8;
  /// Keys forwarded per executor Prefetch call (0: synchronous misses
  /// only — the deterministic default; the bench turns it on).
  size_t prefetch_budget = 0;
  /// Maintain the full match multiset across epochs (TrackedMatches());
  /// the exactness property test compares it against a fresh recount at
  /// every epoch. Off for benchmarks — counting is the production mode.
  bool track_matches = false;
};

/// Outcome of one epoch batch.
struct EpochReport {
  uint64_t epoch = 0;
  /// Ops in the submitted batch before net canonicalization.
  size_t raw_ops = 0;
  size_t net_inserted = 0;
  size_t net_removed = 0;
  /// Matches gained (over the post-apply snapshot, seeded from Δ⁺).
  Count added = 0;
  /// Matches lost (over the pre-apply snapshot, seeded from Δ⁻).
  Count retracted = 0;
  /// Maintained total after this epoch: previous total − retracted + added.
  Count total = 0;
  /// Seeded executor tasks run (2 orientations × |Δ| × plans).
  Count seed_tasks = 0;
  /// Matches rejected by the min-index uniqueness filter.
  Count filter_rejected = 0;
  /// Wall time of the incremental maintenance (both passes + apply).
  double seconds = 0;
};

/// Drives S-BENU incremental maintenance over a VersionedAdjacencyStore:
/// replays an edge stream in epoch batches, keeping the pattern's match
/// count (and optionally the match multiset) exact at every epoch.
///
/// Per ApplyBatch: Canonicalize → retraction pass (incremental plans
/// seeded from Δ⁻ against the pre-apply snapshot, patch = Δ⁻) → Apply
/// (store overlay + delta replication + DbCache::AdvanceEpoch precise
/// invalidation) → addition pass (seeded from Δ⁺ against the new
/// snapshot, patch = Δ⁺). Exactness: net canonicalization makes Δ⁺
/// disjoint from the old snapshot and Δ⁻ contained in it, so retracted
/// matches (⊇ one Δ⁻ edge, counted once via min-index) and added
/// matches (⊇ one Δ⁺ edge) partition the symmetric difference of the
/// match sets.
///
/// Works over any Transport backend — simulated, loopback, TCP — because
/// all mutation lives in the client-side overlay; servers keep serving
/// base payloads (see VersionedAdjacencyStore).
///
/// The vertex universe is fixed at the base graph's: delta endpoints
/// must be < store().num_vertices().
class DynamicRunner {
 public:
  /// `pattern` must be connected with ≥ 2 vertices. The transport must
  /// serve the epoch-0 base graph.
  static StatusOr<std::unique_ptr<DynamicRunner>> Create(
      std::shared_ptr<Transport> transport, const Graph& pattern,
      const DynamicRunnerOptions& options = {});

  /// Full enumeration at the current snapshot; (re)initializes the
  /// maintained total. Call once before the first ApplyBatch.
  StatusOr<Count> RunBaseline();

  /// One epoch batch end to end. The maintained total must have been
  /// initialized by RunBaseline.
  StatusOr<EpochReport> ApplyBatch(std::span<const EdgeDelta> ops);

  /// Full recomputation at the current snapshot — the comparator for the
  /// ≥5× speedup acceptance check and the exactness property test. Does
  /// not touch the maintained total.
  StatusOr<Count> Recount();

  /// Maintained match count.
  Count total_matches() const { return total_; }

  uint64_t epoch() const { return store_->epoch(); }
  VersionedAdjacencyStore& store() { return *store_; }
  DbCache& cache() { return *cache_; }
  const IncrementalPlanSet& incremental_plans() const { return inc_; }

  /// The maintained match multiset, sorted (requires
  /// options.track_matches and a prior RunBaseline).
  std::vector<std::vector<VertexId>> TrackedMatches() const;

 private:
  DynamicRunner(const Graph& pattern, const DynamicRunnerOptions& options);

  /// Runs every incremental plan seeded from `delta_edges` (both
  /// orientations per edge), filtering via min-index against `patch`.
  /// `retract` selects whether tracked matches are removed or added.
  StatusOr<Count> EnumerateSeeded(std::span<const EdgeDelta> delta_edges,
                                  const EdgePatch& patch, bool retract,
                                  EpochReport* report);

  /// Full enumeration with the baseline plan; when `track` is true the
  /// tracked multiset is rebuilt.
  StatusOr<Count> EnumerateFull(bool track);

  Graph pattern_;
  DynamicRunnerOptions options_;
  IncrementalPlanSet inc_;
  ExecutionPlan full_plan_;
  std::unique_ptr<VersionedAdjacencyStore> store_;
  std::unique_ptr<DbCache> cache_;
  std::unique_ptr<CachedAdjacencyProvider> provider_;
  Count total_ = 0;
  bool baseline_run_ = false;
  /// match → multiplicity (should stay 1; tracked to catch duplicates).
  std::map<std::vector<VertexId>, Count> tracked_;

  metrics::Counter* epochs_metric_ = nullptr;
  metrics::Counter* raw_ops_metric_ = nullptr;
  metrics::Counter* added_metric_ = nullptr;
  metrics::Counter* retracted_metric_ = nullptr;
  metrics::Counter* seed_tasks_metric_ = nullptr;
  metrics::Counter* filter_rejected_metric_ = nullptr;
  metrics::Gauge* total_gauge_ = nullptr;
};

}  // namespace benu

#endif  // BENU_DISTRIBUTED_DYNAMIC_RUNNER_H_
