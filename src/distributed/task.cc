#include "distributed/task.h"

#include "common/metrics.h"

namespace benu {

std::vector<SearchTask> GenerateSearchTasks(const Graph& data_graph,
                                            const ExecutionPlan& plan,
                                            uint32_t tau) {
  std::vector<SearchTask> tasks;
  const size_t n_data = data_graph.NumVertices();
  tasks.reserve(n_data);
  const bool second_from_adjacency =
      plan.matching_order.size() >= 2 &&
      plan.pattern.HasEdge(plan.matching_order[0], plan.matching_order[1]);
  for (VertexId v = 0; v < n_data; ++v) {
    uint32_t num_subtasks = 1;
    if (tau > 0 && data_graph.Degree(v) >= tau) {
      const uint64_t basis = second_from_adjacency
                                 ? data_graph.Degree(v)
                                 : static_cast<uint64_t>(n_data);
      num_subtasks = static_cast<uint32_t>((basis + tau - 1) / tau);
      if (num_subtasks == 0) num_subtasks = 1;
    }
    for (uint32_t s = 0; s < num_subtasks; ++s) {
      tasks.push_back(SearchTask{v, s, num_subtasks});
    }
  }
  return tasks;
}

WorkStealingScheduler::WorkStealingScheduler(size_t num_tasks,
                                             size_t num_threads) {
  if (num_threads == 0) num_threads = 1;
  auto& registry = metrics::MetricsRegistry::Global();
  claims_metric_ = registry.GetCounter(
      "scheduler.claims", "1", "successful task claims (own deque or steal)");
  steals_metric_ = registry.GetCounter(
      "scheduler.steals", "1", "claims taken from a sibling thread's deque");
  queues_.reserve(num_threads);
  for (size_t t = 0; t < num_threads; ++t) {
    queues_.push_back(std::make_unique<Queue>());
  }
  for (size_t i = 0; i < num_tasks; ++i) {
    queues_[i % num_threads]->tasks.push_back(i);
  }
}

bool WorkStealingScheduler::Claim(size_t thread, size_t* task_index,
                                  bool* stolen) {
  Queue& own = *queues_[thread % queues_.size()];
  {
    std::lock_guard<std::mutex> lock(own.mu);
    if (!own.tasks.empty()) {
      *task_index = own.tasks.front();
      own.tasks.pop_front();
      if (stolen != nullptr) *stolen = false;
      claims_metric_->Add(1);
      return true;
    }
  }
  // Own deque is dry: steal from the back of the most loaded sibling.
  // Sizes are sampled one lock at a time, so the choice is heuristic; the
  // claim itself re-checks under the victim's lock. Tasks never re-enter
  // a deque, so "every deque observed empty" is a stable termination
  // condition.
  for (;;) {
    size_t victim = queues_.size();
    size_t victim_size = 0;
    for (size_t q = 0; q < queues_.size(); ++q) {
      if (q == thread % queues_.size()) continue;
      std::lock_guard<std::mutex> lock(queues_[q]->mu);
      if (queues_[q]->tasks.size() > victim_size) {
        victim = q;
        victim_size = queues_[q]->tasks.size();
      }
    }
    if (victim == queues_.size()) return false;
    std::lock_guard<std::mutex> lock(queues_[victim]->mu);
    if (queues_[victim]->tasks.empty()) continue;  // lost the race; rescan
    *task_index = queues_[victim]->tasks.back();
    queues_[victim]->tasks.pop_back();
    if (stolen != nullptr) *stolen = true;
    claims_metric_->Add(1);
    steals_metric_->Add(1);
    return true;
  }
}

}  // namespace benu
