#include "distributed/task.h"

namespace benu {

std::vector<SearchTask> GenerateSearchTasks(const Graph& data_graph,
                                            const ExecutionPlan& plan,
                                            uint32_t tau) {
  std::vector<SearchTask> tasks;
  const size_t n_data = data_graph.NumVertices();
  tasks.reserve(n_data);
  const bool second_from_adjacency =
      plan.matching_order.size() >= 2 &&
      plan.pattern.HasEdge(plan.matching_order[0], plan.matching_order[1]);
  for (VertexId v = 0; v < n_data; ++v) {
    uint32_t num_subtasks = 1;
    if (tau > 0 && data_graph.Degree(v) >= tau) {
      const uint64_t basis = second_from_adjacency
                                 ? data_graph.Degree(v)
                                 : static_cast<uint64_t>(n_data);
      num_subtasks = static_cast<uint32_t>((basis + tau - 1) / tau);
      if (num_subtasks == 0) num_subtasks = 1;
    }
    for (uint32_t s = 0; s < num_subtasks; ++s) {
      tasks.push_back(SearchTask{v, s, num_subtasks});
    }
  }
  return tasks;
}

}  // namespace benu
