#ifndef BENU_DISTRIBUTED_BENU_MAPREDUCE_H_
#define BENU_DISTRIBUTED_BENU_MAPREDUCE_H_

#include "common/status.h"
#include "distributed/mapreduce.h"
#include "graph/graph.h"
#include "plan/plan_search.h"
#include "storage/db_cache.h"

namespace benu {

/// Outcome of a MapReduce-deployed BENU run.
struct MapReduceBenuResult {
  Count total_matches = 0;
  Count total_codes = 0;
  /// Task-shuffle statistics: the only thing BENU ever shuffles besides
  /// on-demand data-graph queries — note how small it is next to the
  /// join baselines' partial results.
  mapreduce::JobStats job;
  /// Aggregated DB cache statistics over all reducers.
  DbCacheStats cache;
  Count db_queries = 0;
  Count bytes_fetched = 0;
};

/// Deploys BENU exactly as the paper does (§VII "BENU"): the local search
/// tasks are generated in the map phase — one map input per data vertex,
/// task splitting applied — shuffled evenly to `num_reducers` reducers,
/// and every reducer executes its tasks against the distributed KV store
/// through its own local DB cache.
///
/// Functionally equivalent to ClusterSimulator (the tests assert equal
/// counts); this entry point exists to exercise the MapReduce substrate
/// end to end. `data_graph` is relabeled internally.
StatusOr<MapReduceBenuResult> RunBenuOnMapReduce(
    const Graph& data_graph, const Graph& pattern, int num_reducers,
    size_t cache_bytes_per_reducer, uint32_t task_split_threshold = 0,
    const PlanSearchOptions& plan_options = {.optimize = true,
                                             .apply_vcbc = true});

}  // namespace benu

#endif  // BENU_DISTRIBUTED_BENU_MAPREDUCE_H_
