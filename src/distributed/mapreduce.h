#ifndef BENU_DISTRIBUTED_MAPREDUCE_H_
#define BENU_DISTRIBUTED_MAPREDUCE_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "common/status.h"
#include "common/types.h"

namespace benu {

/// A minimal in-process MapReduce engine — the task-parallel substrate
/// the paper's systems run on (Hadoop 2.7): BENU generates local search
/// tasks in the map phase and shuffles them evenly to reducers; CBF runs
/// its joins as chains of MapReduce rounds.
///
/// Records are flat u32 tuples. The mapper emits (key, record) pairs; the
/// engine hash-partitions keys over the reducers, accounting every
/// shuffled record/byte (the quantity Table V reports); reducers receive
/// their partition grouped by key.
namespace mapreduce {

using Record = std::vector<uint32_t>;

/// One emitted key/record pair.
struct KeyedRecord {
  uint64_t key = 0;
  Record record;
};

/// Emit sink handed to mappers.
class Emitter {
 public:
  virtual ~Emitter() = default;
  virtual void Emit(uint64_t key, Record record) = 0;
};

/// A group of records sharing one key, delivered to a reducer.
struct KeyGroup {
  uint64_t key = 0;
  std::vector<Record> records;
};

struct JobConfig {
  int num_reducers = 4;
  /// Simulated cluster-memory budget: exceeding this many shuffled
  /// records fails the job with ResourceExhausted (the CRASH rows of
  /// Table V model Hadoop shuffle errors this way).
  size_t max_shuffle_records = static_cast<size_t>(-1);
};

/// Accounting of one successful RunJob round (a job that fails its
/// shuffle budget leaves `stats` untouched). Single-threaded — callers
/// that chain rounds sum the fields themselves.
struct JobStats {
  /// Records handed to mappers; unit: records.
  Count map_input_records = 0;
  /// Keyed records hash-partitioned to reducers; unit: records. Every
  /// emitted record is shuffled exactly once (no combiner), matching
  /// Table V's communication metric.
  Count shuffled_records = 0;
  /// Payload of the shuffle: 4 bytes per u32 tuple element plus the
  /// 8-byte key per record (what a Hadoop shuffle would serialize).
  Count shuffled_bytes = 0;
  /// Records produced by all reducers; unit: records.
  Count reduce_output_records = 0;
};

/// Mapper: input record -> emits zero or more keyed records.
using MapFn = std::function<void(const Record& input, Emitter* emitter)>;
/// Reducer: one key group -> zero or more output records.
using ReduceFn =
    std::function<void(int reducer, const KeyGroup& group,
                       std::vector<Record>* output)>;

/// Runs one MapReduce round. Output records of all reducers are
/// concatenated (reducer-major, key-sorted within a reducer) so rounds
/// chain deterministically.
StatusOr<std::vector<Record>> RunJob(const std::vector<Record>& inputs,
                                     const MapFn& map, const ReduceFn& reduce,
                                     const JobConfig& config,
                                     JobStats* stats);

}  // namespace mapreduce
}  // namespace benu

#endif  // BENU_DISTRIBUTED_MAPREDUCE_H_
