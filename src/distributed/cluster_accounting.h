#ifndef BENU_DISTRIBUTED_CLUSTER_ACCOUNTING_H_
#define BENU_DISTRIBUTED_CLUSTER_ACCOUNTING_H_

#include <vector>

#include "distributed/cluster.h"
#include "distributed/cluster_runtime.h"

namespace benu {

/// Virtual-time accounting of the cluster (one of the three TUs
/// cluster.cc decomposes into, next to cluster_runtime): turns the
/// settled runtime state of the workers into per-worker summaries,
/// virtual makespans and the aggregated run result, and mirrors that
/// result into the process-wide metrics registry.

/// List-schedules task times (in submission order) onto `threads`
/// identical virtual threads; returns the makespan. Reproduces the
/// straggler behaviour of Fig. 9: one huge task bounds the makespan from
/// below no matter how many threads exist.
double ListScheduleMakespan(const std::vector<double>& task_times,
                            int threads);

/// Folds one finished worker into `result` (appending its
/// WorkerSummary): per-task virtual times (compute + latency per query
/// and coalesced wait + bytes over bandwidth), the worker's list-
/// scheduled compute makespan, and the prefetch-overlap split — with
/// async prefetch the pipeline's communication hides behind compute up
/// to the makespan, only the residual extends it. Must run in worker
/// order so totals are independent of thread interleaving.
void AccumulateWorker(const WorkerExecution& worker,
                      const ClusterConfig& config, bool async_prefetch,
                      ClusterRunResult* result);

/// Publishes the aggregated run outcome into the process-wide registry
/// (`cluster.*`, docs/metrics.md). The ClusterRunResult stays the
/// per-run view; the registry accumulates across runs, and
/// metrics_test.cc checks the two agree after a single run. Timing-
/// derived instruments are only exported under tracing so that untraced
/// snapshots are a pure function of the work performed.
void PublishRunMetrics(const ClusterRunResult& result);

}  // namespace benu

#endif  // BENU_DISTRIBUTED_CLUSTER_ACCOUNTING_H_
