// benu_kv_server: standalone KV-server process serving its share of a
// data graph's adjacency sets over the wire protocol (common/wire.h).
// One process per server; a cluster of S servers for P partitions serves
// partition p from server p % S. The client (benu_driver --transport=tcp,
// or ConnectTcpTransport) validates the layout via the hello handshake.
//
// Both sides construct the data graph from the same --graph spec
// (graph/generators.h GenerateFromSpec), so no graph bytes travel out of
// band; --relabel must match the driver's relabeling choice.
//
//   benu_kv_server --graph=ba:200,5,21 --partitions=8 --servers=2 \
//       --index=0 [--port=0] [--relabel=1] [--replica=0 --replicas=1] \
//       [--compress=1] [--deltas=1]
//
// --replica/--replicas identify this process among interchangeable
// replicas of the same server index (clients fail over between them);
// replicas serve identical data, so they take the same --graph/--index.
//
// Prints "LISTENING port=<port>" on stdout once accepting (the driver's
// --spawn-servers parses this), then serves until killed.

#include <unistd.h>

#include <cstdio>
#include <string>
#include <utility>

#include "common/flags_util.h"
#include "common/logging.h"
#include "graph/generators.h"
#include "graph/graph.h"
#include "storage/kv_tcp_server.h"

int main(int argc, char** argv) {
  using namespace benu;

  const std::string graph_spec =
      flags::Value(argc, argv, "--graph", "ba:200,5,21");
  const uint16_t port = flags::PortValue(argc, argv, "--port", 0);
  const size_t partitions = flags::SizeValue(argc, argv, "--partitions", 8);
  const size_t servers = flags::SizeValue(argc, argv, "--servers", 1);
  const size_t index = flags::SizeValue(argc, argv, "--index", 0);
  const size_t replica = flags::SizeValue(argc, argv, "--replica", 0);
  const size_t replicas = flags::SizeValue(argc, argv, "--replicas", 1);
  const bool relabel = flags::BoolValue(argc, argv, "--relabel", true);
  // --compress=0 serves raw frames only (no encoded-reply capability in
  // the hello); also subject to the BENU_DISABLE_COMPRESSION env switch.
  const bool compress = flags::BoolValue(argc, argv, "--compress", true);
  // --deltas=0 runs a pre-delta (v2-era) server: no kHelloSupportsDeltas
  // capability, kApplyDelta/kEpochAdvance rejected — clients downgrade
  // around it (dynamic-smoke exercises this).
  const bool deltas = flags::BoolValue(argc, argv, "--deltas", true);

  auto graph_or = GenerateFromSpec(graph_spec);
  BENU_CHECK(graph_or.ok()) << "--graph=" << graph_spec << ": "
                            << graph_or.status().ToString();
  Graph graph = relabel ? graph_or->RelabelByDegree()
                        : std::move(graph_or).value();

  KvTcpServer server(&graph, partitions, servers, index, replica, replicas,
                     compress, deltas);
  auto listen = server.Listen(port);
  BENU_CHECK(listen.ok()) << listen.ToString();
  auto start = server.Start();
  BENU_CHECK(start.ok()) << start.ToString();

  std::printf("LISTENING port=%u\n", server.port());
  std::fflush(stdout);

  // Serve until the driver (or the user) kills the process.
  for (;;) pause();
}
