// benu_driver: run one BENU enumeration end to end from the command
// line, over any transport backend:
//
//   --transport=sim       in-process simulated store (default)
//   --transport=loopback  in-process wire protocol (one server object
//                         per partition, every get framed and decoded)
//   --transport=tcp       real sockets; servers given via --endpoints=
//                         host:port,... or spawned as child processes
//                         with --spawn-servers=K
//
// The multi-process smoke test in CI is exactly:
//
//   benu_driver --graph=ba:200,5,21 --pattern=q5 --partitions=8 \
//       --spawn-servers=2 --compare-with-sim
//
// which forks two benu_kv_server processes, enumerates q5 over TCP
// against them, re-runs on the simulated backend and CHECKs that the
// match counts agree. --expect-matches=N CHECKs an absolute count.
// Prints "MATCHES <count>" on success.
//
// Fault-tolerance knobs:
//   --replicas=R          spawn R replicas per server index (R*K child
//                         processes); the client fails over between the
//                         replicas of a group when one dies
//   --kill-one-after-ms=N SIGKILL the first spawned server N ms into the
//                         enumeration (the fault-injection smoke test:
//                         with --replicas>=2 the run must still finish
//                         with the correct match count via failover)
//   --endpoints accepts the replica syntax "h:p|h:p,h:p" (',' separates
//   server indexes, '|' separates replicas of one index).
//
// Compression knobs:
//   --compress=0          disable delta+varint adjacency compression on
//                         every hop (servers, client transports, sim)
//   --driver-relabel=1    hand RunBenu the unrelabeled graph and let it
//                         relabel internally, validating against the
//                         transport's attested graph hash
//
// Memory-governed execution knobs:
//   --expansion=MODE      dfs (default) | hybrid | full-bfs. hybrid
//                         batches ENU frontiers into governed region
//                         buffers and issues wide prefetches; full-bfs
//                         retains every frontier (OOM control mode)
//   --memory-budget-mb=N  process-wide budget the memory governor holds
//                         cache residency + frontier regions under
//                         (0 = unbounded)
//   --prefetch-budget=N   base per-ENU prefetch budget in keys (0 = no
//                         prefetching); the governor widens it with
//                         headroom under --expansion=hybrid
//
// Spawned servers can never outlive the driver: children ask the kernel
// for SIGKILL on parent death (PR_SET_PDEATHSIG) and an atexit handler
// kills and reaps them on every normal exit path. Flag parsing and the
// spawn/cleanup machinery live in common/flags_util.h, shared with the
// other BENU binaries.

#include <csignal>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "common/flags_util.h"
#include "common/logging.h"
#include "distributed/benu_driver.h"
#include "graph/generators.h"
#include "graph/patterns.h"
#include "storage/tcp_transport.h"
#include "storage/transport.h"

namespace {

using namespace benu;

/// Governed-execution knobs shared by every RunOnce call of the driver.
struct ExecutionKnobs {
  ExpansionMode expansion = ExpansionMode::kDfs;
  size_t memory_budget_bytes = 0;
  size_t prefetch_budget = 0;
};

Count RunOnce(const Graph& graph, const Graph& pattern,
              std::shared_ptr<Transport> transport, size_t partitions,
              size_t workers, size_t threads_per_worker, bool compress,
              bool relabel_in_driver, const ExecutionKnobs& knobs) {
  BenuOptions options;
  options.cluster.num_workers = workers;
  options.cluster.threads_per_worker = threads_per_worker;
  options.cluster.db_partitions = partitions;
  options.cluster.compress_adjacency = compress;
  options.cluster.expansion = knobs.expansion;
  options.cluster.memory_budget_bytes = knobs.memory_budget_bytes;
  options.cluster.prefetch_budget = knobs.prefetch_budget;
  options.cluster.transport = std::move(transport);
  // Default path: the driver relabels the data graph before building any
  // transport, so both sides of the wire already agree on vertex ids.
  // With --driver-relabel RunBenu relabels internally instead and
  // validates the labeling against the transport's attested graph hash.
  options.relabel_by_degree = relabel_in_driver;
  auto result = RunBenu(graph, pattern, options);
  BENU_CHECK(result.ok()) << result.status().ToString();
  return result->run.total_matches;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string graph_spec =
      flags::Value(argc, argv, "--graph", "ba:200,5,21");
  const std::string pattern_name =
      flags::Value(argc, argv, "--pattern", "q5");
  const size_t partitions = flags::SizeValue(argc, argv, "--partitions", 8);
  const size_t workers = flags::SizeValue(argc, argv, "--workers", 2);
  const size_t threads_per_worker =
      flags::SizeValue(argc, argv, "--threads-per-worker", 2);
  const size_t spawn_servers =
      flags::SizeValue(argc, argv, "--spawn-servers", 0);
  const size_t replicas =
      std::max<size_t>(1, flags::SizeValue(argc, argv, "--replicas", 1));
  const long long kill_one_after_ms =
      flags::Int64Value(argc, argv, "--kill-one-after-ms", -1);
  const std::string transport_name = flags::Value(
      argc, argv, "--transport", spawn_servers > 0 ? "tcp" : "sim");
  const std::string endpoints_spec =
      flags::Value(argc, argv, "--endpoints", "");
  const long long expect_matches =
      flags::Int64Value(argc, argv, "--expect-matches", -1);
  const bool compare_with_sim =
      flags::Has(argc, argv, "--compare-with-sim");
  // --compress=0 disables delta+varint adjacency compression everywhere:
  // spawned servers serve raw-only, client transports request raw frames
  // and the sim backend skips pre-encoding.
  const bool compress = flags::BoolValue(argc, argv, "--compress", true);
  // --driver-relabel=1 hands RunBenu the *un*relabeled graph with
  // relabel_by_degree on, exercising the graph-hash handshake against a
  // transport that serves the relabeled graph.
  const bool driver_relabel =
      flags::BoolValue(argc, argv, "--driver-relabel", false);
  ExecutionKnobs knobs;
  const std::string expansion_name =
      flags::Value(argc, argv, "--expansion", "dfs");
  if (expansion_name == "dfs") {
    knobs.expansion = ExpansionMode::kDfs;
  } else if (expansion_name == "hybrid") {
    knobs.expansion = ExpansionMode::kHybrid;
  } else if (expansion_name == "full-bfs") {
    knobs.expansion = ExpansionMode::kFullBfs;
  } else {
    BENU_CHECK(false) << "unknown --expansion=" << expansion_name
                      << " (dfs|hybrid|full-bfs)";
  }
  knobs.memory_budget_bytes =
      flags::SizeValue(argc, argv, "--memory-budget-mb", 0) << 20;
  knobs.prefetch_budget =
      flags::SizeValue(argc, argv, "--prefetch-budget", 0);

  auto graph_or = GenerateFromSpec(graph_spec);
  BENU_CHECK(graph_or.ok()) << "--graph=" << graph_spec << ": "
                            << graph_or.status().ToString();
  const Graph unrelabeled = *graph_or;
  const Graph graph = graph_or->RelabelByDegree();
  // The graph RunOnce enumerates over; transports always serve the
  // relabeled labeling (spawned servers pass --relabel=1).
  const Graph& enum_graph = driver_relabel ? unrelabeled : graph;
  auto pattern_or = GetPattern(pattern_name);
  BENU_CHECK(pattern_or.ok()) << "--pattern=" << pattern_name << ": "
                              << pattern_or.status().ToString();
  const Graph& pattern = *pattern_or;

  std::vector<flags::ServerProcess>& spawned = flags::SpawnedRegistry();
  std::atexit(flags::CleanupSpawnedAtExit);
  std::shared_ptr<Transport> transport;
  if (transport_name == "sim") {
    transport = nullptr;  // RunBenu builds the simulated store itself.
  } else if (transport_name == "loopback") {
    transport = MakeLoopbackTransport(graph, partitions, compress);
  } else if (transport_name == "tcp") {
    std::vector<ReplicaGroup> groups;
    if (spawn_servers > 0) {
      const std::string server_binary = flags::SelfDir() + "/benu_kv_server";
      for (size_t i = 0; i < spawn_servers; ++i) {
        ReplicaGroup group;
        for (size_t r = 0; r < replicas; ++r) {
          flags::KvServerSpawnOptions spawn;
          spawn.graph_spec = graph_spec;
          spawn.partitions = partitions;
          spawn.servers = spawn_servers;
          spawn.index = i;
          spawn.replica = r;
          spawn.replicas = replicas;
          spawn.compress = compress;
          spawned.push_back(flags::SpawnKvServer(server_binary, spawn));
          group.replicas.push_back({"127.0.0.1", spawned.back().port});
        }
        groups.push_back(std::move(group));
      }
    } else {
      auto parsed = ParseReplicaGroups(endpoints_spec);
      BENU_CHECK(parsed.ok()) << "--endpoints: "
                              << parsed.status().ToString();
      groups = *parsed;
    }
    TcpTransportOptions tcp_options;
    tcp_options.compress = compress;
    auto connected = ConnectTcpTransport(groups, tcp_options);
    BENU_CHECK(connected.ok()) << "connect: "
                               << connected.status().ToString();
    transport = *connected;
  } else {
    BENU_CHECK(false) << "unknown --transport=" << transport_name
                      << " (sim|loopback|tcp)";
  }

  // Fault injection: SIGKILL the first spawned server (group 0's first
  // replica — the one the client connected to) mid-enumeration. With
  // --replicas>=2 the transport must fail over and finish correctly.
  std::thread killer;
  if (kill_one_after_ms >= 0) {
    BENU_CHECK(!spawned.empty())
        << "--kill-one-after-ms requires --spawn-servers";
    killer = std::thread([kill_one_after_ms] {
      std::this_thread::sleep_for(
          std::chrono::milliseconds(kill_one_after_ms));
      flags::ServerProcess& victim = flags::SpawnedRegistry().front();
      if (victim.pid > 0) {
        std::fprintf(stderr, "fault-injection: SIGKILL server pid %d\n",
                     static_cast<int>(victim.pid));
        kill(victim.pid, SIGKILL);
      }
    });
  }

  const Count matches =
      RunOnce(enum_graph, pattern, transport, partitions, workers,
              threads_per_worker, compress, driver_relabel, knobs);
  if (killer.joinable()) killer.join();

  if (transport != nullptr) {
    const TransportStats& ts = transport->stats();
    std::fprintf(stderr,
                 "transport.%s: fetches=%llu batch_gets=%llu "
                 "round_trips=%llu bytes=%llu bytes_encoded=%llu\n",
                 transport->name(),
                 static_cast<unsigned long long>(ts.fetches.load()),
                 static_cast<unsigned long long>(ts.batch_gets.load()),
                 static_cast<unsigned long long>(ts.round_trips.load()),
                 static_cast<unsigned long long>(ts.bytes.load()),
                 static_cast<unsigned long long>(ts.bytes_encoded.load()));
    auto faults = QueryTcpFaultStats(*transport);
    if (faults.ok()) {
      std::fprintf(stderr,
                   "transport.tcp.faults: retries=%llu failovers=%llu "
                   "timeouts=%llu reconnects=%llu\n",
                   static_cast<unsigned long long>(faults->retries),
                   static_cast<unsigned long long>(faults->failovers),
                   static_cast<unsigned long long>(faults->timeouts),
                   static_cast<unsigned long long>(faults->reconnects));
    }
  }

  // Drop the TCP connections before killing the servers.
  transport.reset();
  flags::KillServers(spawned);

  if (compare_with_sim && transport_name != "sim") {
    const Count sim_matches =
        RunOnce(enum_graph, pattern, nullptr, partitions, workers,
                threads_per_worker, compress, driver_relabel, knobs);
    BENU_CHECK(matches == sim_matches)
        << transport_name << " found " << matches << " matches but sim found "
        << sim_matches;
    std::fprintf(stderr, "compare-with-sim: ok (%llu matches)\n",
                 static_cast<unsigned long long>(sim_matches));
  }
  if (expect_matches >= 0) {
    BENU_CHECK(matches == static_cast<Count>(expect_matches))
        << "expected " << expect_matches << " matches, found " << matches;
  }

  std::printf("MATCHES %llu\n", static_cast<unsigned long long>(matches));
  return 0;
}
