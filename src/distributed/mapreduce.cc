#include "distributed/mapreduce.h"

#include <algorithm>
#include <map>

namespace benu {
namespace mapreduce {
namespace {

class CollectingEmitter : public Emitter {
 public:
  explicit CollectingEmitter(int num_reducers)
      : partitions_(static_cast<size_t>(num_reducers)) {}

  void Emit(uint64_t key, Record record) override {
    // Hash-partition by key (Hadoop's default partitioner).
    const size_t partition =
        (key * 0x9e3779b97f4a7c15ULL >> 32) % partitions_.size();
    shuffled_bytes_ += record.size() * sizeof(uint32_t) + sizeof(uint64_t);
    ++shuffled_records_;
    partitions_[partition].push_back(KeyedRecord{key, std::move(record)});
  }

  std::vector<std::vector<KeyedRecord>> partitions_;
  Count shuffled_records_ = 0;
  Count shuffled_bytes_ = 0;
};

}  // namespace

StatusOr<std::vector<Record>> RunJob(const std::vector<Record>& inputs,
                                     const MapFn& map, const ReduceFn& reduce,
                                     const JobConfig& config,
                                     JobStats* stats) {
  if (config.num_reducers <= 0) {
    return Status::InvalidArgument("need at least one reducer");
  }
  JobStats local;
  local.map_input_records = inputs.size();

  // Map phase.
  CollectingEmitter emitter(config.num_reducers);
  for (const Record& input : inputs) {
    map(input, &emitter);
    if (emitter.shuffled_records_ > config.max_shuffle_records) {
      return Status::ResourceExhausted(
          "MapReduce shuffle exceeded the record budget (simulated "
          "shuffle error)");
    }
  }
  local.shuffled_records = emitter.shuffled_records_;
  local.shuffled_bytes = emitter.shuffled_bytes_;

  // Shuffle + sort: group by key within each partition.
  std::vector<Record> output;
  for (int r = 0; r < config.num_reducers; ++r) {
    auto& partition = emitter.partitions_[static_cast<size_t>(r)];
    std::map<uint64_t, KeyGroup> groups;
    for (KeyedRecord& kr : partition) {
      KeyGroup& group = groups[kr.key];
      group.key = kr.key;
      group.records.push_back(std::move(kr.record));
    }
    // Reduce phase.
    std::vector<Record> reducer_output;
    for (auto& [key, group] : groups) {
      reduce(r, group, &reducer_output);
    }
    local.reduce_output_records += reducer_output.size();
    for (Record& rec : reducer_output) output.push_back(std::move(rec));
  }
  if (stats != nullptr) *stats = local;
  return output;
}

}  // namespace mapreduce
}  // namespace benu
