#ifndef BENU_DISTRIBUTED_CLUSTER_H_
#define BENU_DISTRIBUTED_CLUSTER_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "core/executor.h"
#include "graph/graph.h"
#include "plan/instruction.h"
#include "storage/db_cache.h"
#include "storage/kv_store.h"
#include "storage/transport.h"

namespace benu {

/// Configuration of the simulated shared-nothing cluster. The paper's
/// testbed is 16 worker machines × 24 working threads over 1 Gbps
/// Ethernet with HBase; we reproduce the *structure* in-process (see
/// DESIGN.md §2): tasks are hashed to virtual workers, each worker has a
/// private DB cache shared by its (virtual) threads, and makespans are
/// computed by list-scheduling measured task times onto the virtual
/// threads.
struct ClusterConfig {
  /// p: number of worker machines.
  int num_workers = 4;
  /// w: working threads per worker (used for virtual-time scheduling).
  int threads_per_worker = 4;
  /// Partitions of the distributed KV store.
  size_t db_partitions = 16;
  /// Local DB cache capacity per worker, in bytes (0 disables caching).
  size_t db_cache_bytes = 256u << 20;
  /// τ of task splitting; 0 disables splitting.
  uint32_t task_split_threshold = 0;
  /// Real OS threads used to execute a worker's tasks (each with its own
  /// executor, consumer and triangle cache, sharing the worker's DB
  /// cache). 1 keeps execution serial — the default on single-core CI
  /// machines, where extra threads only add measurement noise to the
  /// per-task times that feed the virtual-time model.
  int execution_threads = 1;
  /// When false (the default), execution_threads is clamped to the
  /// host's hardware concurrency with a warning: oversubscribed OS
  /// threads inflate measured per-task wall times, which pollutes the
  /// virtual-time model on machines without a per-thread CPU clock.
  /// Tests that must exercise preemptive interleaving set this to true.
  bool allow_thread_oversubscription = false;
  /// Size cap of the shared runtime pool that executes all workers'
  /// threads concurrently. 0 sizes the pool by hardware concurrency;
  /// 1 reproduces the sequential seed runtime (workers drain one after
  /// another on a single OS thread).
  int max_runtime_threads = 0;
  /// Simulated round-trip latency charged per remote DB query, µs.
  double db_query_latency_us = 100.0;
  /// Simulated network bandwidth, bytes per µs (125 ≈ 1 Gbps).
  double network_bytes_per_us = 125.0;
  /// Max candidates per ENU instruction handed to the asynchronous
  /// adjacency-prefetch pipeline before descending (§2d of DESIGN.md).
  /// 0 disables prefetching: every cache miss is a synchronous store
  /// round trip, the seed behaviour.
  size_t prefetch_budget = 0;
  /// Max keys per batched multi-get a background fetcher drains at once:
  /// the store charges one round-trip latency per partition per batch,
  /// so larger batches amortize latency (bytes are unchanged).
  size_t prefetch_batch_size = 16;
  /// Run the prefetch pipeline synchronously inline on the enumerating
  /// thread (no background fetchers). Deterministic debug/validation
  /// mode: identical fetch behaviour and match counts, but no overlap —
  /// prefetch communication is charged unhidden.
  bool force_sync_prefetch = false;
  /// ENU expansion mode of every executor (core/executor.h). kDfs is the
  /// seed behaviour; kHybrid materializes governor-leased frontier
  /// batches for wide prefetches and spills back to DFS near the memory
  /// ceiling; kFullBfs is the unbounded-frontier control mode. Match
  /// counts are bit-identical across all three.
  ExpansionMode expansion = ExpansionMode::kDfs;
  /// Ceiling on governed memory — frontier regions plus the DB caches'
  /// resident bytes, across all workers of the run — in bytes. 0 means
  /// no ceiling (leases always granted, prefetch knobs fully widened).
  /// A MemoryGovernor is instantiated iff this is nonzero or `expansion`
  /// != kDfs, so plain-DFS runs carry no governor overhead.
  size_t memory_budget_bytes = 0;
  /// Serve adjacency sets delta+varint-compressed from the internal
  /// simulated transport (graph/adj_codec.h). Match counts and query
  /// counts are unchanged; bytes_fetched / prefetch_bytes shrink to the
  /// encoded frame sizes. Subject to the BENU_DISABLE_COMPRESSION
  /// kill-switch; ignored when `transport` is non-null (an external
  /// transport negotiates compression itself).
  bool compress_adjacency = true;
  /// Communication backend of the KV store (storage/transport.h). Null —
  /// the default — builds the in-process simulated transport from the
  /// data graph and `db_partitions`, which is the seed behavior. A
  /// non-null transport (loopback, TCP, custom) must already hold the
  /// *same* graph the simulator is given: ClusterSimulator CHECKs the
  /// vertex counts match, and `db_partitions` is taken from the
  /// transport. The transport side serves a fixed labeling —
  /// BenuOptions::relabel_by_degree validates against its graph hash.
  std::shared_ptr<Transport> transport;
};

/// Per-worker outcome of a run. Filled after all execution threads have
/// joined (and, with prefetching on, after the worker's cache pipeline
/// has quiesced), so every field is a settled total — no live counters.
struct WorkerSummary {
  /// Local search tasks assigned to this worker (after splitting).
  size_t tasks = 0;
  /// Sum of the per-task TaskStats of this worker's tasks.
  TaskStats totals;
  /// Snapshot of the worker's DB-cache stats at end of run (see
  /// DbCacheStats for the hit/miss/coalesced bucket convention).
  DbCacheStats cache;
  /// Tasks the worker's threads claimed from a sibling thread's deque.
  Count steals = 0;
  /// Σ task virtual time (compute + simulated network), µs.
  double busy_virtual_us = 0;
  /// Makespan of the worker's tasks list-scheduled on its threads, µs,
  /// plus any prefetch communication that compute could not hide (see
  /// hidden_comm_us).
  double makespan_virtual_us = 0;
  /// Virtual prefetch communication overlapped with (hidden behind) the
  /// worker's compute makespan, µs. The worker's prefetch pipeline costs
  /// `prefetch_round_trips × latency + prefetch_bytes / bandwidth`; the
  /// portion up to the compute makespan runs concurrently with
  /// enumeration and never appears on the critical path, the residual is
  /// added to makespan_virtual_us.
  double hidden_comm_us = 0;
  /// Total virtual communication of the worker's prefetch pipeline, µs
  /// (`prefetch_round_trips × latency + prefetch_bytes / bandwidth` —
  /// hidden or not). hidden_comm_us / prefetch_comm_us is the worker's
  /// overlap fraction; synchronous task fetches are accounted inside the
  /// per-task virtual times, not here.
  double prefetch_comm_us = 0;
  /// Real wall time from run start until the worker's last execution
  /// thread finished, seconds. Workers run concurrently, so these
  /// overlap; they do not sum to ClusterRunResult::real_seconds.
  double real_seconds = 0;
};

/// Aggregate outcome of one distributed enumeration. Every Count field
/// is also mirrored (accumulating across runs) into the process-wide
/// metrics registry as a `cluster.*` counter; docs/metrics.md holds the
/// field-by-field mapping, and metrics_test.cc keeps the two in sync.
struct ClusterRunResult {
  /// Expanded (duplicate-free) matches; unit: subgraphs.
  Count total_matches = 0;
  /// RES executions (helves under VCBC).
  Count total_codes = 0;
  /// Compressed-code payload units (vertex-id entries emitted).
  Count code_units = 0;
  /// Synchronous store queries issued by tasks (misses of all DB caches;
  /// excludes prefetch traffic — see prefetch_round_trips/prefetch_bytes).
  Count db_queries = 0;
  /// Payload bytes of those synchronous fetches.
  Count bytes_fetched = 0;
  /// DBQ executions across all tasks: every one lands in exactly one of
  /// cache_hits, db_queries or coalesced_fetches.
  Count adjacency_requests = 0;
  /// DBQ lookups served from a worker's DB cache without any wait.
  Count cache_hits = 0;
  /// Cache misses served by piggybacking on another thread's in-flight
  /// store query (single-flight coalescing): no store traffic of their
  /// own. adjacency_requests == cache_hits + db_queries +
  /// coalesced_fetches.
  Count coalesced_fetches = 0;
  /// Work-stealing claims across all workers' threads.
  Count steals = 0;
  /// Asynchronous adjacency-pipeline counters, summed over the workers'
  /// DB caches (0 when prefetch_budget == 0).
  Count prefetches_issued = 0;
  /// Prefetched entries that converted a would-be miss into a hit.
  Count prefetch_hits = 0;
  /// Prefetched entries evicted (or never retained) without a hit.
  Count prefetch_wasted = 0;
  /// Round trips of the batched background fetches (one per partition
  /// per batch) and their payload bytes. Prefetch bytes are NOT included
  /// in bytes_fetched (which counts synchronous task fetches); total
  /// communication volume is bytes_fetched + prefetch_bytes.
  Count prefetch_round_trips = 0;
  Count prefetch_bytes = 0;
  /// Local search tasks executed (after τ-splitting), across all workers.
  size_t num_tasks = 0;
  /// OS threads in the shared runtime pool that executed this run.
  int runtime_threads = 0;
  /// Per-worker execution threads actually used (after clamping).
  int execution_threads = 0;
  /// Cluster virtual execution time: max worker makespan, seconds.
  double virtual_seconds = 0;
  /// Σ over workers of prefetch communication hidden behind compute,
  /// seconds: the latency the pipeline moved off the critical path. In
  /// the synchronous baseline this time sits inside virtual_seconds.
  double hidden_comm_seconds = 0;
  /// Σ over workers of the prefetch pipeline's total virtual
  /// communication, seconds (round trips × latency + bytes / bandwidth,
  /// hidden or not). The denominator of OverlapFraction(), matching the
  /// `overlap` column of EXPERIMENTS.md.
  double prefetch_comm_seconds = 0;
  /// Real wall time of the in-process simulation, seconds.
  double real_seconds = 0;
  std::vector<WorkerSummary> workers;
  /// Virtual time of every task, µs (Fig. 9a's distribution).
  std::vector<double> task_virtual_us;

  double CacheHitRate() const {
    return adjacency_requests == 0
               ? 0.0
               : static_cast<double>(cache_hits) / adjacency_requests;
  }

  /// Fraction of the prefetch pipeline's communication hidden behind
  /// compute (hidden_comm_seconds / prefetch_comm_seconds); 0 when the
  /// pipeline was off. The pipeline-bench acceptance target (>0.78 in
  /// hybrid mode) and the `overlap_fraction` field of
  /// BENCH_pipeline.json records.
  double OverlapFraction() const {
    return prefetch_comm_seconds <= 0
               ? 0.0
               : hidden_comm_seconds / prefetch_comm_seconds;
  }
};

/// The BENU cluster: a distributed KV store holding the data graph plus p
/// virtual workers. `Run` executes an execution plan end to end:
/// generates local search tasks, splits heavy ones, shuffles them evenly
/// to workers, runs every task through a plan executor with the worker's
/// DB cache and a per-thread triangle cache, and aggregates metrics.
class ClusterSimulator {
 public:
  /// Stores `data_graph` in the simulated distributed database
  /// (Algorithm 2 line 1). The graph must already realize the total
  /// order ≺ (see Graph::RelabelByDegree).
  ClusterSimulator(const Graph& data_graph, const ClusterConfig& config);

  /// Enumerates matches of `plan` over the stored data graph.
  /// `data_labels` (one label per data vertex, in the *stored* graph's
  /// numbering) is required iff the plan matches a labeled pattern.
  StatusOr<ClusterRunResult> Run(
      const ExecutionPlan& plan,
      const std::vector<int>* data_labels = nullptr);

  const ClusterConfig& config() const { return config_; }
  const Graph& data_graph() const { return data_graph_; }
  const DistributedKvStore& store() const { return *store_; }

 private:
  Graph data_graph_;
  ClusterConfig config_;
  /// Client of the distributed database; the backend is
  /// config_.transport (simulated when null). unique_ptr because the
  /// store's stats hold atomics (non-movable) and the backend choice
  /// happens in the constructor body.
  std::unique_ptr<DistributedKvStore> store_;
};

}  // namespace benu

#endif  // BENU_DISTRIBUTED_CLUSTER_H_
