#include "distributed/benu_mapreduce.h"

#include <map>
#include <memory>

#include "core/executor.h"
#include "distributed/task.h"
#include "plan/filters.h"
#include "storage/kv_store.h"
#include "storage/triangle_cache.h"

namespace benu {

StatusOr<MapReduceBenuResult> RunBenuOnMapReduce(
    const Graph& data_graph, const Graph& pattern, int num_reducers,
    size_t cache_bytes_per_reducer, uint32_t task_split_threshold,
    const PlanSearchOptions& plan_options) {
  // Preprocessing + plan generation (Algorithm 2 lines 1-3).
  const Graph relabeled = data_graph.RelabelByDegree();
  auto plan = GenerateBestPlan(pattern, DataGraphStats::FromGraph(relabeled),
                               plan_options);
  BENU_RETURN_IF_ERROR(plan.status());
  DistributedKvStore store(relabeled, static_cast<size_t>(num_reducers));
  std::vector<VertexId> degree_floors;
  if (plan->plan.UsesDegreeFilters()) {
    degree_floors = ComputeDegreeFloors(relabeled, pattern.MaxDegree());
  }

  // Map inputs: one record per data vertex.
  std::vector<mapreduce::Record> inputs;
  inputs.reserve(relabeled.NumVertices());
  for (VertexId v = 0; v < relabeled.NumVertices(); ++v) {
    inputs.push_back({v});
  }

  // Map phase: expand each vertex into its (possibly split) local search
  // tasks, keyed by a running counter so the hash partitioner spreads
  // them evenly ("shuffled evenly to 16 reducers").
  uint64_t next_key = 0;
  const Graph* graph_ptr = &relabeled;
  const ExecutionPlan* plan_ptr = &plan->plan;
  auto map_fn = [graph_ptr, plan_ptr, task_split_threshold, &next_key](
                    const mapreduce::Record& input,
                    mapreduce::Emitter* emitter) {
    const VertexId v = input[0];
    uint32_t num_subtasks = 1;
    if (task_split_threshold > 0 &&
        graph_ptr->Degree(v) >= task_split_threshold) {
      const bool adjacent = plan_ptr->matching_order.size() >= 2 &&
                            plan_ptr->pattern.HasEdge(
                                plan_ptr->matching_order[0],
                                plan_ptr->matching_order[1]);
      const uint64_t basis = adjacent
                                 ? graph_ptr->Degree(v)
                                 : static_cast<uint64_t>(
                                       graph_ptr->NumVertices());
      num_subtasks = static_cast<uint32_t>(
          (basis + task_split_threshold - 1) / task_split_threshold);
      if (num_subtasks == 0) num_subtasks = 1;
    }
    for (uint32_t s = 0; s < num_subtasks; ++s) {
      emitter->Emit(next_key++, {v, s, num_subtasks});
    }
  };

  // Reduce phase: each reducer owns one DB cache + executor context and
  // runs every task it receives (one task per key group).
  struct ReducerContext {
    std::unique_ptr<DbCache> cache;
    std::unique_ptr<CachedAdjacencyProvider> provider;
    std::unique_ptr<TriangleCache> tcache;
    std::unique_ptr<PlanExecutor> executor;
    std::unique_ptr<CountingConsumer> consumer;
    TaskStats totals;
  };
  std::map<int, ReducerContext> contexts;
  Status reduce_error;
  auto reduce_fn = [&](int reducer, const mapreduce::KeyGroup& group,
                       std::vector<mapreduce::Record>* output) {
    (void)output;  // counting run: results are aggregated, not re-emitted
    if (!reduce_error.ok()) return;
    auto it = contexts.find(reducer);
    if (it == contexts.end()) {
      ReducerContext ctx;
      ctx.cache =
          std::make_unique<DbCache>(&store, cache_bytes_per_reducer);
      ctx.provider = std::make_unique<CachedAdjacencyProvider>(
          ctx.cache.get(), relabeled.NumVertices());
      ctx.tcache = std::make_unique<TriangleCache>();
      auto executor = PlanExecutor::Create(
          plan_ptr, ctx.provider.get(), ctx.tcache.get(),
          degree_floors.empty() ? nullptr : &degree_floors, nullptr);
      if (!executor.ok()) {
        reduce_error = executor.status();
        return;
      }
      ctx.executor = std::move(executor).value();
      ctx.consumer = std::make_unique<CountingConsumer>(plan->plan);
      it = contexts.emplace(reducer, std::move(ctx)).first;
    }
    for (const mapreduce::Record& record : group.records) {
      SearchTask task{record[0], record[1], record[2]};
      it->second.totals.Accumulate(
          it->second.executor->RunTask(task, it->second.consumer.get()));
    }
  };

  mapreduce::JobConfig config;
  config.num_reducers = num_reducers;
  MapReduceBenuResult result;
  auto job = mapreduce::RunJob(inputs, map_fn, reduce_fn, config,
                               &result.job);
  BENU_RETURN_IF_ERROR(job.status());
  BENU_RETURN_IF_ERROR(reduce_error);

  for (auto& [reducer, ctx] : contexts) {
    (void)reducer;
    result.total_matches += ctx.consumer->matches();
    result.total_codes += ctx.consumer->codes();
    result.db_queries += ctx.totals.db_queries;
    result.bytes_fetched += ctx.totals.bytes_fetched;
    DbCacheStats stats = ctx.cache->stats();
    result.cache.hits += stats.hits;
    result.cache.misses += stats.misses;
    result.cache.coalesced += stats.coalesced;
  }
  return result;
}

}  // namespace benu
