#include "distributed/dynamic_runner.h"

#include <utility>

#include "common/logging.h"
#include "common/metrics.h"
#include "common/stopwatch.h"
#include "plan/plan_generator.h"
#include "plan/symmetry_breaking.h"

namespace benu {

namespace {

// Counts matches and mirrors them into the tracked multiset: additions
// increment (and must create, multiplicity 1), retractions decrement (and
// must find) — any violation means the incremental decomposition double-
// counted or retracted a phantom match, which is a bug worth dying for.
class MaintenanceSink : public MatchConsumer {
 public:
  MaintenanceSink(std::map<std::vector<VertexId>, Count>* tracked,
                  bool retract)
      : tracked_(tracked), retract_(retract) {}

  void OnMatch(const std::vector<VertexId>& f) override {
    ++count_;
    if (tracked_ == nullptr) return;
    if (retract_) {
      auto it = tracked_->find(f);
      BENU_CHECK(it != tracked_->end());
      if (--it->second == 0) tracked_->erase(it);
    } else {
      const Count multiplicity = ++(*tracked_)[f];
      BENU_CHECK(multiplicity == 1);
    }
  }

  void OnCompressedCode(const std::vector<VertexId>& /*f*/,
                        const std::vector<VertexSetView>& /*sets*/) override {
    BENU_CHECK(false);  // maintenance plans are uncompressed
  }

  Count count() const { return count_; }

 private:
  std::map<std::vector<VertexId>, Count>* tracked_;
  bool retract_;
  Count count_ = 0;
};

}  // namespace

DynamicRunner::DynamicRunner(const Graph& pattern,
                             const DynamicRunnerOptions& options)
    : pattern_(pattern), options_(options) {
  auto& registry = metrics::MetricsRegistry::Global();
  epochs_metric_ = registry.GetCounter(
      "dynamic.epochs", "1", "Epoch batches applied by DynamicRunner");
  raw_ops_metric_ = registry.GetCounter(
      "dynamic.raw_ops", "1", "Edge ops submitted before canonicalization");
  added_metric_ = registry.GetCounter(
      "dynamic.matches_added", "1", "Matches gained across all epochs");
  retracted_metric_ = registry.GetCounter(
      "dynamic.matches_retracted", "1", "Matches lost across all epochs");
  seed_tasks_metric_ = registry.GetCounter(
      "dynamic.seed_tasks", "1",
      "Seeded incremental executor tasks (2 orientations x |delta| x plans)");
  filter_rejected_metric_ = registry.GetCounter(
      "dynamic.filter_rejected", "1",
      "Matches rejected by the min-index uniqueness filter");
  total_gauge_ = registry.GetGauge(
      "dynamic.total_matches", "1",
      "Match count currently maintained by the newest DynamicRunner");
}

StatusOr<std::unique_ptr<DynamicRunner>> DynamicRunner::Create(
    std::shared_ptr<Transport> transport, const Graph& pattern,
    const DynamicRunnerOptions& options) {
  auto inc = GenerateIncrementalPlans(pattern);
  BENU_RETURN_IF_ERROR(inc.status());
  auto full = GenerateRawPlan(pattern, GreedyMatchingOrder(pattern),
                              ComputeSymmetryBreakingConstraints(pattern));
  BENU_RETURN_IF_ERROR(full.status());
  std::unique_ptr<DynamicRunner> runner(new DynamicRunner(pattern, options));
  runner->inc_ = *std::move(inc);
  runner->full_plan_ = *std::move(full);
  runner->store_ =
      std::make_unique<VersionedAdjacencyStore>(std::move(transport));
  runner->cache_ = std::make_unique<DbCache>(
      runner->store_.get(), options.cache_bytes, options.cache_shards);
  runner->provider_ = std::make_unique<CachedAdjacencyProvider>(
      runner->cache_.get(), runner->store_->num_vertices(),
      options.prefetch_budget);
  return runner;
}

StatusOr<Count> DynamicRunner::EnumerateFull(bool track) {
  if (track) tracked_.clear();
  MaintenanceSink sink(track ? &tracked_ : nullptr, /*retract=*/false);
  auto executor =
      PlanExecutor::Create(&full_plan_, provider_.get(), /*tcache=*/nullptr);
  BENU_RETURN_IF_ERROR(executor.status());
  const size_t n = store_->num_vertices();
  for (VertexId v = 0; v < static_cast<VertexId>(n); ++v) {
    SearchTask task;
    task.start = v;
    (*executor)->RunTask(task, &sink);
  }
  return sink.count();
}

StatusOr<Count> DynamicRunner::RunBaseline() {
  auto count = EnumerateFull(options_.track_matches);
  BENU_RETURN_IF_ERROR(count.status());
  total_ = *count;
  baseline_run_ = true;
  total_gauge_->Set(static_cast<double>(total_));
  return total_;
}

StatusOr<Count> DynamicRunner::Recount() {
  return EnumerateFull(/*track=*/false);
}

StatusOr<Count> DynamicRunner::EnumerateSeeded(
    std::span<const EdgeDelta> delta_edges, const EdgePatch& patch,
    bool retract, EpochReport* report) {
  Count found = 0;
  for (const IncrementalPlan& inc : inc_.plans) {
    MaintenanceSink sink(options_.track_matches ? &tracked_ : nullptr,
                         retract);
    DeltaMatchFilter filter(&inc_, inc.edge_index, &patch, &sink);
    auto executor =
        PlanExecutor::Create(&inc.plan, provider_.get(), /*tcache=*/nullptr);
    BENU_RETURN_IF_ERROR(executor.status());
    for (const EdgeDelta& edge : delta_edges) {
      const VertexId ends[2][2] = {{edge.u, edge.v}, {edge.v, edge.u}};
      for (const auto& oriented : ends) {
        SearchTask task;
        task.start = oriented[0];
        task.seed_second = oriented[1];
        (*executor)->RunTask(task, &filter);
        ++report->seed_tasks;
      }
    }
    found += sink.count();
    report->filter_rejected += filter.rejected();
  }
  return found;
}

StatusOr<EpochReport> DynamicRunner::ApplyBatch(
    std::span<const EdgeDelta> ops) {
  if (!baseline_run_) {
    return Status::FailedPrecondition(
        "ApplyBatch requires a prior RunBaseline");
  }
  const size_t n = store_->num_vertices();
  for (const EdgeDelta& op : ops) {
    if (op.u >= n || op.v >= n) {
      return Status::InvalidArgument(
          "delta endpoint outside the base graph's vertex universe");
    }
  }
  Stopwatch watch;
  EpochReport report;
  report.raw_ops = ops.size();
  const EpochDelta delta = store_->Canonicalize(ops);
  report.epoch = delta.epoch;
  report.net_inserted = delta.inserted.size();
  report.net_removed = delta.removed.size();

  // Retraction pass: matches of the pre-apply snapshot involving a
  // net-removed edge.
  if (!delta.removed.empty()) {
    const EdgePatch patch(delta.removed);
    auto retracted = EnumerateSeeded(delta.removed, patch,
                                     /*retract=*/true, &report);
    BENU_RETURN_IF_ERROR(retracted.status());
    report.retracted = *retracted;
  }

  // Apply: store overlay + delta replication, then precise cache
  // invalidation (the cache epoch is bumped before the purge, so racing
  // prefetch installs are dropped, never served stale).
  const uint64_t new_epoch = store_->Apply(delta);
  cache_->AdvanceEpoch(new_epoch, delta.touched);

  // Addition pass: matches of the new snapshot involving a net-inserted
  // edge.
  if (!delta.inserted.empty()) {
    const EdgePatch patch(delta.inserted);
    auto added = EnumerateSeeded(delta.inserted, patch,
                                 /*retract=*/false, &report);
    BENU_RETURN_IF_ERROR(added.status());
    report.added = *added;
  }

  BENU_CHECK(total_ + report.added >= report.retracted);
  total_ = total_ + report.added - report.retracted;
  report.total = total_;
  report.seconds = watch.ElapsedSeconds();

  epochs_metric_->Add(1);
  raw_ops_metric_->Add(report.raw_ops);
  added_metric_->Add(report.added);
  retracted_metric_->Add(report.retracted);
  seed_tasks_metric_->Add(report.seed_tasks);
  filter_rejected_metric_->Add(report.filter_rejected);
  total_gauge_->Set(static_cast<double>(total_));
  return report;
}

std::vector<std::vector<VertexId>> DynamicRunner::TrackedMatches() const {
  std::vector<std::vector<VertexId>> out;
  out.reserve(tracked_.size());
  for (const auto& [match, multiplicity] : tracked_) {
    for (Count i = 0; i < multiplicity; ++i) out.push_back(match);
  }
  return out;
}

}  // namespace benu
