#ifndef BENU_DISTRIBUTED_BENU_DRIVER_H_
#define BENU_DISTRIBUTED_BENU_DRIVER_H_

#include "common/status.h"
#include "distributed/cluster.h"
#include "graph/graph.h"
#include "plan/plan_search.h"

namespace benu {

/// End-to-end options: plan generation plus cluster execution.
struct BenuOptions {
  PlanSearchOptions plan;
  ClusterConfig cluster;
  /// Relabel the data graph by (degree, id) so vertex ids realize the
  /// total order ≺ of the symmetry-breaking technique. Disable only if the
  /// input graph is already relabeled.
  bool relabel_by_degree = true;
  /// Property-graph extension: one label per *input* data vertex (the
  /// driver permutes them alongside the relabeling). Must be set iff
  /// plan.pattern_labels is set.
  std::vector<int> data_labels;
};

/// Outcome of a full BENU run.
struct BenuResult {
  PlanSearchResult plan;
  ClusterRunResult run;
};

/// Algorithm 2 end to end: preprocesses the data graph (total-order
/// relabeling; storing into the distributed database), generates the best
/// execution plan for `pattern` on the master, "broadcasts" it, and
/// executes the local search tasks on the simulated cluster.
StatusOr<BenuResult> RunBenu(const Graph& data_graph, const Graph& pattern,
                             const BenuOptions& options);

/// Convenience wrapper that only returns the number of subgraphs of
/// `data_graph` isomorphic to `pattern` (duplicate-free via symmetry
/// breaking), using a default single-worker configuration.
StatusOr<Count> CountSubgraphs(const Graph& data_graph, const Graph& pattern);

}  // namespace benu

#endif  // BENU_DISTRIBUTED_BENU_DRIVER_H_
