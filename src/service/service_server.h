#ifndef BENU_SERVICE_SERVICE_SERVER_H_
#define BENU_SERVICE_SERVICE_SERVER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "service/query_engine.h"

namespace benu::service {

/// TCP front end of the resident enumeration service: a single-threaded
/// epoll event loop (modeled on storage/kv_tcp_server.h) that speaks the
/// version-3 service protocol (common/wire.h). Each connection is one
/// fairness session; the 15-bit frame tag names a query within it, so
/// one connection can hold many queries in flight and demux their
/// kQueryResult / kProgress / kError frames by tag.
///
/// Unlike the KV server — whose replies are produced synchronously in
/// HandleFrame — query results are produced later, on engine worker
/// threads. Completion and progress callbacks post frames into a
/// per-connection locked outbox and nudge the loop through its wake
/// pipe; the loop splices outboxes into the socket buffers and flushes.
/// A connection that dies takes its session's queries with it
/// (QueryEngine::CancelSession), and its outbox is marked closed so
/// late callbacks become no-ops.
///
/// Error containment: a frame whose header is undecipherable (bad magic
/// or unbounded length) kills the connection — the byte stream can no
/// longer be delimited. A well-delimited frame with a malformed body
/// (unknown version bits, bad query payload, duplicate tag) is answered
/// with a tagged kError and the session carries on undisturbed.
class ServiceTcpServer {
 public:
  /// Takes ownership of the engine. Teardown order inside the
  /// destructor: stop admitting, destroy the engine (in-flight queries
  /// cancel and their terminal frames still flush through the live
  /// loop), then stop the loop.
  explicit ServiceTcpServer(std::unique_ptr<QueryEngine> engine);
  ~ServiceTcpServer();

  ServiceTcpServer(const ServiceTcpServer&) = delete;
  ServiceTcpServer& operator=(const ServiceTcpServer&) = delete;

  /// Binds and listens on `port` (0 picks an ephemeral port, readable
  /// via port() afterwards). Call before Start().
  Status Listen(uint16_t port);

  /// Spawns the event-loop thread. Listen() must have succeeded.
  Status Start();

  /// Stops the event loop, closes every connection and joins the loop
  /// thread. Idempotent; also run by the destructor (after the engine).
  void Stop();

  uint16_t port() const { return port_; }
  QueryEngine& engine() { return *engine_; }

 private:
  /// Cross-thread mailbox of one connection: engine callbacks append
  /// encoded frames under the lock, the loop thread splices them out.
  /// `finished_tags` tells the loop which query tags got their terminal
  /// frame, so it can retire them from the connection's tag table.
  struct Outbox {
    std::mutex mu;
    std::vector<uint8_t> frames;
    std::vector<uint16_t> finished_tags;
    bool closed = false;
  };

  /// Per-connection state, owned by the loop thread (the outbox is the
  /// one shared piece).
  struct Conn {
    std::vector<uint8_t> in;
    size_t in_pos = 0;
    std::vector<uint8_t> out;
    size_t out_pos = 0;
    bool want_write = false;
    uint64_t session = 0;
    std::shared_ptr<Outbox> outbox;
    /// Tags of queries admitted on this connection and not yet answered.
    std::unordered_map<uint16_t, uint64_t> inflight;  // tag -> query id
  };

  void EventLoop();
  void AcceptReady();
  bool ServeReadable(int fd, Conn& conn);
  /// Serves one complete, delimited frame. False → protocol damage that
  /// requires tearing the connection down (never just a bad payload).
  bool HandleFrame(Conn& conn, const uint8_t* data, size_t size);
  /// Splices the connection's outbox into its write buffer and retires
  /// finished tags.
  void DrainOutbox(Conn& conn);
  bool FlushWrites(int fd, Conn& conn);
  void CloseConn(int fd);
  /// Posts a frame from an engine callback thread: appends to the
  /// outbox (unless closed) and nudges the loop via the wake pipe.
  void PostFrame(const std::shared_ptr<Outbox>& outbox,
                 std::vector<uint8_t> frame, int finished_tag);

  std::unique_ptr<QueryEngine> engine_;
  /// Set before the engine dies: query/cancel frames are refused with
  /// kUnavailable instead of reaching a dying engine.
  std::atomic<bool> draining_{false};

  int listen_fd_ = -1;
  int epoll_fd_ = -1;
  int wake_fds_[2] = {-1, -1};  // nudge (outbox posts) and Stop()
  uint16_t port_ = 0;
  std::atomic<bool> stopping_{false};
  std::thread loop_thread_;
  std::unordered_map<int, Conn> conns_;  // owned by the loop thread
  uint64_t next_session_ = 1;
  uint64_t frames_handled_ = 0;  // loop thread only (kStatsReply)
};

}  // namespace benu::service

#endif  // BENU_SERVICE_SERVICE_SERVER_H_
