#ifndef BENU_SERVICE_SERVICE_CLIENT_H_
#define BENU_SERVICE_SERVICE_CLIENT_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <condition_variable>
#include <span>
#include <string>
#include <thread>
#include <unordered_map>

#include "common/status.h"
#include "common/types.h"
#include "common/wire.h"

namespace benu::service {

/// Blocking client for the resident enumeration service (version-3 wire
/// protocol, docs/wire-protocol.md). One TCP connection, many queries in
/// flight: each StartQuery() is stamped with a fresh 15-bit tag and a
/// background reader thread demultiplexes kQueryResult / kProgress /
/// kError frames back to the waiting caller by tag.
///
/// Thread safety: all public methods may be called from any thread.
/// Progress callbacks run on the reader thread — keep them cheap and do
/// not call back into the client from them (Await/Execute from another
/// thread is fine).
class ServiceClient {
 public:
  /// Runs on the reader thread for every kProgress frame of the query.
  using ProgressFn = std::function<void(const wire::QueryProgress&)>;
  /// Runs on the reader thread for every kMatchDelta frame of a
  /// subscription (same contract as ProgressFn: keep it cheap, no
  /// reentrant client calls).
  using MatchDeltaFn = std::function<void(const wire::MatchDelta&)>;

  /// Connects, performs the hello handshake and verifies the peer is an
  /// enumeration service (kHelloSupportsQueries capability bit); a KV
  /// server answers hello too, but without the bit the connect fails
  /// with kFailedPrecondition. `timeout_ms` bounds the connect retry
  /// loop (servers may still be binding).
  static StatusOr<std::unique_ptr<ServiceClient>> Connect(
      const std::string& host, uint16_t port, int timeout_ms = 10'000);

  ~ServiceClient();

  ServiceClient(const ServiceClient&) = delete;
  ServiceClient& operator=(const ServiceClient&) = delete;

  /// Submits the query and blocks until its terminal frame arrives.
  /// Admission rejections and execution failures surface as the error
  /// status the server sent (kResourceExhausted, kInvalidArgument, ...).
  StatusOr<wire::QueryResultInfo> Execute(const wire::QuerySpec& spec,
                                          ProgressFn progress = nullptr);

  /// Submits the query and returns its tag immediately. Every started
  /// query must be Await()ed exactly once.
  StatusOr<uint16_t> StartQuery(const wire::QuerySpec& spec,
                                ProgressFn progress = nullptr);

  /// Blocks until the query behind `tag` reaches its terminal frame and
  /// returns it (or the error the server answered with).
  StatusOr<wire::QueryResultInfo> Await(uint16_t tag);

  /// Asks the server to cancel the query behind `tag`. Fire-and-forget:
  /// the outcome arrives through Await() — either a kQueryResult with
  /// the cancelled flag, a normal result (the race was lost), or a
  /// kError if the server no longer knows the tag.
  Status SendCancel(uint16_t tag);

  // --- subscribe mode (dynamic graphs) ---------------------------------

  /// Starts a subscribe-mode query (kQuerySubscribe is OR-ed into the
  /// spec). The subscription's lifecycle on this tag:
  ///   1. AwaitBaseline(tag) returns the baseline count (or the
  ///      admission rejection);
  ///   2. `on_delta` fires on the reader thread once per committed epoch
  ///      with that epoch's exact MatchDelta;
  ///   3. SendCancel(tag) ends it, and Await(tag) returns the terminal
  ///      result (cancelled flag set, matches = last maintained total).
  /// Every subscription must be Await()ed exactly once, like any query.
  StatusOr<uint16_t> Subscribe(wire::QuerySpec spec, MatchDeltaFn on_delta,
                               ProgressFn progress = nullptr);

  /// Blocks until the subscription's baseline kQueryResult arrives and
  /// returns it without retiring the tag (deltas keep streaming). On a
  /// rejected subscription this returns the error; Await(tag) must still
  /// be called and returns the same error.
  StatusOr<wire::QueryResultInfo> AwaitBaseline(uint16_t tag);

  /// Stages one edge-delta batch toward `target_epoch` (= server epoch
  /// + 1) and blocks for the kDeltaAck. Endpoints are original data-graph
  /// ids; the service maps them through its relabeling. Returns the
  /// server's epoch after staging (unchanged until AdvanceEpoch).
  StatusOr<uint64_t> PushDelta(uint64_t target_epoch,
                               std::span<const EdgeDelta> ops);

  /// Commits the staged batches as `target_epoch`: the service runs the
  /// incremental maintenance passes, streams each subscription's
  /// kMatchDelta, and acks with the new epoch (returned).
  StatusOr<uint64_t> AdvanceEpoch(uint64_t target_epoch);

  /// The hello handshake result (vertex count, partition count, graph
  /// hash of the service's relabeled graph, capability flags).
  const wire::HelloInfo& hello() const { return hello_; }

 private:
  ServiceClient() = default;

  void ReaderLoop();
  /// Fails every pending query with `status` and marks the client dead.
  void FailAll(const Status& status);
  /// Allocates a fresh tag unused by queries and delta requests alike.
  /// Caller holds mu_; 0 on exhaustion.
  uint16_t AllocTagLocked();
  /// Sends a delta-protocol frame under `tag` and blocks for its
  /// kDeltaAck (or the kError the server answered with).
  StatusOr<uint64_t> DeltaRoundTrip(std::vector<uint8_t> frame,
                                    uint16_t tag);

  /// One in-flight query awaiting its terminal frame.
  struct Pending {
    bool done = false;
    StatusOr<wire::QueryResultInfo> result =
        Status::Internal("unresolved query");
    ProgressFn progress;
    /// Subscribe-mode extras: the baseline result resolves separately
    /// from the terminal one, and deltas invoke the callback.
    bool subscribe = false;
    bool baseline_done = false;
    StatusOr<wire::QueryResultInfo> baseline =
        Status::Internal("unresolved baseline");
    MatchDeltaFn on_delta;
  };

  /// One in-flight kApplyDelta / kEpochAdvance awaiting its kDeltaAck.
  struct PendingAck {
    bool done = false;
    StatusOr<uint64_t> epoch = Status::Internal("unresolved delta request");
  };

  int fd_ = -1;
  wire::HelloInfo hello_;
  std::thread reader_;

  std::mutex mu_;
  std::condition_variable cv_;
  std::unordered_map<uint16_t, Pending> pending_;       // guarded by mu_
  std::unordered_map<uint16_t, PendingAck> pending_acks_;  // guarded by mu_
  uint16_t next_tag_ = 1;                               // guarded by mu_
  bool dead_ = false;                              // guarded by mu_
  Status death_status_ = Status::OK();             // guarded by mu_

  std::mutex write_mu_;  // serializes WriteAll across caller threads
};

}  // namespace benu::service

#endif  // BENU_SERVICE_SERVICE_CLIENT_H_
