// benu_service: the resident enumeration service. Loads (generates) one
// data graph, builds the shared substrate (store + DbCache + execution
// pool + memory governor) and serves version-3 query frames over TCP
// until terminated. docs/service.md is the operator guide.
//
//   --graph=SPEC            data graph (graph/generators.h spec syntax)
//   --port=N                listen port (0 = ephemeral; the chosen port
//                           is printed as "SERVING port=N")
//   --partitions=K          virtual storage partitions (own store only)
//   --transport=sim|tcp     adjacency backend: in-process simulated
//                           store (default) or remote benu_kv_server's
//   --endpoints=h:p|h:p,... TCP backend endpoints, replica syntax as in
//                           benu_driver (',' per server index, '|' per
//                           replica of one index)
//   --spawn-servers=K       fork K benu_kv_server children instead of
//                           --endpoints (children die with the service)
//   --replicas=R            replicas per spawned server index
//   --compress=0|1          delta+varint adjacency on every hop
//   --threads=N             execution threads (0 = hardware)
//   --cache-mb=N            shared DbCache capacity
//   --prefetch-budget=N     per-ENU prefetch budget in keys
//   --tau=N                 task-splitting degree threshold
//   --labels=K              assign label v%K to every data vertex (0 =
//                           unlabeled engine; labeled queries rejected)
//   --max-active=N          admission: concurrent-query cap
//   --memory-budget-mb=N    admission: governor ceiling (0 = unbounded)
//   --reserve-mb=N          admission: per-query byte reservation
//   --max-plan-cost=X       admission: plan-cost ceiling (0 = none)
//   --progress-interval=N   tasks between kProgress frames for queries
//                           that asked for them
//
// SIGTERM/SIGINT shut the service down cleanly: stop admitting, cancel
// in-flight queries (their terminal frames still flush), close.

#include <libgen.h>
#include <sys/prctl.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "common/logging.h"
#include "graph/generators.h"
#include "service/query_engine.h"
#include "service/service_server.h"
#include "storage/tcp_transport.h"
#include "storage/transport.h"

namespace {

using namespace benu;

const char* FlagValue(int argc, char** argv, const char* name,
                      const char* fallback) {
  const std::string prefix = std::string(name) + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      return argv[i] + prefix.size();
    }
  }
  return fallback;
}

struct ServerProcess {
  pid_t pid = -1;
  uint16_t port = 0;
};

std::vector<ServerProcess>& SpawnedRegistry() {
  static std::vector<ServerProcess> registry;
  return registry;
}

void KillServers(std::vector<ServerProcess>& servers) {
  for (auto& s : servers) {
    if (s.pid > 0) kill(s.pid, SIGTERM);
  }
  for (auto& s : servers) {
    if (s.pid > 0) {
      waitpid(s.pid, nullptr, 0);
      s.pid = -1;
    }
  }
}

void CleanupSpawnedAtExit() { KillServers(SpawnedRegistry()); }

std::string SelfDir() {
  char buf[4096];
  const ssize_t n = readlink("/proc/self/exe", buf, sizeof(buf) - 1);
  BENU_CHECK(n > 0) << "readlink /proc/self/exe failed";
  buf[n] = '\0';
  return dirname(buf);
}

/// Forks one benu_kv_server serving the relabeled graph (--relabel=1, the
/// labeling the engine enumerates under) and parses its listening port.
ServerProcess SpawnServer(const std::string& binary,
                          const std::string& graph_spec, size_t partitions,
                          size_t servers, size_t index, size_t replica,
                          size_t replicas, bool compress) {
  int pipefd[2];
  BENU_CHECK(pipe(pipefd) == 0) << "pipe failed";
  const pid_t parent = getpid();
  const pid_t pid = fork();
  BENU_CHECK(pid >= 0) << "fork failed";
  if (pid == 0) {
    prctl(PR_SET_PDEATHSIG, SIGKILL);
    if (getppid() != parent) _exit(127);
    close(pipefd[0]);
    dup2(pipefd[1], STDOUT_FILENO);
    close(pipefd[1]);
    const std::string graph_arg = "--graph=" + graph_spec;
    const std::string part_arg = "--partitions=" + std::to_string(partitions);
    const std::string servers_arg = "--servers=" + std::to_string(servers);
    const std::string index_arg = "--index=" + std::to_string(index);
    const std::string replica_arg = "--replica=" + std::to_string(replica);
    const std::string replicas_arg = "--replicas=" + std::to_string(replicas);
    const std::string compress_arg =
        std::string("--compress=") + (compress ? "1" : "0");
    execl(binary.c_str(), binary.c_str(), graph_arg.c_str(),
          part_arg.c_str(), servers_arg.c_str(), index_arg.c_str(),
          replica_arg.c_str(), replicas_arg.c_str(), compress_arg.c_str(),
          "--port=0", "--relabel=1", static_cast<char*>(nullptr));
    std::perror("execl benu_kv_server");
    _exit(127);
  }
  close(pipefd[1]);
  FILE* out = fdopen(pipefd[0], "r");
  BENU_CHECK(out != nullptr) << "fdopen failed";
  ServerProcess proc;
  proc.pid = pid;
  char line[256];
  while (std::fgets(line, sizeof(line), out) != nullptr) {
    unsigned port = 0;
    if (std::sscanf(line, "LISTENING port=%u", &port) == 1) {
      proc.port = static_cast<uint16_t>(port);
      break;
    }
  }
  BENU_CHECK(proc.port != 0)
      << "server " << index << " did not report a listening port";
  return proc;
}

std::atomic<bool> g_stop{false};

void HandleStopSignal(int) { g_stop.store(true); }

}  // namespace

int main(int argc, char** argv) {
  const std::string graph_spec =
      FlagValue(argc, argv, "--graph", "ba:200,5,21");
  const uint16_t port = static_cast<uint16_t>(
      std::strtoul(FlagValue(argc, argv, "--port", "0"), nullptr, 10));
  const size_t partitions =
      std::strtoul(FlagValue(argc, argv, "--partitions", "8"), nullptr, 10);
  const std::string transport_name =
      FlagValue(argc, argv, "--transport",
                std::strtoul(FlagValue(argc, argv, "--spawn-servers", "0"),
                             nullptr, 10) > 0
                    ? "tcp"
                    : "sim");
  const std::string endpoints_spec = FlagValue(argc, argv, "--endpoints", "");
  const size_t spawn_servers = std::strtoul(
      FlagValue(argc, argv, "--spawn-servers", "0"), nullptr, 10);
  const size_t replicas = std::max<size_t>(
      1, std::strtoul(FlagValue(argc, argv, "--replicas", "1"), nullptr, 10));
  const bool compress =
      std::atoi(FlagValue(argc, argv, "--compress", "1")) != 0;
  const int labels =
      std::atoi(FlagValue(argc, argv, "--labels", "0"));

  service::ServiceConfig config;
  config.db_partitions = partitions;
  config.compress_adjacency = compress;
  config.execution_threads =
      std::atoi(FlagValue(argc, argv, "--threads", "0"));
  config.db_cache_bytes =
      std::strtoul(FlagValue(argc, argv, "--cache-mb", "64"), nullptr, 10)
      << 20;
  config.prefetch_budget = std::strtoul(
      FlagValue(argc, argv, "--prefetch-budget", "0"), nullptr, 10);
  config.task_split_threshold = static_cast<uint32_t>(
      std::strtoul(FlagValue(argc, argv, "--tau", "64"), nullptr, 10));
  config.max_active_queries = std::strtoul(
      FlagValue(argc, argv, "--max-active", "8"), nullptr, 10);
  config.memory_budget_bytes =
      std::strtoul(FlagValue(argc, argv, "--memory-budget-mb", "0"), nullptr,
                   10)
      << 20;
  config.per_query_reserve_bytes =
      std::strtoul(FlagValue(argc, argv, "--reserve-mb", "0"), nullptr, 10)
      << 20;
  config.max_plan_cost =
      std::atof(FlagValue(argc, argv, "--max-plan-cost", "0"));
  config.progress_interval_tasks = std::strtoul(
      FlagValue(argc, argv, "--progress-interval", "16"), nullptr, 10);

  auto graph_or = GenerateFromSpec(graph_spec);
  BENU_CHECK(graph_or.ok()) << "--graph=" << graph_spec << ": "
                            << graph_or.status().ToString();
  const Graph& graph = *graph_or;

  // Deterministic vertex labels (v % K on input ids) so clients and the
  // --verify-solo path of benu_service_client can reproduce them.
  std::vector<int> data_labels;
  if (labels > 0) {
    data_labels.resize(graph.NumVertices());
    for (size_t v = 0; v < data_labels.size(); ++v) {
      data_labels[v] = static_cast<int>(v % static_cast<size_t>(labels));
    }
  }

  std::vector<ServerProcess>& spawned = SpawnedRegistry();
  std::atexit(CleanupSpawnedAtExit);
  std::shared_ptr<Transport> transport;
  if (transport_name == "tcp") {
    std::vector<ReplicaGroup> groups;
    if (spawn_servers > 0) {
      const std::string server_binary = SelfDir() + "/benu_kv_server";
      for (size_t i = 0; i < spawn_servers; ++i) {
        ReplicaGroup group;
        for (size_t r = 0; r < replicas; ++r) {
          spawned.push_back(SpawnServer(server_binary, graph_spec,
                                        partitions, spawn_servers, i, r,
                                        replicas, compress));
          group.replicas.push_back({"127.0.0.1", spawned.back().port});
        }
        groups.push_back(std::move(group));
      }
    } else {
      auto parsed = ParseReplicaGroups(endpoints_spec);
      BENU_CHECK(parsed.ok()) << "--endpoints: "
                              << parsed.status().ToString();
      groups = *parsed;
    }
    TcpTransportOptions tcp_options;
    tcp_options.compress = compress;
    auto connected = ConnectTcpTransport(groups, tcp_options);
    BENU_CHECK(connected.ok()) << "connect: "
                               << connected.status().ToString();
    transport = *connected;
  } else {
    BENU_CHECK(transport_name == "sim")
        << "unknown --transport=" << transport_name << " (sim|tcp)";
  }

  auto engine = service::QueryEngine::Create(graph, config, transport,
                                             std::move(data_labels));
  BENU_CHECK(engine.ok()) << "engine: " << engine.status().ToString();

  service::ServiceTcpServer server(std::move(*engine));
  BENU_CHECK(server.Listen(port).ok()) << "listen failed";
  BENU_CHECK(server.Start().ok()) << "start failed";

  std::signal(SIGTERM, HandleStopSignal);
  std::signal(SIGINT, HandleStopSignal);

  std::printf("SERVING port=%u\n", static_cast<unsigned>(server.port()));
  std::fflush(stdout);

  while (!g_stop.load()) {
    usleep(50 * 1000);
  }
  std::fprintf(stderr, "benu_service: stop signal, shutting down\n");
  // ~ServiceTcpServer runs the documented teardown order (drain, destroy
  // engine, stop loop); spawned KV children die via atexit.
  return 0;
}
