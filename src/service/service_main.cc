// benu_service: the resident enumeration service. Loads (generates) one
// data graph, builds the shared substrate (store + DbCache + execution
// pool + memory governor) and serves version-3 query frames over TCP
// until terminated. docs/service.md is the operator guide.
//
//   --graph=SPEC            data graph (graph/generators.h spec syntax)
//   --port=N                listen port (0 = ephemeral; the chosen port
//                           is printed as "SERVING port=N")
//   --partitions=K          virtual storage partitions (own store only)
//   --transport=sim|tcp     adjacency backend: in-process simulated
//                           store (default) or remote benu_kv_server's
//   --endpoints=h:p|h:p,... TCP backend endpoints, replica syntax as in
//                           benu_driver (',' per server index, '|' per
//                           replica of one index)
//   --spawn-servers=K       fork K benu_kv_server children instead of
//                           --endpoints (children die with the service)
//   --replicas=R            replicas per spawned server index
//   --compress=0|1          delta+varint adjacency on every hop
//   --threads=N             execution threads (0 = hardware)
//   --cache-mb=N            shared DbCache capacity
//   --prefetch-budget=N     per-ENU prefetch budget in keys
//   --tau=N                 task-splitting degree threshold
//   --labels=K              assign label v%K to every data vertex (0 =
//                           unlabeled engine; labeled queries rejected)
//   --max-active=N          admission: concurrent-query cap
//   --memory-budget-mb=N    admission: governor ceiling (0 = unbounded)
//   --reserve-mb=N          admission: per-query byte reservation
//   --max-plan-cost=X       admission: plan-cost ceiling (0 = none)
//   --progress-interval=N   tasks between kProgress frames for queries
//                           that asked for them
//
// SIGTERM/SIGINT shut the service down cleanly: stop admitting, cancel
// in-flight queries (their terminal frames still flush), close.

#include <unistd.h>

#include <atomic>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "common/flags_util.h"
#include "common/logging.h"
#include "graph/generators.h"
#include "service/query_engine.h"
#include "service/service_server.h"
#include "storage/tcp_transport.h"
#include "storage/transport.h"

namespace {

using namespace benu;

std::atomic<bool> g_stop{false};

void HandleStopSignal(int) { g_stop.store(true); }

}  // namespace

int main(int argc, char** argv) {
  const std::string graph_spec =
      flags::Value(argc, argv, "--graph", "ba:200,5,21");
  const uint16_t port = flags::PortValue(argc, argv, "--port", 0);
  const size_t partitions = flags::SizeValue(argc, argv, "--partitions", 8);
  const size_t spawn_servers =
      flags::SizeValue(argc, argv, "--spawn-servers", 0);
  const std::string transport_name = flags::Value(
      argc, argv, "--transport", spawn_servers > 0 ? "tcp" : "sim");
  const std::string endpoints_spec =
      flags::Value(argc, argv, "--endpoints", "");
  const size_t replicas =
      std::max<size_t>(1, flags::SizeValue(argc, argv, "--replicas", 1));
  const bool compress = flags::BoolValue(argc, argv, "--compress", true);
  const int labels = flags::IntValue(argc, argv, "--labels", 0);

  service::ServiceConfig config;
  config.db_partitions = partitions;
  config.compress_adjacency = compress;
  config.execution_threads = flags::IntValue(argc, argv, "--threads", 0);
  config.db_cache_bytes =
      flags::SizeValue(argc, argv, "--cache-mb", 64) << 20;
  config.prefetch_budget =
      flags::SizeValue(argc, argv, "--prefetch-budget", 0);
  config.task_split_threshold = static_cast<uint32_t>(
      flags::SizeValue(argc, argv, "--tau", 64));
  config.max_active_queries =
      flags::SizeValue(argc, argv, "--max-active", 8);
  config.memory_budget_bytes =
      flags::SizeValue(argc, argv, "--memory-budget-mb", 0) << 20;
  config.per_query_reserve_bytes =
      flags::SizeValue(argc, argv, "--reserve-mb", 0) << 20;
  config.max_plan_cost =
      flags::DoubleValue(argc, argv, "--max-plan-cost", 0);
  config.progress_interval_tasks =
      flags::SizeValue(argc, argv, "--progress-interval", 16);

  auto graph_or = GenerateFromSpec(graph_spec);
  BENU_CHECK(graph_or.ok()) << "--graph=" << graph_spec << ": "
                            << graph_or.status().ToString();
  const Graph& graph = *graph_or;

  // Deterministic vertex labels (v % K on input ids) so clients and the
  // --verify-solo path of benu_service_client can reproduce them.
  std::vector<int> data_labels;
  if (labels > 0) {
    data_labels.resize(graph.NumVertices());
    for (size_t v = 0; v < data_labels.size(); ++v) {
      data_labels[v] = static_cast<int>(v % static_cast<size_t>(labels));
    }
  }

  std::vector<flags::ServerProcess>& spawned = flags::SpawnedRegistry();
  std::atexit(flags::CleanupSpawnedAtExit);
  std::shared_ptr<Transport> transport;
  if (transport_name == "tcp") {
    std::vector<ReplicaGroup> groups;
    if (spawn_servers > 0) {
      const std::string server_binary = flags::SelfDir() + "/benu_kv_server";
      for (size_t i = 0; i < spawn_servers; ++i) {
        ReplicaGroup group;
        for (size_t r = 0; r < replicas; ++r) {
          flags::KvServerSpawnOptions spawn;
          spawn.graph_spec = graph_spec;
          spawn.partitions = partitions;
          spawn.servers = spawn_servers;
          spawn.index = i;
          spawn.replica = r;
          spawn.replicas = replicas;
          spawn.compress = compress;
          spawned.push_back(flags::SpawnKvServer(server_binary, spawn));
          group.replicas.push_back({"127.0.0.1", spawned.back().port});
        }
        groups.push_back(std::move(group));
      }
    } else {
      auto parsed = ParseReplicaGroups(endpoints_spec);
      BENU_CHECK(parsed.ok()) << "--endpoints: "
                              << parsed.status().ToString();
      groups = *parsed;
    }
    TcpTransportOptions tcp_options;
    tcp_options.compress = compress;
    auto connected = ConnectTcpTransport(groups, tcp_options);
    BENU_CHECK(connected.ok()) << "connect: "
                               << connected.status().ToString();
    transport = *connected;
  } else {
    BENU_CHECK(transport_name == "sim")
        << "unknown --transport=" << transport_name << " (sim|tcp)";
  }

  auto engine = service::QueryEngine::Create(graph, config, transport,
                                             std::move(data_labels));
  BENU_CHECK(engine.ok()) << "engine: " << engine.status().ToString();

  service::ServiceTcpServer server(std::move(*engine));
  BENU_CHECK(server.Listen(port).ok()) << "listen failed";
  BENU_CHECK(server.Start().ok()) << "start failed";

  std::signal(SIGTERM, HandleStopSignal);
  std::signal(SIGINT, HandleStopSignal);

  std::printf("SERVING port=%u\n", static_cast<unsigned>(server.port()));
  std::fflush(stdout);

  while (!g_stop.load()) {
    usleep(50 * 1000);
  }
  std::fprintf(stderr, "benu_service: stop signal, shutting down\n");
  // ~ServiceTcpServer runs the documented teardown order (drain, destroy
  // engine, stop loop); spawned KV children die via atexit.
  return 0;
}
