#include "service/service_client.h"

#include <sys/socket.h>

#include <utility>
#include <vector>

#include "storage/socket_io.h"

namespace benu::service {

StatusOr<std::unique_ptr<ServiceClient>> ServiceClient::Connect(
    const std::string& host, uint16_t port, int timeout_ms) {
  auto fd = net::TcpConnect(host, port, timeout_ms);
  if (!fd.ok()) return fd.status();
  auto client = std::unique_ptr<ServiceClient>(new ServiceClient());
  client->fd_ = *fd;
  // Handshake runs synchronously before the reader thread exists, so
  // plain write/read is safe here.
  std::vector<uint8_t> hello;
  wire::AppendHelloRequest(&hello);
  if (Status s = net::WriteAll(*fd, hello, timeout_ms); !s.ok()) return s;
  std::vector<uint8_t> reply;
  if (Status s = net::ReadWireFrame(*fd, &reply, timeout_ms); !s.ok()) {
    return s;
  }
  auto frame = wire::DecodeFrame(reply);
  if (!frame.ok()) return frame.status();
  if (frame->header.type == wire::MessageType::kError) {
    return wire::DecodeError(*frame);
  }
  auto info = wire::DecodeHelloReply(*frame);
  if (!info.ok()) return info.status();
  if ((info->flags & wire::kHelloSupportsQueries) == 0) {
    return Status::FailedPrecondition(
        "peer answered hello but is not an enumeration service "
        "(kHelloSupportsQueries capability missing — is this a KV server?)");
  }
  client->hello_ = *info;
  client->reader_ = std::thread([c = client.get()] { c->ReaderLoop(); });
  return client;
}

ServiceClient::~ServiceClient() {
  // Closing the fd makes the reader's blocking read fail; it then fails
  // any still-pending queries with the read error and exits.
  if (fd_ >= 0) {
    ::shutdown(fd_, SHUT_RDWR);
  }
  if (reader_.joinable()) reader_.join();
  if (fd_ >= 0) net::CloseFd(fd_);
}

void ServiceClient::FailAll(const Status& status) {
  std::lock_guard<std::mutex> lk(mu_);
  dead_ = true;
  death_status_ = status;
  for (auto& [tag, p] : pending_) {
    if (!p.done) {
      p.done = true;
      p.result = status;
    }
    if (p.subscribe && !p.baseline_done) {
      p.baseline_done = true;
      p.baseline = status;
    }
  }
  for (auto& [tag, a] : pending_acks_) {
    if (!a.done) {
      a.done = true;
      a.epoch = status;
    }
  }
  cv_.notify_all();
}

void ServiceClient::ReaderLoop() {
  std::vector<uint8_t> buf;
  for (;;) {
    if (Status s = net::ReadWireFrame(fd_, &buf); !s.ok()) {
      FailAll(s);
      return;
    }
    auto frame = wire::DecodeFrame(buf);
    if (!frame.ok()) {
      FailAll(frame.status());
      return;
    }
    const uint16_t tag = wire::FrameTag(buf);
    switch (frame->header.type) {
      case wire::MessageType::kProgress: {
        auto progress = wire::DecodeProgress(*frame);
        if (!progress.ok()) break;  // malformed progress: drop, not fatal
        ProgressFn fn;
        {
          std::lock_guard<std::mutex> lk(mu_);
          auto it = pending_.find(tag);
          if (it != pending_.end() && !it->second.done) {
            fn = it->second.progress;
          }
        }
        if (fn) fn(*progress);
        break;
      }
      case wire::MessageType::kMatchDelta: {
        auto delta = wire::DecodeMatchDelta(*frame);
        if (!delta.ok()) break;  // malformed delta: drop, not fatal
        MatchDeltaFn fn;
        {
          std::lock_guard<std::mutex> lk(mu_);
          auto it = pending_.find(tag);
          if (it != pending_.end() && !it->second.done) {
            fn = it->second.on_delta;
          }
        }
        if (fn) fn(*delta);
        break;
      }
      case wire::MessageType::kDeltaAck: {
        StatusOr<uint64_t> epoch = wire::DecodeDeltaAck(*frame);
        std::lock_guard<std::mutex> lk(mu_);
        auto it = pending_acks_.find(tag);
        if (it != pending_acks_.end() && !it->second.done) {
          it->second.done = true;
          it->second.epoch = std::move(epoch);
          cv_.notify_all();
        }
        break;
      }
      case wire::MessageType::kQueryResult:
      case wire::MessageType::kError: {
        StatusOr<wire::QueryResultInfo> outcome =
            frame->header.type == wire::MessageType::kQueryResult
                ? wire::DecodeQueryResult(*frame)
                : StatusOr<wire::QueryResultInfo>(wire::DecodeError(*frame));
        std::lock_guard<std::mutex> lk(mu_);
        if (frame->header.type == wire::MessageType::kError) {
          // Errors demux by tag across both request kinds.
          auto ack = pending_acks_.find(tag);
          if (ack != pending_acks_.end() && !ack->second.done) {
            ack->second.done = true;
            ack->second.epoch = outcome.status();
            cv_.notify_all();
            break;
          }
        }
        auto it = pending_.find(tag);
        if (it != pending_.end() && !it->second.done) {
          Pending& p = it->second;
          if (p.subscribe && !p.baseline_done) {
            // First result of a subscription: the baseline. A clean
            // baseline keeps the tag streaming; a rejection or a
            // cancel that raced the baseline is terminal for both.
            p.baseline_done = true;
            p.baseline = outcome;
            if (!outcome.ok() || outcome->cancelled()) {
              p.done = true;
              p.result = std::move(outcome);
            }
          } else {
            p.done = true;
            p.result = std::move(outcome);
          }
          cv_.notify_all();
        }
        break;
      }
      default:
        // Unsolicited frame types are the server's bug, not a stream
        // desync (the frame was well-delimited): ignore.
        break;
    }
  }
}

uint16_t ServiceClient::AllocTagLocked() {
  // 15-bit tag space, skip 0 (hello) and tags still awaiting results —
  // queries and delta requests share the space.
  for (int attempts = 0; attempts < 0x8000; ++attempts) {
    const uint16_t candidate = next_tag_;
    next_tag_ = static_cast<uint16_t>((next_tag_ % 0x7FFF) + 1);
    if (pending_.count(candidate) == 0 &&
        pending_acks_.count(candidate) == 0) {
      return candidate;
    }
  }
  return 0;
}

StatusOr<uint16_t> ServiceClient::StartQuery(const wire::QuerySpec& spec,
                                             ProgressFn progress) {
  const bool subscribe = spec.want_subscribe();
  uint16_t tag = 0;
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (dead_) return death_status_;
    tag = AllocTagLocked();
    if (tag == 0) {
      return Status::ResourceExhausted("all 32767 query tags in flight");
    }
    Pending p;
    p.progress = std::move(progress);
    p.subscribe = subscribe;
    pending_.emplace(tag, std::move(p));
  }
  std::vector<uint8_t> frame;
  wire::AppendQueryRequest(spec, &frame);
  wire::SetFrameTag(frame, tag);
  Status s;
  {
    std::lock_guard<std::mutex> lk(write_mu_);
    s = net::WriteAll(fd_, frame);
  }
  if (!s.ok()) {
    std::lock_guard<std::mutex> lk(mu_);
    pending_.erase(tag);
    return s;
  }
  return tag;
}

StatusOr<wire::QueryResultInfo> ServiceClient::Await(uint16_t tag) {
  std::unique_lock<std::mutex> lk(mu_);
  auto it = pending_.find(tag);
  if (it == pending_.end()) {
    return Status::InvalidArgument("Await() on a tag that was never started");
  }
  cv_.wait(lk, [&] { return it->second.done; });
  StatusOr<wire::QueryResultInfo> result = std::move(it->second.result);
  pending_.erase(it);
  return result;
}

Status ServiceClient::SendCancel(uint16_t tag) {
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (dead_) return death_status_;
    if (pending_.count(tag) == 0) {
      return Status::InvalidArgument("SendCancel() on an unknown tag");
    }
  }
  std::vector<uint8_t> frame;
  wire::AppendCancelRequest(&frame);
  wire::SetFrameTag(frame, tag);
  std::lock_guard<std::mutex> lk(write_mu_);
  return net::WriteAll(fd_, frame);
}

StatusOr<wire::QueryResultInfo> ServiceClient::Execute(
    const wire::QuerySpec& spec, ProgressFn progress) {
  auto tag = StartQuery(spec, std::move(progress));
  if (!tag.ok()) return tag.status();
  return Await(*tag);
}

StatusOr<uint16_t> ServiceClient::Subscribe(wire::QuerySpec spec,
                                            MatchDeltaFn on_delta,
                                            ProgressFn progress) {
  spec.options |= wire::kQuerySubscribe;
  auto tag = StartQuery(spec, std::move(progress));
  if (!tag.ok()) return tag.status();
  // StartQuery marked the Pending as subscribe (the bit is set above);
  // attach the delta callback before any epoch can commit. The server
  // streams no kMatchDelta before acking an AdvanceEpoch issued by this
  // client, and a racing external commit at worst drops callbacks, not
  // correctness: totals ride inside every subsequent MatchDelta.
  std::lock_guard<std::mutex> lk(mu_);
  auto it = pending_.find(*tag);
  if (it != pending_.end()) it->second.on_delta = std::move(on_delta);
  return tag;
}

StatusOr<wire::QueryResultInfo> ServiceClient::AwaitBaseline(uint16_t tag) {
  std::unique_lock<std::mutex> lk(mu_);
  auto it = pending_.find(tag);
  if (it == pending_.end()) {
    return Status::InvalidArgument(
        "AwaitBaseline() on a tag that was never started");
  }
  if (!it->second.subscribe) {
    return Status::InvalidArgument(
        "AwaitBaseline() on a non-subscribe query; use Await()");
  }
  cv_.wait(lk, [&] { return it->second.baseline_done; });
  return it->second.baseline;  // tag stays live; Await() retires it
}

StatusOr<uint64_t> ServiceClient::DeltaRoundTrip(std::vector<uint8_t> frame,
                                                 uint16_t tag) {
  wire::SetFrameTag(frame, tag);
  Status s;
  {
    std::lock_guard<std::mutex> lk(write_mu_);
    s = net::WriteAll(fd_, frame);
  }
  std::unique_lock<std::mutex> lk(mu_);
  auto it = pending_acks_.find(tag);
  if (!s.ok()) {
    pending_acks_.erase(it);
    return s;
  }
  cv_.wait(lk, [&] { return it->second.done; });
  StatusOr<uint64_t> epoch = std::move(it->second.epoch);
  pending_acks_.erase(it);
  return epoch;
}

StatusOr<uint64_t> ServiceClient::PushDelta(uint64_t target_epoch,
                                            std::span<const EdgeDelta> ops) {
  uint16_t tag = 0;
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (dead_) return death_status_;
    tag = AllocTagLocked();
    if (tag == 0) {
      return Status::ResourceExhausted("all 32767 query tags in flight");
    }
    pending_acks_.emplace(tag, PendingAck{});
  }
  std::vector<uint8_t> frame;
  wire::AppendApplyDelta(target_epoch, ops, &frame);
  return DeltaRoundTrip(std::move(frame), tag);
}

StatusOr<uint64_t> ServiceClient::AdvanceEpoch(uint64_t target_epoch) {
  uint16_t tag = 0;
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (dead_) return death_status_;
    tag = AllocTagLocked();
    if (tag == 0) {
      return Status::ResourceExhausted("all 32767 query tags in flight");
    }
    pending_acks_.emplace(tag, PendingAck{});
  }
  std::vector<uint8_t> frame;
  wire::AppendEpochAdvance(target_epoch, &frame);
  return DeltaRoundTrip(std::move(frame), tag);
}

}  // namespace benu::service
