// benu_service_client: command-line client of benu_service, used by the
// CI service-smoke job and by hand (docs/service.md has a transcript).
//
//   --host=H --port=N       where benu_service listens
//   --query=NAME            pattern to enumerate (repeatable: all queries
//                           are submitted concurrently on one connection
//                           and awaited together)
//   --labeled=NAME:l0,l1,.. labeled pattern query (repeatable); the
//                           service must run with --labels=K
//   --vcbc=1                request VCBC compression on every query
//   --degree-filter=1       request degree filters on every query
//   --progress              request progress frames and print them
//   --verify-solo           re-run each query with one-shot RunBenu over
//                           --graph=SPEC (must equal the service's) and
//                           fail unless the counts are bit-identical
//   --labels=K              label alphabet of --verify-solo (same K the
//                           service was started with)
//   --cancel-test           additionally: submit one extra copy of the
//                           first query, cancel it immediately, and
//                           require a cancelled/answered outcome plus a
//                           correct re-run afterwards
//   --expect-reject         submit queries past the service's admission
//                           cap and require at least one kResourceExhausted
//
// Prints "QUERY <name> MATCHES <n>" per query; exits nonzero on failure.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/flags_util.h"
#include "common/logging.h"
#include "common/wire.h"
#include "distributed/benu_driver.h"
#include "graph/generators.h"
#include "graph/patterns.h"
#include "service/service_client.h"

namespace {

using namespace benu;

/// "q3:0,1,2" -> {"q3", {0,1,2}}.
std::pair<std::string, std::vector<int32_t>> ParseLabeled(
    const std::string& spec) {
  const size_t colon = spec.find(':');
  BENU_CHECK(colon != std::string::npos)
      << "--labeled wants NAME:l0,l1,...: " << spec;
  std::pair<std::string, std::vector<int32_t>> out;
  out.first = spec.substr(0, colon);
  std::string rest = spec.substr(colon + 1);
  size_t pos = 0;
  while (pos < rest.size()) {
    size_t comma = rest.find(',', pos);
    if (comma == std::string::npos) comma = rest.size();
    out.second.push_back(
        static_cast<int32_t>(std::atoi(rest.substr(pos, comma - pos).c_str())));
    pos = comma + 1;
  }
  return out;
}

/// One-shot RunBenu over the same graph/labels/options, for --verify-solo.
Count SoloCount(const Graph& graph, const wire::QuerySpec& spec,
                const std::vector<int>& data_labels) {
  auto pattern = GetPattern(spec.pattern);
  BENU_CHECK(pattern.ok()) << pattern.status().ToString();
  BenuOptions options;
  options.plan.apply_vcbc = spec.want_vcbc();
  options.plan.apply_degree_filter = spec.want_degree_filter();
  options.plan.pattern_labels.assign(spec.pattern_labels.begin(),
                                     spec.pattern_labels.end());
  options.data_labels = data_labels;
  auto result = RunBenu(graph, *pattern, options);
  BENU_CHECK(result.ok()) << result.status().ToString();
  return result->run.total_matches;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string host = flags::Value(argc, argv, "--host", "127.0.0.1");
  const uint16_t port = flags::PortValue(argc, argv, "--port", 0);
  BENU_CHECK(port != 0) << "--port is required";
  const bool vcbc = flags::BoolValue(argc, argv, "--vcbc", false);
  const bool degree_filter =
      flags::BoolValue(argc, argv, "--degree-filter", false);
  const bool want_progress = flags::Has(argc, argv, "--progress");
  const bool verify_solo = flags::Has(argc, argv, "--verify-solo");
  const bool cancel_test = flags::Has(argc, argv, "--cancel-test");
  const bool expect_reject = flags::Has(argc, argv, "--expect-reject");
  const std::string graph_spec =
      flags::Value(argc, argv, "--graph", "ba:200,5,21");
  const int labels = flags::IntValue(argc, argv, "--labels", 0);

  std::vector<wire::QuerySpec> specs;
  for (const std::string& name : flags::Values(argc, argv, "--query")) {
    wire::QuerySpec spec;
    spec.pattern = name;
    if (vcbc) spec.options |= wire::kQueryVcbc;
    if (degree_filter) spec.options |= wire::kQueryDegreeFilter;
    if (want_progress) spec.options |= wire::kQueryWantProgress;
    specs.push_back(std::move(spec));
  }
  for (const std::string& labeled : flags::Values(argc, argv, "--labeled")) {
    auto [name, pattern_labels] = ParseLabeled(labeled);
    wire::QuerySpec spec;
    spec.pattern = name;
    spec.pattern_labels = std::move(pattern_labels);
    if (degree_filter) spec.options |= wire::kQueryDegreeFilter;
    if (want_progress) spec.options |= wire::kQueryWantProgress;
    specs.push_back(std::move(spec));
  }
  BENU_CHECK(!specs.empty()) << "at least one --query or --labeled required";

  auto client_or = service::ServiceClient::Connect(host, port);
  BENU_CHECK(client_or.ok()) << "connect: " << client_or.status().ToString();
  service::ServiceClient& client = **client_or;
  std::fprintf(stderr,
               "connected: vertices=%u partitions=%u graph_hash=%08x\n",
               client.hello().num_vertices, client.hello().num_partitions,
               client.hello().graph_hash);

  // All queries go out on one connection before any is awaited, so the
  // service really interleaves them.
  std::vector<uint16_t> tags;
  for (const wire::QuerySpec& spec : specs) {
    service::ServiceClient::ProgressFn progress;
    if (want_progress) {
      progress = [name = spec.pattern](const wire::QueryProgress& p) {
        std::fprintf(stderr, "progress %s: tasks %llu/%llu matches=%llu\n",
                     name.c_str(),
                     static_cast<unsigned long long>(p.tasks_done),
                     static_cast<unsigned long long>(p.tasks_total),
                     static_cast<unsigned long long>(p.matches_so_far));
      };
    }
    auto tag = client.StartQuery(spec, std::move(progress));
    BENU_CHECK(tag.ok()) << spec.pattern << ": " << tag.status().ToString();
    tags.push_back(*tag);
  }

  std::vector<Count> counts;
  for (size_t i = 0; i < specs.size(); ++i) {
    auto result = client.Await(tags[i]);
    BENU_CHECK(result.ok()) << specs[i].pattern << ": "
                            << result.status().ToString();
    BENU_CHECK(!result->cancelled())
        << specs[i].pattern << " came back cancelled";
    counts.push_back(result->matches);
    std::printf("QUERY %s MATCHES %llu\n", specs[i].pattern.c_str(),
                static_cast<unsigned long long>(result->matches));
  }
  std::fflush(stdout);

  if (verify_solo) {
    auto graph_or = GenerateFromSpec(graph_spec);
    BENU_CHECK(graph_or.ok()) << graph_or.status().ToString();
    std::vector<int> data_labels;
    if (labels > 0) {
      data_labels.resize(graph_or->NumVertices());
      for (size_t v = 0; v < data_labels.size(); ++v) {
        data_labels[v] = static_cast<int>(v % static_cast<size_t>(labels));
      }
    }
    for (size_t i = 0; i < specs.size(); ++i) {
      const Count solo = SoloCount(*graph_or, specs[i], data_labels);
      BENU_CHECK(counts[i] == solo)
          << specs[i].pattern << ": service found " << counts[i]
          << " but a solo run found " << solo;
    }
    std::fprintf(stderr, "verify-solo: ok (%zu queries)\n", specs.size());
  }

  if (cancel_test) {
    // Cancel racing against completion: either outcome (cancelled flag
    // or a completed count) is legal; what is NOT legal is an error or a
    // wrong count afterwards.
    auto tag = client.StartQuery(specs[0]);
    BENU_CHECK(tag.ok()) << tag.status().ToString();
    BENU_CHECK(client.SendCancel(*tag).ok());
    auto cancelled = client.Await(*tag);
    BENU_CHECK(cancelled.ok()) << cancelled.status().ToString();
    std::fprintf(stderr, "cancel-test: outcome=%s\n",
                 cancelled->cancelled() ? "cancelled" : "completed first");
    auto rerun = client.Execute(specs[0]);
    BENU_CHECK(rerun.ok()) << rerun.status().ToString();
    BENU_CHECK(rerun->matches == counts[0])
        << "post-cancel re-run found " << rerun->matches << " matches, want "
        << counts[0];
    std::fprintf(stderr, "cancel-test: ok\n");
  }

  if (expect_reject) {
    // Flood: 64 concurrent copies of the first query must trip the
    // active-query cap at least once (CI runs the service with a small
    // --max-active).
    std::vector<uint16_t> flood;
    for (int i = 0; i < 64; ++i) {
      auto tag = client.StartQuery(specs[0]);
      BENU_CHECK(tag.ok()) << tag.status().ToString();
      flood.push_back(*tag);
    }
    size_t rejected = 0;
    for (uint16_t tag : flood) {
      auto result = client.Await(tag);
      if (!result.ok()) {
        BENU_CHECK(result.status().code() == StatusCode::kResourceExhausted)
            << "unexpected rejection: " << result.status().ToString();
        ++rejected;
      } else {
        BENU_CHECK(result->matches == counts[0])
            << "admitted flood query found " << result->matches;
      }
    }
    BENU_CHECK(rejected > 0)
        << "64 concurrent queries but none hit admission control";
    std::fprintf(stderr, "expect-reject: ok (%zu rejected)\n", rejected);
  }

  std::printf("CLIENT OK\n");
  return 0;
}
