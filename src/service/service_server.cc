#include "service/service_server.h"

#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <span>
#include <utility>

#include "common/logging.h"
#include "common/wire.h"
#include "storage/socket_io.h"

namespace benu::service {
namespace {

uint32_t ReadU32(const uint8_t* p) {
  return static_cast<uint32_t>(p[0]) | static_cast<uint32_t>(p[1]) << 8 |
         static_cast<uint32_t>(p[2]) << 16 | static_cast<uint32_t>(p[3]) << 24;
}

// Same inbound-frame bound as net::ReadWireFrame / KvTcpServer.
constexpr uint32_t kMaxPayload = 1u << 30;

}  // namespace

ServiceTcpServer::ServiceTcpServer(std::unique_ptr<QueryEngine> engine)
    : engine_(std::move(engine)) {}

ServiceTcpServer::~ServiceTcpServer() {
  // Refuse new queries, let the dying engine cancel and answer the
  // in-flight ones through the still-running loop, then stop the loop.
  draining_.store(true, std::memory_order_release);
  engine_.reset();
  Stop();
}

Status ServiceTcpServer::Listen(uint16_t port) {
  listen_fd_ = socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK, 0);
  if (listen_fd_ < 0) {
    return Status::IoError(std::string("socket: ") + std::strerror(errno));
  }
  int one = 1;
  setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    return Status::IoError(std::string("bind: ") + std::strerror(errno));
  }
  if (listen(listen_fd_, 64) < 0) {
    return Status::IoError(std::string("listen: ") + std::strerror(errno));
  }
  socklen_t len = sizeof(addr);
  if (getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) <
      0) {
    return Status::IoError(std::string("getsockname: ") +
                           std::strerror(errno));
  }
  port_ = ntohs(addr.sin_port);
  return Status::OK();
}

Status ServiceTcpServer::Start() {
  if (listen_fd_ < 0) {
    return Status::FailedPrecondition("Start() before Listen()");
  }
  epoll_fd_ = epoll_create1(0);
  if (epoll_fd_ < 0) {
    return Status::IoError(std::string("epoll_create1: ") +
                           std::strerror(errno));
  }
  if (pipe2(wake_fds_, O_NONBLOCK) < 0) {
    return Status::IoError(std::string("pipe2: ") + std::strerror(errno));
  }
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = listen_fd_;
  if (epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev) < 0) {
    return Status::IoError(std::string("epoll_ctl(listen): ") +
                           std::strerror(errno));
  }
  ev.data.fd = wake_fds_[0];
  if (epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fds_[0], &ev) < 0) {
    return Status::IoError(std::string("epoll_ctl(wake): ") +
                           std::strerror(errno));
  }
  loop_thread_ = std::thread([this] { EventLoop(); });
  return Status::OK();
}

void ServiceTcpServer::AcceptReady() {
  for (;;) {
    const int fd = accept4(listen_fd_, nullptr, nullptr, SOCK_NONBLOCK);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // EAGAIN: drained
    }
    int one = 1;
    setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = fd;
    if (epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) < 0) {
      net::CloseFd(fd);
      continue;
    }
    Conn conn;
    conn.session = next_session_++;
    conn.outbox = std::make_shared<Outbox>();
    conns_.emplace(fd, std::move(conn));
  }
}

void ServiceTcpServer::PostFrame(const std::shared_ptr<Outbox>& outbox,
                                 std::vector<uint8_t> frame,
                                 int finished_tag) {
  {
    std::lock_guard<std::mutex> lk(outbox->mu);
    if (outbox->closed) return;
    outbox->frames.insert(outbox->frames.end(), frame.begin(), frame.end());
    if (finished_tag >= 0) {
      outbox->finished_tags.push_back(static_cast<uint16_t>(finished_tag));
    }
  }
  // Nudge the loop. The pipe stays open until Stop() has joined the
  // loop, and the engine (source of all callbacks) dies before Stop()
  // runs, so the fd is valid whenever a callback can execute. A full
  // pipe is fine — one pending byte already guarantees a wakeup.
  const uint8_t byte = 0;
  ssize_t rc;
  do {
    rc = write(wake_fds_[1], &byte, 1);
  } while (rc < 0 && errno == EINTR);
}

void ServiceTcpServer::DrainOutbox(Conn& conn) {
  std::vector<uint16_t> finished;
  {
    std::lock_guard<std::mutex> lk(conn.outbox->mu);
    if (!conn.outbox->frames.empty()) {
      conn.out.insert(conn.out.end(), conn.outbox->frames.begin(),
                      conn.outbox->frames.end());
      conn.outbox->frames.clear();
    }
    finished.swap(conn.outbox->finished_tags);
  }
  for (uint16_t tag : finished) conn.inflight.erase(tag);
}

bool ServiceTcpServer::HandleFrame(Conn& conn, const uint8_t* data,
                                   size_t size) {
  ++frames_handled_;
  const std::span<const uint8_t> span(data, size);
  const uint16_t tag = wire::FrameTag(span);
  auto reply_error = [&](const Status& status) {
    std::vector<uint8_t> frame;
    wire::AppendError(status.code(), std::string(status.message()), &frame);
    wire::SetFrameTag(frame, tag);
    conn.out.insert(conn.out.end(), frame.begin(), frame.end());
  };
  auto decoded = wire::DecodeFrame(span);
  if (!decoded.ok()) {
    // The frame was well-delimited (magic + length already checked), so
    // the stream stays in sync: answer and carry on.
    reply_error(decoded.status());
    return true;
  }
  const wire::Frame& frame = *decoded;
  switch (frame.header.type) {
    case wire::MessageType::kHelloRequest: {
      wire::HelloInfo info;
      info.num_vertices =
          static_cast<uint32_t>(engine_->relabeled_graph().NumVertices());
      info.num_partitions = static_cast<uint32_t>(engine_->num_partitions());
      info.num_servers = 1;
      info.server_index = 0;
      info.flags = wire::kHelloSupportsQueries | wire::kHelloSupportsDeltas;
      info.graph_hash = engine_->relabeled_graph().FoldedContentHash();
      info.epoch = engine_->epoch();
      std::vector<uint8_t> reply;
      wire::AppendHelloReply(info, &reply);
      wire::SetFrameTag(reply, tag);
      conn.out.insert(conn.out.end(), reply.begin(), reply.end());
      return true;
    }
    case wire::MessageType::kQueryRequest: {
      if (draining_.load(std::memory_order_acquire)) {
        reply_error(Status::Unavailable("service is shutting down"));
        return true;
      }
      auto spec = wire::DecodeQueryRequest(frame);
      if (!spec.ok()) {
        reply_error(spec.status());
        return true;
      }
      if (conn.inflight.count(tag) != 0) {
        reply_error(Status::InvalidArgument(
            "query tag already in flight on this connection"));
        return true;
      }
      std::shared_ptr<Outbox> outbox = conn.outbox;
      // A subscribe query's first kQueryResult (the baseline, cancelled
      // flag clear) is not terminal — the tag stays in flight streaming
      // kMatchDelta frames until the terminal result (cancelled set).
      const bool subscribe = spec->want_subscribe();
      QueryDoneFn done = [this, outbox, tag,
                          subscribe](const wire::QueryResultInfo& info) {
        std::vector<uint8_t> reply;
        wire::AppendQueryResult(info, &reply);
        wire::SetFrameTag(reply, tag);
        const bool terminal = !subscribe || info.cancelled();
        PostFrame(outbox, std::move(reply), terminal ? tag : -1);
      };
      QueryProgressFn progress;
      if (spec->want_progress()) {
        progress = [this, outbox, tag](const wire::QueryProgress& p) {
          std::vector<uint8_t> reply;
          wire::AppendProgress(p, &reply);
          wire::SetFrameTag(reply, tag);
          PostFrame(outbox, std::move(reply), /*finished_tag=*/-1);
        };
      }
      QueryDeltaFn on_delta;
      if (subscribe) {
        on_delta = [this, outbox, tag](const wire::MatchDelta& delta) {
          std::vector<uint8_t> reply;
          wire::AppendMatchDelta(delta, &reply);
          wire::SetFrameTag(reply, tag);
          PostFrame(outbox, std::move(reply), /*finished_tag=*/-1);
        };
      }
      auto id = engine_->Submit(conn.session, *spec, std::move(done),
                                std::move(progress), std::move(on_delta));
      if (!id.ok()) {
        reply_error(id.status());
        return true;
      }
      conn.inflight.emplace(tag, *id);
      // A degenerate query may have completed inside Submit: its result
      // is already sitting in the outbox; the drain below delivers it.
      DrainOutbox(conn);
      return true;
    }
    case wire::MessageType::kCancelRequest: {
      if (auto valid = wire::DecodeCancelRequest(frame); !valid.ok()) {
        reply_error(valid);
        return true;
      }
      auto it = conn.inflight.find(tag);
      if (it == conn.inflight.end()) {
        reply_error(Status::NotFound(
            "no in-flight query with this tag (already answered?)"));
        return true;
      }
      if (draining_.load(std::memory_order_acquire)) {
        reply_error(Status::Unavailable("service is shutting down"));
        return true;
      }
      // Cancel() returning false means the query finalized concurrently:
      // its terminal frame is already posted, so the client gets its
      // answer either way.
      engine_->Cancel(it->second);
      DrainOutbox(conn);
      return true;
    }
    case wire::MessageType::kApplyDelta: {
      if (draining_.load(std::memory_order_acquire)) {
        reply_error(Status::Unavailable("service is shutting down"));
        return true;
      }
      uint64_t target = 0;
      std::vector<EdgeDelta> ops;
      if (Status s = wire::DecodeApplyDelta(frame, &target, &ops);
          !s.ok()) {
        reply_error(s);
        return true;
      }
      if (Status s = engine_->StageDelta(target, ops); !s.ok()) {
        reply_error(s);
        return true;
      }
      std::vector<uint8_t> reply;
      wire::AppendDeltaAck(engine_->epoch(), &reply);
      wire::SetFrameTag(reply, tag);
      conn.out.insert(conn.out.end(), reply.begin(), reply.end());
      return true;
    }
    case wire::MessageType::kEpochAdvance: {
      if (draining_.load(std::memory_order_acquire)) {
        reply_error(Status::Unavailable("service is shutting down"));
        return true;
      }
      auto target = wire::DecodeEpochAdvance(frame);
      if (!target.ok()) {
        reply_error(target.status());
        return true;
      }
      // The commit runs the subscription delta passes right here on the
      // loop thread; their kMatchDelta frames land in subscriber
      // outboxes and are flushed by the wake-pipe nudge each PostFrame
      // issued (this connection's own frames drain below as usual).
      auto epoch = engine_->CommitEpoch(*target);
      if (!epoch.ok()) {
        reply_error(epoch.status());
        return true;
      }
      std::vector<uint8_t> reply;
      wire::AppendDeltaAck(*epoch, &reply);
      wire::SetFrameTag(reply, tag);
      conn.out.insert(conn.out.end(), reply.begin(), reply.end());
      DrainOutbox(conn);
      return true;
    }
    case wire::MessageType::kStatsRequest: {
      wire::ServerStats stats;
      stats.requests = frames_handled_;
      const QueryEngine::EngineStats es = engine_->stats();
      stats.keys_served = es.admitted;
      stats.bytes_sent = es.completed;
      std::vector<uint8_t> reply;
      wire::AppendStatsReply(stats, &reply);
      wire::SetFrameTag(reply, tag);
      conn.out.insert(conn.out.end(), reply.begin(), reply.end());
      return true;
    }
    default:
      reply_error(Status::InvalidArgument(
          "frame type not handled by the enumeration service"));
      return true;
  }
}

bool ServiceTcpServer::ServeReadable(int fd, Conn& conn) {
  uint8_t chunk[64 * 1024];
  bool peer_closed = false;
  for (;;) {
    const ssize_t n = recv(fd, chunk, sizeof(chunk), 0);
    if (n > 0) {
      conn.in.insert(conn.in.end(), chunk, chunk + n);
      continue;
    }
    if (n == 0) {
      peer_closed = true;
      break;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    return false;
  }
  for (;;) {
    const size_t avail = conn.in.size() - conn.in_pos;
    if (avail < wire::kHeaderBytes) break;
    const uint8_t* p = conn.in.data() + conn.in_pos;
    if (ReadU32(p) != wire::kMagic) return false;  // cannot delimit
    const uint32_t payload = ReadU32(p + 12);
    if (payload > kMaxPayload) return false;
    const size_t frame_bytes = wire::kHeaderBytes + payload;
    if (avail < frame_bytes) break;
    if (!HandleFrame(conn, p, frame_bytes)) return false;
    conn.in_pos += frame_bytes;
  }
  if (conn.in_pos == conn.in.size()) {
    conn.in.clear();
    conn.in_pos = 0;
  } else if (conn.in_pos > (1u << 20)) {
    conn.in.erase(conn.in.begin(),
                  conn.in.begin() + static_cast<ptrdiff_t>(conn.in_pos));
    conn.in_pos = 0;
  }
  DrainOutbox(conn);
  if (!FlushWrites(fd, conn)) return false;
  // A half-closed peer with queries still in flight keeps the write
  // side alive until their terminal frames are flushed.
  return !(peer_closed && conn.inflight.empty() &&
           conn.out_pos == conn.out.size());
}

bool ServiceTcpServer::FlushWrites(int fd, Conn& conn) {
  while (conn.out_pos < conn.out.size()) {
    const ssize_t n = send(fd, conn.out.data() + conn.out_pos,
                           conn.out.size() - conn.out_pos, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        if (!conn.want_write) {
          epoll_event ev{};
          ev.events = EPOLLIN | EPOLLOUT;
          ev.data.fd = fd;
          if (epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &ev) < 0) return false;
          conn.want_write = true;
        }
        return true;
      }
      return false;
    }
    conn.out_pos += static_cast<size_t>(n);
  }
  conn.out.clear();
  conn.out_pos = 0;
  if (conn.want_write) {
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = fd;
    if (epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &ev) < 0) return false;
    conn.want_write = false;
  }
  return true;
}

void ServiceTcpServer::CloseConn(int fd) {
  auto it = conns_.find(fd);
  if (it != conns_.end()) {
    {
      std::lock_guard<std::mutex> lk(it->second.outbox->mu);
      it->second.outbox->closed = true;
    }
    // The session dies with its connection: results could no longer be
    // delivered, so stop burning compute on its queries.
    if (engine_ != nullptr) engine_->CancelSession(it->second.session);
  }
  epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
  net::CloseFd(fd);
  conns_.erase(fd);
}

void ServiceTcpServer::EventLoop() {
  epoll_event events[64];
  for (;;) {
    const int n = epoll_wait(epoll_fd_, events, 64, -1);
    if (n < 0) {
      if (errno == EINTR) continue;
      return;
    }
    for (int i = 0; i < n; ++i) {
      const int fd = events[i].data.fd;
      if (fd == wake_fds_[0]) {
        uint8_t drain[256];
        while (read(wake_fds_[0], drain, sizeof(drain)) > 0) {
        }
        if (stopping_.load(std::memory_order_acquire)) return;
        // Outbox nudge: splice every connection's pending frames and
        // flush (connections are few; a scan beats bookkeeping).
        std::vector<int> dead;
        for (auto& [cfd, conn] : conns_) {
          DrainOutbox(conn);
          if (!FlushWrites(cfd, conn)) dead.push_back(cfd);
        }
        for (int cfd : dead) CloseConn(cfd);
        continue;
      }
      if (fd == listen_fd_) {
        AcceptReady();
        continue;
      }
      auto it = conns_.find(fd);
      if (it == conns_.end()) continue;
      Conn& conn = it->second;
      bool alive = true;
      if (events[i].events & (EPOLLHUP | EPOLLERR)) alive = false;
      if (alive && (events[i].events & EPOLLOUT)) {
        alive = FlushWrites(fd, conn);
      }
      if (alive && (events[i].events & EPOLLIN)) {
        alive = ServeReadable(fd, conn);
      }
      if (!alive) CloseConn(fd);
    }
  }
}

void ServiceTcpServer::Stop() {
  if (stopping_.exchange(true, std::memory_order_acq_rel)) {
    if (loop_thread_.joinable()) loop_thread_.join();
    return;
  }
  if (wake_fds_[1] >= 0) {
    const uint8_t byte = 1;
    ssize_t rc;
    do {
      rc = write(wake_fds_[1], &byte, 1);
    } while (rc < 0 && errno == EINTR);
  }
  if (loop_thread_.joinable()) loop_thread_.join();
  for (auto& [fd, conn] : conns_) {
    std::lock_guard<std::mutex> lk(conn.outbox->mu);
    conn.outbox->closed = true;
  }
  for (auto& [fd, conn] : conns_) net::CloseFd(fd);
  conns_.clear();
  if (listen_fd_ >= 0) {
    net::CloseFd(listen_fd_);
    listen_fd_ = -1;
  }
  for (int& fd : wake_fds_) {
    if (fd >= 0) {
      net::CloseFd(fd);
      fd = -1;
    }
  }
  if (epoll_fd_ >= 0) {
    net::CloseFd(epoll_fd_);
    epoll_fd_ = -1;
  }
}

}  // namespace benu::service
