#include "service/query_engine.h"

#include <algorithm>
#include <utility>

#include "common/logging.h"
#include "common/metrics.h"
#include "distributed/task.h"
#include "graph/patterns.h"
#include "plan/filters.h"
#include "plan/plan_search.h"

namespace benu::service {

// --- FairScheduler ----------------------------------------------------

void FairScheduler::Add(uint64_t session, uint64_t query) {
  for (SessionQueue& s : sessions_) {
    if (s.session == session) {
      s.queries.push_back(query);
      return;
    }
  }
  sessions_.push_back(SessionQueue{session, {query}});
}

void FairScheduler::Remove(uint64_t query) {
  for (auto s = sessions_.begin(); s != sessions_.end(); ++s) {
    for (auto q = s->queries.begin(); q != s->queries.end(); ++q) {
      if (*q == query) {
        s->queries.erase(q);
        if (s->queries.empty()) sessions_.erase(s);
        return;
      }
    }
  }
}

bool FairScheduler::Next(uint64_t* query) {
  if (sessions_.empty()) return false;
  SessionQueue& s = sessions_.front();
  *query = s.queries.front();
  // Rotate the session's internal rotor, then the session rotor: the
  // next turn goes to the next session, and this session's next turn
  // goes to its next query.
  s.queries.push_back(s.queries.front());
  s.queries.pop_front();
  sessions_.push_back(std::move(sessions_.front()));
  sessions_.pop_front();
  return true;
}

size_t FairScheduler::size() const {
  size_t n = 0;
  for (const SessionQueue& s : sessions_) n += s.queries.size();
  return n;
}

// --- QueryEngine ------------------------------------------------------

QueryEngine::QueryEngine(Graph graph, const ServiceConfig& config,
                         std::vector<int> data_labels)
    : config_(config),
      graph_(std::move(graph)),
      data_labels_(std::move(data_labels)),
      data_stats_(DataGraphStats::FromGraph(graph_)) {
  auto& registry = metrics::MetricsRegistry::Global();
  admitted_counter_ = registry.GetCounter(
      "service.query.admitted", "1", "queries that passed admission");
  rejected_counter_ = registry.GetCounter(
      "service.query.rejected", "1",
      "queries refused at submit (malformed spec or admission control)");
  cancelled_counter_ = registry.GetCounter(
      "service.query.cancelled", "1", "active queries cancelled");
  completed_counter_ = registry.GetCounter(
      "service.query.completed", "1", "queries that ran to completion");
  tasks_counter_ = registry.GetCounter(
      "service.tasks.executed", "1",
      "search tasks executed by the service's shared pool");
  plan_hit_counter_ = registry.GetCounter(
      "service.plan_cache.hits", "1", "queries served by a cached plan");
  plan_miss_counter_ = registry.GetCounter(
      "service.plan_cache.misses", "1",
      "queries that ran plan search and populated the cache");
  latency_us_ = registry.GetHistogram(
      "service.query.latency_us", "us",
      "admission-to-completion latency of finished queries (traced)");
}

StatusOr<std::unique_ptr<QueryEngine>> QueryEngine::Create(
    const Graph& data_graph, const ServiceConfig& config,
    std::shared_ptr<Transport> transport, std::vector<int> data_labels) {
  if (!data_labels.empty() &&
      data_labels.size() != data_graph.NumVertices()) {
    return Status::InvalidArgument(
        "data_labels must hold one label per data vertex");
  }
  std::vector<VertexId> old_to_new;
  Graph relabeled = config.relabel_by_degree
                        ? data_graph.RelabelByDegree(&old_to_new)
                        : data_graph;
  if (transport != nullptr) {
    if (transport->num_vertices() != data_graph.NumVertices()) {
      return Status::InvalidArgument(
          "transport stores " + std::to_string(transport->num_vertices()) +
          " vertices but the data graph has " +
          std::to_string(data_graph.NumVertices()));
    }
    // Same labeling handshake as RunBenu: the transport must attest (via
    // its hello graph hash) that it stores the labeling the engine will
    // enumerate under, or every fetch would silently return the wrong
    // adjacency set.
    const uint32_t remote_hash = transport->graph_hash();
    const uint32_t local_hash = relabeled.FoldedContentHash();
    if (remote_hash == 0) {
      if (config.relabel_by_degree) {
        return Status::InvalidArgument(
            "relabel_by_degree needs a transport that attests its graph "
            "labeling (hello graph hash): relabel the graph first, build "
            "the transport from it, and disable relabel_by_degree");
      }
    } else if (remote_hash != local_hash) {
      return Status::InvalidArgument(
          "transport stores a differently-labeled graph (hash mismatch): "
          "serve the degree-relabeled graph (benu_kv_server --relabel=1) "
          "or disable relabel_by_degree");
    }
  }
  if (!data_labels.empty() && config.relabel_by_degree) {
    std::vector<int> permuted(data_labels.size());
    for (VertexId v = 0; v < data_graph.NumVertices(); ++v) {
      permuted[old_to_new[v]] = data_labels[v];
    }
    data_labels = std::move(permuted);
  }
  std::unique_ptr<QueryEngine> engine(new QueryEngine(
      std::move(relabeled), config, std::move(data_labels)));
  // Kept so StageDelta can map delta endpoints (original ids on the
  // wire) into the engine's frozen relabeling.
  engine->old_to_new_ = std::move(old_to_new);
  BENU_RETURN_IF_ERROR(engine->Start(std::move(transport)));
  return engine;
}

Status QueryEngine::Start(std::shared_ptr<Transport> transport) {
  governor_ = std::make_unique<MemoryGovernor>(config_.memory_budget_bytes,
                                               config_.prefetch_budget,
                                               config_.prefetch_batch_size);
  // The store is always versioned: with an empty overlay (no epochs
  // committed) it passes base payloads through unchanged, so one-shot
  // service behavior is identical to the plain store it replaced.
  if (transport == nullptr) {
    transport = MakeSimulatedTransport(graph_, config_.db_partitions,
                                       config_.compress_adjacency);
  }
  vstore_ = std::make_unique<VersionedAdjacencyStore>(std::move(transport));
  store_ = vstore_.get();
  if (config_.prefetch_budget > 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    fetch_pool_ = std::make_unique<ThreadPool>(
        std::max<size_t>(1, std::min<size_t>(2, hw > 0 ? hw : 1)));
  }
  cache_ = std::make_unique<DbCache>(
      store_, config_.db_cache_bytes, /*num_shards=*/8,
      fetch_pool_.get(), config_.prefetch_batch_size, governor_.get());
  provider_ = std::make_unique<CachedAdjacencyProvider>(
      cache_.get(), graph_.NumVertices(), config_.prefetch_budget,
      governor_.get());
  const unsigned hw = std::thread::hardware_concurrency();
  num_threads_ = config_.execution_threads > 0
                     ? static_cast<size_t>(config_.execution_threads)
                     : std::max<size_t>(1, hw > 0 ? hw : 1);
  threads_.reserve(num_threads_);
  for (size_t i = 0; i < num_threads_; ++i) {
    threads_.emplace_back([this, i] { WorkerLoop(i); });
  }
  return Status::OK();
}

QueryEngine::~QueryEngine() {
  // Cancel everything still active, then stop the workers. In-flight
  // tasks see the cancel flag and unwind; their done callbacks fire from
  // MaybeFinalize before the workers exit (queries with nothing in
  // flight finalize right here).
  {
    std::lock_guard<std::mutex> lk(mu_);
    // Subscriptions end first: their terminal results (cancelled flag,
    // last maintained total) flush before the engine dies.
    std::vector<uint64_t> sub_ids;
    for (const auto& [id, sub] : subs_) sub_ids.push_back(id);
    for (uint64_t id : sub_ids) {
      auto sit = subs_.find(id);
      if (sit == subs_.end()) continue;
      Subscription sub = std::move(sit->second);
      subs_.erase(sit);
      TerminateSubscription(std::move(sub));
    }
    std::vector<uint64_t> ids;
    ids.reserve(actives_.size());
    for (const auto& [id, q] : actives_) ids.push_back(id);
    for (uint64_t id : ids) {
      auto it = actives_.find(id);
      if (it == actives_.end()) continue;
      ActiveQuery* q = it->second.get();
      if (!q->cancelled.exchange(true, std::memory_order_relaxed)) {
        ++stats_.cancelled;
        cancelled_counter_->Add(1);
      }
      if (q->in_scheduler) {
        sched_.Remove(id);
        q->in_scheduler = false;
      }
      MaybeFinalize(id, q);
    }
    stop_ = true;
    work_cv_.notify_all();
  }
  for (std::thread& t : threads_) t.join();
  // Any query whose last in-flight task raced the stop flag: finalize
  // now that every worker is gone.
  {
    std::lock_guard<std::mutex> lk(mu_);
    std::vector<uint64_t> ids;
    for (const auto& [id, q] : actives_) ids.push_back(id);
    for (uint64_t id : ids) {
      auto it = actives_.find(id);
      if (it != actives_.end()) {
        it->second->in_flight = 0;
        MaybeFinalize(id, it->second.get());
      }
    }
  }
}

Status QueryEngine::Reject(Status status) {
  std::lock_guard<std::mutex> lk(mu_);
  ++stats_.rejected;
  rejected_counter_->Add(1);
  return status;
}

StatusOr<std::shared_ptr<const QueryEngine::PlanEntry>> QueryEngine::PlanFor(
    const wire::QuerySpec& spec, bool* cache_hit) {
  // Cache key: pattern name, the plan-shaping option bits, and the
  // pattern labels. Symmetry-breaking constraints are a pure function of
  // (pattern, labels) — computed inside GenerateBestPlan — so they are
  // covered by construction; the progress bit shapes nothing and is
  // excluded.
  std::string key = spec.pattern;
  key.push_back('\0');
  key += std::to_string(spec.options &
                        (wire::kQueryVcbc | wire::kQueryDegreeFilter));
  for (int32_t label : spec.pattern_labels) {
    key.push_back('\0');
    key += std::to_string(label);
  }
  // plan_mu_ is held across plan search: concurrent submits of the same
  // new key then cost one search instead of racing duplicates, and plan
  // search for the catalog's ≤5-vertex patterns is milliseconds.
  std::lock_guard<std::mutex> lk(plan_mu_);
  auto it = plan_cache_.find(key);
  if (it != plan_cache_.end()) {
    *cache_hit = true;
    plan_hit_counter_->Add(1);
    ++plan_hits_;
    return it->second;
  }
  *cache_hit = false;
  auto pattern = GetPattern(spec.pattern);
  BENU_RETURN_IF_ERROR(pattern.status());
  if (!spec.pattern_labels.empty()) {
    if (data_labels_.empty()) {
      return Status::FailedPrecondition(
          "labeled query on a service started without data labels");
    }
    if (spec.pattern_labels.size() != pattern->NumVertices()) {
      return Status::InvalidArgument(
          "pattern has " + std::to_string(pattern->NumVertices()) +
          " vertices but the query carries " +
          std::to_string(spec.pattern_labels.size()) + " labels");
    }
  }
  PlanSearchOptions options;
  options.apply_vcbc = spec.want_vcbc();
  options.apply_degree_filter = spec.want_degree_filter();
  options.pattern_labels.assign(spec.pattern_labels.begin(),
                                spec.pattern_labels.end());
  auto searched = GenerateBestPlan(*pattern, data_stats_, options);
  BENU_RETURN_IF_ERROR(searched.status());
  auto entry = std::make_shared<PlanEntry>();
  entry->plan = std::move(searched->plan);
  entry->cost = searched->cost;
  if (entry->plan.UsesDegreeFilters()) {
    entry->degree_floors =
        ComputeDegreeFloors(graph_, entry->plan.pattern.MaxDegree());
  }
  entry->tasks =
      GenerateSearchTasks(graph_, entry->plan, config_.task_split_threshold);
  // Compile-check the plan against this engine's provider/labels once,
  // here, so a plan the executor cannot run is a submit-time rejection
  // instead of a worker-thread abort.
  TriangleCache probe_tcache(0);
  auto probe = PlanExecutor::Create(
      &entry->plan, provider_.get(), &probe_tcache,
      entry->degree_floors.empty() ? nullptr : &entry->degree_floors,
      entry->plan.UsesLabelFilters() ? &data_labels_ : nullptr);
  BENU_RETURN_IF_ERROR(probe.status());
  plan_miss_counter_->Add(1);
  ++plan_misses_;
  std::shared_ptr<const PlanEntry> shared = std::move(entry);
  plan_cache_.emplace(std::move(key), shared);
  return shared;
}

StatusOr<uint64_t> QueryEngine::Submit(uint64_t session,
                                       const wire::QuerySpec& spec,
                                       QueryDoneFn done,
                                       QueryProgressFn progress,
                                       QueryDeltaFn on_delta) {
  std::shared_ptr<const IncrementalPlanSet> inc;
  if (spec.want_subscribe()) {
    // Incremental maintenance needs every match materialized (retraction
    // mirrors matches one by one) and an unlabeled pattern; reject the
    // incompatible option bits up front.
    if (spec.want_vcbc()) {
      return Reject(Status::InvalidArgument(
          "kQuerySubscribe is incompatible with kQueryVcbc: delta "
          "maintenance needs full, uncompressed matches"));
    }
    if (!spec.pattern_labels.empty()) {
      return Reject(Status::InvalidArgument(
          "kQuerySubscribe does not support labeled patterns"));
    }
    auto pattern = GetPattern(spec.pattern);
    if (!pattern.ok()) return Reject(pattern.status());
    auto plans = GenerateIncrementalPlans(*pattern);
    if (!plans.ok()) return Reject(plans.status());
    inc = std::make_shared<const IncrementalPlanSet>(*std::move(plans));
  }
  bool cache_hit = false;
  auto plan = PlanFor(spec, &cache_hit);
  if (!plan.ok()) return Reject(plan.status());
  if (config_.max_plan_cost > 0) {
    const double cost =
        (*plan)->cost.communication + (*plan)->cost.computation;
    if (cost > config_.max_plan_cost) {
      return Reject(Status::ResourceExhausted(
          "estimated plan cost " + std::to_string(cost) +
          " exceeds the service's max_plan_cost budget"));
    }
  }
  std::lock_guard<std::mutex> lk(mu_);
  if (stop_) {
    ++stats_.rejected;
    rejected_counter_->Add(1);
    return Status::Unavailable("service is shutting down");
  }
  if (actives_.size() >= config_.max_active_queries) {
    ++stats_.rejected;
    rejected_counter_->Add(1);
    return Status::ResourceExhausted(
        "active-query cap reached (" +
        std::to_string(config_.max_active_queries) + ")");
  }
  size_t reserved = 0;
  if (config_.per_query_reserve_bytes > 0) {
    const size_t want = config_.per_query_reserve_bytes;
    if (governor_->GrantFrontierLease(want) < want) {
      ++stats_.rejected;
      rejected_counter_->Add(1);
      return Status::ResourceExhausted(
          "per-query byte reservation denied by the memory governor");
    }
    // Pin the reservation so subsequent admissions (and the hybrid
    // executors' own leases) see it; released at finalization.
    governor_->AddFrontierPinned(static_cast<int64_t>(want));
    reserved = want;
  }
  const uint64_t id = next_query_id_++;
  auto q = std::make_unique<ActiveQuery>();
  q->id = id;
  q->session = session;
  q->spec = spec;
  q->plan = std::move(plan).value();
  q->plan_cache_hit = cache_hit;
  q->reserved_bytes = reserved;
  q->done = std::move(done);
  q->progress = std::move(progress);
  q->on_delta = std::move(on_delta);
  q->inc = std::move(inc);
  q->contexts.resize(num_threads_);
  ++stats_.admitted;
  admitted_counter_->Add(1);
  ActiveQuery* qp = q.get();
  actives_.emplace(id, std::move(q));
  if (qp->plan->tasks.empty()) {
    // Degenerate (empty graph): nothing to run, complete immediately —
    // the done callback fires inside this Submit.
    MaybeFinalize(id, qp);
    return id;
  }
  qp->in_scheduler = true;
  sched_.Add(session, id);
  work_cv_.notify_all();
  return id;
}

void QueryEngine::WorkerLoop(size_t thread) {
  std::unique_lock<std::mutex> lk(mu_);
  for (;;) {
    uint64_t qid = 0;
    for (;;) {
      if (stop_) return;
      if (sched_.Next(&qid)) break;
      work_cv_.wait(lk);
    }
    // Scheduler invariant: a query in the rotor is active, uncancelled
    // and has unclaimed tasks.
    auto it = actives_.find(qid);
    BENU_CHECK(it != actives_.end()) << "scheduled query not active";
    ActiveQuery* q = it->second.get();
    const size_t task_index = q->next_task++;
    ++q->in_flight;
    if (q->next_task == q->plan->tasks.size()) {
      sched_.Remove(qid);
      q->in_scheduler = false;
    }
    lk.unlock();
    RunOneTask(thread, q, task_index);
    lk.lock();
    --q->in_flight;
    ++q->done_tasks;
    QueryContext* ctx = q->contexts[thread].get();
    const Count total = ctx->consumer->matches();
    q->matches_so_far += total - ctx->reported_matches;
    ctx->reported_matches = total;
    tasks_counter_->Add(1);
    if (q->progress && q->spec.want_progress() &&
        config_.progress_interval_tasks > 0 &&
        q->done_tasks % config_.progress_interval_tasks == 0 &&
        q->done_tasks < q->plan->tasks.size() &&
        !q->cancelled.load(std::memory_order_relaxed)) {
      wire::QueryProgress p;
      p.tasks_done = q->done_tasks;
      p.tasks_total = q->plan->tasks.size();
      p.matches_so_far = q->matches_so_far;
      q->progress(p);
    }
    MaybeFinalize(qid, q);
  }
}

void QueryEngine::RunOneTask(size_t thread, ActiveQuery* q,
                             size_t task_index) {
  std::unique_ptr<QueryContext>& slot = q->contexts[thread];
  if (slot == nullptr) {
    auto ctx = std::make_unique<QueryContext>();
    ctx->tcache = std::make_unique<TriangleCache>();
    ctx->consumer = std::make_unique<CountingConsumer>(q->plan->plan);
    auto exec = PlanExecutor::Create(
        &q->plan->plan, provider_.get(), ctx->tcache.get(),
        q->plan->degree_floors.empty() ? nullptr : &q->plan->degree_floors,
        q->plan->plan.UsesLabelFilters() ? &data_labels_ : nullptr);
    // PlanFor compile-checked this exact combination at admission.
    BENU_CHECK(exec.ok()) << exec.status().message();
    ctx->executor = std::move(exec).value();
    ctx->executor->SetCancelFlag(&q->cancelled);
    slot = std::move(ctx);
  }
  slot->executor->RunTask(q->plan->tasks[task_index], slot->consumer.get());
}

void QueryEngine::MaybeFinalize(uint64_t id, ActiveQuery* q) {
  if (q->finalized || q->in_flight > 0) return;
  const bool cancelled = q->cancelled.load(std::memory_order_relaxed);
  if (!cancelled && q->next_task < q->plan->tasks.size()) return;
  q->finalized = true;
  wire::QueryResultInfo info;
  Count matches = 0;
  Count codes = 0;
  for (const auto& ctx : q->contexts) {
    if (ctx != nullptr) {
      matches += ctx->consumer->matches();
      codes += ctx->consumer->codes();
    }
  }
  info.matches = matches;
  info.codes = codes;
  info.tasks = q->done_tasks;
  info.elapsed_us = static_cast<uint64_t>(q->watch.ElapsedMicros());
  if (cancelled) info.flags |= wire::kQueryResultCancelled;
  if (q->plan_cache_hit) info.flags |= wire::kQueryResultPlanCacheHit;
  if (q->reserved_bytes > 0) {
    governor_->AddFrontierPinned(-static_cast<int64_t>(q->reserved_bytes));
  }
  if (!cancelled) {
    ++stats_.completed;
    completed_counter_->Add(1);
  }
  // Latency is clock-derived: recorded only under tracing so untraced
  // metrics snapshots stay byte-deterministic (the repo convention).
  if (metrics::TracingEnabled()) latency_us_->Record(info.elapsed_us);
  auto node = actives_.extract(id);
  BENU_CHECK(!node.empty());
  drain_cv_.notify_all();
  if (!cancelled && node.mapped()->spec.want_subscribe()) {
    // The baseline of a subscribe query completed: promote it to a live
    // subscription at the current epoch. The baseline done fires below
    // (cancelled flag clear — non-terminal per the QueryDoneFn contract);
    // the terminal fire comes from TerminateSubscription.
    ActiveQuery* q = node.mapped().get();
    Subscription sub;
    sub.id = id;
    sub.session = q->session;
    sub.spec = q->spec;
    sub.inc = q->inc;
    sub.total = info.matches;
    sub.watch = q->watch;
    sub.done = q->done;
    sub.on_delta = q->on_delta;
    subs_.emplace(id, std::move(sub));
  }
  if (node.mapped()->done) node.mapped()->done(info);
}

void QueryEngine::TerminateSubscription(Subscription sub) {
  ++stats_.cancelled;
  cancelled_counter_->Add(1);
  wire::QueryResultInfo info;
  info.matches = sub.total;  // the last maintained total
  info.elapsed_us = static_cast<uint64_t>(sub.watch.ElapsedMicros());
  info.flags = wire::kQueryResultCancelled;
  if (sub.done) sub.done(info);
}

bool QueryEngine::Cancel(uint64_t query_id) {
  std::lock_guard<std::mutex> lk(mu_);
  if (auto sit = subs_.find(query_id); sit != subs_.end()) {
    Subscription sub = std::move(sit->second);
    subs_.erase(sit);
    TerminateSubscription(std::move(sub));
    return true;
  }
  auto it = actives_.find(query_id);
  if (it == actives_.end() || it->second->finalized) return false;
  ActiveQuery* q = it->second.get();
  if (!q->cancelled.exchange(true, std::memory_order_relaxed)) {
    ++stats_.cancelled;
    cancelled_counter_->Add(1);
  }
  if (q->in_scheduler) {
    sched_.Remove(query_id);
    q->in_scheduler = false;
  }
  MaybeFinalize(query_id, q);
  return true;
}

void QueryEngine::CancelSession(uint64_t session) {
  std::lock_guard<std::mutex> lk(mu_);
  std::vector<uint64_t> sub_ids;
  for (const auto& [id, sub] : subs_) {
    if (sub.session == session) sub_ids.push_back(id);
  }
  for (uint64_t id : sub_ids) {
    auto sit = subs_.find(id);
    if (sit == subs_.end()) continue;
    Subscription sub = std::move(sit->second);
    subs_.erase(sit);
    TerminateSubscription(std::move(sub));
  }
  std::vector<uint64_t> ids;
  for (const auto& [id, q] : actives_) {
    if (q->session == session) ids.push_back(id);
  }
  for (uint64_t id : ids) {
    auto it = actives_.find(id);
    if (it == actives_.end() || it->second->finalized) continue;
    ActiveQuery* q = it->second.get();
    if (!q->cancelled.exchange(true, std::memory_order_relaxed)) {
      ++stats_.cancelled;
      cancelled_counter_->Add(1);
    }
    if (q->in_scheduler) {
      sched_.Remove(id);
      q->in_scheduler = false;
    }
    MaybeFinalize(id, q);
  }
}

void QueryEngine::Drain() {
  std::unique_lock<std::mutex> lk(mu_);
  drain_cv_.wait(lk, [this] { return actives_.empty(); });
}

// --- dynamic graph (versioned store + subscriptions) ------------------

Status QueryEngine::StageDelta(uint64_t target_epoch,
                               std::span<const EdgeDelta> ops) {
  std::lock_guard<std::mutex> lk(mu_);
  if (stop_) return Status::Unavailable("service is shutting down");
  if (target_epoch != vstore_->epoch() + 1) {
    return Status::FailedPrecondition(
        "delta targets epoch " + std::to_string(target_epoch) +
        " but the engine is at epoch " + std::to_string(vstore_->epoch()) +
        " (target must be current + 1)");
  }
  const size_t n = graph_.NumVertices();
  for (const EdgeDelta& op : ops) {
    if (op.u >= n || op.v >= n) {
      return Status::InvalidArgument(
          "delta endpoint outside the data graph's vertex universe");
    }
  }
  staged_.reserve(staged_.size() + ops.size());
  for (EdgeDelta op : ops) {
    if (!old_to_new_.empty()) {
      op.u = old_to_new_[op.u];
      op.v = old_to_new_[op.v];
    }
    staged_.push_back(op);
  }
  return Status::OK();
}

namespace {

// Counting consumer of the subscription delta passes. Maintenance plans
// are raw (uncompressed), so a compressed code is a wiring bug.
class CountOnlySink : public MatchConsumer {
 public:
  void OnMatch(const std::vector<VertexId>& /*f*/) override { ++count_; }
  void OnCompressedCode(
      const std::vector<VertexId>& /*f*/,
      const std::vector<VertexSetView>& /*sets*/) override {
    BENU_CHECK(false);
  }
  Count count() const { return count_; }

 private:
  Count count_ = 0;
};

}  // namespace

Count QueryEngine::SubscriptionPass(const Subscription& sub,
                                    std::span<const EdgeDelta> delta_edges,
                                    const EdgePatch& patch) {
  Count found = 0;
  for (const IncrementalPlan& ip : sub.inc->plans) {
    CountOnlySink sink;
    DeltaMatchFilter filter(sub.inc.get(), ip.edge_index, &patch, &sink);
    auto executor =
        PlanExecutor::Create(&ip.plan, provider_.get(), /*tcache=*/nullptr);
    // Raw seeded plans over an unlabeled provider compile by
    // construction (validated when the plan set was generated).
    BENU_CHECK(executor.ok()) << executor.status().message();
    for (const EdgeDelta& edge : delta_edges) {
      // Both orientations: the plan's anchor (a_i, b_i) can map onto the
      // undirected delta edge either way.
      const VertexId ends[2][2] = {{edge.u, edge.v}, {edge.v, edge.u}};
      for (const auto& oriented : ends) {
        SearchTask task;
        task.start = oriented[0];
        task.seed_second = oriented[1];
        (*executor)->RunTask(task, &filter);
      }
    }
    found += sink.count();
  }
  return found;
}

StatusOr<uint64_t> QueryEngine::CommitEpoch(uint64_t target_epoch) {
  std::lock_guard<std::mutex> lk(mu_);
  if (stop_) return Status::Unavailable("service is shutting down");
  if (target_epoch != vstore_->epoch() + 1) {
    return Status::FailedPrecondition(
        "commit targets epoch " + std::to_string(target_epoch) +
        " but the engine is at epoch " + std::to_string(vstore_->epoch()) +
        " (target must be current + 1)");
  }
  if (!actives_.empty()) {
    // Mid-commit snapshot changes would give running queries a mixed
    // view; mu_ is held for the whole commit, so the converse (a query
    // admitted mid-commit) cannot happen either.
    return Status::FailedPrecondition(
        "cannot commit an epoch while queries are in flight; retry after "
        "they finish");
  }
  const EpochDelta delta = vstore_->Canonicalize(staged_);
  staged_.clear();

  // S-BENU maintenance: retract against the pre-apply snapshot, apply,
  // add against the new snapshot. Canonicalization guarantees Δ⁻ ⊆ E and
  // Δ⁺ ∩ E = ∅, so the two passes partition the changed matches.
  std::unordered_map<uint64_t, wire::MatchDelta> reports;
  if (!delta.removed.empty()) {
    const EdgePatch patch(delta.removed);
    for (const auto& [id, sub] : subs_) {
      reports[id].retracted = SubscriptionPass(sub, delta.removed, patch);
    }
  }
  const uint64_t new_epoch = vstore_->Apply(delta);
  cache_->AdvanceEpoch(new_epoch, delta.touched);
  if (!delta.inserted.empty()) {
    const EdgePatch patch(delta.inserted);
    for (const auto& [id, sub] : subs_) {
      reports[id].added = SubscriptionPass(sub, delta.inserted, patch);
    }
  }
  for (auto& [id, sub] : subs_) {
    wire::MatchDelta report = reports[id];
    report.epoch = new_epoch;
    BENU_CHECK(sub.total + report.added >= report.retracted);
    sub.total = sub.total + report.added - report.retracted;
    report.total = sub.total;
    if (sub.on_delta) sub.on_delta(report);
  }
  return new_epoch;
}

QueryEngine::EngineStats QueryEngine::stats() const {
  EngineStats out;
  {
    std::lock_guard<std::mutex> lk(mu_);
    out = stats_;
    out.active = actives_.size();
    out.subscriptions = subs_.size();
  }
  {
    std::lock_guard<std::mutex> lk(plan_mu_);
    out.plan_hits = plan_hits_;
    out.plan_misses = plan_misses_;
  }
  return out;
}

size_t QueryEngine::plan_cache_size() const {
  std::lock_guard<std::mutex> lk(plan_mu_);
  return plan_cache_.size();
}

}  // namespace benu::service
