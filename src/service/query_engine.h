#ifndef BENU_SERVICE_QUERY_ENGINE_H_
#define BENU_SERVICE_QUERY_ENGINE_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "common/stopwatch.h"
#include "common/thread_pool.h"
#include "common/wire.h"
#include "core/executor.h"
#include "core/match_consumer.h"
#include "core/memory_governor.h"
#include "graph/graph.h"
#include "plan/cost_model.h"
#include "plan/incremental.h"
#include "plan/instruction.h"
#include "storage/db_cache.h"
#include "storage/kv_store.h"
#include "storage/transport.h"
#include "storage/triangle_cache.h"
#include "storage/versioned_store.h"

namespace benu {

namespace metrics {
class Counter;
class Histogram;
}  // namespace metrics

namespace service {

/// Configuration of the resident enumeration engine. The substrate knobs
/// (partitions, cache, prefetch, compression) mirror ClusterConfig; the
/// admission knobs are service-only. docs/service.md is the operator
/// guide for all of them.
struct ServiceConfig {
  /// Virtual storage partitions of the shared DB; ignored (taken from
  /// the transport) when an external transport is given.
  size_t db_partitions = 8;
  /// Capacity of the one shared DbCache, bytes of resident adjacency.
  size_t db_cache_bytes = 64u << 20;
  /// Engine execution threads (the one shared pool all queries run on).
  /// 0 = hardware concurrency.
  int execution_threads = 0;
  /// Task-splitting degree threshold τ (distributed/task.h). Smaller
  /// values split heavy start vertices into more subtasks — finer
  /// round-robin interleaving across queries and faster cancel unwind,
  /// at slightly more per-task overhead.
  uint32_t task_split_threshold = 64;
  /// Per-ENU prefetch budget in keys (0 disables the async pipeline).
  size_t prefetch_budget = 0;
  /// Multi-get batch size of the background fetchers.
  size_t prefetch_batch_size = 16;
  /// Serve delta+varint encoded adjacency (only used when the engine
  /// builds its own simulated transport).
  bool compress_adjacency = true;
  /// Relabel the data graph by (degree, id) at startup so ids realize
  /// the symmetry-breaking total order ≺ (must match how one-shot
  /// benu_driver runs are configured for count equality).
  bool relabel_by_degree = true;

  // --- admission control ----------------------------------------------

  /// Hard cap on queries admitted and not yet finished; a Submit beyond
  /// it is rejected with kResourceExhausted.
  size_t max_active_queries = 8;
  /// Ceiling of the engine's MemoryGovernor (cache residency + frontier
  /// regions + per-query reservations). 0 = no ceiling: byte-budget
  /// admission never rejects.
  size_t memory_budget_bytes = 0;
  /// Bytes reserved (pinned against the governor) per admitted query;
  /// a query whose reservation the governor will not grant in full is
  /// rejected. The governor leases at most a quarter of its usable
  /// headroom per request, so keep this under ~20% of
  /// memory_budget_bytes or every query is rejected. 0 disables
  /// byte-budget admission.
  size_t per_query_reserve_bytes = 0;
  /// Compute budget: a query whose estimated plan cost (communication +
  /// computation, plan/cost_model.h units) exceeds this is rejected.
  /// 0 = no compute cap.
  double max_plan_cost = 0;

  /// Emit a progress callback every this many finished tasks (for
  /// queries that asked for progress). 0 disables progress entirely.
  uint64_t progress_interval_tasks = 16;
};

/// Two-level fair rotor over the runnable queries: sessions rotate
/// round-robin, and within a session its queries rotate round-robin, so
/// one session with many queued queries cannot starve a session with
/// one, and no query of a session starves its siblings. Next() returns
/// the query whose turn it is and advances both rotors; a query stays in
/// the rotor until Remove()d (when its last task is claimed or it is
/// cancelled). Not thread-safe — the engine calls it under its lock;
/// standalone so tests can pin the ordering.
class FairScheduler {
 public:
  /// Registers a runnable query. A new session enters the rotation at
  /// the back (it waits at most one full round for its first turn).
  void Add(uint64_t session, uint64_t query);

  /// Drops the query; its session leaves the rotation when empty.
  void Remove(uint64_t query);

  /// The next (session, query) turn, advancing the rotors. False iff no
  /// query is registered.
  bool Next(uint64_t* query);

  size_t size() const;
  bool empty() const { return sessions_.empty(); }

 private:
  struct SessionQueue {
    uint64_t session;
    std::deque<uint64_t> queries;
  };
  std::deque<SessionQueue> sessions_;
};

/// Completion callback: the outcome of an admitted query. Runs on an
/// engine worker thread (or inside Submit for a query with no tasks)
/// with the engine lock held — it must not call back into the engine;
/// post the result elsewhere and return. For one-shot queries it fires
/// exactly once (terminal). For subscribe queries (kQuerySubscribe) it
/// fires once with the baseline count (cancelled flag clear — NOT
/// terminal) and once more when the subscription ends (cancel, session
/// teardown or engine shutdown; cancelled flag set — terminal, carrying
/// the last maintained total). A subscribe query cancelled before its
/// baseline finishes fires once, cancelled, terminal.
using QueryDoneFn = std::function<void(const wire::QueryResultInfo&)>;
/// Progress callback, same threading/reentrancy contract as QueryDoneFn.
using QueryProgressFn = std::function<void(const wire::QueryProgress&)>;
/// Per-epoch match-delta callback of a subscribe query: fires inside
/// CommitEpoch (on its caller's thread) with the engine lock held, once
/// per subscription per committed epoch. Same reentrancy contract.
using QueryDeltaFn = std::function<void(const wire::MatchDelta&)>;

/// The resident enumeration engine behind benu_service: one shared data
/// graph, one shared DistributedKvStore + DbCache, one shared execution
/// thread pool and one MemoryGovernor, serving many concurrent pattern
/// queries. Each admitted query is planned (or served from the plan
/// cache), expanded into its search tasks, and its tasks interleaved
/// with every other active query's under the FairScheduler; counts are
/// bit-identical to a one-shot RunBenu over the same graph and options
/// because both sides relabel identically, generate plans from the same
/// (pattern, stats, options) inputs, and execute every generated task —
/// symmetry breaking makes the total independent of task interleaving.
///
/// Plan cache: keyed by (pattern name, vcbc flag, degree-filter flag,
/// pattern labels). The symmetry-breaking constraints are a pure
/// function of (pattern, labels) — computed inside GenerateBestPlan —
/// so they are part of the key by construction and never need to be
/// spelled out in it; see plan/symmetry_breaking.h. The progress flag is
/// deliberately NOT part of the key (it does not affect the plan).
///
/// Thread-safe: Submit/Cancel/CancelSession may be called from any
/// thread (the TCP front end calls them from its event loop).
class QueryEngine {
 public:
  /// Counters mirrored into the registry (service.*), exposed directly
  /// for tests.
  struct EngineStats {
    uint64_t admitted = 0;
    uint64_t rejected = 0;
    uint64_t cancelled = 0;  ///< cancel requests that hit an active query
    uint64_t completed = 0;  ///< queries that ran to completion
    uint64_t plan_hits = 0;
    uint64_t plan_misses = 0;
    size_t active = 0;         ///< admitted and not yet finished
    size_t subscriptions = 0;  ///< live subscribe-mode queries
  };

  /// Builds the resident substrate: relabels the graph (when configured),
  /// wraps `transport` (or builds a simulated one over the relabeled
  /// graph when null) in the shared store, and spawns the execution
  /// threads. With an external transport the same graph-hash validation
  /// as RunBenu applies: the transport must attest (hello graph hash)
  /// that it stores the labeling the engine enumerates under.
  /// `data_labels` (one per input data vertex, permuted alongside the
  /// relabeling) are required iff labeled queries will be submitted.
  static StatusOr<std::unique_ptr<QueryEngine>> Create(
      const Graph& data_graph, const ServiceConfig& config,
      std::shared_ptr<Transport> transport = nullptr,
      std::vector<int> data_labels = {});

  /// Cancels every active query, drains in-flight tasks and joins the
  /// execution threads. Pending done callbacks fire (with the cancelled
  /// flag) before the destructor returns.
  ~QueryEngine();

  QueryEngine(const QueryEngine&) = delete;
  QueryEngine& operator=(const QueryEngine&) = delete;

  /// Admits and schedules a query on behalf of `session` (the fairness
  /// domain — the TCP front end passes one id per connection). Returns
  /// the engine-wide query id, or the rejection:
  ///  - kInvalidArgument / kNotFound: malformed spec (unknown pattern,
  ///    label arity mismatch, labeled query on an unlabeled engine);
  ///  - kResourceExhausted: admission control (active-query cap, byte
  ///    reservation denied, plan cost over budget).
  /// Every rejection is counted in service.query.rejected; `done` is
  /// only ever invoked for admitted queries (see QueryDoneFn for the
  /// subscribe-mode double-fire contract). A kQuerySubscribe spec must
  /// be unlabeled and without kQueryVcbc (incremental maintenance needs
  /// full uncompressed matches) and should pass `on_delta`; after its
  /// baseline completes uncancelled it becomes a subscription that
  /// CommitEpoch maintains until Cancel()/CancelSession()/shutdown.
  StatusOr<uint64_t> Submit(uint64_t session, const wire::QuerySpec& spec,
                            QueryDoneFn done,
                            QueryProgressFn progress = nullptr,
                            QueryDeltaFn on_delta = nullptr);

  // --- dynamic graph (versioned store + subscriptions) -----------------

  /// Graph epoch of the engine's versioned store (0 = pristine base).
  uint64_t epoch() const { return vstore_->epoch(); }

  /// Stages one edge-delta batch toward `target_epoch`, which must be
  /// epoch() + 1 (kFailedPrecondition otherwise). Endpoints are in the
  /// ORIGINAL data-graph id space — the engine maps them through its
  /// degree relabeling — and must be inside the vertex universe
  /// (kInvalidArgument). Staged ops accumulate until CommitEpoch.
  Status StageDelta(uint64_t target_epoch, std::span<const EdgeDelta> ops);

  /// Commits the staged ops as `target_epoch` (= epoch() + 1): runs the
  /// S-BENU retraction pass for every subscription against the pre-apply
  /// snapshot, applies the canonicalized delta to the versioned store
  /// (replicating to delta-capable KV servers) with precise cache
  /// invalidation, runs the addition pass against the new snapshot, and
  /// fires each subscription's QueryDeltaFn with its exact MatchDelta.
  /// Serialized against query execution: refused (kFailedPrecondition)
  /// while any one-shot query is active, and no query can be admitted
  /// mid-commit, so every query sees one consistent snapshot. Returns
  /// the new epoch.
  StatusOr<uint64_t> CommitEpoch(uint64_t target_epoch);

  /// Cancels an active query: workers stop claiming its tasks, in-flight
  /// tasks unwind at their next ENU descent (PlanExecutor cancel flag),
  /// and the done callback fires with kQueryResultCancelled once the
  /// last in-flight task returns. Cancelling a live subscription ends it:
  /// the done callback fires its terminal result (cancelled flag set,
  /// matches = last maintained total). False iff no such active query or
  /// subscription (already finished or never existed).
  bool Cancel(uint64_t query_id);

  /// Cancels every active query of `session` (connection teardown).
  void CancelSession(uint64_t session);

  /// Blocks until no query is active (tests; the service uses callbacks).
  void Drain();

  EngineStats stats() const;
  const Graph& relabeled_graph() const { return graph_; }
  const MemoryGovernor& governor() const { return *governor_; }
  /// Partition count of the adjacency store (for hello replies).
  size_t num_partitions() const { return store_->num_partitions(); }
  size_t plan_cache_size() const;

 private:
  /// A planned, reusable entry of the plan cache. `tasks` is derived
  /// from (graph, plan, τ) only, so it is cached alongside the plan —
  /// admitting a repeat query costs two map lookups, no plan search and
  /// no task generation.
  struct PlanEntry {
    ExecutionPlan plan;
    PlanCost cost;
    std::vector<VertexId> degree_floors;  ///< empty unless degree filters
    std::vector<SearchTask> tasks;
  };

  /// Per-(query, worker-thread) execution context, created lazily the
  /// first time the thread claims one of the query's tasks; only that
  /// thread ever touches it until finalization (which runs strictly
  /// after the query's last task returned).
  struct QueryContext {
    std::unique_ptr<TriangleCache> tcache;
    std::unique_ptr<PlanExecutor> executor;
    std::unique_ptr<CountingConsumer> consumer;
    Count reported_matches = 0;  ///< folded into matches_so_far already
  };

  /// One admitted, not-yet-finished query. Fields are guarded by mu_
  /// except `cancelled` (polled lock-free from executor hot loops) and
  /// the per-thread contexts (single-writer, see QueryContext).
  struct ActiveQuery {
    uint64_t id = 0;
    uint64_t session = 0;
    wire::QuerySpec spec;
    std::shared_ptr<const PlanEntry> plan;
    bool plan_cache_hit = false;
    size_t next_task = 0;  ///< tasks [0, next_task) claimed
    size_t in_flight = 0;
    size_t done_tasks = 0;
    uint64_t matches_so_far = 0;
    std::atomic<bool> cancelled{false};
    bool finalized = false;
    bool in_scheduler = false;
    size_t reserved_bytes = 0;
    Stopwatch watch;
    QueryDoneFn done;
    QueryProgressFn progress;
    QueryDeltaFn on_delta;  ///< subscribe queries only
    /// Subscribe queries only: the S-BENU delta plans, generated at
    /// admission so a pattern they reject is a submit-time rejection.
    std::shared_ptr<const IncrementalPlanSet> inc;
    std::vector<std::unique_ptr<QueryContext>> contexts;  // by thread
  };

  /// A subscribe query whose baseline completed: maintained match count
  /// plus everything needed to run the per-epoch delta passes and to
  /// fire its callbacks. Guarded by mu_.
  struct Subscription {
    uint64_t id = 0;
    uint64_t session = 0;
    wire::QuerySpec spec;
    std::shared_ptr<const IncrementalPlanSet> inc;
    uint64_t total = 0;  ///< maintained match count at the current epoch
    Stopwatch watch;     ///< since admission (terminal elapsed_us)
    QueryDoneFn done;
    QueryDeltaFn on_delta;
  };

  QueryEngine(Graph graph, const ServiceConfig& config,
              std::vector<int> data_labels);
  Status Start(std::shared_ptr<Transport> transport);

  StatusOr<std::shared_ptr<const PlanEntry>> PlanFor(
      const wire::QuerySpec& spec, bool* cache_hit);
  void WorkerLoop(size_t thread);
  void RunOneTask(size_t thread, ActiveQuery* q, size_t task_index);
  /// Finalizes `q` if its last task has returned: aggregates counts,
  /// releases the reservation, erases it from the active set and fires
  /// the done callback. Caller holds mu_.
  void MaybeFinalize(uint64_t id, ActiveQuery* q);
  Status Reject(Status status);
  /// Ends the subscription (erased from subs_) and fires its terminal
  /// done callback. Caller holds mu_.
  void TerminateSubscription(Subscription sub);
  /// One seeded S-BENU pass of a subscription: enumerates the matches of
  /// the current snapshot owned by `delta_edges` (each counted exactly
  /// once via DeltaMatchFilter). Caller holds mu_.
  Count SubscriptionPass(const Subscription& sub,
                         std::span<const EdgeDelta> delta_edges,
                         const EdgePatch& patch);

  const ServiceConfig config_;
  Graph graph_;  ///< the (possibly relabeled) data graph
  std::vector<int> data_labels_;
  DataGraphStats data_stats_;
  /// Degree-relabel permutation (original id -> engine id); empty when
  /// relabel_by_degree is off. Delta endpoints arrive in original ids
  /// and are mapped through it — the relabeling is frozen at startup, so
  /// it stays a valid fixed total order as degrees drift across epochs.
  std::vector<VertexId> old_to_new_;

  // Shared substrate, teardown order: executors (threads_) die first,
  // then the cache, then the store/transport; the governor outlives the
  // cache so teardown deltas land.
  std::unique_ptr<MemoryGovernor> governor_;
  /// The versioned store (base payloads via the transport + epoch
  /// overlay). Held as the concrete type for Canonicalize/Apply; it IS
  /// the engine's DistributedKvStore.
  std::unique_ptr<VersionedAdjacencyStore> vstore_;
  DistributedKvStore* store_ = nullptr;  ///< alias of vstore_
  std::unique_ptr<ThreadPool> fetch_pool_;
  std::unique_ptr<DbCache> cache_;
  std::unique_ptr<CachedAdjacencyProvider> provider_;

  mutable std::mutex plan_mu_;
  std::map<std::string, std::shared_ptr<const PlanEntry>> plan_cache_;
  uint64_t plan_hits_ = 0;    // guarded by plan_mu_
  uint64_t plan_misses_ = 0;  // guarded by plan_mu_

  mutable std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable drain_cv_;
  bool stop_ = false;
  uint64_t next_query_id_ = 1;
  FairScheduler sched_;
  std::unordered_map<uint64_t, std::unique_ptr<ActiveQuery>> actives_;
  /// Live subscriptions (baseline done, not yet terminated).
  std::unordered_map<uint64_t, Subscription> subs_;
  /// Edge ops staged by StageDelta toward epoch() + 1, already mapped
  /// into the engine's (relabeled) id space; consumed by CommitEpoch.
  std::vector<EdgeDelta> staged_;
  EngineStats stats_;

  // service.* registry mirrors (docs/metrics.md), resolved once. The
  // latency histogram is clock-derived and therefore only recorded when
  // tracing is enabled, per the repo's determinism convention.
  metrics::Counter* admitted_counter_ = nullptr;
  metrics::Counter* rejected_counter_ = nullptr;
  metrics::Counter* cancelled_counter_ = nullptr;
  metrics::Counter* completed_counter_ = nullptr;
  metrics::Counter* tasks_counter_ = nullptr;
  metrics::Counter* plan_hit_counter_ = nullptr;
  metrics::Counter* plan_miss_counter_ = nullptr;
  metrics::Histogram* latency_us_ = nullptr;

  size_t num_threads_ = 1;
  std::vector<std::thread> threads_;
};

}  // namespace service
}  // namespace benu

#endif  // BENU_SERVICE_QUERY_ENGINE_H_
