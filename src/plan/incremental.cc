#include "plan/incremental.h"

#include <algorithm>

#include "common/logging.h"
#include "plan/plan_generator.h"
#include "plan/symmetry_breaking.h"

namespace benu {

std::vector<VertexId> GreedyMatchingOrder(const Graph& pattern,
                                          std::vector<VertexId> prefix) {
  const size_t n = pattern.NumVertices();
  std::vector<VertexId> order = std::move(prefix);
  std::vector<char> placed(n, 0);
  for (VertexId v : order) placed[v] = 1;
  if (order.empty()) {
    VertexId best = 0;
    for (VertexId v = 1; v < static_cast<VertexId>(n); ++v) {
      if (pattern.Degree(v) > pattern.Degree(best)) best = v;
    }
    order.push_back(best);
    placed[best] = 1;
  }
  while (order.size() < n) {
    VertexId best = kInvalidVertex;
    size_t best_conn = 0;
    for (VertexId v = 0; v < static_cast<VertexId>(n); ++v) {
      if (placed[v]) continue;
      size_t conn = 0;
      for (VertexId w : pattern.Adjacency(v)) {
        if (placed[w]) ++conn;
      }
      const bool better =
          best == kInvalidVertex || conn > best_conn ||
          (conn == best_conn &&
           (pattern.Degree(v) > pattern.Degree(best) ||
            (pattern.Degree(v) == pattern.Degree(best) && v < best)));
      if (better) {
        best = v;
        best_conn = conn;
      }
    }
    order.push_back(best);
    placed[best] = 1;
  }
  return order;
}

StatusOr<IncrementalPlanSet> GenerateIncrementalPlans(const Graph& pattern) {
  if (pattern.NumVertices() < 2 || !pattern.IsConnected()) {
    return Status::InvalidArgument(
        "incremental plans require a connected pattern with >= 2 vertices");
  }
  IncrementalPlanSet set;
  set.pattern = pattern;
  set.edges = pattern.Edges();  // each (first < second), CSR order
  std::sort(set.edges.begin(), set.edges.end());
  const std::vector<OrderConstraint> constraints =
      ComputeSymmetryBreakingConstraints(pattern);
  set.plans.reserve(set.edges.size());
  for (size_t i = 0; i < set.edges.size(); ++i) {
    IncrementalPlan inc;
    inc.edge_index = i;
    inc.anchor_u = set.edges[i].first;
    inc.anchor_v = set.edges[i].second;
    const std::vector<VertexId> order =
        GreedyMatchingOrder(pattern, {inc.anchor_u, inc.anchor_v});
    auto plan = GenerateRawPlan(pattern, order, constraints);
    BENU_RETURN_IF_ERROR(plan.status());
    inc.plan = *std::move(plan);
    set.plans.push_back(std::move(inc));
  }
  return set;
}

EdgePatch::EdgePatch(std::span<const EdgeDelta> ops) {
  keys_.reserve(ops.size());
  for (const EdgeDelta& op : ops) keys_.insert(Key(op.u, op.v));
}

DeltaMatchFilter::DeltaMatchFilter(const IncrementalPlanSet* set,
                                   size_t plan_index, const EdgePatch* patch,
                                   MatchConsumer* inner)
    : set_(set), plan_index_(plan_index), patch_(patch), inner_(inner) {
  BENU_CHECK(plan_index_ < set_->plans.size());
}

void DeltaMatchFilter::OnMatch(const std::vector<VertexId>& f) {
  for (size_t j = 0; j < plan_index_; ++j) {
    const auto& [a, b] = set_->edges[j];
    if (patch_->Contains(f[a], f[b])) {
      ++rejected_;
      return;
    }
  }
  ++accepted_;
  inner_->OnMatch(f);
}

void DeltaMatchFilter::OnCompressedCode(
    const std::vector<VertexId>& /*f*/,
    const std::vector<VertexSetView>& /*image_sets*/) {
  BENU_CHECK(false);  // incremental plans are generated uncompressed
}

}  // namespace benu
