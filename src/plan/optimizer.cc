#include "plan/optimizer.h"

#include <algorithm>
#include <map>
#include <vector>

#include "common/logging.h"
#include "plan/plan_generator.h"

namespace benu {
namespace {

using OperandSet = std::vector<VarRef>;  // sorted, unique

// Definition position of each variable: instruction index that defines it,
// or -1 for the V(G) pseudo-variable.
std::map<VarRef, int> DefinitionPositions(const ExecutionPlan& plan) {
  std::map<VarRef, int> defs;
  for (size_t i = 0; i < plan.instructions.size(); ++i) {
    const Instruction& ins = plan.instructions[i];
    if (ins.type != InstrType::kReport) {
      defs[ins.target] = static_cast<int>(i);
    }
  }
  return defs;
}

// All subsets of `operands` with size >= 2, as sorted vectors.
std::vector<OperandSet> SubsetsOfSizeTwoPlus(const OperandSet& operands) {
  std::vector<OperandSet> subsets;
  const size_t n = operands.size();
  if (n < 2) return subsets;
  for (uint32_t mask = 1; mask < (1u << n); ++mask) {
    if (__builtin_popcount(mask) < 2) continue;
    OperandSet subset;
    for (size_t b = 0; b < n; ++b) {
      if (mask & (1u << b)) subset.push_back(operands[b]);
    }
    subsets.push_back(std::move(subset));
  }
  return subsets;
}

bool IsSubset(const OperandSet& small, const OperandSet& large) {
  return std::includes(large.begin(), large.end(), small.begin(), small.end());
}

OperandSet SortedOperands(const Instruction& ins) {
  OperandSet ops = ins.operands;
  std::sort(ops.begin(), ops.end());
  ops.erase(std::unique(ops.begin(), ops.end()), ops.end());
  return ops;
}

}  // namespace

void EliminateCommonSubexpressions(ExecutionPlan* plan) {
  int next_temp = 0;
  for (const Instruction& ins : plan->instructions) {
    if (ins.type != InstrType::kReport && ins.target.kind == VarKind::kT) {
      next_temp = std::max(next_temp, ins.target.index + 1);
    }
  }
  next_temp = std::max<int>(next_temp,
                            static_cast<int>(plan->NumPatternVertices()));

  // Bounded fixpoint; each round removes at least one duplicated
  // subexpression occurrence, but cap defensively.
  for (int round = 0; round < 64; ++round) {
    // Frequency of each subexpression across INT instructions (counted
    // once per instruction), plus the first instruction it appears in.
    struct Stats {
      int count = 0;
      int first_pos = 1 << 30;
    };
    std::map<OperandSet, Stats> table;
    for (size_t i = 0; i < plan->instructions.size(); ++i) {
      const Instruction& ins = plan->instructions[i];
      if (ins.type != InstrType::kIntersect) continue;
      OperandSet ops = SortedOperands(ins);
      for (OperandSet& subset : SubsetsOfSizeTwoPlus(ops)) {
        Stats& st = table[subset];
        ++st.count;
        st.first_pos = std::min(st.first_pos, static_cast<int>(i));
      }
    }
    // Pick: most operands, then most frequent, then earliest appearance.
    const OperandSet* best = nullptr;
    Stats best_stats;
    for (const auto& [subset, stats] : table) {
      if (stats.count < 2) continue;
      if (best == nullptr ||
          subset.size() > best->size() ||
          (subset.size() == best->size() &&
           (stats.count > best_stats.count ||
            (stats.count == best_stats.count &&
             stats.first_pos < best_stats.first_pos)))) {
        best = &subset;
        best_stats = stats;
      }
    }
    if (best == nullptr) break;

    OperandSet subexpr = *best;
    Instruction hoisted;
    hoisted.type = InstrType::kIntersect;
    hoisted.target = {VarKind::kT, next_temp++};
    hoisted.operands = subexpr;
    // Replace the subexpression in every INT instruction that contains it.
    for (Instruction& ins : plan->instructions) {
      if (ins.type != InstrType::kIntersect) continue;
      OperandSet ops = SortedOperands(ins);
      if (ops.size() < subexpr.size() || !IsSubset(subexpr, ops)) continue;
      OperandSet remaining;
      std::set_difference(ops.begin(), ops.end(), subexpr.begin(),
                          subexpr.end(), std::back_inserter(remaining));
      ins.operands = remaining;
      ins.operands.push_back(hoisted.target);
    }
    plan->instructions.insert(
        plan->instructions.begin() + best_stats.first_pos, hoisted);
  }
  EliminateUniOperandIntersections(plan);
}

void ReorderInstructions(ExecutionPlan* plan) {
  // --- Step 1: flatten INT instructions to at most two operands. ---
  {
    std::vector<Instruction> flattened;
    int next_temp = static_cast<int>(plan->NumPatternVertices());
    for (const Instruction& ins : plan->instructions) {
      if (ins.type != InstrType::kReport && ins.target.kind == VarKind::kT) {
        next_temp = std::max(next_temp, ins.target.index + 1);
      }
    }
    std::map<VarRef, int> defs = DefinitionPositions(*plan);
    for (const Instruction& ins : plan->instructions) {
      if (ins.type != InstrType::kIntersect || ins.operands.size() <= 2) {
        flattened.push_back(ins);
        continue;
      }
      // Operands defined earlier come first.
      std::vector<VarRef> ops = ins.operands;
      std::sort(ops.begin(), ops.end(), [&defs](const VarRef& a,
                                                const VarRef& b) {
        int da = a.kind == VarKind::kAllVertices ? -1 : defs.at(a);
        int db = b.kind == VarKind::kAllVertices ? -1 : defs.at(b);
        return da < db;
      });
      VarRef chain = ops[0];
      for (size_t i = 1; i < ops.size(); ++i) {
        Instruction step;
        step.type = InstrType::kIntersect;
        step.operands = {chain, ops[i]};
        if (i + 1 == ops.size()) {
          step.target = ins.target;
          step.filters = ins.filters;
        } else {
          step.target = {VarKind::kT, next_temp++};
        }
        chain = step.target;
        flattened.push_back(step);
      }
    }
    plan->instructions = std::move(flattened);
  }

  // --- Step 2: dependency graph. ---
  const size_t count = plan->instructions.size();
  std::map<VarRef, int> defs = DefinitionPositions(*plan);
  std::vector<std::vector<int>> dependents(count);
  std::vector<int> pending(count, 0);
  for (size_t i = 0; i < count; ++i) {
    const Instruction& ins = plan->instructions[i];
    std::vector<int> deps;
    for (const VarRef& op : ins.operands) {
      if (op.kind == VarKind::kAllVertices) continue;
      deps.push_back(defs.at(op));
    }
    for (const FilterCondition& fc : ins.filters) {
      deps.push_back(defs.at({VarKind::kF, fc.f_index}));
    }
    std::sort(deps.begin(), deps.end());
    deps.erase(std::unique(deps.begin(), deps.end()), deps.end());
    pending[i] = static_cast<int>(deps.size());
    for (int d : deps) dependents[d].push_back(static_cast<int>(i));
  }

  // --- Step 3: topological sort ranked by instruction type. ---
  auto rank = [](InstrType type) {
    switch (type) {
      case InstrType::kInit:
        return 0;
      case InstrType::kIntersect:
        return 1;
      case InstrType::kTriangleCache:
        return 2;
      case InstrType::kDbQuery:
        return 3;
      case InstrType::kEnumerate:
        return 4;
      case InstrType::kReport:
        return 5;
    }
    return 6;
  };
  std::vector<Instruction> ordered;
  ordered.reserve(count);
  std::vector<char> emitted(count, 0);
  for (size_t step = 0; step < count; ++step) {
    int best = -1;
    for (size_t i = 0; i < count; ++i) {
      if (emitted[i] || pending[i] > 0) continue;
      if (best < 0 ||
          rank(plan->instructions[i].type) <
              rank(plan->instructions[best].type)) {
        best = static_cast<int>(i);
      }
      // Ties keep the earlier original position: the scan order does that.
    }
    BENU_CHECK(best >= 0) << "cycle in plan dependency graph";
    emitted[best] = 1;
    ordered.push_back(plan->instructions[best]);
    for (int dep : dependents[best]) --pending[dep];
  }
  plan->instructions = std::move(ordered);
}

void ApplyTriangleCaching(ExecutionPlan* plan) {
  if (plan->matching_order.empty()) return;
  const VertexId first = plan->matching_order[0];
  for (Instruction& ins : plan->instructions) {
    if (ins.type != InstrType::kIntersect) continue;
    if (ins.operands.size() != 2 || !ins.filters.empty()) continue;
    const VarRef& a = ins.operands[0];
    const VarRef& b = ins.operands[1];
    if (a.kind != VarKind::kA || b.kind != VarKind::kA) continue;
    VertexId ua = static_cast<VertexId>(a.index);
    VertexId ub = static_cast<VertexId>(b.index);
    bool qualifies = false;
    if (ua == first && plan->pattern.HasEdge(first, ub)) qualifies = true;
    if (ub == first && plan->pattern.HasEdge(first, ua)) {
      std::swap(ins.operands[0], ins.operands[1]);
      qualifies = true;
    }
    if (qualifies) ins.type = InstrType::kTriangleCache;
  }
}

void OptimizePlan(ExecutionPlan* plan) {
  EliminateCommonSubexpressions(plan);
  ReorderInstructions(plan);
  ApplyTriangleCaching(plan);
}

}  // namespace benu
