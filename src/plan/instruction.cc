#include "plan/instruction.h"

#include <set>
#include <sstream>

namespace benu {
namespace {

std::string VarName(const VarRef& var) {
  switch (var.kind) {
    case VarKind::kF:
      return "f" + std::to_string(var.index + 1);
    case VarKind::kA:
      return "A" + std::to_string(var.index + 1);
    case VarKind::kT:
      return "T" + std::to_string(var.index + 1);
    case VarKind::kC:
      return "C" + std::to_string(var.index + 1);
    case VarKind::kAllVertices:
      return "V(G)";
  }
  return "?";
}

std::string FilterText(const FilterCondition& fc) {
  std::string f = "f" + std::to_string(fc.f_index + 1);
  switch (fc.kind) {
    case FilterKind::kLess:
      return "<" + f;
    case FilterKind::kGreater:
      return ">" + f;
    case FilterKind::kNotEqual:
      return "!=" + f;
  }
  return "?";
}

const char* OpName(InstrType type) {
  switch (type) {
    case InstrType::kInit:
      return "Init";
    case InstrType::kDbQuery:
      return "GetAdj";
    case InstrType::kIntersect:
      return "Intersect";
    case InstrType::kEnumerate:
      return "Foreach";
    case InstrType::kTriangleCache:
      return "TCache";
    case InstrType::kReport:
      return "ReportMatch";
  }
  return "?";
}

}  // namespace

std::string Instruction::ToString() const {
  std::ostringstream out;
  if (type == InstrType::kReport) {
    out << "f := ReportMatch(";
  } else {
    out << VarName(target) << " := " << OpName(type) << "(";
    if (type == InstrType::kInit) out << "start";
  }
  for (size_t i = 0; i < operands.size(); ++i) {
    if (i > 0) out << ", ";
    out << VarName(operands[i]);
  }
  out << ")";
  if (!filters.empty()) {
    out << " | ";
    for (size_t i = 0; i < filters.size(); ++i) {
      if (i > 0) out << ", ";
      out << FilterText(filters[i]);
    }
  }
  if (min_degree > 0) out << " | deg>=" << min_degree;
  if (required_label >= 0) out << " | label=" << required_label;
  return out.str();
}

bool ExecutionPlan::UsesDegreeFilters() const {
  for (const Instruction& ins : instructions) {
    if (ins.min_degree > 0) return true;
  }
  return false;
}

std::string ExecutionPlan::ToString() const {
  std::ostringstream out;
  out << "ExecutionPlan (order:";
  for (VertexId u : matching_order) out << " u" << (u + 1);
  if (compressed) out << ", VCBC";
  out << ")\n";
  for (size_t i = 0; i < instructions.size(); ++i) {
    out << "  " << (i + 1) << ": " << instructions[i].ToString() << "\n";
  }
  return out.str();
}

bool ValidatePlan(const ExecutionPlan& plan, std::string* error) {
  auto fail = [error](const std::string& msg) {
    if (error != nullptr) *error = msg;
    return false;
  };
  if (plan.instructions.empty()) return fail("plan has no instructions");
  std::set<VarRef> defined;
  bool saw_report = false;
  for (size_t i = 0; i < plan.instructions.size(); ++i) {
    const Instruction& ins = plan.instructions[i];
    if (saw_report) return fail("instruction after RES");
    auto check_defined = [&](const VarRef& var) {
      if (var.kind == VarKind::kAllVertices) return true;
      return defined.count(var) > 0;
    };
    for (const VarRef& op : ins.operands) {
      if (!check_defined(op)) {
        return fail("undefined operand in instruction " + std::to_string(i) +
                    ": " + ins.ToString());
      }
    }
    for (const FilterCondition& fc : ins.filters) {
      if (!check_defined({VarKind::kF, fc.f_index})) {
        return fail("filter references unmapped f" +
                    std::to_string(fc.f_index + 1));
      }
    }
    switch (ins.type) {
      case InstrType::kInit:
        if (ins.target.kind != VarKind::kF) return fail("INI target not f");
        break;
      case InstrType::kDbQuery:
        if (ins.target.kind != VarKind::kA) return fail("DBQ target not A");
        if (ins.operands.size() != 1 || ins.operands[0].kind != VarKind::kF) {
          return fail("DBQ operand must be a single f variable");
        }
        break;
      case InstrType::kIntersect:
        if (ins.operands.empty()) return fail("INT without operands");
        break;
      case InstrType::kTriangleCache:
        if (ins.operands.size() != 2) return fail("TRC needs two operands");
        break;
      case InstrType::kEnumerate:
        if (ins.target.kind != VarKind::kF) return fail("ENU target not f");
        if (ins.operands.size() != 1) return fail("ENU needs one operand");
        break;
      case InstrType::kReport:
        saw_report = true;
        if (ins.operands.size() != plan.NumPatternVertices()) {
          return fail("RES arity mismatch");
        }
        break;
    }
    if (ins.type != InstrType::kReport) {
      if (defined.count(ins.target) > 0) {
        return fail("variable redefined: " + ins.ToString());
      }
      defined.insert(ins.target);
    }
  }
  if (!saw_report) return fail("plan missing RES");
  if (error != nullptr) error->clear();
  return true;
}

}  // namespace benu
