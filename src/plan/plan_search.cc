#include "plan/plan_search.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "common/logging.h"
#include "common/stopwatch.h"
#include "graph/isomorphism.h"
#include "plan/filters.h"
#include "plan/optimizer.h"
#include "plan/plan_generator.h"
#include "plan/symmetry_breaking.h"
#include "plan/vcbc.h"

namespace benu {
namespace {

// Relative tolerance for comparing accumulated cost estimates: logically
// identical orders can differ by rounding because addition order differs.
constexpr double kRelTol = 1e-9;

bool DefinitelyGreater(double a, double b) {
  return a > b * (1 + kRelTol) + kRelTol;
}

bool ApproximatelyEqual(double a, double b) {
  return !DefinitelyGreater(a, b) && !DefinitelyGreater(b, a);
}

// Recursive state of Algorithm 3's Search procedure.
class OrderSearch {
 public:
  OrderSearch(const Graph& pattern, const DataGraphStats& stats)
      : pattern_(pattern), stats_(stats), n_(pattern.NumVertices()) {
    // Precompute the syntactic-equivalence relation for dual pruning.
    se_.assign(n_, std::vector<char>(n_, 0));
    for (VertexId u = 0; u < n_; ++u) {
      for (VertexId v = 0; v < n_; ++v) {
        se_[u][v] = SyntacticallyEquivalent(pattern_, u, v) ? 1 : 0;
      }
    }
    used_.assign(n_, 0);
  }

  void Run() {
    order_.clear();
    Search(0.0);
  }

  const std::vector<std::vector<VertexId>>& candidates() const {
    return candidates_;
  }
  double best_comm_cost() const { return best_comm_cost_; }
  uint64_t estimate_calls() const { return estimate_calls_; }

 private:
  void Search(double comm_cost) {
    if (order_.size() == n_) {
      if (candidates_.empty() ||
          DefinitelyGreater(best_comm_cost_, comm_cost)) {
        best_comm_cost_ = comm_cost;
        candidates_.clear();
        candidates_.push_back(order_);
      } else if (ApproximatelyEqual(comm_cost, best_comm_cost_)) {
        candidates_.push_back(order_);
      }
      return;
    }
    for (VertexId u = 0; u < n_; ++u) {
      if (used_[u]) continue;
      if (!PassesDualCondition(u)) continue;
      // Case 1: u still has an unused neighbor, so the plan will issue a
      // DBQ for u, executed once per match of the partial pattern p'.
      // Case 2: all neighbors used — no DBQ, cost unchanged.
      double step_cost = 0;
      used_[u] = 1;
      order_.push_back(u);
      if (HasUnusedNeighbor(u)) {
        step_cost = EstimatePrefix();
        ++estimate_calls_;
      }
      const double next_cost = comm_cost + step_cost;
      if (candidates_.empty() ||
          !DefinitelyGreater(next_cost, best_comm_cost_)) {
        Search(next_cost);
      }
      order_.pop_back();
      used_[u] = 0;
    }
  }

  // Rejects u when an unused syntactically-equivalent vertex with a
  // smaller id exists: the dual order (with the two swapped) has the same
  // cost, so only the id-ascending representative is explored.
  bool PassesDualCondition(VertexId u) const {
    for (VertexId v = 0; v < u; ++v) {
      if (!used_[v] && se_[u][v]) return false;
    }
    return true;
  }

  bool HasUnusedNeighbor(VertexId u) const {
    for (VertexId w : pattern_.Adjacency(u)) {
      if (!used_[w]) return true;
    }
    return false;
  }

  double EstimatePrefix() {
    auto sub = pattern_.InducedSubgraph(order_);
    BENU_CHECK(sub.ok());
    return EstimateMatches(*sub, stats_);
  }

  const Graph& pattern_;
  const DataGraphStats& stats_;
  const size_t n_;
  std::vector<std::vector<char>> se_;
  std::vector<char> used_;
  std::vector<VertexId> order_;
  std::vector<std::vector<VertexId>> candidates_;
  double best_comm_cost_ = std::numeric_limits<double>::infinity();
  uint64_t estimate_calls_ = 0;
};

}  // namespace

StatusOr<PlanSearchResult> GenerateBestPlan(const Graph& pattern,
                                            const DataGraphStats& stats,
                                            const PlanSearchOptions& options) {
  if (pattern.NumVertices() == 0) {
    return Status::InvalidArgument("empty pattern");
  }
  if (!pattern.IsConnected()) {
    return Status::InvalidArgument(
        "pattern must be connected; decompose disconnected patterns into "
        "components and enumerate each separately");
  }
  const bool labeled = !options.pattern_labels.empty();
  if (labeled && options.pattern_labels.size() != pattern.NumVertices()) {
    return Status::InvalidArgument("pattern label count mismatch");
  }
  if (labeled && options.apply_vcbc) {
    return Status::InvalidArgument(
        "VCBC compression is not supported for labeled patterns: "
        "conditional image sets are not label-filtered");
  }
  Stopwatch watch;
  const std::vector<OrderConstraint> constraints =
      labeled ? ComputeLabeledSymmetryBreakingConstraints(
                    pattern, options.pattern_labels)
              : ComputeSymmetryBreakingConstraints(pattern);

  OrderSearch search(pattern, stats);
  search.Run();

  PlanSearchResult result;
  result.estimate_calls = search.estimate_calls();
  bool have_best = false;
  PlanCost best_cost;
  for (const std::vector<VertexId>& order : search.candidates()) {
    auto plan = GenerateRawPlan(pattern, order, constraints);
    BENU_RETURN_IF_ERROR(plan.status());
    if (options.optimize) OptimizePlan(&plan.value());
    ++result.plans_generated;
    PlanCost cost = EstimatePlanCost(*plan, stats);
    if (!have_best || cost.computation < best_cost.computation) {
      have_best = true;
      best_cost = cost;
      result.plan = std::move(plan).value();
    }
  }
  if (!have_best) return Status::Internal("no candidate matching order");
  if (options.apply_vcbc) {
    BENU_RETURN_IF_ERROR(ApplyVcbcCompression(&result.plan));
  }
  if (options.apply_degree_filter) ApplyDegreeFilters(&result.plan);
  if (labeled) {
    BENU_RETURN_IF_ERROR(
        ApplyLabelFilters(&result.plan, options.pattern_labels));
  }
  result.cost = best_cost;
  result.elapsed_seconds = watch.ElapsedSeconds();
  return result;
}

double AlphaUpperBound(size_t n) {
  // Σ_{i=1..n} P(n, i) where P(n, i) = n! / (n-i)!.
  double total = 0;
  double perm = 1;
  for (size_t i = 1; i <= n; ++i) {
    perm *= static_cast<double>(n - i + 1);
    total += perm;
  }
  return total;
}

double BetaUpperBound(size_t n) {
  double factorial = 1;
  for (size_t i = 2; i <= n; ++i) factorial *= static_cast<double>(i);
  return factorial;
}

}  // namespace benu
