#include "plan/filters.h"

namespace benu {

void ApplyDegreeFilters(ExecutionPlan* plan) {
  for (Instruction& ins : plan->instructions) {
    if (ins.type == InstrType::kInit || ins.type == InstrType::kEnumerate) {
      const auto u = static_cast<VertexId>(ins.target.index);
      ins.min_degree = static_cast<uint32_t>(plan->pattern.Degree(u));
    }
  }
}

Status ApplyLabelFilters(ExecutionPlan* plan,
                         const std::vector<int>& labels) {
  if (labels.size() != plan->NumPatternVertices()) {
    return Status::InvalidArgument("label vector size mismatch");
  }
  for (Instruction& ins : plan->instructions) {
    if (ins.type == InstrType::kInit || ins.type == InstrType::kEnumerate) {
      ins.required_label = labels[static_cast<size_t>(ins.target.index)];
    }
  }
  plan->pattern_labels = labels;
  return Status::OK();
}

std::vector<VertexId> ComputeDegreeFloors(const Graph& graph,
                                          size_t max_degree) {
  const auto n = static_cast<VertexId>(graph.NumVertices());
  // Degrees are non-decreasing in id after RelabelByDegree, so one
  // forward sweep finds every threshold. Degrees with no qualifying
  // vertex map to n (empty candidate range).
  std::vector<VertexId> floors(max_degree + 1, n);
  floors[0] = 0;
  size_t d = 1;
  for (VertexId v = 0; v < n && d <= max_degree; ++v) {
    const size_t deg = graph.Degree(v);
    while (d <= deg && d <= max_degree) {
      floors[d] = v;
      ++d;
    }
  }
  return floors;
}

}  // namespace benu
