#ifndef BENU_PLAN_INSTRUCTION_H_
#define BENU_PLAN_INSTRUCTION_H_

#include <string>
#include <vector>

#include "common/types.h"
#include "graph/graph.h"

namespace benu {

/// The six instruction types of a BENU execution plan (Table III of the
/// paper).
enum class InstrType {
  kInit,           ///< INI: f_i := Init(start)
  kDbQuery,        ///< DBQ: A_i := GetAdj(f_i)
  kIntersect,      ///< INT: X := Intersect(...) [| filters]
  kEnumerate,      ///< ENU: f_i := Foreach(X)
  kTriangleCache,  ///< TRC: X := TCache(f_i, f_j, A_i, A_j)
  kReport,         ///< RES: f := ReportMatch(f_1, ..., f_n)
};

/// Kinds of plan variables.
enum class VarKind {
  kF,        ///< f_i — the data vertex mapped to pattern vertex u_i
  kA,        ///< A_i — the adjacency set of f_i
  kT,        ///< T_j — a temporary set
  kC,        ///< C_i — the candidate set for pattern vertex u_i
  kAllVertices,  ///< the pseudo-operand V(G)
};

/// A reference to a plan variable, e.g. A_3 is {kA, 3}.
struct VarRef {
  VarKind kind = VarKind::kT;
  int index = 0;

  friend bool operator==(const VarRef& a, const VarRef& b) {
    return a.kind == b.kind && a.index == b.index;
  }
  friend bool operator<(const VarRef& a, const VarRef& b) {
    if (a.kind != b.kind) return a.kind < b.kind;
    return a.index < b.index;
  }
};

/// The two kinds of filtering conditions (§IV-A): symmetry-breaking order
/// conditions and injective conditions, both against an already-mapped f_i.
enum class FilterKind {
  kLess,      ///< keep v ≺ f_i   (written "< f_i")
  kGreater,   ///< keep v ≻ f_i   (written "> f_i")
  kNotEqual,  ///< keep v ≠ f_i
};

struct FilterCondition {
  FilterKind kind = FilterKind::kNotEqual;
  /// Pattern-vertex index i of the f_i being compared against.
  int f_index = 0;

  friend bool operator==(const FilterCondition& a, const FilterCondition& b) {
    return a.kind == b.kind && a.f_index == b.f_index;
  }
};

/// One execution instruction: `target := Op(operands) [| filters]`.
struct Instruction {
  InstrType type = InstrType::kIntersect;
  VarRef target;
  /// INT/TRC: set operands. DBQ: the single f operand. ENU: the candidate
  /// set. RES: the reported variables (f_i, or C_i under VCBC), in pattern
  /// vertex order. INI: empty (start vertex is implicit).
  std::vector<VarRef> operands;
  std::vector<FilterCondition> filters;

  /// Degree filter (§IV-A, "other filtering techniques like degree
  /// filter"): on INI/ENU instructions, candidates must have data-graph
  /// degree ≥ min_degree. Because the data graph is relabeled so ids
  /// realize the (degree, id) total order, the executor implements this
  /// as a lower bound on candidate ids — zero cost per candidate.
  uint32_t min_degree = 0;

  /// Label filter (property-graph extension): on INI/ENU instructions,
  /// candidates must carry this vertex label; -1 disables.
  int required_label = -1;

  /// Renders like the paper, e.g. "C3 := Intersect(A1) | >f1, ≠f2".
  std::string ToString() const;
};

/// A partial-order constraint from symmetry breaking: f(first) ≺ f(second).
struct OrderConstraint {
  VertexId first = 0;
  VertexId second = 0;

  friend bool operator==(const OrderConstraint& a, const OrderConstraint& b) {
    return a.first == b.first && a.second == b.second;
  }
};

/// A complete BENU execution plan for a pattern graph.
struct ExecutionPlan {
  Graph pattern;
  /// Pattern vertices in matching order O (k_1, ..., k_n).
  std::vector<VertexId> matching_order;
  /// Symmetry-breaking partial order on V(P).
  std::vector<OrderConstraint> partial_order;
  std::vector<Instruction> instructions;
  /// True once the VCBC transformation has been applied.
  bool compressed = false;
  /// Under VCBC: the prefix of `matching_order` forming the vertex cover.
  std::vector<VertexId> core_vertices;

  /// Pattern vertex labels for the property-graph extension; empty for
  /// the paper's unlabeled setting.
  std::vector<int> pattern_labels;

  /// Number of pattern vertices n.
  size_t NumPatternVertices() const { return pattern.NumVertices(); }

  /// True when any instruction carries a degree filter.
  bool UsesDegreeFilters() const;
  /// True when the plan matches a labeled pattern.
  bool UsesLabelFilters() const { return !pattern_labels.empty(); }

  /// Multi-line listing of the instructions.
  std::string ToString() const;
};

/// Checks structural well-formedness: every operand/filter variable is
/// defined by an earlier instruction (or is V(G)/an INI f), exactly one
/// RES at the end, ENU targets are f variables, etc.
bool ValidatePlan(const ExecutionPlan& plan, std::string* error);

}  // namespace benu

#endif  // BENU_PLAN_INSTRUCTION_H_
