#include "plan/cost_model.h"

#include <cmath>
#include <vector>

#include "common/logging.h"

namespace benu {
namespace {

// Estimate for one connected component with np vertices and mp edges.
double EstimateComponent(double np, double mp, const DataGraphStats& stats) {
  const double n = stats.num_vertices;
  const double m = stats.num_edges;
  if (n < np) return 0;
  double log_est = 0;
  for (double i = 0; i < np; ++i) log_est += std::log(n - i);
  if (mp > 0) {
    const double edge_prob = 2.0 * m / (n * (n - 1.0));
    if (edge_prob <= 0) return 0;
    log_est += mp * std::log(edge_prob);
  }
  return std::exp(log_est);
}

}  // namespace

double EstimateMatches(const Graph& p, const DataGraphStats& stats) {
  if (p.NumVertices() == 0) return 1;
  double total = 1;
  for (const auto& component : p.ConnectedComponents()) {
    auto sub = p.InducedSubgraph(component);
    BENU_CHECK(sub.ok());
    total *= EstimateComponent(static_cast<double>(sub->NumVertices()),
                               static_cast<double>(sub->NumEdges()), stats);
  }
  return total;
}

PlanCost EstimatePlanCost(const ExecutionPlan& plan,
                          const DataGraphStats& stats) {
  PlanCost cost;
  // Pattern vertices mapped so far (INI counts: instructions between INI
  // and the first ENU execute once per local search task, i.e. N times).
  std::vector<VertexId> mapped;
  double current = 0;
  auto refresh = [&]() {
    auto sub = plan.pattern.InducedSubgraph(mapped);
    BENU_CHECK(sub.ok());
    current = EstimateMatches(*sub, stats);
  };
  for (const Instruction& ins : plan.instructions) {
    switch (ins.type) {
      case InstrType::kInit:
      case InstrType::kEnumerate:
        mapped.push_back(static_cast<VertexId>(ins.target.index));
        refresh();
        break;
      case InstrType::kIntersect:
      case InstrType::kTriangleCache:
        cost.computation += current;
        break;
      case InstrType::kDbQuery:
        cost.communication += current;
        break;
      case InstrType::kReport:
        break;
    }
  }
  return cost;
}

bool CheaperThan(const PlanCost& a, const PlanCost& b) {
  if (a.communication != b.communication) {
    return a.communication < b.communication;
  }
  return a.computation < b.computation;
}

}  // namespace benu
