#ifndef BENU_PLAN_SYMMETRY_BREAKING_H_
#define BENU_PLAN_SYMMETRY_BREAKING_H_

#include <vector>

#include "graph/graph.h"
#include "plan/instruction.h"

namespace benu {

/// Computes the symmetry-breaking partial order on V(P) with the
/// Grochow–Kellis technique [15]: repeatedly pick a vertex v lying in a
/// non-trivial orbit of the (remaining) automorphism group, emit
/// f(v) ≺ f(w) for every other w in v's orbit, and restrict the group to
/// the stabilizer of v. The resulting constraints guarantee that every
/// subgraph isomorphic to P has exactly one constraint-satisfying match.
std::vector<OrderConstraint> ComputeSymmetryBreakingConstraints(
    const Graph& pattern);

/// Label-aware variant for the property-graph extension: only
/// label-preserving automorphisms (labels[a(v)] == labels[v]) create
/// duplicates, so the partial order is derived from that subgroup.
/// `labels` must have one entry per pattern vertex.
std::vector<OrderConstraint> ComputeLabeledSymmetryBreakingConstraints(
    const Graph& pattern, const std::vector<int>& labels);

/// True iff the data-vertex assignment `f` (pattern index -> data vertex,
/// ids realizing the total order ≺) satisfies all `constraints`.
bool SatisfiesConstraints(const std::vector<OrderConstraint>& constraints,
                          const std::vector<VertexId>& f);

}  // namespace benu

#endif  // BENU_PLAN_SYMMETRY_BREAKING_H_
