#ifndef BENU_PLAN_SYMMETRY_BREAKING_H_
#define BENU_PLAN_SYMMETRY_BREAKING_H_

#include <vector>

#include "graph/graph.h"
#include "plan/instruction.h"

namespace benu {

/// Computes the symmetry-breaking partial order on V(P) with the
/// Grochow–Kellis technique [15]: repeatedly pick a vertex v lying in a
/// non-trivial orbit of the (remaining) automorphism group, emit
/// f(v) ≺ f(w) for every other w in v's orbit, and restrict the group to
/// the stabilizer of v. The resulting constraints guarantee that every
/// subgraph isomorphic to P has exactly one constraint-satisfying match.
///
/// Deterministic: a pure function of the pattern graph (orbit and vertex
/// selection use fixed id-order tie-breaks), with no dependence on the
/// data graph or any global state. Two consequences downstream code
/// relies on:
///   - the total match count is independent of enumeration order and
///     interleaving, which is what lets the multi-query service schedule
///     tasks of concurrent queries in any order and still reproduce solo
///     counts bit for bit;
///   - the service's plan cache can omit the constraints from its key —
///     they are implied by (pattern, pattern_labels), which the key
///     already carries (see QueryEngine in src/service/query_engine.h).
std::vector<OrderConstraint> ComputeSymmetryBreakingConstraints(
    const Graph& pattern);

/// Label-aware variant for the property-graph extension: only
/// label-preserving automorphisms (labels[a(v)] == labels[v]) create
/// duplicates, so the partial order is derived from that subgroup.
/// `labels` must have one entry per pattern vertex. Equally
/// deterministic in (pattern, labels); relabeling a pattern vertex can
/// only shrink the automorphism subgroup, never reorder the tie-breaks.
std::vector<OrderConstraint> ComputeLabeledSymmetryBreakingConstraints(
    const Graph& pattern, const std::vector<int>& labels);

/// True iff the data-vertex assignment `f` (pattern index -> data vertex,
/// ids realizing the total order ≺) satisfies all `constraints`.
bool SatisfiesConstraints(const std::vector<OrderConstraint>& constraints,
                          const std::vector<VertexId>& f);

}  // namespace benu

#endif  // BENU_PLAN_SYMMETRY_BREAKING_H_
