#ifndef BENU_PLAN_FILTERS_H_
#define BENU_PLAN_FILTERS_H_

#include <vector>

#include "common/status.h"
#include "graph/graph.h"
#include "plan/instruction.h"

namespace benu {

/// Attaches degree filters (§IV-A) to the plan: pattern vertex u can only
/// map to data vertices of degree ≥ d_P(u), so every INI/ENU instruction
/// is annotated with the pattern vertex's degree. Because vertex ids
/// realize the (degree, id) total order ≺, the executor turns each
/// annotation into a lower bound on candidate ids. Purely a pruning
/// optimization: match counts are unchanged.
void ApplyDegreeFilters(ExecutionPlan* plan);

/// Attaches label filters to the plan (the property-graph extension the
/// paper leaves to future work): pattern vertex u only maps to data
/// vertices carrying `labels[u]`. The plan must have been generated with
/// label-aware symmetry-breaking constraints
/// (ComputeLabeledSymmetryBreakingConstraints) for duplicate-free counts.
Status ApplyLabelFilters(ExecutionPlan* plan, const std::vector<int>& labels);

/// The degree-floor table the executor needs to evaluate degree filters:
/// floors[d] = smallest vertex id whose degree is ≥ d, for
/// 0 ≤ d ≤ max_degree (N when no such vertex exists). Requires `graph` to
/// be relabeled by (degree, id) — see Graph::RelabelByDegree.
std::vector<VertexId> ComputeDegreeFloors(const Graph& graph,
                                          size_t max_degree);

}  // namespace benu

#endif  // BENU_PLAN_FILTERS_H_
