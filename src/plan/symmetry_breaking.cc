#include "plan/symmetry_breaking.h"

#include <algorithm>
#include <set>

#include "graph/isomorphism.h"

namespace benu {

namespace {

// Grochow–Kellis reduction over a given automorphism group.
std::vector<OrderConstraint> BreakGroup(const Graph& pattern,
                                        std::vector<Permutation> autos);

}  // namespace

std::vector<OrderConstraint> ComputeSymmetryBreakingConstraints(
    const Graph& pattern) {
  return BreakGroup(pattern, Automorphisms(pattern));
}

std::vector<OrderConstraint> ComputeLabeledSymmetryBreakingConstraints(
    const Graph& pattern, const std::vector<int>& labels) {
  std::vector<Permutation> autos;
  for (Permutation& a : Automorphisms(pattern)) {
    bool preserves = true;
    for (VertexId v = 0; v < pattern.NumVertices() && preserves; ++v) {
      preserves = labels[a[v]] == labels[v];
    }
    if (preserves) autos.push_back(std::move(a));
  }
  return BreakGroup(pattern, std::move(autos));
}

namespace {

std::vector<OrderConstraint> BreakGroup(const Graph& pattern,
                                        std::vector<Permutation> autos) {
  std::vector<OrderConstraint> constraints;
  while (autos.size() > 1) {
    // Find the smallest vertex with a non-trivial orbit.
    VertexId pivot = kInvalidVertex;
    std::set<VertexId> orbit;
    for (VertexId v = 0; v < pattern.NumVertices(); ++v) {
      orbit.clear();
      for (const Permutation& a : autos) orbit.insert(a[v]);
      if (orbit.size() > 1) {
        pivot = v;
        break;
      }
    }
    if (pivot == kInvalidVertex) break;  // only the identity remains
    for (VertexId w : orbit) {
      if (w != pivot) constraints.push_back({pivot, w});
    }
    // Restrict to the stabilizer of the pivot.
    std::vector<Permutation> stabilizer;
    for (Permutation& a : autos) {
      if (a[pivot] == pivot) stabilizer.push_back(std::move(a));
    }
    autos = std::move(stabilizer);
  }
  return constraints;
}

}  // namespace

bool SatisfiesConstraints(const std::vector<OrderConstraint>& constraints,
                          const std::vector<VertexId>& f) {
  for (const OrderConstraint& c : constraints) {
    if (!(f[c.first] < f[c.second])) return false;
  }
  return true;
}

}  // namespace benu
