#ifndef BENU_PLAN_PLAN_SEARCH_H_
#define BENU_PLAN_PLAN_SEARCH_H_

#include <cstdint>

#include "common/status.h"
#include "graph/graph.h"
#include "plan/cost_model.h"
#include "plan/instruction.h"

namespace benu {

/// Options controlling best-plan generation.
struct PlanSearchOptions {
  /// Apply Opt 1–3 to each candidate plan (true reproduces the paper;
  /// false is used by the Exp-2 ablation).
  bool optimize = true;
  /// Apply VCBC compression to the winning plan.
  bool apply_vcbc = false;
  /// Annotate INI/ENU instructions with degree filters (§IV-A); the
  /// executor then needs a degree-floor table (ComputeDegreeFloors).
  bool apply_degree_filter = false;
  /// Property-graph extension: per-pattern-vertex labels (empty for the
  /// paper's unlabeled setting). Symmetry breaking is restricted to
  /// label-preserving automorphisms and label filters are attached.
  /// Incompatible with apply_vcbc (image sets are not label-filtered).
  std::vector<int> pattern_labels;
};

/// Result of Algorithm 3 plus the counters reported in Exp-1 / Table IV.
struct PlanSearchResult {
  ExecutionPlan plan;
  PlanCost cost;
  /// α: number of match-count estimations performed inside Search.
  uint64_t estimate_calls = 0;
  /// β: number of optimized execution plans generated (|O_cand|).
  uint64_t plans_generated = 0;
  /// Wall time of the whole search, seconds.
  double elapsed_seconds = 0;
};

/// Algorithm 3: searches all matching orders with dual pruning (syntactic
/// equivalence) and cost-based pruning for the set O_cand of orders with
/// the least estimated communication cost, generates an optimized plan for
/// each, and returns the one with the least computation cost. Symmetry-
/// breaking constraints are computed internally (Grochow–Kellis).
///
/// Deterministic in (pattern, stats, options) — ties in the cost order
/// break by matching-order enumeration position. This triple is exactly
/// the service plan-cache key with `stats` held constant, which is why
/// QueryEngine can serve a cached plan without re-running the search and
/// still behave identically to a fresh RunBenu (counters excepted:
/// elapsed_seconds/α/β describe the original search, not the hit).
StatusOr<PlanSearchResult> GenerateBestPlan(
    const Graph& pattern, const DataGraphStats& stats,
    const PlanSearchOptions& options = {});

/// Upper bound of α discussed in §IV-D: Σ_{i=1..n} P(n, i), the number of
/// i-permutations summed over prefix lengths.
double AlphaUpperBound(size_t n);

/// Upper bound of β: n!.
double BetaUpperBound(size_t n);

}  // namespace benu

#endif  // BENU_PLAN_PLAN_SEARCH_H_
