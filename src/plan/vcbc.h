#ifndef BENU_PLAN_VCBC_H_
#define BENU_PLAN_VCBC_H_

#include "common/status.h"
#include "plan/instruction.h"

namespace benu {

/// Applies the VCBC (vertex-cover based compression [6]) transformation of
/// §IV-B to an optimized plan:
///   1. finds the smallest k such that the first k vertices of the matching
///      order form a vertex cover V_c of P (the core);
///   2. deletes the ENU instruction of every non-core vertex and removes
///      filters that reference non-core f variables;
///   3. replaces f_j with C_j in the RES operands for non-core u_j.
/// The transformed plan emits compressed codes: the match of the core
/// (helve) plus one conditional image set per non-core vertex. Injectivity
/// and order constraints *between* non-core vertices are not encoded in the
/// codes; expansion/counting re-applies them (core/compressed_result.h).
Status ApplyVcbcCompression(ExecutionPlan* plan);

}  // namespace benu

#endif  // BENU_PLAN_VCBC_H_
