#ifndef BENU_PLAN_COST_MODEL_H_
#define BENU_PLAN_COST_MODEL_H_

#include <cstddef>

#include "graph/graph.h"
#include "plan/instruction.h"

namespace benu {

/// Summary statistics of a data graph consumed by the cost estimator. The
/// estimator only needs N and M, so plan search can run before the data
/// graph is materialized (e.g. from catalog metadata).
///
/// These two numbers are the *only* data-graph input to the whole plan
/// pipeline (search, cost, optimization). A resident service whose data
/// graph is fixed for its lifetime can therefore cache plans keyed by
/// the query alone — (pattern, plan-shaping options, pattern labels) —
/// because the stats term of the key is a constant; were the graph ever
/// swapped or mutated, every cached plan and cost would be invalidated
/// together (src/service/query_engine.h does exactly this: one immutable
/// graph, one plan cache, no eviction).
struct DataGraphStats {
  double num_vertices = 0;  ///< N
  double num_edges = 0;     ///< M

  static DataGraphStats FromGraph(const Graph& g) {
    return {static_cast<double>(g.NumVertices()),
            static_cast<double>(g.NumEdges())};
  }
};

/// Estimates the number of matches of the (possibly disconnected) partial
/// pattern `p` in a data graph with statistics `stats`, using the
/// Erdős–Rényi-style model of SEED [5] §5.1: the expected number of
/// injective edge-preserving mappings is the falling factorial
/// N(N−1)···(N−n_p+1) times (2M / N(N−1))^{m_p}. Disconnected patterns
/// multiply the estimates of their connected components (the paper's
/// rule). Returned in log-space? No — as a double; values can be huge but
/// stay well inside double range for realistic inputs.
double EstimateMatches(const Graph& p, const DataGraphStats& stats);

/// Cost of an execution plan (§IV-C).
struct PlanCost {
  /// Total estimated execution times of DBQ instructions.
  double communication = 0;
  /// Total estimated execution times of INT and TRC instructions.
  double computation = 0;
};

/// Deterministic in (plan, stats) — no sampling, no data access — so the
/// estimate is stable across calls and safe to cache alongside the plan
/// (the service's admission control compares it against a configured
/// ceiling on every submit, hit or miss).
///
/// Walks the instructions of `plan` front to back, tracking the partial
/// pattern graph induced by the already-enumerated prefix, and charges
/// each INT/TRC (computation) and DBQ (communication) the estimated number
/// of matches of the current partial pattern (Algorithm 3,
/// EstimateComputationCost, extended to communication).
PlanCost EstimatePlanCost(const ExecutionPlan& plan,
                          const DataGraphStats& stats);

/// Orders plans as §IV-D: first by communication cost, ties by computation
/// cost. Returns true iff a is strictly cheaper than b.
bool CheaperThan(const PlanCost& a, const PlanCost& b);

}  // namespace benu

#endif  // BENU_PLAN_COST_MODEL_H_
