#include "plan/plan_generator.h"

#include <algorithm>
#include <set>

namespace benu {
namespace {

// Replaces every occurrence of `from` in operand lists with `to`.
void SubstituteOperand(std::vector<Instruction>* instructions,
                       const VarRef& from, const VarRef& to) {
  for (Instruction& ins : *instructions) {
    for (VarRef& op : ins.operands) {
      if (op == from) op = to;
    }
  }
}

}  // namespace

StatusOr<ExecutionPlan> GenerateRawPlan(
    const Graph& pattern, const std::vector<VertexId>& matching_order,
    const std::vector<OrderConstraint>& constraints) {
  const size_t n = pattern.NumVertices();
  if (n == 0) return Status::InvalidArgument("empty pattern");
  if (matching_order.size() != n) {
    return Status::InvalidArgument("matching order size mismatch");
  }
  {
    std::set<VertexId> seen(matching_order.begin(), matching_order.end());
    if (seen.size() != n || *seen.rbegin() >= n) {
      return Status::InvalidArgument("matching order is not a permutation");
    }
  }

  ExecutionPlan plan;
  plan.pattern = pattern;
  plan.matching_order = matching_order;
  plan.partial_order = constraints;

  // position_in_order[u] = index of pattern vertex u within O.
  std::vector<size_t> position(n);
  for (size_t i = 0; i < n; ++i) position[matching_order[i]] = i;

  auto has_constraint = [&constraints](VertexId a, VertexId b,
                                       FilterKind* kind) {
    for (const OrderConstraint& c : constraints) {
      if (c.first == a && c.second == b) {
        // f(a) ≺ f(b): candidates for b must be greater than f_a.
        *kind = FilterKind::kGreater;
        return true;
      }
      if (c.first == b && c.second == a) {
        *kind = FilterKind::kLess;
        return true;
      }
    }
    return false;
  };

  int next_temp = static_cast<int>(n);  // T indices after f/A/C index space

  // First vertex: INI + DBQ.
  const VertexId first = matching_order[0];
  {
    Instruction ini;
    ini.type = InstrType::kInit;
    ini.target = {VarKind::kF, static_cast<int>(first)};
    plan.instructions.push_back(ini);

    // A DBQ is needed iff some later vertex is adjacent to `first`
    // (always true for connected patterns with n >= 2).
    bool needed = false;
    for (VertexId w : pattern.Adjacency(first)) {
      if (position[w] > 0) needed = true;
    }
    if (needed) {
      Instruction dbq;
      dbq.type = InstrType::kDbQuery;
      dbq.target = {VarKind::kA, static_cast<int>(first)};
      dbq.operands = {{VarKind::kF, static_cast<int>(first)}};
      plan.instructions.push_back(dbq);
    }
  }

  for (size_t i = 1; i < n; ++i) {
    const VertexId u = matching_order[i];
    // 1) Raw candidate set: intersect adjacency sets of mapped neighbors.
    Instruction raw;
    raw.type = InstrType::kIntersect;
    raw.target = {VarKind::kT, next_temp++};
    for (size_t j = 0; j < i; ++j) {
      const VertexId prev = matching_order[j];
      if (pattern.HasEdge(prev, u)) {
        raw.operands.push_back({VarKind::kA, static_cast<int>(prev)});
      }
    }
    if (raw.operands.empty()) {
      raw.operands.push_back({VarKind::kAllVertices, 0});
    }
    plan.instructions.push_back(raw);

    // 2) Refined candidate set with filtering conditions.
    Instruction refine;
    refine.type = InstrType::kIntersect;
    refine.target = {VarKind::kC, static_cast<int>(u)};
    refine.operands = {raw.target};
    for (size_t j = 0; j < i; ++j) {
      const VertexId prev = matching_order[j];
      FilterKind kind;
      if (has_constraint(prev, u, &kind)) {
        refine.filters.push_back({kind, static_cast<int>(prev)});
      } else if (!pattern.HasEdge(prev, u)) {
        // Injective condition; omitted for neighbors because
        // T ⊆ A_prev and f_prev ∉ A_prev (simple graph) imply f_prev ∉ T.
        refine.filters.push_back({FilterKind::kNotEqual,
                                  static_cast<int>(prev)});
      }
    }
    plan.instructions.push_back(refine);

    // 3) ENU.
    Instruction enu;
    enu.type = InstrType::kEnumerate;
    enu.target = {VarKind::kF, static_cast<int>(u)};
    enu.operands = {refine.target};
    plan.instructions.push_back(enu);

    // 4) DBQ when a later neighbor will intersect with A_u.
    bool needed = false;
    for (VertexId w : pattern.Adjacency(u)) {
      if (position[w] > i) needed = true;
    }
    if (needed) {
      Instruction dbq;
      dbq.type = InstrType::kDbQuery;
      dbq.target = {VarKind::kA, static_cast<int>(u)};
      dbq.operands = {{VarKind::kF, static_cast<int>(u)}};
      plan.instructions.push_back(dbq);
    }
  }

  // RES with f_1..f_n in pattern-vertex order.
  Instruction res;
  res.type = InstrType::kReport;
  for (size_t u = 0; u < n; ++u) {
    res.operands.push_back({VarKind::kF, static_cast<int>(u)});
  }
  plan.instructions.push_back(res);

  EliminateUniOperandIntersections(&plan);
  return plan;
}

void EliminateUniOperandIntersections(ExecutionPlan* plan) {
  bool changed = true;
  while (changed) {
    changed = false;
    auto& code = plan->instructions;
    for (size_t i = 0; i < code.size(); ++i) {
      const Instruction& ins = code[i];
      if (ins.type == InstrType::kIntersect && ins.operands.size() == 1 &&
          ins.filters.empty()) {
        VarRef target = ins.target;
        VarRef replacement = ins.operands[0];
        code.erase(code.begin() + static_cast<ptrdiff_t>(i));
        SubstituteOperand(&code, target, replacement);
        changed = true;
        break;
      }
    }
  }
}

}  // namespace benu
