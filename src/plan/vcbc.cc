#include "plan/vcbc.h"

#include <algorithm>

#include "graph/isomorphism.h"
#include "plan/plan_generator.h"

namespace benu {

Status ApplyVcbcCompression(ExecutionPlan* plan) {
  if (plan->compressed) {
    return Status::FailedPrecondition("plan already compressed");
  }
  const size_t n = plan->NumPatternVertices();
  // Smallest k whose matching-order prefix covers every edge.
  size_t k = 0;
  std::vector<VertexId> prefix;
  for (k = 1; k <= n; ++k) {
    prefix.assign(plan->matching_order.begin(),
                  plan->matching_order.begin() + static_cast<ptrdiff_t>(k));
    if (IsVertexCover(plan->pattern, prefix)) break;
  }
  if (k > n) return Status::Internal("no vertex-cover prefix found");
  if (k == n) {
    // Nothing to compress; the plan is unchanged but marked, so callers
    // know every RES operand is still an f variable.
    plan->compressed = true;
    plan->core_vertices = prefix;
    return Status::OK();
  }

  std::vector<char> is_core(n, 0);
  for (VertexId u : prefix) is_core[u] = 1;

  auto& code = plan->instructions;
  for (size_t pos = k; pos < n; ++pos) {
    const VertexId u = plan->matching_order[pos];
    // Locate the ENU of f_u and remember its candidate variable.
    auto enu = std::find_if(code.begin(), code.end(), [u](const Instruction& ins) {
      return ins.type == InstrType::kEnumerate &&
             ins.target == VarRef{VarKind::kF, static_cast<int>(u)};
    });
    if (enu == code.end()) {
      return Status::Internal("missing ENU for non-core pattern vertex");
    }
    const VarRef candidate = enu->operands[0];
    code.erase(enu);
    // Replace f_u with its candidate set in the RES operands.
    for (Instruction& ins : code) {
      if (ins.type != InstrType::kReport) continue;
      for (VarRef& op : ins.operands) {
        if (op == VarRef{VarKind::kF, static_cast<int>(u)}) op = candidate;
      }
    }
  }
  // Drop filters that reference non-core f variables (the expansion step
  // re-applies the corresponding constraints).
  for (Instruction& ins : code) {
    auto& filters = ins.filters;
    filters.erase(std::remove_if(filters.begin(), filters.end(),
                                 [&is_core](const FilterCondition& fc) {
                                   return !is_core[fc.f_index];
                                 }),
                  filters.end());
  }
  EliminateUniOperandIntersections(plan);
  plan->compressed = true;
  plan->core_vertices = prefix;
  return Status::OK();
}

}  // namespace benu
