#ifndef BENU_PLAN_OPTIMIZER_H_
#define BENU_PLAN_OPTIMIZER_H_

#include "plan/instruction.h"

namespace benu {

// All three passes are deterministic in-place rewrites that read nothing
// but the plan itself — no data-graph statistics, randomness, or global
// state. The same raw plan therefore always optimizes to the same
// instruction sequence, which is what makes a once-planned query
// cacheable: the service's plan cache (src/service/query_engine.h) keys
// on the plan-search *inputs* (pattern, plan-shaping options, labels)
// and never needs to fingerprint the optimized output.

/// Optimization 1 (§IV-B): common subexpression elimination. Operand
/// combinations (size ≥ 2) shared by multiple INT instructions are hoisted
/// into fresh temporary INT instructions; repeats until fixpoint, then
/// re-runs uni-operand elimination.
void EliminateCommonSubexpressions(ExecutionPlan* plan);

/// Optimization 2 (§IV-B): instruction reordering. Flattens INT
/// instructions to at most two operands, builds the dependency graph, and
/// topologically sorts with the type rank INI < INT < TRC < DBQ < ENU < RES
/// (ties broken by original position) so cheap, failure-detecting work is
/// hoisted out of inner enumeration loops.
void ReorderInstructions(ExecutionPlan* plan);

/// Optimization 3 (§IV-B): triangle caching. Rewrites
/// `X := Intersect(A_i, A_j)` into `X := TCache(...)` when one of u_i/u_j
/// is the first vertex of the matching order and the other is one of its
/// pattern neighbors — those intersections enumerate triangles around the
/// start vertex and repeat across search branches.
void ApplyTriangleCaching(ExecutionPlan* plan);

/// Applies Opt 1 → Opt 2 → Opt 3 in the paper's order.
void OptimizePlan(ExecutionPlan* plan);

}  // namespace benu

#endif  // BENU_PLAN_OPTIMIZER_H_
