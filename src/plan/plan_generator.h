#ifndef BENU_PLAN_PLAN_GENERATOR_H_
#define BENU_PLAN_PLAN_GENERATOR_H_

#include <vector>

#include "common/status.h"
#include "graph/graph.h"
#include "plan/instruction.h"

namespace benu {

/// Generates the raw (unoptimized) BENU execution plan for `pattern` under
/// `matching_order` (§IV-A):
///   - INI + DBQ for the first vertex;
///   - for each later vertex: raw-candidate INT, filtered-candidate INT,
///     ENU, and a DBQ when a later neighbor needs the adjacency set;
///   - the trailing RES;
///   - followed by uni-operand elimination.
/// `constraints` is the symmetry-breaking partial order on V(P); pass the
/// result of ComputeSymmetryBreakingConstraints for duplicate-free
/// enumeration or {} to enumerate all matches.
///
/// Deterministic in (pattern, matching_order, constraints): instruction
/// ids, operand order and filter placement depend only on the arguments,
/// so identical inputs yield byte-identical plans. Plan consumers that
/// cache by input key (the enumeration service) depend on this.
StatusOr<ExecutionPlan> GenerateRawPlan(
    const Graph& pattern, const std::vector<VertexId>& matching_order,
    const std::vector<OrderConstraint>& constraints);

/// Removes INT instructions of the form `X := Intersect(Y)` with no
/// filtering conditions, substituting Y for X everywhere. Exposed for
/// the optimizer, which re-runs it after common-subexpression elimination.
void EliminateUniOperandIntersections(ExecutionPlan* plan);

}  // namespace benu

#endif  // BENU_PLAN_PLAN_GENERATOR_H_
