#ifndef BENU_PLAN_INCREMENTAL_H_
#define BENU_PLAN_INCREMENTAL_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <unordered_set>
#include <utility>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "core/match_consumer.h"
#include "graph/graph.h"
#include "plan/instruction.h"

namespace benu {

/// S-BENU incremental plan generation (arXiv:2006.12819, adapted to this
/// codebase's backtracking executor).
///
/// Decomposition: fix the canonical order e_0 < e_1 < ... < e_{m-1} of the
/// pattern's edges (lexicographic on (min, max) endpoint ids). For a delta
/// edge set Δ, a match of P exists in G ⊕ Δ involving at least one Δ edge
/// iff the set S = { i : pattern edge e_i maps to a Δ edge } is non-empty;
/// the match is charged to plan min(S), so each delta match is found
/// exactly once:
///   - plan i *anchors* pattern edge e_i = (a_i, b_i) to a delta edge —
///     the matching order starts [a_i, b_i] and the executor pins
///     (f(a_i), f(b_i)) to the delta edge via SearchTask::seed_second;
///   - a report-time filter (DeltaMatchFilter) rejects any match of plan i
///     whose earlier pattern edge e_j (j < i) also maps into Δ — that
///     match belongs to plan j.
/// Both orientations of a delta edge {u, v} are tried as (start, seed)
/// = (u, v) and (v, u); at most one survives per match since f is a
/// function. Symmetry breaking is the full pattern's partial order,
/// unchanged — the delta decomposition is orthogonal to duplicate
/// elimination over automorphisms.
///
/// Deletions use the *same* plans: enumerate against the pre-apply
/// snapshot seeded from Δ⁻ to retract, apply, then enumerate against the
/// new snapshot seeded from Δ⁺ to add (distributed/dynamic_runner.h).
/// Net canonicalization (VersionedAdjacencyStore::Canonicalize)
/// guarantees Δ⁺ is disjoint from the old snapshot and Δ⁻ is contained
/// in it, so the retract and add passes partition the changed matches.

/// One incremental plan: anchors canonical pattern edge `edge_index` to a
/// delta data edge and enumerates the remainder against a snapshot.
struct IncrementalPlan {
  /// Index of the anchored edge in IncrementalPlanSet::edges.
  size_t edge_index = 0;
  /// The anchored pattern edge (anchor_u < anchor_v). The plan's matching
  /// order begins [anchor_u, anchor_v]: run it with SearchTask{.start = u,
  /// .seed_second = v} to pin f(anchor_u) = u, f(anchor_v) = v.
  VertexId anchor_u = 0;
  VertexId anchor_v = 0;
  /// Uncompressed plan (never VCBC: DeltaMatchFilter needs the full
  /// f-vector at report time), full symmetry-breaking constraints.
  ExecutionPlan plan;
};

/// The per-edge incremental plans of one pattern, in canonical edge order.
struct IncrementalPlanSet {
  Graph pattern;
  /// Canonical pattern edges, lexicographic, each (min, max).
  std::vector<std::pair<VertexId, VertexId>> edges;
  /// plans[i] anchors edges[i].
  std::vector<IncrementalPlan> plans;
};

/// Generates the incremental plan set for a connected pattern.
/// Deterministic in the pattern (canonical edge order, greedy
/// connectivity-first matching orders with fixed tie-breaks).
StatusOr<IncrementalPlanSet> GenerateIncrementalPlans(const Graph& pattern);

/// The delta edge set of one maintenance pass (Δ⁻ for the retraction
/// pass, Δ⁺ for the addition pass), with O(1) undirected membership.
class EdgePatch {
 public:
  EdgePatch() = default;
  /// `ops` need not be normalized; {u, v} and {v, u} key identically.
  explicit EdgePatch(std::span<const EdgeDelta> ops);

  bool Contains(VertexId u, VertexId v) const {
    return keys_.count(Key(u, v)) != 0;
  }
  size_t size() const { return keys_.size(); }

 private:
  static uint64_t Key(VertexId u, VertexId v) {
    const uint64_t lo = u < v ? u : v;
    const uint64_t hi = u < v ? v : u;
    return (lo << 32) | hi;
  }
  std::unordered_set<uint64_t> keys_;
};

/// Report-time min-index uniqueness filter: forwards a match of plan
/// `plan_index` to `inner` unless some earlier canonical pattern edge
/// e_j (j < plan_index) maps into the patch — that match is plan j's.
/// The check is O(plan_index) hash probes per reported match, against
/// the tiny per-epoch patch, not the graph.
class DeltaMatchFilter : public MatchConsumer {
 public:
  /// All pointers/references must outlive the filter.
  DeltaMatchFilter(const IncrementalPlanSet* set, size_t plan_index,
                   const EdgePatch* patch, MatchConsumer* inner);

  void OnMatch(const std::vector<VertexId>& f) override;
  /// Incremental plans are never compressed; CHECK-fails.
  void OnCompressedCode(
      const std::vector<VertexId>& f,
      const std::vector<VertexSetView>& image_sets) override;

  Count accepted() const { return accepted_; }
  Count rejected() const { return rejected_; }

 private:
  const IncrementalPlanSet* set_;
  size_t plan_index_;
  const EdgePatch* patch_;
  MatchConsumer* inner_;
  Count accepted_ = 0;
  Count rejected_ = 0;
};

/// Deterministic connectivity-first greedy matching order: start at the
/// max-degree vertex (ties: smallest id), repeatedly append the
/// unplaced vertex with the most already-placed neighbors (ties: larger
/// degree, then smaller id). Used for DynamicRunner's full-recompute
/// baseline; `prefix` (optional) pins the first vertices — the
/// incremental generator passes the anchored edge.
std::vector<VertexId> GreedyMatchingOrder(const Graph& pattern,
                                          std::vector<VertexId> prefix = {});

}  // namespace benu

#endif  // BENU_PLAN_INCREMENTAL_H_
