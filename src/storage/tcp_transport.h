#ifndef BENU_STORAGE_TCP_TRANSPORT_H_
#define BENU_STORAGE_TCP_TRANSPORT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/wire.h"
#include "storage/transport.h"

namespace benu {

/// One KV-server address.
struct Endpoint {
  std::string host;
  uint16_t port = 0;
};

/// Parses "host:port[,host:port...]" (e.g. "127.0.0.1:9001,127.0.0.1:9002").
StatusOr<std::vector<Endpoint>> ParseEndpoints(const std::string& spec);

/// Connects to every endpoint, performs the hello handshake and validates
/// the cluster layout: all servers must agree on num_vertices and
/// num_partitions, report num_servers == endpoints.size(), and endpoint i
/// must be server i (partition p is owned by endpoint p % num_servers).
/// Retries each connection until `timeout_ms` elapses, so servers may
/// still be starting when the client comes up.
///
/// The returned transport charges the same round-trip/byte accounting as
/// the simulated and loopback backends — one round trip per partition per
/// batch, wire-frame bytes per reply — so enumeration results and metrics
/// are comparable across backends.
StatusOr<std::shared_ptr<Transport>> ConnectTcpTransport(
    const std::vector<Endpoint>& endpoints, int timeout_ms = 5000);

/// Fetches the serving statistics of one server over its connection.
/// The transport must have been created by ConnectTcpTransport.
StatusOr<wire::ServerStats> QueryServerStats(Transport& transport,
                                             size_t endpoint_index);

}  // namespace benu

#endif  // BENU_STORAGE_TCP_TRANSPORT_H_
