#ifndef BENU_STORAGE_TCP_TRANSPORT_H_
#define BENU_STORAGE_TCP_TRANSPORT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/wire.h"
#include "storage/transport.h"

namespace benu {

/// One KV-server address.
struct Endpoint {
  std::string host;
  uint16_t port = 0;
};

/// Interchangeable replicas of one server index: every replica serves the
/// same partition share, so the client may use any of them and fail over
/// between them when one dies.
struct ReplicaGroup {
  std::vector<Endpoint> replicas;
};

/// Parses "host:port[,host:port...]" (e.g. "127.0.0.1:9001,127.0.0.1:9002").
StatusOr<std::vector<Endpoint>> ParseEndpoints(const std::string& spec);

/// Parses a replica-aware endpoint spec: ',' separates server indexes,
/// '|' separates the replicas of one index. "a:1|b:1,c:2" is two server
/// groups — servers a:1 and b:1 are replicas of index 0, c:2 alone serves
/// index 1. A plain "host:port,host:port" spec parses as single-replica
/// groups, so every legacy endpoint list is a valid replica spec.
StatusOr<std::vector<ReplicaGroup>> ParseReplicaGroups(
    const std::string& spec);

/// Fault-tolerance and pipelining knobs of the TCP transport.
struct TcpTransportOptions {
  /// Budget for establishing (or re-establishing) one connection,
  /// including the hello handshake. Connect attempts against a starting
  /// server are retried with exponential backoff within this budget.
  int connect_timeout_ms = 5000;
  /// No-progress budget per request: if a connection moves no bytes of a
  /// pending reply for this long, the request fails with
  /// kDeadlineExceeded and the connection is torn down.
  int request_timeout_ms = 5000;
  /// Attempts per logical request (1 initial + max_attempts-1 retries).
  /// Each retry reconnects, rotating through the group's replicas.
  int max_attempts = 3;
  /// Backoff before the first retry; doubles per retry up to backoff_max.
  int backoff_initial_ms = 10;
  int backoff_max_ms = 500;
  /// Per-connection in-flight request window. Submitters block once this
  /// many requests are pending on one connection.
  size_t max_inflight = 64;
  /// When false, FetchBatch issues one partition request at a time and
  /// awaits its reply before the next — the pre-pipelining behavior, kept
  /// for A/B measurement (bench_pipeline). Fault tolerance is unaffected.
  bool pipeline = true;
  /// Request delta+varint-encoded adjacency replies. Effective only when
  /// every server advertises the capability in its hello (and
  /// codec::CompressionEnabled allows it); otherwise the transport
  /// transparently falls back to raw replies. Mixed fleets therefore
  /// work, at raw byte cost.
  bool compress = true;
};

/// Snapshot of the transport's fault counters (process-lifetime values
/// are also mirrored as transport.tcp.* in the metrics registry; this
/// struct is the per-instance view, used by tests).
struct TcpFaultStats {
  uint64_t retries = 0;     ///< re-issued requests after transport errors
  uint64_t failovers = 0;   ///< reconnects that landed on another replica
  uint64_t timeouts = 0;    ///< request/connect deadline expiries
  uint64_t reconnects = 0;  ///< successful connection re-establishments
};

/// Connects to one replica of every group, performs the hello handshake
/// and validates the cluster layout: all servers must agree on
/// num_vertices and num_partitions, report num_servers == groups.size(),
/// and every replica of group i must be server i (partition p is owned by
/// group p % num_servers). Layout violations fail immediately
/// (InvalidArgument); unreachable replicas are retried within
/// connect_timeout_ms, rotating through the group.
///
/// The returned transport pipelines requests (tagged frames, one demuxing
/// reader per connection), retries transient failures up to max_attempts
/// with exponential backoff, and fails over to another replica of the
/// group on connection errors. Round-trip/byte accounting is identical to
/// the simulated and loopback backends — one round trip per partition per
/// batch, wire-frame bytes per reply — so enumeration results and metrics
/// are comparable across backends.
StatusOr<std::shared_ptr<Transport>> ConnectTcpTransport(
    const std::vector<ReplicaGroup>& groups,
    const TcpTransportOptions& options = {});

/// Single-replica convenience overload: endpoint i becomes group i.
StatusOr<std::shared_ptr<Transport>> ConnectTcpTransport(
    const std::vector<Endpoint>& endpoints, int timeout_ms = 5000);

/// Fetches the serving statistics of the currently connected replica of
/// one group. The transport must have been created by ConnectTcpTransport.
StatusOr<wire::ServerStats> QueryServerStats(Transport& transport,
                                             size_t endpoint_index);

/// Reads the fault counters of a TCP transport instance.
StatusOr<TcpFaultStats> QueryTcpFaultStats(Transport& transport);

}  // namespace benu

#endif  // BENU_STORAGE_TCP_TRANSPORT_H_
