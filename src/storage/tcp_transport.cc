#include "storage/tcp_transport.h"

#include <cstdlib>
#include <mutex>
#include <utility>

#include "storage/socket_io.h"

namespace benu {

StatusOr<std::vector<Endpoint>> ParseEndpoints(const std::string& spec) {
  std::vector<Endpoint> endpoints;
  size_t start = 0;
  while (start <= spec.size()) {
    size_t comma = spec.find(',', start);
    if (comma == std::string::npos) comma = spec.size();
    const std::string item = spec.substr(start, comma - start);
    const size_t colon = item.rfind(':');
    if (item.empty() || colon == std::string::npos || colon == 0 ||
        colon + 1 == item.size()) {
      return Status::InvalidArgument("bad endpoint '" + item +
                                     "' (expected host:port)");
    }
    const std::string port_str = item.substr(colon + 1);
    char* end = nullptr;
    const long port = std::strtol(port_str.c_str(), &end, 10);
    if (*end != '\0' || port <= 0 || port > 65535) {
      return Status::InvalidArgument("bad port in endpoint '" + item + "'");
    }
    endpoints.push_back(
        {item.substr(0, colon), static_cast<uint16_t>(port)});
    start = comma + 1;
  }
  if (endpoints.empty()) {
    return Status::InvalidArgument("empty endpoint list");
  }
  return endpoints;
}

namespace {

/// Sends one request frame and reads one reply frame over a connection,
/// serialized by the connection's mutex (the protocol is strict
/// request/reply per connection).
class TcpTransport final : public Transport {
 public:
  TcpTransport(std::vector<int> fds, const wire::HelloInfo& layout)
      : fds_(std::move(fds)), layout_(layout) {
    for (size_t i = 0; i < fds_.size(); ++i) {
      locks_.push_back(std::make_unique<std::mutex>());
    }
    InitMetrics(name());
  }

  ~TcpTransport() override {
    for (int fd : fds_) net::CloseFd(fd);
  }

  const char* name() const override { return "tcp"; }
  size_t num_partitions() const override { return layout_.num_partitions; }
  size_t num_vertices() const override { return layout_.num_vertices; }

  StatusOr<std::shared_ptr<const VertexSet>> Fetch(VertexId v) override {
    if (v >= layout_.num_vertices) {
      return Status::OutOfRange("vertex out of range: " + std::to_string(v));
    }
    const size_t endpoint = (v % layout_.num_partitions) % fds_.size();
    std::vector<uint8_t> request;
    wire::AppendGetRequest(v, &request);
    std::vector<uint8_t> reply;
    {
      std::lock_guard<std::mutex> lock(*locks_[endpoint]);
      BENU_RETURN_IF_ERROR(net::WriteAll(fds_[endpoint], request));
      BENU_RETURN_IF_ERROR(net::ReadWireFrame(fds_[endpoint], &reply));
    }
    auto frame = wire::DecodeFrame(reply);
    BENU_RETURN_IF_ERROR(frame.status());
    VertexId key = kInvalidVertex;
    auto set = std::make_shared<VertexSet>();
    BENU_RETURN_IF_ERROR(wire::DecodeAdjacencyReply(*frame, &key, set.get()));
    if (key != v) return Status::Internal("reply key mismatch");
    Account(1, frame->frame_bytes, /*batch=*/false);
    return std::shared_ptr<const VertexSet>(std::move(set));
  }

  StatusOr<BatchResult> FetchBatch(
      std::span<const VertexId> keys) override {
    BatchResult result;
    result.values.resize(keys.size());
    const size_t num_partitions = layout_.num_partitions;
    std::vector<std::vector<VertexId>> partition_keys(num_partitions);
    std::vector<std::vector<size_t>> partition_slots(num_partitions);
    for (size_t i = 0; i < keys.size(); ++i) {
      const VertexId v = keys[i];
      if (v >= layout_.num_vertices) {
        return Status::OutOfRange("vertex out of range: " +
                                  std::to_string(v));
      }
      partition_keys[v % num_partitions].push_back(v);
      partition_slots[v % num_partitions].push_back(i);
    }
    // One wire request per touched partition — the round-trip accounting
    // is per partition even when one server owns several partitions, so
    // the charge matches the simulated and loopback backends exactly.
    std::vector<uint8_t> request;
    std::vector<uint8_t> reply;
    for (size_t p = 0; p < num_partitions; ++p) {
      if (partition_keys[p].empty()) continue;
      const size_t endpoint = p % fds_.size();
      request.clear();
      wire::AppendBatchGetRequest(partition_keys[p], &request);
      std::lock_guard<std::mutex> lock(*locks_[endpoint]);
      BENU_RETURN_IF_ERROR(net::WriteAll(fds_[endpoint], request));
      ++result.round_trips;
      for (size_t slot : partition_slots[p]) {
        BENU_RETURN_IF_ERROR(net::ReadWireFrame(fds_[endpoint], &reply));
        auto frame = wire::DecodeFrame(reply);
        BENU_RETURN_IF_ERROR(frame.status());
        VertexId key = kInvalidVertex;
        auto set = std::make_shared<VertexSet>();
        BENU_RETURN_IF_ERROR(
            wire::DecodeAdjacencyReply(*frame, &key, set.get()));
        result.values[slot] = std::move(set);
        result.bytes += frame->frame_bytes;
      }
    }
    Account(result.round_trips, result.bytes, /*batch=*/true);
    return result;
  }

  StatusOr<wire::ServerStats> QueryStats(size_t endpoint_index) {
    if (endpoint_index >= fds_.size()) {
      return Status::OutOfRange("no such endpoint");
    }
    std::vector<uint8_t> request;
    wire::AppendStatsRequest(&request);
    std::vector<uint8_t> reply;
    {
      std::lock_guard<std::mutex> lock(*locks_[endpoint_index]);
      BENU_RETURN_IF_ERROR(net::WriteAll(fds_[endpoint_index], request));
      BENU_RETURN_IF_ERROR(net::ReadWireFrame(fds_[endpoint_index], &reply));
    }
    auto frame = wire::DecodeFrame(reply);
    BENU_RETURN_IF_ERROR(frame.status());
    return wire::DecodeStatsReply(*frame);
  }

 private:
  std::vector<int> fds_;
  std::vector<std::unique_ptr<std::mutex>> locks_;
  wire::HelloInfo layout_;
};

/// Hello handshake on a fresh connection.
StatusOr<wire::HelloInfo> Hello(int fd) {
  std::vector<uint8_t> request;
  wire::AppendHelloRequest(&request);
  BENU_RETURN_IF_ERROR(net::WriteAll(fd, request));
  std::vector<uint8_t> reply;
  BENU_RETURN_IF_ERROR(net::ReadWireFrame(fd, &reply));
  auto frame = wire::DecodeFrame(reply);
  BENU_RETURN_IF_ERROR(frame.status());
  return wire::DecodeHelloReply(*frame);
}

}  // namespace

StatusOr<std::shared_ptr<Transport>> ConnectTcpTransport(
    const std::vector<Endpoint>& endpoints, int timeout_ms) {
  if (endpoints.empty()) {
    return Status::InvalidArgument("no endpoints");
  }
  std::vector<int> fds;
  auto close_all = [&fds] {
    for (int fd : fds) net::CloseFd(fd);
  };
  wire::HelloInfo layout;
  for (size_t i = 0; i < endpoints.size(); ++i) {
    auto fd = net::TcpConnect(endpoints[i].host, endpoints[i].port,
                              timeout_ms);
    if (!fd.ok()) {
      close_all();
      return fd.status();
    }
    fds.push_back(*fd);
    auto hello = Hello(*fd);
    if (!hello.ok()) {
      close_all();
      return hello.status();
    }
    if (hello->num_servers != endpoints.size() || hello->server_index != i) {
      close_all();
      return Status::InvalidArgument(
          "endpoint " + std::to_string(i) + " reports server " +
          std::to_string(hello->server_index) + "/" +
          std::to_string(hello->num_servers) + ", expected " +
          std::to_string(i) + "/" + std::to_string(endpoints.size()));
    }
    if (i == 0) {
      layout = *hello;
    } else if (hello->num_vertices != layout.num_vertices ||
               hello->num_partitions != layout.num_partitions) {
      close_all();
      return Status::InvalidArgument(
          "endpoint " + std::to_string(i) +
          " disagrees on the graph layout (vertices/partitions)");
    }
  }
  if (layout.num_partitions == 0 || layout.num_vertices == 0) {
    close_all();
    return Status::InvalidArgument("servers report an empty layout");
  }
  return std::shared_ptr<Transport>(
      std::make_shared<TcpTransport>(std::move(fds), layout));
}

StatusOr<wire::ServerStats> QueryServerStats(Transport& transport,
                                             size_t endpoint_index) {
  auto* tcp = dynamic_cast<TcpTransport*>(&transport);
  if (tcp == nullptr) {
    return Status::InvalidArgument("not a TCP transport");
  }
  return tcp->QueryStats(endpoint_index);
}

}  // namespace benu
