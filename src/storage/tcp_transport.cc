#include "storage/tcp_transport.h"

#include <sys/socket.h>

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <utility>

#include "common/logging.h"
#include "common/metrics.h"
#include "storage/socket_io.h"

namespace benu {

StatusOr<std::vector<Endpoint>> ParseEndpoints(const std::string& spec) {
  std::vector<Endpoint> endpoints;
  size_t start = 0;
  while (start <= spec.size()) {
    size_t comma = spec.find(',', start);
    if (comma == std::string::npos) comma = spec.size();
    const std::string item = spec.substr(start, comma - start);
    const size_t colon = item.rfind(':');
    if (item.empty() || colon == std::string::npos || colon == 0 ||
        colon + 1 == item.size()) {
      return Status::InvalidArgument("bad endpoint '" + item +
                                     "' (expected host:port)");
    }
    const std::string port_str = item.substr(colon + 1);
    char* end = nullptr;
    const long port = std::strtol(port_str.c_str(), &end, 10);
    if (*end != '\0' || port <= 0 || port > 65535) {
      return Status::InvalidArgument("bad port in endpoint '" + item + "'");
    }
    endpoints.push_back(
        {item.substr(0, colon), static_cast<uint16_t>(port)});
    start = comma + 1;
  }
  if (endpoints.empty()) {
    return Status::InvalidArgument("empty endpoint list");
  }
  return endpoints;
}

StatusOr<std::vector<ReplicaGroup>> ParseReplicaGroups(
    const std::string& spec) {
  std::vector<ReplicaGroup> groups;
  size_t start = 0;
  while (start <= spec.size()) {
    size_t comma = spec.find(',', start);
    if (comma == std::string::npos) comma = spec.size();
    // One group: '|'-separated replicas, each a host:port endpoint.
    const std::string group_spec = spec.substr(start, comma - start);
    ReplicaGroup group;
    size_t rstart = 0;
    while (rstart <= group_spec.size()) {
      size_t bar = group_spec.find('|', rstart);
      if (bar == std::string::npos) bar = group_spec.size();
      auto endpoint =
          ParseEndpoints(group_spec.substr(rstart, bar - rstart));
      if (!endpoint.ok()) return endpoint.status();
      group.replicas.push_back(endpoint->front());
      rstart = bar + 1;
    }
    groups.push_back(std::move(group));
    start = comma + 1;
  }
  if (groups.empty()) {
    return Status::InvalidArgument("empty replica-group list");
  }
  return groups;
}

namespace {

/// True for failures a reconnect (possibly to another replica) can cure:
/// dead peers, timeouts, socket errors, corrupt reply streams. App-level
/// errors (kOutOfRange and friends from kError frames) and permanent
/// layout mismatches are not retried — a replica must answer exactly like
/// its peers, so retrying could only mask a real bug.
bool Retryable(const Status& s) {
  return s.code() == StatusCode::kUnavailable ||
         s.code() == StatusCode::kDeadlineExceeded ||
         s.code() == StatusCode::kIoError;
}

/// Process-wide fault counters shared by all channels of one transport;
/// mirrored into the metrics registry as transport.tcp.* (docs/metrics.md).
struct TcpCounters {
  TcpCounters() {
    auto& registry = metrics::MetricsRegistry::Global();
    retries_metric = registry.GetCounter(
        "transport.tcp.retries", "1",
        "requests re-issued after transient transport failures");
    failovers_metric = registry.GetCounter(
        "transport.tcp.failovers", "1",
        "reconnects that switched to another replica of the group");
    timeouts_metric = registry.GetCounter(
        "transport.tcp.timeouts", "1",
        "connect/request deadline expiries");
    reconnects_metric = registry.GetCounter(
        "transport.tcp.reconnects", "1",
        "successful connection re-establishments");
  }

  void AddRetry() {
    retries.fetch_add(1, std::memory_order_relaxed);
    retries_metric->Add(1);
  }
  void AddFailover() {
    failovers.fetch_add(1, std::memory_order_relaxed);
    failovers_metric->Add(1);
  }
  void AddTimeout() {
    timeouts.fetch_add(1, std::memory_order_relaxed);
    timeouts_metric->Add(1);
  }
  void AddReconnect() {
    reconnects.fetch_add(1, std::memory_order_relaxed);
    reconnects_metric->Add(1);
  }

  TcpFaultStats Snapshot() const {
    return {retries.load(std::memory_order_relaxed),
            failovers.load(std::memory_order_relaxed),
            timeouts.load(std::memory_order_relaxed),
            reconnects.load(std::memory_order_relaxed)};
  }

  std::atomic<uint64_t> retries{0};
  std::atomic<uint64_t> failovers{0};
  std::atomic<uint64_t> timeouts{0};
  std::atomic<uint64_t> reconnects{0};
  metrics::Counter* retries_metric = nullptr;
  metrics::Counter* failovers_metric = nullptr;
  metrics::Counter* timeouts_metric = nullptr;
  metrics::Counter* reconnects_metric = nullptr;
};

/// One logical request/reply exchange. The caller owns the storage (stack
/// or embedded in a batch op); the channel holds a raw pointer only while
/// the call is pending, and every Submit is guaranteed to complete the
/// call eventually, so Await never blocks past a connection failure.
struct PendingCall {
  /// The encoded request frame; Submit stamps the tag into its header
  /// before sending, so the same call can be re-submitted on retry.
  std::vector<uint8_t> request;
  /// Reply frames expected (keys of a batch; 1 otherwise). An error
  /// frame truncates the sequence early.
  size_t expected_frames = 1;

  uint16_t tag = 0;
  std::vector<std::vector<uint8_t>> replies;
  Status status;
  bool done = false;
};

/// Hello handshake on a fresh (nonblocking) connection.
StatusOr<wire::HelloInfo> HelloHandshake(int fd, int timeout_ms) {
  std::vector<uint8_t> request;
  wire::AppendHelloRequest(&request);
  BENU_RETURN_IF_ERROR(net::WriteAll(fd, request, timeout_ms));
  std::vector<uint8_t> reply;
  BENU_RETURN_IF_ERROR(net::ReadWireFrame(fd, &reply, timeout_ms));
  auto frame = wire::DecodeFrame(reply);
  BENU_RETURN_IF_ERROR(frame.status());
  if (frame->header.type == wire::MessageType::kError) {
    return wire::DecodeError(*frame);
  }
  return wire::DecodeHelloReply(*frame);
}

/// The client side of one replica group: a single connection to the
/// currently chosen replica, with requests pipelined on it. Submitters
/// append tagged request frames (serialized by send_mu_, so send order
/// matches the pending queue); one reader thread per connection epoch
/// demuxes the in-order reply stream back to the pending calls. Any
/// failure — write error, read timeout, EOF, tag mismatch, corrupt
/// framing — tears the connection down and fails every pending call;
/// callers re-submit, which reconnects, rotating to the next replica.
class ServerChannel {
 public:
  ServerChannel(std::vector<Endpoint> replicas, size_t group_index,
                size_t num_groups, const TcpTransportOptions& options,
                TcpCounters* counters)
      : replicas_(std::move(replicas)),
        group_index_(group_index),
        num_groups_(num_groups),
        opt_(options),
        counters_(counters) {}

  ~ServerChannel() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closing_ = true;
      broken_ = true;
      if (fd_ >= 0) shutdown(fd_, SHUT_RDWR);
      for (PendingCall* call : pending_) {
        call->status = Status::Unavailable("transport closed");
        call->done = true;
      }
      pending_.clear();
    }
    cv_.notify_all();
    if (reader_.joinable()) reader_.join();
    if (fd_ >= 0) net::CloseFd(fd_);
  }

  ServerChannel(const ServerChannel&) = delete;
  ServerChannel& operator=(const ServerChannel&) = delete;

  /// Establishes the first connection; returns the validated hello.
  StatusOr<wire::HelloInfo> Connect() {
    std::lock_guard<std::mutex> send_lock(send_mu_);
    std::unique_lock<std::mutex> lock(mu_);
    BENU_RETURN_IF_ERROR(EnsureConnectedLocked(lock));
    return hello_;
  }

  /// Arms reconnect-time validation: any replica this channel connects
  /// to later must agree with the layout the cluster reported initially.
  void SetExpectedLayout(const wire::HelloInfo& layout) {
    std::lock_guard<std::mutex> lock(mu_);
    expected_ = layout;
    have_expected_ = true;
  }

  /// Records the epoch the server acked (kEpochAdvance), extending the
  /// attested identity reconnects are validated against: a replica may
  /// attest an *older* epoch (fresh process, attestation lost) but never
  /// a newer one — that would mean it saw a delta stream this client
  /// never pushed, i.e. it serves some other dynamic graph.
  void NoteEpoch(uint64_t epoch) {
    std::lock_guard<std::mutex> lock(mu_);
    expected_.epoch = epoch;
  }

  /// Registers and sends `call`. Always completes the call eventually:
  /// connect/write failures fail it immediately, otherwise the reader
  /// completes it (or the connection teardown fails it). Await after
  /// every Submit.
  void Submit(PendingCall* call) {
    std::lock_guard<std::mutex> send_lock(send_mu_);
    std::unique_lock<std::mutex> lock(mu_);
    call->done = false;
    call->status = Status::OK();
    call->replies.clear();
    Status s = EnsureConnectedLocked(lock);
    if (!s.ok()) {
      call->status = std::move(s);
      call->done = true;
      return;
    }
    // In-flight window: wait for the pending queue to drain below the
    // cap (the reader makes room as replies arrive).
    cv_.wait(lock, [&] {
      return broken_ || pending_.size() < opt_.max_inflight;
    });
    if (broken_) {
      call->status = Status::Unavailable(
          "connection failed while waiting for the in-flight window");
      call->done = true;
      return;
    }
    call->tag = next_tag_;
    next_tag_ = next_tag_ == wire::kTagMask ? 1 : next_tag_ + 1;
    wire::SetFrameTag(call->request, call->tag);
    pending_.push_back(call);
    const int fd = fd_;
    const uint64_t epoch = epoch_;
    lock.unlock();
    cv_.notify_all();  // wake the reader for the new pending call
    Status ws = net::WriteAll(fd, call->request, opt_.request_timeout_ms);
    if (!ws.ok()) {
      {
        std::lock_guard<std::mutex> lock2(mu_);
        FailConnectionLocked(epoch, ws);
      }
      cv_.notify_all();
    }
  }

  /// Submit() for a whole group of calls, coalescing their request
  /// frames into a single write. One batch fetch produces one request
  /// per owned partition on this channel; sending them together costs
  /// one syscall (and one server wakeup) instead of one per partition.
  /// Same contract as Submit: every call always completes.
  void SubmitMany(const std::vector<PendingCall*>& calls) {
    if (calls.empty()) return;
    if (calls.size() == 1) return Submit(calls.front());
    std::lock_guard<std::mutex> send_lock(send_mu_);
    std::unique_lock<std::mutex> lock(mu_);
    std::vector<uint8_t> coalesced;
    size_t registered = 0;
    Status s = EnsureConnectedLocked(lock);
    for (PendingCall* call : calls) {
      call->done = false;
      call->status = Status::OK();
      call->replies.clear();
      if (s.ok()) {
        cv_.wait(lock, [&] {
          return broken_ || pending_.size() < opt_.max_inflight;
        });
        if (broken_) {
          s = Status::Unavailable(
              "connection failed while waiting for the in-flight window");
        }
      }
      if (!s.ok()) {
        call->status = s;
        call->done = true;
        continue;
      }
      call->tag = next_tag_;
      next_tag_ = next_tag_ == wire::kTagMask ? 1 : next_tag_ + 1;
      wire::SetFrameTag(call->request, call->tag);
      pending_.push_back(call);
      coalesced.insert(coalesced.end(), call->request.begin(),
                       call->request.end());
      ++registered;
    }
    if (registered == 0) return;
    const int fd = fd_;
    const uint64_t epoch = epoch_;
    lock.unlock();
    cv_.notify_all();  // wake the reader for the new pending calls
    Status ws = net::WriteAll(fd, coalesced, opt_.request_timeout_ms);
    if (!ws.ok()) {
      {
        std::lock_guard<std::mutex> lock2(mu_);
        FailConnectionLocked(epoch, ws);
      }
      cv_.notify_all();
    }
  }

  void Await(PendingCall* call) {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] { return call->done; });
  }

  /// Marks the current connection bad (e.g. the caller decoded a corrupt
  /// reply payload): pending calls fail, the next Submit reconnects. The
  /// stream is never resynchronized in place — a connection that produced
  /// one corrupt frame cannot be trusted to frame the next one correctly.
  void Poison(const Status& why) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      FailConnectionLocked(epoch_, why);
    }
    cv_.notify_all();
  }

 private:
  /// Connects (rotating through replicas, with the connect budget spread
  /// over rotation attempts) and spawns the reader. Layout violations are
  /// permanent InvalidArgument and abort the rotation; unreachable
  /// replicas rotate until the budget expires. mu_ is held on entry and
  /// exit (released around thread joins/connect waits via `lock`).
  Status EnsureConnectedLocked(std::unique_lock<std::mutex>& lock) {
    if (fd_ >= 0 && !broken_) return Status::OK();
    if (closing_) return Status::Unavailable("transport closed");
    // Tear down the remains of the previous connection. The old reader
    // observes broken_/epoch and exits; join it before closing the fd so
    // a recycled descriptor number cannot be read by a stale thread.
    broken_ = true;
    if (fd_ >= 0) shutdown(fd_, SHUT_RDWR);
    cv_.notify_all();
    while (reader_.joinable()) {
      std::thread old = std::move(reader_);
      lock.unlock();
      old.join();
      lock.lock();
    }
    if (fd_ >= 0) {
      net::CloseFd(fd_);
      fd_ = -1;
    }
    for (PendingCall* call : pending_) {
      call->status = Status::Unavailable("connection reset");
      call->done = true;
    }
    pending_.clear();

    const auto deadline =
        std::chrono::steady_clock::now() +
        std::chrono::milliseconds(opt_.connect_timeout_ms);
    // Prefer the next replica when the last connection died — the
    // previous one is the known-bad endpoint.
    size_t idx =
        connected_before_ ? (last_replica_ + 1) % replicas_.size() : 0;
    Status last = Status::Unavailable("group " + std::to_string(group_index_) +
                                      ": no replica reachable");
    bool attempted = false;
    for (;;) {
      const auto remaining =
          std::chrono::duration_cast<std::chrono::milliseconds>(
              deadline - std::chrono::steady_clock::now())
              .count();
      if (attempted && remaining <= 0) {
        counters_->AddTimeout();
        return last;
      }
      const Endpoint& ep = replicas_[idx];
      // Slice the budget so one dead replica cannot starve the rest of
      // the rotation; TcpConnect itself backs off within the slice.
      const int slice = static_cast<int>(
          std::clamp<long long>(remaining, 1, 500));
      auto fd = net::TcpConnect(ep.host, ep.port, slice);
      attempted = true;
      if (!fd.ok()) {
        last = fd.status();
        idx = (idx + 1) % replicas_.size();
        continue;
      }
      Status nb = net::SetNonBlocking(*fd);
      StatusOr<wire::HelloInfo> hello =
          nb.ok() ? HelloHandshake(*fd, opt_.request_timeout_ms)
                  : StatusOr<wire::HelloInfo>(nb);
      if (!hello.ok()) {
        net::CloseFd(*fd);
        last = hello.status();
        idx = (idx + 1) % replicas_.size();
        continue;
      }
      if (hello->num_servers != num_groups_ ||
          hello->server_index != group_index_) {
        net::CloseFd(*fd);
        return Status::InvalidArgument(
            ep.host + ":" + std::to_string(ep.port) + " reports server " +
            std::to_string(hello->server_index) + "/" +
            std::to_string(hello->num_servers) + ", expected " +
            std::to_string(group_index_) + "/" +
            std::to_string(num_groups_));
      }
      if (have_expected_ &&
          (hello->num_vertices != expected_.num_vertices ||
           hello->num_partitions != expected_.num_partitions)) {
        net::CloseFd(*fd);
        return Status::InvalidArgument(
            ep.host + ":" + std::to_string(ep.port) +
            " disagrees with the cluster layout (vertices/partitions)");
      }
      if (have_expected_ &&
          (expected_.flags & wire::kHelloSupportsEncoded) != 0 &&
          (hello->flags & wire::kHelloSupportsEncoded) == 0) {
        net::CloseFd(*fd);
        return Status::InvalidArgument(
            ep.host + ":" + std::to_string(ep.port) +
            " lacks the encoded-reply capability the cluster advertised");
      }
      if (have_expected_ && expected_.graph_hash != 0 &&
          hello->graph_hash != 0 &&
          hello->graph_hash != expected_.graph_hash) {
        net::CloseFd(*fd);
        return Status::InvalidArgument(
            ep.host + ":" + std::to_string(ep.port) +
            " serves a different graph labeling (content-hash mismatch)");
      }
      if (have_expected_ &&
          (expected_.flags & wire::kHelloSupportsDeltas) != 0 &&
          (hello->flags & wire::kHelloSupportsDeltas) == 0) {
        net::CloseFd(*fd);
        return Status::InvalidArgument(
            ep.host + ":" + std::to_string(ep.port) +
            " lacks the delta capability the cluster advertised");
      }
      if (have_expected_ && hello->epoch > expected_.epoch) {
        net::CloseFd(*fd);
        return Status::InvalidArgument(
            ep.host + ":" + std::to_string(ep.port) + " attests epoch " +
            std::to_string(hello->epoch) + " ahead of the client's " +
            std::to_string(expected_.epoch) +
            " — it serves a different delta stream");
      }
      fd_ = *fd;
      broken_ = false;
      ++epoch_;
      hello_ = *hello;
      if (connected_before_) {
        counters_->AddReconnect();
        if (idx != last_replica_) counters_->AddFailover();
      }
      connected_before_ = true;
      last_replica_ = idx;
      reader_ = std::thread(
          [this, fd2 = fd_, epoch = epoch_] { ReaderLoop(fd2, epoch); });
      return Status::OK();
    }
  }

  /// Fails the connection of `epoch` (no-op when a newer connection has
  /// superseded it): marks it broken, wakes the reader via shutdown()
  /// and fails every pending call with `why`. Callers notify cv_ after
  /// releasing mu_.
  void FailConnectionLocked(uint64_t epoch, const Status& why) {
    if (epoch != epoch_) return;
    if (!broken_) {
      broken_ = true;
      if (why.code() == StatusCode::kDeadlineExceeded) {
        counters_->AddTimeout();
      }
      if (fd_ >= 0) shutdown(fd_, SHUT_RDWR);
    }
    for (PendingCall* call : pending_) {
      call->status = why;
      call->done = true;
    }
    pending_.clear();
  }

  /// Reader of one connection epoch: demuxes the in-order reply stream
  /// to the pending-call queue. Replies arrive strictly in request order
  /// (the server serves one connection sequentially), so the oldest
  /// pending call owns the next reply frames; its echoed tag proves it.
  void ReaderLoop(int fd, uint64_t epoch) {
    std::vector<uint8_t> buf;
    for (;;) {
      PendingCall* call = nullptr;
      {
        std::unique_lock<std::mutex> lock(mu_);
        cv_.wait(lock, [&] {
          return closing_ || broken_ || epoch_ != epoch || !pending_.empty();
        });
        if (closing_ || broken_ || epoch_ != epoch) return;
        call = pending_.front();
      }
      Status fail;
      std::vector<std::vector<uint8_t>> replies;
      while (replies.size() < call->expected_frames) {
        Status s = net::ReadWireFrame(fd, &buf, opt_.request_timeout_ms);
        if (!s.ok()) {
          // Bad magic / oversized frame means the stream itself is
          // corrupt — retryable over a fresh connection, so surface it
          // as Unavailable rather than the permanent InvalidArgument.
          fail = s.code() == StatusCode::kInvalidArgument
                     ? Status::Unavailable("reply stream corrupt (" +
                                           s.message() +
                                           "); dropping connection")
                     : std::move(s);
          break;
        }
        if (wire::FrameTag(buf) != call->tag) {
          fail = Status::Unavailable(
              "reply tag mismatch — connection desynchronized");
          break;
        }
        const bool is_error =
            buf.size() > 5 &&
            buf[5] == static_cast<uint8_t>(wire::MessageType::kError);
        replies.push_back(buf);
        if (is_error) break;  // an error frame truncates the sequence
      }
      if (!fail.ok()) {
        {
          std::lock_guard<std::mutex> lock(mu_);
          FailConnectionLocked(epoch, fail);
        }
        cv_.notify_all();
        return;
      }
      {
        std::lock_guard<std::mutex> lock(mu_);
        // The connection may have been failed while we were reading; the
        // call is then already completed with an error.
        if (closing_ || broken_ || epoch_ != epoch) return;
        BENU_CHECK(!pending_.empty() && pending_.front() == call);
        pending_.pop_front();
        call->replies = std::move(replies);
        call->status = Status::OK();
        call->done = true;
      }
      cv_.notify_all();
    }
  }

  const std::vector<Endpoint> replicas_;
  const size_t group_index_;
  const size_t num_groups_;
  const TcpTransportOptions opt_;
  TcpCounters* const counters_;

  /// Serializes submissions: push-to-pending and socket write must be
  /// atomic against other submitters so tag order matches send order.
  /// Lock order: send_mu_ before mu_.
  std::mutex send_mu_;

  std::mutex mu_;
  std::condition_variable cv_;
  int fd_ = -1;
  uint64_t epoch_ = 0;
  bool broken_ = true;  // no connection yet
  bool closing_ = false;
  std::deque<PendingCall*> pending_;
  std::thread reader_;
  uint16_t next_tag_ = 1;
  wire::HelloInfo hello_;
  wire::HelloInfo expected_;
  bool have_expected_ = false;
  bool connected_before_ = false;
  size_t last_replica_ = 0;
};

/// The fault-tolerant pipelined TCP backend. One ServerChannel per
/// replica group; FetchBatch submits every partition request up front and
/// awaits the replies afterwards, so the batch costs one round-trip
/// latency per *channel* (max), not per partition (sum) — while the
/// round-trip *accounting* stays one per partition per batch, identical
/// to the simulated and loopback backends.
class TcpTransport final : public Transport {
 public:
  TcpTransport(std::shared_ptr<TcpCounters> counters,
               std::vector<std::unique_ptr<ServerChannel>> channels,
               std::vector<uint8_t> delta_capable,
               const wire::HelloInfo& layout,
               const TcpTransportOptions& options, bool compress)
      : counters_(std::move(counters)),
        channels_(std::move(channels)),
        delta_capable_(std::move(delta_capable)),
        layout_(layout),
        opt_(options),
        compress_(compress) {
    InitMetrics(name());
  }

  const char* name() const override { return "tcp"; }
  size_t num_partitions() const override { return layout_.num_partitions; }
  size_t num_vertices() const override { return layout_.num_vertices; }
  uint32_t graph_hash() const override { return layout_.graph_hash; }
  bool compressed() const override { return compress_; }

  StatusOr<AdjacencyPayload> Fetch(VertexId v) override {
    if (v >= layout_.num_vertices) {
      return Status::OutOfRange("vertex out of range: " + std::to_string(v));
    }
    ServerChannel& channel =
        *channels_[(v % layout_.num_partitions) % channels_.size()];
    PendingCall call;
    wire::AppendGetRequest(v, &call.request, /*want_encoded=*/compress_);
    call.expected_frames = 1;
    AdjacencyPayload payload;
    BENU_RETURN_IF_ERROR(RunCall(
        channel, &call, /*already_awaited=*/false,
        [&](const PendingCall& c) -> Status {
          VertexId key = kInvalidVertex;
          AdjacencyPayload decoded;
          BENU_RETURN_IF_ERROR(DecodeSingleAdjacency(c, &key, &decoded));
          if (key != v) {
            return Status::Unavailable("reply key mismatch for vertex " +
                                       std::to_string(v));
          }
          payload = std::move(decoded);
          return Status::OK();
        }));
    Account(1, payload.wire_bytes,
            payload.is_encoded() ? payload.wire_bytes : 0, /*batch=*/false);
    return payload;
  }

  StatusOr<BatchResult> FetchBatch(
      std::span<const VertexId> keys) override {
    BatchResult result;
    result.values.resize(keys.size());
    const size_t num_partitions = layout_.num_partitions;
    // One op per touched partition, in partition order (deterministic,
    // and matching the accounting of the other backends).
    struct Op {
      std::vector<VertexId> keys;
      std::vector<size_t> slots;
      PendingCall call;
      size_t channel = 0;
    };
    std::vector<std::unique_ptr<Op>> ops;
    std::vector<Op*> by_partition(num_partitions, nullptr);
    for (size_t i = 0; i < keys.size(); ++i) {
      const VertexId v = keys[i];
      if (v >= layout_.num_vertices) {
        return Status::OutOfRange("vertex out of range: " +
                                  std::to_string(v));
      }
      const size_t p = v % num_partitions;
      if (by_partition[p] == nullptr) {
        ops.push_back(std::make_unique<Op>());
        ops.back()->channel = p % channels_.size();
        by_partition[p] = ops.back().get();
      }
      by_partition[p]->keys.push_back(v);
      by_partition[p]->slots.push_back(i);
    }
    for (auto& op : ops) {
      wire::AppendBatchGetRequest(op->keys, &op->call.request,
                                  /*want_encoded=*/compress_);
      op->call.expected_frames = op->keys.size();
    }
    if (opt_.pipeline) {
      // Submit every partition request before awaiting any reply: the
      // channels work concurrently, and requests sharing one channel are
      // pipelined on its connection — coalesced into a single write, so
      // a batch costs each channel one send regardless of how many of
      // its partitions the batch touches.
      std::vector<std::vector<PendingCall*>> per_channel(channels_.size());
      for (auto& op : ops) per_channel[op->channel].push_back(&op->call);
      for (size_t c = 0; c < channels_.size(); ++c) {
        channels_[c]->SubmitMany(per_channel[c]);
      }
      for (auto& op : ops) channels_[op->channel]->Await(&op->call);
    } else {
      // Pre-pipelining behavior: one blocking round trip per partition.
      for (auto& op : ops) {
        channels_[op->channel]->Submit(&op->call);
        channels_[op->channel]->Await(&op->call);
      }
    }
    // Decode (and, where needed, retry) each op. Every call has been
    // awaited above, so early error returns leave nothing in flight.
    size_t encoded_bytes = 0;
    for (auto& op : ops) {
      size_t op_bytes = 0;
      size_t op_encoded_bytes = 0;
      BENU_RETURN_IF_ERROR(RunCall(
          *channels_[op->channel], &op->call, /*already_awaited=*/true,
          [&](const PendingCall& c) -> Status {
            return DecodeBatchReplies(c, *op, &result, &op_bytes,
                                      &op_encoded_bytes);
          }));
      result.round_trips += 1;
      result.bytes += op_bytes;
      encoded_bytes += op_encoded_bytes;
    }
    Account(result.round_trips, result.bytes, encoded_bytes,
            /*batch=*/true);
    return result;
  }

  StatusOr<wire::ServerStats> QueryStats(size_t endpoint_index) {
    if (endpoint_index >= channels_.size()) {
      return Status::OutOfRange("no such endpoint");
    }
    PendingCall call;
    wire::AppendStatsRequest(&call.request);
    call.expected_frames = 1;
    wire::ServerStats stats;
    BENU_RETURN_IF_ERROR(RunCall(
        *channels_[endpoint_index], &call, /*already_awaited=*/false,
        [&](const PendingCall& c) -> Status {
          auto frame = DecodeSingleFrame(c);
          BENU_RETURN_IF_ERROR(frame.status());
          if (frame->header.type == wire::MessageType::kError) {
            return wire::DecodeError(*frame);
          }
          auto decoded = wire::DecodeStatsReply(*frame);
          if (!decoded.ok()) {
            return Status::Unavailable("corrupt stats reply: " +
                                       decoded.status().message());
          }
          stats = *decoded;
          return Status::OK();
        }));
    return stats;
  }

  TcpFaultStats FaultStats() const { return counters_->Snapshot(); }

  StatusOr<DeltaPushResult> PushDelta(
      uint64_t epoch, std::span<const EdgeDelta> ops) override {
    std::vector<uint8_t> request;
    wire::AppendApplyDelta(epoch, ops, &request);
    return BroadcastDeltaFrame(request, epoch, /*commit=*/false);
  }

  StatusOr<DeltaPushResult> AdvanceEpoch(uint64_t epoch) override {
    std::vector<uint8_t> request;
    wire::AppendEpochAdvance(epoch, &request);
    return BroadcastDeltaFrame(request, epoch, /*commit=*/true);
  }

 private:
  /// Sends one delta frame to every delta-capable channel (pipelined:
  /// all submits, then all awaits) and requires a kDeltaAck echoing
  /// `epoch` from each. Channels whose server lacks the capability are
  /// skipped and counted as downgraded — base fetches keep working
  /// there, only the epoch attestation is lost. With `commit` the acked
  /// epoch becomes part of each channel's reconnect-validated identity.
  StatusOr<DeltaPushResult> BroadcastDeltaFrame(
      const std::vector<uint8_t>& request, uint64_t epoch, bool commit) {
    DeltaPushResult result;
    std::vector<std::unique_ptr<PendingCall>> calls(channels_.size());
    for (size_t c = 0; c < channels_.size(); ++c) {
      if (!delta_capable_[c]) {
        ++result.downgraded_servers;
        continue;
      }
      calls[c] = std::make_unique<PendingCall>();
      calls[c]->request = request;
      calls[c]->expected_frames = 1;
      channels_[c]->Submit(calls[c].get());
    }
    // Await everything before inspecting anything, so an early error
    // return cannot leave a call in flight pointing at dead stack.
    for (size_t c = 0; c < channels_.size(); ++c) {
      if (calls[c] != nullptr) channels_[c]->Await(calls[c].get());
    }
    for (size_t c = 0; c < channels_.size(); ++c) {
      if (calls[c] == nullptr) continue;
      BENU_RETURN_IF_ERROR(calls[c]->status);
      auto frame = DecodeSingleFrame(*calls[c]);
      BENU_RETURN_IF_ERROR(frame.status());
      if (frame->header.type == wire::MessageType::kError) {
        return wire::DecodeError(*frame);
      }
      auto acked = wire::DecodeDeltaAck(*frame);
      if (!acked.ok()) {
        return Status::Unavailable("corrupt delta ack: " +
                                   acked.status().message());
      }
      if (*acked != epoch) {
        return Status::Unavailable("delta ack epoch mismatch from server " +
                                   std::to_string(c));
      }
      ++result.acked_servers;
      if (commit) channels_[c]->NoteEpoch(epoch);
    }
    return result;
  }

  /// Decodes the one frame of a single-reply call.
  static StatusOr<wire::Frame> DecodeSingleFrame(const PendingCall& call) {
    if (call.replies.size() != 1) {
      return Status::Unavailable("corrupt reply: expected exactly one frame");
    }
    auto frame = wire::DecodeFrame(call.replies[0]);
    if (!frame.ok()) {
      return Status::Unavailable("corrupt reply frame: " +
                                 frame.status().message());
    }
    return frame;
  }

  /// Decodes one adjacency reply frame, raw or delta+varint encoded: the
  /// server chooses (it answers raw when not encoding), so dispatch on
  /// the frame's own encoding flag.
  static Status DecodeAdjacencyFrame(const wire::Frame& frame, VertexId* key,
                                     AdjacencyPayload* payload) {
    Status s;
    if (wire::FrameIsEncoded(frame)) {
      auto set = std::make_shared<codec::EncodedSet>();
      s = wire::DecodeEncodedAdjacencyReply(frame, key, set.get());
      payload->encoded = std::move(set);
    } else {
      auto set = std::make_shared<VertexSet>();
      s = wire::DecodeAdjacencyReply(frame, key, set.get());
      payload->decoded = std::move(set);
    }
    if (!s.ok()) {
      return Status::Unavailable("corrupt adjacency reply: " + s.message());
    }
    payload->wire_bytes = frame.frame_bytes;
    return Status::OK();
  }

  /// Decodes a single-key adjacency reply. Corruption comes back as
  /// kUnavailable (retryable over a fresh connection), a kError frame as
  /// its app-level status (not retried).
  static Status DecodeSingleAdjacency(const PendingCall& call, VertexId* key,
                                      AdjacencyPayload* payload) {
    auto frame = DecodeSingleFrame(call);
    BENU_RETURN_IF_ERROR(frame.status());
    if (frame->header.type == wire::MessageType::kError) {
      return wire::DecodeError(*frame);
    }
    return DecodeAdjacencyFrame(*frame, key, payload);
  }

  /// Decodes the reply frames of one batch op into the result slots.
  Status DecodeBatchReplies(const PendingCall& call, /*Op*/ const auto& op,
                            BatchResult* result, size_t* op_bytes,
                            size_t* op_encoded_bytes) {
    *op_bytes = 0;
    *op_encoded_bytes = 0;
    for (size_t i = 0; i < call.replies.size(); ++i) {
      auto frame = wire::DecodeFrame(call.replies[i]);
      if (!frame.ok()) {
        return Status::Unavailable("corrupt reply frame: " +
                                   frame.status().message());
      }
      if (frame->header.type == wire::MessageType::kError) {
        return wire::DecodeError(*frame);
      }
      VertexId key = kInvalidVertex;
      AdjacencyPayload payload;
      BENU_RETURN_IF_ERROR(DecodeAdjacencyFrame(*frame, &key, &payload));
      if (key != op.keys[i]) {
        return Status::Unavailable("reply key mismatch in batch");
      }
      *op_bytes += payload.wire_bytes;
      if (payload.is_encoded()) *op_encoded_bytes += payload.wire_bytes;
      result->values[op.slots[i]] = std::move(payload);
    }
    if (call.replies.size() != op.keys.size()) {
      return Status::Unavailable("truncated batch reply");
    }
    return Status::OK();
  }

  /// Drives one call to completion: submit/await (unless the first
  /// attempt already happened), decode, and retry transient failures up
  /// to max_attempts with exponential backoff, reconnecting/failing over
  /// via the channel. Decode-level corruption poisons the connection
  /// before retrying — the reply stream is never trusted after one bad
  /// frame (this is what prevents stale frames from leaking into the
  /// next request).
  Status RunCall(ServerChannel& channel, PendingCall* call,
                 bool already_awaited,
                 const std::function<Status(const PendingCall&)>& decode) {
    int attempts = 0;
    int backoff_ms = opt_.backoff_initial_ms;
    if (!already_awaited) {
      channel.Submit(call);
      channel.Await(call);
    }
    ++attempts;
    for (;;) {
      Status s = call->status;
      if (s.ok()) {
        s = decode(*call);
        if (s.ok()) return s;
        if (!Retryable(s)) return s;  // app-level error: do not retry
        channel.Poison(s);
      } else if (!Retryable(s)) {
        return s;
      }
      if (attempts >= opt_.max_attempts) return s;
      ++attempts;
      counters_->AddRetry();
      std::this_thread::sleep_for(std::chrono::milliseconds(backoff_ms));
      backoff_ms = std::min(backoff_ms * 2, opt_.backoff_max_ms);
      channel.Submit(call);
      channel.Await(call);
    }
  }

  const std::shared_ptr<TcpCounters> counters_;
  std::vector<std::unique_ptr<ServerChannel>> channels_;
  /// Per-channel: did that server's hello advertise kHelloSupportsDeltas.
  const std::vector<uint8_t> delta_capable_;
  const wire::HelloInfo layout_;
  const TcpTransportOptions opt_;
  /// Effective compression: requested AND every server capable AND the
  /// env kill-switch off.
  const bool compress_;
};

}  // namespace

StatusOr<std::shared_ptr<Transport>> ConnectTcpTransport(
    const std::vector<ReplicaGroup>& groups,
    const TcpTransportOptions& options) {
  if (groups.empty()) {
    return Status::InvalidArgument("no replica groups");
  }
  for (size_t i = 0; i < groups.size(); ++i) {
    if (groups[i].replicas.empty()) {
      return Status::InvalidArgument("replica group " + std::to_string(i) +
                                     " is empty");
    }
  }
  auto counters = std::make_shared<TcpCounters>();
  std::vector<std::unique_ptr<ServerChannel>> channels;
  wire::HelloInfo layout;
  // Encoded replies need every server to support them; one legacy server
  // in the fleet downgrades the whole transport to raw (correct either
  // way — compression only changes the bytes on the wire).
  bool all_support_encoding = true;
  // Delta pushes are per-server: capable servers attest epochs, legacy
  // (pre-delta) peers are skipped — no all-or-nothing downgrade needed
  // because snapshots are composed client-side (versioned_store.h).
  std::vector<uint8_t> delta_capable;
  // Each server's own attested epoch: reconnect validation allows a
  // replica to attest an older epoch (fresh process) but never a newer
  // one, so the expectation must be per server, like the capability bit.
  std::vector<uint64_t> attested_epochs;
  for (size_t i = 0; i < groups.size(); ++i) {
    channels.push_back(std::make_unique<ServerChannel>(
        groups[i].replicas, i, groups.size(), options, counters.get()));
    auto hello = channels.back()->Connect();
    if (!hello.ok()) return hello.status();
    if ((hello->flags & wire::kHelloSupportsEncoded) == 0) {
      all_support_encoding = false;
    }
    delta_capable.push_back(
        (hello->flags & wire::kHelloSupportsDeltas) != 0 ? 1 : 0);
    attested_epochs.push_back(hello->epoch);
    if (i == 0) {
      layout = *hello;
    } else if (hello->num_vertices != layout.num_vertices ||
               hello->num_partitions != layout.num_partitions) {
      return Status::InvalidArgument(
          "replica group " + std::to_string(i) +
          " disagrees on the graph layout (vertices/partitions)");
    } else if (layout.graph_hash != 0 && hello->graph_hash != 0 &&
               hello->graph_hash != layout.graph_hash) {
      return Status::InvalidArgument(
          "replica group " + std::to_string(i) +
          " serves a different graph labeling (content-hash mismatch)");
    }
  }
  if (layout.num_partitions == 0 || layout.num_vertices == 0) {
    return Status::InvalidArgument("servers report an empty layout");
  }
  const bool compress =
      codec::CompressionEnabled(options.compress && all_support_encoding);
  if (!compress) {
    // Reconnect validation must not demand a capability we don't use.
    layout.flags &= ~wire::kHelloSupportsEncoded;
  }
  for (size_t i = 0; i < channels.size(); ++i) {
    // Delta capability is per server, so each channel validates against
    // its own server's advertisement, not the fleet consensus.
    wire::HelloInfo expected = layout;
    if (delta_capable[i]) {
      expected.flags |= wire::kHelloSupportsDeltas;
    } else {
      expected.flags &= ~wire::kHelloSupportsDeltas;
    }
    expected.epoch = attested_epochs[i];
    channels[i]->SetExpectedLayout(expected);
  }
  return std::shared_ptr<Transport>(std::make_shared<TcpTransport>(
      std::move(counters), std::move(channels), std::move(delta_capable),
      layout, options, compress));
}

StatusOr<std::shared_ptr<Transport>> ConnectTcpTransport(
    const std::vector<Endpoint>& endpoints, int timeout_ms) {
  if (endpoints.empty()) {
    return Status::InvalidArgument("no endpoints");
  }
  std::vector<ReplicaGroup> groups;
  groups.reserve(endpoints.size());
  for (const Endpoint& ep : endpoints) groups.push_back({{ep}});
  TcpTransportOptions options;
  options.connect_timeout_ms = timeout_ms;
  return ConnectTcpTransport(groups, options);
}

StatusOr<wire::ServerStats> QueryServerStats(Transport& transport,
                                             size_t endpoint_index) {
  auto* tcp = dynamic_cast<TcpTransport*>(&transport);
  if (tcp == nullptr) {
    return Status::InvalidArgument("not a TCP transport");
  }
  return tcp->QueryStats(endpoint_index);
}

StatusOr<TcpFaultStats> QueryTcpFaultStats(Transport& transport) {
  auto* tcp = dynamic_cast<TcpTransport*>(&transport);
  if (tcp == nullptr) {
    return Status::InvalidArgument("not a TCP transport");
  }
  return tcp->FaultStats();
}

}  // namespace benu
