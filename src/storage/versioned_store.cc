#include "storage/versioned_store.h"

#include <algorithm>
#include <map>
#include <utility>

#include "common/logging.h"
#include "common/metrics.h"

namespace benu {

namespace {

/// Sorted insert of `v` into `s` (no-op if present).
void SortedInsert(std::vector<VertexId>* s, VertexId v) {
  auto it = std::lower_bound(s->begin(), s->end(), v);
  if (it == s->end() || *it != v) s->insert(it, v);
}

/// Sorted erase of `v` from `s`; returns true iff it was present.
bool SortedErase(std::vector<VertexId>* s, VertexId v) {
  auto it = std::lower_bound(s->begin(), s->end(), v);
  if (it == s->end() || *it != v) return false;
  s->erase(it);
  return true;
}

bool SortedContains(const std::vector<VertexId>& s, VertexId v) {
  return std::binary_search(s.begin(), s.end(), v);
}

}  // namespace

VersionedAdjacencyStore::VersionedAdjacencyStore(
    std::shared_ptr<Transport> transport)
    : DistributedKvStore(transport), transport_(std::move(transport)) {
  auto& reg = metrics::MetricsRegistry::Global();
  advances_metric_ = reg.GetCounter("store.epoch.advances", "1",
                                    "epoch batches applied to the store");
  ops_staged_metric_ = reg.GetCounter(
      "store.epoch.ops_staged", "1", "raw edge ops before canonicalization");
  ops_noop_metric_ =
      reg.GetCounter("store.epoch.ops_noop", "1",
                     "ops dropped as net no-ops by canonicalization");
  edges_inserted_metric_ = reg.GetCounter("store.epoch.edges_inserted", "1",
                                          "net edges inserted across epochs");
  edges_removed_metric_ = reg.GetCounter("store.epoch.edges_removed", "1",
                                         "net edges removed across epochs");
  patched_reads_metric_ =
      reg.GetCounter("store.epoch.patched_reads", "1",
                     "adjacency reads served through the overlay");
  downgraded_pushes_metric_ = reg.GetCounter(
      "store.epoch.downgraded_pushes", "1",
      "delta pushes skipped for pre-delta peers (capability downgrade)");
  epoch_gauge_ =
      reg.GetGauge("store.epoch.current", "1", "current store epoch");
  overlay_gauge_ = reg.GetGauge("store.epoch.overlay_vertices", "1",
                                "vertices carrying a delta overlay");
}

bool VersionedAdjacencyStore::EdgeExistsLocked(
    VertexId u, VertexId v,
    std::unordered_map<VertexId, std::shared_ptr<const VertexSet>>* base_cache)
    const {
  auto it = overlay_.find(u);
  if (it != overlay_.end()) {
    if (SortedContains(it->second.removed, v)) return false;
    if (SortedContains(it->second.added, v)) return true;
  }
  auto cached = base_cache->find(u);
  if (cached == base_cache->end()) {
    cached =
        base_cache
            ->emplace(u, DistributedKvStore::GetAdjacency(u).Materialize())
            .first;
  }
  const auto& base = cached->second;
  return base != nullptr && SortedContains(*base, v);
}

bool VersionedAdjacencyStore::EdgeExists(VertexId u, VertexId v) const {
  std::shared_lock lock(mu_);
  std::unordered_map<VertexId, std::shared_ptr<const VertexSet>> base_cache;
  return EdgeExistsLocked(u, v, &base_cache);
}

EpochDelta VersionedAdjacencyStore::Canonicalize(
    std::span<const EdgeDelta> ops) const {
  std::shared_lock lock(mu_);
  EpochDelta delta;
  delta.raw_ops = ops.size();
  delta.epoch = epoch_.load(std::memory_order_acquire) + 1;
  // Edge key -> (presence before the batch, presence after ops so far).
  // std::map so the net delta comes out sorted without a second pass.
  std::map<std::pair<VertexId, VertexId>, std::pair<bool, bool>> state;
  std::unordered_map<VertexId, std::shared_ptr<const VertexSet>> base_cache;
  for (const EdgeDelta& op : ops) {
    if (op.u == op.v) continue;  // self-loops are not representable
    const auto key = std::minmax(op.u, op.v);
    auto it = state.find(key);
    if (it == state.end()) {
      const bool present = EdgeExistsLocked(key.first, key.second, &base_cache);
      it = state.emplace(key, std::make_pair(present, present)).first;
    }
    it->second.second = op.insert;
  }
  for (const auto& [key, presence] : state) {
    if (presence.second == presence.first) continue;  // net no-op
    auto& side = presence.second ? delta.inserted : delta.removed;
    side.push_back({key.first, key.second, presence.second});
    delta.touched.push_back(key.first);
    delta.touched.push_back(key.second);
  }
  std::sort(delta.touched.begin(), delta.touched.end());
  delta.touched.erase(
      std::unique(delta.touched.begin(), delta.touched.end()),
      delta.touched.end());
  return delta;
}

void VersionedAdjacencyStore::InsertHalfEdgeLocked(VertexId u, VertexId v) {
  Overlay& o = overlay_[u];
  // Canonicalization guarantees {u,v} is absent: either it was removed
  // from the base earlier (undo that) or it never existed (add it).
  if (!SortedErase(&o.removed, v)) SortedInsert(&o.added, v);
  if (o.added.empty() && o.removed.empty()) overlay_.erase(u);
}

void VersionedAdjacencyStore::RemoveHalfEdgeLocked(VertexId u, VertexId v) {
  Overlay& o = overlay_[u];
  // Present edge: either an earlier overlay insert (undo it) or a base
  // edge (mask it).
  if (!SortedErase(&o.added, v)) SortedInsert(&o.removed, v);
  if (o.added.empty() && o.removed.empty()) overlay_.erase(u);
}

uint64_t VersionedAdjacencyStore::Apply(const EpochDelta& delta) {
  {
    std::unique_lock lock(mu_);
    BENU_CHECK(delta.epoch == epoch_.load(std::memory_order_acquire) + 1)
        << "stale EpochDelta: delta.epoch=" << delta.epoch
        << " store epoch=" << epoch_.load();
    for (const EdgeDelta& e : delta.removed) {
      RemoveHalfEdgeLocked(e.u, e.v);
      RemoveHalfEdgeLocked(e.v, e.u);
    }
    for (const EdgeDelta& e : delta.inserted) {
      InsertHalfEdgeLocked(e.u, e.v);
      InsertHalfEdgeLocked(e.v, e.u);
    }
    epoch_.store(delta.epoch, std::memory_order_release);
    overlay_gauge_->Set(static_cast<double>(overlay_.size()));
  }
  // Replicate outside the lock: servers only attest the epoch (base
  // payloads are immutable), so readers need not wait on the network.
  std::vector<EdgeDelta> wire_ops;
  wire_ops.reserve(delta.removed.size() + delta.inserted.size());
  wire_ops.insert(wire_ops.end(), delta.removed.begin(), delta.removed.end());
  wire_ops.insert(wire_ops.end(), delta.inserted.begin(),
                  delta.inserted.end());
  auto push = transport_->PushDelta(delta.epoch, wire_ops);
  BENU_CHECK(push.ok()) << "delta push failed: " << push.status().ToString();
  auto advance = transport_->AdvanceEpoch(delta.epoch);
  BENU_CHECK(advance.ok())
      << "epoch advance failed: " << advance.status().ToString();
  advances_metric_->Add(1);
  ops_staged_metric_->Add(delta.raw_ops);
  ops_noop_metric_->Add(delta.raw_ops - delta.inserted.size() -
                        delta.removed.size());
  edges_inserted_metric_->Add(delta.inserted.size());
  edges_removed_metric_->Add(delta.removed.size());
  downgraded_pushes_metric_->Add(push->downgraded_servers);
  epoch_gauge_->Set(static_cast<double>(delta.epoch));
  return delta.epoch;
}

size_t VersionedAdjacencyStore::overlay_vertices() const {
  std::shared_lock lock(mu_);
  return overlay_.size();
}

AdjacencyPayload VersionedAdjacencyStore::PatchPayload(
    const Overlay& overlay, const AdjacencyPayload& base) const {
  auto base_set = base.Materialize();
  auto merged = std::make_shared<VertexSet>();
  merged->reserve((base_set != nullptr ? base_set->size() : 0) +
                  overlay.added.size());
  if (base_set != nullptr) {
    std::set_difference(base_set->begin(), base_set->end(),
                        overlay.removed.begin(), overlay.removed.end(),
                        std::back_inserter(*merged));
  }
  if (!overlay.added.empty()) {
    VertexSet with_added;
    with_added.reserve(merged->size() + overlay.added.size());
    std::set_union(merged->begin(), merged->end(), overlay.added.begin(),
                   overlay.added.end(), std::back_inserter(with_added));
    *merged = std::move(with_added);
  }
  AdjacencyPayload patched;
  patched.decoded = std::move(merged);
  patched.wire_bytes = base.wire_bytes;
  patched_reads_metric_->Add(1);
  return patched;
}

AdjacencyPayload VersionedAdjacencyStore::GetAdjacency(VertexId v) const {
  std::shared_lock lock(mu_);
  auto it = overlay_.find(v);
  if (it == overlay_.end()) return DistributedKvStore::GetAdjacency(v);
  return PatchPayload(it->second, DistributedKvStore::GetAdjacency(v));
}

DistributedKvStore::BatchReply VersionedAdjacencyStore::GetAdjacencyBatch(
    std::span<const VertexId> keys) const {
  std::shared_lock lock(mu_);
  BatchReply reply = DistributedKvStore::GetAdjacencyBatch(keys);
  if (overlay_.empty()) return reply;
  for (size_t i = 0; i < keys.size(); ++i) {
    auto it = overlay_.find(keys[i]);
    if (it == overlay_.end()) continue;
    reply.values[i] = PatchPayload(it->second, reply.values[i]);
  }
  return reply;
}

}  // namespace benu
