#include "storage/triangle_cache.h"

#include <utility>

#include "common/metrics.h"

namespace benu {

TriangleCache::TriangleCache(size_t max_entries)
    : max_entries_(max_entries) {}

TriangleCache::~TriangleCache() {
  if (stats_.hits == 0 && stats_.misses == 0) return;
  auto& registry = metrics::MetricsRegistry::Global();
  registry
      .GetCounter("triangle_cache.hits", "1",
                  "TRC lookups served from the per-thread cache")
      ->Add(stats_.hits);
  registry
      .GetCounter("triangle_cache.misses", "1",
                  "TRC lookups that recomputed the triangle set")
      ->Add(stats_.misses);
}

void TriangleCache::BeginTask(VertexId start) {
  if (start != current_start_) {
    entries_.clear();
    current_start_ = start;
  }
}

std::shared_ptr<const VertexSet> TriangleCache::Lookup(VertexId neighbor) {
  auto it = entries_.find(neighbor);
  if (it == entries_.end()) {
    ++stats_.misses;
    return nullptr;
  }
  ++stats_.hits;
  return it->second;
}

void TriangleCache::Insert(VertexId neighbor,
                           std::shared_ptr<const VertexSet> set) {
  if (max_entries_ == 0 || entries_.size() >= max_entries_) return;
  entries_.emplace(neighbor, std::move(set));
}

}  // namespace benu
