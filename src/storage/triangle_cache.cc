#include "storage/triangle_cache.h"

#include <utility>

namespace benu {

void TriangleCache::BeginTask(VertexId start) {
  if (start != current_start_) {
    entries_.clear();
    current_start_ = start;
  }
}

std::shared_ptr<const VertexSet> TriangleCache::Lookup(VertexId neighbor) {
  auto it = entries_.find(neighbor);
  if (it == entries_.end()) {
    ++stats_.misses;
    return nullptr;
  }
  ++stats_.hits;
  return it->second;
}

void TriangleCache::Insert(VertexId neighbor,
                           std::shared_ptr<const VertexSet> set) {
  if (max_entries_ == 0 || entries_.size() >= max_entries_) return;
  entries_.emplace(neighbor, std::move(set));
}

}  // namespace benu
