#include "storage/kv_tcp_server.h"

#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <span>
#include <utility>

#include "common/logging.h"
#include "common/wire.h"
#include "storage/socket_io.h"

namespace benu {
namespace {

/// Little-endian u32 at `p` (frame header fields).
uint32_t ReadU32(const uint8_t* p) {
  return static_cast<uint32_t>(p[0]) | static_cast<uint32_t>(p[1]) << 8 |
         static_cast<uint32_t>(p[2]) << 16 | static_cast<uint32_t>(p[3]) << 24;
}

// Same inbound-frame bound as net::ReadWireFrame.
constexpr uint32_t kMaxPayload = 1u << 30;

}  // namespace

KvTcpServer::KvTcpServer(const Graph* graph, size_t num_partitions,
                         size_t num_servers, size_t server_index,
                         size_t replica_index, size_t num_replicas,
                         bool support_encoding, bool support_deltas)
    : server_(graph, num_partitions, num_servers, server_index,
              replica_index, num_replicas, support_encoding,
              support_deltas) {}

KvTcpServer::~KvTcpServer() { Stop(); }

Status KvTcpServer::Listen(uint16_t port) {
  listen_fd_ = socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK, 0);
  if (listen_fd_ < 0) {
    return Status::IoError(std::string("socket: ") + std::strerror(errno));
  }
  int one = 1;
  setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    return Status::IoError(std::string("bind: ") + std::strerror(errno));
  }
  if (listen(listen_fd_, 64) < 0) {
    return Status::IoError(std::string("listen: ") + std::strerror(errno));
  }
  socklen_t len = sizeof(addr);
  if (getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) <
      0) {
    return Status::IoError(std::string("getsockname: ") +
                           std::strerror(errno));
  }
  port_ = ntohs(addr.sin_port);
  return Status::OK();
}

Status KvTcpServer::Start() {
  if (listen_fd_ < 0) {
    return Status::FailedPrecondition("Start() before Listen()");
  }
  epoll_fd_ = epoll_create1(0);
  if (epoll_fd_ < 0) {
    return Status::IoError(std::string("epoll_create1: ") +
                           std::strerror(errno));
  }
  if (pipe2(wake_fds_, O_NONBLOCK) < 0) {
    return Status::IoError(std::string("pipe2: ") + std::strerror(errno));
  }
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = listen_fd_;
  if (epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev) < 0) {
    return Status::IoError(std::string("epoll_ctl(listen): ") +
                           std::strerror(errno));
  }
  ev.data.fd = wake_fds_[0];
  if (epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fds_[0], &ev) < 0) {
    return Status::IoError(std::string("epoll_ctl(wake): ") +
                           std::strerror(errno));
  }
  loop_thread_ = std::thread([this] { EventLoop(); });
  return Status::OK();
}

void KvTcpServer::AcceptReady() {
  for (;;) {
    const int fd = accept4(listen_fd_, nullptr, nullptr, SOCK_NONBLOCK);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // EAGAIN: drained; anything else: try again on next wakeup
    }
    int one = 1;
    setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = fd;
    if (epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) < 0) {
      net::CloseFd(fd);
      continue;
    }
    conns_.emplace(fd, Conn{});
  }
}

bool KvTcpServer::ServeReadable(int fd, Conn& conn) {
  uint8_t chunk[64 * 1024];
  bool peer_closed = false;
  for (;;) {
    const ssize_t n = recv(fd, chunk, sizeof(chunk), 0);
    if (n > 0) {
      conn.in.insert(conn.in.end(), chunk, chunk + n);
      continue;
    }
    if (n == 0) {
      peer_closed = true;
      break;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    return false;  // hard socket error
  }
  // Serve every complete frame buffered so far, coalescing all replies
  // into one outbound buffer (flushed below in a single send when the
  // kernel cooperates).
  for (;;) {
    const size_t avail = conn.in.size() - conn.in_pos;
    if (avail < wire::kHeaderBytes) break;
    const uint8_t* p = conn.in.data() + conn.in_pos;
    if (ReadU32(p) != wire::kMagic) return false;  // protocol garbage
    const uint32_t payload = ReadU32(p + 12);
    if (payload > kMaxPayload) return false;
    const size_t frame_bytes = wire::kHeaderBytes + payload;
    if (avail < frame_bytes) break;  // wait for the rest of the frame
    server_.HandleFrame(std::span<const uint8_t>(p, frame_bytes), &conn.out);
    conn.in_pos += frame_bytes;
  }
  if (conn.in_pos == conn.in.size()) {
    conn.in.clear();
    conn.in_pos = 0;
  } else if (conn.in_pos > (1u << 20)) {
    conn.in.erase(conn.in.begin(),
                  conn.in.begin() + static_cast<ptrdiff_t>(conn.in_pos));
    conn.in_pos = 0;
  }
  if (!FlushWrites(fd, conn)) return false;
  // A peer that half-closed after sending requests still gets its
  // replies flushed; once the buffer drains the connection is done.
  return !(peer_closed && conn.out_pos == conn.out.size());
}

bool KvTcpServer::FlushWrites(int fd, Conn& conn) {
  while (conn.out_pos < conn.out.size()) {
    const ssize_t n = send(fd, conn.out.data() + conn.out_pos,
                           conn.out.size() - conn.out_pos, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        if (!conn.want_write) {
          epoll_event ev{};
          ev.events = EPOLLIN | EPOLLOUT;
          ev.data.fd = fd;
          if (epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &ev) < 0) return false;
          conn.want_write = true;
        }
        return true;  // resume on EPOLLOUT
      }
      return false;
    }
    conn.out_pos += static_cast<size_t>(n);
  }
  conn.out.clear();
  conn.out_pos = 0;
  if (conn.want_write) {
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = fd;
    if (epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &ev) < 0) return false;
    conn.want_write = false;
  }
  return true;
}

void KvTcpServer::CloseConn(int fd) {
  epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
  net::CloseFd(fd);
  conns_.erase(fd);
}

void KvTcpServer::EventLoop() {
  epoll_event events[64];
  for (;;) {
    const int n = epoll_wait(epoll_fd_, events, 64, -1);
    if (n < 0) {
      if (errno == EINTR) continue;
      return;
    }
    for (int i = 0; i < n; ++i) {
      const int fd = events[i].data.fd;
      if (fd == wake_fds_[0]) return;  // Stop()
      if (fd == listen_fd_) {
        AcceptReady();
        continue;
      }
      auto it = conns_.find(fd);
      if (it == conns_.end()) continue;  // already closed this round
      Conn& conn = it->second;
      bool alive = true;
      if (events[i].events & (EPOLLHUP | EPOLLERR)) {
        // Drain whatever the peer managed to send before the hangup —
        // replies cannot be delivered, so just tear down.
        alive = false;
      }
      if (alive && (events[i].events & EPOLLOUT)) {
        alive = FlushWrites(fd, conn);
      }
      if (alive && (events[i].events & EPOLLIN)) {
        alive = ServeReadable(fd, conn);
      }
      if (!alive) CloseConn(fd);
    }
  }
}

void KvTcpServer::Stop() {
  if (stopping_.exchange(true, std::memory_order_acq_rel)) {
    if (loop_thread_.joinable()) loop_thread_.join();
    return;
  }
  if (wake_fds_[1] >= 0) {
    const uint8_t byte = 1;
    ssize_t rc;
    do {
      rc = write(wake_fds_[1], &byte, 1);
    } while (rc < 0 && errno == EINTR);
  }
  if (loop_thread_.joinable()) loop_thread_.join();
  for (auto& [fd, conn] : conns_) net::CloseFd(fd);
  conns_.clear();
  if (listen_fd_ >= 0) {
    net::CloseFd(listen_fd_);
    listen_fd_ = -1;
  }
  for (int& fd : wake_fds_) {
    if (fd >= 0) {
      net::CloseFd(fd);
      fd = -1;
    }
  }
  if (epoll_fd_ >= 0) {
    net::CloseFd(epoll_fd_);
    epoll_fd_ = -1;
  }
}

}  // namespace benu
