#include "storage/kv_tcp_server.h"

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "common/logging.h"
#include "storage/socket_io.h"

namespace benu {

KvTcpServer::KvTcpServer(const Graph* graph, size_t num_partitions,
                         size_t num_servers, size_t server_index)
    : server_(graph, num_partitions, num_servers, server_index) {}

KvTcpServer::~KvTcpServer() { Stop(); }

Status KvTcpServer::Listen(uint16_t port) {
  listen_fd_ = socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::IoError(std::string("socket: ") + std::strerror(errno));
  }
  int one = 1;
  setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    return Status::IoError(std::string("bind: ") + std::strerror(errno));
  }
  if (listen(listen_fd_, 64) < 0) {
    return Status::IoError(std::string("listen: ") + std::strerror(errno));
  }
  socklen_t len = sizeof(addr);
  if (getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) <
      0) {
    return Status::IoError(std::string("getsockname: ") +
                           std::strerror(errno));
  }
  port_ = ntohs(addr.sin_port);
  return Status::OK();
}

Status KvTcpServer::Start() {
  if (listen_fd_ < 0) {
    return Status::FailedPrecondition("Start() before Listen()");
  }
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void KvTcpServer::AcceptLoop() {
  for (;;) {
    const int fd = accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      // Stop() shuts the listening socket down; any accept failure
      // during shutdown just ends the loop.
      return;
    }
    if (stopping_.load(std::memory_order_acquire)) {
      net::CloseFd(fd);
      return;
    }
    std::lock_guard<std::mutex> lock(mu_);
    conn_fds_.push_back(fd);
    conn_threads_.emplace_back([this, fd] { ServeConnection(fd); });
  }
}

void KvTcpServer::ServeConnection(int fd) {
  std::vector<uint8_t> request;
  std::vector<uint8_t> reply;
  for (;;) {
    if (!net::ReadWireFrame(fd, &request).ok()) return;  // EOF or teardown
    reply.clear();
    server_.HandleFrame(request, &reply);
    if (!net::WriteAll(fd, reply).ok()) return;
  }
}

void KvTcpServer::Stop() {
  if (stopping_.exchange(true, std::memory_order_acq_rel)) {
    if (accept_thread_.joinable()) accept_thread_.join();
    return;
  }
  // Wake the accept loop first, join it, and only then close the fd:
  // the loop reads listen_fd_ on every iteration, so the fd must stay
  // valid (and unmodified) until the thread is gone.
  if (listen_fd_ >= 0) shutdown(listen_fd_, SHUT_RDWR);
  if (accept_thread_.joinable()) accept_thread_.join();
  if (listen_fd_ >= 0) {
    net::CloseFd(listen_fd_);
    listen_fd_ = -1;
  }
  std::vector<std::thread> threads;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (int fd : conn_fds_) shutdown(fd, SHUT_RDWR);
    threads = std::move(conn_threads_);
  }
  for (auto& t : threads) t.join();
  std::lock_guard<std::mutex> lock(mu_);
  for (int fd : conn_fds_) net::CloseFd(fd);
  conn_fds_.clear();
}

}  // namespace benu
