#ifndef BENU_STORAGE_KV_SERVER_H_
#define BENU_STORAGE_KV_SERVER_H_

#include <atomic>
#include <cstddef>
#include <span>
#include <vector>

#include "common/types.h"
#include "common/wire.h"
#include "graph/adj_codec.h"
#include "graph/graph.h"

namespace benu {

/// Server side of the distributed KV store's wire protocol: holds the
/// adjacency sets of the data-graph vertices whose storage partition is
/// assigned to this server, and answers request frames (common/wire.h)
/// with reply frames. Transport-agnostic by design — the loopback
/// transport calls HandleFrame directly in-process, the TCP server
/// (kv_tcp_server.h / benu_kv_server) moves the same frames over sockets.
///
/// Partition assignment: vertex v lives in storage partition
/// v % num_partitions; this server serves every partition p with
/// p % num_servers == server_index. With num_servers == num_partitions
/// (the loopback layout) each server owns exactly one partition.
///
/// Thread-safe: the graph is immutable, HandleFrame writes only to the
/// caller's output buffer, stats are atomic — concurrent connection
/// threads of a TCP server may share one instance.
class KvPartitionServer {
 public:
  /// `graph` must outlive the server (already degree-relabeled when the
  /// enumeration side relabels — both sides must agree on the labeling;
  /// the hello reply carries the graph's folded content hash so clients
  /// can verify). `replica_index`/`num_replicas` identify this process
  /// among the interchangeable replicas serving the same partition
  /// share; they are reported in the hello reply so clients can log
  /// failover targets. With `support_encoding` (subject to
  /// codec::CompressionEnabled) the server pre-encodes its partition
  /// share once here and answers encoding-flagged requests with
  /// delta+varint replies, advertising the capability in its hello.
  /// With `support_deltas` the server additionally accepts
  /// kApplyDelta/kEpochAdvance frames and attests the committed epoch in
  /// its hello (kHelloSupportsDeltas); without it those frames get a
  /// kError reply — the pre-delta (v2-era) behavior clients downgrade
  /// around.
  KvPartitionServer(const Graph* graph, size_t num_partitions,
                    size_t num_servers, size_t server_index,
                    size_t replica_index = 0, size_t num_replicas = 1,
                    bool support_encoding = true, bool support_deltas = true);

  /// Handles one request frame, appending the reply frame(s) to `out`.
  /// Malformed frames, unknown types and out-of-scope keys produce a
  /// kError reply — the server never crashes on bad input from the wire.
  /// Every appended reply frame echoes the request frame's tag (wire
  /// `flags` field), so pipelined clients can demux replies.
  void HandleFrame(std::span<const uint8_t> frame, std::vector<uint8_t>* out);

  /// True iff vertex v's partition is assigned to this server.
  bool Serves(VertexId v) const {
    return v < graph_->NumVertices() &&
           (v % num_partitions_) % num_servers_ == server_index_;
  }

  wire::ServerStats stats() const {
    return {requests_.load(std::memory_order_relaxed),
            keys_served_.load(std::memory_order_relaxed),
            bytes_sent_.load(std::memory_order_relaxed)};
  }

  size_t num_partitions() const { return num_partitions_; }
  size_t num_servers() const { return num_servers_; }
  size_t server_index() const { return server_index_; }
  size_t replica_index() const { return replica_index_; }
  size_t num_replicas() const { return num_replicas_; }
  bool supports_encoding() const { return support_encoding_; }
  bool supports_deltas() const { return support_deltas_; }

  /// Last committed epoch (kEpochAdvance); 0 = pristine base graph.
  /// Servers store the base payloads immutably — the epoch is an
  /// *attestation* that this server has seen every delta up to it, which
  /// reconnect validation checks alongside the graph hash.
  uint64_t epoch() const { return epoch_.load(std::memory_order_acquire); }

 private:
  /// Appends the kGetReply frame for one served key (or kError when the
  /// key is out of scope); returns false on error. `encoded` selects the
  /// pre-encoded delta+varint reply form.
  bool AppendOneReply(VertexId v, bool encoded, std::vector<uint8_t>* out);

  const Graph* graph_;
  size_t num_partitions_;
  size_t num_servers_;
  size_t server_index_;
  size_t replica_index_;
  size_t num_replicas_;
  bool support_encoding_;
  bool support_deltas_;
  uint32_t graph_hash_;
  /// Committed epoch: kApplyDelta validates its target is epoch()+1,
  /// kEpochAdvance commits it.
  std::atomic<uint64_t> epoch_{0};
  std::atomic<uint64_t> deltas_applied_{0};
  /// Pre-encoded partition share, indexed by vertex id (only served
  /// vertices are populated). Encoded once at construction; HandleFrame
  /// serves these bytes without re-encoding.
  std::vector<codec::EncodedSet> encoded_;
  std::atomic<uint64_t> requests_{0};
  std::atomic<uint64_t> keys_served_{0};
  std::atomic<uint64_t> bytes_sent_{0};
};

}  // namespace benu

#endif  // BENU_STORAGE_KV_SERVER_H_
