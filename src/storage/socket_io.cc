#include "storage/socket_io.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include "common/wire.h"

namespace benu::net {
namespace {

Status Errno(const std::string& what) {
  return Status::IoError(what + ": " + std::strerror(errno));
}

/// Waits for `events` (POLLIN/POLLOUT) on the fd for up to timeout_ms
/// (-1 = forever). POLLHUP/POLLERR also count as ready — the following
/// recv/send surfaces the actual condition.
Status WaitFor(int fd, short events, int timeout_ms) {
  pollfd pfd{fd, events, 0};
  for (;;) {
    const int rc = poll(&pfd, 1, timeout_ms);
    if (rc < 0) {
      if (errno == EINTR) continue;
      return Errno("poll");
    }
    if (rc == 0) {
      return Status::DeadlineExceeded("socket made no progress for " +
                                      std::to_string(timeout_ms) + "ms");
    }
    return Status::OK();
  }
}

/// One connect attempt; returns the fd or an error.
StatusOr<int> TryConnectOnce(const std::string& host, uint16_t port) {
  addrinfo hints{};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* res = nullptr;
  const std::string port_str = std::to_string(port);
  const int rc = getaddrinfo(host.c_str(), port_str.c_str(), &hints, &res);
  if (rc != 0) {
    return Status::IoError("getaddrinfo(" + host + "): " + gai_strerror(rc));
  }
  Status last = Status::IoError("no addresses for " + host);
  for (addrinfo* ai = res; ai != nullptr; ai = ai->ai_next) {
    int fd = socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) {
      last = Errno("socket");
      continue;
    }
    if (connect(fd, ai->ai_addr, ai->ai_addrlen) == 0) {
      freeaddrinfo(res);
      int one = 1;
      setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      return fd;
    }
    last = errno == ECONNREFUSED
               ? Status::Unavailable("connect to " + host + ":" + port_str +
                                     ": connection refused")
               : Errno("connect to " + host + ":" + port_str);
    CloseFd(fd);
  }
  freeaddrinfo(res);
  return last;
}

}  // namespace

StatusOr<int> TcpConnect(const std::string& host, uint16_t port,
                         int timeout_ms) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  auto backoff = std::chrono::milliseconds(10);
  for (;;) {
    auto fd = TryConnectOnce(host, port);
    if (fd.ok()) return fd;
    const auto now = std::chrono::steady_clock::now();
    if (now >= deadline) return fd;
    const auto remaining =
        std::chrono::duration_cast<std::chrono::milliseconds>(deadline - now);
    std::this_thread::sleep_for(std::min(backoff, remaining));
    backoff = std::min(backoff * 2, std::chrono::milliseconds(320));
  }
}

Status SetNonBlocking(int fd) {
  const int flags = fcntl(fd, F_GETFL, 0);
  if (flags < 0) return Errno("fcntl(F_GETFL)");
  if (fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return Errno("fcntl(F_SETFL, O_NONBLOCK)");
  }
  return Status::OK();
}

Status WriteAll(int fd, std::span<const uint8_t> data, int timeout_ms) {
  size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n =
        send(fd, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        BENU_RETURN_IF_ERROR(WaitFor(fd, POLLOUT, timeout_ms));
        continue;
      }
      if (errno == EPIPE || errno == ECONNRESET) {
        return Status::Unavailable("connection closed by peer");
      }
      return Errno("send");
    }
    sent += static_cast<size_t>(n);
  }
  return Status::OK();
}

Status ReadExact(int fd, uint8_t* buf, size_t n, int timeout_ms) {
  size_t got = 0;
  while (got < n) {
    const ssize_t r = recv(fd, buf + got, n - got, 0);
    if (r < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        BENU_RETURN_IF_ERROR(WaitFor(fd, POLLIN, timeout_ms));
        continue;
      }
      if (errno == ECONNRESET) {
        return Status::Unavailable("connection closed by peer");
      }
      return Errno("recv");
    }
    if (r == 0) {
      // Peer EOF: not an IO error — the socket is simply gone. Retry
      // logic treats this as grounds for reconnect/failover.
      return Status::Unavailable("connection closed by peer");
    }
    got += static_cast<size_t>(r);
  }
  return Status::OK();
}

Status ReadWireFrame(int fd, std::vector<uint8_t>* buf, int timeout_ms) {
  buf->resize(wire::kHeaderBytes);
  BENU_RETURN_IF_ERROR(ReadExact(fd, buf->data(), wire::kHeaderBytes,
                                 timeout_ms));
  const uint8_t* p = buf->data();
  const uint32_t magic = static_cast<uint32_t>(p[0]) |
                         static_cast<uint32_t>(p[1]) << 8 |
                         static_cast<uint32_t>(p[2]) << 16 |
                         static_cast<uint32_t>(p[3]) << 24;
  if (magic != wire::kMagic) {
    return Status::InvalidArgument("bad frame magic on socket");
  }
  const uint32_t payload = static_cast<uint32_t>(p[12]) |
                           static_cast<uint32_t>(p[13]) << 8 |
                           static_cast<uint32_t>(p[14]) << 16 |
                           static_cast<uint32_t>(p[15]) << 24;
  // Bound what one frame may make us allocate; a 4-byte-per-entry
  // adjacency set never legitimately approaches this.
  constexpr uint32_t kMaxPayload = 1u << 30;
  if (payload > kMaxPayload) {
    return Status::InvalidArgument("frame payload too large");
  }
  buf->resize(wire::kHeaderBytes + payload);
  return ReadExact(fd, buf->data() + wire::kHeaderBytes, payload, timeout_ms);
}

void CloseFd(int fd) {
  if (fd < 0) return;
  int rc;
  do {
    rc = close(fd);
  } while (rc < 0 && errno == EINTR);
}

}  // namespace benu::net
