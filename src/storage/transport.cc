#include "storage/transport.h"

#include <string>
#include <utility>

#include "common/logging.h"
#include "common/metrics.h"
#include "common/wire.h"
#include "storage/kv_server.h"

namespace benu {

std::shared_ptr<const VertexSet> AdjacencyPayload::Materialize() const {
  if (decoded != nullptr) return decoded;
  if (encoded == nullptr) return nullptr;
  auto set = std::make_shared<VertexSet>();
  codec::DecodeAll(*encoded, set.get());
  codec::NoteDecoded(set->size());
  return set;
}

void Transport::InitMetrics(const char* name) {
  auto& registry = metrics::MetricsRegistry::Global();
  const std::string prefix = std::string("transport.") + name;
  fetches_metric_ = registry.GetCounter(prefix + ".fetches", "1",
                                        "single-key fetches");
  batch_gets_metric_ = registry.GetCounter(prefix + ".batch_gets", "1",
                                           "batched multi-get calls");
  round_trips_metric_ = registry.GetCounter(
      prefix + ".round_trips", "1",
      "round trips: 1 per single fetch, 1 per partition per batch");
  bytes_metric_ =
      registry.GetCounter(prefix + ".bytes", "bytes", "reply payload bytes");
  bytes_encoded_metric_ = registry.GetCounter(
      prefix + ".bytes_encoded", "bytes",
      "reply payload bytes carried delta+varint encoded");
}

void Transport::Account(size_t round_trips, size_t bytes,
                        size_t encoded_bytes, bool batch) {
  if (batch) {
    stats_.batch_gets.fetch_add(1, std::memory_order_relaxed);
    batch_gets_metric_->Add(1);
  } else {
    stats_.fetches.fetch_add(1, std::memory_order_relaxed);
    fetches_metric_->Add(1);
  }
  stats_.round_trips.fetch_add(round_trips, std::memory_order_relaxed);
  stats_.bytes.fetch_add(bytes, std::memory_order_relaxed);
  round_trips_metric_->Add(round_trips);
  bytes_metric_->Add(bytes);
  if (encoded_bytes != 0) {
    stats_.bytes_encoded.fetch_add(encoded_bytes, std::memory_order_relaxed);
    bytes_encoded_metric_->Add(encoded_bytes);
  }
}

namespace {

/// The seed simulator as a Transport: adjacency sets materialized once
/// and shared zero-copy; round trips and bytes are modeled with the wire
/// format's frame sizes (which the loopback/TCP backends realize). With
/// compression the store instead pre-encodes every set once and shares
/// the encoded payloads, modeling encoded frame sizes.
class SimulatedTransport final : public Transport {
 public:
  SimulatedTransport(const Graph& graph, size_t num_partitions,
                     bool compress)
      : num_partitions_(num_partitions == 0 ? 1 : num_partitions),
        num_vertices_(graph.NumVertices()),
        graph_hash_(graph.FoldedContentHash()),
        compress_(codec::CompressionEnabled(compress)) {
    if (compress_) {
      encoded_.reserve(num_vertices_);
      size_t raw_bytes = 0;
      size_t encoded_bytes = 0;
      for (VertexId v = 0; v < num_vertices_; ++v) {
        auto set = std::make_shared<codec::EncodedSet>();
        codec::Encode(graph.Adjacency(v), set.get());
        raw_bytes += set->raw_bytes();
        encoded_bytes += set->bytes.size();
        encoded_.push_back(std::move(set));
      }
      codec::NoteEncoded(num_vertices_, raw_bytes, encoded_bytes);
    } else {
      adjacency_.reserve(num_vertices_);
      for (VertexId v = 0; v < num_vertices_; ++v) {
        VertexSetView view = graph.Adjacency(v);
        adjacency_.push_back(
            std::make_shared<const VertexSet>(view.begin(), view.end()));
      }
    }
    InitMetrics(name());
  }

  const char* name() const override { return "sim"; }
  size_t num_partitions() const override { return num_partitions_; }
  size_t num_vertices() const override { return num_vertices_; }
  uint32_t graph_hash() const override { return graph_hash_; }
  bool compressed() const override { return compress_; }

  StatusOr<AdjacencyPayload> Fetch(VertexId v) override {
    if (v >= num_vertices_) {
      return Status::OutOfRange("vertex out of range: " + std::to_string(v));
    }
    const AdjacencyPayload payload = PayloadFor(v);
    Account(1, payload.wire_bytes,
            compress_ ? payload.wire_bytes : 0, /*batch=*/false);
    return payload;
  }

  StatusOr<BatchResult> FetchBatch(
      std::span<const VertexId> keys) override {
    BatchResult result;
    result.values.reserve(keys.size());
    std::vector<uint8_t> partition_touched(num_partitions_, 0);
    for (VertexId v : keys) {
      if (v >= num_vertices_) {
        return Status::OutOfRange("vertex out of range: " +
                                  std::to_string(v));
      }
      AdjacencyPayload payload = PayloadFor(v);
      result.bytes += payload.wire_bytes;
      uint8_t& touched = partition_touched[v % num_partitions_];
      if (!touched) {
        touched = 1;
        ++result.round_trips;
      }
      result.values.push_back(std::move(payload));
    }
    Account(result.round_trips, result.bytes,
            compress_ ? result.bytes : 0, /*batch=*/true);
    return result;
  }

 private:
  AdjacencyPayload PayloadFor(VertexId v) const {
    AdjacencyPayload payload;
    if (compress_) {
      payload.encoded = encoded_[v];
      payload.wire_bytes =
          wire::EncodedAdjacencyReplyBytes(encoded_[v]->bytes.size());
    } else {
      payload.decoded = adjacency_[v];
      payload.wire_bytes = wire::AdjacencyReplyBytes(adjacency_[v]->size());
    }
    return payload;
  }

  std::vector<std::shared_ptr<const VertexSet>> adjacency_;
  std::vector<std::shared_ptr<const codec::EncodedSet>> encoded_;
  size_t num_partitions_;
  size_t num_vertices_;
  uint32_t graph_hash_;
  bool compress_;
};

/// In-process wire-format backend: every fetch is encoded into a request
/// frame, handled by the owning partition's KvPartitionServer, and the
/// reply frame decoded back — the full protocol minus the socket.
class LoopbackTransport final : public Transport {
 public:
  LoopbackTransport(const Graph& graph, size_t num_partitions, bool compress)
      : graph_(graph),
        num_partitions_(num_partitions == 0 ? 1 : num_partitions),
        graph_hash_(graph_.FoldedContentHash()),
        compress_(codec::CompressionEnabled(compress)) {
    servers_.reserve(num_partitions_);
    for (size_t p = 0; p < num_partitions_; ++p) {
      servers_.push_back(std::make_unique<KvPartitionServer>(
          &graph_, num_partitions_, /*num_servers=*/num_partitions_,
          /*server_index=*/p, /*replica_index=*/0, /*num_replicas=*/1,
          /*support_encoding=*/compress_));
    }
    InitMetrics(name());
  }

  const char* name() const override { return "loopback"; }
  size_t num_partitions() const override { return num_partitions_; }
  size_t num_vertices() const override { return graph_.NumVertices(); }
  uint32_t graph_hash() const override { return graph_hash_; }
  bool compressed() const override { return compress_; }

  StatusOr<AdjacencyPayload> Fetch(VertexId v) override {
    if (v >= graph_.NumVertices()) {
      return Status::OutOfRange("vertex out of range: " + std::to_string(v));
    }
    std::vector<uint8_t> request;
    wire::AppendGetRequest(v, &request, /*want_encoded=*/compress_);
    std::vector<uint8_t> reply;
    servers_[v % num_partitions_]->HandleFrame(request, &reply);
    auto frame = wire::DecodeFrame(reply);
    BENU_RETURN_IF_ERROR(frame.status());
    AdjacencyPayload payload;
    BENU_RETURN_IF_ERROR(DecodeReply(*frame, v, &payload));
    Account(1, payload.wire_bytes,
            payload.is_encoded() ? payload.wire_bytes : 0, /*batch=*/false);
    return payload;
  }

  StatusOr<BatchResult> FetchBatch(
      std::span<const VertexId> keys) override {
    BatchResult result;
    result.values.resize(keys.size());
    // Group the batch by owning partition, preserving request order
    // within each group (slot = index into the result vector).
    std::vector<std::vector<VertexId>> partition_keys(num_partitions_);
    std::vector<std::vector<size_t>> partition_slots(num_partitions_);
    for (size_t i = 0; i < keys.size(); ++i) {
      const VertexId v = keys[i];
      if (v >= graph_.NumVertices()) {
        return Status::OutOfRange("vertex out of range: " +
                                  std::to_string(v));
      }
      partition_keys[v % num_partitions_].push_back(v);
      partition_slots[v % num_partitions_].push_back(i);
    }
    size_t encoded_bytes = 0;
    for (size_t p = 0; p < num_partitions_; ++p) {
      if (partition_keys[p].empty()) continue;
      std::vector<uint8_t> request;
      wire::AppendBatchGetRequest(partition_keys[p], &request,
                                  /*want_encoded=*/compress_);
      std::vector<uint8_t> reply;
      servers_[p]->HandleFrame(request, &reply);
      ++result.round_trips;
      // The reply is one kGetReply frame per key, in request order.
      std::span<const uint8_t> cursor(reply);
      size_t key_index = 0;
      for (size_t slot : partition_slots[p]) {
        auto frame = wire::DecodeFrame(cursor);
        BENU_RETURN_IF_ERROR(frame.status());
        AdjacencyPayload payload;
        BENU_RETURN_IF_ERROR(
            DecodeReply(*frame, partition_keys[p][key_index++], &payload));
        result.bytes += payload.wire_bytes;
        if (payload.is_encoded()) encoded_bytes += payload.wire_bytes;
        result.values[slot] = std::move(payload);
        cursor = cursor.subspan(frame->frame_bytes);
      }
    }
    Account(result.round_trips, result.bytes, encoded_bytes, /*batch=*/true);
    return result;
  }

  StatusOr<DeltaPushResult> PushDelta(
      uint64_t epoch, std::span<const EdgeDelta> ops) override {
    std::vector<uint8_t> request;
    wire::AppendApplyDelta(epoch, ops, &request);
    return RoundTripDeltaFrame(request, epoch);
  }

  StatusOr<DeltaPushResult> AdvanceEpoch(uint64_t epoch) override {
    std::vector<uint8_t> request;
    wire::AppendEpochAdvance(epoch, &request);
    return RoundTripDeltaFrame(request, epoch);
  }

 private:
  /// Sends one delta frame through every partition server (real frames,
  /// like Fetch — the loopback backend validates the protocol) and
  /// requires a kDeltaAck echoing `epoch` from each.
  StatusOr<DeltaPushResult> RoundTripDeltaFrame(
      const std::vector<uint8_t>& request, uint64_t epoch) {
    DeltaPushResult result;
    for (auto& server : servers_) {
      std::vector<uint8_t> reply;
      server->HandleFrame(request, &reply);
      auto frame = wire::DecodeFrame(reply);
      BENU_RETURN_IF_ERROR(frame.status());
      if (frame->header.type == wire::MessageType::kError) {
        return wire::DecodeError(*frame);
      }
      auto acked = wire::DecodeDeltaAck(*frame);
      BENU_RETURN_IF_ERROR(acked.status());
      if (*acked != epoch) {
        return Status::Internal("delta ack epoch mismatch");
      }
      ++result.acked_servers;
    }
    return result;
  }

  /// Decodes one adjacency reply frame, raw or encoded: the server
  /// chooses (it answers raw when not encoding), so dispatch on the
  /// frame's own encoding flag rather than on `compress_`.
  static Status DecodeReply(const wire::Frame& frame, VertexId expected_key,
                            AdjacencyPayload* payload) {
    VertexId key = kInvalidVertex;
    if (wire::FrameIsEncoded(frame)) {
      auto set = std::make_shared<codec::EncodedSet>();
      BENU_RETURN_IF_ERROR(
          wire::DecodeEncodedAdjacencyReply(frame, &key, set.get()));
      payload->encoded = std::move(set);
    } else {
      auto set = std::make_shared<VertexSet>();
      BENU_RETURN_IF_ERROR(
          wire::DecodeAdjacencyReply(frame, &key, set.get()));
      payload->decoded = std::move(set);
    }
    if (key != expected_key) {
      return Status::Internal("reply key mismatch");
    }
    payload->wire_bytes = frame.frame_bytes;
    return Status::OK();
  }

  Graph graph_;
  size_t num_partitions_;
  uint32_t graph_hash_;
  bool compress_;
  std::vector<std::unique_ptr<KvPartitionServer>> servers_;
};

}  // namespace

std::shared_ptr<Transport> MakeSimulatedTransport(const Graph& graph,
                                                  size_t num_partitions,
                                                  bool compress) {
  return std::make_shared<SimulatedTransport>(graph, num_partitions,
                                              compress);
}

std::shared_ptr<Transport> MakeLoopbackTransport(const Graph& graph,
                                                 size_t num_partitions,
                                                 bool compress) {
  return std::make_shared<LoopbackTransport>(graph, num_partitions,
                                             compress);
}

}  // namespace benu
