#include "storage/transport.h"

#include <string>
#include <utility>

#include "common/logging.h"
#include "common/metrics.h"
#include "common/wire.h"
#include "storage/kv_server.h"

namespace benu {

void Transport::InitMetrics(const char* name) {
  auto& registry = metrics::MetricsRegistry::Global();
  const std::string prefix = std::string("transport.") + name;
  fetches_metric_ = registry.GetCounter(prefix + ".fetches", "1",
                                        "single-key fetches");
  batch_gets_metric_ = registry.GetCounter(prefix + ".batch_gets", "1",
                                           "batched multi-get calls");
  round_trips_metric_ = registry.GetCounter(
      prefix + ".round_trips", "1",
      "round trips: 1 per single fetch, 1 per partition per batch");
  bytes_metric_ =
      registry.GetCounter(prefix + ".bytes", "bytes", "reply payload bytes");
}

void Transport::Account(size_t round_trips, size_t bytes, bool batch) {
  if (batch) {
    stats_.batch_gets.fetch_add(1, std::memory_order_relaxed);
    batch_gets_metric_->Add(1);
  } else {
    stats_.fetches.fetch_add(1, std::memory_order_relaxed);
    fetches_metric_->Add(1);
  }
  stats_.round_trips.fetch_add(round_trips, std::memory_order_relaxed);
  stats_.bytes.fetch_add(bytes, std::memory_order_relaxed);
  round_trips_metric_->Add(round_trips);
  bytes_metric_->Add(bytes);
}

namespace {

/// The seed simulator as a Transport: adjacency sets materialized once
/// and shared zero-copy; round trips and bytes are modeled with the wire
/// format's frame sizes (which the loopback/TCP backends realize).
class SimulatedTransport final : public Transport {
 public:
  SimulatedTransport(const Graph& graph, size_t num_partitions)
      : num_partitions_(num_partitions == 0 ? 1 : num_partitions) {
    adjacency_.reserve(graph.NumVertices());
    for (VertexId v = 0; v < graph.NumVertices(); ++v) {
      VertexSetView view = graph.Adjacency(v);
      adjacency_.push_back(
          std::make_shared<const VertexSet>(view.begin(), view.end()));
    }
    InitMetrics(name());
  }

  const char* name() const override { return "sim"; }
  size_t num_partitions() const override { return num_partitions_; }
  size_t num_vertices() const override { return adjacency_.size(); }

  StatusOr<std::shared_ptr<const VertexSet>> Fetch(VertexId v) override {
    if (v >= adjacency_.size()) {
      return Status::OutOfRange("vertex out of range: " + std::to_string(v));
    }
    const auto& set = adjacency_[v];
    Account(1, wire::AdjacencyReplyBytes(set->size()), /*batch=*/false);
    return set;
  }

  StatusOr<BatchResult> FetchBatch(
      std::span<const VertexId> keys) override {
    BatchResult result;
    result.values.reserve(keys.size());
    std::vector<uint8_t> partition_touched(num_partitions_, 0);
    for (VertexId v : keys) {
      if (v >= adjacency_.size()) {
        return Status::OutOfRange("vertex out of range: " +
                                  std::to_string(v));
      }
      const auto& set = adjacency_[v];
      result.bytes += wire::AdjacencyReplyBytes(set->size());
      uint8_t& touched = partition_touched[v % num_partitions_];
      if (!touched) {
        touched = 1;
        ++result.round_trips;
      }
      result.values.push_back(set);
    }
    Account(result.round_trips, result.bytes, /*batch=*/true);
    return result;
  }

 private:
  std::vector<std::shared_ptr<const VertexSet>> adjacency_;
  size_t num_partitions_;
};

/// In-process wire-format backend: every fetch is encoded into a request
/// frame, handled by the owning partition's KvPartitionServer, and the
/// reply frame decoded back — the full protocol minus the socket.
class LoopbackTransport final : public Transport {
 public:
  LoopbackTransport(const Graph& graph, size_t num_partitions)
      : graph_(graph),
        num_partitions_(num_partitions == 0 ? 1 : num_partitions) {
    servers_.reserve(num_partitions_);
    for (size_t p = 0; p < num_partitions_; ++p) {
      servers_.push_back(std::make_unique<KvPartitionServer>(
          &graph_, num_partitions_, /*num_servers=*/num_partitions_,
          /*server_index=*/p));
    }
    InitMetrics(name());
  }

  const char* name() const override { return "loopback"; }
  size_t num_partitions() const override { return num_partitions_; }
  size_t num_vertices() const override { return graph_.NumVertices(); }

  StatusOr<std::shared_ptr<const VertexSet>> Fetch(VertexId v) override {
    if (v >= graph_.NumVertices()) {
      return Status::OutOfRange("vertex out of range: " + std::to_string(v));
    }
    std::vector<uint8_t> request;
    wire::AppendGetRequest(v, &request);
    std::vector<uint8_t> reply;
    servers_[v % num_partitions_]->HandleFrame(request, &reply);
    auto frame = wire::DecodeFrame(reply);
    BENU_RETURN_IF_ERROR(frame.status());
    VertexId key = kInvalidVertex;
    auto set = std::make_shared<VertexSet>();
    BENU_RETURN_IF_ERROR(
        wire::DecodeAdjacencyReply(*frame, &key, set.get()));
    if (key != v) {
      return Status::Internal("reply key mismatch");
    }
    Account(1, frame->frame_bytes, /*batch=*/false);
    return std::shared_ptr<const VertexSet>(std::move(set));
  }

  StatusOr<BatchResult> FetchBatch(
      std::span<const VertexId> keys) override {
    BatchResult result;
    result.values.resize(keys.size());
    // Group the batch by owning partition, preserving request order
    // within each group (slot = index into the result vector).
    std::vector<std::vector<VertexId>> partition_keys(num_partitions_);
    std::vector<std::vector<size_t>> partition_slots(num_partitions_);
    for (size_t i = 0; i < keys.size(); ++i) {
      const VertexId v = keys[i];
      if (v >= graph_.NumVertices()) {
        return Status::OutOfRange("vertex out of range: " +
                                  std::to_string(v));
      }
      partition_keys[v % num_partitions_].push_back(v);
      partition_slots[v % num_partitions_].push_back(i);
    }
    for (size_t p = 0; p < num_partitions_; ++p) {
      if (partition_keys[p].empty()) continue;
      std::vector<uint8_t> request;
      wire::AppendBatchGetRequest(partition_keys[p], &request);
      std::vector<uint8_t> reply;
      servers_[p]->HandleFrame(request, &reply);
      ++result.round_trips;
      // The reply is one kGetReply frame per key, in request order.
      std::span<const uint8_t> cursor(reply);
      for (size_t slot : partition_slots[p]) {
        auto frame = wire::DecodeFrame(cursor);
        BENU_RETURN_IF_ERROR(frame.status());
        VertexId key = kInvalidVertex;
        auto set = std::make_shared<VertexSet>();
        BENU_RETURN_IF_ERROR(
            wire::DecodeAdjacencyReply(*frame, &key, set.get()));
        result.values[slot] = std::move(set);
        result.bytes += frame->frame_bytes;
        cursor = cursor.subspan(frame->frame_bytes);
      }
    }
    Account(result.round_trips, result.bytes, /*batch=*/true);
    return result;
  }

 private:
  Graph graph_;
  size_t num_partitions_;
  std::vector<std::unique_ptr<KvPartitionServer>> servers_;
};

}  // namespace

std::shared_ptr<Transport> MakeSimulatedTransport(const Graph& graph,
                                                  size_t num_partitions) {
  return std::make_shared<SimulatedTransport>(graph, num_partitions);
}

std::shared_ptr<Transport> MakeLoopbackTransport(const Graph& graph,
                                                 size_t num_partitions) {
  return std::make_shared<LoopbackTransport>(graph, num_partitions);
}

}  // namespace benu
