#include "storage/kv_store.h"

#include "common/logging.h"
#include "common/metrics.h"

namespace benu {

DistributedKvStore::DistributedKvStore(const Graph& graph,
                                       size_t num_partitions)
    : num_partitions_(num_partitions == 0 ? 1 : num_partitions) {
  adjacency_.reserve(graph.NumVertices());
  for (VertexId v = 0; v < graph.NumVertices(); ++v) {
    VertexSetView view = graph.Adjacency(v);
    adjacency_.push_back(
        std::make_shared<const VertexSet>(view.begin(), view.end()));
  }
  auto& registry = metrics::MetricsRegistry::Global();
  queries_metric_ = registry.GetCounter(
      "kv_store.queries", "1",
      "key-level gets (the paper's #DBQ); a k-key multi-get adds k");
  round_trips_metric_ = registry.GetCounter(
      "kv_store.round_trips", "1",
      "network round trips: 1 per single get, 1 per partition per batch");
  bytes_metric_ = registry.GetCounter("kv_store.bytes_fetched", "bytes",
                                      "payload bytes of all replies");
  batch_gets_metric_ = registry.GetCounter(
      "kv_store.batch_gets", "1", "GetAdjacencyBatch calls");
}

std::shared_ptr<const VertexSet> DistributedKvStore::GetAdjacency(
    VertexId v) const {
  BENU_CHECK(v < adjacency_.size()) << "vertex out of range: " << v;
  const auto& set = adjacency_[v];
  stats_.queries.fetch_add(1, std::memory_order_relaxed);
  stats_.round_trips.fetch_add(1, std::memory_order_relaxed);
  stats_.bytes_fetched.fetch_add(ReplyBytes(set->size()),
                                 std::memory_order_relaxed);
  queries_metric_->Add(1);
  round_trips_metric_->Add(1);
  bytes_metric_->Add(ReplyBytes(set->size()));
  return set;
}

DistributedKvStore::BatchReply DistributedKvStore::GetAdjacencyBatch(
    std::span<const VertexId> keys) const {
  BatchReply reply;
  if (keys.empty()) return reply;
  reply.values.reserve(keys.size());
  std::vector<uint8_t> partition_touched(num_partitions_, 0);
  for (VertexId v : keys) {
    BENU_CHECK(v < adjacency_.size()) << "vertex out of range: " << v;
    const auto& set = adjacency_[v];
    reply.bytes += ReplyBytes(set->size());
    uint8_t& touched = partition_touched[PartitionOf(v)];
    if (!touched) {
      touched = 1;
      ++reply.round_trips;
    }
    reply.values.push_back(set);
  }
  stats_.queries.fetch_add(keys.size(), std::memory_order_relaxed);
  stats_.batch_gets.fetch_add(1, std::memory_order_relaxed);
  stats_.round_trips.fetch_add(reply.round_trips, std::memory_order_relaxed);
  stats_.bytes_fetched.fetch_add(reply.bytes, std::memory_order_relaxed);
  queries_metric_->Add(keys.size());
  batch_gets_metric_->Add(1);
  round_trips_metric_->Add(reply.round_trips);
  bytes_metric_->Add(reply.bytes);
  return reply;
}

}  // namespace benu
