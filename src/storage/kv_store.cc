#include "storage/kv_store.h"

#include <utility>

#include "common/logging.h"
#include "common/metrics.h"
#include "common/wire.h"

namespace benu {

// The modeled per-reply overhead and the real wire header must agree, or
// the simulated backend's byte accounting would diverge from loopback/TCP.
static_assert(DistributedKvStore::kReplyOverheadBytes == wire::kHeaderBytes,
              "simulated reply overhead must equal the wire frame header");

DistributedKvStore::DistributedKvStore(const Graph& graph,
                                      size_t num_partitions)
    : DistributedKvStore(MakeSimulatedTransport(graph, num_partitions,
                                                /*compress=*/false)) {}

DistributedKvStore::DistributedKvStore(std::shared_ptr<Transport> transport)
    : transport_(std::move(transport)) {
  BENU_CHECK(transport_ != nullptr) << "null transport";
  num_partitions_ = transport_->num_partitions();
  num_vertices_ = transport_->num_vertices();
  InitMetrics();
}

void DistributedKvStore::InitMetrics() {
  auto& registry = metrics::MetricsRegistry::Global();
  queries_metric_ = registry.GetCounter(
      "kv_store.queries", "1",
      "key-level gets (the paper's #DBQ); a k-key multi-get adds k");
  round_trips_metric_ = registry.GetCounter(
      "kv_store.round_trips", "1",
      "network round trips: 1 per single get, 1 per partition per batch");
  bytes_metric_ = registry.GetCounter("kv_store.bytes_fetched", "bytes",
                                      "payload bytes of all replies");
  batch_gets_metric_ = registry.GetCounter(
      "kv_store.batch_gets", "1", "GetAdjacencyBatch calls");
}

AdjacencyPayload DistributedKvStore::GetAdjacency(VertexId v) const {
  BENU_CHECK(v < num_vertices_) << "vertex out of range: " << v;
  auto fetched = transport_->Fetch(v);
  BENU_CHECK(fetched.ok()) << "transport fetch of vertex " << v
                           << " failed: " << fetched.status().message();
  const size_t bytes = fetched->wire_bytes;
  stats_.queries.fetch_add(1, std::memory_order_relaxed);
  stats_.round_trips.fetch_add(1, std::memory_order_relaxed);
  stats_.bytes_fetched.fetch_add(bytes, std::memory_order_relaxed);
  queries_metric_->Add(1);
  round_trips_metric_->Add(1);
  bytes_metric_->Add(bytes);
  return *std::move(fetched);
}

DistributedKvStore::BatchReply DistributedKvStore::GetAdjacencyBatch(
    std::span<const VertexId> keys) const {
  BatchReply reply;
  if (keys.empty()) return reply;
  for (VertexId v : keys) {
    BENU_CHECK(v < num_vertices_) << "vertex out of range: " << v;
  }
  auto fetched = transport_->FetchBatch(keys);
  BENU_CHECK(fetched.ok()) << "transport batch fetch of " << keys.size()
                           << " keys failed: " << fetched.status().message();
  reply.values = std::move(fetched->values);
  reply.round_trips = fetched->round_trips;
  reply.bytes = fetched->bytes;
  stats_.queries.fetch_add(keys.size(), std::memory_order_relaxed);
  stats_.batch_gets.fetch_add(1, std::memory_order_relaxed);
  stats_.round_trips.fetch_add(reply.round_trips, std::memory_order_relaxed);
  stats_.bytes_fetched.fetch_add(reply.bytes, std::memory_order_relaxed);
  queries_metric_->Add(keys.size());
  batch_gets_metric_->Add(1);
  round_trips_metric_->Add(reply.round_trips);
  bytes_metric_->Add(reply.bytes);
  return reply;
}

}  // namespace benu
