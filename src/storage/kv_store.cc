#include "storage/kv_store.h"

#include "common/logging.h"

namespace benu {

DistributedKvStore::DistributedKvStore(const Graph& graph,
                                       size_t num_partitions)
    : num_partitions_(num_partitions == 0 ? 1 : num_partitions) {
  adjacency_.reserve(graph.NumVertices());
  for (VertexId v = 0; v < graph.NumVertices(); ++v) {
    VertexSetView view = graph.Adjacency(v);
    adjacency_.push_back(
        std::make_shared<const VertexSet>(view.begin(), view.end()));
  }
}

std::shared_ptr<const VertexSet> DistributedKvStore::GetAdjacency(
    VertexId v) const {
  BENU_CHECK(v < adjacency_.size()) << "vertex out of range: " << v;
  const auto& set = adjacency_[v];
  stats_.queries.fetch_add(1, std::memory_order_relaxed);
  stats_.bytes_fetched.fetch_add(ReplyBytes(set->size()),
                                 std::memory_order_relaxed);
  return set;
}

}  // namespace benu
