#include "storage/kv_server.h"

#include <string>

#include "common/logging.h"

namespace benu {

KvPartitionServer::KvPartitionServer(const Graph* graph,
                                     size_t num_partitions,
                                     size_t num_servers, size_t server_index,
                                     size_t replica_index,
                                     size_t num_replicas,
                                     bool support_encoding,
                                     bool support_deltas)
    : graph_(graph),
      num_partitions_(num_partitions == 0 ? 1 : num_partitions),
      num_servers_(num_servers == 0 ? 1 : num_servers),
      server_index_(server_index),
      replica_index_(replica_index),
      num_replicas_(num_replicas == 0 ? 1 : num_replicas),
      support_encoding_(codec::CompressionEnabled(support_encoding)),
      support_deltas_(support_deltas),
      graph_hash_(graph->FoldedContentHash()) {
  BENU_CHECK(server_index_ < num_servers_)
      << "server index " << server_index_ << " out of range (servers: "
      << num_servers_ << ")";
  BENU_CHECK(replica_index_ < num_replicas_)
      << "replica index " << replica_index_ << " out of range (replicas: "
      << num_replicas_ << ")";
  if (support_encoding_) {
    // Pre-encode this server's partition share once; request handling
    // then serves the stored streams without touching the codec.
    encoded_.resize(graph_->NumVertices());
    size_t sets = 0;
    size_t raw_bytes = 0;
    size_t encoded_bytes = 0;
    for (VertexId v = 0; v < graph_->NumVertices(); ++v) {
      if (!Serves(v)) continue;
      codec::Encode(graph_->Adjacency(v), &encoded_[v]);
      ++sets;
      raw_bytes += encoded_[v].raw_bytes();
      encoded_bytes += encoded_[v].bytes.size();
    }
    codec::NoteEncoded(sets, raw_bytes, encoded_bytes);
  }
}

bool KvPartitionServer::AppendOneReply(VertexId v, bool encoded,
                                       std::vector<uint8_t>* out) {
  if (!Serves(v)) {
    wire::AppendError(StatusCode::kOutOfRange,
                      "key " + std::to_string(v) +
                          " not served by server " +
                          std::to_string(server_index_),
                      out);
    return false;
  }
  if (encoded) {
    wire::AppendEncodedAdjacencyReply(v, encoded_[v], out);
  } else {
    wire::AppendAdjacencyReply(v, graph_->Adjacency(v), out);
  }
  keys_served_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

void KvPartitionServer::HandleFrame(std::span<const uint8_t> frame,
                                    std::vector<uint8_t>* out) {
  requests_.fetch_add(1, std::memory_order_relaxed);
  const size_t out_start = out->size();
  auto decoded = wire::DecodeFrame(frame);
  if (!decoded.ok()) {
    wire::AppendError(decoded.status().code(), decoded.status().message(),
                      out);
    // A frame that failed to decode may still carry a readable tag; echo
    // it so a pipelined client can attribute the error.
    const uint16_t garbage_tag =
        frame.size() >= wire::kHeaderBytes ? wire::FrameTag(frame) : 0;
    wire::TagFrames(std::span<uint8_t>(*out).subspan(out_start), garbage_tag);
    bytes_sent_.fetch_add(out->size() - out_start,
                          std::memory_order_relaxed);
    return;
  }
  switch (decoded->header.type) {
    case wire::MessageType::kHelloRequest: {
      wire::HelloInfo info;
      info.num_vertices = static_cast<uint32_t>(graph_->NumVertices());
      info.num_partitions = static_cast<uint32_t>(num_partitions_);
      info.num_servers = static_cast<uint32_t>(num_servers_);
      info.server_index = static_cast<uint32_t>(server_index_);
      info.replica_index = static_cast<uint32_t>(replica_index_);
      info.num_replicas = static_cast<uint32_t>(num_replicas_);
      info.flags = (support_encoding_ ? wire::kHelloSupportsEncoded : 0) |
                   (support_deltas_ ? wire::kHelloSupportsDeltas : 0);
      info.graph_hash = graph_hash_;
      info.epoch = epoch_.load(std::memory_order_acquire);
      wire::AppendHelloReply(info, out);
      break;
    }
    case wire::MessageType::kGetRequest: {
      auto key = wire::DecodeGetRequest(*decoded);
      if (!key.ok()) {
        wire::AppendError(key.status().code(), key.status().message(), out);
        break;
      }
      // Encoded replies only when requested AND supported — a raw-only
      // server transparently answers an encoding-capable client raw.
      AppendOneReply(
          *key, support_encoding_ && wire::FrameIsEncoded(*decoded), out);
      break;
    }
    case wire::MessageType::kBatchGetRequest: {
      auto keys = wire::DecodeBatchGetRequest(*decoded);
      if (!keys.ok()) {
        wire::AppendError(keys.status().code(), keys.status().message(),
                          out);
        break;
      }
      const bool encoded =
          support_encoding_ && wire::FrameIsEncoded(*decoded);
      // Reply: one kGetReply frame per key, in request order. On the
      // first bad key the error frame replaces the remaining replies —
      // the client treats any kError in a batch as a failed batch.
      for (VertexId v : *keys) {
        if (!AppendOneReply(v, encoded, out)) break;
      }
      break;
    }
    case wire::MessageType::kStatsRequest:
      wire::AppendStatsReply(stats(), out);
      break;
    case wire::MessageType::kApplyDelta: {
      if (!support_deltas_) {
        wire::AppendError(StatusCode::kFailedPrecondition,
                          "server does not support deltas", out);
        break;
      }
      uint64_t target = 0;
      std::vector<EdgeDelta> ops;
      auto st = wire::DecodeApplyDelta(*decoded, &target, &ops);
      if (!st.ok()) {
        wire::AppendError(st.code(), st.message(), out);
        break;
      }
      // Base payloads are immutable; the server only attests that it has
      // seen every delta in order, so gaps must be rejected.
      const uint64_t current = epoch_.load(std::memory_order_acquire);
      if (target != current + 1) {
        wire::AppendError(StatusCode::kFailedPrecondition,
                          "delta targets epoch " + std::to_string(target) +
                              " but server is at " + std::to_string(current),
                          out);
        break;
      }
      deltas_applied_.fetch_add(ops.size(), std::memory_order_relaxed);
      wire::AppendDeltaAck(target, out);
      break;
    }
    case wire::MessageType::kEpochAdvance: {
      if (!support_deltas_) {
        wire::AppendError(StatusCode::kFailedPrecondition,
                          "server does not support deltas", out);
        break;
      }
      auto target = wire::DecodeEpochAdvance(*decoded);
      if (!target.ok()) {
        wire::AppendError(target.status().code(), target.status().message(),
                          out);
        break;
      }
      const uint64_t current = epoch_.load(std::memory_order_acquire);
      if (*target != current + 1) {
        wire::AppendError(StatusCode::kFailedPrecondition,
                          "cannot advance to epoch " + std::to_string(*target) +
                              " from " + std::to_string(current),
                          out);
        break;
      }
      epoch_.store(*target, std::memory_order_release);
      wire::AppendDeltaAck(*target, out);
      break;
    }
    default:
      wire::AppendError(
          StatusCode::kInvalidArgument,
          "unsupported request type " +
              std::to_string(static_cast<int>(decoded->header.type)),
          out);
  }
  // Echo the request's tag onto every reply frame so pipelined clients
  // can demux replies of interleaved in-flight requests. Mask off the
  // request's encoding flag — replies carry their own.
  wire::TagFrames(std::span<uint8_t>(*out).subspan(out_start),
                  decoded->header.flags & wire::kTagMask);
  bytes_sent_.fetch_add(out->size() - out_start, std::memory_order_relaxed);
}

}  // namespace benu
