#ifndef BENU_STORAGE_SOCKET_IO_H_
#define BENU_STORAGE_SOCKET_IO_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/status.h"

namespace benu::net {

/// POSIX socket helpers shared by the TCP transport (client side) and
/// KvTcpServer (server side). All calls retry on EINTR and translate
/// errno failures into kIoError statuses; a peer that closed the
/// connection is reported as kUnavailable ("connection closed by peer")
/// so retry logic can tell closed from corrupt, and an expired time
/// budget as kDeadlineExceeded.
///
/// Every read/write takes a `timeout_ms` *no-progress* budget: the call
/// fails with kDeadlineExceeded if the fd makes no forward progress for
/// that long (each completed recv/send resets the clock). Pass -1 to
/// wait forever. Timeouts are poll-based and work on blocking and
/// non-blocking fds alike; only non-blocking fds can actually be
/// interrupted mid-syscall by a concurrent shutdown(), so connections
/// managed by the pipelined transport are switched to non-blocking.

/// Connects to host:port (numeric IP or resolvable name), retrying with
/// exponential backoff until `timeout_ms` elapses — servers may still be
/// binding when the client starts. Returns the connected fd with
/// TCP_NODELAY set (the protocol is request/reply; Nagle would serialize
/// round trips).
StatusOr<int> TcpConnect(const std::string& host, uint16_t port,
                         int timeout_ms);

/// Sets O_NONBLOCK on the fd.
Status SetNonBlocking(int fd);

/// Writes the whole span.
Status WriteAll(int fd, std::span<const uint8_t> data, int timeout_ms = -1);

/// Reads exactly n bytes. EOF before n bytes yields kUnavailable.
Status ReadExact(int fd, uint8_t* buf, size_t n, int timeout_ms = -1);

/// Reads one complete wire frame (common/wire.h) into `*buf` (replaced):
/// header first, then the payload the header announces. Validates the
/// magic and bounds the payload size before allocating.
Status ReadWireFrame(int fd, std::vector<uint8_t>* buf, int timeout_ms = -1);

/// close() that retries on EINTR; ignores errors (used in teardown).
void CloseFd(int fd);

}  // namespace benu::net

#endif  // BENU_STORAGE_SOCKET_IO_H_
