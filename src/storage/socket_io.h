#ifndef BENU_STORAGE_SOCKET_IO_H_
#define BENU_STORAGE_SOCKET_IO_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/status.h"

namespace benu::net {

/// Blocking POSIX socket helpers shared by the TCP transport (client
/// side) and KvTcpServer (server side). All calls retry on EINTR and
/// translate errno failures into kIoError statuses.

/// Connects to host:port (numeric IP or resolvable name), retrying until
/// `timeout_ms` elapses — servers may still be binding when the client
/// starts. Returns the connected fd with TCP_NODELAY set (the protocol is
/// request/reply; Nagle would serialize round trips).
StatusOr<int> TcpConnect(const std::string& host, uint16_t port,
                         int timeout_ms);

/// Writes the whole span.
Status WriteAll(int fd, std::span<const uint8_t> data);

/// Reads exactly n bytes; EOF before n bytes is an error.
Status ReadExact(int fd, uint8_t* buf, size_t n);

/// Reads one complete wire frame (common/wire.h) into `*buf` (replaced):
/// header first, then the payload the header announces. Validates the
/// magic and bounds the payload size before allocating.
Status ReadWireFrame(int fd, std::vector<uint8_t>* buf);

/// close() that retries on EINTR; ignores errors (used in teardown).
void CloseFd(int fd);

}  // namespace benu::net

#endif  // BENU_STORAGE_SOCKET_IO_H_
