#ifndef BENU_STORAGE_TRANSPORT_H_
#define BENU_STORAGE_TRANSPORT_H_

#include <atomic>
#include <cstddef>
#include <memory>
#include <span>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "graph/adj_codec.h"
#include "graph/graph.h"
#include "graph/vertex_set.h"

namespace benu {

namespace metrics {
class Counter;
}  // namespace metrics

/// Per-backend communication counters. Every Transport instance keeps its
/// own atomic totals and additionally mirrors them into the process-wide
/// metrics registry as `transport.<name>.{fetches,batch_gets,round_trips,
/// bytes,bytes_encoded}` (docs/metrics.md), so runs over different
/// backends can be compared counter by counter — the loopback/TCP wire
/// paths must agree with the simulated path exactly (metrics_test.cc
/// asserts it).
struct TransportStats {
  /// Single-key Fetch calls.
  std::atomic<Count> fetches{0};
  /// Batched FetchBatch calls.
  std::atomic<Count> batch_gets{0};
  /// Network round trips: one per single fetch, one per partition
  /// touched per batch.
  std::atomic<Count> round_trips{0};
  /// Reply payload bytes (wire frame bytes for loopback/TCP; the
  /// modeled equivalent — identical by construction — for the
  /// simulated backend). Compressed replies count their *encoded*
  /// frame size, which is what makes compression visible here.
  std::atomic<Count> bytes{0};
  /// The subset of `bytes` carried by delta+varint encoded replies.
  std::atomic<Count> bytes_encoded{0};

  void Reset() {
    fetches.store(0);
    batch_gets.store(0);
    round_trips.store(0);
    bytes.store(0);
    bytes_encoded.store(0);
  }
};

/// One fetched adjacency value, either decoded (raw backends, zero-copy
/// in-process sharing) or still delta+varint encoded (compressed
/// backends — the executor's fused kernels consume the encoded form
/// directly). Exactly one of `decoded` / `encoded` is non-null.
struct AdjacencyPayload {
  std::shared_ptr<const VertexSet> decoded;
  std::shared_ptr<const codec::EncodedSet> encoded;
  /// Wire footprint of the reply frame that carried this value — what
  /// the transport accounted into `TransportStats::bytes` for it.
  size_t wire_bytes = 0;

  bool is_encoded() const { return encoded != nullptr; }

  /// Number of adjacency entries (no decode needed).
  size_t size() const {
    return encoded != nullptr ? encoded->count
                              : (decoded != nullptr ? decoded->size() : 0);
  }

  /// Bytes this payload occupies at rest (encoded size when encoded,
  /// 4 bytes/entry otherwise) — the DbCache charge basis.
  size_t resident_bytes() const {
    return encoded != nullptr ? encoded->bytes.size()
                              : size() * sizeof(VertexId);
  }

  /// The decoded set: `decoded` when already raw, otherwise a fresh
  /// full materialization (counted in codec.decode.*). Null only for a
  /// default-constructed payload.
  std::shared_ptr<const VertexSet> Materialize() const;
};

/// The communication layer beneath DistributedKvStore (DESIGN.md §2f):
/// how a worker's adjacency requests reach the partitioned store. The
/// enumeration engine above (DbCache → DistributedKvStore) is backend-
/// agnostic; the backends are:
///
///   - "sim"      in-process, zero-copy, modeled byte accounting — the
///                original cluster simulator expressed as a Transport;
///   - "loopback" in-process but through the full wire protocol
///                (common/wire.h): every fetch is framed, served by a
///                per-partition KvPartitionServer and decoded back;
///   - "tcp"      real sockets against separate KV-server processes
///                (tcp_transport.h / benu_kv_server).
///
/// All three charge identical round-trip and byte accounting for the
/// same request sequence, so the virtual-time model applies uniformly.
/// Implementations are thread-safe: worker threads fetch concurrently.
class Transport {
 public:
  /// Reply of one batched multi-get: values in request key order.
  struct BatchResult {
    std::vector<AdjacencyPayload> values;
    /// Distinct partitions touched — one round trip each.
    size_t round_trips = 0;
    /// Total reply payload bytes.
    size_t bytes = 0;
  };

  virtual ~Transport() = default;

  /// Backend name, used as the metrics label ("sim", "loopback", "tcp").
  virtual const char* name() const = 0;
  virtual size_t num_partitions() const = 0;
  /// Vertices of the stored graph (keys are 0..num_vertices-1).
  virtual size_t num_vertices() const = 0;

  /// Folded 32-bit Graph::ContentHash() of the graph this transport
  /// serves, so a client can verify it agrees with the servers on
  /// vertex ids (degree relabeling). 0 = unknown.
  virtual uint32_t graph_hash() const { return 0; }

  /// True iff replies travel delta+varint encoded on this transport.
  virtual bool compressed() const { return false; }

  /// Fetches Γ(v). Payload values are immutable; for in-process
  /// backends they may be shared with the store.
  virtual StatusOr<AdjacencyPayload> Fetch(VertexId v) = 0;

  /// Fetches Γ(v) for every key in one multi-get: keys are grouped by
  /// partition and each touched partition costs one round trip.
  virtual StatusOr<BatchResult> FetchBatch(
      std::span<const VertexId> keys) = 0;

  /// Outcome of replicating one epoch delta to the backend's servers.
  struct DeltaPushResult {
    /// Delta-capable servers that acknowledged the frame (kDeltaAck).
    size_t acked_servers = 0;
    /// Connected pre-delta (v2-era) peers the frame was *not* sent to —
    /// the capability-bit downgrade. Results stay correct because
    /// snapshots are composed client-side (versioned_store.h); only the
    /// servers' epoch attestation is lost.
    size_t downgraded_servers = 0;
  };

  /// Replicates the net edge delta producing `epoch` to every
  /// delta-capable server (wire kApplyDelta). Servers keep serving the
  /// *base* payloads unchanged; the frame only advances their attested
  /// epoch, which reconnect validation checks alongside graph_hash.
  /// Default: no servers to inform (in-process backends).
  virtual StatusOr<DeltaPushResult> PushDelta(uint64_t epoch,
                                              std::span<const EdgeDelta> ops) {
    (void)epoch;
    (void)ops;
    return DeltaPushResult{};
  }

  /// Marks `epoch` committed on every delta-capable server (wire
  /// kEpochAdvance) after its kApplyDelta was acked. Default: no-op.
  virtual StatusOr<DeltaPushResult> AdvanceEpoch(uint64_t epoch) {
    (void)epoch;
    return DeltaPushResult{};
  }

  const TransportStats& stats() const { return stats_; }

 protected:
  /// Resolves the `transport.<name>.*` registry mirrors; implementations
  /// call this once from their constructor.
  void InitMetrics(const char* name);
  /// Accounts one fetch or batch into the stats and registry mirrors.
  /// `encoded_bytes` is the portion of `bytes` carried by encoded
  /// replies (0 on raw paths).
  void Account(size_t round_trips, size_t bytes, size_t encoded_bytes,
               bool batch);

  TransportStats stats_;

 private:
  metrics::Counter* fetches_metric_ = nullptr;
  metrics::Counter* batch_gets_metric_ = nullptr;
  metrics::Counter* round_trips_metric_ = nullptr;
  metrics::Counter* bytes_metric_ = nullptr;
  metrics::Counter* bytes_encoded_metric_ = nullptr;
};

/// The in-process simulated backend: adjacency sets are shared zero-copy
/// with the caller and communication is modeled, not performed — the
/// seed ClusterSimulator behavior, now just one Transport among several.
/// With `compress` (subject to codec::CompressionEnabled) the store
/// pre-encodes every set once and serves the encoded payloads, modeling
/// encoded frame sizes.
std::shared_ptr<Transport> MakeSimulatedTransport(const Graph& graph,
                                                  size_t num_partitions,
                                                  bool compress = true);

/// The in-process wire-format backend: one KvPartitionServer per
/// partition, every fetch framed/served/decoded through common/wire.h.
/// Bit-for-bit equivalent to the simulated backend in counts and byte
/// accounting; used to validate the protocol without sockets. Copies the
/// graph, so the argument need not outlive the transport. `compress`
/// requests encoded replies (subject to codec::CompressionEnabled).
std::shared_ptr<Transport> MakeLoopbackTransport(const Graph& graph,
                                                 size_t num_partitions,
                                                 bool compress = true);

}  // namespace benu

#endif  // BENU_STORAGE_TRANSPORT_H_
