#ifndef BENU_STORAGE_KV_TCP_SERVER_H_
#define BENU_STORAGE_KV_TCP_SERVER_H_

#include <atomic>
#include <cstdint>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "graph/graph.h"
#include "storage/kv_server.h"

namespace benu {

/// TCP front end of one KvPartitionServer: a single-threaded epoll event
/// loop that accepts connections and moves wire frames (common/wire.h)
/// between sockets and HandleFrame. Connections are non-blocking; every
/// complete request frame buffered on a connection is served before the
/// replies are flushed in one write (server-side batch coalescing), so a
/// pipelined client with a deep in-flight window costs one wakeup and
/// one send per burst instead of one thread context switch per request.
///
/// Used in-process by transport_test and bench_pipeline (real sockets,
/// one process) and as the body of the standalone `benu_kv_server`
/// binary (real multi-process runs; see benu_driver --spawn-servers).
class KvTcpServer {
 public:
  /// `graph` must outlive the server. `replica_index`/`num_replicas`
  /// identify this instance among interchangeable replicas of the same
  /// partition share (reported in the hello handshake).
  /// `support_encoding` forwards to KvPartitionServer: pre-encode the
  /// share and answer encoding-flagged requests with delta+varint
  /// replies (subject to codec::CompressionEnabled). `support_deltas`
  /// likewise forwards: accept kApplyDelta/kEpochAdvance and attest the
  /// epoch (false spawns a pre-delta v2-era server — the downgrade case
  /// the dynamic-smoke CI job exercises).
  KvTcpServer(const Graph* graph, size_t num_partitions, size_t num_servers,
              size_t server_index, size_t replica_index = 0,
              size_t num_replicas = 1, bool support_encoding = true,
              bool support_deltas = true);
  ~KvTcpServer();

  KvTcpServer(const KvTcpServer&) = delete;
  KvTcpServer& operator=(const KvTcpServer&) = delete;

  /// Binds and listens on `port` (0 picks an ephemeral port, readable
  /// via port() afterwards). Call before Start().
  Status Listen(uint16_t port);

  /// Spawns the event-loop thread. Listen() must have succeeded.
  Status Start();

  /// Stops the event loop, closes every connection and joins the loop
  /// thread. Idempotent; also run by the destructor.
  void Stop();

  uint16_t port() const { return port_; }
  const KvPartitionServer& partition_server() const { return server_; }

 private:
  /// Per-connection state: partial inbound frames and unflushed replies.
  struct Conn {
    std::vector<uint8_t> in;   ///< buffered inbound bytes
    size_t in_pos = 0;         ///< bytes of `in` already consumed
    std::vector<uint8_t> out;  ///< encoded replies not yet flushed
    size_t out_pos = 0;        ///< bytes of `out` already sent
    bool want_write = false;   ///< EPOLLOUT currently armed
  };

  void EventLoop();
  void AcceptReady();
  /// Reads, serves every complete buffered frame, flushes. False → the
  /// connection is dead (EOF, error, or protocol garbage) and must go.
  bool ServeReadable(int fd, Conn& conn);
  /// Flushes pending replies; arms/disarms EPOLLOUT as needed. False →
  /// the connection is dead.
  bool FlushWrites(int fd, Conn& conn);
  void CloseConn(int fd);

  KvPartitionServer server_;
  int listen_fd_ = -1;
  int epoll_fd_ = -1;
  int wake_fds_[2] = {-1, -1};  // self-pipe that wakes the loop for Stop()
  uint16_t port_ = 0;
  std::atomic<bool> stopping_{false};
  std::thread loop_thread_;
  std::unordered_map<int, Conn> conns_;  // owned by the loop thread
};

}  // namespace benu

#endif  // BENU_STORAGE_KV_TCP_SERVER_H_
