#ifndef BENU_STORAGE_KV_TCP_SERVER_H_
#define BENU_STORAGE_KV_TCP_SERVER_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <thread>
#include <vector>

#include "common/status.h"
#include "graph/graph.h"
#include "storage/kv_server.h"

namespace benu {

/// TCP front end of one KvPartitionServer: accepts connections and moves
/// wire frames (common/wire.h) between sockets and HandleFrame. Each
/// connection gets its own thread; the partition server underneath is
/// thread-safe, so one KvTcpServer serves many concurrent clients.
///
/// Used in-process by transport_test (real sockets, one process) and as
/// the body of the standalone `benu_kv_server` binary (real multi-process
/// runs; see benu_driver --spawn-servers).
class KvTcpServer {
 public:
  /// `graph` must outlive the server.
  KvTcpServer(const Graph* graph, size_t num_partitions, size_t num_servers,
              size_t server_index);
  ~KvTcpServer();

  KvTcpServer(const KvTcpServer&) = delete;
  KvTcpServer& operator=(const KvTcpServer&) = delete;

  /// Binds and listens on `port` (0 picks an ephemeral port, readable
  /// via port() afterwards). Call before Start().
  Status Listen(uint16_t port);

  /// Spawns the accept loop. Listen() must have succeeded.
  Status Start();

  /// Stops accepting, closes every connection and joins all threads.
  /// Idempotent; also run by the destructor.
  void Stop();

  uint16_t port() const { return port_; }
  const KvPartitionServer& partition_server() const { return server_; }

 private:
  void AcceptLoop();
  void ServeConnection(int fd);

  KvPartitionServer server_;
  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::atomic<bool> stopping_{false};
  std::thread accept_thread_;
  std::mutex mu_;                        // guards conn_threads_/conn_fds_
  std::vector<std::thread> conn_threads_;
  std::vector<int> conn_fds_;
};

}  // namespace benu

#endif  // BENU_STORAGE_KV_TCP_SERVER_H_
