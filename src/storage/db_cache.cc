#include "storage/db_cache.h"

namespace benu {

DbCache::DbCache(const DistributedKvStore* store, size_t capacity_bytes,
                 size_t num_shards)
    : store_(store), capacity_bytes_(capacity_bytes) {
  if (num_shards == 0) num_shards = 1;
  shards_.reserve(num_shards);
  for (size_t i = 0; i < num_shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

std::shared_ptr<const VertexSet> DbCache::GetAdjacency(VertexId v,
                                                       bool* was_hit) {
  Shard& shard = ShardFor(v);
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.index.find(v);
    if (it != shard.index.end()) {
      ++shard.hits;
      if (was_hit != nullptr) *was_hit = true;
      // Move to the front of the LRU list.
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
      return it->second->value;
    }
    ++shard.misses;
  }
  if (was_hit != nullptr) *was_hit = false;
  // Miss path: query the distributed database outside the shard lock so a
  // slow remote fetch does not block other threads hitting this shard.
  std::shared_ptr<const VertexSet> value = store_->GetAdjacency(v);
  if (capacity_bytes_ == 0) return value;
  const size_t bytes = EntryBytes(*value);
  const size_t shard_capacity = capacity_bytes_ / shards_.size();
  if (bytes > shard_capacity) return value;  // too large to retain
  std::lock_guard<std::mutex> lock(shard.mu);
  if (shard.index.count(v) > 0) return value;  // raced with another thread
  shard.lru.push_front(Entry{v, value, bytes});
  shard.index[v] = shard.lru.begin();
  shard.bytes += bytes;
  while (shard.bytes > shard_capacity && !shard.lru.empty()) {
    const Entry& victim = shard.lru.back();
    shard.bytes -= victim.bytes;
    shard.index.erase(victim.key);
    shard.lru.pop_back();
  }
  return value;
}

DbCacheStats DbCache::stats() const {
  DbCacheStats total;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    total.hits += shard->hits;
    total.misses += shard->misses;
  }
  return total;
}

size_t DbCache::SizeBytes() const {
  size_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    total += shard->bytes;
  }
  return total;
}

}  // namespace benu
