#include "storage/db_cache.h"

namespace benu {

DbCache::DbCache(const DistributedKvStore* store, size_t capacity_bytes,
                 size_t num_shards)
    : store_(store), capacity_bytes_(capacity_bytes) {
  if (num_shards == 0) num_shards = 1;
  shards_.reserve(num_shards);
  for (size_t i = 0; i < num_shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

DbCache::Reply DbCache::Get(VertexId v) {
  Shard& shard = ShardFor(v);
  std::shared_ptr<Flight> flight;
  bool primary = false;
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.index.find(v);
    if (it != shard.index.end()) {
      ++shard.hits;
      // Move to the front of the LRU list.
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
      return Reply{it->second->value, Outcome::kHit};
    }
    auto fit = shard.inflight.find(v);
    if (fit != shard.inflight.end()) {
      // Another thread is already fetching v: piggyback on its query.
      ++shard.coalesced;
      flight = fit->second;
    } else {
      ++shard.misses;
      flight = std::make_shared<Flight>();
      shard.inflight.emplace(v, flight);
      primary = true;
    }
  }

  if (!primary) {
    std::unique_lock<std::mutex> fl(flight->mu);
    flight->ready_cv.wait(fl, [&flight] { return flight->ready; });
    return Reply{flight->value, Outcome::kCoalesced};
  }

  // Primary miss path: query the distributed database outside any lock so
  // a slow remote fetch blocks neither other keys of this shard nor the
  // waiters of other flights.
  std::shared_ptr<const VertexSet> value = store_->GetAdjacency(v);
  const size_t bytes = EntryBytes(*value);
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.inflight.erase(v);
    const size_t shard_capacity =
        capacity_bytes_ == 0 ? 0 : capacity_bytes_ / shards_.size();
    if (bytes <= shard_capacity) {  // capacity 0 / oversized: not retained
      auto it = shard.index.find(v);
      if (it != shard.index.end()) {
        // Raced insert (unreachable while single-flight holds, kept as
        // defense): the entry is hot — promote it to MRU instead of
        // leaving it where a concurrent eviction pass would take it.
        shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
      } else {
        shard.lru.push_front(Entry{v, value, bytes});
        shard.index[v] = shard.lru.begin();
        shard.bytes += bytes;
        while (shard.bytes > shard_capacity && !shard.lru.empty()) {
          const Entry& victim = shard.lru.back();
          shard.bytes -= victim.bytes;
          shard.index.erase(victim.key);
          shard.lru.pop_back();
        }
      }
    }
  }
  // Publish to waiters only after the flight is unlinked from the shard,
  // so a late Get either sees the cached entry or starts a fresh flight.
  {
    std::lock_guard<std::mutex> fl(flight->mu);
    flight->value = value;
    flight->ready = true;
  }
  flight->ready_cv.notify_all();
  return Reply{std::move(value), Outcome::kMiss};
}

std::shared_ptr<const VertexSet> DbCache::GetAdjacency(VertexId v,
                                                       bool* was_hit) {
  Reply reply = Get(v);
  if (was_hit != nullptr) *was_hit = reply.outcome == Outcome::kHit;
  return std::move(reply.value);
}

DbCacheStats DbCache::stats() const {
  DbCacheStats total;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    total.hits += shard->hits;
    total.misses += shard->misses;
    total.coalesced += shard->coalesced;
  }
  return total;
}

size_t DbCache::SizeBytes() const {
  size_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    total += shard->bytes;
  }
  return total;
}

}  // namespace benu
