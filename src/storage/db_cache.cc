#include "storage/db_cache.h"

#include "common/metrics.h"
#include "common/thread_pool.h"
#include "core/memory_governor.h"

namespace benu {

DbCache::DbCache(const DistributedKvStore* store, size_t capacity_bytes,
                 size_t num_shards, ThreadPool* fetch_pool,
                 size_t prefetch_batch_size, MemoryGovernor* governor)
    : store_(store),
      capacity_bytes_(capacity_bytes),
      fetch_pool_(fetch_pool),
      prefetch_batch_size_(prefetch_batch_size == 0 ? 1
                                                    : prefetch_batch_size),
      governor_(governor) {
  if (num_shards == 0) num_shards = 1;
  shards_.reserve(num_shards);
  for (size_t i = 0; i < num_shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
  auto& registry = metrics::MetricsRegistry::Global();
  metrics_.hits = registry.GetCounter(
      "db_cache.hits", "1", "lookups served from cache without any wait");
  metrics_.misses = registry.GetCounter(
      "db_cache.misses", "1", "lookups that issued a store query");
  metrics_.coalesced = registry.GetCounter(
      "db_cache.coalesced", "1",
      "lookups that waited on another thread's in-flight query (non-hits)");
  metrics_.prefetches_issued = registry.GetCounter(
      "db_cache.prefetches_issued", "1",
      "keys enqueued by PrefetchAsync (not cached, not in flight)");
  metrics_.prefetch_hits = registry.GetCounter(
      "db_cache.prefetch_hits", "1",
      "first-touch hits on prefetched entries (latency fully hidden)");
  metrics_.prefetch_claimed = registry.GetCounter(
      "db_cache.prefetch_claimed", "1",
      "queued prefetches a Get claimed and fetched synchronously");
  metrics_.prefetch_wasted = registry.GetCounter(
      "db_cache.prefetch_wasted", "1",
      "prefetched entries evicted or dropped without serving a hit");
  metrics_.epoch_invalidations = registry.GetCounter(
      "db_cache.epoch_invalidations", "1",
      "entries evicted by AdvanceEpoch's precise invalidation");
  metrics_.prefetch_round_trips = registry.GetCounter(
      "db_cache.prefetch_round_trips", "1",
      "round trips of batched background fetches (1/partition/batch)");
  metrics_.prefetch_bytes = registry.GetCounter(
      "db_cache.prefetch_bytes", "bytes",
      "payload bytes fetched by the prefetch pipeline");
  metrics_.resident_bytes = registry.GetGauge(
      "db_cache.resident_bytes", "bytes",
      "currently cached resident bytes (encoded size for compressed "
      "entries, plus per-entry overhead) across all caches");
  metrics_.sync_fetch_us = registry.GetHistogram(
      "db_cache.sync_fetch.us", "us",
      "latency of synchronous primary-miss store queries (traced)");
  metrics_.coalesced_wait_us = registry.GetHistogram(
      "db_cache.coalesced_wait.us", "us",
      "time a coalesced lookup waited on a sibling's flight (traced)");
  metrics_.batch_fetch_us = registry.GetHistogram(
      "db_cache.batch_fetch.us", "us",
      "latency of one batched background multi-get (traced)");
}

DbCache::~DbCache() {
  {
    std::unique_lock<std::mutex> lock(prefetch_mu_);
    shutting_down_ = true;
    // Fetcher jobs referencing this cache must finish before the shards
    // go away; the pool keeps running them by contract (it outlives the
    // cache), so this wait terminates.
    prefetch_idle_cv_.wait(lock, [this] { return active_jobs_ == 0; });
  }
  // Publish any flights no fetcher picked up, so a (misbehaving) waiter
  // blocked in Get is released rather than deadlocked on teardown.
  DrainQueue();
  // The resident-bytes gauge is a process-wide total across caches;
  // un-count this cache's surviving entries (and release the governor's
  // budget share, so a later run under the same governor starts clean).
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    if (shard->bytes != 0) {
      metrics_.resident_bytes->Add(-static_cast<double>(shard->bytes));
      if (governor_ != nullptr) {
        governor_->AddCacheResident(-static_cast<int64_t>(shard->bytes));
      }
    }
  }
}

DbCache::Reply DbCache::Get(VertexId v) {
  Shard& shard = ShardFor(v);
  std::shared_ptr<Flight> flight;
  bool primary = false;
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.index.find(v);
    if (it != shard.index.end()) {
      ++shard.hits;
      metrics_.hits->Add(1);
      if (it->second->prefetched) {
        // First touch of a prefetched entry: the pipeline converted a
        // would-be stall into a hit.
        it->second->prefetched = false;
        ++shard.prefetch_hits;
        metrics_.prefetch_hits->Add(1);
      }
      // Move to the front of the LRU list.
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
      return Reply{it->second->value, Outcome::kHit};
    }
    auto fit = shard.inflight.find(v);
    if (fit != shard.inflight.end()) {
      flight = fit->second;
      int expected = kFlightQueued;
      if (flight->state.compare_exchange_strong(expected, kFlightFetching)) {
        // The key sits in the prefetch queue but no fetcher has picked
        // it up: claim the flight and fetch synchronously. The stale
        // queue entry is skipped when a fetcher eventually pops it.
        ++shard.misses;
        ++shard.prefetch_claimed;
        metrics_.misses->Add(1);
        metrics_.prefetch_claimed->Add(1);
        primary = true;
      } else {
        // Another thread (Get primary or fetcher) is already fetching v:
        // piggyback on its query.
        ++shard.coalesced;
        metrics_.coalesced->Add(1);
      }
    } else {
      ++shard.misses;
      metrics_.misses->Add(1);
      flight = std::make_shared<Flight>();
      flight->epoch.store(epoch_.load(std::memory_order_acquire),
                          std::memory_order_relaxed);
      shard.inflight.emplace(v, flight);
      primary = true;
    }
  }

  if (!primary) {
    {
      metrics::ScopedSpan span(metrics_.coalesced_wait_us);
      std::unique_lock<std::mutex> fl(flight->mu);
      flight->ready_cv.wait(fl, [&flight] { return flight->ready; });
    }
    if (flight->epoch.load(std::memory_order_acquire) !=
        epoch_.load(std::memory_order_acquire)) {
      // The flight we waited on was fetched under a superseded epoch:
      // its value belongs to the previous snapshot (and was not
      // retained). Retry under the current epoch.
      return Get(v);
    }
    return Reply{flight->value, Outcome::kCoalesced};
  }

  // Primary miss path: query the distributed database outside any lock so
  // a slow remote fetch blocks neither other keys of this shard nor the
  // waiters of other flights.
  AdjacencyPayload value;
  for (;;) {
    {
      metrics::ScopedSpan span(metrics_.sync_fetch_us);
      value = store_->GetAdjacency(v);
    }
    const uint64_t now = epoch_.load(std::memory_order_acquire);
    if (flight->epoch.load(std::memory_order_relaxed) == now) break;
    // An epoch advanced mid-fetch: the value may be the old snapshot's.
    // Re-stamp the flight and refetch so this Get returns (and installs)
    // the current epoch's adjacency.
    flight->epoch.store(now, std::memory_order_release);
  }
  Reply reply{value, Outcome::kMiss};
  InsertAndPublish(v, std::move(value), flight, /*prefetched=*/false);
  return reply;
}

void DbCache::InsertAndPublish(VertexId v, AdjacencyPayload value,
                               const std::shared_ptr<Flight>& flight,
                               bool prefetched) {
  Shard& shard = ShardFor(v);
  const size_t bytes = EntryBytes(value);
  // Fetched under a superseded epoch? Publish to waiters (they re-check
  // the tag and retry) but never retain — a stale adjacency set must not
  // surface as a hit in the new snapshot.
  const bool stale = flight->epoch.load(std::memory_order_acquire) !=
                     epoch_.load(std::memory_order_acquire);
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.inflight.erase(v);
    const size_t shard_capacity =
        capacity_bytes_ == 0 ? 0 : capacity_bytes_ / shards_.size();
    if (!stale &&
        bytes <= shard_capacity) {  // capacity 0 / oversized: not retained
      auto it = shard.index.find(v);
      if (it != shard.index.end()) {
        // Raced insert (unreachable while single-flight holds, kept as
        // defense): the entry is hot — promote it to MRU instead of
        // leaving it where a concurrent eviction pass would take it. The
        // incoming value is dropped; if it was prefetched, that fetch
        // converted nothing and counts as wasted.
        shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
        if (prefetched) {
          ++shard.prefetch_wasted;
          metrics_.prefetch_wasted->Add(1);
        }
      } else {
        shard.lru.push_front(Entry{v, value, bytes, prefetched});
        shard.index[v] = shard.lru.begin();
        shard.bytes += bytes;
        metrics_.resident_bytes->Add(static_cast<double>(bytes));
        if (governor_ != nullptr) {
          governor_->AddCacheResident(static_cast<int64_t>(bytes));
        }
        while (shard.bytes > shard_capacity && !shard.lru.empty()) {
          const Entry& victim = shard.lru.back();
          if (victim.prefetched) {
            ++shard.prefetch_wasted;
            metrics_.prefetch_wasted->Add(1);
          }
          shard.bytes -= victim.bytes;
          metrics_.resident_bytes->Add(-static_cast<double>(victim.bytes));
          if (governor_ != nullptr) {
            governor_->AddCacheResident(-static_cast<int64_t>(victim.bytes));
          }
          shard.index.erase(victim.key);
          shard.lru.pop_back();
        }
      }
    } else if (prefetched) {
      // Fetched but never retained: the prefetch cannot convert a future
      // lookup, so the work is wasted by definition.
      ++shard.prefetch_wasted;
      metrics_.prefetch_wasted->Add(1);
    }
  }
  // Publish to waiters only after the flight is unlinked from the shard,
  // so a late Get either sees the cached entry or starts a fresh flight.
  {
    std::lock_guard<std::mutex> fl(flight->mu);
    flight->value = std::move(value);
    flight->ready = true;
  }
  flight->ready_cv.notify_all();
}

void DbCache::PrefetchAsync(const VertexId* keys, size_t count) {
  if (count == 0) return;
  std::vector<VertexId> fresh;
  fresh.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    const VertexId v = keys[i];
    Shard& shard = ShardFor(v);
    std::lock_guard<std::mutex> lock(shard.mu);
    if (shard.index.count(v) != 0) continue;     // already cached
    if (shard.inflight.count(v) != 0) continue;  // already queued/fetching
    auto flight = std::make_shared<Flight>();
    flight->state.store(kFlightQueued, std::memory_order_relaxed);
    flight->epoch.store(epoch_.load(std::memory_order_acquire),
                        std::memory_order_relaxed);
    shard.inflight.emplace(v, flight);
    ++shard.prefetches_issued;
    metrics_.prefetches_issued->Add(1);
    fresh.push_back(v);
  }
  if (fresh.empty()) return;
  bool scheduled = false;
  {
    std::lock_guard<std::mutex> lock(prefetch_mu_);
    prefetch_queue_.insert(prefetch_queue_.end(), fresh.begin(), fresh.end());
    if (fetch_pool_ != nullptr && !shutting_down_) {
      ++active_jobs_;
      scheduled = true;
    }
  }
  if (scheduled) {
    fetch_pool_->Submit([this] {
      DrainQueue();
      std::lock_guard<std::mutex> lock(prefetch_mu_);
      if (--active_jobs_ == 0) prefetch_idle_cv_.notify_all();
    });
  } else if (fetch_pool_ == nullptr) {
    // Forced-sync mode: no background fetcher — drain inline, still
    // through the batched multi-get (deterministic, no overlap).
    DrainQueue();
  }
}

void DbCache::DrainQueue() {
  std::vector<VertexId> batch;
  batch.reserve(prefetch_batch_size_);
  for (;;) {
    // With a governor the multi-get width breathes with memory headroom
    // (re-read per batch — pressure can change while draining): wider
    // batches amortize more round-trip latency when memory is plentiful,
    // and fall back to the static knob near the cap.
    const size_t batch_limit = governor_ != nullptr
                                   ? governor_->PrefetchBatchSize()
                                   : prefetch_batch_size_;
    batch.clear();
    {
      std::lock_guard<std::mutex> lock(prefetch_mu_);
      while (!prefetch_queue_.empty() && batch.size() < batch_limit) {
        batch.push_back(prefetch_queue_.front());
        prefetch_queue_.pop_front();
      }
    }
    if (batch.empty()) return;
    FetchBatch(batch);
  }
}

void DbCache::FetchBatch(const std::vector<VertexId>& batch) {
  std::vector<VertexId> to_fetch;
  std::vector<std::shared_ptr<Flight>> flights;
  to_fetch.reserve(batch.size());
  flights.reserve(batch.size());
  for (VertexId v : batch) {
    Shard& shard = ShardFor(v);
    std::shared_ptr<Flight> flight;
    {
      std::lock_guard<std::mutex> lock(shard.mu);
      auto it = shard.inflight.find(v);
      if (it == shard.inflight.end()) continue;  // claimed and resolved
      flight = it->second;
    }
    int expected = kFlightQueued;
    if (!flight->state.compare_exchange_strong(expected, kFlightFetching)) {
      continue;  // a Get claimed this key and fetches it itself
    }
    to_fetch.push_back(v);
    flights.push_back(std::move(flight));
  }
  if (to_fetch.empty()) return;
  DistributedKvStore::BatchReply reply;
  {
    metrics::ScopedSpan span(metrics_.batch_fetch_us);
    reply = store_->GetAdjacencyBatch(to_fetch);
  }
  prefetch_round_trips_.fetch_add(reply.round_trips,
                                  std::memory_order_relaxed);
  prefetch_bytes_.fetch_add(reply.bytes, std::memory_order_relaxed);
  metrics_.prefetch_round_trips->Add(reply.round_trips);
  metrics_.prefetch_bytes->Add(reply.bytes);
  for (size_t i = 0; i < to_fetch.size(); ++i) {
    InsertAndPublish(to_fetch[i], std::move(reply.values[i]), flights[i],
                     /*prefetched=*/true);
  }
}

void DbCache::AdvanceEpoch(uint64_t epoch,
                           std::span<const VertexId> touched) {
  // Publish the new epoch BEFORE purging: an install racing this call
  // either reads the new epoch (and drops itself as stale) or installed
  // under the old epoch before the purge (and is purged below). Either
  // way no stale entry survives into the new epoch.
  epoch_.store(epoch, std::memory_order_release);
  for (VertexId v : touched) {
    Shard& shard = ShardFor(v);
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.index.find(v);
    if (it == shard.index.end()) continue;
    const Entry& victim = *it->second;
    if (victim.prefetched) {
      ++shard.prefetch_wasted;
      metrics_.prefetch_wasted->Add(1);
    }
    ++shard.epoch_invalidations;
    metrics_.epoch_invalidations->Add(1);
    shard.bytes -= victim.bytes;
    metrics_.resident_bytes->Add(-static_cast<double>(victim.bytes));
    if (governor_ != nullptr) {
      governor_->AddCacheResident(-static_cast<int64_t>(victim.bytes));
    }
    shard.lru.erase(it->second);
    shard.index.erase(it);
  }
}

void DbCache::WaitForPrefetches() {
  std::unique_lock<std::mutex> lock(prefetch_mu_);
  prefetch_idle_cv_.wait(lock, [this] {
    return active_jobs_ == 0 && prefetch_queue_.empty();
  });
}

std::shared_ptr<const VertexSet> DbCache::GetAdjacency(VertexId v,
                                                       bool* was_hit) {
  Reply reply = Get(v);
  if (was_hit != nullptr) *was_hit = reply.outcome == Outcome::kHit;
  return reply.value.Materialize();
}

DbCacheStats DbCache::stats() const {
  DbCacheStats total;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    total.hits += shard->hits;
    total.misses += shard->misses;
    total.coalesced += shard->coalesced;
    total.prefetches_issued += shard->prefetches_issued;
    total.prefetch_hits += shard->prefetch_hits;
    total.prefetch_claimed += shard->prefetch_claimed;
    total.prefetch_wasted += shard->prefetch_wasted;
    total.epoch_invalidations += shard->epoch_invalidations;
  }
  total.prefetch_round_trips =
      prefetch_round_trips_.load(std::memory_order_relaxed);
  total.prefetch_bytes = prefetch_bytes_.load(std::memory_order_relaxed);
  return total;
}

size_t DbCache::SizeBytes() const {
  size_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    total += shard->bytes;
  }
  return total;
}

}  // namespace benu
