#ifndef BENU_STORAGE_DB_CACHE_H_
#define BENU_STORAGE_DB_CACHE_H_

#include <condition_variable>
#include <cstddef>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "common/types.h"
#include "graph/vertex_set.h"
#include "storage/kv_store.h"

namespace benu {

/// Hit/miss statistics of a database cache. Every lookup is counted in
/// exactly one bucket: `hits` (served from cache), `misses` (this lookup
/// issued the store query) or `coalesced` (this lookup waited on another
/// thread's in-flight query for the same key — no store traffic).
struct DbCacheStats {
  Count hits = 0;
  Count misses = 0;
  Count coalesced = 0;

  double HitRate() const {
    const Count total = hits + misses + coalesced;
    return total == 0 ? 0.0 : static_cast<double>(hits) / total;
  }
};

/// The local in-memory database cache of §V-A: one per worker machine,
/// shared by all of the worker's threads, storing adjacency sets fetched
/// from the distributed database. LRU replacement captures the intra-task
/// locality of the backtracking search; sharing across threads captures
/// the inter-task locality of overlapping neighborhoods. Capacity is in
/// bytes of cached adjacency payload, so experiments can size it relative
/// to the data graph (Exp-3).
///
/// Sharded LRU: the key space is split over independent shards, each with
/// its own mutex, list and map, so concurrent worker threads do not
/// serialize on one lock.
///
/// Single-flight misses: concurrent lookups of the same absent key are
/// coalesced — exactly one thread (the primary) queries the distributed
/// store while the others block on the in-flight entry and share its
/// reply, so N racing threads cost one remote query instead of N.
class DbCache {
 public:
  /// How one Get was served.
  enum class Outcome {
    kHit,        ///< present in the cache
    kMiss,       ///< this call queried the distributed store
    kCoalesced,  ///< waited on another thread's in-flight store query
  };

  struct Reply {
    std::shared_ptr<const VertexSet> value;
    Outcome outcome = Outcome::kMiss;
  };

  /// `capacity_bytes` == 0 disables caching (every get is a miss that
  /// goes to the store and is not retained; concurrent misses still
  /// coalesce).
  DbCache(const DistributedKvStore* store, size_t capacity_bytes,
          size_t num_shards = 8);

  DbCache(const DbCache&) = delete;
  DbCache& operator=(const DbCache&) = delete;

  /// Returns Γ(v) and how the lookup was served: from cache when present,
  /// otherwise querying the distributed store (or piggybacking on a
  /// concurrent in-flight query) and inserting the reply.
  Reply Get(VertexId v);

  /// Convenience wrapper around Get. `was_hit`, if non-null, reports
  /// whether this call was served from cache (coalesced waits count as
  /// not-hit: the caller did pay a remote round trip, just a shared one).
  std::shared_ptr<const VertexSet> GetAdjacency(VertexId v,
                                                bool* was_hit = nullptr);

  /// Aggregated statistics over all shards.
  DbCacheStats stats() const;

  /// Current cached payload bytes over all shards.
  size_t SizeBytes() const;

  size_t capacity_bytes() const { return capacity_bytes_; }

 private:
  struct Entry {
    VertexId key;
    std::shared_ptr<const VertexSet> value;
    size_t bytes;
  };
  /// One in-flight store query; waiters block on `ready_cv`.
  struct Flight {
    std::mutex mu;
    std::condition_variable ready_cv;
    std::shared_ptr<const VertexSet> value;
    bool ready = false;
  };
  struct Shard {
    mutable std::mutex mu;
    std::list<Entry> lru;  // front = most recent
    std::unordered_map<VertexId, std::list<Entry>::iterator> index;
    std::unordered_map<VertexId, std::shared_ptr<Flight>> inflight;
    size_t bytes = 0;
    Count hits = 0;
    Count misses = 0;
    Count coalesced = 0;
  };

  Shard& ShardFor(VertexId v) { return *shards_[v % shards_.size()]; }
  static size_t EntryBytes(const VertexSet& set) {
    return set.size() * sizeof(VertexId) + kEntryOverheadBytes;
  }

  static constexpr size_t kEntryOverheadBytes = 32;

  const DistributedKvStore* store_;
  size_t capacity_bytes_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace benu

#endif  // BENU_STORAGE_DB_CACHE_H_
