#ifndef BENU_STORAGE_DB_CACHE_H_
#define BENU_STORAGE_DB_CACHE_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <list>
#include <memory>
#include <mutex>
#include <span>
#include <unordered_map>
#include <vector>

#include "common/types.h"
#include "graph/vertex_set.h"
#include "storage/kv_store.h"

namespace benu {

class MemoryGovernor;
class ThreadPool;

namespace metrics {
class Counter;
class Gauge;
class Histogram;
}  // namespace metrics

/// Hit/miss statistics of a database cache. Every lookup is counted in
/// exactly one bucket: `hits` (served from cache), `misses` (this lookup
/// issued a store query of its own) or `coalesced` (this lookup waited on
/// another thread's in-flight query for the same key — no store traffic).
///
/// Hit-rate convention (the one convention used everywhere — reports,
/// benches and tests): a lookup counts as a *hit* iff it was served from
/// the cache without waiting on any store round trip. Coalesced waits are
/// therefore non-hits — the caller did wait out a remote round trip, just
/// a shared one — and sit in the denominator:
///
///   HitRate()   = hits / Lookups()
///   StallRate() = (misses + coalesced) / Lookups() = 1 - HitRate()
///
/// `misses` alone is the store-query rate: without prefetching it equals
/// the number of store queries this cache issued. With the prefetch
/// pipeline, background fetches add `prefetches_issued - prefetch_claimed`
/// further store queries that belong to no lookup bucket (a converted
/// prefetch surfaces later as a plain hit).
struct DbCacheStats {
  Count hits = 0;
  Count misses = 0;
  Count coalesced = 0;

  /// Keys enqueued by PrefetchAsync (not already cached or in flight).
  Count prefetches_issued = 0;
  /// Hits served by a prefetched entry on its first touch: the fetch
  /// latency was fully hidden from the requesting thread.
  Count prefetch_hits = 0;
  /// Prefetched keys a Get claimed before any fetcher picked them up;
  /// the Get fetched synchronously (counted in `misses`), so the
  /// prefetch saved nothing.
  Count prefetch_claimed = 0;
  /// Prefetched entries evicted — or never retained (zero/overflowed
  /// capacity, or fetched at a superseded epoch) — without serving a
  /// single hit: wasted fetch work.
  Count prefetch_wasted = 0;
  /// Entries evicted by AdvanceEpoch's precise invalidation (their
  /// vertex was touched by an epoch's delta).
  Count epoch_invalidations = 0;
  /// Round trips of the batched background fetches (one per partition
  /// per batch) and their payload bytes; the cluster's overlap model
  /// charges these against compute instead of task stall time.
  Count prefetch_round_trips = 0;
  Count prefetch_bytes = 0;

  /// Total lookups: every Get lands in exactly one of the three buckets.
  Count Lookups() const { return hits + misses + coalesced; }

  double HitRate() const {
    const Count total = Lookups();
    return total == 0 ? 0.0 : static_cast<double>(hits) / total;
  }

  double StallRate() const {
    const Count total = Lookups();
    return total == 0 ? 0.0
                      : static_cast<double>(misses + coalesced) / total;
  }
};

/// The local in-memory database cache of §V-A: one per worker machine,
/// shared by all of the worker's threads, storing adjacency sets fetched
/// from the distributed database. LRU replacement captures the intra-task
/// locality of the backtracking search; sharing across threads captures
/// the inter-task locality of overlapping neighborhoods. Capacity is in
/// bytes of cached adjacency payload, so experiments can size it relative
/// to the data graph (Exp-3).
///
/// Charge basis: entries are stored exactly as the transport delivered
/// them — still delta+varint encoded on compressed backends — and each
/// entry is charged its *resident* bytes (AdjacencyPayload::
/// resident_bytes, i.e. encoded size when encoded) plus a fixed
/// per-entry overhead. A compressed transport therefore fits ~the
/// compression ratio more adjacency sets into the same capacity. The
/// current total is exported as the `db_cache.resident_bytes` gauge.
///
/// Sharded LRU: the key space is split over independent shards, each with
/// its own mutex, list and map, so concurrent worker threads do not
/// serialize on one lock.
///
/// Single-flight misses: concurrent lookups of the same absent key are
/// coalesced — exactly one thread (the primary) queries the distributed
/// store while the others block on the in-flight entry and share its
/// reply, so N racing threads cost one remote query instead of N.
///
/// Prefetch pipeline (§2d of DESIGN.md): PrefetchAsync enqueues absent
/// keys as *queued* flights into a pending queue drained by fetcher jobs
/// on `fetch_pool` through the store's batched multi-get — one round trip
/// per partition per batch. A Get racing a queued flight claims it (CAS
/// on the flight state) and fetches synchronously, so prefetching can
/// never deadlock even if no fetcher ever runs; a Get racing an already
/// fetching flight coalesces as usual. Prefetch-inserted entries are
/// tagged so stats can tell converted hits from wasted fetches.
class DbCache {
 public:
  /// How one Get was served.
  enum class Outcome {
    kHit,        ///< present in the cache
    kMiss,       ///< this call queried the distributed store
    kCoalesced,  ///< waited on another thread's in-flight store query
  };

  struct Reply {
    /// As delivered by the transport: decoded (raw backends) or still
    /// delta+varint encoded (compressed backends). The executor's fused
    /// kernels consume the encoded form directly; call
    /// value.Materialize() for a decoded set.
    AdjacencyPayload value;
    Outcome outcome = Outcome::kMiss;
  };

  /// `capacity_bytes` == 0 disables caching (every get is a miss that
  /// goes to the store and is not retained; concurrent misses still
  /// coalesce). `fetch_pool`, when non-null, services PrefetchAsync in
  /// the background and must outlive the cache; when null, PrefetchAsync
  /// drains synchronously before returning (the forced-sync mode —
  /// batched, deterministic, but no overlap). `prefetch_batch_size` caps
  /// the keys per batched multi-get a fetcher drains at once; with a
  /// `governor` it is the base of the governor's headroom-scaled dynamic
  /// batch size, and every insert/evict reports its resident-byte delta
  /// to the governor so cache growth counts against the memory budget.
  DbCache(const DistributedKvStore* store, size_t capacity_bytes,
          size_t num_shards = 8, ThreadPool* fetch_pool = nullptr,
          size_t prefetch_batch_size = 16,
          MemoryGovernor* governor = nullptr);

  /// Waits for in-flight fetcher jobs, then drains any still-pending
  /// prefetch keys inline so every flight is published before teardown.
  ~DbCache();

  DbCache(const DbCache&) = delete;
  DbCache& operator=(const DbCache&) = delete;

  /// Returns Γ(v) and how the lookup was served: from cache when present,
  /// otherwise querying the distributed store (or piggybacking on a
  /// concurrent in-flight query) and inserting the reply.
  Reply Get(VertexId v);

  /// Convenience wrapper around Get that materializes the payload.
  /// `was_hit`, if non-null, reports whether this call was served from
  /// cache (coalesced waits count as not-hit — the documented
  /// DbCacheStats convention: the caller did wait out a remote round
  /// trip, just a shared one).
  std::shared_ptr<const VertexSet> GetAdjacency(VertexId v,
                                                bool* was_hit = nullptr);

  /// Non-blocking: enqueues every key that is neither cached nor already
  /// in flight for background fetching and returns immediately (with a
  /// null fetch pool, drains the queue inline before returning). Safe to
  /// call concurrently with Get on the same keys — single-flight holds
  /// across both paths, so the store sees at most one query per distinct
  /// key while it stays cached.
  void PrefetchAsync(const VertexId* keys, size_t count);

  /// Blocks until no prefetch work is pending or running. Used before
  /// reading stats for accounting and by tests; NOT needed for
  /// correctness of Get (which claims or coalesces as appropriate).
  void WaitForPrefetches();

  /// Moves the cache to `epoch`, precisely invalidating the entries of
  /// `touched` vertices (the EpochDelta's endpoint set) — untouched
  /// entries stay hot. In-flight fetches started under the old epoch are
  /// not installed when they land (their flight's epoch tag mismatches;
  /// the fetch counts as prefetch_wasted for prefetch flights), and
  /// coalesced waiters woken by a stale flight retry under the new
  /// epoch, so a prefetch racing an epoch advance can never publish a
  /// stale adjacency set into the new snapshot.
  void AdvanceEpoch(uint64_t epoch, std::span<const VertexId> touched);

  /// The epoch this cache currently serves.
  uint64_t epoch() const { return epoch_.load(std::memory_order_acquire); }

  /// Aggregated statistics over all shards.
  DbCacheStats stats() const;

  /// Current cached resident bytes over all shards (incl. the per-entry
  /// overhead) — what capacity is charged against, also exported as the
  /// `db_cache.resident_bytes` gauge.
  size_t SizeBytes() const;

  size_t capacity_bytes() const { return capacity_bytes_; }

 private:
  struct Entry {
    VertexId key;
    AdjacencyPayload value;
    /// resident_bytes() + kEntryOverheadBytes, the capacity charge.
    size_t bytes;
    /// Inserted by the prefetch pipeline and not yet hit; cleared on the
    /// first hit (counted as prefetch_hits), counted as prefetch_wasted
    /// if evicted or dropped while still set.
    bool prefetched = false;
  };
  /// One in-flight store query; waiters block on `ready_cv`. `state`
  /// arbitrates who performs the fetch: prefetch flights start kQueued
  /// and are claimed (kQueued -> kFetching, exactly once) either by a
  /// fetcher job or by a racing Get; primary-miss flights start
  /// kFetching.
  struct Flight {
    std::mutex mu;
    std::condition_variable ready_cv;
    AdjacencyPayload value;
    bool ready = false;
    std::atomic<int> state{kFlightFetching};
    /// Cache epoch the flight was created (or refetched) under; installs
    /// whose tag no longer matches the cache epoch are dropped. Atomic:
    /// waiters re-check it lock-free after wake.
    std::atomic<uint64_t> epoch{0};
  };
  struct Shard {
    mutable std::mutex mu;
    std::list<Entry> lru;  // front = most recent
    std::unordered_map<VertexId, std::list<Entry>::iterator> index;
    std::unordered_map<VertexId, std::shared_ptr<Flight>> inflight;
    size_t bytes = 0;
    Count hits = 0;
    Count misses = 0;
    Count coalesced = 0;
    Count prefetches_issued = 0;
    Count prefetch_hits = 0;
    Count prefetch_claimed = 0;
    Count prefetch_wasted = 0;
    Count epoch_invalidations = 0;
  };

  static constexpr int kFlightQueued = 0;
  static constexpr int kFlightFetching = 1;

  Shard& ShardFor(VertexId v) { return *shards_[v % shards_.size()]; }
  static size_t EntryBytes(const AdjacencyPayload& value) {
    return value.resident_bytes() + kEntryOverheadBytes;
  }

  /// Inserts the reply into the LRU (respecting capacity), unlinks the
  /// flight and publishes the value to waiters.
  void InsertAndPublish(VertexId v, AdjacencyPayload value,
                        const std::shared_ptr<Flight>& flight,
                        bool prefetched);
  /// Drains the pending prefetch queue in batches until it is empty.
  void DrainQueue();
  /// Fetches one batch of queued keys via the store's multi-get and
  /// publishes the replies; keys whose flight a Get already claimed are
  /// skipped.
  void FetchBatch(const std::vector<VertexId>& batch);

  static constexpr size_t kEntryOverheadBytes = 32;

  const DistributedKvStore* store_;
  size_t capacity_bytes_;
  /// Epoch the cache serves; bumped by AdvanceEpoch before the touched
  /// entries are purged, so racing installs see the new epoch first.
  std::atomic<uint64_t> epoch_{0};
  std::vector<std::unique_ptr<Shard>> shards_;

  // Registry mirrors of the per-shard stats (process-wide totals across
  // all caches, `db_cache.*` in docs/metrics.md), resolved once at
  // construction; bumped with relaxed sharded adds next to the legacy
  // counters. The span histograms record fetch/wait latencies and are
  // only written when tracing is enabled (metrics::TracingEnabled).
  struct RegistryMirror {
    metrics::Counter* hits = nullptr;
    metrics::Counter* misses = nullptr;
    metrics::Counter* coalesced = nullptr;
    metrics::Counter* prefetches_issued = nullptr;
    metrics::Counter* prefetch_hits = nullptr;
    metrics::Counter* prefetch_claimed = nullptr;
    metrics::Counter* prefetch_wasted = nullptr;
    metrics::Counter* epoch_invalidations = nullptr;
    metrics::Counter* prefetch_round_trips = nullptr;
    metrics::Counter* prefetch_bytes = nullptr;
    metrics::Gauge* resident_bytes = nullptr;
    metrics::Histogram* sync_fetch_us = nullptr;
    metrics::Histogram* coalesced_wait_us = nullptr;
    metrics::Histogram* batch_fetch_us = nullptr;
  };
  RegistryMirror metrics_;

  ThreadPool* fetch_pool_;
  size_t prefetch_batch_size_;
  /// Optional memory governor (hybrid execution): receives resident-byte
  /// deltas and supplies the dynamic multi-get batch size.
  MemoryGovernor* governor_;
  std::mutex prefetch_mu_;
  std::condition_variable prefetch_idle_cv_;
  std::deque<VertexId> prefetch_queue_;
  size_t active_jobs_ = 0;  ///< fetcher jobs submitted or running
  bool shutting_down_ = false;
  std::atomic<Count> prefetch_round_trips_{0};
  std::atomic<Count> prefetch_bytes_{0};
};

}  // namespace benu

#endif  // BENU_STORAGE_DB_CACHE_H_
