#ifndef BENU_STORAGE_TRIANGLE_CACHE_H_
#define BENU_STORAGE_TRIANGLE_CACHE_H_

#include <cstddef>
#include <memory>
#include <unordered_map>

#include "common/types.h"
#include "graph/vertex_set.h"

namespace benu {

namespace metrics {
class Counter;
}  // namespace metrics

/// Hit/miss statistics of a triangle cache. Unit: TRC lookups. Every
/// Lookup lands in exactly one bucket; Insert is not counted (a miss
/// already was). Not atomic: each cache (and its stats) is owned by one
/// working thread; the process-wide totals are flushed into the registry
/// (`triangle_cache.*`) when the cache is destroyed.
struct TriangleCacheStats {
  Count hits = 0;    ///< lookups served from the cache
  Count misses = 0;  ///< lookups that will recompute A_i ∩ A_j

  double HitRate() const {
    const Count total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits) / total;
  }
};

/// The per-working-thread triangle cache of Optimization 3 (§IV-B). A TRC
/// instruction `X := TCache(f_i, f_j, A_i, A_j)` — where f_i is the start
/// vertex of the local search task and f_j one of its data-graph
/// neighbors — first probes the cache with key [f_i, f_j]; on a miss it
/// computes A_i ∩ A_j (the triangles through the edge) and retains it.
///
/// Entries are only reusable while the task's start vertex is unchanged,
/// so the executor calls `BeginTask(start)` which flushes on a new start
/// vertex; subtasks produced by task splitting share the start vertex and
/// keep the warm cache. Not thread-safe by design: each working thread
/// owns one instance (as in Fig. 2).
class TriangleCache {
 public:
  /// `max_entries` bounds memory; 0 disables caching.
  explicit TriangleCache(size_t max_entries = 1 << 16);

  /// Flushes the accumulated hit/miss totals into the process-wide
  /// registry (`triangle_cache.hits` / `.misses`): per-lookup registry
  /// traffic would put two shared-memory adds on the hottest executor
  /// path, so the per-thread totals are published once, at teardown.
  ~TriangleCache();

  /// Prepares for a task with the given start vertex; flushes stale
  /// entries when the start vertex changed.
  void BeginTask(VertexId start);

  /// Looks up the triangle set for neighbor key `f_j` (the start vertex is
  /// implicit). Returns nullptr on miss.
  std::shared_ptr<const VertexSet> Lookup(VertexId neighbor);

  /// Inserts the computed set for `f_j` (no-op when full or disabled).
  void Insert(VertexId neighbor, std::shared_ptr<const VertexSet> set);

  const TriangleCacheStats& stats() const { return stats_; }
  size_t size() const { return entries_.size(); }

 private:
  size_t max_entries_;
  VertexId current_start_ = kInvalidVertex;
  std::unordered_map<VertexId, std::shared_ptr<const VertexSet>> entries_;
  TriangleCacheStats stats_;
};

}  // namespace benu

#endif  // BENU_STORAGE_TRIANGLE_CACHE_H_
