#ifndef BENU_STORAGE_KV_STORE_H_
#define BENU_STORAGE_KV_STORE_H_

#include <atomic>
#include <cstddef>
#include <memory>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "graph/graph.h"
#include "graph/vertex_set.h"

namespace benu {

/// Communication statistics of the distributed database. Counters are
/// atomic because worker threads query concurrently.
struct KvStoreStats {
  std::atomic<Count> queries{0};
  std::atomic<Count> bytes_fetched{0};

  void Reset() {
    queries.store(0);
    bytes_fetched.store(0);
  }
};

/// Simulation of the distributed key-value database of the BENU
/// architecture (Fig. 2; HBase in the paper). Stores the adjacency set of
/// every data vertex, hash-partitioned over `num_partitions` virtual
/// storage nodes. Every `GetAdjacency` models one remote query: it bumps
/// the query counter and accounts the payload bytes. The cluster simulator
/// converts these counters into virtual network time.
///
/// Thread-safe: the store is immutable after construction; stats are
/// atomic.
class DistributedKvStore {
 public:
  /// Loads the data graph into the store (Algorithm 2 line 1, the
  /// pattern-independent preprocessing step).
  DistributedKvStore(const Graph& graph, size_t num_partitions);

  /// Fetches Γ(v). The returned set is shared with the store and
  /// immutable. Also returns, via the stats, the simulated communication.
  std::shared_ptr<const VertexSet> GetAdjacency(VertexId v) const;

  /// Partition (virtual storage node) holding vertex v.
  size_t PartitionOf(VertexId v) const { return v % num_partitions_; }

  size_t num_partitions() const { return num_partitions_; }
  size_t num_vertices() const { return adjacency_.size(); }

  /// Payload bytes of one adjacency-set reply (entries × 4 plus a fixed
  /// per-reply framing overhead, mirroring a KV get of a serialized set).
  static size_t ReplyBytes(size_t set_size) {
    return set_size * sizeof(VertexId) + kReplyOverheadBytes;
  }

  const KvStoreStats& stats() const { return stats_; }
  KvStoreStats& mutable_stats() { return stats_; }

  static constexpr size_t kReplyOverheadBytes = 16;

 private:
  std::vector<std::shared_ptr<const VertexSet>> adjacency_;
  size_t num_partitions_;
  mutable KvStoreStats stats_;
};

}  // namespace benu

#endif  // BENU_STORAGE_KV_STORE_H_
