#ifndef BENU_STORAGE_KV_STORE_H_
#define BENU_STORAGE_KV_STORE_H_

#include <atomic>
#include <cstddef>
#include <memory>
#include <span>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "graph/graph.h"
#include "graph/vertex_set.h"
#include "storage/transport.h"

namespace benu {

namespace metrics {
class Counter;
}  // namespace metrics

/// Communication statistics of the distributed database. Counters are
/// atomic because worker threads query concurrently; every field is also
/// mirrored into the process-wide MetricsRegistry as `kv_store.*` (see
/// docs/metrics.md), where multiple stores accumulate into one total.
///
/// `queries` counts key-level gets (the paper's #DBQ metric): a batched
/// multi-get of k keys bumps it by k. `round_trips` counts network round
/// trips: one per single-key get, one per *partition touched* per batched
/// multi-get — so batching reduces round trips while the query and byte
/// accounting stay identical.
struct KvStoreStats {
  /// Key-level gets; unit: lookups. A k-key multi-get adds k.
  std::atomic<Count> queries{0};
  /// Payload bytes of all replies (ReplyBytes per key; batching does not
  /// change byte accounting).
  std::atomic<Count> bytes_fetched{0};
  /// Network round trips: one per single-key get, one per partition
  /// touched per batched multi-get.
  std::atomic<Count> round_trips{0};
  std::atomic<Count> batch_gets{0};  ///< GetAdjacencyBatch calls

  void Reset() {
    queries.store(0);
    bytes_fetched.store(0);
    round_trips.store(0);
    batch_gets.store(0);
  }
};

/// Client side of the distributed key-value database of the BENU
/// architecture (Fig. 2; HBase in the paper). Stores the adjacency set of
/// every data vertex, hash-partitioned over `num_partitions` virtual
/// storage nodes. How a get actually reaches a partition is delegated to
/// a Transport (storage/transport.h): the in-process simulated backend
/// reproduces the seed simulator, the loopback backend exercises the wire
/// protocol, and the TCP backend talks to real KV-server processes.
/// Either way the client-side accounting — queries, round trips, payload
/// bytes — is identical, so the cluster's virtual-time model is
/// backend-independent.
///
/// Thread-safe: transports are thread-safe; stats are atomic.
class DistributedKvStore {
 public:
  /// Loads the data graph into an in-process simulated transport
  /// (Algorithm 2 line 1, the pattern-independent preprocessing step).
  /// This convenience path serves *raw* payloads, so its byte accounting
  /// is exactly ReplyBytes per key; compressed stores are built by
  /// wrapping an explicit MakeSimulatedTransport(graph, n, compress).
  DistributedKvStore(const Graph& graph, size_t num_partitions);

  /// Wraps an existing transport (loopback, TCP, or a custom backend).
  explicit DistributedKvStore(std::shared_ptr<Transport> transport);

  /// Virtual so VersionedAdjacencyStore (storage/versioned_store.h) can
  /// layer an epoch-addressed delta overlay over the same transports.
  virtual ~DistributedKvStore() = default;

  /// Fetches Γ(v) as the transport delivered it: decoded (raw backends,
  /// shared with the store in-process) or still delta+varint encoded
  /// (compressed backends). Also returns, via the stats, the
  /// communication cost. Call .Materialize() for the decoded set.
  virtual AdjacencyPayload GetAdjacency(VertexId v) const;

  /// Reply of one batched multi-get.
  struct BatchReply {
    /// Γ(keys[i]) in key order; payload values are shared and immutable.
    std::vector<AdjacencyPayload> values;
    /// Distinct partitions (virtual storage nodes) touched: the batch
    /// costs one round-trip latency per partition, not per key.
    size_t round_trips = 0;
    /// Total payload bytes of the replies (identical to fetching each
    /// key individually — batching amortizes latency, not bytes).
    size_t bytes = 0;
  };

  /// Fetches Γ(v) for every key in one multi-get. Keys are grouped by
  /// partition server-side, so the latency cost is one round trip per
  /// partition per batch while query/byte accounting matches
  /// `keys.size()` individual gets. This is what makes batched prefetching
  /// cheaper than issuing the same keys one by one.
  virtual BatchReply GetAdjacencyBatch(std::span<const VertexId> keys) const;

  /// Partition (virtual storage node) holding vertex v.
  size_t PartitionOf(VertexId v) const { return v % num_partitions_; }

  size_t num_partitions() const { return num_partitions_; }
  size_t num_vertices() const { return num_vertices_; }

  /// Payload bytes of one adjacency-set reply: entries × 4 plus the wire
  /// protocol's fixed frame header (common/wire.h) — the formula every
  /// backend, simulated or real, charges per reply.
  static size_t ReplyBytes(size_t set_size) {
    return set_size * sizeof(VertexId) + kReplyOverheadBytes;
  }

  const KvStoreStats& stats() const { return stats_; }
  KvStoreStats& mutable_stats() { return stats_; }

  /// The backend beneath this client.
  const Transport& transport() const { return *transport_; }

  static constexpr size_t kReplyOverheadBytes = 16;

 private:
  void InitMetrics();

  std::shared_ptr<Transport> transport_;
  size_t num_partitions_;
  size_t num_vertices_;
  mutable KvStoreStats stats_;
  // Registry mirrors of stats_, resolved once at construction (shared by
  // every store instance in the process).
  metrics::Counter* queries_metric_ = nullptr;
  metrics::Counter* round_trips_metric_ = nullptr;
  metrics::Counter* bytes_metric_ = nullptr;
  metrics::Counter* batch_gets_metric_ = nullptr;
};

}  // namespace benu

#endif  // BENU_STORAGE_KV_STORE_H_
