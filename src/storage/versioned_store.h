#ifndef BENU_STORAGE_VERSIONED_STORE_H_
#define BENU_STORAGE_VERSIONED_STORE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <shared_mutex>
#include <span>
#include <unordered_map>
#include <vector>

#include "common/types.h"
#include "storage/kv_store.h"
#include "storage/transport.h"

namespace benu {

namespace metrics {
class Counter;
class Gauge;
}  // namespace metrics

/// The net effect of one epoch's edge-mutation batch, canonicalized
/// against the snapshot it applies to: inserts of already-present edges
/// and deletes of absent edges are dropped, and an insert+delete pair of
/// the same edge inside one batch cancels. What remains is exactly the
/// Δ⁺ / Δ⁻ the S-BENU incremental plans enumerate from
/// (plan/incremental.h), and `touched` is exactly the invalidation set
/// DbCache::AdvanceEpoch needs.
struct EpochDelta {
  /// The epoch this delta produces when applied (previous epoch + 1).
  uint64_t epoch = 0;
  /// Net-inserted edges, normalized u < v, sorted. Δ⁺.
  std::vector<EdgeDelta> inserted;
  /// Net-removed edges, normalized u < v, sorted. Δ⁻.
  std::vector<EdgeDelta> removed;
  /// Sorted distinct endpoints of inserted ∪ removed — the vertices
  /// whose adjacency value changes at this epoch.
  std::vector<VertexId> touched;
  /// Raw ops the batch contained before canonicalization.
  size_t raw_ops = 0;

  bool empty() const { return inserted.empty() && removed.empty(); }
};

/// A DistributedKvStore that serves *snapshot* adjacency at an epoch:
/// immutable base payloads fetched through any Transport backend
/// (sim/loopback/TCP — servers always store the epoch-0 base graph)
/// composed with an in-memory overlay of the edges inserted/deleted
/// since. Reads of untouched vertices pass the base payload through
/// unchanged — still delta+varint encoded on compressed backends, so the
/// executor's fused kernels keep working on the unchanged 99%+ of the
/// graph; only touched vertices pay a materialize-and-patch.
///
/// Epoch protocol: Canonicalize(ops) → enumerate retractions against the
/// current snapshot → Apply(delta) → enumerate additions against the new
/// snapshot (distributed/dynamic_runner.cc drives this). Apply also
/// replicates the delta to delta-capable KV servers (kApplyDelta /
/// kEpochAdvance) so their attested (graph_hash, epoch) identity tracks
/// the client's — pre-delta peers are skipped (capability downgrade)
/// without affecting results.
///
/// Thread-safe: reads take a shared lock; Apply takes an exclusive lock.
/// Prefetch-pool threads may race Apply, which is why DbCache tags
/// flights with the epoch (storage/db_cache.h).
class VersionedAdjacencyStore : public DistributedKvStore {
 public:
  explicit VersionedAdjacencyStore(std::shared_ptr<Transport> transport);

  /// Current epoch (0 = pristine base graph).
  uint64_t epoch() const { return epoch_.load(std::memory_order_acquire); }

  /// Net-canonicalizes `ops` (applied in order) against the current
  /// snapshot. Pure — the snapshot is unchanged; self-loops are dropped.
  /// The result is only valid for Apply while the store stays at this
  /// epoch.
  EpochDelta Canonicalize(std::span<const EdgeDelta> ops) const;

  /// Applies a canonicalized delta, advances the epoch, and replicates
  /// the delta to the transport's delta-capable servers. CHECK-fails if
  /// `delta.epoch` is not exactly epoch()+1 (stale canonicalization).
  /// Returns the new epoch.
  uint64_t Apply(const EpochDelta& delta);

  /// Snapshot membership of the undirected edge {u, v}.
  bool EdgeExists(VertexId u, VertexId v) const;

  /// Vertices currently carrying an overlay (diagnostic).
  size_t overlay_vertices() const;

  /// Snapshot reads: base payload composed with the overlay for touched
  /// vertices, pass-through otherwise.
  AdjacencyPayload GetAdjacency(VertexId v) const override;
  BatchReply GetAdjacencyBatch(std::span<const VertexId> keys) const override;

 private:
  /// Per-vertex overlay relative to the base payload; both sorted.
  /// Invariant: added ∩ base = ∅, removed ⊆ base, added ∩ removed = ∅;
  /// entries with both vectors empty are erased from the map.
  struct Overlay {
    std::vector<VertexId> added;
    std::vector<VertexId> removed;
  };

  /// Merged decoded payload: (base ∖ removed) ∪ added. Charges the base
  /// payload's wire accounting (the patch itself is local memory).
  AdjacencyPayload PatchPayload(const Overlay& overlay,
                                const AdjacencyPayload& base) const;

  /// Presence check under a held shared lock; `base_cache` memoizes
  /// materialized base sets across one canonicalization pass.
  bool EdgeExistsLocked(
      VertexId u, VertexId v,
      std::unordered_map<VertexId, std::shared_ptr<const VertexSet>>*
          base_cache) const;

  /// Mutators under the exclusive lock; keep the overlay symmetric.
  void InsertHalfEdgeLocked(VertexId u, VertexId v);
  void RemoveHalfEdgeLocked(VertexId u, VertexId v);

  std::shared_ptr<Transport> transport_;
  mutable std::shared_mutex mu_;
  std::unordered_map<VertexId, Overlay> overlay_;
  std::atomic<uint64_t> epoch_{0};

  metrics::Counter* advances_metric_ = nullptr;
  metrics::Counter* ops_staged_metric_ = nullptr;
  metrics::Counter* ops_noop_metric_ = nullptr;
  metrics::Counter* edges_inserted_metric_ = nullptr;
  metrics::Counter* edges_removed_metric_ = nullptr;
  metrics::Counter* patched_reads_metric_ = nullptr;
  metrics::Counter* downgraded_pushes_metric_ = nullptr;
  metrics::Gauge* epoch_gauge_ = nullptr;
  metrics::Gauge* overlay_gauge_ = nullptr;
};

}  // namespace benu

#endif  // BENU_STORAGE_VERSIONED_STORE_H_
