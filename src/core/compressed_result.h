#ifndef BENU_CORE_COMPRESSED_RESULT_H_
#define BENU_CORE_COMPRESSED_RESULT_H_

#include <utility>
#include <vector>

#include "common/types.h"
#include "graph/vertex_set.h"
#include "plan/instruction.h"

namespace benu {

/// Counts the injective assignments (x_0, ..., x_{k-1}) with x_i ∈ sets[i],
/// all values pairwise distinct, subject to `order_constraints`: a pair
/// (i, j) requires x_i < x_j.
///
/// This is the expansion count of one VCBC compressed code: the non-core
/// pattern vertices pick values from their conditional image sets, and the
/// injectivity/order constraints *between non-core vertices* — which VCBC
/// does not encode — are enforced here. Fast paths:
///   - no constraints: inclusion–exclusion over the set-partition lattice
///     (Σ_partitions ∏_blocks (−1)^{|B|−1}(|B|−1)! |∩_{i∈B} sets_i|);
///   - k == 2 with one constraint: linear merge counting ordered pairs;
///   - identical sets forming a total order chain: C(|S|, k);
///   - otherwise: recursive enumeration (exact, used by tests/small k).
Count CountInjectiveAssignments(
    const std::vector<VertexSetView>& sets,
    const std::vector<std::pair<int, int>>& order_constraints);

/// Materializes every injective, order-satisfying assignment. Exponential;
/// intended for verification and for consumers that need full matches from
/// compressed codes.
std::vector<std::vector<VertexId>> EnumerateInjectiveAssignments(
    const std::vector<VertexSetView>& sets,
    const std::vector<std::pair<int, int>>& order_constraints);

/// Precomputed expansion context for a compressed plan: which pattern
/// vertices are non-core and which order constraints hold between pairs of
/// non-core vertices.
class VcbcExpander {
 public:
  /// `plan` must be compressed (plan.compressed == true).
  explicit VcbcExpander(const ExecutionPlan& plan);

  /// Pattern vertices not in the core, in matching order.
  const std::vector<VertexId>& non_core() const { return non_core_; }

  /// Expansion count of one code given the image sets of the non-core
  /// vertices, ordered as `non_core()`.
  Count CountExpansions(const std::vector<VertexSetView>& image_sets) const;

  /// Expands one code into full matches. `core_f` maps every pattern
  /// vertex to its helve value (non-core entries ignored); the result
  /// vectors are complete matches indexed by pattern vertex.
  std::vector<std::vector<VertexId>> Expand(
      const std::vector<VertexId>& core_f,
      const std::vector<VertexSetView>& image_sets) const;

 private:
  std::vector<VertexId> non_core_;
  // Pairs of positions into non_core_: (i, j) means value_i < value_j.
  std::vector<std::pair<int, int>> constraints_;
};

}  // namespace benu

#endif  // BENU_CORE_COMPRESSED_RESULT_H_
