#ifndef BENU_CORE_REGION_BUFFER_H_
#define BENU_CORE_REGION_BUFFER_H_

#include <cstddef>
#include <memory>
#include <vector>

#include "common/types.h"

namespace benu {

class MemoryGovernor;

/// Region (bump-pointer) allocator for frontier batches: the hybrid ENU
/// path materializes candidate slices — and, in full-BFS mode, whole
/// partial-embedding rows — into one of these per executor. Allocation is
/// a pointer bump within the current block; blocks are sized geometrically
/// and their *capacity* is pinned against the memory governor the moment
/// they are reserved, so the governor sees frontier pressure before the
/// bytes are filled in.
///
/// Reclamation is stack-disciplined, matching the backtracking search:
/// `mark()` snapshots the allocation point before a batch, `PopTo`
/// releases everything allocated since (freeing — and unpinning — whole
/// blocks past the mark). One spare block is kept across PopTo so the
/// steady-state batch→drain→pop loop reuses memory instead of hitting
/// the allocator every ENU.
///
/// Not thread-safe: one RegionBuffer belongs to one executor (one OS
/// thread), like every other executor scratch buffer.
class RegionBuffer {
 public:
  /// Default block capacity, in VertexId entries (64 KiB).
  static constexpr size_t kDefaultBlockIds = 16384;

  struct Mark {
    size_t block = 0;   ///< index of the block that was current
    size_t used = 0;    ///< entries used in that block
  };

  explicit RegionBuffer(MemoryGovernor* governor = nullptr)
      : governor_(governor) {}
  ~RegionBuffer();

  RegionBuffer(const RegionBuffer&) = delete;
  RegionBuffer& operator=(const RegionBuffer&) = delete;

  /// Re-binds the governor. Only legal while the region is empty (the
  /// executor wires the governor in after construction).
  void BindGovernor(MemoryGovernor* governor);

  /// Contiguous uninitialized array of `count` vertex ids, valid until
  /// the enclosing mark is popped (or the region is destroyed). Never
  /// spans blocks; a request larger than the default block gets a
  /// dedicated block of exactly its size.
  VertexId* AllocateArray(size_t count);

  Mark mark() const { return Mark{current_, used_}; }

  /// Releases everything allocated since `m` (stack discipline: marks
  /// must be popped in reverse order of taking them). Frees and unpins
  /// whole blocks past the mark, keeping at most one spare.
  void PopTo(const Mark& m);

  /// Releases everything, including the spare block.
  void Reset();

  /// Block capacity bytes currently pinned (what the governor was told).
  size_t pinned_bytes() const { return pinned_bytes_; }

 private:
  struct Block {
    std::unique_ptr<VertexId[]> data;
    size_t capacity = 0;
  };

  /// Appends (or reuses the spare as) a block holding >= `count` entries.
  void PushBlock(size_t count);
  void Unpin(size_t bytes);

  MemoryGovernor* governor_;
  std::vector<Block> blocks_;
  size_t current_ = 0;       ///< index of the block being bumped
  size_t used_ = 0;          ///< entries used in blocks_[current_]
  size_t pinned_bytes_ = 0;
  Block spare_;              ///< one freed block kept for reuse
};

}  // namespace benu

#endif  // BENU_CORE_REGION_BUFFER_H_
