#ifndef BENU_CORE_MATCH_CONSUMER_H_
#define BENU_CORE_MATCH_CONSUMER_H_

#include <memory>
#include <utility>
#include <vector>

#include "common/types.h"
#include "core/compressed_result.h"
#include "graph/vertex_set.h"
#include "plan/instruction.h"

namespace benu {

/// Sink for the RES instruction of an execution plan. Executors invoke
/// exactly one of the two callbacks per reported result, depending on
/// whether the plan is VCBC-compressed.
///
/// Consumers are used from a single thread at a time (each worker thread
/// owns its own consumer; results are merged afterwards).
class MatchConsumer {
 public:
  virtual ~MatchConsumer() = default;

  /// A full match: f[i] is the data vertex mapped to pattern vertex u_i.
  virtual void OnMatch(const std::vector<VertexId>& f) = 0;

  /// A compressed code: `f` holds the helve (non-core entries are
  /// kInvalidVertex); `image_sets[i]` is the conditional image set of
  /// non-core pattern vertex `non_core[i]` (matching-order order). The
  /// views are only valid during the call.
  virtual void OnCompressedCode(
      const std::vector<VertexId>& f,
      const std::vector<VertexSetView>& image_sets) = 0;
};

/// Counts matches. For compressed codes, counts the exact number of
/// expansions (injective, order-constrained) of each code, so the total
/// equals the uncompressed match count.
class CountingConsumer : public MatchConsumer {
 public:
  /// `plan` is needed only for compressed plans (to know the non-core
  /// constraints); pass the plan being executed.
  explicit CountingConsumer(const ExecutionPlan& plan);

  void OnMatch(const std::vector<VertexId>& f) override;
  void OnCompressedCode(
      const std::vector<VertexId>& f,
      const std::vector<VertexSetView>& image_sets) override;

  /// Expanded match count.
  Count matches() const { return matches_; }
  /// Number of RES executions (equals matches() for uncompressed plans;
  /// the number of helves for compressed ones).
  Count codes() const { return codes_; }
  /// Total compressed-code payload: helve entries + image-set entries
  /// (× sizeof(VertexId) gives bytes). For uncompressed plans this is
  /// n per match.
  Count code_units() const { return code_units_; }

 private:
  std::unique_ptr<VcbcExpander> expander_;
  size_t num_core_ = 0;
  Count matches_ = 0;
  Count codes_ = 0;
  Count code_units_ = 0;
};

/// Collects full matches in memory (expanding compressed codes). Intended
/// for tests and small result sets.
class CollectingConsumer : public MatchConsumer {
 public:
  explicit CollectingConsumer(const ExecutionPlan& plan);

  void OnMatch(const std::vector<VertexId>& f) override;
  void OnCompressedCode(
      const std::vector<VertexId>& f,
      const std::vector<VertexSetView>& image_sets) override;

  /// All matches, each indexed by pattern vertex. Sorted lexicographically
  /// by Sorted() for deterministic comparison.
  const std::vector<std::vector<VertexId>>& matches() const {
    return matches_;
  }
  std::vector<std::vector<VertexId>> Sorted() const;

 private:
  std::unique_ptr<VcbcExpander> expander_;
  std::vector<std::vector<VertexId>> matches_;
};

}  // namespace benu

#endif  // BENU_CORE_MATCH_CONSUMER_H_
