#include "core/region_buffer.h"

#include <algorithm>
#include <utility>

#include "common/logging.h"
#include "core/memory_governor.h"

namespace benu {

RegionBuffer::~RegionBuffer() { Reset(); }

void RegionBuffer::BindGovernor(MemoryGovernor* governor) {
  BENU_CHECK(pinned_bytes_ == 0)
      << "BindGovernor on a non-empty region: pinned bytes would leak "
         "between governors";
  governor_ = governor;
}

void RegionBuffer::Unpin(size_t bytes) {
  pinned_bytes_ -= bytes;
  if (governor_ != nullptr) {
    governor_->AddFrontierPinned(-static_cast<int64_t>(bytes));
  }
}

void RegionBuffer::PushBlock(size_t count) {
  const size_t capacity = std::max(count, kDefaultBlockIds);
  Block block;
  if (spare_.capacity >= count) {
    // The steady-state batch→drain→pop loop lands here: the block freed
    // by the previous PopTo is reused, no allocator traffic.
    block = std::move(spare_);
    spare_ = Block{};
  } else {
    block.data = std::make_unique<VertexId[]>(capacity);
    block.capacity = capacity;
    const size_t bytes = capacity * sizeof(VertexId);
    pinned_bytes_ += bytes;
    if (governor_ != nullptr) {
      governor_->AddFrontierPinned(static_cast<int64_t>(bytes));
    }
  }
  blocks_.push_back(std::move(block));
  current_ = blocks_.size() - 1;
  used_ = 0;
}

VertexId* RegionBuffer::AllocateArray(size_t count) {
  if (blocks_.empty() || used_ + count > blocks_[current_].capacity) {
    PushBlock(count);
  }
  VertexId* out = blocks_[current_].data.get() + used_;
  used_ += count;
  return out;
}

void RegionBuffer::PopTo(const Mark& m) {
  while (blocks_.size() > m.block + 1) {
    Block victim = std::move(blocks_.back());
    blocks_.pop_back();
    if (victim.capacity > spare_.capacity) {
      std::swap(victim, spare_);
    }
    if (victim.capacity != 0) {
      Unpin(victim.capacity * sizeof(VertexId));
    }
  }
  if (!blocks_.empty()) {
    current_ = std::min(m.block, blocks_.size() - 1);
    used_ = current_ == m.block ? m.used : 0;
  } else {
    current_ = 0;
    used_ = 0;
  }
}

void RegionBuffer::Reset() {
  PopTo(Mark{0, 0});
  for (Block* block : {blocks_.empty() ? nullptr : &blocks_[0], &spare_}) {
    if (block == nullptr || block->capacity == 0) continue;
    Unpin(block->capacity * sizeof(VertexId));
    *block = Block{};
  }
  blocks_.clear();
  current_ = 0;
  used_ = 0;
}

}  // namespace benu
