#include "core/compressed_result.h"

#include <algorithm>
#include <functional>

#include "common/logging.h"

namespace benu {
namespace {

// |∩_{i in block} sets[i]| computed by iterative pairwise intersection.
Count BlockIntersectionSize(const std::vector<VertexSetView>& sets,
                            const std::vector<int>& block) {
  if (block.size() == 1) return sets[block[0]].size;
  VertexSet current(sets[block[0]].begin(), sets[block[0]].end());
  VertexSet next;
  for (size_t i = 1; i < block.size() && !current.empty(); ++i) {
    Intersect(VertexSetView(current), sets[block[i]], &next);
    current.swap(next);
  }
  return current.size();
}

// Σ over set partitions with Möbius weights. Enumerates partitions by the
// standard "assign element i to an existing block or open a new one"
// recursion; k ≤ ~6 in practice.
Count PartitionLatticeCount(const std::vector<VertexSetView>& sets) {
  const size_t k = sets.size();
  std::vector<std::vector<int>> blocks;
  // Signed accumulation: the Möbius weights alternate, but the total is a
  // nonnegative integer, so accumulate in a signed 128-bit-ish double?
  // Use __int128 to stay exact.
  __int128 total = 0;

  // factorials up to k
  std::vector<long long> fact(k + 1, 1);
  for (size_t i = 1; i <= k; ++i) {
    fact[i] = fact[i - 1] * static_cast<long long>(i);
  }

  std::function<void(size_t)> recurse = [&](size_t i) {
    if (i == k) {
      __int128 term = 1;
      for (const auto& block : blocks) {
        __int128 weight = fact[block.size() - 1];
        if (block.size() % 2 == 0) weight = -weight;
        term *= weight * static_cast<__int128>(
                             BlockIntersectionSize(sets, block));
        if (term == 0) return;
      }
      total += term;
      return;
    }
    // Index-based iteration: the recursive call may push a new block and
    // reallocate `blocks`, which would invalidate references.
    for (size_t b = 0; b < blocks.size(); ++b) {
      blocks[b].push_back(static_cast<int>(i));
      recurse(i + 1);
      blocks[b].pop_back();
    }
    blocks.push_back({static_cast<int>(i)});
    recurse(i + 1);
    blocks.pop_back();
  };
  recurse(0);
  BENU_CHECK(total >= 0) << "negative injective count";
  return static_cast<Count>(total);
}

// Ordered pairs (x ∈ a, y ∈ b) with x < y, by linear merge.
Count CountOrderedPairs(VertexSetView a, VertexSetView b) {
  Count total = 0;
  size_t ia = 0;
  for (size_t ib = 0; ib < b.size; ++ib) {
    while (ia < a.size && a[ia] < b[ib]) ++ia;
    total += ia;  // number of x in a strictly below b[ib]
  }
  return total;
}

Count Binomial(Count n, Count k) {
  if (k > n) return 0;
  if (k > n - k) k = n - k;
  __int128 result = 1;
  for (Count i = 0; i < k; ++i) {
    result = result * static_cast<__int128>(n - i) /
             static_cast<__int128>(i + 1);
  }
  return static_cast<Count>(result);
}

bool SameContents(VertexSetView a, VertexSetView b) {
  if (a.size != b.size) return false;
  return std::equal(a.begin(), a.end(), b.begin());
}

// True when `constraints` totally order all k positions (a chain).
bool IsTotalChain(size_t k, const std::vector<std::pair<int, int>>& constraints,
                  std::vector<int>* chain_order) {
  // Build a DAG and look for a Hamiltonian-path-like topological order
  // where consecutive elements are directly comparable via transitivity.
  // Sufficient check for our use: the transitive closure is a total order.
  std::vector<std::vector<char>> lt(k, std::vector<char>(k, 0));
  for (const auto& [i, j] : constraints) lt[i][j] = 1;
  // Floyd-Warshall style closure.
  for (size_t m = 0; m < k; ++m) {
    for (size_t i = 0; i < k; ++i) {
      for (size_t j = 0; j < k; ++j) {
        if (lt[i][m] && lt[m][j]) lt[i][j] = 1;
      }
    }
  }
  for (size_t i = 0; i < k; ++i) {
    for (size_t j = i + 1; j < k; ++j) {
      if (!lt[i][j] && !lt[j][i]) return false;
      if (lt[i][j] && lt[j][i]) return false;  // cycle
    }
  }
  chain_order->resize(k);
  std::vector<int> rank(k, 0);
  for (size_t i = 0; i < k; ++i) {
    int below = 0;
    for (size_t j = 0; j < k; ++j) {
      if (lt[j][i]) ++below;
    }
    (*chain_order)[below] = static_cast<int>(i);
  }
  return true;
}

// Exhaustive recursive count honoring injectivity and constraints.
// position-indexed constraint adjacency prepared by the caller.
struct EnumState {
  const std::vector<VertexSetView>* sets;
  std::vector<std::vector<std::pair<int, bool>>> bounds;  // per i: (j, j_is_upper)
  std::vector<VertexId> chosen;
  Count count = 0;
  std::vector<std::vector<VertexId>>* out = nullptr;
};

void EnumRecurse(EnumState* st, size_t i) {
  const size_t k = st->sets->size();
  if (i == k) {
    ++st->count;
    if (st->out != nullptr) st->out->push_back(st->chosen);
    return;
  }
  for (VertexId v : (*st->sets)[i]) {
    bool ok = true;
    for (size_t j = 0; j < i && ok; ++j) {
      if (st->chosen[j] == v) ok = false;
    }
    for (const auto& [j, upper] : st->bounds[i]) {
      if (static_cast<size_t>(j) >= i) continue;  // later; checked then
      if (upper) {
        // constraint (i < j) checked when j assigned; here (j, upper)
        // means: v must be < chosen[j] if upper, > chosen[j] otherwise.
        if (!(v < st->chosen[j])) ok = false;
      } else {
        if (!(v > st->chosen[j])) ok = false;
      }
      if (!ok) break;
    }
    if (!ok) continue;
    st->chosen[i] = v;
    EnumRecurse(st, i + 1);
  }
  st->chosen[i] = kInvalidVertex;
}

EnumState MakeEnumState(const std::vector<VertexSetView>& sets,
                        const std::vector<std::pair<int, int>>& constraints) {
  EnumState st;
  st.sets = &sets;
  st.bounds.assign(sets.size(), {});
  for (const auto& [i, j] : constraints) {
    // x_i < x_j. Attach the check to whichever index is assigned later;
    // we attach to both and skip the not-yet-assigned side at runtime.
    st.bounds[static_cast<size_t>(i)].push_back({j, /*upper=*/true});
    st.bounds[static_cast<size_t>(j)].push_back({i, /*upper=*/false});
  }
  st.chosen.assign(sets.size(), kInvalidVertex);
  return st;
}

}  // namespace

Count CountInjectiveAssignments(
    const std::vector<VertexSetView>& sets,
    const std::vector<std::pair<int, int>>& order_constraints) {
  const size_t k = sets.size();
  if (k == 0) return 1;
  for (const VertexSetView& s : sets) {
    if (s.empty()) return 0;
  }
  if (order_constraints.empty()) {
    if (k == 1) return sets[0].size;
    return PartitionLatticeCount(sets);
  }
  if (k == 2 && order_constraints.size() == 1) {
    const auto& [i, j] = order_constraints[0];
    return CountOrderedPairs(sets[static_cast<size_t>(i)],
                             sets[static_cast<size_t>(j)]);
  }
  // Identical sets under a total chain: pick any k-subset, order forced.
  std::vector<int> chain;
  if (IsTotalChain(k, order_constraints, &chain)) {
    bool identical = true;
    for (size_t i = 1; i < k && identical; ++i) {
      identical = SameContents(sets[0], sets[i]);
    }
    if (identical) return Binomial(sets[0].size, k);
  }
  EnumState st = MakeEnumState(sets, order_constraints);
  EnumRecurse(&st, 0);
  return st.count;
}

std::vector<std::vector<VertexId>> EnumerateInjectiveAssignments(
    const std::vector<VertexSetView>& sets,
    const std::vector<std::pair<int, int>>& order_constraints) {
  std::vector<std::vector<VertexId>> out;
  if (sets.empty()) {
    out.push_back({});
    return out;
  }
  EnumState st = MakeEnumState(sets, order_constraints);
  st.out = &out;
  EnumRecurse(&st, 0);
  return out;
}

VcbcExpander::VcbcExpander(const ExecutionPlan& plan) {
  BENU_CHECK(plan.compressed) << "plan is not VCBC-compressed";
  std::vector<char> is_core(plan.NumPatternVertices(), 0);
  for (VertexId u : plan.core_vertices) is_core[u] = 1;
  for (VertexId u : plan.matching_order) {
    if (!is_core[u]) non_core_.push_back(u);
  }
  // Order constraints between two non-core vertices, as positions into
  // non_core_.
  auto position_of = [this](VertexId u) {
    for (size_t i = 0; i < non_core_.size(); ++i) {
      if (non_core_[i] == u) return static_cast<int>(i);
    }
    return -1;
  };
  for (const OrderConstraint& c : plan.partial_order) {
    int a = position_of(c.first);
    int b = position_of(c.second);
    if (a >= 0 && b >= 0) constraints_.push_back({a, b});
  }
}

Count VcbcExpander::CountExpansions(
    const std::vector<VertexSetView>& image_sets) const {
  BENU_CHECK(image_sets.size() == non_core_.size());
  return CountInjectiveAssignments(image_sets, constraints_);
}

std::vector<std::vector<VertexId>> VcbcExpander::Expand(
    const std::vector<VertexId>& core_f,
    const std::vector<VertexSetView>& image_sets) const {
  std::vector<std::vector<VertexId>> matches;
  for (const std::vector<VertexId>& pick :
       EnumerateInjectiveAssignments(image_sets, constraints_)) {
    std::vector<VertexId> f = core_f;
    for (size_t i = 0; i < non_core_.size(); ++i) {
      f[non_core_[i]] = pick[i];
    }
    matches.push_back(std::move(f));
  }
  return matches;
}

}  // namespace benu
