#include "core/result_writer.h"

#include <cstring>

#include "common/logging.h"
#include "core/compressed_result.h"

namespace benu {
namespace {

constexpr char kMagic[7] = {'B', 'E', 'N', 'U', 'R', '1', '\n'};

void EncodeU32(uint32_t value, unsigned char out[4]) {
  out[0] = static_cast<unsigned char>(value);
  out[1] = static_cast<unsigned char>(value >> 8);
  out[2] = static_cast<unsigned char>(value >> 16);
  out[3] = static_cast<unsigned char>(value >> 24);
}

uint32_t DecodeU32(const unsigned char in[4]) {
  return static_cast<uint32_t>(in[0]) | (static_cast<uint32_t>(in[1]) << 8) |
         (static_cast<uint32_t>(in[2]) << 16) |
         (static_cast<uint32_t>(in[3]) << 24);
}

// Streaming reader with explicit error state.
class Reader {
 public:
  explicit Reader(std::FILE* file) : file_(file) {}

  bool ReadU32(uint32_t* value) {
    unsigned char buffer[4];
    if (std::fread(buffer, 1, 4, file_) != 4) return false;
    *value = DecodeU32(buffer);
    return true;
  }

  bool AtEof() {
    int c = std::fgetc(file_);
    if (c == EOF) return true;
    std::ungetc(c, file_);
    return false;
  }

 private:
  std::FILE* file_;
};

struct Header {
  bool compressed = false;
  uint32_t n = 0;
  std::vector<VertexId> order;
  std::vector<std::pair<int, int>> constraints;  // pattern-vertex pairs
  std::vector<VertexId> core;                    // matching-order prefix
  std::vector<VertexId> non_core;
  long payload_start = 0;
};

StatusOr<Header> ReadHeader(std::FILE* file) {
  char magic[7];
  if (std::fread(magic, 1, 7, file) != 7 ||
      std::memcmp(magic, kMagic, 7) != 0) {
    return Status::IoError("not a BENU result file");
  }
  int mode = std::fgetc(file);
  if (mode != 'P' && mode != 'C') {
    return Status::IoError("unknown result-file mode");
  }
  Header header;
  header.compressed = mode == 'C';
  Reader reader(file);
  if (!reader.ReadU32(&header.n) || header.n == 0 || header.n > 64) {
    return Status::IoError("corrupt header: bad pattern size");
  }
  header.order.resize(header.n);
  for (auto& u : header.order) {
    if (!reader.ReadU32(&u) || u >= header.n) {
      return Status::IoError("corrupt header: bad matching order");
    }
  }
  uint32_t num_constraints = 0;
  if (!reader.ReadU32(&num_constraints) || num_constraints > 4096) {
    return Status::IoError("corrupt header: bad constraint count");
  }
  for (uint32_t i = 0; i < num_constraints; ++i) {
    uint32_t a = 0;
    uint32_t b = 0;
    if (!reader.ReadU32(&a) || !reader.ReadU32(&b) || a >= header.n ||
        b >= header.n) {
      return Status::IoError("corrupt header: bad constraint");
    }
    header.constraints.push_back({static_cast<int>(a), static_cast<int>(b)});
  }
  uint32_t core_size = header.n;
  if (header.compressed) {
    if (!reader.ReadU32(&core_size) || core_size == 0 ||
        core_size > header.n) {
      return Status::IoError("corrupt header: bad core size");
    }
  }
  header.core.assign(header.order.begin(), header.order.begin() + core_size);
  header.non_core.assign(header.order.begin() + core_size,
                         header.order.end());
  header.payload_start = std::ftell(file);
  return header;
}

}  // namespace

ResultFileWriter::ResultFileWriter(std::FILE* file, bool compressed,
                                   std::vector<VertexId> core,
                                   std::vector<VertexId> non_core)
    : file_(file),
      compressed_(compressed),
      core_(std::move(core)),
      non_core_(std::move(non_core)) {}

StatusOr<std::unique_ptr<ResultFileWriter>> ResultFileWriter::Open(
    const std::string& path, const ExecutionPlan& plan) {
  std::FILE* file = std::fopen(path.c_str(), "wb");
  if (file == nullptr) {
    return Status::IoError("cannot open " + path + " for writing");
  }
  const size_t n = plan.NumPatternVertices();
  std::vector<char> is_core(n, plan.compressed ? 0 : 1);
  for (VertexId u : plan.core_vertices) is_core[u] = 1;
  std::vector<VertexId> core;
  std::vector<VertexId> non_core;
  for (VertexId u : plan.matching_order) {
    (is_core[u] ? core : non_core).push_back(u);
  }
  std::unique_ptr<ResultFileWriter> writer(new ResultFileWriter(
      file, plan.compressed, std::move(core), std::move(non_core)));

  std::fwrite(kMagic, 1, 7, file);
  std::fputc(plan.compressed ? 'C' : 'P', file);
  writer->bytes_ += 8;
  writer->WriteU32(static_cast<uint32_t>(n));
  for (VertexId u : plan.matching_order) writer->WriteU32(u);
  writer->WriteU32(static_cast<uint32_t>(plan.partial_order.size()));
  for (const OrderConstraint& c : plan.partial_order) {
    writer->WriteU32(c.first);
    writer->WriteU32(c.second);
  }
  if (plan.compressed) {
    writer->WriteU32(static_cast<uint32_t>(plan.core_vertices.size()));
  }
  if (writer->failed_) {
    return Status::IoError("write failure on " + path);
  }
  return writer;
}

ResultFileWriter::~ResultFileWriter() {
  if (file_ != nullptr) {
    Status status = Close();
    if (!status.ok()) {
      BENU_LOG(Error) << "result writer: " << status.ToString();
    }
  }
}

void ResultFileWriter::WriteU32(uint32_t value) {
  unsigned char buffer[4];
  EncodeU32(value, buffer);
  if (std::fwrite(buffer, 1, 4, file_) != 4) failed_ = true;
  bytes_ += 4;
}

void ResultFileWriter::OnMatch(const std::vector<VertexId>& f) {
  BENU_CHECK(!compressed_) << "plain match reported to compressed writer";
  for (VertexId v : f) WriteU32(v);
  ++records_;
}

void ResultFileWriter::OnCompressedCode(
    const std::vector<VertexId>& f,
    const std::vector<VertexSetView>& image_sets) {
  BENU_CHECK(compressed_);
  BENU_CHECK(image_sets.size() == non_core_.size());
  for (VertexId u : core_) WriteU32(f[u]);
  for (const VertexSetView& set : image_sets) {
    WriteU32(static_cast<uint32_t>(set.size));
    for (VertexId v : set) WriteU32(v);
  }
  ++records_;
}

Status ResultFileWriter::Close() {
  if (file_ == nullptr) return Status::OK();
  const bool flush_failed = std::fclose(file_) != 0;
  file_ = nullptr;
  if (failed_ || flush_failed) return Status::IoError("result write failed");
  return Status::OK();
}

StatusOr<ResultFileInfo> ReadResultFile(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) return Status::IoError("cannot open " + path);
  auto header = ReadHeader(file);
  if (!header.ok()) {
    std::fclose(file);
    return header.status();
  }
  ResultFileInfo info;
  info.compressed = header->compressed;
  info.pattern_vertices = header->n;

  // Constraint pairs restricted to non-core positions.
  std::vector<std::pair<int, int>> non_core_constraints;
  auto position = [&](int u) {
    for (size_t i = 0; i < header->non_core.size(); ++i) {
      if (header->non_core[i] == static_cast<VertexId>(u)) {
        return static_cast<int>(i);
      }
    }
    return -1;
  };
  for (const auto& [a, b] : header->constraints) {
    int pa = position(a);
    int pb = position(b);
    if (pa >= 0 && pb >= 0) non_core_constraints.push_back({pa, pb});
  }

  Reader reader(file);
  std::vector<VertexSet> sets(header->non_core.size());
  Status error;
  while (!reader.AtEof()) {
    if (!header->compressed) {
      uint32_t v = 0;
      for (uint32_t i = 0; i < header->n; ++i) {
        if (!reader.ReadU32(&v)) {
          error = Status::IoError("truncated record");
          break;
        }
      }
      if (!error.ok()) break;
      ++info.records;
      ++info.matches;
      info.payload_bytes += header->n * 4;
      continue;
    }
    uint32_t v = 0;
    for (size_t i = 0; i < header->core.size(); ++i) {
      if (!reader.ReadU32(&v)) {
        error = Status::IoError("truncated helve");
        break;
      }
    }
    if (!error.ok()) break;
    info.payload_bytes += header->core.size() * 4;
    for (auto& set : sets) {
      uint32_t size = 0;
      if (!reader.ReadU32(&size) || size > (1u << 28)) {
        error = Status::IoError("truncated image set");
        break;
      }
      set.resize(size);
      for (uint32_t i = 0; i < size; ++i) {
        if (!reader.ReadU32(&set[i])) {
          error = Status::IoError("truncated image set");
          break;
        }
      }
      if (!error.ok()) break;
      info.payload_bytes += 4 + size * 4;
    }
    if (!error.ok()) break;
    ++info.records;
    std::vector<VertexSetView> views(sets.begin(), sets.end());
    info.matches += CountInjectiveAssignments(views, non_core_constraints);
  }
  std::fclose(file);
  if (!error.ok()) return error;
  return info;
}

StatusOr<std::vector<std::vector<VertexId>>> ReadAllMatches(
    const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) return Status::IoError("cannot open " + path);
  auto header = ReadHeader(file);
  if (!header.ok()) {
    std::fclose(file);
    return header.status();
  }
  std::vector<std::pair<int, int>> non_core_constraints;
  for (const auto& [a, b] : header->constraints) {
    int pa = -1;
    int pb = -1;
    for (size_t i = 0; i < header->non_core.size(); ++i) {
      if (header->non_core[i] == static_cast<VertexId>(a)) {
        pa = static_cast<int>(i);
      }
      if (header->non_core[i] == static_cast<VertexId>(b)) {
        pb = static_cast<int>(i);
      }
    }
    if (pa >= 0 && pb >= 0) non_core_constraints.push_back({pa, pb});
  }

  Reader reader(file);
  std::vector<std::vector<VertexId>> matches;
  std::vector<VertexSet> sets(header->non_core.size());
  Status error;
  while (!reader.AtEof()) {
    std::vector<VertexId> f(header->n, kInvalidVertex);
    if (!header->compressed) {
      bool ok = true;
      for (uint32_t u = 0; u < header->n && ok; ++u) {
        ok = reader.ReadU32(&f[u]);
      }
      if (!ok) {
        error = Status::IoError("truncated record");
        break;
      }
      matches.push_back(std::move(f));
      continue;
    }
    bool ok = true;
    for (VertexId u : header->core) {
      if (!reader.ReadU32(&f[u])) {
        ok = false;
        break;
      }
    }
    for (auto& set : sets) {
      if (!ok) break;
      uint32_t size = 0;
      ok = reader.ReadU32(&size) && size <= (1u << 28);
      if (!ok) break;
      set.resize(size);
      for (uint32_t i = 0; i < size && ok; ++i) {
        ok = reader.ReadU32(&set[i]);
      }
    }
    if (!ok) {
      error = Status::IoError("truncated record");
      break;
    }
    std::vector<VertexSetView> views(sets.begin(), sets.end());
    for (const auto& pick :
         EnumerateInjectiveAssignments(views, non_core_constraints)) {
      std::vector<VertexId> full = f;
      for (size_t i = 0; i < header->non_core.size(); ++i) {
        full[header->non_core[i]] = pick[i];
      }
      matches.push_back(std::move(full));
    }
  }
  std::fclose(file);
  if (!error.ok()) return error;
  return matches;
}

}  // namespace benu
