#include "core/match_consumer.h"

#include <algorithm>

namespace benu {

CountingConsumer::CountingConsumer(const ExecutionPlan& plan) {
  if (plan.compressed) {
    expander_ = std::make_unique<VcbcExpander>(plan);
    num_core_ = plan.core_vertices.size();
  }
}

void CountingConsumer::OnMatch(const std::vector<VertexId>& f) {
  ++matches_;
  ++codes_;
  code_units_ += f.size();
}

void CountingConsumer::OnCompressedCode(
    const std::vector<VertexId>& f,
    const std::vector<VertexSetView>& image_sets) {
  (void)f;
  ++codes_;
  code_units_ += num_core_;
  for (const VertexSetView& s : image_sets) code_units_ += s.size;
  matches_ += expander_->CountExpansions(image_sets);
}

CollectingConsumer::CollectingConsumer(const ExecutionPlan& plan) {
  if (plan.compressed) expander_ = std::make_unique<VcbcExpander>(plan);
}

void CollectingConsumer::OnMatch(const std::vector<VertexId>& f) {
  matches_.push_back(f);
}

void CollectingConsumer::OnCompressedCode(
    const std::vector<VertexId>& f,
    const std::vector<VertexSetView>& image_sets) {
  for (auto& match : expander_->Expand(f, image_sets)) {
    matches_.push_back(std::move(match));
  }
}

std::vector<std::vector<VertexId>> CollectingConsumer::Sorted() const {
  std::vector<std::vector<VertexId>> sorted = matches_;
  std::sort(sorted.begin(), sorted.end());
  return sorted;
}

}  // namespace benu
