#include "core/executor.h"

#include <algorithm>
#include <map>
#include <numeric>

#include "common/logging.h"
#include "common/metrics.h"
#include "common/stopwatch.h"
#include "core/memory_governor.h"

namespace benu {
namespace {

// Mnemonics of the paper's instruction set, indexed by InstrType.
constexpr const char* kInstrNames[] = {"INI", "DBQ", "INT",
                                       "ENU", "TRC", "RES"};

}  // namespace

AdjacencyProvider::Fetch DirectAdjacencyProvider::GetAdjacency(VertexId v) {
  BENU_CHECK(v < graph_->NumVertices());
  Fetch fetch;
  // Zero-copy: alias the graph's CSR arrays. No shared_ptr is needed
  // because the graph outlives the executor by contract.
  fetch.view = graph_->Adjacency(v);
  fetch.cache_hit = true;
  return fetch;
}

CachedAdjacencyProvider::CachedAdjacencyProvider(DbCache* cache,
                                                 size_t num_vertices,
                                                 size_t prefetch_budget,
                                                 MemoryGovernor* governor)
    : cache_(cache),
      num_vertices_(num_vertices),
      prefetch_budget_(prefetch_budget),
      governor_(governor) {
  dropped_counter_ = metrics::MetricsRegistry::Global().GetCounter(
      "executor.prefetch.dropped", "1",
      "ENU prefetch keys clamped off by the (static or governed) budget; "
      "each surfaces later as a synchronous miss");
}

AdjacencyProvider::Fetch CachedAdjacencyProvider::GetAdjacency(VertexId v) {
  DbCache::Reply reply = cache_->Get(v);
  Fetch fetch;
  fetch.cache_hit = reply.outcome == DbCache::Outcome::kHit;
  fetch.coalesced = reply.outcome == DbCache::Outcome::kCoalesced;
  // A coalesced fetch transfers no bytes of its own: the primary miss
  // accounts the reply payload (its actual wire footprint — encoded
  // frame size on compressed transports) once.
  fetch.bytes = reply.outcome == DbCache::Outcome::kMiss
                    ? reply.value.wire_bytes
                    : 0;
  if (reply.value.is_encoded()) {
    // Hand the encoded payload through untouched: the executor's fused
    // kernels intersect it without a decode, or SlotView materializes
    // it on a plain-view use.
    fetch.encoded = std::move(reply.value.encoded);
  } else {
    fetch.set = std::move(reply.value.decoded);
    fetch.view = VertexSetView(*fetch.set);
  }
  return fetch;
}

void CachedAdjacencyProvider::Prefetch(const VertexId* keys, size_t count) {
  if (prefetch_budget_ == 0) return;
  // Under a governor the budget breathes with memory headroom (PR 3's
  // static knob is the floor); without one it is the static knob.
  const size_t budget =
      governor_ != nullptr ? governor_->PrefetchBudget() : prefetch_budget_;
  if (count > budget) {
    // The clamped-off keys will be fetched synchronously when their DBQ
    // executes — a real cost, so surface it instead of dropping silently.
    dropped_counter_->Add(count - budget);
  }
  cache_->PrefetchAsync(keys, std::min(count, budget));
}

void TaskStats::Accumulate(const TaskStats& other) {
  res_executions += other.res_executions;
  matches += other.matches;
  adjacency_requests += other.adjacency_requests;
  cache_hits += other.cache_hits;
  db_queries += other.db_queries;
  coalesced_fetches += other.coalesced_fetches;
  bytes_fetched += other.bytes_fetched;
  intersections += other.intersections;
  tcache_hits += other.tcache_hits;
  wall_seconds += other.wall_seconds;
  if (other.cpu_seconds >= 0) {
    cpu_seconds = (cpu_seconds < 0 ? 0 : cpu_seconds) + other.cpu_seconds;
  }
}

PlanExecutor::PlanExecutor(const ExecutionPlan* plan,
                           AdjacencyProvider* provider, TriangleCache* tcache,
                           const std::vector<VertexId>* degree_floors,
                           const std::vector<int>* data_labels)
    : plan_(plan),
      provider_(provider),
      tcache_(tcache),
      degree_floors_(degree_floors),
      data_labels_(data_labels) {
  task_span_us_ = metrics::MetricsRegistry::Global().GetHistogram(
      "executor.task.us", "us", "wall time of one RunTask (traced)");
}

PlanExecutor::~PlanExecutor() {
  codec::NoteFusedIntersects(fused_intersects_);
  codec::NoteFallbackDecodes(fallback_decodes_);
  auto& registry = metrics::MetricsRegistry::Global();
  if (frontier_batches_ != 0) {
    registry
        .GetCounter("executor.frontier.batches", "1",
                    "frontier batches materialized and drained by the "
                    "hybrid/full-BFS ENU path")
        ->Add(frontier_batches_);
  }
  if (frontier_spills_ != 0) {
    registry
        .GetCounter("executor.frontier.spills", "1",
                    "governor lease denials that degraded an ENU to plain "
                    "DFS with the static prefetch budget")
        ->Add(frontier_spills_);
  }
  if (frontier_widenings_ != 0) {
    registry
        .GetCounter("executor.frontier.widenings", "1",
                    "frontier batches wider than the static prefetch "
                    "budget (headroom bought extra overlap)")
        ->Add(frontier_widenings_);
  }
  for (size_t k = 0; k < kNumInstrKinds; ++k) {
    if (trace_.count[k] != 0) {
      registry
          .GetCounter(std::string("executor.instr.") + kInstrNames[k] +
                          ".count",
                      "1", "instruction dispatches")
          ->Add(trace_.count[k]);
    }
    if (trace_.self_ns[k] != 0) {
      registry
          .GetCounter(std::string("executor.instr.") + kInstrNames[k] +
                          ".self_ns",
                      "ns", "exclusive time attributed to this "
                            "instruction kind (traced)")
          ->Add(trace_.self_ns[k]);
    }
  }
}

StatusOr<std::unique_ptr<PlanExecutor>> PlanExecutor::Create(
    const ExecutionPlan* plan, AdjacencyProvider* provider,
    TriangleCache* tcache, const std::vector<VertexId>* degree_floors,
    const std::vector<int>* data_labels) {
  std::string error;
  if (!ValidatePlan(*plan, &error)) {
    return Status::InvalidArgument("invalid plan: " + error);
  }
  bool has_trc = false;
  for (const Instruction& ins : plan->instructions) {
    if (ins.type == InstrType::kTriangleCache) has_trc = true;
  }
  if (has_trc && tcache == nullptr) {
    return Status::InvalidArgument("plan uses TRC but no triangle cache");
  }
  if (plan->UsesDegreeFilters() && degree_floors == nullptr) {
    return Status::InvalidArgument(
        "plan carries degree filters but no degree-floor table was given");
  }
  if (plan->UsesLabelFilters() && data_labels == nullptr) {
    return Status::InvalidArgument(
        "plan matches a labeled pattern but no data labels were given");
  }
  std::unique_ptr<PlanExecutor> executor(new PlanExecutor(
      plan, provider, tcache, degree_floors, data_labels));
  BENU_RETURN_IF_ERROR(executor->Compile());
  return executor;
}

void PlanExecutor::ConfigureExpansion(ExpansionMode mode,
                                      MemoryGovernor* governor) {
  expansion_ = mode;
  governor_ = governor;
  frontier_.BindGovernor(governor);
}

Status PlanExecutor::Compile() {
  const size_t n = plan_->NumPatternVertices();
  f_.assign(n, kInvalidVertex);

  std::map<VarRef, int> slot_of;
  auto set_slot = [&slot_of, this](const VarRef& var) {
    auto [it, inserted] =
        slot_of.emplace(var, static_cast<int>(slot_of.size()));
    if (inserted) slots_.emplace_back();
    return it->second;
  };
  auto operand_slot = [&](const VarRef& var) -> StatusOr<int> {
    if (var.kind == VarKind::kAllVertices) return -1;
    if (var.kind == VarKind::kF) {
      return Status::Internal("f variable used as set operand");
    }
    auto it = slot_of.find(var);
    if (it == slot_of.end()) return Status::Internal("operand not defined");
    return it->second;
  };

  auto annotate = [this](const Instruction& ins, Compiled* c) {
    if (ins.min_degree > 0 && degree_floors_ != nullptr) {
      // Clamping to the last table entry only weakens the bound, which
      // stays sound (the filter is a pruning aid, not a correctness one).
      const size_t d = std::min<size_t>(ins.min_degree,
                                        degree_floors_->size() - 1);
      c->min_candidate_id = (*degree_floors_)[d];
    }
    c->required_label = ins.required_label;
  };

  bool seen_enum = false;
  for (const Instruction& ins : plan_->instructions) {
    Compiled c;
    c.type = ins.type;
    // Split filters by kind: order filters become [lo, hi) clamps fused
    // into the intersection inputs, injective filters fold into the
    // emission loop (see ExecIntersect).
    for (const FilterCondition& fc : ins.filters) {
      switch (fc.kind) {
        case FilterKind::kGreater:
          c.gt_filter_f.push_back(fc.f_index);
          break;
        case FilterKind::kLess:
          c.lt_filter_f.push_back(fc.f_index);
          break;
        case FilterKind::kNotEqual:
          c.ne_filter_f.push_back(fc.f_index);
          break;
      }
    }
    if (ins.type == InstrType::kTriangleCache &&
        !ins.filters.empty()) {
      return Status::Internal(
          "TRC instructions must be filter-free (cached sets are shared "
          "across enumerations)");
    }
    switch (ins.type) {
      case InstrType::kInit:
        c.target_f = ins.target.index;
        annotate(ins, &c);
        break;
      case InstrType::kDbQuery:
        c.source_f = ins.operands[0].index;
        c.target_set_slot = set_slot(ins.target);
        break;
      case InstrType::kIntersect:
      case InstrType::kTriangleCache:
        for (const VarRef& op : ins.operands) {
          auto slot = operand_slot(op);
          BENU_RETURN_IF_ERROR(slot.status());
          // V(G) ∩ X = X: drop the pseudo-operand when a concrete set
          // operand is present; the single-operand V(G) fast path handles
          // the remaining case.
          if (*slot == -1 && ins.operands.size() > 1) continue;
          c.operand_slots.push_back(*slot);
        }
        if (ins.type == InstrType::kTriangleCache) {
          // Operands are (A_start, A_neighbor); key by the neighbor's f.
          c.trc_neighbor_f = ins.operands[1].index;
        }
        c.target_set_slot = set_slot(ins.target);
        break;
      case InstrType::kEnumerate: {
        c.target_f = ins.target.index;
        auto slot = operand_slot(ins.operands[0]);
        BENU_RETURN_IF_ERROR(slot.status());
        if (*slot == -1) {
          return Status::Internal(
              "ENU directly over V(G); plans always interpose a filtered "
              "candidate instruction");
        }
        c.operand_slots.push_back(*slot);
        if (!seen_enum) {
          c.first_enum = true;
          seen_enum = true;
        }
        annotate(ins, &c);
        break;
      }
      case InstrType::kReport: {
        // Image-set slots for non-core vertices, in matching order, so
        // the consumer sees them in VcbcExpander::non_core() order.
        std::vector<char> is_core(n, plan_->compressed ? 0 : 1);
        for (VertexId u : plan_->core_vertices) is_core[u] = 1;
        for (VertexId u : plan_->matching_order) {
          if (is_core[u]) continue;
          const VarRef& op = ins.operands[u];
          if (op.kind == VarKind::kF) {
            return Status::Internal("non-core RES operand is f variable");
          }
          auto slot = operand_slot(op);
          BENU_RETURN_IF_ERROR(slot.status());
          c.res_refs.push_back(*slot);
        }
        break;
      }
    }
    code_.push_back(std::move(c));
  }
  // ENU→DBQ consumption analysis: an ENU whose enumerated vertex is the
  // source of a downstream DBQ is worth prefetching — while level i
  // enumerates (intersections, filters, deeper descent), the adjacency
  // sets its candidates need at the DBQ are fetched in the background,
  // overlapping level-(i+1) fetch latency with level-i compute.
  for (size_t i = 0; i < code_.size(); ++i) {
    if (code_[i].type != InstrType::kEnumerate) continue;
    for (size_t j = i + 1; j < code_.size(); ++j) {
      if (code_[j].type == InstrType::kDbQuery &&
          code_[j].source_f == code_[i].target_f) {
        code_[i].prefetch_hint = true;
        break;
      }
    }
  }
  report_sets_.reserve(n);
  return Status::OK();
}

VertexSetView PlanExecutor::SlotView(int slot) {
  BENU_CHECK(slot >= 0) << "V(G) pseudo-operand outside its fast path";
  SetSlot& s = slots_[static_cast<size_t>(slot)];
  if (s.encoded != nullptr && s.shared == nullptr) {
    // Fallback materialization of an encoded slot (a use the fused
    // kernels don't cover). Memoized: repeated views decode once.
    auto decoded = std::make_shared<VertexSet>();
    codec::DecodeAll(*s.encoded, decoded.get());
    codec::NoteDecoded(decoded->size());
    ++fallback_decodes_;
    s.shared = std::move(decoded);
    s.view = VertexSetView(*s.shared);
  }
  return s.view;
}

void PlanExecutor::ExecIntersect(const Compiled& ins) {
  SetSlot& out = slots_[static_cast<size_t>(ins.target_set_slot)];
  out.shared.reset();
  out.encoded.reset();
  VertexSet& result = out.owned;
  ++stats_.intersections;

  // Resolve the compiled filters against the current partial match: keep
  // values in [lo, hi), drop the ≠ values. Clamping an input view costs
  // two binary searches and replaces the seed's intersect-then-erase
  // post-pass; ≠ folds into the kernels' emission loops.
  VertexId lo = 0;
  VertexId hi = kInvalidVertex;
  for (int f : ins.gt_filter_f) {
    lo = std::max(lo, f_[static_cast<size_t>(f)] + 1);
  }
  for (int f : ins.lt_filter_f) {
    hi = std::min(hi, f_[static_cast<size_t>(f)]);
  }
  ne_values_.clear();
  for (int f : ins.ne_filter_f) {
    const VertexId v = f_[static_cast<size_t>(f)];
    if (v >= lo && v < hi) ne_values_.push_back(v);
  }

  const auto& ops = ins.operand_slots;
  if (ops.size() == 1 && ops[0] == -1) {
    // Candidate set over V(G): the clamp alone defines the id range; no
    // set is scanned at all.
    hi = std::min(hi, static_cast<VertexId>(provider_->NumVertices()));
    result.clear();
    if (lo < hi) {
      result.resize(static_cast<size_t>(hi - lo));
      std::iota(result.begin(), result.end(), lo);
      for (VertexId v : ne_values_) EraseValue(&result, v);
    }
    out.view = VertexSetView(result);
    return;
  }

  if (ops.size() == 1) {
    if (const codec::EncodedSet* enc = EncodedOnly(ops[0])) {
      // Fused decode+clamp+exclude straight off the varint stream: the
      // full set is never materialized.
      codec::DecodeClamped(*enc, lo, hi, ne_values_.data(),
                           ne_values_.size(), &result);
      ++fused_intersects_;
      out.view = VertexSetView(result);
      return;
    }
    const VertexSetView in = ClampView(SlotView(ops[0]), lo, hi);
    CopyExcluding(in, ne_values_.data(), ne_values_.size(), &result);
    out.view = VertexSetView(result);
    return;
  }

  if (ops.size() == 2) {
    const codec::EncodedSet* enc0 = EncodedOnly(ops[0]);
    const codec::EncodedSet* enc1 = EncodedOnly(ops[1]);
    if (enc0 != nullptr || enc1 != nullptr) {
      // At least one operand is still encoded: fuse the decode into the
      // intersect. With both encoded, materialize the smaller (the
      // kernel streams the encoded side but binary-probes `b`, so `b`
      // should be the cheaper one to decode) and fuse the larger.
      if (enc0 != nullptr && enc1 != nullptr) {
        const int smaller = enc0->count <= enc1->count ? ops[0] : ops[1];
        const codec::EncodedSet* larger =
            enc0->count <= enc1->count ? enc1 : enc0;
        codec::IntersectEncoded(*larger, SlotView(smaller), lo, hi,
                                ne_values_.data(), ne_values_.size(),
                                &result);
      } else {
        const codec::EncodedSet* enc = enc0 != nullptr ? enc0 : enc1;
        const VertexSetView other =
            SlotView(enc0 != nullptr ? ops[1] : ops[0]);
        codec::IntersectEncoded(*enc, other, lo, hi, ne_values_.data(),
                                ne_values_.size(), &result);
      }
      ++fused_intersects_;
      out.view = VertexSetView(result);
      return;
    }
  }

  // Multi-way: order operands by ascending size so the cheapest pair is
  // intersected first and every later operand probes a shrinking result.
  // Clamping the smallest operand clamps the result (result ⊆ each
  // operand); the fold ping-pongs between two reused scratch buffers, so
  // no per-call allocation after warm-up.
  operand_views_.clear();
  for (int slot : ops) operand_views_.push_back(SlotView(slot));
  std::sort(operand_views_.begin(), operand_views_.end(),
            [](const VertexSetView& a, const VertexSetView& b) {
              return a.size < b.size;
            });
  operand_views_[0] = ClampView(operand_views_[0], lo, hi);
  IntersectExcluding(operand_views_[0], operand_views_[1], ne_values_.data(),
                     ne_values_.size(), &result);
  for (size_t i = 2; i < operand_views_.size(); ++i) {
    if (result.empty()) break;
    Intersect(VertexSetView(result), operand_views_[i], &scratch_);
    result.swap(scratch_);
  }
  out.view = VertexSetView(result);
}

void PlanExecutor::Exec(size_t pc) {
  BENU_CHECK(pc < code_.size());
  for (;;) {
    const Compiled& ins = code_[pc];
    const int kind = static_cast<int>(ins.type);
    ++trace_.count[kind];
    if (trace_.timed) TraceSwitch(kind);
    switch (ins.type) {
      case InstrType::kInit:
        if (task_->start < ins.min_candidate_id) return;  // degree filter
        if (ins.required_label >= 0 &&
            (*data_labels_)[task_->start] != ins.required_label) {
          return;
        }
        f_[static_cast<size_t>(ins.target_f)] = task_->start;
        break;
      case InstrType::kDbQuery: {
        AdjacencyProvider::Fetch fetch = provider_->GetAdjacency(
            f_[static_cast<size_t>(ins.source_f)]);
        ++stats_.adjacency_requests;
        if (fetch.cache_hit) {
          ++stats_.cache_hits;
        } else if (fetch.coalesced) {
          ++stats_.coalesced_fetches;
        } else {
          ++stats_.db_queries;
          stats_.bytes_fetched += fetch.bytes;
        }
        SetSlot& slot = slots_[static_cast<size_t>(ins.target_set_slot)];
        // fetch.view stays valid across the move: it points into the
        // shared payload (owned path) or provider storage (zero-copy).
        // An encoded fetch leaves `view` empty until SlotView (or a
        // fused kernel consuming `encoded` directly) needs it.
        slot.shared = std::move(fetch.set);
        slot.encoded = std::move(fetch.encoded);
        slot.view = fetch.view;
        break;
      }
      case InstrType::kIntersect:
        ExecIntersect(ins);
        if (SlotView(ins.target_set_slot).empty()) return;  // backtrack
        break;
      case InstrType::kTriangleCache: {
        const VertexId neighbor = f_[static_cast<size_t>(ins.trc_neighbor_f)];
        SetSlot& slot = slots_[static_cast<size_t>(ins.target_set_slot)];
        slot.encoded.reset();
        if (auto cached = tcache_->Lookup(neighbor)) {
          ++stats_.tcache_hits;
          slot.shared = std::move(cached);
        } else {
          ++stats_.intersections;
          auto computed = std::make_shared<VertexSet>();
          Intersect(SlotView(ins.operand_slots[0]),
                    SlotView(ins.operand_slots[1]), computed.get());
          tcache_->Insert(neighbor, computed);
          slot.shared = std::move(computed);
        }
        slot.view = VertexSetView(*slot.shared);
        if (slot.view.empty()) return;  // backtrack
        break;
      }
      case InstrType::kEnumerate: {
        VertexSetView candidates = SlotView(ins.operand_slots[0]);
        // Degree filter: ids realize the (degree, id) order, so the
        // filter is one binary search over the sorted candidate set.
        size_t lo = 0;
        if (ins.min_candidate_id > 0) {
          lo = static_cast<size_t>(
              std::lower_bound(candidates.begin(), candidates.end(),
                               ins.min_candidate_id) -
              candidates.begin());
        }
        if (ins.first_enum && task_->seed_second != kInvalidVertex) {
          // Seeded (incremental) task: the second matching-order vertex
          // is pinned to the delta edge's other endpoint. One binary
          // search decides membership; filters and deeper descent run
          // unchanged through the shared DFS body.
          const VertexId* pos =
              std::lower_bound(candidates.begin() + lo, candidates.end(),
                               task_->seed_second);
          if (pos != candidates.end() && *pos == task_->seed_second) {
            DescendRange(ins, pos, 1, pc + 1);
          }
          f_[static_cast<size_t>(ins.target_f)] = kInvalidVertex;
          return;
        }
        size_t begin = lo;
        size_t end = candidates.size;
        if (ins.first_enum && task_->num_subtasks > 1) {
          const size_t span = candidates.size - lo;
          begin = lo + span * task_->subtask_index / task_->num_subtasks;
          end = lo + span * (task_->subtask_index + 1) / task_->num_subtasks;
        }
        // Hybrid mode batches ENUs worth prefetching (the hint marks a
        // downstream DBQ consumer); full-BFS batches every ENU — a true
        // level-synchronous frontier holds every level.
        const bool batched =
            begin < end &&
            ((expansion_ == ExpansionMode::kHybrid && ins.prefetch_hint) ||
             expansion_ == ExpansionMode::kFullBfs);
        if (batched) {
          ExecEnumerateBatched(ins, candidates, begin, end, pc + 1);
        } else {
          if (ins.prefetch_hint && begin < end) {
            // Kick off the batched background fetch for the adjacency
            // sets this enumeration is about to query (the provider
            // clamps to its prefetch budget; a no-op for providers
            // without one).
            provider_->Prefetch(candidates.begin() + begin, end - begin);
          }
          DescendRange(ins, candidates.begin() + begin, end - begin, pc + 1);
        }
        f_[static_cast<size_t>(ins.target_f)] = kInvalidVertex;
        return;
      }
      case InstrType::kReport: {
        ++stats_.res_executions;
        if (!plan_->compressed) {
          consumer_->OnMatch(f_);
        } else {
          report_sets_.clear();
          for (int slot : ins.res_refs) {
            report_sets_.push_back(SlotView(slot));
          }
          consumer_->OnCompressedCode(f_, report_sets_);
        }
        return;
      }
    }
    ++pc;
  }
}

void PlanExecutor::DescendRange(const Compiled& ins,
                                const VertexId* candidates, size_t count,
                                size_t pc_next) {
  const int kind = static_cast<int>(InstrType::kEnumerate);
  const auto f_index = static_cast<size_t>(ins.target_f);
  for (size_t i = 0; i < count; ++i) {
    // Cooperative cancel: bail between candidate descents, so an
    // unwinding stack of nested DescendRanges drains in O(depth) loop
    // iterations once the flag flips.
    if (cancel_ != nullptr && cancel_->load(std::memory_order_relaxed)) {
      return;
    }
    if (ins.required_label >= 0 &&
        (*data_labels_)[candidates[i]] != ins.required_label) {
      continue;
    }
    f_[f_index] = candidates[i];
    Exec(pc_next);
    // Back from the subtree: re-attribute elapsing time to this ENU
    // (the loop bookkeeping between descents is its own).
    if (trace_.timed) TraceSwitch(kind);
  }
}

void PlanExecutor::ExecEnumerateBatched(const Compiled& ins,
                                        VertexSetView candidates,
                                        size_t begin, size_t end,
                                        size_t pc_next) {
  size_t i = begin;
  while (i < end) {
    if (cancel_ != nullptr && cancel_->load(std::memory_order_relaxed)) {
      return;  // don't materialize further batches for a dead query
    }
    const size_t remaining = end - i;
    size_t batch_count = remaining;
    if (expansion_ == ExpansionMode::kHybrid && governor_ != nullptr) {
      const size_t granted =
          governor_->GrantFrontierLease(remaining * sizeof(VertexId));
      batch_count = std::min(remaining, granted / sizeof(VertexId));
      if (batch_count == 0) {
        // Near the ceiling: degrade the rest of this candidate set to
        // plain DFS. The provider still prefetches under the (by now
        // narrow) governed budget — exactly the PR 3 static path.
        ++frontier_spills_;
        if (ins.prefetch_hint) {
          provider_->Prefetch(candidates.begin() + i, remaining);
        }
        DescendRange(ins, candidates.begin() + i, remaining, pc_next);
        return;
      }
    }
    const RegionBuffer::Mark mark = frontier_.mark();
    VertexId* batch = frontier_.AllocateArray(batch_count);
    std::copy(candidates.begin() + i, candidates.begin() + i + batch_count,
              batch);
    if (expansion_ == ExpansionMode::kFullBfs) {
      // Retain full partial-embedding rows, as a level-synchronous BFS
      // frontier would: |batch| copies of the bound prefix plus the
      // enumerated candidate. Never reclaimed below — this is the
      // unbounded-frontier control the stress test OOMs on purpose.
      const size_t width = f_.size();
      VertexId* rows = frontier_.AllocateArray(batch_count * width);
      for (size_t b = 0; b < batch_count; ++b) {
        VertexId* row = rows + b * width;
        std::copy(f_.begin(), f_.end(), row);
        row[static_cast<size_t>(ins.target_f)] = batch[b];
      }
    }
    ++frontier_batches_;
    if (governor_ != nullptr &&
        batch_count > governor_->base_prefetch_budget()) {
      ++frontier_widenings_;
    }
    if (ins.prefetch_hint) {
      // One wide prefetch covering the whole batch's next-level DBQ
      // keys; the batch then drains DFS-style while the fetches land.
      provider_->Prefetch(batch, batch_count);
    }
    DescendRange(ins, batch, batch_count, pc_next);
    if (expansion_ == ExpansionMode::kHybrid) frontier_.PopTo(mark);
    i += batch_count;
  }
}

TaskStats PlanExecutor::RunTask(const SearchTask& task,
                                MatchConsumer* consumer) {
  Stopwatch watch;
  const double cpu_start = ThreadCpuSeconds();
  stats_ = TaskStats();
  task_ = &task;
  consumer_ = consumer;
  trace_.timed = metrics::TracingEnabled();
  trace_.current = -1;
  if (tcache_ != nullptr) tcache_->BeginTask(task.start);
  std::fill(f_.begin(), f_.end(), kInvalidVertex);
  if (cancel_ == nullptr || !cancel_->load(std::memory_order_relaxed)) {
    Exec(0);
  }
  if (trace_.timed) TraceSwitch(-1);  // charge the tail interval
  task_ = nullptr;
  consumer_ = nullptr;
  stats_.wall_seconds = watch.ElapsedSeconds();
  if (trace_.timed) {
    task_span_us_->Record(
        static_cast<uint64_t>(stats_.wall_seconds * 1e6));
  }
  const double cpu_end = ThreadCpuSeconds();
  stats_.cpu_seconds =
      (cpu_start >= 0 && cpu_end >= 0) ? cpu_end - cpu_start : -1;
  return stats_;
}

}  // namespace benu
