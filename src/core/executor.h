#ifndef BENU_CORE_EXECUTOR_H_
#define BENU_CORE_EXECUTOR_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "core/match_consumer.h"
#include "core/region_buffer.h"
#include "graph/adj_codec.h"
#include "graph/graph.h"
#include "graph/vertex_set.h"
#include "plan/instruction.h"
#include "storage/db_cache.h"
#include "storage/triangle_cache.h"

namespace benu {

class MemoryGovernor;

namespace metrics {
class Counter;
class Histogram;
}  // namespace metrics

/// How PlanExecutor expands an ENU instruction's candidate set.
enum class ExpansionMode {
  /// Pure per-candidate DFS descent (the seed/PR 3 behaviour): prefetch
  /// the candidate slice once (clamped to the static budget), then
  /// recurse candidate by candidate.
  kDfs,
  /// Memory-governed hybrid BFS/DFS: materialize candidate batches into
  /// a region-allocated frontier buffer under governor leases, issue one
  /// wide prefetch per batch, drain the batch DFS-style while the
  /// fetches land, and pop the region. Degrades to kDfs per candidate
  /// set when the governor denies the lease (near the memory ceiling).
  /// Match counts are bit-identical to kDfs: the drain visits the same
  /// candidates in the same order, so symmetry breaking and TRC
  /// semantics are untouched.
  kHybrid,
  /// Unbounded frontier materialization: every ENU batches its whole
  /// candidate set and full partial-embedding rows are retained for the
  /// executor's lifetime, modelling the footprint of level-synchronous
  /// BFS expansion. No governor arbitration — this is the control mode
  /// the memory-ceiling stress test uses to demonstrate why the governor
  /// exists (it OOMs where kHybrid completes).
  kFullBfs,
};

/// Source of adjacency sets for DBQ instructions. The production
/// implementation routes through the worker's DB cache to the distributed
/// KV store; tests and the shared-memory baselines use the direct
/// in-memory graph.
class AdjacencyProvider {
 public:
  struct Fetch {
    /// Keeps the adjacency payload alive while the executor references
    /// it. Null on zero-copy paths (DirectAdjacencyProvider), where
    /// `view` aliases storage owned by the provider's graph.
    std::shared_ptr<const VertexSet> set;
    /// Delta+varint-encoded payload, delivered when the provider sits on
    /// a compressed transport. When non-null, `set` is null and `view`
    /// is empty: the executor either fuses the encoded form into its
    /// intersect kernels or decodes it on first plain-view use.
    std::shared_ptr<const codec::EncodedSet> encoded;
    /// The adjacency set itself; valid iff `encoded` is null. Points
    /// into `set` when `set` is non-null, otherwise into provider-owned
    /// storage that outlives the executor.
    VertexSetView view;
    bool cache_hit = false;
    /// Miss served by piggybacking on another thread's in-flight store
    /// query (single-flight coalescing): the caller waited one round
    /// trip but issued no query of its own.
    bool coalesced = false;
    size_t bytes = 0;  ///< simulated network bytes (0 on a hit)
  };

  virtual ~AdjacencyProvider() = default;
  virtual Fetch GetAdjacency(VertexId v) = 0;
  /// Hints that GetAdjacency will soon be called for (a prefix of) the
  /// given keys. Non-blocking; providers without a prefetch path ignore
  /// it. The executor issues this per ENU instruction whose enumerated
  /// vertex feeds a downstream DBQ, so level-i enumeration overlaps the
  /// level-(i+1) fetch latency.
  virtual void Prefetch(const VertexId* /*keys*/, size_t /*count*/) {}
  /// Number of data vertices (for the V(G) pseudo-operand and task
  /// generation).
  virtual size_t NumVertices() const = 0;
};

/// Adjacency provider over an in-memory graph: every fetch is "local" and
/// zero-copy — the returned view aliases the graph's CSR arrays directly,
/// with no per-vertex materialization at construction or fetch time.
class DirectAdjacencyProvider : public AdjacencyProvider {
 public:
  /// `graph` must outlive the provider and every executor using it.
  explicit DirectAdjacencyProvider(const Graph* graph) : graph_(graph) {}

  Fetch GetAdjacency(VertexId v) override;
  size_t NumVertices() const override { return graph_->NumVertices(); }

 private:
  const Graph* graph_;
};

/// Adjacency provider through a worker's local DB cache (Fig. 2): a hit is
/// free; a miss performs one remote query against the distributed store.
/// `prefetch_budget` bounds the keys forwarded per Prefetch call to the
/// cache's async pipeline; 0 disables prefetching entirely. With a
/// memory governor, the effective budget is the governor's dynamic
/// headroom-scaled value instead of the static knob. Keys clamped off by
/// the budget are counted in `executor.prefetch.dropped` — they surface
/// later as synchronous misses, so the drop is a visible signal, not a
/// silent truncation.
class CachedAdjacencyProvider : public AdjacencyProvider {
 public:
  /// `cache` (and `governor`, when given) must outlive the provider.
  explicit CachedAdjacencyProvider(DbCache* cache, size_t num_vertices,
                                   size_t prefetch_budget = 0,
                                   MemoryGovernor* governor = nullptr);

  Fetch GetAdjacency(VertexId v) override;
  void Prefetch(const VertexId* keys, size_t count) override;
  size_t NumVertices() const override { return num_vertices_; }

 private:
  DbCache* cache_;
  size_t num_vertices_;
  size_t prefetch_budget_;
  MemoryGovernor* governor_;
  metrics::Counter* dropped_counter_;
};

/// One local search task (Algorithm 2 line 4): a backtracking search
/// rooted at `start`. Task splitting (§V-B) subdivides the candidate set
/// of the second pattern vertex into `num_subtasks` equal slices; this
/// task runs slice `subtask_index`.
struct SearchTask {
  VertexId start = 0;
  uint32_t subtask_index = 0;
  uint32_t num_subtasks = 1;
  /// Incremental (S-BENU) seeding: when set, the first ENU binds exactly
  /// this vertex (if present in its candidate set) instead of walking a
  /// candidate slice, so the task enumerates only matches that map the
  /// plan's first pattern edge to the data edge (start, seed_second) —
  /// the delta-edge anchoring of plan/incremental.h. Takes precedence
  /// over subtask slicing.
  VertexId seed_second = kInvalidVertex;
};

/// Per-task execution metrics.
struct TaskStats {
  Count res_executions = 0;   ///< RES firings (helves when compressed)
  Count matches = 0;          ///< expanded matches (filled by the driver)
  Count adjacency_requests = 0;
  Count cache_hits = 0;
  Count db_queries = 0;       ///< requests that reached the remote store
  Count coalesced_fetches = 0;  ///< misses served by a sibling's query
  Count bytes_fetched = 0;
  Count intersections = 0;    ///< INT executions + TRC misses
  Count tcache_hits = 0;
  double wall_seconds = 0;
  /// CPU time of the executing thread; < 0 when the platform cannot
  /// measure it. The cluster's virtual-time model prefers this over
  /// wall_seconds so concurrent execution does not inflate task times.
  double cpu_seconds = -1;

  void Accumulate(const TaskStats& other);
};

/// Interprets a BENU execution plan over the data graph: the distributed
/// framework's inner loop (Algorithm 2 line 8). One executor instance is
/// owned by one working thread; it keeps per-instruction scratch buffers
/// that are reused across tasks.
class PlanExecutor {
 public:
  /// Validates and compiles `plan`. All pointers must outlive the
  /// executor; `tcache` may be null iff the plan has no TRC instructions.
  /// `degree_floors` (see ComputeDegreeFloors) is required iff the plan
  /// carries degree filters; `data_labels` (one label per data vertex) is
  /// required iff the plan matches a labeled pattern.
  static StatusOr<std::unique_ptr<PlanExecutor>> Create(
      const ExecutionPlan* plan, AdjacencyProvider* provider,
      TriangleCache* tcache,
      const std::vector<VertexId>* degree_floors = nullptr,
      const std::vector<int>* data_labels = nullptr);

  /// Flushes the accumulated per-instruction dispatch counts and (when
  /// tracing was enabled) exclusive self-times into the process-wide
  /// metrics registry (`executor.instr.*`, see docs/metrics.md).
  ~PlanExecutor();

  /// Runs one local search task, streaming results into `consumer`.
  /// Returns the task's metrics (matches is left 0; consumers count).
  TaskStats RunTask(const SearchTask& task, MatchConsumer* consumer);

  /// Selects the ENU expansion mode (default ExpansionMode::kDfs, the
  /// seed behaviour). `governor` arbitrates frontier leases in kHybrid
  /// and is charged for region blocks in every batched mode; it may be
  /// null (kHybrid then batches without a ceiling, like kFullBfs but
  /// with stack-disciplined reclamation). Must be called before the
  /// first RunTask.
  void ConfigureExpansion(ExpansionMode mode, MemoryGovernor* governor);

  /// Installs a cooperative cancellation flag, polled (relaxed) at every
  /// ENU descent boundary: once another thread sets it, the in-flight
  /// backtracking unwinds within a handful of candidate visits instead
  /// of running the task to completion. A cancelled RunTask returns
  /// normally with whatever partial stats/matches it produced — callers
  /// that care (the enumeration service) discard them. Null (the
  /// default) disables the poll; `cancel` must outlive every RunTask.
  void SetCancelFlag(const std::atomic<bool>* cancel) { cancel_ = cancel; }

  const ExecutionPlan& plan() const { return *plan_; }

 private:
  // Compiled form of one instruction with variable references resolved to
  // register slots.
  struct Compiled {
    InstrType type = InstrType::kIntersect;
    int target_set_slot = -1;   // set-producing instructions
    int target_f = -1;          // INI/ENU
    int source_f = -1;          // DBQ: which f to query
    int trc_neighbor_f = -1;    // TRC: the non-start f of the key
    // Set operands as slot ids; kAllVertices encoded as -1.
    std::vector<int> operand_slots;
    // Filters split by kind at compile time so ExecIntersect can fuse
    // them into the kernels: `> f` / `< f` become [lo, hi) clamps on an
    // input view (two binary searches), `≠ f` folds into the emission
    // loop. Each entry is the f index whose runtime value bounds the set.
    std::vector<int> gt_filter_f;
    std::vector<int> lt_filter_f;
    std::vector<int> ne_filter_f;
    bool first_enum = false;    // the ENU of the 2nd matching-order vertex
    // ENU whose enumerated vertex is queried by a downstream DBQ: worth
    // prefetching the candidate set before descending (computed by
    // Compile's ENU→DBQ consumption analysis).
    bool prefetch_hint = false;
    // Degree filter compiled to an id lower bound (ids realize ≺).
    VertexId min_candidate_id = 0;
    int required_label = -1;
    // RES operands: f index if >= 0, otherwise ~slot of a set operand.
    std::vector<int> res_refs;
  };

  // A set register: an owned scratch vector (INT results), a shared
  // immutable set (DBQ / TRC results), or a still-encoded DBQ payload
  // (compressed transports). An encoded slot has an empty `view` until
  // SlotView materializes it; the fused intersect kernels consume
  // `encoded` directly without ever materializing.
  struct SetSlot {
    VertexSet owned;
    std::shared_ptr<const VertexSet> shared;
    std::shared_ptr<const codec::EncodedSet> encoded;
    VertexSetView view;
  };

  PlanExecutor(const ExecutionPlan* plan, AdjacencyProvider* provider,
               TriangleCache* tcache,
               const std::vector<VertexId>* degree_floors,
               const std::vector<int>* data_labels);

  Status Compile();
  void Exec(size_t pc);
  void ExecIntersect(const Compiled& ins);
  /// The plain DFS descent loop of an ENU: label-filter, bind f, recurse
  /// — shared verbatim by the kDfs path, the batched drain and the
  /// spill-to-DFS path, so every mode enumerates identically.
  void DescendRange(const Compiled& ins, const VertexId* candidates,
                    size_t count, size_t pc_next);
  /// Hybrid/full-BFS ENU body: materialize governor-leased candidate
  /// batches into the frontier region, wide-prefetch each batch, drain
  /// it DFS-style, pop the region (kHybrid only).
  void ExecEnumerateBatched(const Compiled& ins, VertexSetView candidates,
                            size_t begin, size_t end, size_t pc_next);
  /// The slot as a plain view. A still-encoded slot is decoded here,
  /// memoized into `shared` (counted as a codec fallback decode) — the
  /// fused kernels avoid this path by consuming `encoded` directly.
  VertexSetView SlotView(int slot);
  /// The slot's encoded payload iff it has not been materialized yet
  /// (null for raw slots and for -1/V(G)); fused-kernel dispatch test.
  const codec::EncodedSet* EncodedOnly(int slot) const {
    if (slot < 0) return nullptr;
    const SetSlot& s = slots_[static_cast<size_t>(slot)];
    return s.shared == nullptr ? s.encoded.get() : nullptr;
  }

  // -------------------------------------------------------------------
  // Per-instruction tracing (DESIGN.md §2e). Dispatch counts accumulate
  // in plain per-executor arrays on every run (one array increment per
  // dispatched instruction) and are flushed to the registry when the
  // executor dies. Self-time attribution is opt-in (BENU_TRACE): each
  // dispatch boundary charges the wall time since the previous boundary
  // to the instruction that was executing, so the times are *exclusive*
  // (an ENU's time excludes the subtree it descends into) and their sum
  // equals the wall time spent inside Exec.
  static constexpr size_t kNumInstrKinds = 6;

  struct InstrTrace {
    bool timed = false;  ///< sampled from TracingEnabled per task
    int current = -1;    ///< instruction kind charged for elapsing time
    std::chrono::steady_clock::time_point last;
    uint64_t self_ns[kNumInstrKinds] = {};
    uint64_t count[kNumInstrKinds] = {};
  };

  /// Charges time since the last boundary to the current instruction and
  /// makes `kind` current (-1: stop attributing, used at task end).
  void TraceSwitch(int kind) {
    const auto now = std::chrono::steady_clock::now();
    if (trace_.current >= 0) {
      trace_.self_ns[trace_.current] += static_cast<uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              now - trace_.last)
              .count());
    }
    trace_.last = now;
    trace_.current = kind;
  }

  const ExecutionPlan* plan_;
  AdjacencyProvider* provider_;
  TriangleCache* tcache_;
  const std::vector<VertexId>* degree_floors_;
  const std::vector<int>* data_labels_;
  MatchConsumer* consumer_ = nullptr;

  std::vector<Compiled> code_;
  std::vector<VertexId> f_;       // current partial match, by pattern vertex
  std::vector<SetSlot> slots_;
  VertexSet scratch_;             // temporary for multi-operand folds
  VertexSet ne_values_;           // runtime ≠-filter values, reused
  std::vector<VertexSetView> operand_views_;  // reused multi-way sort buffer
  const SearchTask* task_ = nullptr;
  const std::atomic<bool>* cancel_ = nullptr;  // SetCancelFlag
  TaskStats stats_;
  std::vector<VertexId> report_f_;          // reused RES buffer
  std::vector<VertexSetView> report_sets_;  // reused RES buffer

  InstrTrace trace_;
  metrics::Histogram* task_span_us_ = nullptr;  // per-task wall µs (traced)

  // codec.intersect.* accumulators, flushed once in the destructor so
  // the hot loop bumps plain integers instead of registry counters.
  uint64_t fused_intersects_ = 0;
  uint64_t fallback_decodes_ = 0;

  // Hybrid expansion state (ConfigureExpansion). The frontier region
  // holds materialized candidate batches; in kFullBfs it additionally
  // retains full partial-embedding rows for the executor's lifetime.
  ExpansionMode expansion_ = ExpansionMode::kDfs;
  MemoryGovernor* governor_ = nullptr;
  RegionBuffer frontier_;
  // executor.frontier.* accumulators, flushed in the destructor like the
  // codec counters above.
  uint64_t frontier_batches_ = 0;    ///< batches materialized + drained
  uint64_t frontier_spills_ = 0;     ///< lease denials -> plain-DFS falls
  uint64_t frontier_widenings_ = 0;  ///< batches wider than the static budget
};

}  // namespace benu

#endif  // BENU_CORE_EXECUTOR_H_
