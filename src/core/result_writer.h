#ifndef BENU_CORE_RESULT_WRITER_H_
#define BENU_CORE_RESULT_WRITER_H_

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "core/match_consumer.h"
#include "plan/instruction.h"

namespace benu {

/// Streams enumeration results to a binary file, preserving VCBC
/// compression on disk — the output path of a production deployment
/// (the paper's systems write results to HDFS; VCBC's payoff is exactly
/// that the persisted codes are much smaller than the expanded matches).
///
/// File layout (all integers little-endian u32 unless noted):
///   magic "BENUR1\n" (7 bytes) + mode byte ('P' plain, 'C' compressed)
///   n, matching order (n entries)
///   #constraints, constraint pairs (for expansion of compressed codes)
///   core size, core vertices          (compressed mode only)
///   then records until EOF:
///     plain:       n vertex ids
///     compressed:  core values in matching-order core order, then for
///                  each non-core vertex (matching order): size, values
///
/// Not thread-safe: one writer per worker thread, files merged offline
/// (mirroring one output file per reducer).
class ResultFileWriter : public MatchConsumer {
 public:
  /// Opens `path` for writing and emits the header. The plan decides the
  /// mode (compressed iff plan.compressed).
  static StatusOr<std::unique_ptr<ResultFileWriter>> Open(
      const std::string& path, const ExecutionPlan& plan);

  ~ResultFileWriter() override;

  ResultFileWriter(const ResultFileWriter&) = delete;
  ResultFileWriter& operator=(const ResultFileWriter&) = delete;

  void OnMatch(const std::vector<VertexId>& f) override;
  void OnCompressedCode(const std::vector<VertexId>& f,
                        const std::vector<VertexSetView>& image_sets) override;

  /// Flushes and closes; reports any deferred I/O error. Called by the
  /// destructor if omitted (errors then only logged).
  Status Close();

  Count records_written() const { return records_; }
  Count bytes_written() const { return bytes_; }

 private:
  ResultFileWriter(std::FILE* file, bool compressed,
                   std::vector<VertexId> core, std::vector<VertexId> non_core);

  void WriteU32(uint32_t value);

  std::FILE* file_;
  bool compressed_;
  std::vector<VertexId> core_;      // core pattern vertices, matching order
  std::vector<VertexId> non_core_;  // non-core pattern vertices, same order
  Count records_ = 0;
  Count bytes_ = 0;
  bool failed_ = false;
};

/// Summary of a result file.
struct ResultFileInfo {
  bool compressed = false;
  size_t pattern_vertices = 0;
  Count records = 0;        ///< stored records (codes or matches)
  Count matches = 0;        ///< expanded match count
  Count payload_bytes = 0;  ///< file size minus header
};

/// Reads a result file, validating the format, and returns its summary.
/// For compressed files the expansion count applies the stored
/// injectivity/order constraints (exactly like CountingConsumer).
StatusOr<ResultFileInfo> ReadResultFile(const std::string& path);

/// Reads a result file and materializes every (expanded) match, indexed
/// by pattern vertex. Intended for tests and small result sets.
StatusOr<std::vector<std::vector<VertexId>>> ReadAllMatches(
    const std::string& path);

}  // namespace benu

#endif  // BENU_CORE_RESULT_WRITER_H_
