#include "core/memory_governor.h"

#include <algorithm>

#include "common/metrics.h"

namespace benu {
namespace {

/// Smallest lease worth batching: below this a frontier batch costs more
/// in bookkeeping than the wide prefetch saves, so the governor denies
/// and lets the executor run the (equally correct) plain-DFS path.
constexpr size_t kMinLeaseBytes = 256;

}  // namespace

MemoryGovernor::MemoryGovernor(size_t memory_budget_bytes,
                               size_t base_prefetch_budget,
                               size_t base_prefetch_batch_size)
    : budget_bytes_(memory_budget_bytes),
      base_prefetch_budget_(base_prefetch_budget),
      base_prefetch_batch_(
          base_prefetch_batch_size == 0 ? 1 : base_prefetch_batch_size) {
  auto& registry = metrics::MetricsRegistry::Global();
  budget_gauge_ = registry.GetGauge(
      "memory.governor.budget_bytes", "bytes",
      "configured memory ceiling of the governed run (0: no ceiling)");
  pinned_gauge_ = registry.GetGauge(
      "memory.governor.pinned_bytes", "bytes",
      "bytes currently pinned against the budget (DB-cache resident + "
      "frontier regions)");
  frontier_gauge_ = registry.GetGauge(
      "memory.governor.frontier_bytes", "bytes",
      "frontier-region component of the pinned bytes");
  high_water_gauge_ = registry.GetGauge(
      "memory.governor.lease_high_water", "bytes",
      "maximum pinned bytes ever observed by the governor");
  grants_counter_ = registry.GetCounter(
      "memory.governor.lease_grants", "1",
      "frontier leases granted (wide BFS batches allowed)");
  denials_counter_ = registry.GetCounter(
      "memory.governor.lease_denials", "1",
      "frontier leases denied near the cap (executor spilled to DFS)");
  budget_gauge_->Set(static_cast<double>(budget_bytes_));
}

uint64_t MemoryGovernor::pinned_bytes() const {
  const int64_t total = cache_bytes_.load(std::memory_order_relaxed) +
                        frontier_bytes_.load(std::memory_order_relaxed);
  return total > 0 ? static_cast<uint64_t>(total) : 0;
}

void MemoryGovernor::NotePinned() {
  const uint64_t pinned = pinned_bytes();
  pinned_gauge_->Set(static_cast<double>(pinned));
  const int64_t frontier = frontier_bytes_.load(std::memory_order_relaxed);
  frontier_gauge_->Set(static_cast<double>(frontier > 0 ? frontier : 0));
  uint64_t seen = high_water_.load(std::memory_order_relaxed);
  while (pinned > seen && !high_water_.compare_exchange_weak(
                              seen, pinned, std::memory_order_relaxed)) {
  }
  if (pinned > seen) {
    high_water_gauge_->Set(static_cast<double>(pinned));
  }
}

void MemoryGovernor::AddCacheResident(int64_t delta_bytes) {
  cache_bytes_.fetch_add(delta_bytes, std::memory_order_relaxed);
  NotePinned();
}

void MemoryGovernor::AddFrontierPinned(int64_t delta_bytes) {
  frontier_bytes_.fetch_add(delta_bytes, std::memory_order_relaxed);
  NotePinned();
}

size_t MemoryGovernor::GrantFrontierLease(size_t want_bytes) {
  if (want_bytes == 0) return 0;
  if (budget_bytes_ == 0) {
    lease_grants_.fetch_add(1, std::memory_order_relaxed);
    grants_counter_->Add(1);
    return want_bytes;
  }
  // Keep a guard band of 1/8 of the budget unleased, so concurrent cache
  // growth and sibling executors landing their own batches do not push
  // the total straight past the ceiling; split the rest conservatively
  // (an executor takes at most a quarter of the usable headroom per
  // lease — the next batch re-asks under the then-current pressure).
  const uint64_t pinned = pinned_bytes();
  const uint64_t floor = budget_bytes_ - budget_bytes_ / 8;
  const uint64_t usable = pinned < floor ? floor - pinned : 0;
  const size_t grant =
      static_cast<size_t>(std::min<uint64_t>(want_bytes, usable / 4));
  if (grant < std::min<size_t>(want_bytes, kMinLeaseBytes)) {
    lease_denials_.fetch_add(1, std::memory_order_relaxed);
    denials_counter_->Add(1);
    return 0;
  }
  lease_grants_.fetch_add(1, std::memory_order_relaxed);
  grants_counter_->Add(1);
  return grant;
}

double MemoryGovernor::Headroom() const {
  if (budget_bytes_ == 0) return 1.0;
  const uint64_t pinned = pinned_bytes();
  if (pinned >= budget_bytes_) return 0.0;
  return static_cast<double>(budget_bytes_ - pinned) /
         static_cast<double>(budget_bytes_);
}

size_t MemoryGovernor::PrefetchBudget() const {
  if (base_prefetch_budget_ == 0) return 0;
  const double widened = static_cast<double>(base_prefetch_budget_) *
                         (kMaxPrefetchWidening - 1) * Headroom();
  return base_prefetch_budget_ + static_cast<size_t>(widened);
}

size_t MemoryGovernor::PrefetchBatchSize() const {
  const double widened = static_cast<double>(base_prefetch_batch_) *
                         (kMaxBatchWidening - 1) * Headroom();
  return base_prefetch_batch_ + static_cast<size_t>(widened);
}

MemoryGovernor::Stats MemoryGovernor::stats() const {
  Stats s;
  s.budget_bytes = budget_bytes_;
  const int64_t cache = cache_bytes_.load(std::memory_order_relaxed);
  const int64_t frontier = frontier_bytes_.load(std::memory_order_relaxed);
  s.cache_bytes = cache > 0 ? static_cast<uint64_t>(cache) : 0;
  s.frontier_bytes = frontier > 0 ? static_cast<uint64_t>(frontier) : 0;
  s.pinned_bytes = pinned_bytes();
  s.high_water_bytes = high_water_.load(std::memory_order_relaxed);
  s.lease_grants = lease_grants_.load(std::memory_order_relaxed);
  s.lease_denials = lease_denials_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace benu
