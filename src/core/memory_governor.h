#ifndef BENU_CORE_MEMORY_GOVERNOR_H_
#define BENU_CORE_MEMORY_GOVERNOR_H_

#include <atomic>
#include <cstddef>
#include <cstdint>

namespace benu {

namespace metrics {
class Counter;
class Gauge;
}  // namespace metrics

/// Process-wide memory governor of the hybrid BFS/DFS execution mode
/// (DESIGN.md; HUGE-style bounded-memory scheduling). One instance per
/// cluster run, shared by every worker's DB cache, adjacency provider and
/// executor. It tracks the bytes the run has pinned — frontier regions
/// (RegionBuffer blocks) plus the DB caches' resident bytes — against a
/// configurable ceiling (`ClusterConfig::memory_budget_bytes`) and turns
/// the static prefetch knobs into headroom-scaled dynamic values:
///
///  * `GrantFrontierLease` arbitrates how many bytes an executor may
///    materialize into a frontier batch at an ENU instruction. With
///    headroom, wide BFS-style batches are granted; near the cap the
///    lease is denied and the executor degrades to plain per-candidate
///    DFS with the PR 3 static budget (graceful spill, never OOM).
///  * `PrefetchBudget` / `PrefetchBatchSize` scale the static
///    `prefetch_budget` / `prefetch_batch_size` knobs between 1× (no
///    headroom) and kMaxPrefetchWidening/kMaxBatchWidening× (idle
///    budget), so prefetch breadth follows memory pressure instead of a
///    fixed configuration value.
///
/// A budget of 0 means "no ceiling": every lease is granted in full and
/// the dynamic knobs sit at their maximum widening. All methods are
/// lock-free (plain atomics) — they are called under DB-cache shard locks
/// and from every execution thread's ENU hot loop.
class MemoryGovernor {
 public:
  /// Widening cap of the dynamic prefetch budget: with an idle budget an
  /// ENU may hand kMaxPrefetchWidening × prefetch_budget keys to the
  /// pipeline in one wide batch.
  static constexpr size_t kMaxPrefetchWidening = 8;
  /// Widening cap of the dynamic multi-get batch size: fewer round trips
  /// per prefetched key when memory is plentiful.
  static constexpr size_t kMaxBatchWidening = 4;

  struct Stats {
    uint64_t budget_bytes = 0;       ///< the configured ceiling (0: none)
    uint64_t pinned_bytes = 0;       ///< cache resident + frontier bytes
    uint64_t cache_bytes = 0;        ///< DB-cache resident component
    uint64_t frontier_bytes = 0;     ///< region-buffer component
    uint64_t high_water_bytes = 0;   ///< max pinned_bytes ever observed
    uint64_t lease_grants = 0;
    uint64_t lease_denials = 0;
  };

  /// `memory_budget_bytes` is the ceiling on pinned bytes (0: unlimited).
  /// `base_prefetch_budget` / `base_prefetch_batch_size` are the static
  /// PR 3 knobs the dynamic values widen from (and degrade back to).
  explicit MemoryGovernor(size_t memory_budget_bytes,
                          size_t base_prefetch_budget = 0,
                          size_t base_prefetch_batch_size = 16);

  MemoryGovernor(const MemoryGovernor&) = delete;
  MemoryGovernor& operator=(const MemoryGovernor&) = delete;

  /// DB caches report resident-byte deltas here on every insert/evict
  /// (and un-count survivors at teardown), so cache growth eats into the
  /// same budget frontier regions lease from.
  void AddCacheResident(int64_t delta_bytes);

  /// Region buffers report block allocation/release deltas here.
  void AddFrontierPinned(int64_t delta_bytes);

  /// Requests permission to pin `want_bytes` of frontier batch. Returns
  /// the granted byte count: `want_bytes` with ample headroom, a smaller
  /// grant as the budget fills, and 0 (a denial — spill to DFS) near the
  /// cap. Advisory: the caller pins whatever it actually allocates via
  /// AddFrontierPinned; a grant reserves nothing.
  size_t GrantFrontierLease(size_t want_bytes);

  /// Dynamic per-ENU prefetch budget, in keys: the static base scaled by
  /// current headroom up to kMaxPrefetchWidening×. 0 iff the base is 0
  /// (prefetching disabled stays disabled).
  size_t PrefetchBudget() const;

  /// Dynamic multi-get batch size for the prefetch fetchers: the static
  /// base scaled by current headroom up to kMaxBatchWidening× (never
  /// below the base — shrinking batches only adds round trips).
  size_t PrefetchBatchSize() const;

  size_t base_prefetch_budget() const { return base_prefetch_budget_; }
  uint64_t budget_bytes() const { return budget_bytes_; }
  uint64_t pinned_bytes() const;
  uint64_t high_water_bytes() const {
    return high_water_.load(std::memory_order_relaxed);
  }
  Stats stats() const;

 private:
  /// Fraction of the budget still unpinned, in [0, 1]; 1 with no ceiling.
  double Headroom() const;
  /// Refreshes the pinned/high-water gauges after a delta.
  void NotePinned();

  const uint64_t budget_bytes_;
  const size_t base_prefetch_budget_;
  const size_t base_prefetch_batch_;

  std::atomic<int64_t> cache_bytes_{0};
  std::atomic<int64_t> frontier_bytes_{0};
  std::atomic<uint64_t> high_water_{0};
  std::atomic<uint64_t> lease_grants_{0};
  std::atomic<uint64_t> lease_denials_{0};

  // memory.governor.* registry mirrors (docs/metrics.md), resolved once.
  metrics::Gauge* budget_gauge_ = nullptr;
  metrics::Gauge* pinned_gauge_ = nullptr;
  metrics::Gauge* frontier_gauge_ = nullptr;
  metrics::Gauge* high_water_gauge_ = nullptr;
  metrics::Counter* grants_counter_ = nullptr;
  metrics::Counter* denials_counter_ = nullptr;
};

}  // namespace benu

#endif  // BENU_CORE_MEMORY_GOVERNOR_H_
