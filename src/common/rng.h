#ifndef BENU_COMMON_RNG_H_
#define BENU_COMMON_RNG_H_

#include <cstdint>

namespace benu {

/// Deterministic 64-bit pseudo-random generator (xoshiro256**).
///
/// All generators, tests and benchmarks seed explicitly so that every
/// experiment in EXPERIMENTS.md is reproducible bit-for-bit.
class Rng {
 public:
  explicit Rng(uint64_t seed);

  /// Uniform 64-bit value.
  uint64_t Next();

  /// Uniform integer in [0, bound). `bound` must be > 0.
  uint64_t NextBounded(uint64_t bound);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Returns true with probability `p` (clamped to [0,1]).
  bool NextBernoulli(double p);

 private:
  uint64_t state_[4];
};

}  // namespace benu

#endif  // BENU_COMMON_RNG_H_
