#ifndef BENU_COMMON_LOGGING_H_
#define BENU_COMMON_LOGGING_H_

#include <cstdlib>
#include <sstream>
#include <string>

namespace benu {

/// Severity levels for the minimal logging facility. Benchmarks default to
/// kWarning so measurement loops stay quiet.
enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Sets the global minimum level that is actually emitted.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

/// Accumulates one log line and emits it to stderr on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostringstream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

/// Emits the accumulated message and aborts the process. Used by
/// BENU_CHECK for invariant violations: per the no-exceptions convention,
/// a broken internal invariant is a bug and terminates.
class FatalLogMessage {
 public:
  FatalLogMessage(const char* file, int line);
  [[noreturn]] ~FatalLogMessage();

  FatalLogMessage(const FatalLogMessage&) = delete;
  FatalLogMessage& operator=(const FatalLogMessage&) = delete;

  std::ostringstream& stream() { return stream_; }

 private:
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace benu

#define BENU_LOG(level)                                                \
  ::benu::internal::LogMessage(::benu::LogLevel::k##level, __FILE__,  \
                               __LINE__)                               \
      .stream()

/// Aborts with a message when `condition` is false. Always on (used for
/// internal invariants, not for user-input validation, which returns
/// Status).
#define BENU_CHECK(condition)                                       \
  if (!(condition))                                                 \
  ::benu::internal::FatalLogMessage(__FILE__, __LINE__).stream()    \
      << "Check failed: " #condition " "

#endif  // BENU_COMMON_LOGGING_H_
