#include "common/wire.h"

#include "common/logging.h"

namespace benu::wire {
namespace {

void AppendU16(uint16_t v, std::vector<uint8_t>* out) {
  out->push_back(static_cast<uint8_t>(v));
  out->push_back(static_cast<uint8_t>(v >> 8));
}

void AppendU32(uint32_t v, std::vector<uint8_t>* out) {
  out->push_back(static_cast<uint8_t>(v));
  out->push_back(static_cast<uint8_t>(v >> 8));
  out->push_back(static_cast<uint8_t>(v >> 16));
  out->push_back(static_cast<uint8_t>(v >> 24));
}

void AppendU64(uint64_t v, std::vector<uint8_t>* out) {
  AppendU32(static_cast<uint32_t>(v), out);
  AppendU32(static_cast<uint32_t>(v >> 32), out);
}

uint16_t ReadU16(const uint8_t* p) {
  return static_cast<uint16_t>(p[0]) | static_cast<uint16_t>(p[1]) << 8;
}

uint32_t ReadU32(const uint8_t* p) {
  return static_cast<uint32_t>(p[0]) | static_cast<uint32_t>(p[1]) << 8 |
         static_cast<uint32_t>(p[2]) << 16 |
         static_cast<uint32_t>(p[3]) << 24;
}

uint64_t ReadU64(const uint8_t* p) {
  return static_cast<uint64_t>(ReadU32(p)) |
         static_cast<uint64_t>(ReadU32(p + 4)) << 32;
}

Status WrongType(const char* expected, const Frame& frame) {
  if (frame.header.type == MessageType::kError) return DecodeError(frame);
  return Status::InvalidArgument(
      std::string("expected ") + expected + " frame, got type " +
      std::to_string(static_cast<int>(frame.header.type)));
}

}  // namespace

void AppendHeader(MessageType type, uint32_t aux, uint32_t payload_bytes,
                  std::vector<uint8_t>* out) {
  out->reserve(out->size() + kHeaderBytes + payload_bytes);
  AppendU32(kMagic, out);
  out->push_back(kVersion);
  out->push_back(static_cast<uint8_t>(type));
  AppendU16(0, out);  // flags
  AppendU32(aux, out);
  AppendU32(payload_bytes, out);
}

void AppendHelloRequest(std::vector<uint8_t>* out) {
  AppendHeader(MessageType::kHelloRequest, 0, 0, out);
}

void AppendHelloReply(const HelloInfo& info, std::vector<uint8_t>* out) {
  AppendHeader(MessageType::kHelloReply, 0, 40, out);
  AppendU32(info.num_vertices, out);
  AppendU32(info.num_partitions, out);
  AppendU32(info.num_servers, out);
  AppendU32(info.server_index, out);
  AppendU32(info.replica_index, out);
  AppendU32(info.num_replicas, out);
  AppendU32(info.flags, out);
  AppendU32(info.graph_hash, out);
  AppendU64(info.epoch, out);
}

namespace {

// Sets kFlagEncodedPayload on the frame whose header starts at
// `header_start` in `out` (frames are appended, so the header bytes are
// already in place).
void MarkEncoded(std::vector<uint8_t>* out, size_t header_start) {
  (*out)[header_start + 7] |= 0x80;
}

}  // namespace

void AppendGetRequest(VertexId key, std::vector<uint8_t>* out,
                      bool want_encoded) {
  const size_t start = out->size();
  AppendHeader(MessageType::kGetRequest, key, 0, out);
  if (want_encoded) MarkEncoded(out, start);
}

void AppendAdjacencyReply(VertexId key, VertexSetView adjacency,
                          std::vector<uint8_t>* out) {
  const uint32_t payload =
      static_cast<uint32_t>(adjacency.size * sizeof(VertexId));
  AppendHeader(MessageType::kGetReply, key, payload, out);
  for (VertexId v : adjacency) AppendU32(v, out);
}

void AppendEncodedAdjacencyReply(VertexId key, const codec::EncodedSet& set,
                                 std::vector<uint8_t>* out) {
  const size_t start = out->size();
  const uint32_t payload =
      static_cast<uint32_t>(sizeof(uint32_t) + set.bytes.size());
  AppendHeader(MessageType::kGetReply, key, payload, out);
  MarkEncoded(out, start);
  AppendU32(set.count, out);
  out->insert(out->end(), set.bytes.begin(), set.bytes.end());
}

void AppendBatchGetRequest(std::span<const VertexId> keys,
                           std::vector<uint8_t>* out, bool want_encoded) {
  const size_t start = out->size();
  const uint32_t payload =
      static_cast<uint32_t>(keys.size() * sizeof(VertexId));
  AppendHeader(MessageType::kBatchGetRequest,
               static_cast<uint32_t>(keys.size()), payload, out);
  if (want_encoded) MarkEncoded(out, start);
  for (VertexId v : keys) AppendU32(v, out);
}

void AppendStatsRequest(std::vector<uint8_t>* out) {
  AppendHeader(MessageType::kStatsRequest, 0, 0, out);
}

void AppendStatsReply(const ServerStats& stats, std::vector<uint8_t>* out) {
  AppendHeader(MessageType::kStatsReply, 0, 24, out);
  AppendU64(stats.requests, out);
  AppendU64(stats.keys_served, out);
  AppendU64(stats.bytes_sent, out);
}

void AppendError(StatusCode code, const std::string& message,
                 std::vector<uint8_t>* out) {
  AppendHeader(MessageType::kError, static_cast<uint32_t>(code),
               static_cast<uint32_t>(message.size()), out);
  out->insert(out->end(), message.begin(), message.end());
}

void AppendQueryRequest(const QuerySpec& spec, std::vector<uint8_t>* out) {
  const uint32_t payload = static_cast<uint32_t>(
      sizeof(uint32_t) +                                       // options
      sizeof(uint32_t) + spec.pattern_labels.size() * 4 +      // labels
      sizeof(uint32_t) + spec.pattern.size());                 // name
  AppendHeader(MessageType::kQueryRequest, 0, payload, out);
  AppendU32(spec.options, out);
  AppendU32(static_cast<uint32_t>(spec.pattern_labels.size()), out);
  for (int32_t label : spec.pattern_labels) {
    AppendU32(static_cast<uint32_t>(label), out);
  }
  AppendU32(static_cast<uint32_t>(spec.pattern.size()), out);
  out->insert(out->end(), spec.pattern.begin(), spec.pattern.end());
}

void AppendQueryResult(const QueryResultInfo& result,
                       std::vector<uint8_t>* out) {
  AppendHeader(MessageType::kQueryResult, 0, 40, out);
  AppendU64(result.matches, out);
  AppendU64(result.codes, out);
  AppendU64(result.tasks, out);
  AppendU64(result.elapsed_us, out);
  AppendU32(result.flags, out);
  AppendU32(0, out);  // reserved
}

void AppendCancelRequest(std::vector<uint8_t>* out) {
  AppendHeader(MessageType::kCancelRequest, 0, 0, out);
}

void AppendProgress(const QueryProgress& progress, std::vector<uint8_t>* out) {
  AppendHeader(MessageType::kProgress, 0, 24, out);
  AppendU64(progress.tasks_done, out);
  AppendU64(progress.tasks_total, out);
  AppendU64(progress.matches_so_far, out);
}

void AppendApplyDelta(uint64_t epoch, std::span<const EdgeDelta> ops,
                      std::vector<uint8_t>* out) {
  const uint32_t payload =
      static_cast<uint32_t>(8 + 4 + ops.size() * 12);
  AppendHeader(MessageType::kApplyDelta, 0, payload, out);
  AppendU64(epoch, out);
  AppendU32(static_cast<uint32_t>(ops.size()), out);
  for (const EdgeDelta& op : ops) {
    AppendU32(op.u, out);
    AppendU32(op.v, out);
    AppendU32(op.insert ? 1u : 0u, out);
  }
}

void AppendEpochAdvance(uint64_t epoch, std::vector<uint8_t>* out) {
  AppendHeader(MessageType::kEpochAdvance, 0, 8, out);
  AppendU64(epoch, out);
}

void AppendMatchDelta(const MatchDelta& delta, std::vector<uint8_t>* out) {
  AppendHeader(MessageType::kMatchDelta, 0, 32, out);
  AppendU64(delta.epoch, out);
  AppendU64(delta.added, out);
  AppendU64(delta.retracted, out);
  AppendU64(delta.total, out);
}

void AppendDeltaAck(uint64_t epoch, std::vector<uint8_t>* out) {
  AppendHeader(MessageType::kDeltaAck, 0, 8, out);
  AppendU64(epoch, out);
}

void SetFrameTag(std::span<uint8_t> frame, uint16_t tag) {
  BENU_CHECK(frame.size() >= kHeaderBytes) << "frame shorter than header";
  frame[6] = static_cast<uint8_t>(tag);
  // Bit 15 is the encoding flag, not part of the tag: preserve it.
  frame[7] = static_cast<uint8_t>((frame[7] & 0x80) | ((tag >> 8) & 0x7F));
}

uint16_t FrameTag(std::span<const uint8_t> frame) {
  BENU_CHECK(frame.size() >= kHeaderBytes) << "frame shorter than header";
  return ReadU16(frame.data() + 6) & kTagMask;
}

void TagFrames(std::span<uint8_t> frames, uint16_t tag) {
  while (!frames.empty()) {
    BENU_CHECK(frames.size() >= kHeaderBytes)
        << "truncated frame in reply sequence";
    const uint32_t payload = ReadU32(frames.data() + 12);
    const size_t frame_bytes = kHeaderBytes + payload;
    BENU_CHECK(frames.size() >= frame_bytes)
        << "truncated frame payload in reply sequence";
    SetFrameTag(frames, tag);
    frames = frames.subspan(frame_bytes);
  }
}

StatusOr<Frame> DecodeFrame(std::span<const uint8_t> buffer) {
  if (buffer.size() < kHeaderBytes) {
    return Status::InvalidArgument("frame shorter than header");
  }
  if (ReadU32(buffer.data()) != kMagic) {
    return Status::InvalidArgument("bad frame magic");
  }
  Frame frame;
  frame.header.version = buffer[4];
  if (frame.header.version < kMinVersion || frame.header.version > kVersion) {
    return Status::InvalidArgument(
        "unsupported wire version " + std::to_string(frame.header.version) +
        " (speaking versions " + std::to_string(kMinVersion) + ".." +
        std::to_string(kVersion) + ")");
  }
  frame.header.type = static_cast<MessageType>(buffer[5]);
  frame.header.flags = ReadU16(buffer.data() + 6);
  if (frame.header.version < 2 &&
      (frame.header.flags & kFlagEncodedPayload) != 0) {
    return Status::InvalidArgument(
        "version-1 frame carries the version-2 encoding flag");
  }
  if (frame.header.version < kMinServiceVersion &&
      (IsServiceType(frame.header.type) || IsDeltaType(frame.header.type))) {
    return Status::InvalidArgument(
        "version-" + std::to_string(frame.header.version) +
        " frame carries a version-3 service or delta type");
  }
  frame.header.aux = ReadU32(buffer.data() + 8);
  frame.header.payload_bytes = ReadU32(buffer.data() + 12);
  if (buffer.size() < kHeaderBytes + frame.header.payload_bytes) {
    return Status::InvalidArgument("frame payload truncated");
  }
  frame.payload = buffer.subspan(kHeaderBytes, frame.header.payload_bytes);
  frame.frame_bytes = kHeaderBytes + frame.header.payload_bytes;
  return frame;
}

StatusOr<VertexId> DecodeGetRequest(const Frame& frame) {
  if (frame.header.type != MessageType::kGetRequest) {
    return WrongType("kGetRequest", frame);
  }
  return static_cast<VertexId>(frame.header.aux);
}

Status DecodeAdjacencyReply(const Frame& frame, VertexId* key,
                            VertexSet* out) {
  if (frame.header.type != MessageType::kGetReply) {
    return WrongType("kGetReply", frame);
  }
  if (FrameIsEncoded(frame)) {
    // Transparent fallback so a raw-only caller still reads an encoded
    // server's replies (full materialization, mixed-version path).
    codec::EncodedSet encoded;
    BENU_RETURN_IF_ERROR(DecodeEncodedAdjacencyReply(frame, key, &encoded));
    codec::DecodeAll(encoded, out);
    return Status::OK();
  }
  if (frame.payload.size() % sizeof(VertexId) != 0) {
    return Status::InvalidArgument("adjacency payload not a multiple of 4");
  }
  *key = static_cast<VertexId>(frame.header.aux);
  const size_t count = frame.payload.size() / sizeof(VertexId);
  out->clear();
  out->reserve(count);
  for (size_t i = 0; i < count; ++i) {
    out->push_back(ReadU32(frame.payload.data() + i * sizeof(VertexId)));
  }
  return Status::OK();
}

Status DecodeEncodedAdjacencyReply(const Frame& frame, VertexId* key,
                                   codec::EncodedSet* out) {
  if (frame.header.type != MessageType::kGetReply) {
    return WrongType("kGetReply", frame);
  }
  if (!FrameIsEncoded(frame)) {
    return Status::InvalidArgument(
        "adjacency reply is raw, not delta+varint encoded");
  }
  if (frame.payload.size() < sizeof(uint32_t)) {
    return Status::InvalidArgument("encoded adjacency payload too short");
  }
  const uint32_t count = ReadU32(frame.payload.data());
  const uint8_t* stream = frame.payload.data() + sizeof(uint32_t);
  const size_t stream_bytes = frame.payload.size() - sizeof(uint32_t);
  BENU_RETURN_IF_ERROR(codec::Validate(stream, stream_bytes, count));
  *key = static_cast<VertexId>(frame.header.aux);
  out->count = count;
  out->bytes.assign(stream, stream + stream_bytes);
  return Status::OK();
}

StatusOr<std::vector<VertexId>> DecodeBatchGetRequest(const Frame& frame) {
  if (frame.header.type != MessageType::kBatchGetRequest) {
    return WrongType("kBatchGetRequest", frame);
  }
  if (frame.payload.size() % sizeof(VertexId) != 0 ||
      frame.payload.size() / sizeof(VertexId) != frame.header.aux) {
    return Status::InvalidArgument("batch payload does not match key count");
  }
  std::vector<VertexId> keys;
  keys.reserve(frame.header.aux);
  for (size_t i = 0; i < frame.header.aux; ++i) {
    keys.push_back(ReadU32(frame.payload.data() + i * sizeof(VertexId)));
  }
  return keys;
}

StatusOr<HelloInfo> DecodeHelloReply(const Frame& frame) {
  if (frame.header.type != MessageType::kHelloReply) {
    return WrongType("kHelloReply", frame);
  }
  if (frame.payload.size() != 16 && frame.payload.size() != 24 &&
      frame.payload.size() != 32 && frame.payload.size() != 40) {
    return Status::InvalidArgument(
        "hello payload must be 16, 24, 32 or 40 bytes");
  }
  HelloInfo info;
  info.num_vertices = ReadU32(frame.payload.data());
  info.num_partitions = ReadU32(frame.payload.data() + 4);
  info.num_servers = ReadU32(frame.payload.data() + 8);
  info.server_index = ReadU32(frame.payload.data() + 12);
  if (frame.payload.size() >= 24) {
    info.replica_index = ReadU32(frame.payload.data() + 16);
    info.num_replicas = ReadU32(frame.payload.data() + 20);
  }
  if (frame.payload.size() >= 32) {
    info.flags = ReadU32(frame.payload.data() + 24);
    info.graph_hash = ReadU32(frame.payload.data() + 28);
  }
  if (frame.payload.size() >= 40) {
    info.epoch = ReadU64(frame.payload.data() + 32);
  }
  return info;
}

StatusOr<ServerStats> DecodeStatsReply(const Frame& frame) {
  if (frame.header.type != MessageType::kStatsReply) {
    return WrongType("kStatsReply", frame);
  }
  if (frame.payload.size() != 24) {
    return Status::InvalidArgument("stats payload must be 24 bytes");
  }
  ServerStats stats;
  stats.requests = ReadU64(frame.payload.data());
  stats.keys_served = ReadU64(frame.payload.data() + 8);
  stats.bytes_sent = ReadU64(frame.payload.data() + 16);
  return stats;
}

Status DecodeError(const Frame& frame) {
  if (frame.header.type != MessageType::kError) {
    return Status::InvalidArgument("not an error frame");
  }
  return Status(static_cast<StatusCode>(frame.header.aux),
                std::string(frame.payload.begin(), frame.payload.end()));
}

namespace {

/// Longest pattern name a kQueryRequest may carry — generous for the
/// catalog ("clique12" is 8 bytes) while bounding what a hostile frame
/// can make the service allocate.
constexpr uint32_t kMaxPatternNameBytes = 256;
/// Most pattern labels a kQueryRequest may carry (catalog patterns have
/// at most a handful of vertices).
constexpr uint32_t kMaxPatternLabels = 64;

}  // namespace

StatusOr<QuerySpec> DecodeQueryRequest(const Frame& frame) {
  if (frame.header.type != MessageType::kQueryRequest) {
    return WrongType("kQueryRequest", frame);
  }
  const uint8_t* p = frame.payload.data();
  size_t left = frame.payload.size();
  if (left < 8) {
    return Status::InvalidArgument("query payload too short");
  }
  QuerySpec spec;
  spec.options = ReadU32(p);
  if ((spec.options & ~kQueryKnownOptions) != 0) {
    return Status::InvalidArgument("query carries unknown option bits");
  }
  const uint32_t num_labels = ReadU32(p + 4);
  p += 8;
  left -= 8;
  if (num_labels > kMaxPatternLabels) {
    return Status::InvalidArgument("query label count exceeds limit");
  }
  if (left < num_labels * 4ull + 4) {
    return Status::InvalidArgument("query label run truncated");
  }
  spec.pattern_labels.reserve(num_labels);
  for (uint32_t i = 0; i < num_labels; ++i) {
    spec.pattern_labels.push_back(static_cast<int32_t>(ReadU32(p + i * 4)));
  }
  p += num_labels * 4ull;
  left -= num_labels * 4ull;
  const uint32_t name_len = ReadU32(p);
  p += 4;
  left -= 4;
  if (name_len == 0 || name_len > kMaxPatternNameBytes) {
    return Status::InvalidArgument("query pattern name empty or oversized");
  }
  if (left != name_len) {
    return Status::InvalidArgument("query pattern name run truncated");
  }
  spec.pattern.assign(reinterpret_cast<const char*>(p), name_len);
  return spec;
}

StatusOr<QueryResultInfo> DecodeQueryResult(const Frame& frame) {
  if (frame.header.type != MessageType::kQueryResult) {
    return WrongType("kQueryResult", frame);
  }
  if (frame.payload.size() != 40) {
    return Status::InvalidArgument("query result payload must be 40 bytes");
  }
  QueryResultInfo result;
  result.matches = ReadU64(frame.payload.data());
  result.codes = ReadU64(frame.payload.data() + 8);
  result.tasks = ReadU64(frame.payload.data() + 16);
  result.elapsed_us = ReadU64(frame.payload.data() + 24);
  result.flags = ReadU32(frame.payload.data() + 32);
  return result;
}

Status DecodeCancelRequest(const Frame& frame) {
  if (frame.header.type != MessageType::kCancelRequest) {
    return WrongType("kCancelRequest", frame);
  }
  if (!frame.payload.empty()) {
    return Status::InvalidArgument("cancel request carries a payload");
  }
  return Status::OK();
}

StatusOr<QueryProgress> DecodeProgress(const Frame& frame) {
  if (frame.header.type != MessageType::kProgress) {
    return WrongType("kProgress", frame);
  }
  if (frame.payload.size() != 24) {
    return Status::InvalidArgument("progress payload must be 24 bytes");
  }
  QueryProgress progress;
  progress.tasks_done = ReadU64(frame.payload.data());
  progress.tasks_total = ReadU64(frame.payload.data() + 8);
  progress.matches_so_far = ReadU64(frame.payload.data() + 16);
  return progress;
}

Status DecodeApplyDelta(const Frame& frame, uint64_t* epoch,
                        std::vector<EdgeDelta>* ops) {
  if (frame.header.type != MessageType::kApplyDelta) {
    return WrongType("kApplyDelta", frame);
  }
  if (frame.payload.size() < 12) {
    return Status::InvalidArgument("apply-delta payload too short");
  }
  const uint32_t count = ReadU32(frame.payload.data() + 8);
  if (frame.payload.size() != 12 + static_cast<size_t>(count) * 12) {
    return Status::InvalidArgument(
        "apply-delta payload does not match its op count");
  }
  *epoch = ReadU64(frame.payload.data());
  ops->clear();
  ops->reserve(count);
  const uint8_t* p = frame.payload.data() + 12;
  for (uint32_t i = 0; i < count; ++i, p += 12) {
    const uint32_t flags = ReadU32(p + 8);
    if ((flags & ~1u) != 0) {
      return Status::InvalidArgument("apply-delta op carries unknown flags");
    }
    ops->push_back(EdgeDelta{ReadU32(p), ReadU32(p + 4), (flags & 1u) != 0});
  }
  return Status::OK();
}

StatusOr<uint64_t> DecodeEpochAdvance(const Frame& frame) {
  if (frame.header.type != MessageType::kEpochAdvance) {
    return WrongType("kEpochAdvance", frame);
  }
  if (frame.payload.size() != 8) {
    return Status::InvalidArgument("epoch-advance payload must be 8 bytes");
  }
  return ReadU64(frame.payload.data());
}

StatusOr<MatchDelta> DecodeMatchDelta(const Frame& frame) {
  if (frame.header.type != MessageType::kMatchDelta) {
    return WrongType("kMatchDelta", frame);
  }
  if (frame.payload.size() != 32) {
    return Status::InvalidArgument("match-delta payload must be 32 bytes");
  }
  MatchDelta delta;
  delta.epoch = ReadU64(frame.payload.data());
  delta.added = ReadU64(frame.payload.data() + 8);
  delta.retracted = ReadU64(frame.payload.data() + 16);
  delta.total = ReadU64(frame.payload.data() + 24);
  return delta;
}

StatusOr<uint64_t> DecodeDeltaAck(const Frame& frame) {
  if (frame.header.type != MessageType::kDeltaAck) {
    return WrongType("kDeltaAck", frame);
  }
  if (frame.payload.size() != 8) {
    return Status::InvalidArgument("delta-ack payload must be 8 bytes");
  }
  return ReadU64(frame.payload.data());
}

}  // namespace benu::wire
