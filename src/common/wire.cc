#include "common/wire.h"

#include "common/logging.h"

namespace benu::wire {
namespace {

void AppendU16(uint16_t v, std::vector<uint8_t>* out) {
  out->push_back(static_cast<uint8_t>(v));
  out->push_back(static_cast<uint8_t>(v >> 8));
}

void AppendU32(uint32_t v, std::vector<uint8_t>* out) {
  out->push_back(static_cast<uint8_t>(v));
  out->push_back(static_cast<uint8_t>(v >> 8));
  out->push_back(static_cast<uint8_t>(v >> 16));
  out->push_back(static_cast<uint8_t>(v >> 24));
}

void AppendU64(uint64_t v, std::vector<uint8_t>* out) {
  AppendU32(static_cast<uint32_t>(v), out);
  AppendU32(static_cast<uint32_t>(v >> 32), out);
}

uint16_t ReadU16(const uint8_t* p) {
  return static_cast<uint16_t>(p[0]) | static_cast<uint16_t>(p[1]) << 8;
}

uint32_t ReadU32(const uint8_t* p) {
  return static_cast<uint32_t>(p[0]) | static_cast<uint32_t>(p[1]) << 8 |
         static_cast<uint32_t>(p[2]) << 16 |
         static_cast<uint32_t>(p[3]) << 24;
}

uint64_t ReadU64(const uint8_t* p) {
  return static_cast<uint64_t>(ReadU32(p)) |
         static_cast<uint64_t>(ReadU32(p + 4)) << 32;
}

Status WrongType(const char* expected, const Frame& frame) {
  if (frame.header.type == MessageType::kError) return DecodeError(frame);
  return Status::InvalidArgument(
      std::string("expected ") + expected + " frame, got type " +
      std::to_string(static_cast<int>(frame.header.type)));
}

}  // namespace

void AppendHeader(MessageType type, uint32_t aux, uint32_t payload_bytes,
                  std::vector<uint8_t>* out) {
  out->reserve(out->size() + kHeaderBytes + payload_bytes);
  AppendU32(kMagic, out);
  out->push_back(kVersion);
  out->push_back(static_cast<uint8_t>(type));
  AppendU16(0, out);  // flags
  AppendU32(aux, out);
  AppendU32(payload_bytes, out);
}

void AppendHelloRequest(std::vector<uint8_t>* out) {
  AppendHeader(MessageType::kHelloRequest, 0, 0, out);
}

void AppendHelloReply(const HelloInfo& info, std::vector<uint8_t>* out) {
  AppendHeader(MessageType::kHelloReply, 0, 24, out);
  AppendU32(info.num_vertices, out);
  AppendU32(info.num_partitions, out);
  AppendU32(info.num_servers, out);
  AppendU32(info.server_index, out);
  AppendU32(info.replica_index, out);
  AppendU32(info.num_replicas, out);
}

void AppendGetRequest(VertexId key, std::vector<uint8_t>* out) {
  AppendHeader(MessageType::kGetRequest, key, 0, out);
}

void AppendAdjacencyReply(VertexId key, VertexSetView adjacency,
                          std::vector<uint8_t>* out) {
  const uint32_t payload =
      static_cast<uint32_t>(adjacency.size * sizeof(VertexId));
  AppendHeader(MessageType::kGetReply, key, payload, out);
  for (VertexId v : adjacency) AppendU32(v, out);
}

void AppendBatchGetRequest(std::span<const VertexId> keys,
                           std::vector<uint8_t>* out) {
  const uint32_t payload =
      static_cast<uint32_t>(keys.size() * sizeof(VertexId));
  AppendHeader(MessageType::kBatchGetRequest,
               static_cast<uint32_t>(keys.size()), payload, out);
  for (VertexId v : keys) AppendU32(v, out);
}

void AppendStatsRequest(std::vector<uint8_t>* out) {
  AppendHeader(MessageType::kStatsRequest, 0, 0, out);
}

void AppendStatsReply(const ServerStats& stats, std::vector<uint8_t>* out) {
  AppendHeader(MessageType::kStatsReply, 0, 24, out);
  AppendU64(stats.requests, out);
  AppendU64(stats.keys_served, out);
  AppendU64(stats.bytes_sent, out);
}

void AppendError(StatusCode code, const std::string& message,
                 std::vector<uint8_t>* out) {
  AppendHeader(MessageType::kError, static_cast<uint32_t>(code),
               static_cast<uint32_t>(message.size()), out);
  out->insert(out->end(), message.begin(), message.end());
}

void SetFrameTag(std::span<uint8_t> frame, uint16_t tag) {
  BENU_CHECK(frame.size() >= kHeaderBytes) << "frame shorter than header";
  frame[6] = static_cast<uint8_t>(tag);
  frame[7] = static_cast<uint8_t>(tag >> 8);
}

uint16_t FrameTag(std::span<const uint8_t> frame) {
  BENU_CHECK(frame.size() >= kHeaderBytes) << "frame shorter than header";
  return ReadU16(frame.data() + 6);
}

void TagFrames(std::span<uint8_t> frames, uint16_t tag) {
  while (!frames.empty()) {
    BENU_CHECK(frames.size() >= kHeaderBytes)
        << "truncated frame in reply sequence";
    const uint32_t payload = ReadU32(frames.data() + 12);
    const size_t frame_bytes = kHeaderBytes + payload;
    BENU_CHECK(frames.size() >= frame_bytes)
        << "truncated frame payload in reply sequence";
    SetFrameTag(frames, tag);
    frames = frames.subspan(frame_bytes);
  }
}

StatusOr<Frame> DecodeFrame(std::span<const uint8_t> buffer) {
  if (buffer.size() < kHeaderBytes) {
    return Status::InvalidArgument("frame shorter than header");
  }
  if (ReadU32(buffer.data()) != kMagic) {
    return Status::InvalidArgument("bad frame magic");
  }
  Frame frame;
  frame.header.version = buffer[4];
  if (frame.header.version != kVersion) {
    return Status::InvalidArgument(
        "unsupported wire version " + std::to_string(frame.header.version) +
        " (speaking version " + std::to_string(kVersion) + ")");
  }
  frame.header.type = static_cast<MessageType>(buffer[5]);
  frame.header.flags = ReadU16(buffer.data() + 6);
  frame.header.aux = ReadU32(buffer.data() + 8);
  frame.header.payload_bytes = ReadU32(buffer.data() + 12);
  if (buffer.size() < kHeaderBytes + frame.header.payload_bytes) {
    return Status::InvalidArgument("frame payload truncated");
  }
  frame.payload = buffer.subspan(kHeaderBytes, frame.header.payload_bytes);
  frame.frame_bytes = kHeaderBytes + frame.header.payload_bytes;
  return frame;
}

StatusOr<VertexId> DecodeGetRequest(const Frame& frame) {
  if (frame.header.type != MessageType::kGetRequest) {
    return WrongType("kGetRequest", frame);
  }
  return static_cast<VertexId>(frame.header.aux);
}

Status DecodeAdjacencyReply(const Frame& frame, VertexId* key,
                            VertexSet* out) {
  if (frame.header.type != MessageType::kGetReply) {
    return WrongType("kGetReply", frame);
  }
  if (frame.payload.size() % sizeof(VertexId) != 0) {
    return Status::InvalidArgument("adjacency payload not a multiple of 4");
  }
  *key = static_cast<VertexId>(frame.header.aux);
  const size_t count = frame.payload.size() / sizeof(VertexId);
  out->clear();
  out->reserve(count);
  for (size_t i = 0; i < count; ++i) {
    out->push_back(ReadU32(frame.payload.data() + i * sizeof(VertexId)));
  }
  return Status::OK();
}

StatusOr<std::vector<VertexId>> DecodeBatchGetRequest(const Frame& frame) {
  if (frame.header.type != MessageType::kBatchGetRequest) {
    return WrongType("kBatchGetRequest", frame);
  }
  if (frame.payload.size() % sizeof(VertexId) != 0 ||
      frame.payload.size() / sizeof(VertexId) != frame.header.aux) {
    return Status::InvalidArgument("batch payload does not match key count");
  }
  std::vector<VertexId> keys;
  keys.reserve(frame.header.aux);
  for (size_t i = 0; i < frame.header.aux; ++i) {
    keys.push_back(ReadU32(frame.payload.data() + i * sizeof(VertexId)));
  }
  return keys;
}

StatusOr<HelloInfo> DecodeHelloReply(const Frame& frame) {
  if (frame.header.type != MessageType::kHelloReply) {
    return WrongType("kHelloReply", frame);
  }
  if (frame.payload.size() != 16 && frame.payload.size() != 24) {
    return Status::InvalidArgument("hello payload must be 16 or 24 bytes");
  }
  HelloInfo info;
  info.num_vertices = ReadU32(frame.payload.data());
  info.num_partitions = ReadU32(frame.payload.data() + 4);
  info.num_servers = ReadU32(frame.payload.data() + 8);
  info.server_index = ReadU32(frame.payload.data() + 12);
  if (frame.payload.size() == 24) {
    info.replica_index = ReadU32(frame.payload.data() + 16);
    info.num_replicas = ReadU32(frame.payload.data() + 20);
  }
  return info;
}

StatusOr<ServerStats> DecodeStatsReply(const Frame& frame) {
  if (frame.header.type != MessageType::kStatsReply) {
    return WrongType("kStatsReply", frame);
  }
  if (frame.payload.size() != 24) {
    return Status::InvalidArgument("stats payload must be 24 bytes");
  }
  ServerStats stats;
  stats.requests = ReadU64(frame.payload.data());
  stats.keys_served = ReadU64(frame.payload.data() + 8);
  stats.bytes_sent = ReadU64(frame.payload.data() + 16);
  return stats;
}

Status DecodeError(const Frame& frame) {
  if (frame.header.type != MessageType::kError) {
    return Status::InvalidArgument("not an error frame");
  }
  return Status(static_cast<StatusCode>(frame.header.aux),
                std::string(frame.payload.begin(), frame.payload.end()));
}

}  // namespace benu::wire
