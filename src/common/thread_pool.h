#ifndef BENU_COMMON_THREAD_POOL_H_
#define BENU_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace benu {

namespace metrics {
class Counter;
}  // namespace metrics

/// Fixed-size worker pool. Workers in the cluster simulator use it to run
/// local search tasks concurrently; the shared DB cache is exercised by
/// multiple threads through it in tests. Publishes
/// `thread_pool.tasks_executed` / `thread_pool.threads_spawned` into the
/// process-wide metrics registry.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (at least 1).
  explicit ThreadPool(size_t num_threads);

  /// Equivalent to Shutdown().
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task. Aborts (BENU_CHECK) if shutdown has already begun:
  /// a task submitted during teardown would silently never run, which is
  /// exactly the race that bites when a pool outlives its producers.
  void Submit(std::function<void()> task);

  /// Blocks until every submitted task has finished.
  void Wait();

  /// Begins shutdown, drains outstanding work and joins all workers.
  /// Idempotent; called by the destructor. After it returns, Submit
  /// aborts instead of enqueueing into a dead pool.
  void Shutdown();

  size_t num_threads() const { return threads_.size(); }

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable work_available_;
  std::condition_variable all_done_;
  std::deque<std::function<void()>> queue_;
  size_t in_flight_ = 0;
  bool shutting_down_ = false;
  metrics::Counter* tasks_metric_ = nullptr;
  std::vector<std::thread> threads_;
};

}  // namespace benu

#endif  // BENU_COMMON_THREAD_POOL_H_
