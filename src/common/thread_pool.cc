#include "common/thread_pool.h"

#include <utility>

#include "common/logging.h"
#include "common/metrics.h"

namespace benu {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) num_threads = 1;
  auto& registry = metrics::MetricsRegistry::Global();
  tasks_metric_ = registry.GetCounter("thread_pool.tasks_executed", "1",
                                      "tasks run to completion by any pool");
  registry
      .GetCounter("thread_pool.threads_spawned", "1",
                  "worker threads created across all pools")
      ->Add(num_threads);
  threads_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() { Shutdown(); }

void ThreadPool::Shutdown() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    shutting_down_ = true;
  }
  work_available_.notify_all();
  for (auto& t : threads_) {
    if (t.joinable()) t.join();
  }
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    BENU_CHECK(!shutting_down_)
        << "ThreadPool::Submit called after shutdown began; the task "
           "would never run";
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  work_available_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_available_.wait(
          lock, [this] { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutting down
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
    tasks_metric_->Add(1);
    {
      std::unique_lock<std::mutex> lock(mu_);
      if (--in_flight_ == 0) all_done_.notify_all();
    }
  }
}

}  // namespace benu
