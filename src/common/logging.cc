#include "common/logging.h"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace benu {
namespace {

std::atomic<LogLevel> g_log_level{LogLevel::kInfo};

// Serializes whole lines so concurrent worker threads do not interleave.
std::mutex& LogMutex() {
  static std::mutex* mu = new std::mutex();
  return *mu;
}

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

void Emit(LogLevel level, const std::string& text) {
  std::lock_guard<std::mutex> lock(LogMutex());
  std::fprintf(stderr, "[%s] %s\n", LevelName(level), text.c_str());
}

}  // namespace

void SetLogLevel(LogLevel level) { g_log_level.store(level); }
LogLevel GetLogLevel() { return g_log_level.load(); }

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  stream_ << file << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  if (level_ >= GetLogLevel()) Emit(level_, stream_.str());
}

FatalLogMessage::FatalLogMessage(const char* file, int line) {
  stream_ << file << ":" << line << "] ";
}

FatalLogMessage::~FatalLogMessage() {
  Emit(LogLevel::kError, stream_.str());
  std::abort();
}

}  // namespace internal
}  // namespace benu
