#ifndef BENU_COMMON_METRICS_H_
#define BENU_COMMON_METRICS_H_

#include <atomic>
#include <bit>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace benu::metrics {

// ---------------------------------------------------------------------
// Unified metrics layer (DESIGN.md §2e). Every subsystem publishes into
// one process-wide MetricsRegistry; MetricsRegistry::Global().Snapshot()
// is the single export path — embedded in every BENCH_*.json by
// bench_util.h, printed by examples/metrics_dump, and diffed by tests
// against the legacy per-subsystem stats structs (which remain as thin
// per-instance views; the registry holds the process-wide totals).
//
// Instrument names are dotted lowercase paths ("db_cache.hits"); the
// reference table of every name, type, unit and emitter lives in
// docs/metrics.md, and metrics_test.cc fails if an instrument shows up
// in a snapshot without being documented there.

/// Kinds of instruments a registry holds.
enum class InstrumentKind { kCounter, kGauge, kHistogram };

namespace internal {

/// Stable small id of the calling thread, used to spread hot-path
/// updates over cache-line-padded shards so concurrent workers do not
/// bounce one counter line between cores.
size_t ThreadShard();

inline constexpr size_t kShards = 16;

}  // namespace internal

/// Monotonic counter. Add is lock-free and wait-free: a relaxed
/// fetch_add on a per-thread-sharded, cache-line-padded cell, so hot
/// paths (one bump per cache lookup / store query) do not serialize and
/// bench numbers do not regress. Value() sums the shards; it is
/// linearizable only against quiesced writers, which is how every
/// reader in this repo uses it (snapshots are taken after runs join).
class Counter {
 public:
  void Add(uint64_t delta = 1) {
    shards_[internal::ThreadShard()].value.fetch_add(
        delta, std::memory_order_relaxed);
  }

  uint64_t Value() const {
    uint64_t total = 0;
    for (const auto& shard : shards_) {
      total += shard.value.load(std::memory_order_relaxed);
    }
    return total;
  }

  void Reset() {
    for (auto& shard : shards_) {
      shard.value.store(0, std::memory_order_relaxed);
    }
  }

 private:
  struct alignas(64) Cell {
    std::atomic<uint64_t> value{0};
  };
  Cell shards_[internal::kShards];
};

/// Last-writer-wins double value (queue depths, configuration echoes,
/// per-run seconds). Set/Add/Value are lock-free.
class Gauge {
 public:
  void Set(double value) { value_.store(value, std::memory_order_relaxed); }

  void Add(double delta) {
    double current = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(current, current + delta,
                                         std::memory_order_relaxed)) {
    }
  }

  double Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { Set(0.0); }

 private:
  std::atomic<double> value_{0.0};
};

/// Log-bucketed histogram over non-negative integer samples (typically
/// microseconds or bytes). Bucket b holds samples whose bit width is b,
/// i.e. values in [2^(b-1), 2^b); bucket 0 holds the value 0. Record is
/// lock-free (relaxed atomics; count/sum sharded like Counter), so it is
/// safe on hot paths; the 65 fixed buckets keep snapshots allocation-free
/// until export.
class Histogram {
 public:
  static constexpr size_t kNumBuckets = 65;

  void Record(uint64_t value) {
    buckets_[BucketOf(value)].fetch_add(1, std::memory_order_relaxed);
    count_.Add(1);
    sum_.Add(value);
  }

  uint64_t Count() const { return count_.Value(); }
  uint64_t Sum() const { return sum_.Value(); }
  uint64_t BucketCount(size_t b) const {
    return buckets_[b].load(std::memory_order_relaxed);
  }

  /// Inclusive upper bound of bucket b (2^b - 1; bucket 0 holds only 0).
  static uint64_t BucketUpperBound(size_t b) {
    return b >= 64 ? ~uint64_t{0} : (uint64_t{1} << b) - 1;
  }

  static size_t BucketOf(uint64_t value) {
    return static_cast<size_t>(std::bit_width(value));
  }

  void Reset() {
    for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
    count_.Reset();
    sum_.Reset();
  }

 private:
  std::atomic<uint64_t> buckets_[kNumBuckets] = {};
  Counter count_;
  Counter sum_;
};

/// One instrument in a snapshot, fully decoupled from the live registry.
struct SnapshotEntry {
  std::string name;
  InstrumentKind kind = InstrumentKind::kCounter;
  std::string unit;
  std::string help;
  uint64_t counter_value = 0;                          // kCounter
  double gauge_value = 0;                              // kGauge
  uint64_t hist_count = 0;                             // kHistogram
  uint64_t hist_sum = 0;                               // kHistogram
  /// Non-empty buckets as (inclusive upper bound, count) pairs.
  std::vector<std::pair<uint64_t, uint64_t>> hist_buckets;
};

/// Point-in-time copy of every registered instrument, sorted by name (so
/// two snapshots of identical runs serialize identically — the
/// determinism tests diff the JSON strings byte for byte).
struct MetricsSnapshot {
  std::vector<SnapshotEntry> entries;

  /// JSON object {"counters": {...}, "gauges": {...}, "histograms":
  /// {...}}; `indent` spaces prefix every emitted line (so the object
  /// embeds cleanly in the bench JSON files). Deterministic: key order
  /// is name order, no timestamps.
  std::string ToJson(int indent = 0) const;

  /// Human-readable fixed-width table, one instrument per line:
  /// name, type, unit, value (count/sum/mean for histograms).
  std::string ToTable() const;
};

/// Process-wide instrument registry. Get* registers on first use (the
/// unit/help of the first call stick) and returns a pointer that stays
/// valid for the process lifetime — resolve once, keep the pointer, and
/// update through it on hot paths; the registry mutex guards only
/// registration and snapshotting, never updates.
class MetricsRegistry {
 public:
  static MetricsRegistry& Global();

  Counter* GetCounter(std::string_view name, std::string_view unit = "1",
                      std::string_view help = "");
  Gauge* GetGauge(std::string_view name, std::string_view unit = "1",
                  std::string_view help = "");
  Histogram* GetHistogram(std::string_view name,
                          std::string_view unit = "us",
                          std::string_view help = "");

  MetricsSnapshot Snapshot() const;

  /// Zeroes every instrument (registrations stay). Benches and tests
  /// call this between runs so snapshots cover exactly one run.
  void ResetValues();

 private:
  struct Instrument {
    InstrumentKind kind;
    std::string unit;
    std::string help;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  Instrument* FindOrCreate(std::string_view name, InstrumentKind kind,
                           std::string_view unit, std::string_view help);

  mutable std::mutex mu_;
  std::map<std::string, Instrument, std::less<>> instruments_;
};

// ---------------------------------------------------------------------
// Tracing. Span timing costs a clock read per boundary, which is too hot
// for the executor's per-instruction dispatch, so it is opt-in: off by
// default, enabled by BENU_TRACE=1 in the environment or
// SetTracingEnabled(true). Counters stay on unconditionally.

/// True when span tracing is enabled (env BENU_TRACE=1 or an explicit
/// SetTracingEnabled). Cheap: one relaxed atomic load.
bool TracingEnabled();

/// Overrides the BENU_TRACE environment default for this process.
void SetTracingEnabled(bool enabled);

/// RAII span: records the enclosed wall time into a histogram (in the
/// histogram's unit, microseconds by default) and optionally bumps a
/// paired counter by the elapsed time in nanoseconds. No-op (no clock
/// read) when tracing is disabled at construction.
class ScopedSpan {
 public:
  /// `hist` gets one sample of elapsed µs on destruction; `total_ns`,
  /// when non-null, accumulates elapsed ns (a cheap "phase total" that
  /// nested spans can share).
  explicit ScopedSpan(Histogram* hist, Counter* total_ns = nullptr)
      : hist_(hist), total_ns_(total_ns), armed_(TracingEnabled()) {
    if (armed_) start_ = std::chrono::steady_clock::now();
  }

  ~ScopedSpan() {
    if (!armed_) return;
    const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                        std::chrono::steady_clock::now() - start_)
                        .count();
    if (hist_ != nullptr) {
      hist_->Record(static_cast<uint64_t>(ns / 1000));
    }
    if (total_ns_ != nullptr) total_ns_->Add(static_cast<uint64_t>(ns));
  }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  Histogram* hist_;
  Counter* total_ns_;
  bool armed_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace benu::metrics

#endif  // BENU_COMMON_METRICS_H_
