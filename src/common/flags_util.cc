#include "common/flags_util.h"

#include <libgen.h>
#include <signal.h>
#include <sys/prctl.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/logging.h"

namespace benu::flags {

const char* Value(int argc, char** argv, const char* name,
                  const char* fallback) {
  const std::string prefix = std::string(name) + "=";
  const char* found = fallback;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      found = argv[i] + prefix.size();
    }
  }
  return found;
}

std::vector<std::string> Values(int argc, char** argv, const char* name) {
  const std::string prefix = std::string(name) + "=";
  std::vector<std::string> values;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      values.emplace_back(argv[i] + prefix.size());
    }
  }
  return values;
}

bool Has(int argc, char** argv, const char* name) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], name) == 0) return true;
  }
  return false;
}

size_t SizeValue(int argc, char** argv, const char* name, size_t fallback) {
  const char* v = Value(argc, argv, name, nullptr);
  return v == nullptr ? fallback : std::strtoul(v, nullptr, 10);
}

int IntValue(int argc, char** argv, const char* name, int fallback) {
  const char* v = Value(argc, argv, name, nullptr);
  return v == nullptr ? fallback : std::atoi(v);
}

long long Int64Value(int argc, char** argv, const char* name,
                     long long fallback) {
  const char* v = Value(argc, argv, name, nullptr);
  return v == nullptr ? fallback : std::atoll(v);
}

double DoubleValue(int argc, char** argv, const char* name, double fallback) {
  const char* v = Value(argc, argv, name, nullptr);
  return v == nullptr ? fallback : std::atof(v);
}

bool BoolValue(int argc, char** argv, const char* name, bool fallback) {
  const char* v = Value(argc, argv, name, nullptr);
  return v == nullptr ? fallback : std::atoi(v) != 0;
}

uint16_t PortValue(int argc, char** argv, const char* name,
                   uint16_t fallback) {
  const char* v = Value(argc, argv, name, nullptr);
  return v == nullptr
             ? fallback
             : static_cast<uint16_t>(std::strtoul(v, nullptr, 10));
}

std::vector<ServerProcess>& SpawnedRegistry() {
  static std::vector<ServerProcess> registry;
  return registry;
}

void KillServers(std::vector<ServerProcess>& servers) {
  for (auto& s : servers) {
    if (s.pid > 0) kill(s.pid, SIGTERM);
  }
  for (auto& s : servers) {
    if (s.pid > 0) {
      waitpid(s.pid, nullptr, 0);
      s.pid = -1;  // reaped: the atexit handler must not touch it again
    }
  }
}

void CleanupSpawnedAtExit() { KillServers(SpawnedRegistry()); }

std::string SelfDir() {
  char buf[4096];
  const ssize_t n = readlink("/proc/self/exe", buf, sizeof(buf) - 1);
  BENU_CHECK(n > 0) << "readlink /proc/self/exe failed";
  buf[n] = '\0';
  return dirname(buf);
}

ServerProcess SpawnKvServer(const std::string& binary,
                            const KvServerSpawnOptions& options) {
  int pipefd[2];
  BENU_CHECK(pipe(pipefd) == 0) << "pipe failed";
  const pid_t parent = getpid();
  const pid_t pid = fork();
  BENU_CHECK(pid >= 0) << "fork failed";
  if (pid == 0) {
    // Die with the spawner: atexit does not run when a BENU_CHECK aborts
    // the parent, but the kernel delivers this signal unconditionally.
    prctl(PR_SET_PDEATHSIG, SIGKILL);
    if (getppid() != parent) _exit(127);  // parent died before the prctl
    close(pipefd[0]);
    dup2(pipefd[1], STDOUT_FILENO);
    close(pipefd[1]);
    const std::string graph_arg = "--graph=" + options.graph_spec;
    const std::string part_arg =
        "--partitions=" + std::to_string(options.partitions);
    const std::string servers_arg =
        "--servers=" + std::to_string(options.servers);
    const std::string index_arg = "--index=" + std::to_string(options.index);
    const std::string replica_arg =
        "--replica=" + std::to_string(options.replica);
    const std::string replicas_arg =
        "--replicas=" + std::to_string(options.replicas);
    const std::string compress_arg =
        std::string("--compress=") + (options.compress ? "1" : "0");
    const std::string deltas_arg =
        std::string("--deltas=") + (options.support_deltas ? "1" : "0");
    const std::string relabel_arg =
        std::string("--relabel=") + (options.relabel ? "1" : "0");
    execl(binary.c_str(), binary.c_str(), graph_arg.c_str(), part_arg.c_str(),
          servers_arg.c_str(), index_arg.c_str(), replica_arg.c_str(),
          replicas_arg.c_str(), compress_arg.c_str(), deltas_arg.c_str(),
          relabel_arg.c_str(), "--port=0", static_cast<char*>(nullptr));
    std::perror("execl benu_kv_server");
    _exit(127);
  }
  close(pipefd[1]);
  FILE* out = fdopen(pipefd[0], "r");
  BENU_CHECK(out != nullptr) << "fdopen failed";
  ServerProcess proc;
  proc.pid = pid;
  char line[256];
  while (std::fgets(line, sizeof(line), out) != nullptr) {
    unsigned port = 0;
    if (std::sscanf(line, "LISTENING port=%u", &port) == 1) {
      proc.port = static_cast<uint16_t>(port);
      break;
    }
  }
  BENU_CHECK(proc.port != 0)
      << "server " << options.index << " did not report a listening port";
  // Leave the pipe open: the child's stdout stays valid for its
  // lifetime, and we only needed the first line.
  return proc;
}

}  // namespace benu::flags
