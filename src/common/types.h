#ifndef BENU_COMMON_TYPES_H_
#define BENU_COMMON_TYPES_H_

#include <cstdint>
#include <limits>

namespace benu {

/// Identifier of a vertex in either the data graph or the pattern graph.
/// Vertices are consecutively numbered starting from 0.
using VertexId = uint32_t;

/// Sentinel meaning "no vertex" / "unmapped".
inline constexpr VertexId kInvalidVertex =
    std::numeric_limits<VertexId>::max();

/// Count of matches, edges, bytes, etc. 64-bit because match counts of
/// small patterns in large graphs routinely exceed 2^32 (Table I of the
/// paper reports up to 2.7e12 matches).
using Count = uint64_t;

/// One mutation of a dynamic data graph: insert (insert=true) or delete
/// the undirected edge {u, v}. The unit of the S-BENU incremental path:
/// edge streams are batched into epochs of EdgeDelta ops
/// (storage/versioned_store.h, distributed/dynamic_runner.h) and
/// replicated to delta-capable KV servers via kApplyDelta frames.
struct EdgeDelta {
  VertexId u = 0;
  VertexId v = 0;
  bool insert = true;

  bool operator==(const EdgeDelta&) const = default;
};

}  // namespace benu

#endif  // BENU_COMMON_TYPES_H_
