#ifndef BENU_COMMON_TYPES_H_
#define BENU_COMMON_TYPES_H_

#include <cstdint>
#include <limits>

namespace benu {

/// Identifier of a vertex in either the data graph or the pattern graph.
/// Vertices are consecutively numbered starting from 0.
using VertexId = uint32_t;

/// Sentinel meaning "no vertex" / "unmapped".
inline constexpr VertexId kInvalidVertex =
    std::numeric_limits<VertexId>::max();

/// Count of matches, edges, bytes, etc. 64-bit because match counts of
/// small patterns in large graphs routinely exceed 2^32 (Table I of the
/// paper reports up to 2.7e12 matches).
using Count = uint64_t;

}  // namespace benu

#endif  // BENU_COMMON_TYPES_H_
