#ifndef BENU_COMMON_STOPWATCH_H_
#define BENU_COMMON_STOPWATCH_H_

#include <chrono>

namespace benu {

/// Wall-clock stopwatch used by the executor and benchmarks.
class Stopwatch {
 public:
  /// Starts running immediately.
  Stopwatch();

  /// Restarts from zero.
  void Restart();

  /// Elapsed wall time in seconds since construction/Restart.
  double ElapsedSeconds() const;

  /// Elapsed wall time in microseconds.
  int64_t ElapsedMicros() const;

 private:
  std::chrono::steady_clock::time_point start_;
};

/// CPU time consumed by the calling thread, in seconds, or a negative
/// value when the platform offers no per-thread CPU clock. The executor
/// stamps tasks with it so the compute times feeding the virtual-time
/// model are immune to preemption when many OS threads share few cores.
double ThreadCpuSeconds();

}  // namespace benu

#endif  // BENU_COMMON_STOPWATCH_H_
