#ifndef BENU_COMMON_STATUS_H_
#define BENU_COMMON_STATUS_H_

#include <optional>
#include <string>
#include <utility>

namespace benu {

/// Canonical error codes, modelled after the RocksDB/Arrow convention of
/// returning status objects instead of throwing exceptions across module
/// boundaries.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kFailedPrecondition,
  kResourceExhausted,
  kInternal,
  kIoError,
  /// The peer is gone (connection closed/refused); retrying against a
  /// replica may succeed. Distinct from kIoError so retry logic can tell
  /// a closed connection from a corrupt one.
  kUnavailable,
  /// An operation ran out of its time budget (socket timeouts, request
  /// deadlines).
  kDeadlineExceeded,
};

/// A lightweight success-or-error result. Cheap to copy in the OK case.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Human-readable rendering, e.g. "InvalidArgument: bad vertex id".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// A value-or-error result in the spirit of absl::StatusOr.
template <typename T>
class StatusOr {
 public:
  /// Implicit construction from a value or from an error status keeps
  /// call sites terse (`return value;` / `return Status::NotFound(...)`).
  StatusOr(T value) : status_(Status::OK()), value_(std::move(value)) {}
  StatusOr(Status status) : status_(std::move(status)) {}

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& { return *value_; }
  T& value() & { return *value_; }
  T&& value() && { return *std::move(value_); }

  const T& operator*() const& { return *value_; }
  T& operator*() & { return *value_; }
  const T* operator->() const { return &*value_; }
  T* operator->() { return &*value_; }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace benu

/// Propagates a non-OK status to the caller.
#define BENU_RETURN_IF_ERROR(expr)             \
  do {                                         \
    ::benu::Status _st = (expr);               \
    if (!_st.ok()) return _st;                 \
  } while (0)

#endif  // BENU_COMMON_STATUS_H_
