#include "common/stopwatch.h"

namespace benu {

Stopwatch::Stopwatch() { Restart(); }

void Stopwatch::Restart() { start_ = std::chrono::steady_clock::now(); }

double Stopwatch::ElapsedSeconds() const {
  return static_cast<double>(ElapsedMicros()) * 1e-6;
}

int64_t Stopwatch::ElapsedMicros() const {
  auto now = std::chrono::steady_clock::now();
  return std::chrono::duration_cast<std::chrono::microseconds>(now - start_)
      .count();
}

}  // namespace benu
