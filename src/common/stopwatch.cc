#include "common/stopwatch.h"

#if defined(__unix__) || defined(__APPLE__)
#include <time.h>
#endif

namespace benu {

Stopwatch::Stopwatch() { Restart(); }

void Stopwatch::Restart() { start_ = std::chrono::steady_clock::now(); }

double Stopwatch::ElapsedSeconds() const {
  return static_cast<double>(ElapsedMicros()) * 1e-6;
}

int64_t Stopwatch::ElapsedMicros() const {
  auto now = std::chrono::steady_clock::now();
  return std::chrono::duration_cast<std::chrono::microseconds>(now - start_)
      .count();
}

double ThreadCpuSeconds() {
#if defined(CLOCK_THREAD_CPUTIME_ID)
  struct timespec ts;
  if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) != 0) return -1.0;
  return static_cast<double>(ts.tv_sec) +
         static_cast<double>(ts.tv_nsec) * 1e-9;
#else
  return -1.0;
#endif
}

}  // namespace benu
