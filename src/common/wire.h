#ifndef BENU_COMMON_WIRE_H_
#define BENU_COMMON_WIRE_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "graph/adj_codec.h"
#include "graph/vertex_set.h"

namespace benu::wire {

// ---------------------------------------------------------------------
// Versioned wire protocol of the distributed KV store (DESIGN.md §2f).
// Every message is one length-prefixed frame; a transport moves frames,
// a KvPartitionServer interprets them. The loopback transport runs this
// protocol in-process, the TCP transport over real sockets — both speak
// exactly these bytes, so a client cannot tell the backends apart except
// by latency.
//
// Frame layout (little-endian):
//
//   offset  0  u32  magic          0x42454E55 ("BENU")
//   offset  4  u8   version        kVersion
//   offset  5  u8   type           MessageType
//   offset  6  u16  flags          request tag (see below; 0 = untagged)
//   offset  8  u32  aux            type-specific immediate (see below)
//   offset 12  u32  payload_bytes  bytes following the header
//   offset 16  ...  payload
//
// Request tags: the low 15 bits of the `flags` field carry an opaque
// per-request tag chosen by the client (`aux` already carries key/count
// semantics). A server echoes the request's tag into every reply frame
// it emits for that request, so a pipelined client with several requests
// in flight on one connection can demux replies and detect connection
// desync (a reply whose tag does not match the oldest in-flight request
// means the stream is corrupt and the connection must be torn down).
// Strict request/reply clients send tag 0 and ignore reply tags.
//
// Encoding flag (version 2): bit 15 of `flags` (kFlagEncodedPayload).
// On a get/batch-get request it asks the server for delta+varint encoded
// payloads (graph/adj_codec.h); on a kGetReply it marks the payload as
// `u32 count` followed by the varint stream instead of raw u32 entries.
// A server that does not encode simply answers with raw replies (flag
// clear), and clients dispatch on the reply's flag — so a version-2
// client interoperates with a raw-only server and vice versa. Version-1
// frames (still decoded) predate the flag and must leave bit 15 clear.
//
// Query frames (version 3): the resident enumeration service
// (src/service/) multiplexes many pattern queries over one connection
// using the same 15-bit tag scheme the pipelined transport uses — the
// tag names the query, chosen by the client, and every kQueryResult /
// kProgress / kError frame the service emits for that query echoes it.
// The four service frame types (kQueryRequest, kQueryResult,
// kCancelRequest, kProgress) only exist in version 3; a v1/v2 frame
// carrying one of them is rejected, while all v1/v2 KV frames are still
// decoded unchanged.
//
// The 16-byte header is deliberately the simulator's modeled per-reply
// overhead (DistributedKvStore::kReplyOverheadBytes): a raw adjacency
// reply frame for a set of n entries occupies exactly 16 + 4n bytes, and
// an encoded one 16 + 4 + |varint stream| bytes, so byte accounting is
// identical whether replies are modeled (simulated transport) or
// actually framed (loopback/TCP).

inline constexpr uint32_t kMagic = 0x42454E55;  // "BENU"
inline constexpr uint8_t kVersion = 3;
/// Oldest version this build still decodes (raw-only frames).
inline constexpr uint8_t kMinVersion = 1;
/// Frames of the service types below require at least this version.
inline constexpr uint8_t kMinServiceVersion = 3;
inline constexpr size_t kHeaderBytes = 16;

/// Bit 15 of `flags`: the frame's adjacency payload is delta+varint
/// encoded (replies) / encoded replies are requested (requests).
inline constexpr uint16_t kFlagEncodedPayload = 0x8000;
/// Low 15 bits of `flags`: the request tag.
inline constexpr uint16_t kTagMask = 0x7FFF;

enum class MessageType : uint8_t {
  /// Handshake. Request: empty. Reply payload: u32 num_vertices,
  /// u32 num_partitions, u32 num_servers, u32 server_index, then (since
  /// the replica extension) u32 replica_index, u32 num_replicas, then
  /// (since version 2) u32 capability flags (kHelloSupportsEncoded) and
  /// u32 graph content hash, then (since the versioned-store extension)
  /// u64 graph epoch. Decoders accept the legacy 16-, 24- and 32-byte
  /// payloads and default to replica 0 of 1, no capabilities, hash 0,
  /// epoch 0.
  kHelloRequest = 1,
  kHelloReply = 2,
  /// Single get. Request: aux = key, empty payload (set
  /// kFlagEncodedPayload to ask for an encoded reply). Reply (kGetReply):
  /// aux = key, payload = adjacency entries (u32 each, sorted), or with
  /// kFlagEncodedPayload set: u32 count + delta+varint stream.
  kGetRequest = 3,
  kGetReply = 4,
  /// Batched multi-get. Request: aux = key count, payload = keys (u32
  /// each). Reply: `aux` consecutive kGetReply frames, in request key
  /// order — there is no outer envelope, so the accounted reply bytes
  /// are exactly the per-key frame sizes.
  kBatchGetRequest = 5,
  /// Server-side serving statistics. Request: empty. Reply payload:
  /// u64 requests, u64 keys_served, u64 bytes_sent.
  kStatsRequest = 6,
  kStatsReply = 7,
  /// Error reply: aux = StatusCode, payload = UTF-8 message.
  kError = 8,
  /// Pattern query (version 3, service protocol). The frame tag names
  /// the query on this connection. Request payload: u32 option flags
  /// (kQueryVcbc | kQueryDegreeFilter | kQueryWantProgress), u32 label
  /// count + i32 pattern labels, u32 name length + pattern name bytes
  /// (a graph/patterns.h catalog name, e.g. "q5" or "clique4").
  kQueryRequest = 9,
  /// Terminal answer to a kQueryRequest, echoing its tag. Payload:
  /// u64 matches, u64 embedding codes, u64 tasks executed, u64 elapsed
  /// microseconds, u32 result flags (kQueryResultCancelled |
  /// kQueryResultPlanCacheHit), u32 reserved (0). A rejected or failed
  /// query is answered with a tagged kError frame instead.
  kQueryResult = 10,
  /// Cancels the in-flight query named by the frame tag (version 3).
  /// Empty payload, aux = 0. Always answered — by the cancelled query's
  /// kQueryResult (kQueryResultCancelled set) if it was in flight, or by
  /// a tagged kError (kNotFound) if no such query exists. Cancelling a
  /// query that completes concurrently is benign: the client just sees
  /// the uncancelled result.
  kCancelRequest = 11,
  /// Periodic progress report for a running query that asked for them
  /// (kQueryWantProgress), echoing the query tag. Payload: u64 tasks
  /// done, u64 tasks total, u64 matches so far. Purely informational;
  /// frequency is a service knob, and the terminal kQueryResult may
  /// arrive without a final progress frame.
  kProgress = 12,
  /// Replicates one epoch's edge-delta batch to a delta-capable server
  /// (version 3, versioned-store protocol). Payload: u64 target epoch
  /// (must be the server's epoch + 1), u32 op count, then per op
  /// u32 u, u32 v, u32 flags (bit 0 set = insert, clear = delete).
  /// Answered with kDeltaAck (or kError on an epoch mismatch). Only sent
  /// to servers whose hello carries kHelloSupportsDeltas.
  kApplyDelta = 13,
  /// Commits a previously pushed delta batch: the server's epoch becomes
  /// the payload's u64 epoch (must be its current epoch + 1). Answered
  /// with kDeltaAck. Subsequent hellos attest the new epoch.
  kEpochAdvance = 14,
  /// Streamed match-set delta of a kQuerySubscribe query, echoing its
  /// tag (service → client, one per epoch advance). Payload: u64 epoch,
  /// u64 matches added, u64 matches retracted, u64 maintained total.
  kMatchDelta = 15,
  /// Acknowledges a kApplyDelta or kEpochAdvance, echoing the request
  /// tag. Payload: u64 epoch (the server's epoch after the request).
  kDeltaAck = 16,
};

/// True for the frame types introduced by the version-3 service
/// protocol; DecodeFrame rejects these on frames older than
/// kMinServiceVersion.
constexpr bool IsServiceType(MessageType type) {
  return type == MessageType::kQueryRequest ||
         type == MessageType::kQueryResult ||
         type == MessageType::kCancelRequest ||
         type == MessageType::kProgress;
}

/// True for the frame types introduced by the version-3 versioned-store
/// (dynamic graph) extension; like the service types, DecodeFrame
/// rejects these on frames older than kMinServiceVersion. A v2 peer can
/// therefore never be confused by a delta frame — clients check
/// kHelloSupportsDeltas before sending any.
constexpr bool IsDeltaType(MessageType type) {
  return type == MessageType::kApplyDelta ||
         type == MessageType::kEpochAdvance ||
         type == MessageType::kMatchDelta ||
         type == MessageType::kDeltaAck;
}

struct FrameHeader {
  uint8_t version = kVersion;
  MessageType type = MessageType::kError;
  uint16_t flags = 0;
  uint32_t aux = 0;
  uint32_t payload_bytes = 0;
};

/// One decoded frame: a validated header plus a non-owning view of the
/// payload. `frame_bytes` is the total wire footprint (header + payload).
struct Frame {
  FrameHeader header;
  std::span<const uint8_t> payload;
  size_t frame_bytes = 0;
};

/// Handshake contents served by kHelloReply. A "replica" is one of
/// several interchangeable server processes serving the same partition
/// share (server_index); clients fail over between replicas of a group.
/// HelloInfo capability bit: the server pre-encodes its partition share
/// and answers kFlagEncodedPayload requests with encoded replies.
inline constexpr uint32_t kHelloSupportsEncoded = 1u << 0;
/// HelloInfo capability bit: the peer is a resident enumeration service
/// (src/service/) that accepts kQueryRequest / kCancelRequest frames.
/// KV servers leave it clear; a client must not send query frames to a
/// peer whose hello lacks it.
inline constexpr uint32_t kHelloSupportsQueries = 1u << 1;
/// HelloInfo capability bit: the peer tracks graph epochs and accepts
/// kApplyDelta / kEpochAdvance frames (the versioned-store protocol).
/// A peer without the bit (a v2 / pre-delta build) is served base
/// payloads only and never sees a delta frame — the client-side overlay
/// composes snapshots, so results are identical either way; the
/// downgrade only loses the server-side epoch attestation.
inline constexpr uint32_t kHelloSupportsDeltas = 1u << 2;

// --- service protocol payloads (version 3) ----------------------------

/// kQueryRequest option flag: run the VCBC compression rewrite on the
/// generated plan (plan/plan_search.h `apply_vcbc`).
inline constexpr uint32_t kQueryVcbc = 1u << 0;
/// kQueryRequest option flag: apply degree-based candidate filters
/// (plan/filters.h) during execution.
inline constexpr uint32_t kQueryDegreeFilter = 1u << 1;
/// kQueryRequest option flag: the client wants kProgress frames while
/// the query runs.
inline constexpr uint32_t kQueryWantProgress = 1u << 2;
/// kQueryRequest option flag: subscribe mode. The query's kQueryResult
/// reports the baseline count at the current epoch but is NOT terminal:
/// the service then streams one kMatchDelta frame per epoch advance
/// until the client cancels (terminal kQueryResult) or disconnects.
/// Incompatible with kQueryVcbc (delta maintenance needs full matches).
inline constexpr uint32_t kQuerySubscribe = 1u << 3;
/// All option bits a version-3 decoder understands; unknown bits are
/// rejected so a future flag cannot be silently ignored.
inline constexpr uint32_t kQueryKnownOptions =
    kQueryVcbc | kQueryDegreeFilter | kQueryWantProgress | kQuerySubscribe;

/// kQueryResult flag: the query was cancelled before completing; the
/// carried counts cover only the tasks that finished and must not be
/// interpreted as the pattern's match count.
inline constexpr uint32_t kQueryResultCancelled = 1u << 0;
/// kQueryResult flag: the service reused a cached execution plan
/// instead of running plan search for this query.
inline constexpr uint32_t kQueryResultPlanCacheHit = 1u << 1;

/// A pattern query as carried by kQueryRequest. `pattern` is a
/// graph/patterns.h catalog name; `pattern_labels`, when non-empty,
/// must hold one label per pattern vertex and switches the service to
/// the labeled plan/matching path.
struct QuerySpec {
  std::string pattern;
  std::vector<int32_t> pattern_labels;
  /// kQueryVcbc | kQueryDegreeFilter | kQueryWantProgress.
  uint32_t options = 0;

  bool want_vcbc() const { return (options & kQueryVcbc) != 0; }
  bool want_degree_filter() const {
    return (options & kQueryDegreeFilter) != 0;
  }
  bool want_progress() const { return (options & kQueryWantProgress) != 0; }
  bool want_subscribe() const { return (options & kQuerySubscribe) != 0; }
  bool operator==(const QuerySpec&) const = default;
};

/// Terminal query outcome as carried by kQueryResult.
struct QueryResultInfo {
  uint64_t matches = 0;     ///< embeddings found (partial if cancelled)
  uint64_t codes = 0;       ///< VCBC embedding codes emitted
  uint64_t tasks = 0;       ///< search tasks executed to completion
  uint64_t elapsed_us = 0;  ///< admission-to-completion wall time
  /// kQueryResultCancelled | kQueryResultPlanCacheHit.
  uint32_t flags = 0;

  bool cancelled() const { return (flags & kQueryResultCancelled) != 0; }
  bool plan_cache_hit() const {
    return (flags & kQueryResultPlanCacheHit) != 0;
  }
  bool operator==(const QueryResultInfo&) const = default;
};

/// In-flight progress as carried by kProgress.
struct QueryProgress {
  uint64_t tasks_done = 0;
  uint64_t tasks_total = 0;
  uint64_t matches_so_far = 0;
  bool operator==(const QueryProgress&) const = default;
};

/// One epoch's maintained-match-set delta as carried by kMatchDelta
/// (subscribe mode). `total` is the maintained count after the epoch:
/// previous total + added − retracted, which a client can verify.
struct MatchDelta {
  uint64_t epoch = 0;
  uint64_t added = 0;
  uint64_t retracted = 0;
  uint64_t total = 0;
  bool operator==(const MatchDelta&) const = default;
};

struct HelloInfo {
  uint32_t num_vertices = 0;
  uint32_t num_partitions = 0;
  uint32_t num_servers = 0;
  uint32_t server_index = 0;
  uint32_t replica_index = 0;
  uint32_t num_replicas = 1;
  /// Capability bits (kHelloSupportsEncoded). 0 on legacy payloads.
  uint32_t flags = 0;
  /// Folded Graph::ContentHash() of the graph the server serves, so a
  /// client that relabels locally can verify both sides agree on vertex
  /// ids. 0 = unknown (legacy payloads).
  uint32_t graph_hash = 0;
  /// Graph epoch of the server's versioned store: the number of delta
  /// batches committed via kEpochAdvance. The attested graph identity is
  /// the pair (graph_hash, epoch) — graph_hash names the base labeling,
  /// epoch the delta state on top of it. 0 on legacy (≤32-byte) payloads
  /// and on servers without kHelloSupportsDeltas.
  uint64_t epoch = 0;
};

/// Server-side serving statistics carried by kStatsReply.
struct ServerStats {
  uint64_t requests = 0;     ///< request frames handled
  uint64_t keys_served = 0;  ///< adjacency keys returned
  uint64_t bytes_sent = 0;   ///< reply bytes emitted
};

/// Wire footprint of a raw adjacency reply carrying `set_size` entries:
/// kHeaderBytes + 4·set_size. Matches DistributedKvStore::ReplyBytes.
constexpr size_t AdjacencyReplyBytes(size_t set_size) {
  return kHeaderBytes + set_size * sizeof(VertexId);
}

/// Wire footprint of an encoded adjacency reply whose varint stream is
/// `encoded_bytes` long: header + u32 count + stream.
constexpr size_t EncodedAdjacencyReplyBytes(size_t encoded_bytes) {
  return kHeaderBytes + sizeof(uint32_t) + encoded_bytes;
}

// --- encoding (append one full frame to `out`) ------------------------

void AppendHeader(MessageType type, uint32_t aux, uint32_t payload_bytes,
                  std::vector<uint8_t>* out);
void AppendHelloRequest(std::vector<uint8_t>* out);
void AppendHelloReply(const HelloInfo& info, std::vector<uint8_t>* out);
/// `want_encoded` sets kFlagEncodedPayload on the request.
void AppendGetRequest(VertexId key, std::vector<uint8_t>* out,
                      bool want_encoded = false);
void AppendAdjacencyReply(VertexId key, VertexSetView adjacency,
                          std::vector<uint8_t>* out);
/// Encoded adjacency reply: kGetReply with kFlagEncodedPayload set,
/// payload = u32 count + the varint stream.
void AppendEncodedAdjacencyReply(VertexId key, const codec::EncodedSet& set,
                                 std::vector<uint8_t>* out);
void AppendBatchGetRequest(std::span<const VertexId> keys,
                           std::vector<uint8_t>* out,
                           bool want_encoded = false);
void AppendStatsRequest(std::vector<uint8_t>* out);
void AppendStatsReply(const ServerStats& stats, std::vector<uint8_t>* out);
void AppendError(StatusCode code, const std::string& message,
                 std::vector<uint8_t>* out);
/// Service frames (version 3). The query tag is stamped separately with
/// SetFrameTag, exactly like KV request tags.
void AppendQueryRequest(const QuerySpec& spec, std::vector<uint8_t>* out);
void AppendQueryResult(const QueryResultInfo& result,
                       std::vector<uint8_t>* out);
void AppendCancelRequest(std::vector<uint8_t>* out);
void AppendProgress(const QueryProgress& progress, std::vector<uint8_t>* out);
/// Versioned-store frames (version 3). AppendApplyDelta carries one
/// epoch's edge ops; `epoch` is the target epoch the batch produces.
void AppendApplyDelta(uint64_t epoch, std::span<const EdgeDelta> ops,
                      std::vector<uint8_t>* out);
void AppendEpochAdvance(uint64_t epoch, std::vector<uint8_t>* out);
void AppendMatchDelta(const MatchDelta& delta, std::vector<uint8_t>* out);
void AppendDeltaAck(uint64_t epoch, std::vector<uint8_t>* out);

// --- request tags -----------------------------------------------------

/// Stamps the tag (low 15 bits of the flags field) of the single frame
/// at the front of `frame`, preserving the encoding flag. The frame must
/// at least hold a full header; tags wider than kTagMask are truncated.
void SetFrameTag(std::span<uint8_t> frame, uint16_t tag);

/// Reads the tag of the frame at the front of `frame` (encoding flag
/// masked out).
uint16_t FrameTag(std::span<const uint8_t> frame);

/// Stamps `tag` into every frame of a well-formed frame sequence (used
/// by servers to echo a request's tag onto all of its reply frames).
/// The sequence must consist of complete frames — it is the server's own
/// freshly encoded output, so a malformed sequence is a bug (CHECK).
void TagFrames(std::span<uint8_t> frames, uint16_t tag);

// --- decoding ---------------------------------------------------------

/// Decodes the frame at the front of `buffer` (which may hold a sequence
/// of frames). Fails on short buffers, wrong magic, versions outside
/// [kMinVersion, kVersion], a version-1 frame carrying the (version-2)
/// encoding flag, or a pre-version-3 frame carrying a service or
/// versioned-store (delta) type.
StatusOr<Frame> DecodeFrame(std::span<const uint8_t> buffer);

/// True iff the frame's payload is delta+varint encoded (version-2
/// encoding flag). Callers dispatch between DecodeAdjacencyReply and
/// DecodeEncodedAdjacencyReply on this.
inline bool FrameIsEncoded(const Frame& frame) {
  return (frame.header.flags & kFlagEncodedPayload) != 0;
}

/// Typed payload decoders. Each validates the frame's type and payload
/// shape. DecodeAdjacencyReply appends the entries to `*out` (cleared
/// first) and returns the key via `*key`.
StatusOr<VertexId> DecodeGetRequest(const Frame& frame);
Status DecodeAdjacencyReply(const Frame& frame, VertexId* key,
                            VertexSet* out);
/// Decodes an encoded adjacency reply without materializing the values:
/// the varint stream is structurally validated (codec::Validate) and
/// copied into `out`. Rejects raw (unflagged) replies.
Status DecodeEncodedAdjacencyReply(const Frame& frame, VertexId* key,
                                   codec::EncodedSet* out);
StatusOr<std::vector<VertexId>> DecodeBatchGetRequest(const Frame& frame);
StatusOr<HelloInfo> DecodeHelloReply(const Frame& frame);
StatusOr<ServerStats> DecodeStatsReply(const Frame& frame);
/// Converts a kError frame back into the Status it carries.
Status DecodeError(const Frame& frame);
/// Service payload decoders (version 3). DecodeQueryRequest validates
/// shape only — option bits outside kQueryKnownOptions, truncated label
/// or name runs, and oversized names are rejected here; whether the
/// pattern name exists in the catalog is the service's business.
StatusOr<QuerySpec> DecodeQueryRequest(const Frame& frame);
StatusOr<QueryResultInfo> DecodeQueryResult(const Frame& frame);
/// Validates a kCancelRequest (empty payload); the target query is the
/// frame's tag.
Status DecodeCancelRequest(const Frame& frame);
StatusOr<QueryProgress> DecodeProgress(const Frame& frame);
/// Versioned-store payload decoders (version 3). DecodeApplyDelta
/// returns the target epoch via `*epoch` and appends the ops to `*ops`
/// (cleared first); it bounds the op count against the payload size, so
/// a hostile count cannot over-allocate.
Status DecodeApplyDelta(const Frame& frame, uint64_t* epoch,
                        std::vector<EdgeDelta>* ops);
StatusOr<uint64_t> DecodeEpochAdvance(const Frame& frame);
StatusOr<MatchDelta> DecodeMatchDelta(const Frame& frame);
StatusOr<uint64_t> DecodeDeltaAck(const Frame& frame);

}  // namespace benu::wire

#endif  // BENU_COMMON_WIRE_H_
