#ifndef BENU_COMMON_WIRE_H_
#define BENU_COMMON_WIRE_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "graph/vertex_set.h"

namespace benu::wire {

// ---------------------------------------------------------------------
// Versioned wire protocol of the distributed KV store (DESIGN.md §2f).
// Every message is one length-prefixed frame; a transport moves frames,
// a KvPartitionServer interprets them. The loopback transport runs this
// protocol in-process, the TCP transport over real sockets — both speak
// exactly these bytes, so a client cannot tell the backends apart except
// by latency.
//
// Frame layout (little-endian):
//
//   offset  0  u32  magic          0x42454E55 ("BENU")
//   offset  4  u8   version        kVersion
//   offset  5  u8   type           MessageType
//   offset  6  u16  flags          request tag (see below; 0 = untagged)
//   offset  8  u32  aux            type-specific immediate (see below)
//   offset 12  u32  payload_bytes  bytes following the header
//   offset 16  ...  payload
//
// Request tags: the formerly reserved `flags` field carries an opaque
// per-request tag chosen by the client (`aux` already carries key/count
// semantics). A server echoes the request's tag into every reply frame
// it emits for that request, so a pipelined client with several requests
// in flight on one connection can demux replies and detect connection
// desync (a reply whose tag does not match the oldest in-flight request
// means the stream is corrupt and the connection must be torn down).
// Strict request/reply clients send tag 0 and ignore reply tags — the
// protocol version is unchanged.
//
// The 16-byte header is deliberately the simulator's modeled per-reply
// overhead (DistributedKvStore::kReplyOverheadBytes): an adjacency reply
// frame for a set of n entries occupies exactly 16 + 4n bytes, so byte
// accounting is identical whether replies are modeled (simulated
// transport) or actually framed (loopback/TCP).

inline constexpr uint32_t kMagic = 0x42454E55;  // "BENU"
inline constexpr uint8_t kVersion = 1;
inline constexpr size_t kHeaderBytes = 16;

enum class MessageType : uint8_t {
  /// Handshake. Request: empty. Reply payload: u32 num_vertices,
  /// u32 num_partitions, u32 num_servers, u32 server_index, and (since
  /// the replica extension) u32 replica_index, u32 num_replicas. Decoders
  /// accept the legacy 16-byte payload and default to replica 0 of 1.
  kHelloRequest = 1,
  kHelloReply = 2,
  /// Single get. Request: aux = key, empty payload. Reply (kGetReply):
  /// aux = key, payload = adjacency entries (u32 each, sorted).
  kGetRequest = 3,
  kGetReply = 4,
  /// Batched multi-get. Request: aux = key count, payload = keys (u32
  /// each). Reply: `aux` consecutive kGetReply frames, in request key
  /// order — there is no outer envelope, so the accounted reply bytes
  /// are exactly the per-key frame sizes.
  kBatchGetRequest = 5,
  /// Server-side serving statistics. Request: empty. Reply payload:
  /// u64 requests, u64 keys_served, u64 bytes_sent.
  kStatsRequest = 6,
  kStatsReply = 7,
  /// Error reply: aux = StatusCode, payload = UTF-8 message.
  kError = 8,
};

struct FrameHeader {
  uint8_t version = kVersion;
  MessageType type = MessageType::kError;
  uint16_t flags = 0;
  uint32_t aux = 0;
  uint32_t payload_bytes = 0;
};

/// One decoded frame: a validated header plus a non-owning view of the
/// payload. `frame_bytes` is the total wire footprint (header + payload).
struct Frame {
  FrameHeader header;
  std::span<const uint8_t> payload;
  size_t frame_bytes = 0;
};

/// Handshake contents served by kHelloReply. A "replica" is one of
/// several interchangeable server processes serving the same partition
/// share (server_index); clients fail over between replicas of a group.
struct HelloInfo {
  uint32_t num_vertices = 0;
  uint32_t num_partitions = 0;
  uint32_t num_servers = 0;
  uint32_t server_index = 0;
  uint32_t replica_index = 0;
  uint32_t num_replicas = 1;
};

/// Server-side serving statistics carried by kStatsReply.
struct ServerStats {
  uint64_t requests = 0;     ///< request frames handled
  uint64_t keys_served = 0;  ///< adjacency keys returned
  uint64_t bytes_sent = 0;   ///< reply bytes emitted
};

/// Wire footprint of an adjacency reply carrying `set_size` entries:
/// kHeaderBytes + 4·set_size. Matches DistributedKvStore::ReplyBytes.
constexpr size_t AdjacencyReplyBytes(size_t set_size) {
  return kHeaderBytes + set_size * sizeof(VertexId);
}

// --- encoding (append one full frame to `out`) ------------------------

void AppendHeader(MessageType type, uint32_t aux, uint32_t payload_bytes,
                  std::vector<uint8_t>* out);
void AppendHelloRequest(std::vector<uint8_t>* out);
void AppendHelloReply(const HelloInfo& info, std::vector<uint8_t>* out);
void AppendGetRequest(VertexId key, std::vector<uint8_t>* out);
void AppendAdjacencyReply(VertexId key, VertexSetView adjacency,
                          std::vector<uint8_t>* out);
void AppendBatchGetRequest(std::span<const VertexId> keys,
                           std::vector<uint8_t>* out);
void AppendStatsRequest(std::vector<uint8_t>* out);
void AppendStatsReply(const ServerStats& stats, std::vector<uint8_t>* out);
void AppendError(StatusCode code, const std::string& message,
                 std::vector<uint8_t>* out);

// --- request tags -----------------------------------------------------

/// Stamps the tag (flags field) of the single frame at the front of
/// `frame`. The frame must at least hold a full header.
void SetFrameTag(std::span<uint8_t> frame, uint16_t tag);

/// Reads the tag of the frame at the front of `frame`.
uint16_t FrameTag(std::span<const uint8_t> frame);

/// Stamps `tag` into every frame of a well-formed frame sequence (used
/// by servers to echo a request's tag onto all of its reply frames).
/// The sequence must consist of complete frames — it is the server's own
/// freshly encoded output, so a malformed sequence is a bug (CHECK).
void TagFrames(std::span<uint8_t> frames, uint16_t tag);

// --- decoding ---------------------------------------------------------

/// Decodes the frame at the front of `buffer` (which may hold a sequence
/// of frames). Fails on short buffers, wrong magic or unknown version.
StatusOr<Frame> DecodeFrame(std::span<const uint8_t> buffer);

/// Typed payload decoders. Each validates the frame's type and payload
/// shape. DecodeAdjacencyReply appends the entries to `*out` (cleared
/// first) and returns the key via `*key`.
StatusOr<VertexId> DecodeGetRequest(const Frame& frame);
Status DecodeAdjacencyReply(const Frame& frame, VertexId* key,
                            VertexSet* out);
StatusOr<std::vector<VertexId>> DecodeBatchGetRequest(const Frame& frame);
StatusOr<HelloInfo> DecodeHelloReply(const Frame& frame);
StatusOr<ServerStats> DecodeStatsReply(const Frame& frame);
/// Converts a kError frame back into the Status it carries.
Status DecodeError(const Frame& frame);

}  // namespace benu::wire

#endif  // BENU_COMMON_WIRE_H_
