#include "common/metrics.h"

#include <cstdio>
#include <cstdlib>

namespace benu::metrics {
namespace internal {

size_t ThreadShard() {
  static std::atomic<size_t> next{0};
  thread_local const size_t shard =
      next.fetch_add(1, std::memory_order_relaxed) % kShards;
  return shard;
}

}  // namespace internal

namespace {

std::atomic<bool> g_tracing{[] {
  const char* env = std::getenv("BENU_TRACE");
  return env != nullptr && env[0] == '1';
}()};

void AppendIndent(std::string* out, int indent) {
  out->append(static_cast<size_t>(indent), ' ');
}

void AppendUint(std::string* out, uint64_t value) {
  char buffer[24];
  std::snprintf(buffer, sizeof(buffer), "%llu",
                static_cast<unsigned long long>(value));
  out->append(buffer);
}

void AppendDouble(std::string* out, double value) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.9g", value);
  out->append(buffer);
}

}  // namespace

bool TracingEnabled() { return g_tracing.load(std::memory_order_relaxed); }

void SetTracingEnabled(bool enabled) {
  g_tracing.store(enabled, std::memory_order_relaxed);
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

MetricsRegistry::Instrument* MetricsRegistry::FindOrCreate(
    std::string_view name, InstrumentKind kind, std::string_view unit,
    std::string_view help) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = instruments_.find(name);
  if (it == instruments_.end()) {
    Instrument instrument;
    instrument.kind = kind;
    instrument.unit = std::string(unit);
    instrument.help = std::string(help);
    switch (kind) {
      case InstrumentKind::kCounter:
        instrument.counter = std::make_unique<Counter>();
        break;
      case InstrumentKind::kGauge:
        instrument.gauge = std::make_unique<Gauge>();
        break;
      case InstrumentKind::kHistogram:
        instrument.histogram = std::make_unique<Histogram>();
        break;
    }
    it = instruments_.emplace(std::string(name), std::move(instrument))
             .first;
  }
  return &it->second;
}

Counter* MetricsRegistry::GetCounter(std::string_view name,
                                     std::string_view unit,
                                     std::string_view help) {
  Instrument* instrument =
      FindOrCreate(name, InstrumentKind::kCounter, unit, help);
  return instrument->counter.get();
}

Gauge* MetricsRegistry::GetGauge(std::string_view name,
                                 std::string_view unit,
                                 std::string_view help) {
  Instrument* instrument =
      FindOrCreate(name, InstrumentKind::kGauge, unit, help);
  return instrument->gauge.get();
}

Histogram* MetricsRegistry::GetHistogram(std::string_view name,
                                         std::string_view unit,
                                         std::string_view help) {
  Instrument* instrument =
      FindOrCreate(name, InstrumentKind::kHistogram, unit, help);
  return instrument->histogram.get();
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MetricsSnapshot snapshot;
  std::lock_guard<std::mutex> lock(mu_);
  snapshot.entries.reserve(instruments_.size());
  for (const auto& [name, instrument] : instruments_) {
    SnapshotEntry entry;
    entry.name = name;
    entry.kind = instrument.kind;
    entry.unit = instrument.unit;
    entry.help = instrument.help;
    switch (instrument.kind) {
      case InstrumentKind::kCounter:
        entry.counter_value = instrument.counter->Value();
        break;
      case InstrumentKind::kGauge:
        entry.gauge_value = instrument.gauge->Value();
        break;
      case InstrumentKind::kHistogram: {
        const Histogram& hist = *instrument.histogram;
        entry.hist_count = hist.Count();
        entry.hist_sum = hist.Sum();
        for (size_t b = 0; b < Histogram::kNumBuckets; ++b) {
          const uint64_t count = hist.BucketCount(b);
          if (count != 0) {
            entry.hist_buckets.emplace_back(Histogram::BucketUpperBound(b),
                                            count);
          }
        }
        break;
      }
    }
    snapshot.entries.push_back(std::move(entry));
  }
  return snapshot;
}

void MetricsRegistry::ResetValues() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, instrument] : instruments_) {
    switch (instrument.kind) {
      case InstrumentKind::kCounter:
        instrument.counter->Reset();
        break;
      case InstrumentKind::kGauge:
        instrument.gauge->Reset();
        break;
      case InstrumentKind::kHistogram:
        instrument.histogram->Reset();
        break;
    }
  }
}

std::string MetricsSnapshot::ToJson(int indent) const {
  std::string out;
  const auto emit_section = [&](InstrumentKind kind, const char* title,
                                bool last) {
    AppendIndent(&out, indent + 2);
    out += '"';
    out += title;
    out += "\": {";
    bool first = true;
    for (const SnapshotEntry& entry : entries) {
      if (entry.kind != kind) continue;
      out += first ? "\n" : ",\n";
      first = false;
      AppendIndent(&out, indent + 4);
      out += '"';
      out += entry.name;
      out += "\": ";
      switch (kind) {
        case InstrumentKind::kCounter:
          AppendUint(&out, entry.counter_value);
          break;
        case InstrumentKind::kGauge:
          AppendDouble(&out, entry.gauge_value);
          break;
        case InstrumentKind::kHistogram: {
          out += "{\"count\": ";
          AppendUint(&out, entry.hist_count);
          out += ", \"sum\": ";
          AppendUint(&out, entry.hist_sum);
          out += ", \"buckets\": [";
          for (size_t i = 0; i < entry.hist_buckets.size(); ++i) {
            if (i != 0) out += ", ";
            out += '[';
            AppendUint(&out, entry.hist_buckets[i].first);
            out += ", ";
            AppendUint(&out, entry.hist_buckets[i].second);
            out += ']';
          }
          out += "]}";
          break;
        }
      }
    }
    if (!first) {
      out += '\n';
      AppendIndent(&out, indent + 2);
    }
    out += '}';
    out += last ? "\n" : ",\n";
  };
  out += "{\n";
  emit_section(InstrumentKind::kCounter, "counters", false);
  emit_section(InstrumentKind::kGauge, "gauges", false);
  emit_section(InstrumentKind::kHistogram, "histograms", true);
  AppendIndent(&out, indent);
  out += '}';
  return out;
}

std::string MetricsSnapshot::ToTable() const {
  std::string out;
  size_t name_width = 4;
  for (const SnapshotEntry& entry : entries) {
    name_width = std::max(name_width, entry.name.size());
  }
  char line[512];
  std::snprintf(line, sizeof(line), "%-*s  %-9s  %-8s  %s\n",
                static_cast<int>(name_width), "name", "type", "unit",
                "value");
  out += line;
  for (const SnapshotEntry& entry : entries) {
    switch (entry.kind) {
      case InstrumentKind::kCounter:
        std::snprintf(line, sizeof(line), "%-*s  %-9s  %-8s  %llu\n",
                      static_cast<int>(name_width), entry.name.c_str(),
                      "counter", entry.unit.c_str(),
                      static_cast<unsigned long long>(entry.counter_value));
        break;
      case InstrumentKind::kGauge:
        std::snprintf(line, sizeof(line), "%-*s  %-9s  %-8s  %.6g\n",
                      static_cast<int>(name_width), entry.name.c_str(),
                      "gauge", entry.unit.c_str(), entry.gauge_value);
        break;
      case InstrumentKind::kHistogram: {
        const double mean =
            entry.hist_count == 0
                ? 0.0
                : static_cast<double>(entry.hist_sum) /
                      static_cast<double>(entry.hist_count);
        std::snprintf(line, sizeof(line),
                      "%-*s  %-9s  %-8s  count=%llu sum=%llu mean=%.3g\n",
                      static_cast<int>(name_width), entry.name.c_str(),
                      "histogram", entry.unit.c_str(),
                      static_cast<unsigned long long>(entry.hist_count),
                      static_cast<unsigned long long>(entry.hist_sum),
                      mean);
        break;
      }
    }
    out += line;
  }
  return out;
}

}  // namespace benu::metrics
