#ifndef BENU_COMMON_FLAGS_UTIL_H_
#define BENU_COMMON_FLAGS_UTIL_H_

#include <cstdint>
#include <string>
#include <vector>

#include <sys/types.h>

namespace benu::flags {

// ---------------------------------------------------------------------
// The one flag-parsing vocabulary of every BENU binary (benu_driver,
// benu_kv_server, benu_service, benu_service_client): --name=value
// pairs scanned left to right, last occurrence wins for single-valued
// flags. Previously copy-pasted into each main; extracted here so the
// parsing (and its quirks) cannot drift between binaries.
// ---------------------------------------------------------------------

/// The value of the last `--name=value` occurrence, or `fallback` when
/// the flag is absent. `name` is the bare flag including dashes
/// ("--graph"); the returned pointer aliases argv (or `fallback`) and
/// needs no freeing.
const char* Value(int argc, char** argv, const char* name,
                  const char* fallback);

/// Every value of a repeatable `--name=value` flag, in argv order.
std::vector<std::string> Values(int argc, char** argv, const char* name);

/// True iff the bare flag `--name` (no value) appears.
bool Has(int argc, char** argv, const char* name);

/// Typed conveniences over Value(). Parsing mirrors what the mains did
/// inline: strtoul/atoi/atof semantics, so "8x" parses as 8 and
/// garbage parses as 0 — flags are operator input, not wire input.
size_t SizeValue(int argc, char** argv, const char* name, size_t fallback);
int IntValue(int argc, char** argv, const char* name, int fallback);
long long Int64Value(int argc, char** argv, const char* name,
                     long long fallback);
double DoubleValue(int argc, char** argv, const char* name, double fallback);
/// `--name=0` → false, anything else numeric-nonzero → true.
bool BoolValue(int argc, char** argv, const char* name, bool fallback);
/// Ports are u16; values above 65535 are truncated like the mains did.
uint16_t PortValue(int argc, char** argv, const char* name,
                   uint16_t fallback);

// ---------------------------------------------------------------------
// Spawned benu_kv_server children. benu_driver and benu_service both
// fork KV-server fleets (--spawn-servers=K) with identical fork/exec,
// port-parsing and cleanup code; this is that code, shared.
// ---------------------------------------------------------------------

/// One spawned benu_kv_server child process.
struct ServerProcess {
  pid_t pid = -1;
  uint16_t port = 0;
};

/// How to spawn one benu_kv_server (mirrors its flags).
struct KvServerSpawnOptions {
  std::string graph_spec;
  size_t partitions = 8;
  size_t servers = 1;
  size_t index = 0;
  size_t replica = 0;
  size_t replicas = 1;
  bool compress = true;
  /// Spawn a pre-delta (v2-equivalent) server: --deltas=0 makes it omit
  /// kHelloSupportsDeltas and reject kApplyDelta/kEpochAdvance frames,
  /// the downgrade path the dynamic-smoke CI job exercises.
  bool support_deltas = true;
  bool relabel = true;
};

/// Every child spawned so far, visible to the atexit cleanup handler so
/// an early exit (failed connect, CHECK failure, count mismatch) cannot
/// leave orphan or zombie benu_kv_server processes behind.
std::vector<ServerProcess>& SpawnedRegistry();

/// SIGTERMs and reaps every live process in `servers` (pids are reset
/// so a second call — e.g. the atexit handler after an explicit kill —
/// is a no-op).
void KillServers(std::vector<ServerProcess>& servers);

/// atexit handler: KillServers(SpawnedRegistry()).
void CleanupSpawnedAtExit();

/// Directory holding the current executable (and benu_kv_server next to
/// it, for --spawn-servers).
std::string SelfDir();

/// Forks and execs one benu_kv_server at `binary`, parsing
/// "LISTENING port=N" from its stdout so ephemeral ports work. The
/// child asks the kernel for SIGKILL on parent death (PR_SET_PDEATHSIG),
/// so it cannot outlive the spawner even when a CHECK aborts it.
/// CHECK-fails if the child never reports a port.
ServerProcess SpawnKvServer(const std::string& binary,
                            const KvServerSpawnOptions& options);

}  // namespace benu::flags

#endif  // BENU_COMMON_FLAGS_UTIL_H_
