file(REMOVE_RECURSE
  "CMakeFiles/social_recommend.dir/social_recommend.cc.o"
  "CMakeFiles/social_recommend.dir/social_recommend.cc.o.d"
  "social_recommend"
  "social_recommend.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/social_recommend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
