# Empty compiler generated dependencies file for social_recommend.
# This may be replaced when dependencies are built.
