# Empty compiler generated dependencies file for labeled_motifs.
# This may be replaced when dependencies are built.
