file(REMOVE_RECURSE
  "CMakeFiles/labeled_motifs.dir/labeled_motifs.cc.o"
  "CMakeFiles/labeled_motifs.dir/labeled_motifs.cc.o.d"
  "labeled_motifs"
  "labeled_motifs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/labeled_motifs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
