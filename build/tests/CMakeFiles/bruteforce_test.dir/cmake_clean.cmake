file(REMOVE_RECURSE
  "CMakeFiles/bruteforce_test.dir/bruteforce_test.cc.o"
  "CMakeFiles/bruteforce_test.dir/bruteforce_test.cc.o.d"
  "bruteforce_test"
  "bruteforce_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bruteforce_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
