file(REMOVE_RECURSE
  "CMakeFiles/vcbc_test.dir/vcbc_test.cc.o"
  "CMakeFiles/vcbc_test.dir/vcbc_test.cc.o.d"
  "vcbc_test"
  "vcbc_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vcbc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
