# Empty dependencies file for vcbc_test.
# This may be replaced when dependencies are built.
