# Empty dependencies file for compressed_result_test.
# This may be replaced when dependencies are built.
