file(REMOVE_RECURSE
  "CMakeFiles/compressed_result_test.dir/compressed_result_test.cc.o"
  "CMakeFiles/compressed_result_test.dir/compressed_result_test.cc.o.d"
  "compressed_result_test"
  "compressed_result_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compressed_result_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
