file(REMOVE_RECURSE
  "CMakeFiles/symmetry_breaking_test.dir/symmetry_breaking_test.cc.o"
  "CMakeFiles/symmetry_breaking_test.dir/symmetry_breaking_test.cc.o.d"
  "symmetry_breaking_test"
  "symmetry_breaking_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/symmetry_breaking_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
