# Empty compiler generated dependencies file for symmetry_breaking_test.
# This may be replaced when dependencies are built.
