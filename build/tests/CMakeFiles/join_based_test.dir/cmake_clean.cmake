file(REMOVE_RECURSE
  "CMakeFiles/join_based_test.dir/join_based_test.cc.o"
  "CMakeFiles/join_based_test.dir/join_based_test.cc.o.d"
  "join_based_test"
  "join_based_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/join_based_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
