# Empty compiler generated dependencies file for join_based_test.
# This may be replaced when dependencies are built.
