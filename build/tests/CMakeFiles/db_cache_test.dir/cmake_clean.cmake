file(REMOVE_RECURSE
  "CMakeFiles/db_cache_test.dir/db_cache_test.cc.o"
  "CMakeFiles/db_cache_test.dir/db_cache_test.cc.o.d"
  "db_cache_test"
  "db_cache_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/db_cache_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
