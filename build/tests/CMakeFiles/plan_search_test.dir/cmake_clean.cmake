file(REMOVE_RECURSE
  "CMakeFiles/plan_search_test.dir/plan_search_test.cc.o"
  "CMakeFiles/plan_search_test.dir/plan_search_test.cc.o.d"
  "plan_search_test"
  "plan_search_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/plan_search_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
