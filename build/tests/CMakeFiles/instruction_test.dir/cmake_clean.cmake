file(REMOVE_RECURSE
  "CMakeFiles/instruction_test.dir/instruction_test.cc.o"
  "CMakeFiles/instruction_test.dir/instruction_test.cc.o.d"
  "instruction_test"
  "instruction_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/instruction_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
