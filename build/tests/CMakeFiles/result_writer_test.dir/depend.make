# Empty dependencies file for result_writer_test.
# This may be replaced when dependencies are built.
