file(REMOVE_RECURSE
  "CMakeFiles/result_writer_test.dir/result_writer_test.cc.o"
  "CMakeFiles/result_writer_test.dir/result_writer_test.cc.o.d"
  "result_writer_test"
  "result_writer_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/result_writer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
