# Empty compiler generated dependencies file for wcoj_test.
# This may be replaced when dependencies are built.
