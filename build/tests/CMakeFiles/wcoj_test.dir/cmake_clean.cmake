file(REMOVE_RECURSE
  "CMakeFiles/wcoj_test.dir/wcoj_test.cc.o"
  "CMakeFiles/wcoj_test.dir/wcoj_test.cc.o.d"
  "wcoj_test"
  "wcoj_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wcoj_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
