file(REMOVE_RECURSE
  "CMakeFiles/triangle_cache_test.dir/triangle_cache_test.cc.o"
  "CMakeFiles/triangle_cache_test.dir/triangle_cache_test.cc.o.d"
  "triangle_cache_test"
  "triangle_cache_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/triangle_cache_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
