# Empty dependencies file for triangle_cache_test.
# This may be replaced when dependencies are built.
