file(REMOVE_RECURSE
  "CMakeFiles/vertex_set_test.dir/vertex_set_test.cc.o"
  "CMakeFiles/vertex_set_test.dir/vertex_set_test.cc.o.d"
  "vertex_set_test"
  "vertex_set_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vertex_set_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
