# Empty dependencies file for vertex_set_test.
# This may be replaced when dependencies are built.
