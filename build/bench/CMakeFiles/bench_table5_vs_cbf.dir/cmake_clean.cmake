file(REMOVE_RECURSE
  "CMakeFiles/bench_table5_vs_cbf.dir/bench_table5_vs_cbf.cc.o"
  "CMakeFiles/bench_table5_vs_cbf.dir/bench_table5_vs_cbf.cc.o.d"
  "bench_table5_vs_cbf"
  "bench_table5_vs_cbf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_vs_cbf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
