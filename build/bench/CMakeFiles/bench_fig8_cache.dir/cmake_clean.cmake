file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_cache.dir/bench_fig8_cache.cc.o"
  "CMakeFiles/bench_fig8_cache.dir/bench_fig8_cache.cc.o.d"
  "bench_fig8_cache"
  "bench_fig8_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
