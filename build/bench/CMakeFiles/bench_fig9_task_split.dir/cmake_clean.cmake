file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_task_split.dir/bench_fig9_task_split.cc.o"
  "CMakeFiles/bench_fig9_task_split.dir/bench_fig9_task_split.cc.o.d"
  "bench_fig9_task_split"
  "bench_fig9_task_split.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_task_split.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
