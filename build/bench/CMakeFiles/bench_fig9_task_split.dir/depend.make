# Empty dependencies file for bench_fig9_task_split.
# This may be replaced when dependencies are built.
