file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_plan_search.dir/bench_table4_plan_search.cc.o"
  "CMakeFiles/bench_table4_plan_search.dir/bench_table4_plan_search.cc.o.d"
  "bench_table4_plan_search"
  "bench_table4_plan_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_plan_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
