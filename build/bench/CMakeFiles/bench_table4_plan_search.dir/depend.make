# Empty dependencies file for bench_table4_plan_search.
# This may be replaced when dependencies are built.
