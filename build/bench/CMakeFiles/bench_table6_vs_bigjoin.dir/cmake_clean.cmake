file(REMOVE_RECURSE
  "CMakeFiles/bench_table6_vs_bigjoin.dir/bench_table6_vs_bigjoin.cc.o"
  "CMakeFiles/bench_table6_vs_bigjoin.dir/bench_table6_vs_bigjoin.cc.o.d"
  "bench_table6_vs_bigjoin"
  "bench_table6_vs_bigjoin.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table6_vs_bigjoin.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
