# Empty dependencies file for bench_table6_vs_bigjoin.
# This may be replaced when dependencies are built.
