
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/bruteforce.cc" "src/CMakeFiles/benu.dir/baselines/bruteforce.cc.o" "gcc" "src/CMakeFiles/benu.dir/baselines/bruteforce.cc.o.d"
  "/root/repo/src/baselines/join_based.cc" "src/CMakeFiles/benu.dir/baselines/join_based.cc.o" "gcc" "src/CMakeFiles/benu.dir/baselines/join_based.cc.o.d"
  "/root/repo/src/baselines/wcoj.cc" "src/CMakeFiles/benu.dir/baselines/wcoj.cc.o" "gcc" "src/CMakeFiles/benu.dir/baselines/wcoj.cc.o.d"
  "/root/repo/src/common/logging.cc" "src/CMakeFiles/benu.dir/common/logging.cc.o" "gcc" "src/CMakeFiles/benu.dir/common/logging.cc.o.d"
  "/root/repo/src/common/rng.cc" "src/CMakeFiles/benu.dir/common/rng.cc.o" "gcc" "src/CMakeFiles/benu.dir/common/rng.cc.o.d"
  "/root/repo/src/common/status.cc" "src/CMakeFiles/benu.dir/common/status.cc.o" "gcc" "src/CMakeFiles/benu.dir/common/status.cc.o.d"
  "/root/repo/src/common/stopwatch.cc" "src/CMakeFiles/benu.dir/common/stopwatch.cc.o" "gcc" "src/CMakeFiles/benu.dir/common/stopwatch.cc.o.d"
  "/root/repo/src/common/thread_pool.cc" "src/CMakeFiles/benu.dir/common/thread_pool.cc.o" "gcc" "src/CMakeFiles/benu.dir/common/thread_pool.cc.o.d"
  "/root/repo/src/core/compressed_result.cc" "src/CMakeFiles/benu.dir/core/compressed_result.cc.o" "gcc" "src/CMakeFiles/benu.dir/core/compressed_result.cc.o.d"
  "/root/repo/src/core/executor.cc" "src/CMakeFiles/benu.dir/core/executor.cc.o" "gcc" "src/CMakeFiles/benu.dir/core/executor.cc.o.d"
  "/root/repo/src/core/match_consumer.cc" "src/CMakeFiles/benu.dir/core/match_consumer.cc.o" "gcc" "src/CMakeFiles/benu.dir/core/match_consumer.cc.o.d"
  "/root/repo/src/core/result_writer.cc" "src/CMakeFiles/benu.dir/core/result_writer.cc.o" "gcc" "src/CMakeFiles/benu.dir/core/result_writer.cc.o.d"
  "/root/repo/src/distributed/benu_driver.cc" "src/CMakeFiles/benu.dir/distributed/benu_driver.cc.o" "gcc" "src/CMakeFiles/benu.dir/distributed/benu_driver.cc.o.d"
  "/root/repo/src/distributed/benu_mapreduce.cc" "src/CMakeFiles/benu.dir/distributed/benu_mapreduce.cc.o" "gcc" "src/CMakeFiles/benu.dir/distributed/benu_mapreduce.cc.o.d"
  "/root/repo/src/distributed/cluster.cc" "src/CMakeFiles/benu.dir/distributed/cluster.cc.o" "gcc" "src/CMakeFiles/benu.dir/distributed/cluster.cc.o.d"
  "/root/repo/src/distributed/mapreduce.cc" "src/CMakeFiles/benu.dir/distributed/mapreduce.cc.o" "gcc" "src/CMakeFiles/benu.dir/distributed/mapreduce.cc.o.d"
  "/root/repo/src/distributed/task.cc" "src/CMakeFiles/benu.dir/distributed/task.cc.o" "gcc" "src/CMakeFiles/benu.dir/distributed/task.cc.o.d"
  "/root/repo/src/graph/generators.cc" "src/CMakeFiles/benu.dir/graph/generators.cc.o" "gcc" "src/CMakeFiles/benu.dir/graph/generators.cc.o.d"
  "/root/repo/src/graph/graph.cc" "src/CMakeFiles/benu.dir/graph/graph.cc.o" "gcc" "src/CMakeFiles/benu.dir/graph/graph.cc.o.d"
  "/root/repo/src/graph/io.cc" "src/CMakeFiles/benu.dir/graph/io.cc.o" "gcc" "src/CMakeFiles/benu.dir/graph/io.cc.o.d"
  "/root/repo/src/graph/isomorphism.cc" "src/CMakeFiles/benu.dir/graph/isomorphism.cc.o" "gcc" "src/CMakeFiles/benu.dir/graph/isomorphism.cc.o.d"
  "/root/repo/src/graph/patterns.cc" "src/CMakeFiles/benu.dir/graph/patterns.cc.o" "gcc" "src/CMakeFiles/benu.dir/graph/patterns.cc.o.d"
  "/root/repo/src/graph/vertex_set.cc" "src/CMakeFiles/benu.dir/graph/vertex_set.cc.o" "gcc" "src/CMakeFiles/benu.dir/graph/vertex_set.cc.o.d"
  "/root/repo/src/plan/cost_model.cc" "src/CMakeFiles/benu.dir/plan/cost_model.cc.o" "gcc" "src/CMakeFiles/benu.dir/plan/cost_model.cc.o.d"
  "/root/repo/src/plan/filters.cc" "src/CMakeFiles/benu.dir/plan/filters.cc.o" "gcc" "src/CMakeFiles/benu.dir/plan/filters.cc.o.d"
  "/root/repo/src/plan/instruction.cc" "src/CMakeFiles/benu.dir/plan/instruction.cc.o" "gcc" "src/CMakeFiles/benu.dir/plan/instruction.cc.o.d"
  "/root/repo/src/plan/optimizer.cc" "src/CMakeFiles/benu.dir/plan/optimizer.cc.o" "gcc" "src/CMakeFiles/benu.dir/plan/optimizer.cc.o.d"
  "/root/repo/src/plan/plan_generator.cc" "src/CMakeFiles/benu.dir/plan/plan_generator.cc.o" "gcc" "src/CMakeFiles/benu.dir/plan/plan_generator.cc.o.d"
  "/root/repo/src/plan/plan_search.cc" "src/CMakeFiles/benu.dir/plan/plan_search.cc.o" "gcc" "src/CMakeFiles/benu.dir/plan/plan_search.cc.o.d"
  "/root/repo/src/plan/symmetry_breaking.cc" "src/CMakeFiles/benu.dir/plan/symmetry_breaking.cc.o" "gcc" "src/CMakeFiles/benu.dir/plan/symmetry_breaking.cc.o.d"
  "/root/repo/src/plan/vcbc.cc" "src/CMakeFiles/benu.dir/plan/vcbc.cc.o" "gcc" "src/CMakeFiles/benu.dir/plan/vcbc.cc.o.d"
  "/root/repo/src/storage/db_cache.cc" "src/CMakeFiles/benu.dir/storage/db_cache.cc.o" "gcc" "src/CMakeFiles/benu.dir/storage/db_cache.cc.o.d"
  "/root/repo/src/storage/kv_store.cc" "src/CMakeFiles/benu.dir/storage/kv_store.cc.o" "gcc" "src/CMakeFiles/benu.dir/storage/kv_store.cc.o.d"
  "/root/repo/src/storage/triangle_cache.cc" "src/CMakeFiles/benu.dir/storage/triangle_cache.cc.o" "gcc" "src/CMakeFiles/benu.dir/storage/triangle_cache.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
