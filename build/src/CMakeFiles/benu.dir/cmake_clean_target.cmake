file(REMOVE_RECURSE
  "libbenu.a"
)
