# Empty compiler generated dependencies file for benu.
# This may be replaced when dependencies are built.
