// Labeled motif search: demonstrates the property-graph extension (the
// paper's §VIII future work). We synthesize an "interaction network"
// whose vertices carry one of three types (0 = user, 1 = group, 2 = bot)
// and count typed triangles and typed wedges — e.g. a user belonging to
// two groups that share another common user.
//
// Usage: ./build/examples/labeled_motifs

#include <cstdio>
#include <string>
#include <vector>

#include "common/rng.h"
#include "distributed/benu_driver.h"
#include "graph/generators.h"
#include "graph/patterns.h"

namespace {

const char* kTypeNames[] = {"user", "group", "bot"};

std::string Describe(const std::vector<int>& labels) {
  std::string out;
  for (size_t i = 0; i < labels.size(); ++i) {
    if (i > 0) out += "-";
    out += kTypeNames[labels[i]];
  }
  return out;
}

}  // namespace

int main() {
  using namespace benu;

  auto graph = GeneratePowerLawCluster(8000, 6, 0.6, /*seed=*/77);
  if (!graph.ok()) {
    std::fprintf(stderr, "generation failed\n");
    return 1;
  }
  // Assign types: 70% users, 25% groups, 5% bots.
  Rng rng(99);
  std::vector<int> types(graph->NumVertices());
  for (auto& t : types) {
    const double coin = rng.NextDouble();
    t = coin < 0.70 ? 0 : (coin < 0.95 ? 1 : 2);
  }
  std::printf("network: %zu vertices, %zu edges (70%% user / 25%% group / "
              "5%% bot)\n\n",
              graph->NumVertices(), graph->NumEdges());

  BenuOptions base;
  base.cluster.num_workers = 2;
  base.cluster.threads_per_worker = 4;
  base.data_labels = types;

  struct Query {
    const char* shape;
    std::vector<int> labels;
  };
  const std::vector<Query> queries = {
      {"triangle", {0, 0, 0}},  // user-user-user triangle
      {"triangle", {0, 0, 1}},  // two users closing through a group
      {"triangle", {2, 2, 2}},  // bot ring
      {"path3", {1, 0, 1}},     // user bridging two groups
      {"path3", {0, 2, 0}},     // bot between two users
  };
  std::printf("%-28s %14s\n", "typed motif", "count");
  for (const Query& query : queries) {
    Graph pattern = query.shape == std::string("path3")
                        ? MakePath(3)
                        : MakeClique(3);
    BenuOptions options = base;
    options.plan.pattern_labels = query.labels;
    auto result = RunBenu(*graph, pattern, options);
    if (!result.ok()) {
      std::fprintf(stderr, "query failed: %s\n",
                   result.status().ToString().c_str());
      return 1;
    }
    std::printf("%-10s %-17s %14llu\n", query.shape,
                Describe(query.labels).c_str(),
                static_cast<unsigned long long>(result->run.total_matches));
  }
  std::printf(
      "\nLabel-aware symmetry breaking keeps each typed subgraph counted\n"
      "exactly once (only label-preserving automorphisms are broken).\n");
  return 0;
}
