// Plan explorer: prints, for a pattern graph, everything the BENU planner
// derives — the symmetry-breaking partial order, the best matching order,
// the optimized execution plan (the paper's Fig. 3 style), its
// VCBC-compressed form, estimated costs, and the Exp-1 search counters.
//
// Usage: ./build/examples/plan_explorer [pattern-name] ...
//        (default: q4; see AllPatternNames for the catalog)

#include <cstdio>
#include <string>
#include <vector>

#include "graph/patterns.h"
#include "plan/plan_search.h"
#include "plan/symmetry_breaking.h"
#include "plan/vcbc.h"

namespace {

void Explore(const std::string& name) {
  using namespace benu;
  auto pattern = GetPattern(name);
  if (!pattern.ok()) {
    std::fprintf(stderr, "unknown pattern %s\n", name.c_str());
    return;
  }
  std::printf("=== %s: %zu vertices, %zu edges ===\n", name.c_str(),
              pattern->NumVertices(), pattern->NumEdges());

  auto constraints = ComputeSymmetryBreakingConstraints(*pattern);
  std::printf("symmetry-breaking partial order:");
  if (constraints.empty()) std::printf(" (none — asymmetric pattern)");
  for (const OrderConstraint& c : constraints) {
    std::printf(" u%u<u%u", c.first + 1, c.second + 1);
  }
  std::printf("\n");

  // Representative data-graph statistics (LiveJournal-like density).
  const DataGraphStats stats{4.8e6, 4.3e7};
  auto best = GenerateBestPlan(*pattern, stats);
  if (!best.ok()) {
    std::fprintf(stderr, "plan search failed: %s\n",
                 best.status().ToString().c_str());
    return;
  }
  std::printf("search: alpha=%llu (bound %.0f)  beta=%llu (bound %.0f)  "
              "time=%.3fs\n",
              static_cast<unsigned long long>(best->estimate_calls),
              AlphaUpperBound(pattern->NumVertices()),
              static_cast<unsigned long long>(best->plans_generated),
              BetaUpperBound(pattern->NumVertices()),
              best->elapsed_seconds);
  std::printf("estimated cost: communication=%.3g  computation=%.3g\n",
              best->cost.communication, best->cost.computation);
  std::printf("best optimized plan:\n%s", best->plan.ToString().c_str());

  ExecutionPlan compressed = best->plan;
  if (ApplyVcbcCompression(&compressed).ok()) {
    std::printf("VCBC-compressed plan (core:");
    for (auto u : compressed.core_vertices) std::printf(" u%u", u + 1);
    std::printf("):\n%s", compressed.ToString().c_str());
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> names;
  for (int i = 1; i < argc; ++i) names.push_back(argv[i]);
  if (names.empty()) names = {"q4"};
  for (const std::string& name : names) Explore(name);
  return 0;
}
