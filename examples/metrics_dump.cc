// metrics_dump: run one pattern end to end with span tracing enabled and
// print the process-wide metrics registry as a human-readable table —
// the on-ramp to the observability layer of DESIGN.md §2e.
//
// The run enumerates q5 over an Erdős–Rényi stand-in (ER-1k) on a
// single-threaded simulated cluster, so the per-instruction self-times
// (INI/DBQ/INT/ENU/TRC/RES) decompose the task compute time exactly:
// the binary CHECKs that their sum lands within 5% of the measured task
// wall time, which is the invariant the tracing design promises (every
// instrument printed here is documented in docs/metrics.md).
//
// Build & run:
//   cmake -B build && cmake --build build --target metrics_dump
//   ./build/examples/metrics_dump

#include <cmath>
#include <cstdio>
#include <string>

#include "common/logging.h"
#include "common/metrics.h"
#include "distributed/benu_driver.h"
#include "graph/generators.h"
#include "graph/patterns.h"

int main() {
  using namespace benu;

  metrics::SetTracingEnabled(true);
  metrics::MetricsRegistry::Global().ResetValues();

  Graph data =
      std::move(GenerateErdosRenyi(1000, 10000, /*seed=*/7)).value();
  Graph pattern = std::move(GetPattern("q5")).value();

  BenuOptions options;
  // Single worker, single real thread: the per-instruction trace then
  // covers every executed instruction of the run, and its sum is
  // directly comparable against the summed task wall times.
  options.cluster.num_workers = 1;
  options.cluster.threads_per_worker = 1;
  options.cluster.execution_threads = 1;
  options.cluster.max_runtime_threads = 1;
  options.cluster.db_cache_bytes = 8u << 20;
  options.cluster.task_split_threshold = 500;
  // Exercise the prefetch pipeline deterministically (forced-sync: the
  // batched multi-gets drain inline on the enumerating thread).
  options.cluster.prefetch_budget = 64;
  options.cluster.force_sync_prefetch = true;
  // Governed hybrid expansion under a finite budget, so the dump also
  // shows the memory.governor.* instruments in action (frontier leases,
  // pinned high-water) — the per-instruction span invariant below must
  // hold in this mode exactly as in plain DFS.
  options.cluster.expansion = ExpansionMode::kHybrid;
  options.cluster.memory_budget_bytes = 16u << 20;
  options.plan.apply_vcbc = true;

  auto result = RunBenu(data, pattern, options);
  BENU_CHECK(result.ok()) << result.status().ToString();

  const metrics::MetricsSnapshot snapshot =
      metrics::MetricsRegistry::Global().Snapshot();
  std::printf("%s", snapshot.ToTable().c_str());

  // Memory-governor state of the governed hybrid run: the configured
  // ceiling, what is still pinned after teardown (caches and frontier
  // regions un-count themselves — this should read 0), the pinned
  // high-water mark, and the lease traffic.
  const auto find = [&snapshot](const char* name) -> double {
    for (const metrics::SnapshotEntry& entry : snapshot.entries) {
      if (entry.name == name) {
        return entry.kind == metrics::InstrumentKind::kGauge
                   ? entry.gauge_value
                   : static_cast<double>(entry.counter_value);
      }
    }
    return 0;
  };
  std::printf(
      "\nmemory governor: budget=%.0f bytes, pinned=%.0f bytes, "
      "lease high-water=%.0f bytes, grants=%.0f, denials=%.0f\n",
      find("memory.governor.budget_bytes"),
      find("memory.governor.pinned_bytes"),
      find("memory.governor.lease_high_water"),
      find("memory.governor.lease_grants"),
      find("memory.governor.lease_denials"));

  // Sum the exclusive per-instruction self-times and compare against the
  // summed wall time of all tasks (the trace covers the interpreter loop;
  // per-task setup/teardown outside Exec is the only slack allowed).
  double span_seconds = 0;
  for (const metrics::SnapshotEntry& entry : snapshot.entries) {
    if (entry.name.rfind("executor.instr.", 0) == 0 &&
        entry.name.size() > 8 &&
        entry.name.compare(entry.name.size() - 8, 8, ".self_ns") == 0) {
      span_seconds += static_cast<double>(entry.counter_value) * 1e-9;
    }
  }
  double task_wall_seconds = 0;
  for (const WorkerSummary& worker : result->run.workers) {
    task_wall_seconds += worker.totals.wall_seconds;
  }
  std::printf(
      "\nmatches=%llu tasks=%zu\n"
      "instruction span sum: %.6f s, task wall sum: %.6f s (%.2f%%)\n",
      static_cast<unsigned long long>(result->run.total_matches),
      result->run.num_tasks, span_seconds, task_wall_seconds,
      task_wall_seconds > 0 ? 100.0 * span_seconds / task_wall_seconds
                            : 0.0);
  BENU_CHECK(task_wall_seconds > 0);
  BENU_CHECK(std::abs(span_seconds - task_wall_seconds) <=
             0.05 * task_wall_seconds)
      << "per-instruction spans do not decompose task compute time: "
      << span_seconds << " vs " << task_wall_seconds;
  std::printf("span decomposition OK (within 5%%)\n");
  return 0;
}
