// Motif census: the network-motif-mining application from the paper's
// introduction. Counts every connected 3- and 4-vertex motif in a graph
// and compares the census against an Erdős–Rényi null model with the same
// density, printing the classic motif z-score-style over-representation
// ratios (power-law graphs are triangle- and clique-rich; random graphs
// are not).
//
// Usage: ./build/examples/motif_census [edge-list-file]

#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "distributed/benu_driver.h"
#include "graph/generators.h"
#include "graph/io.h"
#include "graph/patterns.h"

namespace {

benu::Graph MakeMotif(const std::string& name) {
  using namespace benu;
  if (name == "path3") return MakePath(3);
  if (name == "path4") return MakePath(4);
  if (name == "star3") return MakeStar(3);
  if (name == "paw") {
    // Triangle with a tail.
    auto g = Graph::FromEdges(4, {{0, 1}, {1, 2}, {2, 0}, {2, 3}});
    return std::move(g).value();
  }
  return std::move(GetPattern(name)).value();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace benu;
  StatusOr<Graph> data = (argc > 1)
                             ? LoadEdgeListFile(argv[1])
                             : GenerateBarabasiAlbert(5000, 6, /*seed=*/7);
  if (!data.ok()) {
    std::fprintf(stderr, "failed to load graph: %s\n",
                 data.status().ToString().c_str());
    return 1;
  }
  auto null_model =
      GenerateErdosRenyi(data->NumVertices(), data->NumEdges(), /*seed=*/99);
  if (!null_model.ok()) {
    std::fprintf(stderr, "null model failed\n");
    return 1;
  }
  std::printf("graph: %zu vertices, %zu edges (null model: same N, M)\n",
              data->NumVertices(), data->NumEdges());
  std::printf("%-10s %14s %14s %10s\n", "motif", "count", "null-count",
              "ratio");

  const std::vector<std::string> motifs = {"triangle", "path3", "path4",
                                           "star3",    "paw",   "square",
                                           "diamond",  "clique4"};
  BenuOptions options;
  options.cluster.num_workers = 2;
  options.cluster.threads_per_worker = 4;
  options.cluster.task_split_threshold = 500;
  options.plan.apply_vcbc = true;
  for (const std::string name : motifs) {
    Graph motif = MakeMotif(name);
    auto real = RunBenu(*data, motif, options);
    auto null = RunBenu(*null_model, motif, options);
    if (!real.ok() || !null.ok()) {
      std::fprintf(stderr, "%s failed\n", name.c_str());
      return 1;
    }
    const double ratio =
        null->run.total_matches == 0
            ? 0.0
            : static_cast<double>(real->run.total_matches) /
                  static_cast<double>(null->run.total_matches);
    std::printf("%-10s %14llu %14llu %9.2fx\n", name.c_str(),
                static_cast<unsigned long long>(real->run.total_matches),
                static_cast<unsigned long long>(null->run.total_matches),
                ratio);
  }
  std::printf(
      "\nA ratio >> 1 marks a motif over-represented relative to chance —\n"
      "the signal network-motif mining [1] is after.\n");
  return 0;
}
