// Quickstart: count triangles (and a few other motifs) in a power-law
// graph with the full BENU stack — best-plan generation, the simulated
// distributed KV store, per-worker DB caches, and task splitting.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart [edge-list-file]
//
// Without an argument a synthetic Barabási–Albert graph is used.

#include <cstdio>

#include "distributed/benu_driver.h"
#include "graph/generators.h"
#include "graph/io.h"
#include "graph/patterns.h"

int main(int argc, char** argv) {
  using namespace benu;

  // 1. Obtain a data graph.
  StatusOr<Graph> data = (argc > 1)
                             ? LoadEdgeListFile(argv[1])
                             : GenerateBarabasiAlbert(20000, 8, /*seed=*/42);
  if (!data.ok()) {
    std::fprintf(stderr, "failed to load data graph: %s\n",
                 data.status().ToString().c_str());
    return 1;
  }
  std::printf("data graph: %zu vertices, %zu edges\n", data->NumVertices(),
              data->NumEdges());

  // 2. Configure a small simulated cluster (4 workers x 4 threads).
  BenuOptions options;
  options.cluster.num_workers = 4;
  options.cluster.threads_per_worker = 4;
  options.cluster.execution_threads = 2;  // real OS threads per worker
  options.cluster.db_cache_bytes = 64u << 20;
  options.cluster.task_split_threshold = 500;
  options.plan.apply_vcbc = true;  // emit VCBC-compressed results

  // 3. Enumerate a few patterns.
  for (const char* name : {"triangle", "square", "diamond", "clique4"}) {
    Graph pattern = std::move(GetPattern(name)).value();
    auto result = RunBenu(*data, pattern, options);
    if (!result.ok()) {
      std::fprintf(stderr, "%s failed: %s\n", name,
                   result.status().ToString().c_str());
      return 1;
    }
    std::printf(
        "%-9s matches=%llu  codes=%llu  db-queries=%llu  cache-hit=%.1f%%  "
        "virtual-time=%.3fs  real-time=%.3fs\n",
        name, static_cast<unsigned long long>(result->run.total_matches),
        static_cast<unsigned long long>(result->run.total_codes),
        static_cast<unsigned long long>(result->run.db_queries),
        100.0 * result->run.CacheHitRate(), result->run.virtual_seconds,
        result->run.real_seconds);
  }
  return 0;
}
