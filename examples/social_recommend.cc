// Social recommendation: the social-network application from the paper's
// introduction [4]. Uses the BENU executor directly (not just counts) to
// enumerate wedges u–v–w in a synthetic social graph, then recommends the
// non-adjacent pairs (u, w) with the most shared friends — classic
// friend-of-friend recommendation driven by subgraph enumeration.
//
// Usage: ./build/examples/social_recommend

#include <algorithm>
#include <cstdio>
#include <map>
#include <utility>
#include <vector>

#include "core/executor.h"
#include "graph/generators.h"
#include "graph/patterns.h"
#include "plan/plan_search.h"

int main() {
  using namespace benu;

  auto raw = GenerateBarabasiAlbert(3000, 5, /*seed=*/2026);
  if (!raw.ok()) {
    std::fprintf(stderr, "graph generation failed\n");
    return 1;
  }
  // Realize the symmetry-breaking total order in the vertex ids.
  std::vector<VertexId> old_to_new;
  Graph social = raw->RelabelByDegree(&old_to_new);
  std::printf("social graph: %zu users, %zu friendships\n",
              social.NumVertices(), social.NumEdges());

  // Pattern: the wedge (path with 3 vertices, center = vertex 1).
  Graph wedge = MakePath(3);
  auto plan = GenerateBestPlan(wedge, DataGraphStats::FromGraph(social));
  if (!plan.ok()) {
    std::fprintf(stderr, "plan search failed: %s\n",
                 plan.status().ToString().c_str());
    return 1;
  }
  std::printf("wedge execution plan:\n%s", plan->plan.ToString().c_str());

  // Enumerate all wedges with a collecting consumer and tally the
  // open (non-adjacent) endpoint pairs.
  class WedgeTally : public MatchConsumer {
   public:
    explicit WedgeTally(const Graph* g) : graph_(g) {}
    void OnMatch(const std::vector<VertexId>& f) override {
      const VertexId a = std::min(f[0], f[2]);
      const VertexId b = std::max(f[0], f[2]);
      if (!graph_->HasEdge(a, b)) ++shared_[{a, b}];
    }
    void OnCompressedCode(const std::vector<VertexId>&,
                          const std::vector<VertexSetView>&) override {}
    std::map<std::pair<VertexId, VertexId>, int> shared_;

   private:
    const Graph* graph_;
  };

  DirectAdjacencyProvider provider(&social);
  TriangleCache tcache;
  auto executor = PlanExecutor::Create(&plan->plan, &provider, &tcache);
  if (!executor.ok()) {
    std::fprintf(stderr, "executor: %s\n",
                 executor.status().ToString().c_str());
    return 1;
  }
  WedgeTally tally(&social);
  for (VertexId v = 0; v < social.NumVertices(); ++v) {
    (*executor)->RunTask(SearchTask{v, 0, 1}, &tally);
  }
  std::printf("open wedges tallied: %zu candidate pairs\n",
              tally.shared_.size());

  // Top-10 recommendations by shared-friend count.
  std::vector<std::pair<int, std::pair<VertexId, VertexId>>> ranked;
  ranked.reserve(tally.shared_.size());
  for (const auto& [pair, count] : tally.shared_) {
    ranked.push_back({count, pair});
  }
  std::sort(ranked.rbegin(), ranked.rend());
  std::printf("top friend recommendations (user ids in degree order):\n");
  for (size_t i = 0; i < std::min<size_t>(10, ranked.size()); ++i) {
    std::printf("  user %5u <-> user %5u : %d shared friends\n",
                ranked[i].second.first, ranked[i].second.second,
                ranked[i].first);
  }
  return 0;
}
