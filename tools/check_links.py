#!/usr/bin/env python3
"""Check intra-repo markdown links.

Scans the given markdown files (and/or directories, recursively) for
inline links and images `[text](target)`, resolves relative targets
against the containing file, and fails if a target does not exist in the
working tree. External links (http/https/mailto) and pure in-page
anchors (#...) are skipped; a `path#fragment` target is checked for the
path part only.

Usage: tools/check_links.py FILE_OR_DIR [...]
Exit status: 0 when every link resolves, 1 otherwise.
"""

import os
import re
import sys

# Inline link/image: [text](target) — target ends at the first unescaped
# ')'. Markdown in this repo does not use nested parens or reference
# links, so this simple pattern covers everything.
LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
# Fenced code blocks must not contribute links (they hold example code).
FENCE_RE = re.compile(r"^\s*(```|~~~)")

SKIP_PREFIXES = ("http://", "https://", "mailto:", "ftp://")


def collect_markdown(paths):
    for path in paths:
        if os.path.isdir(path):
            for root, _dirs, files in os.walk(path):
                for name in sorted(files):
                    if name.endswith(".md"):
                        yield os.path.join(root, name)
        else:
            yield path


def check_file(md_path):
    errors = []
    in_fence = False
    with open(md_path, encoding="utf-8") as f:
        for lineno, line in enumerate(f, start=1):
            if FENCE_RE.match(line):
                in_fence = not in_fence
                continue
            if in_fence:
                continue
            for match in LINK_RE.finditer(line):
                target = match.group(1)
                if target.startswith(SKIP_PREFIXES) or target.startswith("#"):
                    continue
                path_part = target.split("#", 1)[0]
                if not path_part:
                    continue
                resolved = os.path.normpath(
                    os.path.join(os.path.dirname(md_path), path_part))
                if not os.path.exists(resolved):
                    errors.append(
                        f"{md_path}:{lineno}: dead link `{target}` "
                        f"(resolved to {resolved})")
    return errors


def main(argv):
    if len(argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    errors = []
    checked = 0
    for md_path in collect_markdown(argv[1:]):
        if not os.path.exists(md_path):
            errors.append(f"{md_path}: no such file")
            continue
        checked += 1
        errors.extend(check_file(md_path))
    for error in errors:
        print(error, file=sys.stderr)
    print(f"checked {checked} markdown file(s): "
          f"{'FAIL' if errors else 'OK'} ({len(errors)} dead link(s))")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
