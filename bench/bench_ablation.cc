// Ablations of BENU's design choices (beyond the paper's own Fig. 7/8
// sweeps):
//
//   (1) Shared vs private DB caches — §V-A argues one cache per worker
//       *shared by all its threads* captures inter-task locality. We
//       compare a worker with one shared cache of capacity C against the
//       same hardware partitioned into per-thread caches of capacity C/w
//       (modelled as w single-thread workers).
//   (2) Degree filter on/off — §IV-A's extra filtering technique.
//   (3) VCBC compression on/off — output volume and result-reporting
//       work (codes vs full matches).

#include <cstdio>
#include <string>

#include "bench/bench_util.h"
#include "plan/plan_search.h"

namespace {

using namespace benu;
using namespace benu::bench;

void CacheSharingAblation(const Graph& data) {
  Graph pattern = LoadPattern("q4");
  auto plan = GenerateBestPlan(pattern, DataGraphStats::FromGraph(data),
                               {.optimize = true, .apply_vcbc = true});
  BENU_CHECK(plan.ok());
  const size_t total_cache = data.AdjacencyBytes() / 5;  // 20% of graph
  const int workers = 4;
  const int threads = 6;

  // Shared: each worker's threads share one cache of `total_cache`.
  ClusterConfig shared = PaperCluster();
  shared.num_workers = workers;
  shared.threads_per_worker = threads;
  shared.db_cache_bytes = total_cache;
  ClusterSimulator shared_cluster(data, shared);
  auto shared_run = shared_cluster.Run(plan->plan);
  BENU_CHECK(shared_run.ok());

  // Private: same thread count, but every thread has its own cache of
  // total_cache / threads.
  ClusterConfig priv = PaperCluster();
  priv.num_workers = workers * threads;
  priv.threads_per_worker = 1;
  priv.db_cache_bytes = total_cache / threads;
  ClusterSimulator private_cluster(data, priv);
  auto private_run = private_cluster.Run(plan->plan);
  BENU_CHECK(private_run.ok());
  BENU_CHECK(shared_run->total_matches == private_run->total_matches);

  std::printf("(1) cache sharing (q4, %d workers x %d threads, cache=%s)\n",
              workers, threads, HumanBytes(total_cache).c_str());
  std::printf("    %-22s hit-rate %5.1f%%  db-queries %10s  comm %s\n",
              "shared per worker:", 100 * shared_run->CacheHitRate(),
              HumanCount(shared_run->db_queries).c_str(),
              HumanBytes(shared_run->bytes_fetched).c_str());
  std::printf("    %-22s hit-rate %5.1f%%  db-queries %10s  comm %s\n",
              "private per thread:", 100 * private_run->CacheHitRate(),
              HumanCount(private_run->db_queries).c_str(),
              HumanBytes(private_run->bytes_fetched).c_str());
}

void DegreeFilterAblation(const Graph& core) {
  // Real web/social graphs have a large low-degree fringe; the stand-in
  // generator's minimum degree equals its edges-per-vertex parameter, so
  // we attach a pendant fringe (one-third of the graph) to expose what
  // the filter prunes.
  auto edges = core.Edges();
  const auto fringe = static_cast<VertexId>(core.NumVertices() / 3);
  for (VertexId i = 0; i < fringe; ++i) {
    edges.emplace_back(static_cast<VertexId>(core.NumVertices() + i),
                       i % static_cast<VertexId>(core.NumVertices()));
  }
  auto augmented = Graph::FromEdges(core.NumVertices() + fringe, edges);
  BENU_CHECK(augmented.ok());
  Graph data = augmented->RelabelByDegree();
  std::printf("\n(2) degree filter (clique patterns; stand-in plus a "
              "degree-1 fringe)\n");
  for (const std::string name : {std::string("clique4"),
                                 std::string("clique5")}) {
    Graph pattern = LoadPattern(name);
    auto base = GenerateBestPlan(pattern, DataGraphStats::FromGraph(data),
                                 {.optimize = true, .apply_vcbc = true});
    PlanSearchOptions with_filter;
    with_filter.apply_vcbc = true;
    with_filter.apply_degree_filter = true;
    auto filtered = GenerateBestPlan(
        pattern, DataGraphStats::FromGraph(data), with_filter);
    BENU_CHECK(base.ok());
    BENU_CHECK(filtered.ok());
    ClusterConfig config = PaperCluster();
    config.num_workers = 4;
    config.threads_per_worker = 4;
    ClusterSimulator cluster(data, config);
    auto off = cluster.Run(base->plan);
    auto on = cluster.Run(filtered->plan);
    BENU_CHECK(off.ok());
    BENU_CHECK(on.ok());
    BENU_CHECK(off->total_matches == on->total_matches);
    std::printf(
        "    %-8s off: req %10s time %6.3fs | on: req %10s time %6.3fs\n",
        name.c_str(), HumanCount(off->adjacency_requests).c_str(),
        off->virtual_seconds, HumanCount(on->adjacency_requests).c_str(),
        on->virtual_seconds);
  }
}

void VcbcAblation(const Graph& data) {
  std::printf("\n(3) VCBC compression (output volume, vertex-id units)\n");
  for (const std::string name :
       {std::string("q4"), std::string("q7"), std::string("square")}) {
    Graph pattern = LoadPattern(name);
    auto plain = GenerateBestPlan(pattern, DataGraphStats::FromGraph(data),
                                  {.optimize = true, .apply_vcbc = false});
    auto compressed = GenerateBestPlan(
        pattern, DataGraphStats::FromGraph(data),
        {.optimize = true, .apply_vcbc = true});
    BENU_CHECK(plain.ok());
    BENU_CHECK(compressed.ok());
    ClusterConfig config = PaperCluster();
    config.num_workers = 4;
    config.threads_per_worker = 4;
    ClusterSimulator cluster(data, config);
    auto a = cluster.Run(plain->plan);
    auto b = cluster.Run(compressed->plan);
    BENU_CHECK(a.ok());
    BENU_CHECK(b.ok());
    BENU_CHECK(a->total_matches == b->total_matches);
    const double ratio = b->code_units == 0
                             ? 0.0
                             : static_cast<double>(a->code_units) /
                                   static_cast<double>(b->code_units);
    std::printf(
        "    %-7s matches %10s | plain units %12s | vcbc units %12s "
        "(%.1fx smaller), codes %s\n",
        name.c_str(), HumanCount(a->total_matches).c_str(),
        HumanCount(a->code_units).c_str(), HumanCount(b->code_units).c_str(),
        ratio, HumanCount(b->total_codes).c_str());
  }
}

}  // namespace

int main() {
  SetLogLevel(LogLevel::kWarning);
  std::printf("Ablations of BENU design choices\n");
  Graph data = LoadDataset("as-sim").RelabelByDegree();
  std::printf("data graph: as-sim, %zu vertices, %zu edges\n\n",
              data.NumVertices(), data.NumEdges());
  CacheSharingAblation(data);
  DegreeFilterAblation(data);
  VcbcAblation(data);
  std::printf(
      "\nExpected: the shared cache reaches a higher hit rate than the\n"
      "same bytes split per thread (inter-task locality, §V-A); the\n"
      "degree filter cuts adjacency requests on hub-seeking patterns; \n"
      "VCBC shrinks the emitted result volume by the compression ratio\n"
      "CBF reports.\n");
  return 0;
}
