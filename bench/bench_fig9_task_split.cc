// Fig. 9 reproduction (Exp-4): effects of the task splitting technique on
// (a) the distribution of task execution times and (b) the per-worker
// (reducer) load balance, for q5 on the ok-sim stand-in with τ = 500.
//
// Paper shape to reproduce: without splitting, a handful of giant tasks
// (power-law hubs) dominate and skew the reducers; with splitting the
// maximum task time collapses by orders of magnitude while the task count
// rises only slightly, and worker loads even out.

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "plan/plan_search.h"

namespace {

using namespace benu;
using namespace benu::bench;

void Summarize(const char* label, const ClusterRunResult& result) {
  std::vector<double> times = result.task_virtual_us;
  std::sort(times.begin(), times.end());
  const double max_t = times.empty() ? 0 : times.back();
  const double p50 = times.empty() ? 0 : times[times.size() / 2];
  const double p99 = times.empty() ? 0 : times[times.size() * 99 / 100];
  std::printf("%s\n", label);
  std::printf("  tasks=%zu  p50=%.0fus  p99=%.0fus  max=%.0fus\n",
              result.num_tasks, p50, p99, max_t);
  double min_busy = 1e300;
  double max_busy = 0;
  for (const WorkerSummary& w : result.workers) {
    min_busy = std::min(min_busy, w.busy_virtual_us);
    max_busy = std::max(max_busy, w.busy_virtual_us);
  }
  std::printf(
      "  worker busy time: min=%.0fus max=%.0fus imbalance=%.2fx  "
      "makespan=%.3fs\n",
      min_busy, max_busy, min_busy > 0 ? max_busy / min_busy : 0,
      result.virtual_seconds);
}

}  // namespace

int main() {
  SetLogLevel(LogLevel::kWarning);
  std::printf("Fig. 9 — task splitting (pattern q5, power-law graph)\n");
  Graph raw = LoadDataset(FullScale() ? "ok-sim" : "as-sim");
  Graph data = raw.RelabelByDegree();
  std::printf("data graph: %zu vertices, %zu edges, max degree %zu\n\n",
              data.NumVertices(), data.NumEdges(), data.MaxDegree());

  Graph pattern = LoadPattern("q5");
  auto plan = GenerateBestPlan(pattern, DataGraphStats::FromGraph(data),
                               {.optimize = true, .apply_vcbc = true});
  BENU_CHECK(plan.ok());

  ClusterConfig config = PaperCluster();
  config.num_workers = 16;
  config.threads_per_worker = 4;

  config.task_split_threshold = 0;
  ClusterSimulator without(data, config);
  auto result_without = without.Run(plan->plan);
  BENU_CHECK(result_without.ok());
  Summarize("(a) without task splitting", *result_without);

  const uint32_t tau = FullScale() ? 500 : 32;
  config.task_split_threshold = tau;
  ClusterSimulator with(data, config);
  auto result_with = with.Run(plan->plan);
  BENU_CHECK(result_with.ok());
  char label[64];
  std::snprintf(label, sizeof(label), "(b) with task splitting (tau=%u)",
                tau);
  Summarize(label, *result_with);

  BENU_CHECK(result_with->total_matches == result_without->total_matches);
  std::printf(
      "\nShape check vs paper: splitting shrinks the maximum task time by\n"
      "orders of magnitude with only a slight task-count increase\n"
      "(paper: 3.07M -> 3.12M) and evens out the per-reducer workloads.\n");
  return 0;
}
