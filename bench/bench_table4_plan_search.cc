// Table IV reproduction (Exp-1): efficiency of best execution plan
// generation — relative α (estimation calls / Σ P(n,i)), relative β
// (optimized plans generated / n!), and wall time, for the Fig. 6
// queries, cliques, and connected random pattern graphs.
//
// Paper shape to reproduce: β/n! stays below ~15% everywhere, below 1%
// for random graphs; dual pruning collapses cliques almost entirely; plan
// generation takes well under a second for realistic patterns.

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/stopwatch.h"
#include "plan/plan_search.h"

namespace {

using namespace benu;
using namespace benu::bench;

void Report(const std::string& label, const Graph& pattern, int repeats) {
  const DataGraphStats stats{4.8e6, 4.3e7};  // LiveJournal-scale density
  double alpha_rel = 0;
  double beta_rel = 0;
  double seconds = 0;
  for (int r = 0; r < repeats; ++r) {
    auto result = GenerateBestPlan(pattern, stats);
    BENU_CHECK(result.ok()) << result.status().ToString();
    alpha_rel += 100.0 * static_cast<double>(result->estimate_calls) /
                 AlphaUpperBound(pattern.NumVertices());
    beta_rel += 100.0 * static_cast<double>(result->plans_generated) /
                BetaUpperBound(pattern.NumVertices());
    seconds += result->elapsed_seconds;
  }
  std::printf("%-12s %8.2f%% %8.3f%% %9.4fs\n", label.c_str(),
              alpha_rel / repeats, beta_rel / repeats, seconds / repeats);
}

void ReportRandom(size_t n, int graphs) {
  const DataGraphStats stats{4.8e6, 4.3e7};
  double alpha_rel = 0;
  double beta_rel = 0;
  double seconds = 0;
  for (int i = 0; i < graphs; ++i) {
    auto pattern =
        GenerateRandomConnected(n, 0.4, 5000 + n * 100 + static_cast<uint64_t>(i));
    BENU_CHECK(pattern.ok());
    auto result = GenerateBestPlan(*pattern, stats);
    BENU_CHECK(result.ok()) << result.status().ToString();
    alpha_rel += 100.0 * static_cast<double>(result->estimate_calls) /
                 AlphaUpperBound(n);
    beta_rel +=
        100.0 * static_cast<double>(result->plans_generated) / BetaUpperBound(n);
    seconds += result->elapsed_seconds;
  }
  std::printf("random n=%-3zu %8.2f%% %8.3f%% %9.4fs   (avg over %d graphs)\n",
              n, alpha_rel / graphs, beta_rel / graphs, seconds / graphs,
              graphs);
}

}  // namespace

int main() {
  SetLogLevel(LogLevel::kWarning);
  std::printf("Table IV — efficiency of best execution plan generation\n");
  std::printf("%-12s %9s %9s %10s\n", "pattern", "rel-a", "rel-b", "time");

  for (const std::string& name : Fig6QueryNames()) {
    Report(name, LoadPattern(name), /*repeats=*/3);
  }
  const size_t max_clique = FullScale() ? 10 : 8;
  for (size_t k = 4; k <= max_clique; ++k) {
    Report("clique" + std::to_string(k), MakeClique(k), /*repeats=*/1);
  }
  ReportRandom(7, FullScale() ? 100 : 25);
  ReportRandom(8, FullScale() ? 50 : 10);
  ReportRandom(9, FullScale() ? 10 : 3);
  if (FullScale()) ReportRandom(10, 2);

  std::printf(
      "\nShape check vs paper: relative beta < 15%% in all cases and < 1%%\n"
      "for random patterns; cliques collapse to a single candidate order\n"
      "under dual pruning; times are negligible next to enumeration.\n");
  return 0;
}
