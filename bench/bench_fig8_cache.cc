// Fig. 8 reproduction (Exp-3): effects of the local database cache
// capacity on (a) cache hit rate, (b) communication cost, (c) execution
// time, for q4 and q5 on the ok-sim stand-in. Capacity is expressed
// relative to the data graph size, as in the paper.
//
// Paper shape to reproduce: hit rate climbs steeply with capacity (85%+ on
// q4 at 10%, >90% by 20%); communication cost and execution time fall
// accordingly. q5 (the 5-cycle) needs more capacity than q4 before its
// hit rate catches up.

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "plan/plan_search.h"

int main() {
  using namespace benu;
  using namespace benu::bench;
  SetLogLevel(LogLevel::kWarning);

  Graph raw = LoadDataset(FullScale() ? "ok-sim" : "as-sim");
  Graph data = raw.RelabelByDegree();
  const size_t graph_bytes = data.AdjacencyBytes();
  std::printf("Fig. 8 — local database cache capacity sweep\n");
  std::printf("data graph: %zu vertices, %zu edges, adjacency payload %s\n\n",
              data.NumVertices(), data.NumEdges(),
              HumanBytes(graph_bytes).c_str());

  const double fractions[] = {0.0, 0.025, 0.05, 0.1, 0.2, 0.4, 1.0};
  for (const std::string& pattern_name : {std::string("q4"), std::string("q5")}) {
    Graph pattern = LoadPattern(pattern_name);
    auto plan = GenerateBestPlan(pattern, DataGraphStats::FromGraph(data),
                                 {.optimize = true, .apply_vcbc = true});
    BENU_CHECK(plan.ok());
    std::printf("pattern %s\n", pattern_name.c_str());
    std::printf("  %-9s %10s %14s %14s %12s\n", "capacity", "hit-rate",
                "db-queries", "comm-bytes", "virt-time");
    for (double fraction : fractions) {
      ClusterConfig config = PaperCluster();
      config.num_workers = 4;
      config.threads_per_worker = 4;
      config.db_cache_bytes = static_cast<size_t>(
          fraction * static_cast<double>(graph_bytes));
      ClusterSimulator cluster(data, config);
      auto result = cluster.Run(plan->plan);
      BENU_CHECK(result.ok()) << result.status().ToString();
      std::printf("  %7.1f%% %9.1f%% %14s %14s %11.3fs\n", 100 * fraction,
                  100 * result->CacheHitRate(),
                  HumanCount(result->db_queries).c_str(),
                  HumanBytes(result->bytes_fetched).c_str(),
                  result->virtual_seconds);
    }
    std::printf("\n");
  }
  std::printf(
      "Shape check vs paper: hit rate rises monotonically with capacity and\n"
      "communication cost / execution time fall; q4 saturates earlier than\n"
      "q5, matching Fig. 8's 85%% vs 43%% at the 10%% capacity point.\n");
  return 0;
}
