// Fig. 8 reproduction (Exp-3): effects of the local database cache
// capacity on (a) cache hit rate, (b) communication cost, (c) execution
// time, for q4 and q5 on the ok-sim stand-in. Capacity is expressed
// relative to the data graph size, as in the paper.
//
// Paper shape to reproduce: hit rate climbs steeply with capacity (85%+ on
// q4 at 10%, >90% by 20%); communication cost and execution time fall
// accordingly. q5 (the 5-cycle) needs more capacity than q4 before its
// hit rate catches up.

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "plan/plan_search.h"

int main() {
  using namespace benu;
  using namespace benu::bench;
  SetLogLevel(LogLevel::kWarning);

  Graph raw = LoadDataset(FullScale() ? "ok-sim" : "as-sim");
  Graph data = raw.RelabelByDegree();
  const size_t graph_bytes = data.AdjacencyBytes();
  std::printf("Fig. 8 — local database cache capacity sweep\n");
  std::printf("data graph: %zu vertices, %zu edges, adjacency payload %s\n\n",
              data.NumVertices(), data.NumEdges(),
              HumanBytes(graph_bytes).c_str());

  // Hit-rate convention (see DbCacheStats::HitRate): a hit is a request
  // served from the cache without waiting on any store round trip.
  // Coalesced misses — served by piggybacking on a sibling thread's
  // in-flight query — waited a full round trip, so they count in the
  // denominator but not the numerator; the stall column reports them.
  const std::vector<double> fractions =
      SmokeScale() ? std::vector<double>{0.0, 0.1, 1.0}
                   : std::vector<double>{0.0, 0.025, 0.05, 0.1, 0.2, 0.4, 1.0};
  std::vector<BenchRecord> records;
  for (const std::string& pattern_name : {std::string("q4"), std::string("q5")}) {
    Graph pattern = LoadPattern(pattern_name);
    auto plan = GenerateBestPlan(pattern, DataGraphStats::FromGraph(data),
                                 {.optimize = true, .apply_vcbc = true});
    BENU_CHECK(plan.ok());
    std::printf("pattern %s\n", pattern_name.c_str());
    std::printf("  %-9s %10s %8s %14s %14s %12s\n", "capacity", "hit-rate",
                "stall", "db-queries", "comm-bytes", "virt-time");
    for (double fraction : fractions) {
      ClusterConfig config = PaperCluster();
      config.num_workers = 4;
      config.threads_per_worker = 4;
      config.db_cache_bytes = static_cast<size_t>(
          fraction * static_cast<double>(graph_bytes));
      ClusterSimulator cluster(data, config);
      auto result = cluster.Run(plan->plan);
      BENU_CHECK(result.ok()) << result.status().ToString();
      const double stall_rate =
          result->adjacency_requests == 0
              ? 0.0
              : static_cast<double>(result->db_queries +
                                    result->coalesced_fetches) /
                    static_cast<double>(result->adjacency_requests);
      std::printf("  %7.1f%% %9.1f%% %7.1f%% %14s %14s %11.3fs\n",
                  100 * fraction, 100 * result->CacheHitRate(),
                  100 * stall_rate, HumanCount(result->db_queries).c_str(),
                  HumanBytes(result->bytes_fetched).c_str(),
                  result->virtual_seconds);
      BenchRecord rec;
      rec.name = pattern_name + "/capacity_" +
                 std::to_string(static_cast<int>(1000 * fraction));
      rec.params = {{"pattern", pattern_name},
                    {"capacity_fraction", std::to_string(fraction)}};
      rec.seconds = result->virtual_seconds;
      rec.counters = {
          {"hit_rate", result->CacheHitRate()},
          {"stall_rate", stall_rate},
          {"db_queries", static_cast<double>(result->db_queries)},
          {"coalesced", static_cast<double>(result->coalesced_fetches)},
          {"comm_bytes", static_cast<double>(result->bytes_fetched)},
          {"matches", static_cast<double>(result->total_matches)}};
      records.push_back(std::move(rec));
    }
    std::printf("\n");
  }
  WriteBenchJson("BENCH_fig8_cache.json", "fig8_cache", records);
  std::printf(
      "Shape check vs paper: hit rate rises monotonically with capacity and\n"
      "communication cost / execution time fall; q4 saturates earlier than\n"
      "q5, matching Fig. 8's 85%% vs 43%% at the 10%% capacity point.\n");
  return 0;
}
