// Table V reproduction (Exp-5): BENU vs the CBF-like join-based baseline
// on q1–q9 over the stand-in data graphs. Each cell reports the simulated
// cluster execution time and cumulative communication, like the paper's
// "time/bytes" cells; baseline failures print CRASH (intermediate-result
// budget exceeded), mirroring the CRASH entries of Table V.
//
// Time model (both systems on the same virtual 16×24-thread cluster over
// 1 Gbps): BENU reports the cluster simulator's makespan (measured task
// times + simulated DB latency/bandwidth); the join baseline reports its
// measured CPU time spread perfectly over the cluster's threads plus its
// shuffled bytes over the aggregate bandwidth — deliberately generous to
// the baseline (see bench_util.h).
//
// Paper shape to reproduce: BENU wins nearly everywhere (up to ~10x),
// with the largest gaps on the complex queries whose cores have huge
// match counts; the join baseline shuffles partial results far larger
// than the data graph and crashes/times out on the hardest cases.
//
// Default runs the full q1–q9 column on as-sim and q1–q5 on lj-sim;
// BENU_BENCH_FULL=1 runs all nine queries on both plus ok-sim.

#include <cstdio>
#include <string>
#include <vector>

#include "baselines/join_based.h"
#include "bench/bench_util.h"
#include "common/stopwatch.h"
#include "plan/plan_search.h"
#include "plan/symmetry_breaking.h"

int main() {
  using namespace benu;
  using namespace benu::bench;
  SetLogLevel(LogLevel::kWarning);
  std::setvbuf(stdout, nullptr, _IOLBF, 0);

  struct DatasetSpec {
    const char* name;
    size_t num_queries;  // prefix of q1..q9 run at this scale
  };
  std::vector<DatasetSpec> datasets = {{"as-sim", 9}, {"lj-sim", 5}};
  if (FullScale()) {
    datasets = {{"as-sim", 9}, {"lj-sim", 9}, {"ok-sim", 9}};
  } else if (SmokeScale()) {
    datasets = {{"as-sim", 4}};
  }

  const ClusterConfig cluster = PaperCluster();
  std::printf("Table V — BENU vs CBF-like join baseline\n");
  std::printf("(virtual %dx%d-thread cluster over 1 Gbps; cells are\n",
              cluster.num_workers, cluster.threads_per_worker);
  std::printf(" cluster-time / communication)\n");
  for (const DatasetSpec& spec : datasets) {
    Graph raw = LoadDataset(spec.name);
    Graph data = raw.RelabelByDegree();
    std::printf("\ndataset %s (%zu vertices, %zu edges, adjacency %s)\n",
                spec.name, data.NumVertices(), data.NumEdges(),
                HumanBytes(data.AdjacencyBytes()).c_str());
    std::printf("%-4s %24s %32s %7s %10s\n", "q", "CBF-like (join)", "BENU",
                "time-r", "comm-r");
    const auto queries = Fig6QueryNames();
    for (size_t qi = 0; qi < spec.num_queries; ++qi) {
      const std::string& q = queries[qi];
      Graph pattern = LoadPattern(q);
      auto constraints = ComputeSymmetryBreakingConstraints(pattern);

      // Join-based baseline with a bounded intermediate-result budget.
      JoinBasedConfig join_config;
      join_config.max_intermediate_tuples = 30u << 20;
      Stopwatch join_watch;
      auto join = RunJoinBased(data, pattern, constraints, join_config);
      const double join_cpu = join_watch.ElapsedSeconds();

      // BENU on the simulated paper cluster (compressed plans).
      BenuOptions options;
      options.cluster = cluster;
      options.plan.apply_vcbc = true;
      auto benu = RunBenu(data, pattern, options);
      BENU_CHECK(benu.ok()) << benu.status().ToString();
      const double benu_time = benu->run.virtual_seconds;

      char join_cell[64];
      double join_time = 0;
      Count join_comm = 0;
      if (join.ok()) {
        join_comm = join->shuffled_bytes + join->index_bytes;
        join_time = BaselineVirtualSeconds(join_cpu, join_comm, cluster,
                                           /*disk_materialized=*/true);
        std::snprintf(join_cell, sizeof(join_cell), "%9.3fs /%9s",
                      join_time, HumanBytes(join_comm).c_str());
      } else {
        std::snprintf(join_cell, sizeof(join_cell), "%9s /%9s", "CRASH",
                      "-");
      }
      char benu_cell[64];
      std::snprintf(benu_cell, sizeof(benu_cell), "%9.3fs /%9s (%s)",
                    benu_time, HumanBytes(benu->run.bytes_fetched).c_str(),
                    HumanCount(benu->run.total_matches).c_str());
      char ratios[32];
      if (join.ok() && benu_time > 0 && benu->run.bytes_fetched > 0) {
        std::snprintf(ratios, sizeof(ratios), "%6.1fx %9.1fx",
                      join_time / benu_time,
                      static_cast<double>(join_comm) /
                          static_cast<double>(benu->run.bytes_fetched));
        if (join->matches != benu->run.total_matches) {
          std::snprintf(ratios, sizeof(ratios), "%s", "MISMATCH");
        }
      } else {
        std::snprintf(ratios, sizeof(ratios), "%6s %9s", "-", "-");
      }
      std::printf("%-4s %24s %36s %s\n", q.c_str(), join_cell, benu_cell,
                  ratios);
    }
  }
  std::printf(
      "\nShape check vs paper (see EXPERIMENTS.md): (1) the join baseline\n"
      "CRASHes on the hard queries (q1/q7/q9, q5 on larger graphs) while\n"
      "BENU completes every cell, matching Table V's CRASH/timeout rows;\n"
      "(2) the join baseline's shuffled bytes exceed BENU's communication\n"
      "by 1-2 orders of magnitude (comm-r column) and dwarf the data\n"
      "graph itself; (3) time ratios favor BENU where intermediate\n"
      "results blow up. At this laptop scale in-memory compute dominates\n"
      "and the idealized join can win raw time on match-dense easy\n"
      "queries; the paper's uniform time gaps come from the same shuffle\n"
      "volumes paid through a disk-based MapReduce at 100-1000x scale.\n");
  return 0;
}
