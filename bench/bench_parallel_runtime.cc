// Parallel-runtime bench: real wall-clock speedup of the concurrent
// cluster runtime (all p workers' execution threads on one shared pool,
// work-stealing task claims, single-flight DB-cache misses) over the
// sequential seed runtime, which executed the p virtual workers one
// after another. The workload is the acceptance configuration:
// 4 workers × 2 execution threads with task splitting enabled.
//
// Shape to observe: on a machine with ≥ 4 cores, real_seconds improves
// ≥ 2x while total_matches is bit-identical to the single-threaded run.
// On fewer cores the runtime clamps its thread counts and the speedup
// degrades toward 1x by design (virtual-time results are unaffected).

#include <algorithm>
#include <cstdio>
#include <thread>

#include "bench/bench_util.h"
#include "plan/plan_search.h"

namespace {

struct Measured {
  benu::ClusterRunResult result;
  double best_real_seconds = 0;
};

Measured Measure(const benu::Graph& data, const benu::ExecutionPlan& plan,
                 const benu::ClusterConfig& config, int iterations) {
  Measured out;
  out.best_real_seconds = 1e300;
  for (int i = 0; i < iterations; ++i) {
    benu::ClusterSimulator cluster(data, config);
    auto result = cluster.Run(plan);
    BENU_CHECK(result.ok()) << result.status().ToString();
    out.best_real_seconds =
        std::min(out.best_real_seconds, result->real_seconds);
    out.result = *std::move(result);
  }
  return out;
}

}  // namespace

int main() {
  using namespace benu;
  using namespace benu::bench;
  SetLogLevel(LogLevel::kWarning);

  auto raw = GenerateBarabasiAlbert(SizeFor(20000, 4000, 1000), 8, 7);
  BENU_CHECK(raw.ok());
  Graph data = raw->RelabelByDegree();
  Graph pattern = LoadPattern("q4");
  auto plan = GenerateBestPlan(pattern, DataGraphStats::FromGraph(data),
                               {.optimize = true});
  BENU_CHECK(plan.ok());

  ClusterConfig config;
  config.num_workers = 4;
  config.execution_threads = 2;
  config.task_split_threshold = 32;
  config.db_cache_bytes = 64u << 20;

  // Sequential seed: one OS thread drains the workers one after another.
  ClusterConfig sequential = config;
  sequential.execution_threads = 1;
  sequential.max_runtime_threads = 1;

  const int iterations = static_cast<int>(SizeFor(5, 3, 1));
  std::printf("Parallel runtime — 4 workers x 2 execution threads, q4 on "
              "BA(n=%zu, m=8); hardware_concurrency=%u\n",
              static_cast<size_t>(data.NumVertices()),
              std::thread::hardware_concurrency());

  Measured seq = Measure(data, plan->plan, sequential, iterations);
  Measured par = Measure(data, plan->plan, config, iterations);

  std::printf("  %-28s %12s %10s %10s %10s\n", "runtime", "real-time",
              "threads", "steals", "coalesced");
  std::printf("  %-28s %11.3fs %10d %10s %10s\n", "sequential (seed order)",
              seq.best_real_seconds, seq.result.runtime_threads,
              HumanCount(seq.result.steals).c_str(),
              HumanCount(seq.result.coalesced_fetches).c_str());
  std::printf("  %-28s %11.3fs %10d %10s %10s\n", "parallel (shared pool)",
              par.best_real_seconds, par.result.runtime_threads,
              HumanCount(par.result.steals).c_str(),
              HumanCount(par.result.coalesced_fetches).c_str());
  std::printf("  speedup: %.2fx\n",
              seq.best_real_seconds / std::max(1e-12, par.best_real_seconds));

  std::printf("\n  per-worker real seconds (parallel run):");
  for (const WorkerSummary& w : par.result.workers) {
    std::printf(" %.3f", w.real_seconds);
  }
  std::printf("\n");

  BENU_CHECK(par.result.total_matches == seq.result.total_matches)
      << "parallel runtime changed the match count: "
      << par.result.total_matches << " vs " << seq.result.total_matches;

  std::vector<BenchRecord> records;
  for (const auto* m : {&seq, &par}) {
    BenchRecord rec;
    rec.name = m == &seq ? "sequential" : "parallel";
    rec.params = {{"workers", "4"},
                  {"execution_threads",
                   std::to_string(m == &seq ? 1 : config.execution_threads)}};
    rec.repetitions = iterations;
    rec.seconds = m->best_real_seconds;
    rec.counters = {
        {"runtime_threads", static_cast<double>(m->result.runtime_threads)},
        {"steals", static_cast<double>(m->result.steals)},
        {"coalesced", static_cast<double>(m->result.coalesced_fetches)},
        {"matches", static_cast<double>(m->result.total_matches)},
        {"speedup", seq.best_real_seconds /
                        std::max(1e-12, m->best_real_seconds)}};
    records.push_back(std::move(rec));
  }
  WriteBenchJson("BENCH_parallel_runtime.json", "parallel_runtime", records);
  std::printf(
      "\nCorrectness: total_matches = %s, bit-identical across runtimes.\n"
      "Shape check: with >= 4 cores the parallel runtime should be >= 2x\n"
      "faster; per-worker real times overlap (they no longer sum to the\n"
      "total), and stolen claims appear when a worker's task deques drain\n"
      "unevenly.\n",
      HumanCount(par.result.total_matches).c_str());
  return 0;
}
