// Service throughput bench: a closed-loop multi-client workload against
// the resident enumeration service (ServiceTcpServer + QueryEngine over
// real sockets), sweeping the number of concurrent clients.
//
// Each client owns one connection and runs a closed loop over a mixed
// workload — the full unlabeled pattern catalog (q1–q9 plus the named
// cliques and cycles) and two labeled queries — awaiting each result
// before submitting the next. Every
// count is CHECKed bit-identical to a solo RunBenu over the same graph
// and labels, so the throughput numbers are for *correct* answers under
// interleaving, not best-effort ones.
//
// Reported per client count: queries/sec (client-observed, wall clock)
// and p50/p99 admission-to-result latency measured at the client, plus
// the engine's plan-cache hit counters. Expected shape: the first sweep
// pays one plan search per distinct query shape; every later
// submission is a cache hit, and qps grows with clients until the
// execution pool saturates. Results go to BENCH_service.json; the JSON
// schema is documented in docs/benchmarks.md.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "distributed/benu_driver.h"
#include "graph/patterns.h"
#include "service/query_engine.h"
#include "service/service_client.h"
#include "service/service_server.h"

int main() {
  using namespace benu;
  using namespace benu::bench;
  SetLogLevel(LogLevel::kWarning);

  const size_t vertices = SizeFor(600, 300, 150);
  const size_t edges = vertices * 8;
  Graph data = std::move(GenerateErdosRenyi(vertices, edges, 7)).value();

  // Deterministic labels (v % 3 on input vertex ids) so the labeled
  // queries in the mix have something to select on; the unlabeled
  // queries ignore them.
  std::vector<int> data_labels(data.NumVertices());
  for (size_t v = 0; v < data_labels.size(); ++v) {
    data_labels[v] = static_cast<int>(v % 3);
  }

  struct QueryItem {
    std::string name;
    std::vector<int> labels;  // empty = unlabeled
    Count solo = 0;
  };
  std::vector<QueryItem> mix;
  for (const std::string& name : AllPatternNames()) {
    mix.push_back({name, {}});
  }
  mix.push_back({"triangle", {0, 1, 2}});
  mix.push_back({"diamond", {0, 1, 2, 1}});

  // Reference counts the service must reproduce, one solo run each.
  for (QueryItem& item : mix) {
    Graph pattern = std::move(GetPattern(item.name)).value();
    BenuOptions options;
    options.data_labels = data_labels;
    options.plan.pattern_labels = item.labels;
    auto result = RunBenu(data, pattern, options);
    BENU_CHECK(result.ok()) << item.name << ": "
                            << result.status().ToString();
    item.solo = result->run.total_matches;
  }

  service::ServiceConfig config;
  config.execution_threads = 4;
  config.db_cache_bytes = 32u << 20;
  config.max_active_queries = 64;
  auto engine = service::QueryEngine::Create(data, config,
                                             /*transport=*/nullptr,
                                             data_labels);
  BENU_CHECK(engine.ok()) << engine.status().ToString();
  service::QueryEngine* engine_ptr = engine->get();
  service::ServiceTcpServer server(std::move(*engine));
  BENU_CHECK(server.Listen(0).ok());
  BENU_CHECK(server.Start().ok());

  std::printf("Service bench — %zu-query mix on er:%zu,%zu, "
              "%d execution threads, port %u\n\n",
              mix.size(), data.NumVertices(), data.NumEdges(),
              config.execution_threads, server.port());

  const size_t rounds = SizeFor(6, 4, 2);
  const std::vector<size_t> client_counts =
      SmokeScale() ? std::vector<size_t>{1, 2}
                   : std::vector<size_t>{1, 2, 4, 8};

  std::vector<BenchRecord> records;
  double qps_single = 0;
  service::QueryEngine::EngineStats before = engine_ptr->stats();

  std::printf("  %-10s %10s %12s %12s %10s %10s\n", "clients", "queries",
              "qps", "p50-lat", "p99-lat", "plan-hits");
  for (size_t clients : client_counts) {
    std::vector<std::vector<double>> latencies(clients);
    const auto start = std::chrono::steady_clock::now();
    std::vector<std::thread> workers;
    for (size_t c = 0; c < clients; ++c) {
      workers.emplace_back([&, c] {
        auto client_or =
            service::ServiceClient::Connect("127.0.0.1", server.port());
        BENU_CHECK(client_or.ok()) << client_or.status().ToString();
        std::unique_ptr<service::ServiceClient> client =
            std::move(*client_or);
        for (size_t r = 0; r < rounds; ++r) {
          for (size_t i = 0; i < mix.size(); ++i) {
            // Offset the walk per client so concurrent sessions overlap
            // on *different* shapes most of the time.
            const QueryItem& item = mix[(i + c) % mix.size()];
            wire::QuerySpec spec;
            spec.pattern = item.name;
            spec.pattern_labels.assign(item.labels.begin(),
                                       item.labels.end());
            const auto t0 = std::chrono::steady_clock::now();
            auto outcome = client->Execute(spec);
            const std::chrono::duration<double, std::micro> lat =
                std::chrono::steady_clock::now() - t0;
            BENU_CHECK(outcome.ok())
                << item.name << ": " << outcome.status().ToString();
            BENU_CHECK(outcome->matches == item.solo)
                << item.name << " under " << clients
                << " concurrent clients: " << outcome->matches << " vs solo "
                << item.solo;
            latencies[c].push_back(lat.count());
          }
        }
      });
    }
    for (std::thread& t : workers) t.join();
    const std::chrono::duration<double> elapsed =
        std::chrono::steady_clock::now() - start;

    std::vector<double> all;
    for (const auto& per_client : latencies) {
      all.insert(all.end(), per_client.begin(), per_client.end());
    }
    std::sort(all.begin(), all.end());
    const auto percentile = [&](double p) {
      return all[std::min(all.size() - 1,
                          static_cast<size_t>(p * all.size()))];
    };
    const double qps = static_cast<double>(all.size()) / elapsed.count();
    const service::QueryEngine::EngineStats after = engine_ptr->stats();
    const uint64_t hits = after.plan_hits - before.plan_hits;
    const uint64_t misses = after.plan_misses - before.plan_misses;
    before = after;
    if (clients == 1) qps_single = qps;

    std::printf("  %-10zu %10zu %12.1f %10.0fus %8.0fus %10llu\n", clients,
                all.size(), qps, percentile(0.50), percentile(0.99),
                static_cast<unsigned long long>(hits));

    BenchRecord rec;
    rec.name = "clients" + std::to_string(clients);
    rec.params = {{"clients", std::to_string(clients)},
                  {"rounds", std::to_string(rounds)},
                  {"mix_size", std::to_string(mix.size())}};
    rec.seconds = elapsed.count();
    rec.counters = {{"queries", static_cast<double>(all.size())},
                    {"qps", qps},
                    {"p50_us", percentile(0.50)},
                    {"p99_us", percentile(0.99)},
                    {"plan_hits", static_cast<double>(hits)},
                    {"plan_misses", static_cast<double>(misses)}};
    records.push_back(std::move(rec));
  }

  // Acceptance: after the sweeps every distinct shape has been planned
  // exactly once — all later submissions were plan-cache hits — and no
  // query was rejected or lost (closed-loop clients stay far below
  // max_active_queries).
  const service::QueryEngine::EngineStats final_stats = engine_ptr->stats();
  BENU_CHECK(final_stats.plan_misses == mix.size())
      << final_stats.plan_misses << " plan searches for " << mix.size()
      << " distinct shapes";
  BENU_CHECK(final_stats.rejected == 0 &&
             final_stats.completed == final_stats.admitted)
      << "admitted=" << final_stats.admitted
      << " completed=" << final_stats.completed
      << " rejected=" << final_stats.rejected;
  std::printf(
      "\nacceptance: %llu queries completed, every count bit-identical to "
      "solo, %zu plan searches total (all repeats were cache hits)\n",
      static_cast<unsigned long long>(final_stats.completed), mix.size());

  WriteBenchJson("BENCH_service.json", "service", records);
  std::printf(
      "\nShape check: single-client qps (%.1f) is the no-concurrency\n"
      "baseline; more closed-loop clients raise qps until the %d-thread\n"
      "execution pool saturates, while p99 latency grows with queueing.\n",
      qps_single, config.execution_threads);
  return 0;
}
