// Microbenchmarks (google-benchmark) of the building blocks underneath
// the table/figure harnesses: set intersection kernels, the DB cache hit
// and miss paths, the triangle cache, plan generation, and one full local
// search task. Useful for regression-tracking the executor's inner loops.
//
// Before the google-benchmark registrations run, main() executes the
// intersection-kernel suite (scalar merge/gallop vs AVX2 vs fused-filter,
// across size ratios) and writes the results to BENCH_kernels.json in the
// working directory, so successive PRs can track the kernel-layer perf
// trajectory mechanically.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/rng.h"
#include "common/stopwatch.h"
#include "core/executor.h"
#include "graph/generators.h"
#include "graph/patterns.h"
#include "graph/simd_intersect.h"
#include "plan/optimizer.h"
#include "plan/plan_generator.h"
#include "plan/plan_search.h"
#include "plan/symmetry_breaking.h"
#include "storage/db_cache.h"

namespace benu {
namespace {

VertexSet MakeArithmetic(size_t n, size_t stride, VertexId offset) {
  VertexSet s;
  s.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    s.push_back(static_cast<VertexId>(offset + i * stride));
  }
  return s;
}

void BM_IntersectBalanced(benchmark::State& state) {
  const auto n = static_cast<size_t>(state.range(0));
  VertexSet a = MakeArithmetic(n, 2, 0);
  VertexSet b = MakeArithmetic(n, 3, 0);
  VertexSet out;
  for (auto _ : state) {
    Intersect(a, b, &out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(2 * n));
}
BENCHMARK(BM_IntersectBalanced)->Arg(64)->Arg(1024)->Arg(16384);

void BM_IntersectSkewed(benchmark::State& state) {
  // Small probe against a large set: exercises the galloping kernel.
  VertexSet small = MakeArithmetic(16, 977, 3);
  VertexSet large = MakeArithmetic(static_cast<size_t>(state.range(0)), 1, 0);
  VertexSet out;
  for (auto _ : state) {
    Intersect(small, large, &out);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_IntersectSkewed)->Arg(1 << 12)->Arg(1 << 16)->Arg(1 << 20);

void BM_DbCacheHit(benchmark::State& state) {
  Graph g = std::move(GenerateBarabasiAlbert(10000, 8, 1)).value();
  DistributedKvStore store(g, 16);
  DbCache cache(&store, 1u << 30);
  cache.GetAdjacency(42);
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.GetAdjacency(42));
  }
}
BENCHMARK(BM_DbCacheHit);

void BM_DbCacheMiss(benchmark::State& state) {
  Graph g = std::move(GenerateBarabasiAlbert(100000, 4, 2)).value();
  DistributedKvStore store(g, 16);
  DbCache cache(&store, 0);  // never retains: always the miss path
  VertexId v = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.GetAdjacency(v));
    v = (v + 1) % g.NumVertices();
  }
}
BENCHMARK(BM_DbCacheMiss);

void BM_PlanSearch(benchmark::State& state) {
  Graph pattern = std::move(GetPattern("q" + std::to_string(state.range(0))))
                      .value();
  const DataGraphStats stats{4.8e6, 4.3e7};
  for (auto _ : state) {
    auto result = GenerateBestPlan(pattern, stats);
    benchmark::DoNotOptimize(result.ok());
  }
}
BENCHMARK(BM_PlanSearch)->Arg(1)->Arg(4)->Arg(7)->Arg(9);

void BM_LocalSearchTask(benchmark::State& state) {
  Graph data = std::move(GenerateBarabasiAlbert(20000, 8, 3))
                   .value()
                   .RelabelByDegree();
  Graph pattern = std::move(GetPattern("q4")).value();
  auto plan = GenerateBestPlan(pattern, DataGraphStats::FromGraph(data));
  DirectAdjacencyProvider provider(&data);
  TriangleCache tcache;
  auto executor = PlanExecutor::Create(&plan->plan, &provider, &tcache);
  CountingConsumer consumer(plan->plan);
  VertexId v = data.NumVertices() - 1;  // hottest (highest-degree) tasks
  for (auto _ : state) {
    (*executor)->RunTask(SearchTask{v, 0, 1}, &consumer);
    v = (v == 0) ? static_cast<VertexId>(data.NumVertices() - 1) : v - 1;
  }
  state.SetLabel("matches/iter varies by start vertex");
}
BENCHMARK(BM_LocalSearchTask);

// ---------------------------------------------------------------------
// Intersection-kernel suite: hand-rolled (not google-benchmark) so one
// run emits a single machine-readable JSON file with the scalar-vs-SIMD
// speedups, independent of benchmark CLI flags.

struct KernelResult {
  std::string test_case;
  std::string kernel;
  size_t small_size = 0;
  size_t large_size = 0;
  double ns_per_call = 0;
  double speedup_vs_scalar = 1.0;
};

VertexSet RandomSorted(Rng* rng, size_t size, uint64_t universe) {
  VertexSet s;
  s.reserve(size);
  for (size_t i = 0; i < size; ++i) {
    s.push_back(static_cast<VertexId>(rng->NextBounded(universe)));
  }
  std::sort(s.begin(), s.end());
  s.erase(std::unique(s.begin(), s.end()), s.end());
  return s;
}

// Best-of-3 nanoseconds per call of `fn` (called `iters` times per rep).
constexpr int kTimeReps = 3;

template <typename Fn>
double TimeNs(size_t iters, Fn&& fn) {
  double best = 1e18;
  for (int rep = 0; rep < kTimeReps; ++rep) {
    Stopwatch watch;
    for (size_t i = 0; i < iters; ++i) fn();
    best = std::min(best, watch.ElapsedSeconds() * 1e9 /
                              static_cast<double>(iters));
  }
  return best;
}

void RunKernelSuite(const char* json_path) {
  const bool simd_at_start = simd::SimdEnabled();
  std::vector<KernelResult> results;
  Rng rng(42);
  // Size ratios from balanced to beyond the galloping threshold (32); the
  // dispatcher picks merge/SIMD below it and galloping above it.
  const size_t kSmall = bench::SmokeScale() ? 256 : 4096;
  const size_t ratios[] = {1, 4, 16, 64, 256};
  std::printf("Intersection kernels (CPU kernel family: %s)\n",
              simd::ActiveKernelName());
  std::printf("%-28s %10s %10s %12s %10s\n", "case", "|small|", "|large|",
              "ns/call", "speedup");
  for (size_t ratio : ratios) {
    const uint64_t universe = 2 * kSmall * ratio;  // ~50% hit density
    const VertexSet a = RandomSorted(&rng, kSmall, universe);
    const VertexSet b = RandomSorted(&rng, kSmall * ratio, universe);
    const size_t iters =
        (ratio == 1 ? 16384u : 4096u) / (bench::SmokeScale() ? 64 : 1);
    VertexSet out;
    const VertexId excludes[] = {a.empty() ? 0 : a[a.size() / 2]};
    const VertexId lo = static_cast<VertexId>(universe / 16);
    const VertexId hi = static_cast<VertexId>(universe - universe / 16);

    struct Variant {
      const char* name;
      bool simd;
      bool fused;
    };
    const Variant variants[] = {{"intersect/scalar", false, false},
                                {"intersect/simd", true, false},
                                {"intersect_fused/scalar", false, true},
                                {"intersect_fused/simd", true, true}};
    double scalar_ns = 0;
    double scalar_fused_ns = 0;
    for (const Variant& v : variants) {
      const bool effective = simd::SetSimdEnabled(v.simd);
      if (v.simd && !effective) continue;  // no AVX2 on this machine
      const double ns = TimeNs(iters, [&] {
        if (v.fused) {
          IntersectExcluding(ClampView(a, lo, hi), b, excludes, 1, &out);
        } else {
          Intersect(a, b, &out);
        }
      });
      if (!v.simd && !v.fused) scalar_ns = ns;
      if (!v.simd && v.fused) scalar_fused_ns = ns;
      KernelResult r;
      r.test_case = "ratio_" + std::to_string(ratio) + "/" + v.name;
      r.kernel = v.simd ? "avx2" : "scalar";
      r.small_size = a.size();
      r.large_size = b.size();
      r.ns_per_call = ns;
      const double base = v.fused ? scalar_fused_ns : scalar_ns;
      r.speedup_vs_scalar = base > 0 ? base / ns : 1.0;
      std::printf("%-28s %10zu %10zu %12.1f %9.2fx\n", r.test_case.c_str(),
                  r.small_size, r.large_size, r.ns_per_call,
                  r.speedup_vs_scalar);
      results.push_back(std::move(r));
    }

    // IntersectSize, both kernels, unlimited.
    double size_scalar_ns = 0;
    for (bool use_simd : {false, true}) {
      const bool effective = simd::SetSimdEnabled(use_simd);
      if (use_simd && !effective) continue;
      size_t sink = 0;
      const double ns = TimeNs(iters, [&] { sink += IntersectSize(a, b); });
      benchmark::DoNotOptimize(sink);
      if (!use_simd) size_scalar_ns = ns;
      KernelResult r;
      r.test_case = "ratio_" + std::to_string(ratio) + "/intersect_size/" +
                    (use_simd ? "simd" : "scalar");
      r.kernel = use_simd ? "avx2" : "scalar";
      r.small_size = a.size();
      r.large_size = b.size();
      r.ns_per_call = ns;
      r.speedup_vs_scalar =
          size_scalar_ns > 0 ? size_scalar_ns / ns : 1.0;
      std::printf("%-28s %10zu %10zu %12.1f %9.2fx\n", r.test_case.c_str(),
                  r.small_size, r.large_size, r.ns_per_call,
                  r.speedup_vs_scalar);
      results.push_back(std::move(r));
    }
  }
  simd::SetSimdEnabled(simd_at_start);

  std::vector<bench::BenchRecord> records;
  records.reserve(results.size());
  for (const KernelResult& r : results) {
    bench::BenchRecord rec;
    rec.name = r.test_case;
    rec.params = {{"kernel", r.kernel},
                  {"kernel_family", simd::ActiveKernelName()}};
    rec.repetitions = kTimeReps;
    rec.seconds = r.ns_per_call * 1e-9;
    rec.counters = {{"small", static_cast<double>(r.small_size)},
                    {"large", static_cast<double>(r.large_size)},
                    {"ns_per_call", r.ns_per_call},
                    {"speedup_vs_scalar", r.speedup_vs_scalar}};
    records.push_back(std::move(rec));
  }
  bench::WriteBenchJson(json_path, "kernels", records);
  std::printf("\n");
}

}  // namespace
}  // namespace benu

int main(int argc, char** argv) {
  benu::RunKernelSuite("BENCH_kernels.json");
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
