// Microbenchmarks (google-benchmark) of the building blocks underneath
// the table/figure harnesses: set intersection kernels, the DB cache hit
// and miss paths, the triangle cache, plan generation, and one full local
// search task. Useful for regression-tracking the executor's inner loops.

#include <benchmark/benchmark.h>

#include "core/executor.h"
#include "graph/generators.h"
#include "graph/patterns.h"
#include "plan/optimizer.h"
#include "plan/plan_generator.h"
#include "plan/plan_search.h"
#include "plan/symmetry_breaking.h"
#include "storage/db_cache.h"

namespace benu {
namespace {

VertexSet MakeArithmetic(size_t n, size_t stride, VertexId offset) {
  VertexSet s;
  s.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    s.push_back(static_cast<VertexId>(offset + i * stride));
  }
  return s;
}

void BM_IntersectBalanced(benchmark::State& state) {
  const auto n = static_cast<size_t>(state.range(0));
  VertexSet a = MakeArithmetic(n, 2, 0);
  VertexSet b = MakeArithmetic(n, 3, 0);
  VertexSet out;
  for (auto _ : state) {
    Intersect(a, b, &out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(2 * n));
}
BENCHMARK(BM_IntersectBalanced)->Arg(64)->Arg(1024)->Arg(16384);

void BM_IntersectSkewed(benchmark::State& state) {
  // Small probe against a large set: exercises the galloping kernel.
  VertexSet small = MakeArithmetic(16, 977, 3);
  VertexSet large = MakeArithmetic(static_cast<size_t>(state.range(0)), 1, 0);
  VertexSet out;
  for (auto _ : state) {
    Intersect(small, large, &out);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_IntersectSkewed)->Arg(1 << 12)->Arg(1 << 16)->Arg(1 << 20);

void BM_DbCacheHit(benchmark::State& state) {
  Graph g = std::move(GenerateBarabasiAlbert(10000, 8, 1)).value();
  DistributedKvStore store(g, 16);
  DbCache cache(&store, 1u << 30);
  cache.GetAdjacency(42);
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.GetAdjacency(42));
  }
}
BENCHMARK(BM_DbCacheHit);

void BM_DbCacheMiss(benchmark::State& state) {
  Graph g = std::move(GenerateBarabasiAlbert(100000, 4, 2)).value();
  DistributedKvStore store(g, 16);
  DbCache cache(&store, 0);  // never retains: always the miss path
  VertexId v = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.GetAdjacency(v));
    v = (v + 1) % g.NumVertices();
  }
}
BENCHMARK(BM_DbCacheMiss);

void BM_PlanSearch(benchmark::State& state) {
  Graph pattern = std::move(GetPattern("q" + std::to_string(state.range(0))))
                      .value();
  const DataGraphStats stats{4.8e6, 4.3e7};
  for (auto _ : state) {
    auto result = GenerateBestPlan(pattern, stats);
    benchmark::DoNotOptimize(result.ok());
  }
}
BENCHMARK(BM_PlanSearch)->Arg(1)->Arg(4)->Arg(7)->Arg(9);

void BM_LocalSearchTask(benchmark::State& state) {
  Graph data = std::move(GenerateBarabasiAlbert(20000, 8, 3))
                   .value()
                   .RelabelByDegree();
  Graph pattern = std::move(GetPattern("q4")).value();
  auto plan = GenerateBestPlan(pattern, DataGraphStats::FromGraph(data));
  DirectAdjacencyProvider provider(&data);
  TriangleCache tcache;
  auto executor = PlanExecutor::Create(&plan->plan, &provider, &tcache);
  CountingConsumer consumer(plan->plan);
  VertexId v = data.NumVertices() - 1;  // hottest (highest-degree) tasks
  for (auto _ : state) {
    (*executor)->RunTask(SearchTask{v, 0, 1}, &consumer);
    v = (v == 0) ? static_cast<VertexId>(data.NumVertices() - 1) : v - 1;
  }
  state.SetLabel("matches/iter varies by start vertex");
}
BENCHMARK(BM_LocalSearchTask);

}  // namespace
}  // namespace benu

BENCHMARK_MAIN();
