// Microbenchmarks (google-benchmark) of the building blocks underneath
// the table/figure harnesses: set intersection kernels, the DB cache hit
// and miss paths, the triangle cache, plan generation, and one full local
// search task. Useful for regression-tracking the executor's inner loops.
//
// Before the google-benchmark registrations run, main() executes the
// intersection-kernel suite (scalar merge/gallop vs AVX2 vs fused-filter,
// across size ratios) and writes the results to BENCH_kernels.json in the
// working directory, so successive PRs can track the kernel-layer perf
// trajectory mechanically.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/rng.h"
#include "common/stopwatch.h"
#include "core/executor.h"
#include "graph/adj_codec.h"
#include "graph/generators.h"
#include "graph/patterns.h"
#include "graph/simd_intersect.h"
#include "plan/optimizer.h"
#include "plan/plan_generator.h"
#include "plan/plan_search.h"
#include "plan/symmetry_breaking.h"
#include "storage/db_cache.h"

namespace benu {
namespace {

VertexSet MakeArithmetic(size_t n, size_t stride, VertexId offset) {
  VertexSet s;
  s.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    s.push_back(static_cast<VertexId>(offset + i * stride));
  }
  return s;
}

void BM_IntersectBalanced(benchmark::State& state) {
  const auto n = static_cast<size_t>(state.range(0));
  VertexSet a = MakeArithmetic(n, 2, 0);
  VertexSet b = MakeArithmetic(n, 3, 0);
  VertexSet out;
  for (auto _ : state) {
    Intersect(a, b, &out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(2 * n));
}
BENCHMARK(BM_IntersectBalanced)->Arg(64)->Arg(1024)->Arg(16384);

void BM_IntersectSkewed(benchmark::State& state) {
  // Small probe against a large set: exercises the galloping kernel.
  VertexSet small = MakeArithmetic(16, 977, 3);
  VertexSet large = MakeArithmetic(static_cast<size_t>(state.range(0)), 1, 0);
  VertexSet out;
  for (auto _ : state) {
    Intersect(small, large, &out);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_IntersectSkewed)->Arg(1 << 12)->Arg(1 << 16)->Arg(1 << 20);

void BM_DbCacheHit(benchmark::State& state) {
  Graph g = std::move(GenerateBarabasiAlbert(10000, 8, 1)).value();
  DistributedKvStore store(g, 16);
  DbCache cache(&store, 1u << 30);
  cache.GetAdjacency(42);
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.GetAdjacency(42));
  }
}
BENCHMARK(BM_DbCacheHit);

void BM_DbCacheMiss(benchmark::State& state) {
  Graph g = std::move(GenerateBarabasiAlbert(100000, 4, 2)).value();
  DistributedKvStore store(g, 16);
  DbCache cache(&store, 0);  // never retains: always the miss path
  VertexId v = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.GetAdjacency(v));
    v = (v + 1) % g.NumVertices();
  }
}
BENCHMARK(BM_DbCacheMiss);

void BM_PlanSearch(benchmark::State& state) {
  Graph pattern = std::move(GetPattern("q" + std::to_string(state.range(0))))
                      .value();
  const DataGraphStats stats{4.8e6, 4.3e7};
  for (auto _ : state) {
    auto result = GenerateBestPlan(pattern, stats);
    benchmark::DoNotOptimize(result.ok());
  }
}
BENCHMARK(BM_PlanSearch)->Arg(1)->Arg(4)->Arg(7)->Arg(9);

void BM_LocalSearchTask(benchmark::State& state) {
  Graph data = std::move(GenerateBarabasiAlbert(20000, 8, 3))
                   .value()
                   .RelabelByDegree();
  Graph pattern = std::move(GetPattern("q4")).value();
  auto plan = GenerateBestPlan(pattern, DataGraphStats::FromGraph(data));
  DirectAdjacencyProvider provider(&data);
  TriangleCache tcache;
  auto executor = PlanExecutor::Create(&plan->plan, &provider, &tcache);
  CountingConsumer consumer(plan->plan);
  VertexId v = data.NumVertices() - 1;  // hottest (highest-degree) tasks
  for (auto _ : state) {
    (*executor)->RunTask(SearchTask{v, 0, 1}, &consumer);
    v = (v == 0) ? static_cast<VertexId>(data.NumVertices() - 1) : v - 1;
  }
  state.SetLabel("matches/iter varies by start vertex");
}
BENCHMARK(BM_LocalSearchTask);

// ---------------------------------------------------------------------
// Intersection-kernel suite: hand-rolled (not google-benchmark) so one
// run emits a single machine-readable JSON file with the scalar-vs-SIMD
// speedups, independent of benchmark CLI flags.

struct KernelResult {
  std::string test_case;
  std::string kernel;
  size_t small_size = 0;
  size_t large_size = 0;
  double ns_per_call = 0;
  double speedup_vs_scalar = 1.0;
};

VertexSet RandomSorted(Rng* rng, size_t size, uint64_t universe) {
  VertexSet s;
  s.reserve(size);
  for (size_t i = 0; i < size; ++i) {
    s.push_back(static_cast<VertexId>(rng->NextBounded(universe)));
  }
  std::sort(s.begin(), s.end());
  s.erase(std::unique(s.begin(), s.end()), s.end());
  return s;
}

// Best-of-3 nanoseconds per call of `fn` (called `iters` times per rep).
constexpr int kTimeReps = 3;

template <typename Fn>
double TimeNs(size_t iters, Fn&& fn) {
  double best = 1e18;
  for (int rep = 0; rep < kTimeReps; ++rep) {
    Stopwatch watch;
    for (size_t i = 0; i < iters; ++i) fn();
    best = std::min(best, watch.ElapsedSeconds() * 1e9 /
                              static_cast<double>(iters));
  }
  return best;
}

// Delta+varint codec suite: encode / decode throughput over realistic
// (degree-relabeled BA) adjacency sets, and the fused encoded-operand
// intersect against the decode-then-intersect fallback it replaces.
void RunCodecSuite(std::vector<bench::BenchRecord>* records) {
  const bool simd_at_start = simd::SimdEnabled();
  Graph g = std::move(GenerateBarabasiAlbert(
                          bench::SmokeScale() ? 2000 : 20000, 8, 11))
                .value()
                .RelabelByDegree();
  const size_t n = g.NumVertices();

  // Pre-encode every adjacency set once (also the decode-bench input).
  std::vector<codec::EncodedSet> encoded(n);
  size_t raw_bytes = 0, encoded_bytes = 0;
  for (VertexId v = 0; v < n; ++v) {
    codec::Encode(g.Adjacency(v), &encoded[v]);
    raw_bytes += encoded[v].raw_bytes();
    encoded_bytes += encoded[v].bytes.size();
  }
  const double ratio = encoded_bytes > 0
                           ? static_cast<double>(raw_bytes) / encoded_bytes
                           : 1.0;
  std::printf("Adjacency codec (%zu sets, %.2fx compression)\n", n, ratio);
  std::printf("%-28s %12s %10s %10s\n", "case", "ns/sweep", "GB/s",
              "speedup");

  const size_t iters = bench::SmokeScale() ? 8 : 64;
  auto emit = [&](const std::string& name, double ns, double gbps,
                  double speedup) {
    std::printf("%-28s %12.0f %10.2f %9.2fx\n", name.c_str(), ns, gbps,
                speedup);
    bench::BenchRecord rec;
    rec.name = "codec/" + name;
    rec.params = {{"kernel_family", simd::ActiveKernelName()}};
    rec.repetitions = kTimeReps;
    rec.seconds = ns * 1e-9;
    rec.counters = {{"gb_per_s", gbps},
                    {"speedup", speedup},
                    {"compression_ratio", ratio}};
    records->push_back(std::move(rec));
  };

  // Encode: one full-graph sweep per call, GB/s over the raw payload.
  {
    codec::EncodedSet scratch;
    const double ns = TimeNs(iters, [&] {
      for (VertexId v = 0; v < n; ++v) codec::Encode(g.Adjacency(v), &scratch);
    });
    emit("encode", ns, static_cast<double>(raw_bytes) / ns, 1.0);
  }

  // Decode, scalar vs dispatched-SIMD, GB/s over the decoded payload.
  double decode_scalar_ns = 0;
  for (bool use_simd : {false, true}) {
    const bool effective = simd::SetSimdEnabled(use_simd);
    if (use_simd && !effective) continue;
    VertexSet out;
    const double ns = TimeNs(iters, [&] {
      for (VertexId v = 0; v < n; ++v) codec::DecodeAll(encoded[v], &out);
    });
    if (!use_simd) decode_scalar_ns = ns;
    emit(std::string("decode/") + (use_simd ? "simd" : "scalar"), ns,
         static_cast<double>(raw_bytes) / ns,
         decode_scalar_ns > 0 ? decode_scalar_ns / ns : 1.0);
  }

  // Large-set regime (a hub adjacency on a real data graph): dense
  // clustered ids whose deltas are 1-2 varint bytes — where the block
  // decoder and the fused kernels operate. The probe is a typical
  // already-decoded operand two orders of magnitude smaller.
  Rng rng(7);
  const size_t big_n = bench::SmokeScale() ? 16384 : 262144;
  const VertexSet big = RandomSorted(&rng, big_n, 4 * big_n);
  const VertexSet probe = RandomSorted(&rng, big_n / 64, 4 * big_n);
  codec::EncodedSet big_enc;
  codec::Encode(big, &big_enc);
  const double big_bytes = static_cast<double>(big.size()) * sizeof(VertexId);
  const size_t big_iters = bench::SmokeScale() ? 64 : 256;
  double big_decode_scalar_ns = 0;
  for (bool use_simd : {false, true}) {
    const bool effective = simd::SetSimdEnabled(use_simd);
    if (use_simd && !effective) continue;
    const char* k = use_simd ? "simd" : "scalar";
    VertexSet out;
    const double ns =
        TimeNs(big_iters, [&] { codec::DecodeAll(big_enc, &out); });
    if (!use_simd) big_decode_scalar_ns = ns;
    emit(std::string("decode_hub/") + k, ns, big_bytes / ns,
         big_decode_scalar_ns > 0 ? big_decode_scalar_ns / ns : 1.0);
  }
  // Fused encoded-intersect (streams the encoded hub set, probes the
  // decoded operand) vs the fallback it replaces: materialize the hub
  // set, then run the plain intersect kernel.
  for (bool use_simd : {false, true}) {
    const bool effective = simd::SetSimdEnabled(use_simd);
    if (use_simd && !effective) continue;
    const char* k = use_simd ? "simd" : "scalar";
    VertexSet out, decoded;
    const double decode_then_ns = TimeNs(big_iters, [&] {
      codec::DecodeAll(big_enc, &decoded);
      Intersect(decoded, probe, &out);
    });
    const double fused_ns = TimeNs(big_iters, [&] {
      codec::IntersectEncoded(big_enc, probe, 0, kInvalidVertex, nullptr, 0,
                              &out);
    });
    emit(std::string("decode_then_intersect/") + k, decode_then_ns,
         big_bytes / decode_then_ns, 1.0);
    emit(std::string("fused_intersect/") + k, fused_ns, big_bytes / fused_ns,
         fused_ns > 0 ? decode_then_ns / fused_ns : 1.0);
  }
  simd::SetSimdEnabled(simd_at_start);
  std::printf("\n");
}

void RunKernelSuite(const char* json_path) {
  std::vector<bench::BenchRecord> codec_records;
  RunCodecSuite(&codec_records);

  const bool simd_at_start = simd::SimdEnabled();
  std::vector<KernelResult> results;
  Rng rng(42);
  // Size ratios from balanced to beyond the galloping threshold (32); the
  // dispatcher picks merge/SIMD below it and galloping above it.
  const size_t kSmall = bench::SmokeScale() ? 256 : 4096;
  const size_t ratios[] = {1, 4, 16, 64, 256};
  std::printf("Intersection kernels (CPU kernel family: %s)\n",
              simd::ActiveKernelName());
  std::printf("%-28s %10s %10s %12s %10s\n", "case", "|small|", "|large|",
              "ns/call", "speedup");
  for (size_t ratio : ratios) {
    const uint64_t universe = 2 * kSmall * ratio;  // ~50% hit density
    const VertexSet a = RandomSorted(&rng, kSmall, universe);
    const VertexSet b = RandomSorted(&rng, kSmall * ratio, universe);
    const size_t iters =
        (ratio == 1 ? 16384u : 4096u) / (bench::SmokeScale() ? 64 : 1);
    VertexSet out;
    const VertexId excludes[] = {a.empty() ? 0 : a[a.size() / 2]};
    const VertexId lo = static_cast<VertexId>(universe / 16);
    const VertexId hi = static_cast<VertexId>(universe - universe / 16);

    struct Variant {
      const char* name;
      bool simd;
      bool fused;
    };
    const Variant variants[] = {{"intersect/scalar", false, false},
                                {"intersect/simd", true, false},
                                {"intersect_fused/scalar", false, true},
                                {"intersect_fused/simd", true, true}};
    double scalar_ns = 0;
    double scalar_fused_ns = 0;
    for (const Variant& v : variants) {
      const bool effective = simd::SetSimdEnabled(v.simd);
      if (v.simd && !effective) continue;  // no AVX2 on this machine
      const double ns = TimeNs(iters, [&] {
        if (v.fused) {
          IntersectExcluding(ClampView(a, lo, hi), b, excludes, 1, &out);
        } else {
          Intersect(a, b, &out);
        }
      });
      if (!v.simd && !v.fused) scalar_ns = ns;
      if (!v.simd && v.fused) scalar_fused_ns = ns;
      KernelResult r;
      r.test_case = "ratio_" + std::to_string(ratio) + "/" + v.name;
      r.kernel = v.simd ? "avx2" : "scalar";
      r.small_size = a.size();
      r.large_size = b.size();
      r.ns_per_call = ns;
      const double base = v.fused ? scalar_fused_ns : scalar_ns;
      r.speedup_vs_scalar = base > 0 ? base / ns : 1.0;
      std::printf("%-28s %10zu %10zu %12.1f %9.2fx\n", r.test_case.c_str(),
                  r.small_size, r.large_size, r.ns_per_call,
                  r.speedup_vs_scalar);
      results.push_back(std::move(r));
    }

    // IntersectSize, both kernels, unlimited.
    double size_scalar_ns = 0;
    for (bool use_simd : {false, true}) {
      const bool effective = simd::SetSimdEnabled(use_simd);
      if (use_simd && !effective) continue;
      size_t sink = 0;
      const double ns = TimeNs(iters, [&] { sink += IntersectSize(a, b); });
      benchmark::DoNotOptimize(sink);
      if (!use_simd) size_scalar_ns = ns;
      KernelResult r;
      r.test_case = "ratio_" + std::to_string(ratio) + "/intersect_size/" +
                    (use_simd ? "simd" : "scalar");
      r.kernel = use_simd ? "avx2" : "scalar";
      r.small_size = a.size();
      r.large_size = b.size();
      r.ns_per_call = ns;
      r.speedup_vs_scalar =
          size_scalar_ns > 0 ? size_scalar_ns / ns : 1.0;
      std::printf("%-28s %10zu %10zu %12.1f %9.2fx\n", r.test_case.c_str(),
                  r.small_size, r.large_size, r.ns_per_call,
                  r.speedup_vs_scalar);
      results.push_back(std::move(r));
    }
  }
  simd::SetSimdEnabled(simd_at_start);

  std::vector<bench::BenchRecord> records;
  records.reserve(results.size());
  for (const KernelResult& r : results) {
    bench::BenchRecord rec;
    rec.name = r.test_case;
    rec.params = {{"kernel", r.kernel},
                  {"kernel_family", simd::ActiveKernelName()}};
    rec.repetitions = kTimeReps;
    rec.seconds = r.ns_per_call * 1e-9;
    rec.counters = {{"small", static_cast<double>(r.small_size)},
                    {"large", static_cast<double>(r.large_size)},
                    {"ns_per_call", r.ns_per_call},
                    {"speedup_vs_scalar", r.speedup_vs_scalar}};
    records.push_back(std::move(rec));
  }
  records.insert(records.end(),
                 std::make_move_iterator(codec_records.begin()),
                 std::make_move_iterator(codec_records.end()));
  bench::WriteBenchJson(json_path, "kernels", records);
  std::printf("\n");
}

}  // namespace
}  // namespace benu

int main(int argc, char** argv) {
  benu::RunKernelSuite("BENCH_kernels.json");
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
