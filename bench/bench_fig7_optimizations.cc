// Fig. 7 reproduction (Exp-2): effect of the execution plan optimization
// techniques. For three representative cases we execute the raw plan,
// then cumulatively apply Optimization 1 (common subexpression
// elimination), Optimization 2 (instruction reordering) and Optimization 3
// (triangle caching), measuring enumeration time for each stage.
//
// Paper shape to reproduce: Opt 2 helps everywhere (INT instructions move
// out of inner loops); Opt 1 helps where common subexpressions exist
// (q4-style patterns); Opt 3 helps where triangles around the start
// vertex are enumerated repeatedly (q2/q7-style patterns). Uncompressed
// plans are used, as in the paper.

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/stopwatch.h"
#include "core/executor.h"
#include "plan/optimizer.h"
#include "plan/plan_generator.h"
#include "plan/plan_search.h"
#include "plan/symmetry_breaking.h"

namespace {

using namespace benu;
using namespace benu::bench;

double RunPlan(const ExecutionPlan& plan, const Graph& data, Count* matches) {
  DirectAdjacencyProvider provider(&data);
  TriangleCache tcache;
  auto executor = PlanExecutor::Create(&plan, &provider, &tcache);
  BENU_CHECK(executor.ok()) << executor.status().ToString();
  CountingConsumer consumer(plan);
  Stopwatch watch;
  for (VertexId v = 0; v < data.NumVertices(); ++v) {
    (*executor)->RunTask(SearchTask{v, 0, 1}, &consumer);
  }
  *matches = consumer.matches();
  return watch.ElapsedSeconds();
}

void Case(const char* label, const std::string& pattern_name,
          const Graph& data) {
  Graph pattern = LoadPattern(pattern_name);
  auto constraints = ComputeSymmetryBreakingConstraints(pattern);
  // The paper stages the optimizations on one fixed plan; we use the
  // identity matching order so the raw plan leaves visible headroom for
  // each optimization (the cost-based order search would mask Opt 2 by
  // already placing instructions tightly).
  std::vector<VertexId> order(pattern.NumVertices());
  for (size_t i = 0; i < order.size(); ++i) {
    order[i] = static_cast<VertexId>(i);
  }
  auto raw = GenerateRawPlan(pattern, order, constraints);
  BENU_CHECK(raw.ok());

  ExecutionPlan opt1 = *raw;
  EliminateCommonSubexpressions(&opt1);
  ExecutionPlan opt2 = opt1;
  ReorderInstructions(&opt2);
  ExecutionPlan opt3 = opt2;
  ApplyTriangleCaching(&opt3);

  std::printf("case %s: pattern %s\n", label, pattern_name.c_str());
  const char* stages[4] = {"raw", "+opt1 (CSE)", "+opt2 (reorder)",
                           "+opt3 (tri-cache)"};
  const ExecutionPlan* plans[4] = {&*raw, &opt1, &opt2, &opt3};
  Count reference = 0;
  for (int s = 0; s < 4; ++s) {
    Count matches = 0;
    double seconds = RunPlan(*plans[s], data, &matches);
    if (s == 0) reference = matches;
    BENU_CHECK(matches == reference) << "optimization changed results";
    std::printf("  %-18s %8.3fs   (matches %s)\n", stages[s], seconds,
                HumanCount(matches).c_str());
  }
}

}  // namespace

int main() {
  SetLogLevel(LogLevel::kWarning);
  std::printf("Fig. 7 — effects of execution plan optimizations\n");
  auto data = GeneratePowerLawCluster(FullScale() ? 12000 : 6000, 8, 0.5,
                                      0xF16);
  BENU_CHECK(data.ok());
  Graph graph = data->RelabelByDegree();
  std::printf("data graph: BA %zu vertices, %zu edges\n\n",
              graph.NumVertices(), graph.NumEdges());
  Case("(a)", "q1", graph);
  Case("(b)", "q4", graph);
  Case("(c)", "q7", graph);
  std::printf(
      "\nShape check vs paper: each optimization is monotonically\n"
      "non-harmful; opt2 gives the largest universal win; opt1 matters for\n"
      "q4 (shared subexpressions); opt3 matters where triangle\n"
      "intersections around the start vertex repeat (q2/q7).\n");
  return 0;
}
