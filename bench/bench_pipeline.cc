// Asynchronous adjacency-pipeline bench: how much simulated KV-store
// latency the prefetch pipeline hides behind backtracking compute.
//
// Sweeps store round-trip latency × fetch batch size × prefetch budget on
// a DBQ-heavy workload (q5, the 5-cycle, whose candidate sets have no
// locality) with a deliberately small DB cache, and compares the cluster's
// virtual execution time across three pipeline modes:
//
//   sync        prefetch_budget = 0 — the seed behaviour: every cache
//               miss is a synchronous store round trip on the task's
//               critical path;
//   forced-sync prefetch issued but drained inline on the enumerating
//               thread (force_sync_prefetch) — batching amortizes round
//               trips, but nothing overlaps compute;
//   async       background fetchers drain batched multi-gets while the
//               executor descends — round trips amortized AND overlapped.
//
// Acceptance shape: at nonzero latency, async with a real batch size must
// beat sync end to end (virtual_seconds), and every configuration —
// including a forced-scalar (SIMD-disabled) run — must report the exact
// same match count. Results go to BENCH_pipeline.json.

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "graph/simd_intersect.h"
#include "plan/plan_search.h"

int main() {
  using namespace benu;
  using namespace benu::bench;
  SetLogLevel(LogLevel::kWarning);

  Graph raw = LoadDataset(FullScale() ? "lj-sim" : "as-sim");
  Graph data = raw.RelabelByDegree();
  const size_t graph_bytes = data.AdjacencyBytes();
  // q5 even at smoke scale: the acceptance CHECK below needs the
  // DBQ-heavy workload (lighter patterns fetch too little for the
  // pipeline's extra traffic to pay for itself — see EXPERIMENTS.md).
  Graph pattern = LoadPattern("q5");
  auto plan = GenerateBestPlan(pattern, DataGraphStats::FromGraph(data),
                               {.optimize = true, .apply_vcbc = true});
  BENU_CHECK(plan.ok());

  // ~5% capacity: enough reuse for the cache to matter, small enough that
  // DBQ misses dominate and the store latency is on the critical path.
  const size_t cache_bytes =
      static_cast<size_t>(0.05 * static_cast<double>(graph_bytes));
  std::printf("Pipeline bench — q5 on %s (%zu vertices, %zu edges), "
              "cache %s (5%%)\n\n",
              FullScale() ? "lj-sim" : "as-sim", data.NumVertices(),
              data.NumEdges(), HumanBytes(cache_bytes).c_str());

  struct Mode {
    const char* name;
    size_t budget;
    bool force_sync;
  };
  const Mode modes[] = {{"sync", 0, false},
                        {"forced-sync", 64, true},
                        {"async", 64, false}};
  const std::vector<double> latencies =
      SmokeScale() ? std::vector<double>{100.0}
                   : std::vector<double>{0.0, 100.0, 1000.0};
  const std::vector<size_t> batch_sizes =
      SmokeScale() ? std::vector<size_t>{16} : std::vector<size_t>{1, 16};

  auto run = [&](double latency_us, size_t batch, const Mode& mode) {
    ClusterConfig config;
    config.num_workers = 4;
    config.threads_per_worker = 4;
    config.db_cache_bytes = cache_bytes;
    config.task_split_threshold = 32;
    config.db_query_latency_us = latency_us;
    config.prefetch_budget = mode.budget;
    config.prefetch_batch_size = batch;
    config.force_sync_prefetch = mode.force_sync;
    ClusterSimulator cluster(data, config);
    auto result = cluster.Run(plan->plan);
    BENU_CHECK(result.ok()) << result.status().ToString();
    return *std::move(result);
  };

  std::vector<BenchRecord> records;
  Count reference_matches = 0;
  bool have_reference = false;
  // Per-latency sync baseline for the improvement column (batch size is
  // irrelevant to sync: it never issues a batched fetch).
  double sync_seconds = 0;

  std::printf("  %-24s %12s %10s %12s %12s %10s\n", "config", "virt-time",
              "vs-sync", "hidden-comm", "round-trips", "pf-hits");
  for (double latency_us : latencies) {
    for (const Mode& mode : modes) {
      for (size_t batch : batch_sizes) {
        if (mode.budget == 0 && batch != batch_sizes.front()) {
          continue;  // sync ignores the batch size; run it once
        }
        ClusterRunResult result = run(latency_us, batch, mode);
        if (!have_reference) {
          reference_matches = result.total_matches;
          have_reference = true;
        }
        BENU_CHECK(result.total_matches == reference_matches)
            << mode.name << " lat=" << latency_us << " batch=" << batch
            << " changed the match count: " << result.total_matches
            << " vs " << reference_matches;
        if (mode.budget == 0) sync_seconds = result.virtual_seconds;

        const std::string name = "lat" + std::to_string(
                                     static_cast<int>(latency_us)) +
                                 "us/batch" + std::to_string(batch) + "/" +
                                 mode.name;
        const double vs_sync =
            sync_seconds / std::max(1e-12, result.virtual_seconds);
        std::printf("  %-24s %11.3fs %9.2fx %11.3fs %12s %10s\n",
                    name.c_str(), result.virtual_seconds, vs_sync,
                    result.hidden_comm_seconds,
                    HumanCount(result.prefetch_round_trips).c_str(),
                    HumanCount(result.prefetch_hits).c_str());

        BenchRecord rec;
        rec.name = name;
        rec.params = {{"mode", mode.name},
                      {"latency_us", std::to_string(latency_us)},
                      {"batch", std::to_string(batch)},
                      {"budget", std::to_string(mode.budget)}};
        rec.seconds = result.virtual_seconds;
        rec.counters = {
            {"matches", static_cast<double>(result.total_matches)},
            {"speedup_vs_sync", vs_sync},
            {"hidden_comm_seconds", result.hidden_comm_seconds},
            {"db_queries", static_cast<double>(result.db_queries)},
            {"prefetches_issued",
             static_cast<double>(result.prefetches_issued)},
            {"prefetch_hits", static_cast<double>(result.prefetch_hits)},
            {"prefetch_wasted", static_cast<double>(result.prefetch_wasted)},
            {"prefetch_round_trips",
             static_cast<double>(result.prefetch_round_trips)},
            {"prefetch_bytes", static_cast<double>(result.prefetch_bytes)},
            {"bytes_fetched", static_cast<double>(result.bytes_fetched)}};
        records.push_back(std::move(rec));
      }
    }
    std::printf("\n");
  }

  // Determinism check: the async pipeline over the scalar kernels must
  // still reproduce the exact match count (prefetch changes *when* an
  // adjacency set arrives, never *what* the executor enumerates).
  {
    const bool simd_at_start = simd::SimdEnabled();
    simd::SetSimdEnabled(false);
    ClusterRunResult scalar =
        run(latencies.back(), batch_sizes.back(), modes[2]);
    simd::SetSimdEnabled(simd_at_start);
    BENU_CHECK(scalar.total_matches == reference_matches)
        << "forced-scalar async run changed the match count: "
        << scalar.total_matches << " vs " << reference_matches;
    std::printf("forced-scalar async run: %s matches — identical\n",
                HumanCount(scalar.total_matches).c_str());
  }

  // Acceptance check: at the largest nonzero latency, async with the
  // largest batch must beat the sync baseline end to end.
  {
    const double latency = latencies.back();
    BENU_CHECK(latency > 0) << "sweep must include a nonzero latency";
    ClusterRunResult sync_run = run(latency, batch_sizes.front(), modes[0]);
    ClusterRunResult async_run = run(latency, batch_sizes.back(), modes[2]);
    BENU_CHECK(async_run.virtual_seconds < sync_run.virtual_seconds)
        << "async pipeline did not improve end-to-end virtual time: "
        << async_run.virtual_seconds << "s vs " << sync_run.virtual_seconds
        << "s at latency " << latency << "us";
    std::printf("acceptance: async %.3fs < sync %.3fs at %.0fus latency "
                "(%.2fx)\n",
                async_run.virtual_seconds, sync_run.virtual_seconds, latency,
                sync_run.virtual_seconds /
                    std::max(1e-12, async_run.virtual_seconds));
  }

  WriteBenchJson("BENCH_pipeline.json", "pipeline", records);
  std::printf(
      "\nShape check: hidden-comm grows with latency under async (the\n"
      "pipeline moves round trips off the critical path); batch 16 beats\n"
      "batch 1 by amortizing one round trip per partition per batch; and\n"
      "forced-sync sits between sync and async — it batches but cannot\n"
      "overlap.\n");
  return 0;
}
