// Asynchronous adjacency-pipeline bench: how much simulated KV-store
// latency the prefetch pipeline hides behind backtracking compute.
//
// Sweeps store round-trip latency × fetch batch size × prefetch budget on
// a DBQ-heavy workload (q5, the 5-cycle, whose candidate sets have no
// locality) with a deliberately small DB cache, and compares the cluster's
// virtual execution time across three pipeline modes:
//
//   sync        prefetch_budget = 0 — the seed behaviour: every cache
//               miss is a synchronous store round trip on the task's
//               critical path;
//   forced-sync prefetch issued but drained inline on the enumerating
//               thread (force_sync_prefetch) — batching amortizes round
//               trips, but nothing overlaps compute;
//   async       background fetchers drain batched multi-gets while the
//               executor descends — round trips amortized AND overlapped.
//
// Acceptance shape: at nonzero latency, async with a real batch size must
// beat sync end to end (virtual_seconds), and every configuration —
// including a forced-scalar (SIMD-disabled) run — must report the exact
// same match count. Results go to BENCH_pipeline.json.

#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "graph/adj_codec.h"
#include "graph/simd_intersect.h"
#include "plan/plan_search.h"
#include "storage/kv_tcp_server.h"
#include "storage/tcp_transport.h"

int main() {
  using namespace benu;
  using namespace benu::bench;
  SetLogLevel(LogLevel::kWarning);

  Graph raw = LoadDataset(FullScale() ? "lj-sim" : "as-sim");
  Graph data = raw.RelabelByDegree();
  const size_t graph_bytes = data.AdjacencyBytes();
  // q5 even at smoke scale: the acceptance CHECK below needs the
  // DBQ-heavy workload (lighter patterns fetch too little for the
  // pipeline's extra traffic to pay for itself — see EXPERIMENTS.md).
  Graph pattern = LoadPattern("q5");
  auto plan = GenerateBestPlan(pattern, DataGraphStats::FromGraph(data),
                               {.optimize = true, .apply_vcbc = true});
  BENU_CHECK(plan.ok());

  // ~5% capacity: enough reuse for the cache to matter, small enough that
  // DBQ misses dominate and the store latency is on the critical path.
  const size_t cache_bytes =
      static_cast<size_t>(0.05 * static_cast<double>(graph_bytes));
  std::printf("Pipeline bench — q5 on %s (%zu vertices, %zu edges), "
              "cache %s (5%%)\n\n",
              FullScale() ? "lj-sim" : "as-sim", data.NumVertices(),
              data.NumEdges(), HumanBytes(cache_bytes).c_str());

  struct Mode {
    const char* name;
    size_t budget;
    bool force_sync;
  };
  const Mode modes[] = {{"sync", 0, false},
                        {"forced-sync", 64, true},
                        {"async", 64, false}};
  const std::vector<double> latencies =
      SmokeScale() ? std::vector<double>{100.0}
                   : std::vector<double>{0.0, 100.0, 1000.0};
  const std::vector<size_t> batch_sizes =
      SmokeScale() ? std::vector<size_t>{16} : std::vector<size_t>{1, 16};

  auto run = [&](double latency_us, size_t batch, const Mode& mode) {
    ClusterConfig config;
    config.num_workers = 4;
    config.threads_per_worker = 4;
    config.db_cache_bytes = cache_bytes;
    config.task_split_threshold = 32;
    config.db_query_latency_us = latency_us;
    config.prefetch_budget = mode.budget;
    config.prefetch_batch_size = batch;
    config.force_sync_prefetch = mode.force_sync;
    ClusterSimulator cluster(data, config);
    auto result = cluster.Run(plan->plan);
    BENU_CHECK(result.ok()) << result.status().ToString();
    return *std::move(result);
  };

  std::vector<BenchRecord> records;
  Count reference_matches = 0;
  bool have_reference = false;
  // Per-latency sync baseline for the improvement column (batch size is
  // irrelevant to sync: it never issues a batched fetch).
  double sync_seconds = 0;

  std::printf("  %-24s %12s %10s %12s %9s %12s %10s\n", "config",
              "virt-time", "vs-sync", "hidden-comm", "overlap",
              "round-trips", "pf-hits");
  for (double latency_us : latencies) {
    for (const Mode& mode : modes) {
      for (size_t batch : batch_sizes) {
        if (mode.budget == 0 && batch != batch_sizes.front()) {
          continue;  // sync ignores the batch size; run it once
        }
        ClusterRunResult result = run(latency_us, batch, mode);
        if (!have_reference) {
          reference_matches = result.total_matches;
          have_reference = true;
        }
        BENU_CHECK(result.total_matches == reference_matches)
            << mode.name << " lat=" << latency_us << " batch=" << batch
            << " changed the match count: " << result.total_matches
            << " vs " << reference_matches;
        if (mode.budget == 0) sync_seconds = result.virtual_seconds;

        const std::string name = "lat" + std::to_string(
                                     static_cast<int>(latency_us)) +
                                 "us/batch" + std::to_string(batch) + "/" +
                                 mode.name;
        const double vs_sync =
            sync_seconds / std::max(1e-12, result.virtual_seconds);
        std::printf("  %-24s %11.3fs %9.2fx %11.3fs %8.1f%% %12s %10s\n",
                    name.c_str(), result.virtual_seconds, vs_sync,
                    result.hidden_comm_seconds,
                    100.0 * result.OverlapFraction(),
                    HumanCount(result.prefetch_round_trips).c_str(),
                    HumanCount(result.prefetch_hits).c_str());

        BenchRecord rec;
        rec.name = name;
        rec.params = {{"mode", mode.name},
                      {"latency_us", std::to_string(latency_us)},
                      {"batch", std::to_string(batch)},
                      {"budget", std::to_string(mode.budget)}};
        rec.seconds = result.virtual_seconds;
        rec.counters = {
            {"matches", static_cast<double>(result.total_matches)},
            {"speedup_vs_sync", vs_sync},
            {"hidden_comm_seconds", result.hidden_comm_seconds},
            {"prefetch_comm_seconds", result.prefetch_comm_seconds},
            {"overlap_fraction", result.OverlapFraction()},
            {"db_queries", static_cast<double>(result.db_queries)},
            {"prefetches_issued",
             static_cast<double>(result.prefetches_issued)},
            {"prefetch_hits", static_cast<double>(result.prefetch_hits)},
            {"prefetch_wasted", static_cast<double>(result.prefetch_wasted)},
            {"prefetch_round_trips",
             static_cast<double>(result.prefetch_round_trips)},
            {"prefetch_bytes", static_cast<double>(result.prefetch_bytes)},
            {"bytes_fetched", static_cast<double>(result.bytes_fetched)}};
        records.push_back(std::move(rec));
      }
    }
    std::printf("\n");
  }

  // Determinism check: the async pipeline over the scalar kernels must
  // still reproduce the exact match count (prefetch changes *when* an
  // adjacency set arrives, never *what* the executor enumerates).
  {
    const bool simd_at_start = simd::SimdEnabled();
    simd::SetSimdEnabled(false);
    ClusterRunResult scalar =
        run(latencies.back(), batch_sizes.back(), modes[2]);
    simd::SetSimdEnabled(simd_at_start);
    BENU_CHECK(scalar.total_matches == reference_matches)
        << "forced-scalar async run changed the match count: "
        << scalar.total_matches << " vs " << reference_matches;
    std::printf("forced-scalar async run: %s matches — identical\n",
                HumanCount(scalar.total_matches).c_str());
  }

  // Acceptance check: at the largest nonzero latency, async with the
  // largest batch must beat the sync baseline end to end.
  {
    const double latency = latencies.back();
    BENU_CHECK(latency > 0) << "sweep must include a nonzero latency";
    ClusterRunResult sync_run = run(latency, batch_sizes.front(), modes[0]);
    ClusterRunResult async_run = run(latency, batch_sizes.back(), modes[2]);
    BENU_CHECK(async_run.virtual_seconds < sync_run.virtual_seconds)
        << "async pipeline did not improve end-to-end virtual time: "
        << async_run.virtual_seconds << "s vs " << sync_run.virtual_seconds
        << "s at latency " << latency << "us";
    std::printf("acceptance: async %.3fs < sync %.3fs at %.0fus latency "
                "(%.2fx)\n",
                async_run.virtual_seconds, sync_run.virtual_seconds, latency,
                sync_run.virtual_seconds /
                    std::max(1e-12, async_run.virtual_seconds));
  }

  // ------------------------------------------------------------------
  // Hybrid BFS/DFS sweep: ENU frontiers batched into governed region
  // buffers, one wide prefetch per batch, drained DFS-style while the
  // flights land. Under a finite memory budget the governor widens the
  // prefetch budget and the multi-get batches with the available
  // headroom, converting synchronous misses into overlapped pipeline
  // traffic. Acceptance: >78% of all virtual communication hidden at
  // 1ms latency, with the match count bit-identical to pure DFS across
  // every degraded mode (forced-sync drain, forced-scalar kernels,
  // compression off).
  {
    const double latency = 1000.0;
    // Finite budget: cache residency settles at ~cache_bytes, so this
    // leaves the governor ~3/4 headroom in steady state — wide batches,
    // but still a real ceiling the frontier regions lease against.
    const size_t memory_budget = 4 * cache_bytes;
    auto run_hybrid = [&](ExpansionMode expansion, bool force_sync,
                          bool compress) {
      ClusterConfig config;
      config.num_workers = 4;
      config.threads_per_worker = 4;
      config.db_cache_bytes = cache_bytes;
      config.task_split_threshold = 32;
      config.db_query_latency_us = latency;
      config.prefetch_budget = 64;
      config.prefetch_batch_size = 16;
      config.force_sync_prefetch = force_sync;
      config.compress_adjacency = compress;
      config.expansion = expansion;
      config.memory_budget_bytes = memory_budget;
      ClusterSimulator cluster(data, config);
      auto result = cluster.Run(plan->plan);
      BENU_CHECK(result.ok()) << result.status().ToString();
      BENU_CHECK(result->total_matches == reference_matches)
          << (expansion == ExpansionMode::kHybrid ? "hybrid" : "dfs")
          << (force_sync ? " forced-sync" : "")
          << (compress ? "" : " compression-off")
          << " changed the match count: " << result->total_matches << " vs "
          << reference_matches;
      return *std::move(result);
    };

    const ClusterRunResult dfs_run =
        run_hybrid(ExpansionMode::kDfs, false, true);
    const ClusterRunResult hybrid_run =
        run_hybrid(ExpansionMode::kHybrid, false, true);
    std::printf(
        "\nHybrid expansion (budget %s, 1ms latency):\n"
        "  %-24s %12s %12s %9s %12s\n",
        HumanBytes(memory_budget).c_str(), "config", "virt-time",
        "hidden-comm", "overlap", "round-trips");
    const struct {
      const char* name;
      const ClusterRunResult* r;
    } hybrid_rows[] = {{"dfs", &dfs_run}, {"hybrid", &hybrid_run}};
    for (const auto& row : hybrid_rows) {
      std::printf("  %-24s %11.3fs %11.3fs %8.1f%% %12s\n", row.name,
                  row.r->virtual_seconds, row.r->hidden_comm_seconds,
                  100.0 * row.r->OverlapFraction(),
                  HumanCount(row.r->prefetch_round_trips).c_str());
      BenchRecord rec;
      rec.name = std::string("hybrid/lat1000us/") + row.name;
      rec.params = {{"mode", row.name},
                    {"latency_us", "1000"},
                    {"memory_budget_bytes", std::to_string(memory_budget)}};
      rec.seconds = row.r->virtual_seconds;
      rec.counters = {
          {"matches", static_cast<double>(row.r->total_matches)},
          {"hidden_comm_seconds", row.r->hidden_comm_seconds},
          {"prefetch_comm_seconds", row.r->prefetch_comm_seconds},
          {"overlap_fraction", row.r->OverlapFraction()},
          {"db_queries", static_cast<double>(row.r->db_queries)},
          {"prefetch_round_trips",
           static_cast<double>(row.r->prefetch_round_trips)},
          {"prefetch_hits", static_cast<double>(row.r->prefetch_hits)}};
      records.push_back(std::move(rec));
    }
    BENU_CHECK(hybrid_run.OverlapFraction() > 0.78)
        << "hybrid expansion hid only "
        << 100.0 * hybrid_run.OverlapFraction()
        << "% of virtual communication at 1ms latency (need > 78%): hidden="
        << hybrid_run.hidden_comm_seconds
        << "s pipeline-total=" << hybrid_run.prefetch_comm_seconds << "s";
    std::printf(
        "acceptance: hybrid hides %.1f%% of communication (dfs pipeline: "
        "%.1f%%) at 1000us latency\n",
        100.0 * hybrid_run.OverlapFraction(),
        100.0 * dfs_run.OverlapFraction());

    // Count invariance across every degraded hybrid mode: inline-drained
    // prefetch queue, scalar intersection kernels, raw (uncompressed)
    // adjacency frames. The batched drain visits candidates in exactly
    // the DFS order, so all of these are CHECKed bit-identical inside
    // run_hybrid.
    run_hybrid(ExpansionMode::kHybrid, true, true);
    const bool simd_at_start = simd::SimdEnabled();
    simd::SetSimdEnabled(false);
    run_hybrid(ExpansionMode::kHybrid, false, true);
    simd::SetSimdEnabled(simd_at_start);
    run_hybrid(ExpansionMode::kHybrid, false, false);
    std::printf(
        "forced-sync, forced-scalar and compression-off hybrid runs: %s "
        "matches — identical\n",
        HumanCount(reference_matches).c_str());
  }

  // ------------------------------------------------------------------
  // Compression sweep: the delta+varint adjacency codec on vs off over
  // the same q5 workload. Compression must never change the match count
  // (including forced-scalar and forced-sync-prefetch runs) and must win
  // end to end at 1ms simulated store latency: encoded frames shrink the
  // modeled bandwidth term AND the same cache budget holds ~3x more
  // vertices, so fewer misses pay the 1ms round trip.
  {
    auto run_codec = [&](double latency_us, bool compress, bool force_sync) {
      ClusterConfig config;
      config.num_workers = 4;
      config.threads_per_worker = 4;
      config.db_cache_bytes = cache_bytes;
      config.task_split_threshold = 32;
      config.db_query_latency_us = latency_us;
      config.prefetch_budget = 64;
      config.prefetch_batch_size = 16;
      config.force_sync_prefetch = force_sync;
      config.compress_adjacency = compress;
      ClusterSimulator cluster(data, config);
      auto result = cluster.Run(plan->plan);
      BENU_CHECK(result.ok()) << result.status().ToString();
      BENU_CHECK(result->total_matches == reference_matches)
          << (compress ? "compressed" : "raw") << " lat=" << latency_us
          << (force_sync ? " forced-sync" : "")
          << " changed the match count: " << result->total_matches << " vs "
          << reference_matches;
      return *std::move(result);
    };
    const auto total_bytes = [](const ClusterRunResult& r) {
      return r.bytes_fetched + r.prefetch_bytes;
    };

    const std::vector<double> codec_latencies =
        SmokeScale() ? std::vector<double>{1000.0}
                     : std::vector<double>{0.0, 1000.0};
    std::printf("\nCompression sweep (async, batch 16, budget 64):\n");
    std::printf("  %-26s %12s %10s %12s %10s %12s\n", "config", "virt-time",
                "vs-raw", "bytes", "ratio", "db-queries");
    for (double latency_us : codec_latencies) {
      const ClusterRunResult raw_run = run_codec(latency_us, false, false);
      const ClusterRunResult comp_run = run_codec(latency_us, true, false);
      const double ratio =
          static_cast<double>(total_bytes(raw_run)) /
          std::max(1.0, static_cast<double>(total_bytes(comp_run)));
      const double vs_raw = raw_run.virtual_seconds /
                            std::max(1e-12, comp_run.virtual_seconds);
      const struct {
        const char* name;
        const ClusterRunResult* r;
        double vs;
        double bytes_ratio;
      } rows[] = {{"raw", &raw_run, 1.0, 1.0},
                  {"compressed", &comp_run, vs_raw, ratio}};
      for (const auto& row : rows) {
        const std::string name =
            "codec/lat" + std::to_string(static_cast<int>(latency_us)) +
            "us/" + row.name;
        std::printf("  %-26s %11.3fs %9.2fx %12s %9.2fx %12s\n", name.c_str(),
                    row.r->virtual_seconds, row.vs,
                    HumanBytes(total_bytes(*row.r)).c_str(), row.bytes_ratio,
                    HumanCount(row.r->db_queries).c_str());
        BenchRecord rec;
        rec.name = name;
        rec.params = {{"mode", row.name},
                      {"latency_us", std::to_string(latency_us)}};
        rec.seconds = row.r->virtual_seconds;
        rec.counters = {
            {"matches", static_cast<double>(row.r->total_matches)},
            {"bytes_total", static_cast<double>(total_bytes(*row.r))},
            {"bytes_ratio_vs_raw", row.bytes_ratio},
            {"speedup_vs_raw", row.vs},
            {"db_queries", static_cast<double>(row.r->db_queries)}};
        records.push_back(std::move(rec));
      }
      if (latency_us >= 1000.0 && codec::CompressionEnabled(true)) {
        BENU_CHECK(comp_run.virtual_seconds < raw_run.virtual_seconds)
            << "compression did not improve end-to-end virtual time at "
            << latency_us << "us: compressed " << comp_run.virtual_seconds
            << "s vs raw " << raw_run.virtual_seconds << "s";
        std::printf(
            "acceptance: compressed %.3fs < raw %.3fs at %.0fus latency "
            "(%.2fx, %.2fx fewer bytes)\n",
            comp_run.virtual_seconds, raw_run.virtual_seconds, latency_us,
            vs_raw, ratio);
      }
    }

    // Match-count invariance under the degraded modes: the scalar decode
    // path and the inline-drained prefetch queue must enumerate exactly
    // the same subgraphs from compressed payloads (checked in run_codec).
    const bool simd_at_start = simd::SimdEnabled();
    simd::SetSimdEnabled(false);
    run_codec(codec_latencies.back(), true, false);
    simd::SetSimdEnabled(simd_at_start);
    run_codec(codec_latencies.back(), true, true);
    std::printf(
        "forced-scalar and forced-sync compressed runs: %s matches — "
        "identical\n",
        HumanCount(reference_matches).c_str());
  }

  // ------------------------------------------------------------------
  // Wire-bytes acceptance: full q5 enumerations over the real backends
  // with the codec on vs off. transport.loopback.bytes and
  // transport.tcp.bytes (measured per transport instance) must drop
  // >= 2x with identical match counts.
  {
    constexpr size_t kWirePartitions = 8;
    constexpr size_t kWireServers = 2;
    BenuOptions wire_options;
    wire_options.cluster.num_workers = 2;
    wire_options.cluster.threads_per_worker = 2;
    wire_options.cluster.db_partitions = kWirePartitions;
    wire_options.cluster.db_cache_bytes = cache_bytes;
    wire_options.cluster.task_split_threshold = 100;
    wire_options.cluster.prefetch_budget = 16;
    wire_options.relabel_by_degree = false;  // data is already relabeled

    auto bytes_over = [&](std::shared_ptr<Transport> transport) {
      wire_options.cluster.transport = std::move(transport);
      auto result = RunBenu(data, pattern, wire_options);
      BENU_CHECK(result.ok()) << result.status().ToString();
      BENU_CHECK(result->run.total_matches == reference_matches)
          << "wire run changed the match count: "
          << result->run.total_matches << " vs " << reference_matches;
      const Count bytes = wire_options.cluster.transport->stats().bytes.load(
          std::memory_order_relaxed);
      wire_options.cluster.transport.reset();
      return bytes;
    };

    const Count loop_raw = bytes_over(
        MakeLoopbackTransport(data, kWirePartitions, /*compress=*/false));
    const Count loop_comp = bytes_over(
        MakeLoopbackTransport(data, kWirePartitions));

    std::vector<std::unique_ptr<KvTcpServer>> servers;
    std::vector<ReplicaGroup> groups;
    for (size_t i = 0; i < kWireServers; ++i) {
      servers.push_back(std::make_unique<KvTcpServer>(
          &data, kWirePartitions, kWireServers, i));
      BENU_CHECK(servers.back()->Listen(0).ok());
      BENU_CHECK(servers.back()->Start().ok());
      groups.push_back({{{"127.0.0.1", servers.back()->port()}}});
    }
    TcpTransportOptions raw_tcp_options;
    raw_tcp_options.compress = false;
    auto tcp_raw = ConnectTcpTransport(groups, raw_tcp_options);
    BENU_CHECK(tcp_raw.ok()) << tcp_raw.status().ToString();
    const Count tcp_raw_bytes = bytes_over(*std::move(tcp_raw));
    auto tcp_comp = ConnectTcpTransport(groups);
    BENU_CHECK(tcp_comp.ok()) << tcp_comp.status().ToString();
    const Count tcp_comp_bytes = bytes_over(*std::move(tcp_comp));

    const struct {
      const char* backend;
      Count raw_bytes;
      Count comp_bytes;
    } wire_rows[] = {{"loopback", loop_raw, loop_comp},
                     {"tcp", tcp_raw_bytes, tcp_comp_bytes}};
    std::printf("\nWire bytes, q5 end to end (codec off vs on):\n");
    for (const auto& row : wire_rows) {
      const double ratio =
          static_cast<double>(row.raw_bytes) /
          std::max(1.0, static_cast<double>(row.comp_bytes));
      std::printf("  %-10s raw %10s   compressed %10s   %.2fx smaller\n",
                  row.backend, HumanBytes(row.raw_bytes).c_str(),
                  HumanBytes(row.comp_bytes).c_str(), ratio);
      BENU_CHECK(ratio >= 2.0 || !codec::CompressionEnabled(true))
          << "transport." << row.backend << ".bytes dropped only " << ratio
          << "x with compression on (need >= 2x): raw=" << row.raw_bytes
          << " compressed=" << row.comp_bytes;
      BenchRecord rec;
      rec.name = std::string("codec/wire/") + row.backend;
      rec.params = {{"backend", row.backend}};
      rec.seconds = 0;
      rec.counters = {
          {"bytes_raw", static_cast<double>(row.raw_bytes)},
          {"bytes_compressed", static_cast<double>(row.comp_bytes)},
          {"bytes_ratio", ratio}};
      records.push_back(std::move(rec));
    }
  }

  // ------------------------------------------------------------------
  // Real-socket section: per-round-trip cost of the TCP transport
  // against the in-process loopback backend, with and without request
  // pipelining. The serial mode re-creates the pre-pipelining client
  // (one blocking round trip per partition, per batch); pipelining must
  // close at least 30% of the tcp-vs-loopback gap at batch 16.
  {
    constexpr size_t kTcpPartitions = 8;
    constexpr size_t kTcpServers = 4;
    const size_t batch = 16;
    const size_t iters = SizeFor(4000, 1000, 200);

    std::vector<std::unique_ptr<KvTcpServer>> servers;
    std::vector<ReplicaGroup> groups;
    for (size_t i = 0; i < kTcpServers; ++i) {
      servers.push_back(std::make_unique<KvTcpServer>(
          &data, kTcpPartitions, kTcpServers, i));
      BENU_CHECK(servers.back()->Listen(0).ok());
      BENU_CHECK(servers.back()->Start().ok());
      groups.push_back({{{"127.0.0.1", servers.back()->port()}}});
    }

    // One batch of 16 consecutive ids touches all 8 partitions (and all
    // 4 server channels), so pipelining has round trips to overlap.
    auto time_per_round_trip = [&](Transport& transport) {
      std::vector<VertexId> keys(batch);
      const VertexId span_limit =
          static_cast<VertexId>(data.NumVertices() - batch);
      for (size_t warm = 0; warm < 8; ++warm) {  // connections, caches
        for (size_t k = 0; k < batch; ++k) {
          keys[k] = static_cast<VertexId>(warm * batch + k);
        }
        BENU_CHECK(transport.FetchBatch(keys).ok());
      }
      const Count trips_before =
          transport.stats().round_trips.load(std::memory_order_relaxed);
      const auto start = std::chrono::steady_clock::now();
      for (size_t i = 0; i < iters; ++i) {
        const VertexId base =
            static_cast<VertexId>((i * 97) % (span_limit + 1));
        for (size_t k = 0; k < batch; ++k) {
          keys[k] = base + static_cast<VertexId>(k);
        }
        BENU_CHECK(transport.FetchBatch(keys).ok());
      }
      const std::chrono::duration<double, std::micro> elapsed =
          std::chrono::steady_clock::now() - start;
      const Count trips =
          transport.stats().round_trips.load(std::memory_order_relaxed) -
          trips_before;
      BENU_CHECK(trips > 0);
      return elapsed.count() / static_cast<double>(trips);
    };

    auto loopback = MakeLoopbackTransport(data, kTcpPartitions);
    const double loop_us = time_per_round_trip(*loopback);

    TcpTransportOptions serial_options;
    serial_options.pipeline = false;
    auto tcp_serial = ConnectTcpTransport(groups, serial_options);
    BENU_CHECK(tcp_serial.ok()) << tcp_serial.status().ToString();
    const double serial_us = time_per_round_trip(**tcp_serial);

    auto tcp_piped = ConnectTcpTransport(groups);
    BENU_CHECK(tcp_piped.ok()) << tcp_piped.status().ToString();
    const double piped_us = time_per_round_trip(**tcp_piped);

    const double gap = serial_us - loop_us;
    const double gap_closed = (serial_us - piped_us) / std::max(1e-9, gap);
    std::printf(
        "\nTCP per-round-trip cost at batch %zu (%zu batches, %zu servers):\n"
        "  loopback %8.2fus   tcp-serial %8.2fus   tcp-pipelined %8.2fus\n"
        "  pipelining closes %.0f%% of the tcp-vs-loopback gap\n",
        batch, iters, kTcpServers, loop_us, serial_us, piped_us,
        100.0 * gap_closed);
    BENU_CHECK(gap > 0) << "tcp-serial not slower than loopback? serial="
                        << serial_us << "us loopback=" << loop_us << "us";
    BENU_CHECK(gap_closed >= 0.30)
        << "pipelining closed only " << 100.0 * gap_closed
        << "% of the tcp-vs-loopback round-trip gap (need >= 30%): loopback="
        << loop_us << "us serial=" << serial_us << "us pipelined=" << piped_us
        << "us";

    const struct {
      const char* name;
      double us;
    } tcp_rows[] = {{"loopback", loop_us},
                    {"tcp-serial", serial_us},
                    {"tcp-pipelined", piped_us}};
    for (const auto& row : tcp_rows) {
      BenchRecord rec;
      rec.name = std::string("tcp/batch16/") + row.name;
      rec.params = {{"mode", row.name},
                    {"batch", std::to_string(batch)},
                    {"servers", std::to_string(kTcpServers)}};
      rec.seconds = row.us * 1e-6;
      rec.counters = {{"us_per_round_trip", row.us},
                      {"gap_closed", gap_closed}};
      records.push_back(std::move(rec));
    }
  }

  // ------------------------------------------------------------------
  // Failover demo: a full enumeration over TCP with 2 replicas per
  // server, one replica stopped mid-run. The failover must be invisible:
  // the match count equals the simulated backend's, bit for bit.
  {
    auto demo_graph_or =
        GenerateFromSpec(SmokeScale() ? "ba:300,5,21" : "ba:2000,5,21");
    BENU_CHECK(demo_graph_or.ok());
    const Graph demo_graph = demo_graph_or->RelabelByDegree();
    Graph demo_pattern = LoadPattern("q5");
    constexpr size_t kDemoPartitions = 8;

    BenuOptions demo_options;
    demo_options.cluster.num_workers = 2;
    demo_options.cluster.threads_per_worker = 2;
    demo_options.cluster.db_partitions = kDemoPartitions;
    demo_options.cluster.db_cache_bytes = 4096;  // keep traffic flowing
    demo_options.cluster.task_split_threshold = 100;
    demo_options.cluster.prefetch_budget = 16;
    demo_options.relabel_by_degree = false;
    auto sim_run = RunBenu(demo_graph, demo_pattern, demo_options);
    BENU_CHECK(sim_run.ok()) << sim_run.status().ToString();

    std::vector<std::unique_ptr<KvTcpServer>> replicas;
    std::vector<ReplicaGroup> groups;
    constexpr size_t kDemoServers = 2;
    for (size_t i = 0; i < kDemoServers; ++i) {
      ReplicaGroup group;
      for (size_t r = 0; r < 2; ++r) {
        replicas.push_back(std::make_unique<KvTcpServer>(
            &demo_graph, kDemoPartitions, kDemoServers, i, r, 2));
        BENU_CHECK(replicas.back()->Listen(0).ok());
        BENU_CHECK(replicas.back()->Start().ok());
        group.replicas.push_back({"127.0.0.1", replicas.back()->port()});
      }
      groups.push_back(std::move(group));
    }
    auto tcp = ConnectTcpTransport(groups);
    BENU_CHECK(tcp.ok()) << tcp.status().ToString();

    // Stop group 0's first replica once the run has demonstrably started
    // issuing wire traffic.
    std::atomic<bool> done{false};
    std::thread killer([&] {
      while (!done.load(std::memory_order_relaxed)) {
        if ((*tcp)->stats().round_trips.load(std::memory_order_relaxed) >=
            20) {
          replicas.front()->Stop();
          return;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    });
    demo_options.cluster.transport = *tcp;
    auto tcp_run = RunBenu(demo_graph, demo_pattern, demo_options);
    done.store(true, std::memory_order_relaxed);
    killer.join();
    BENU_CHECK(tcp_run.ok()) << tcp_run.status().ToString();
    BENU_CHECK(tcp_run->run.total_matches == sim_run->run.total_matches)
        << "failover changed the match count: " << tcp_run->run.total_matches
        << " vs " << sim_run->run.total_matches;

    auto faults = QueryTcpFaultStats(**tcp);
    BENU_CHECK(faults.ok());
    std::printf(
        "failover demo: one of 2 replicas stopped mid-run — %s matches, "
        "identical to sim (retries=%zu failovers=%zu reconnects=%zu)\n",
        HumanCount(tcp_run->run.total_matches).c_str(), faults->retries,
        faults->failovers, faults->reconnects);

    BenchRecord rec;
    rec.name = "tcp/failover-demo";
    rec.params = {{"replicas", "2"}, {"servers", "2"}};
    rec.seconds = 0;
    rec.counters = {
        {"matches", static_cast<double>(tcp_run->run.total_matches)},
        {"retries", static_cast<double>(faults->retries)},
        {"failovers", static_cast<double>(faults->failovers)},
        {"reconnects", static_cast<double>(faults->reconnects)}};
    records.push_back(std::move(rec));
    demo_options.cluster.transport.reset();
    tcp->reset();
  }

  WriteBenchJson("BENCH_pipeline.json", "pipeline", records);
  std::printf(
      "\nShape check: hidden-comm grows with latency under async (the\n"
      "pipeline moves round trips off the critical path); batch 16 beats\n"
      "batch 1 by amortizing one round trip per partition per batch; and\n"
      "forced-sync sits between sync and async — it batches but cannot\n"
      "overlap.\n");
  return 0;
}
