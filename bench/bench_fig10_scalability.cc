// Fig. 10 reproduction: machine scalability. Runs q5 and q9 over the
// stand-in graphs with 4, 8, 12 and 16 virtual worker machines and
// reports the cluster execution time (virtual makespan) and the relative
// speedup over the 4-worker configuration.
//
// Paper shape to reproduce: near-linear speedup — time falls roughly
// proportionally as workers are added, with the relative speedup factor
// growing close to (but below) the ideal 4x from 4 to 16 workers.

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "plan/plan_search.h"

int main() {
  using namespace benu;
  using namespace benu::bench;
  SetLogLevel(LogLevel::kWarning);

  // lj-sim is the smallest stand-in whose enumeration work per worker
  // clearly dominates the per-worker compulsory cache misses (every
  // worker touches most of the graph once); smaller graphs hit that
  // latency floor and understate the speedup.
  std::vector<std::string> datasets = {SmokeScale() ? "as-sim" : "lj-sim"};
  if (FullScale()) datasets.push_back("ok-sim");
  // q5 on lj-sim takes minutes per worker-count; keep the default run
  // snappy with q9 and add q5 under BENU_BENCH_FULL.
  // q5 is the workload whose per-worker enumeration time dominates the
  // fixed per-worker costs (compulsory cache misses, heaviest indivisible
  // subtask), so it shows the scaling cleanly; q9 at this scale is too
  // cheap (its makespan is mostly the latency floor).
  std::vector<std::string> patterns = {"q5"};
  if (FullScale()) patterns.push_back("q9");
  const std::vector<int> worker_counts =
      SmokeScale() ? std::vector<int>{4, 8} : std::vector<int>{4, 8, 12, 16};

  std::printf("Fig. 10 — scalability with varying worker machines\n");
  for (const std::string& dataset : datasets) {
    Graph raw = LoadDataset(dataset);
    Graph data = raw.RelabelByDegree();
    for (const std::string name : patterns) {
      Graph pattern = LoadPattern(name);
      auto plan = GenerateBestPlan(pattern, DataGraphStats::FromGraph(data),
                                   {.optimize = true, .apply_vcbc = true});
      BENU_CHECK(plan.ok());
      std::printf("\n%s on %s\n", name.c_str(), dataset.c_str());
      std::printf("  %-8s %12s %10s %10s\n", "workers", "virt-time",
                  "speedup", "ideal");
      double base = 0;
      for (int workers : worker_counts) {
        ClusterConfig config = PaperCluster();
        config.num_workers = workers;
        config.threads_per_worker = 24;  // as in the paper
        // τ scaled to the stand-in's hub sizes (the paper's 500 assumes
        // Orkut-scale hubs); without splitting, one hub task caps the
        // speedup — exactly the Fig. 9 straggler effect.
        config.task_split_threshold = FullScale() ? 500 : 8;
        ClusterSimulator cluster(data, config);
        auto result = cluster.Run(plan->plan);
        BENU_CHECK(result.ok()) << result.status().ToString();
        if (workers == 4) base = result->virtual_seconds;
        std::printf("  %-8d %11.3fs %9.2fx %9.2fx\n", workers,
                    result->virtual_seconds,
                    base / result->virtual_seconds, workers / 4.0);
      }
    }
  }
  std::printf(
      "\nShape check vs paper: execution time decreases monotonically\n"
      "with more workers and the relative speedup grows with the worker\n"
      "count while staying below ideal — the paper reports the same\n"
      "(\"the relative speedup factors did not reach 4 when varying from\n"
      "4 to 16 worker machines\"). Residual gap at this scale: each\n"
      "worker pays ~|V| compulsory cache misses regardless of p, and the\n"
      "heaviest indivisible subtask bounds the makespan from below.\n");
  return 0;
}
