// Table I reproduction: numbers of matches of the typical core patterns
// (triangle Δ, 4-clique ⊠, chordal square) in the stand-in data graphs.
//
// Paper shape to reproduce: the pattern counts dwarf |E| by 1–3 orders of
// magnitude, which is why shuffling partial matching results (the
// BFS-style join approach) is so expensive.
//
// Default runs as-sim / lj-sim / ok-sim; BENU_BENCH_FULL=1 adds uk-sim and
// fs-sim.

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"

int main() {
  using namespace benu;
  using namespace benu::bench;
  SetLogLevel(LogLevel::kWarning);

  std::vector<std::string> datasets = {"as-sim", "lj-sim", "ok-sim"};
  if (FullScale()) {
    datasets.push_back("uk-sim");
    datasets.push_back("fs-sim");
  }

  std::printf("Table I — match counts of typical pattern graphs\n");
  std::printf("%-8s %10s %10s %14s %14s %16s %10s\n", "graph", "|V|", "|E|",
              "triangle", "clique4", "chordal-square", "ratio");
  for (const std::string& dataset : datasets) {
    Graph data = LoadDataset(dataset);
    BenuOptions options;
    options.cluster = PaperCluster();
    options.plan.apply_vcbc = true;

    Count counts[3] = {0, 0, 0};
    const char* patterns[3] = {"triangle", "clique4", "diamond"};
    for (int i = 0; i < 3; ++i) {
      auto result = RunBenu(data, LoadPattern(patterns[i]), options);
      BENU_CHECK(result.ok()) << result.status().ToString();
      counts[i] = result->run.total_matches;
    }
    // "ratio" = chordal-square matches / |E|: how much larger than the
    // data graph the partial results of the hard queries' core are.
    const double ratio =
        static_cast<double>(counts[2]) / static_cast<double>(data.NumEdges());
    std::printf("%-8s %10zu %10zu %14s %14s %16s %9.1fx\n", dataset.c_str(),
                data.NumVertices(), data.NumEdges(),
                HumanCount(counts[0]).c_str(), HumanCount(counts[1]).c_str(),
                HumanCount(counts[2]).c_str(), ratio);
  }
  std::printf(
      "\nShape check vs paper: chordal-square counts exceed |E| by 1-3\n"
      "orders of magnitude on every graph (Table I shows 10-100x).\n");
  return 0;
}
