// Table VI reproduction (Exp-6): execution time comparison with the
// BiGJoin-like worst-case-optimal join, on the patterns BiGJoin
// specially optimized: triangle, clique4, clique5, q4, q5.
//
//   BiGJoin(S): shared-memory variant — one big batch, bounded memory;
//               prints OOM when the resident prefix tuples exceed the
//               budget (the paper's OOM entries).
//   BiGJoin(D): distributed variant — small batches (the paper's 100000),
//               shuffling every level's prefixes.
//
// Paper shape to reproduce: BENU beats both variants on the complex
// patterns (clique5/q4/q5); BiGJoin(S) OOMs where intermediate prefixes
// blow up; BiGJoin(D) survives but pays heavy shuffles.

#include <cstdio>
#include <string>
#include <vector>

#include "baselines/wcoj.h"
#include "bench/bench_util.h"
#include "common/stopwatch.h"
#include "plan/symmetry_breaking.h"

int main() {
  using namespace benu;
  using namespace benu::bench;
  SetLogLevel(LogLevel::kWarning);

  std::vector<std::string> datasets = {"as-sim"};
  if (FullScale()) datasets.push_back("ok-sim");

  const std::vector<std::string> patterns = {"triangle", "clique4", "clique5",
                                             "q4", "q5"};
  for (const std::string& dataset : datasets) {
    Graph raw = LoadDataset(dataset);
    Graph data = raw.RelabelByDegree();
    std::printf("Table VI — dataset %s (%zu vertices, %zu edges)\n",
                dataset.c_str(), data.NumVertices(), data.NumEdges());
    std::printf("%-10s %14s %14s %14s\n", "pattern", "BiGJoin(S)",
                "BiGJoin(D)", "BENU");
    for (const std::string name : patterns) {
      Graph pattern = LoadPattern(name);
      auto constraints = ComputeSymmetryBreakingConstraints(pattern);

      // Shared-memory WCOJ: single batch, bounded resident tuples.
      WcojConfig shared;
      shared.batch_size = data.NumVertices();
      shared.max_resident_tuples = 4u << 20;  // scaled-down memory budget
      auto rs = RunWcoj(data, pattern, constraints, shared);

      // Distributed WCOJ: paper batch size, shuffle accounting.
      WcojConfig dist;
      dist.batch_size = 100000;
      dist.distributed = true;
      auto rd = RunWcoj(data, pattern, constraints, dist);

      BenuOptions options;
      options.cluster = PaperCluster();
      options.plan.apply_vcbc = true;
      auto benu = RunBenu(data, pattern, options);
      BENU_CHECK(benu.ok()) << benu.status().ToString();

      // Time model: BiGJoin(S) is genuinely single-machine shared-memory,
      // so its wall time stands as-is divided over one machine's threads;
      // BiGJoin(D) spreads compute over the cluster and pays for its
      // shuffles; BENU reports the cluster simulator's makespan.
      ClusterConfig cluster = PaperCluster();
      auto shared_cell = [&](const StatusOr<WcojResult>& r) {
        char buffer[32];
        if (r.ok()) {
          std::snprintf(buffer, sizeof(buffer), "%10.3fs",
                        r->seconds / cluster.threads_per_worker);
        } else {
          std::snprintf(buffer, sizeof(buffer), "%10s", "OOM");
        }
        return std::string(buffer);
      };
      auto dist_cell = [&](const StatusOr<WcojResult>& r) {
        char buffer[32];
        if (r.ok()) {
          std::snprintf(buffer, sizeof(buffer), "%10.3fs",
                        BaselineVirtualSeconds(r->seconds, r->shuffled_bytes,
                                               cluster));
        } else {
          std::snprintf(buffer, sizeof(buffer), "%10s", "OOM");
        }
        return std::string(buffer);
      };
      if (rs.ok() && rd.ok()) {
        BENU_CHECK(rs->matches == rd->matches);
        BENU_CHECK(rs->matches == benu->run.total_matches);
      }
      std::printf("%-10s %14s %14s %12.3fs   (matches %s)\n", name.c_str(),
                  shared_cell(rs).c_str(), dist_cell(rd).c_str(),
                  benu->run.virtual_seconds,
                  HumanCount(benu->run.total_matches).c_str());
    }
    std::printf("\n");
  }
  std::printf(
      "Shape check vs paper (see EXPERIMENTS.md): the shared-memory WCOJ\n"
      "OOMs exactly where the paper's BiGJoin(S) does — once resident\n"
      "prefixes outgrow memory (q5 here; more cells at BENU_BENCH_FULL\n"
      "scale) — while BENU completes every cell; the batched distributed\n"
      "variant survives by shuffling every level. Raw times at this\n"
      "laptop scale are compute-dominated and favor the hand-rolled join\n"
      "loops on the easy patterns; the paper's crossover comes from the\n"
      "same memory/shuffle pressure at 100-1000x scale.\n");
  return 0;
}
