#ifndef BENU_BENCH_BENCH_UTIL_H_
#define BENU_BENCH_BENCH_UTIL_H_

// Shared helpers for the table/figure reproduction harnesses. Each bench
// binary prints the rows/series of one table or figure from the paper
// (see DESIGN.md §5 and EXPERIMENTS.md for the mapping and results).

#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "common/metrics.h"
#include "distributed/benu_driver.h"
#include "graph/generators.h"
#include "graph/patterns.h"

namespace benu::bench {

/// True when the harness should also run the largest stand-in datasets
/// (uk-sim, fs-sim) / deepest sweeps. Off by default so the whole bench
/// suite completes quickly on one machine; enable with BENU_BENCH_FULL=1.
inline bool FullScale() {
  const char* env = std::getenv("BENU_BENCH_FULL");
  return env != nullptr && env[0] == '1';
}

/// True when the harness runs as a CI smoke check (BENU_BENCH_SMOKE=1):
/// every workload shrinks to a few seconds so the harness plumbing —
/// argument handling, sweeps, JSON emission, shape CHECKs — is exercised
/// on every push without the measurements meaning anything. Takes
/// precedence over FullScale().
inline bool SmokeScale() {
  const char* env = std::getenv("BENU_BENCH_SMOKE");
  return env != nullptr && env[0] == '1';
}

/// Workload-size picker honouring the scale env toggles.
inline size_t SizeFor(size_t full, size_t normal, size_t smoke) {
  if (SmokeScale()) return smoke;
  return FullScale() ? full : normal;
}

/// The paper's cluster: 16 workers × 24 threads, 1 Gbps, τ = 500,
/// 30 GB cache per worker (we scale the cache to the stand-in graphs).
inline ClusterConfig PaperCluster() {
  ClusterConfig config;
  config.num_workers = 16;
  config.threads_per_worker = 24;
  config.db_cache_bytes = 256u << 20;
  config.task_split_threshold = 500;
  config.db_query_latency_us = 100.0;
  config.network_bytes_per_us = 125.0;  // 1 Gbps
  return config;
}

inline Graph LoadDataset(const std::string& name) {
  auto g = GenerateStandInDataset(name);
  BENU_CHECK(g.ok()) << g.status().ToString();
  return std::move(g).value();
}

inline Graph LoadPattern(const std::string& name) {
  auto p = GetPattern(name);
  BENU_CHECK(p.ok()) << p.status().ToString();
  return std::move(p).value();
}

/// Virtual cluster time of a BFS-style baseline measured in-process:
/// single-threaded compute spread perfectly over the cluster's p × w
/// threads, plus the shuffled bytes over the cluster's aggregate
/// bisection bandwidth (p × per-machine bandwidth). Deliberately
/// generous to the baseline (perfect parallelism, no stragglers), so a
/// BENU win under this model is conservative.
/// Aggregate disk bandwidth per machine for materialized MapReduce
/// shuffles (the paper's CBF runs on HDD RAID0), bytes per second.
inline constexpr double kDiskBytesPerSecond = 200e6;

inline double BaselineVirtualSeconds(double cpu_seconds, Count shuffled_bytes,
                                     const ClusterConfig& config,
                                     bool disk_materialized = false) {
  const double threads = static_cast<double>(config.num_workers) *
                         static_cast<double>(config.threads_per_worker);
  const double aggregate_bytes_per_second =
      static_cast<double>(config.num_workers) *
      config.network_bytes_per_us * 1e6;
  double seconds =
      cpu_seconds / threads +
      static_cast<double>(shuffled_bytes) / aggregate_bytes_per_second;
  if (disk_materialized) {
    // Each MapReduce round writes the shuffle to disk on the map side and
    // reads it back on the reduce side.
    seconds += 2.0 * static_cast<double>(shuffled_bytes) /
               (static_cast<double>(config.num_workers) * kDiskBytesPerSecond);
  }
  return seconds;
}

// ---------------------------------------------------------------------
// Machine-readable bench output. Every bench_* binary that records
// numbers emits one JSON file through WriteBenchJson, all with the same
// schema, so downstream tooling parses a single shape:
//
//   {"bench": "<suite>", "schema_version": 2,
//    "results": [{"name": "...", "params": {"k": "v", ...},
//                 "repetitions": N, "seconds": S,
//                 "counters": {"k": number, ...}}, ...],
//    "metrics": {"counters": {...}, "gauges": {...},
//                "histograms": {...}}}
//
// schema_version history (docs/benchmarks.md):
//   1 — implicit (field absent): bench/results/metrics shape above.
//   2 — field added; metrics snapshots may now contain per-backend
//       transport.* counters alongside the kv_store.* aggregates.
//
// The "metrics" object is a MetricsSnapshot of the process-wide registry
// at write time (docs/metrics.md documents every instrument), so every
// BENCH_*.json carries the cache/communication/compute breakdown of the
// run that produced it — diffing two bench JSONs answers "did it help?"
// without rerunning anything.

/// One result row: `name` identifies the case, `params` the swept
/// configuration (string-valued for uniformity), `seconds` the measured
/// time (best of `repetitions`), `counters` any further numeric outputs.
struct BenchRecord {
  std::string name;
  std::vector<std::pair<std::string, std::string>> params;
  int repetitions = 1;
  double seconds = 0;
  std::vector<std::pair<std::string, double>> counters;
};

/// Version of the bench JSON schema written by WriteBenchJson. Bump it
/// (and the history note above + docs/benchmarks.md) whenever the
/// top-level shape or the meaning of existing fields changes.
inline constexpr int kBenchSchemaVersion = 2;

/// Writes `records` to `path` in the shared bench JSON schema. Keys and
/// string values must not need JSON escaping (bench code uses plain
/// identifiers).
inline void WriteBenchJson(const char* path, const std::string& bench_name,
                           const std::vector<BenchRecord>& records) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return;
  }
  std::fprintf(f,
               "{\n  \"bench\": \"%s\",\n  \"schema_version\": %d,\n"
               "  \"results\": [\n",
               bench_name.c_str(), kBenchSchemaVersion);
  for (size_t i = 0; i < records.size(); ++i) {
    const BenchRecord& r = records[i];
    std::fprintf(f, "    {\"name\": \"%s\", \"params\": {", r.name.c_str());
    for (size_t j = 0; j < r.params.size(); ++j) {
      std::fprintf(f, "%s\"%s\": \"%s\"", j == 0 ? "" : ", ",
                   r.params[j].first.c_str(), r.params[j].second.c_str());
    }
    std::fprintf(f, "}, \"repetitions\": %d, \"seconds\": %.9g, "
                 "\"counters\": {", r.repetitions, r.seconds);
    for (size_t j = 0; j < r.counters.size(); ++j) {
      std::fprintf(f, "%s\"%s\": %.9g", j == 0 ? "" : ", ",
                   r.counters[j].first.c_str(), r.counters[j].second);
    }
    std::fprintf(f, "}}%s\n", i + 1 < records.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"metrics\": %s\n}\n",
               metrics::MetricsRegistry::Global().Snapshot().ToJson(2)
                   .c_str());
  std::fclose(f);
  std::printf("wrote %s\n", path);
}

/// Formats a byte count like the paper's Table V cells ("26G", "512M").
inline std::string HumanBytes(Count bytes) {
  char buffer[32];
  const double b = static_cast<double>(bytes);
  if (b >= 1e9) {
    std::snprintf(buffer, sizeof(buffer), "%.1fG", b / 1e9);
  } else if (b >= 1e6) {
    std::snprintf(buffer, sizeof(buffer), "%.1fM", b / 1e6);
  } else if (b >= 1e3) {
    std::snprintf(buffer, sizeof(buffer), "%.1fK", b / 1e3);
  } else {
    std::snprintf(buffer, sizeof(buffer), "%.0fB", b);
  }
  return buffer;
}

inline std::string HumanCount(Count value) {
  char buffer[32];
  const double v = static_cast<double>(value);
  if (v >= 1e12) {
    std::snprintf(buffer, sizeof(buffer), "%.2fT", v / 1e12);
  } else if (v >= 1e9) {
    std::snprintf(buffer, sizeof(buffer), "%.2fB", v / 1e9);
  } else if (v >= 1e6) {
    std::snprintf(buffer, sizeof(buffer), "%.2fM", v / 1e6);
  } else {
    std::snprintf(buffer, sizeof(buffer), "%llu",
                  static_cast<unsigned long long>(value));
  }
  return buffer;
}

}  // namespace benu::bench

#endif  // BENU_BENCH_BENCH_UTIL_H_
