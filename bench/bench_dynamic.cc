// Dynamic-graph maintenance bench: S-BENU incremental plans vs full
// recomputation. Replays a deterministic mixed insert/delete edge
// stream in epoch batches through a DynamicRunner (VersionedAdjacency-
// Store + incremental plans + epoch-tagged DbCache) and, at every
// epoch, also runs a full recount at the same snapshot. Each batch-size
// row reports both costs and their ratio; every epoch's maintained
// total is CHECKed bit-identical to the recount, so the speedups are
// for *exact* maintenance.
//
// Acceptance (enforced outside BENU_BENCH_SMOKE): at batches of 1% of
// the base edges the incremental path must be >= 5x faster than
// recomputing from scratch, the paper-motivating regime for S-BENU.
//
//   --transport=sim|loopback|tcp   adjacency backend (default sim)
//   --spawn-servers=K              TCP: fork K benu_kv_server children
//                                  per sweep row (default 2)
//   --v2-peer=1                    TCP: make the last spawned server a
//                                  pre-delta peer (--deltas=0), proving
//                                  the capability-bit downgrade keeps
//                                  mid-stream kEpochAdvance exact
//   --pattern=NAME                 pattern to maintain (default triangle)
//   --kv-server-bin=PATH           benu_kv_server location (default:
//                                  ../src/benu_kv_server next to this
//                                  binary)
//
// Results go to BENCH_dynamic.json (schema: docs/benchmarks.md).

#include <cstdio>
#include <memory>
#include <random>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "bench/bench_util.h"
#include "common/flags_util.h"
#include "common/stopwatch.h"
#include "distributed/dynamic_runner.h"
#include "storage/tcp_transport.h"
#include "storage/transport.h"

namespace {

using namespace benu;
using namespace benu::bench;

using EdgeSet = std::set<std::pair<VertexId, VertexId>>;

std::pair<VertexId, VertexId> Norm(VertexId u, VertexId v) {
  return u < v ? std::make_pair(u, v) : std::make_pair(v, u);
}

/// Deterministic mixed stream: ~40% of ops delete present edges, the
/// rest insert absent ones, so retraction and addition passes both run
/// every epoch and the edge count stays roughly stationary.
std::vector<std::vector<EdgeDelta>> MakeStream(const Graph& base,
                                               size_t num_epochs,
                                               size_t batch, uint64_t seed) {
  std::mt19937_64 rng(seed);
  const size_t n = base.NumVertices();
  EdgeSet present;
  for (const auto& [u, v] : base.Edges()) present.insert(Norm(u, v));
  std::vector<std::vector<EdgeDelta>> stream;
  for (size_t e = 0; e < num_epochs; ++e) {
    std::vector<EdgeDelta> ops;
    while (ops.size() < batch) {
      const VertexId u = static_cast<VertexId>(rng() % n);
      const VertexId v = static_cast<VertexId>(rng() % n);
      if (u == v) continue;
      const auto key = Norm(u, v);
      const bool exists = present.count(key) != 0;
      if (exists && rng() % 10 < 4) {
        ops.push_back({u, v, /*insert=*/false});
        present.erase(key);
      } else if (!exists) {
        ops.push_back({u, v, /*insert=*/true});
        present.insert(key);
      }
    }
    stream.push_back(std::move(ops));
  }
  return stream;
}

struct SweepOutcome {
  double inc_seconds = 0;       ///< sum of ApplyBatch wall times
  double recount_seconds = 0;   ///< sum of per-epoch full recounts
  Count added = 0;
  Count retracted = 0;
  Count seed_tasks = 0;
  Count final_total = 0;
};

/// One batch-size sweep: baseline, then `num_epochs` maintained epochs,
/// each CHECKed against a full recount at the same snapshot.
SweepOutcome RunSweep(std::shared_ptr<Transport> transport,
                      const Graph& base, const Graph& pattern,
                      size_t num_epochs, size_t batch, uint64_t seed) {
  DynamicRunnerOptions options;
  auto runner =
      std::move(DynamicRunner::Create(std::move(transport), pattern, options))
          .value();
  auto baseline = runner->RunBaseline();
  BENU_CHECK(baseline.ok()) << baseline.status().ToString();

  const auto stream = MakeStream(base, num_epochs, batch, seed);
  SweepOutcome out;
  for (const auto& ops : stream) {
    auto report = runner->ApplyBatch(ops);
    BENU_CHECK(report.ok()) << report.status().ToString();
    out.inc_seconds += report->seconds;
    out.added += report->added;
    out.retracted += report->retracted;
    out.seed_tasks += report->seed_tasks;

    Stopwatch recount_watch;
    auto recount = runner->Recount();
    out.recount_seconds += recount_watch.ElapsedSeconds();
    BENU_CHECK(recount.ok()) << recount.status().ToString();
    BENU_CHECK(*recount == report->total)
        << "epoch " << report->epoch << ": maintained " << report->total
        << " but full recount found " << *recount;
    out.final_total = report->total;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  SetLogLevel(LogLevel::kWarning);

  const std::string transport_name =
      flags::Value(argc, argv, "--transport", "sim");
  const size_t spawn_servers =
      flags::SizeValue(argc, argv, "--spawn-servers", 2);
  const bool v2_peer = flags::BoolValue(argc, argv, "--v2-peer", false);
  const std::string pattern_name =
      flags::Value(argc, argv, "--pattern", "triangle");
  const std::string kv_server_bin = flags::Value(
      argc, argv, "--kv-server-bin",
      (flags::SelfDir() + "/../src/benu_kv_server").c_str());

  const size_t vertices = SizeFor(4000, 1200, 80);
  const size_t edges = vertices * 8;
  const size_t num_epochs = SizeFor(12, 8, 3);
  char graph_spec[64];
  std::snprintf(graph_spec, sizeof(graph_spec), "er:%zu,%zu,7", vertices,
                edges);
  Graph base = std::move(GenerateFromSpec(graph_spec)).value();
  const Graph pattern = LoadPattern(pattern_name);

  // Batch sizes as fractions of the base edge count; 1% is the
  // acceptance row.
  const double kFractions[] = {0.001, 0.01, 0.05};

  std::atexit(flags::CleanupSpawnedAtExit);
  std::vector<BenchRecord> records;
  double one_percent_speedup = 0;
  for (const double fraction : kFractions) {
    const size_t batch =
        std::max<size_t>(1, static_cast<size_t>(fraction * edges));

    // Fresh backend per row: a TCP fleet's attested epoch sequence is
    // per-store, so every sweep starts its own servers at epoch 0.
    std::shared_ptr<Transport> transport;
    std::vector<flags::ServerProcess> servers;
    if (transport_name == "sim") {
      transport = MakeSimulatedTransport(base, 8);
    } else if (transport_name == "loopback") {
      transport = MakeLoopbackTransport(base, 8);
    } else if (transport_name == "tcp") {
      flags::KvServerSpawnOptions opts;
      opts.graph_spec = graph_spec;
      opts.partitions = 8;
      opts.servers = spawn_servers;
      opts.relabel = false;  // dynamic runs use raw ids as the total order
      for (size_t i = 0; i < spawn_servers; ++i) {
        opts.index = i;
        // The v2 peer never sees kApplyDelta/kEpochAdvance; the client
        // store downgrades it and composes snapshots locally.
        opts.support_deltas = !(v2_peer && i + 1 == spawn_servers);
        servers.push_back(flags::SpawnKvServer(kv_server_bin, opts));
      }
      std::vector<Endpoint> endpoints;
      for (const auto& s : servers) {
        endpoints.push_back({"127.0.0.1", s.port});
      }
      auto connected = ConnectTcpTransport(endpoints);
      BENU_CHECK(connected.ok()) << connected.status().ToString();
      transport = *connected;
    } else {
      BENU_CHECK(false) << "unknown --transport=" << transport_name
                        << " (sim|loopback|tcp)";
    }

    const SweepOutcome out = RunSweep(transport, base, pattern, num_epochs,
                                      batch, /*seed=*/29);
    if (transport_name == "tcp" && v2_peer) {
      // Probe the per-server capability split directly: one more
      // kEpochAdvance must be acked by the delta-capable servers and
      // downgraded on the v2 peer — while the sweep above already
      // proved (via the per-epoch recounts) that the downgrade never
      // changed a match.
      auto push = transport->AdvanceEpoch(num_epochs + 1);
      BENU_CHECK(push.ok()) << push.status().ToString();
      BENU_CHECK(push->downgraded_servers == 1 &&
                 push->acked_servers == spawn_servers - 1)
          << "--v2-peer fleet: " << push->acked_servers << " acked, "
          << push->downgraded_servers << " downgraded";
    }
    transport.reset();
    flags::KillServers(servers);

    const double speedup = out.recount_seconds / out.inc_seconds;
    const Count maintained = out.added + out.retracted;
    if (fraction == 0.01) one_percent_speedup = speedup;
    std::printf(
        "%-9s batch=%-5zu (%.1f%%): inc=%.4fs recount=%.4fs speedup=%.1fx "
        "maintained=%llu (+%llu/-%llu) total=%llu\n",
        transport_name.c_str(), batch, fraction * 100, out.inc_seconds,
        out.recount_seconds, speedup,
        static_cast<unsigned long long>(maintained),
        static_cast<unsigned long long>(out.added),
        static_cast<unsigned long long>(out.retracted),
        static_cast<unsigned long long>(out.final_total));

    BenchRecord record;
    record.name = transport_name + "_batch_" + std::to_string(batch);
    record.params = {{"transport", transport_name},
                     {"pattern", pattern_name},
                     {"graph", graph_spec},
                     {"batch", std::to_string(batch)},
                     {"epochs", std::to_string(num_epochs)},
                     {"v2_peer", v2_peer ? "1" : "0"}};
    record.seconds = out.inc_seconds;
    record.counters = {
        {"recount_seconds", out.recount_seconds},
        {"speedup", speedup},
        {"matches_added", static_cast<double>(out.added)},
        {"matches_retracted", static_cast<double>(out.retracted)},
        {"maintained_per_sec",
         static_cast<double>(maintained) / out.inc_seconds},
        {"seed_tasks", static_cast<double>(out.seed_tasks)},
        {"final_total", static_cast<double>(out.final_total)},
    };
    records.push_back(std::move(record));
  }

  // The acceptance regime: small-batch maintenance must decisively beat
  // recomputation. Smoke runs shrink the workload until timings are
  // noise, so the ratio is only enforced at measurement scale.
  if (!SmokeScale()) {
    BENU_CHECK(one_percent_speedup >= 5.0)
        << "incremental maintenance at 1% batches is only "
        << one_percent_speedup << "x faster than recomputation (need 5x)";
  }

  WriteBenchJson("BENCH_dynamic.json", "dynamic", records);
  return 0;
}
